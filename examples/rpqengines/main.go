// RPQ engines: regular queries as a partial case of CFPQ.
//
// The paper's conclusion demonstrates that the CFPQ machinery evaluates
// regular path queries too, and asks how the approaches compare. This
// example answers the same regular query through the unified EvalRPQ
// entry point with each of the four engines — Thompson NFA product,
// minimized DFA product, CFPQ over the regex-derived grammar, and the
// tensor (Kronecker) RSM engine — verifying they agree and printing
// their timings. It also shows query governance: the last run is given
// a deliberately tiny work budget and aborts with ErrBudget.
//
// Run with: go run ./examples/rpqengines
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"mscfpq"
)

func main() {
	g, err := mscfpq.GenerateDataset("core", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	const regex = "subClassOf+ type_r?"
	fmt.Printf("query %q over the core analog (%d vertices)\n", regex, g.NumVertices())

	src := mscfpq.NewVertexSet(g.NumVertices(), 10, 20, 30, 40, 50)

	engines := []struct {
		name   string
		engine mscfpq.Engine
	}{
		{"NFA product", mscfpq.EngineNFA},
		{"minimized DFA", mscfpq.EngineDFA},
		{"CFPQ (Alg. 2)", mscfpq.EngineCFPQ},
		{"tensor RSM", mscfpq.EngineTensor},
	}
	var first *mscfpq.BoolMatrix
	for _, e := range engines {
		start := time.Now()
		reach, err := mscfpq.EvalRPQ(g, regex, src, mscfpq.WithEngine(e.engine))
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if first == nil {
			first = reach
		} else if !first.Equal(reach) {
			log.Fatalf("engine %s disagrees with %s", e.name, engines[0].name)
		}
		fmt.Printf("  %-15s %6d pairs in %v\n", e.name+":", reach.NVals(), elapsed.Round(time.Microsecond))
	}
	fmt.Println("multiple-source answers verified identical across all four engines")

	// Governed execution: the same query with a work budget far below
	// what the fixpoint needs aborts deterministically with ErrBudget.
	_, err = mscfpq.EvalRPQ(g, regex, src,
		mscfpq.WithEngine(mscfpq.EngineCFPQ), mscfpq.WithBudget(10))
	if errors.Is(err, mscfpq.ErrBudget) {
		fmt.Println("budget of 10 relation entries: query aborted with ErrBudget as expected")
	} else {
		log.Fatalf("expected ErrBudget, got %v", err)
	}
}
