package resp

import (
	"bufio"
	"bytes"
	"net"
	"strings"
	"testing"

	"mscfpq/internal/gdb"
	"mscfpq/internal/graph"
)

func roundTrip(t *testing.T, v Value) Value {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := Write(w, v); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := Read(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("read back %q: %v", buf.String(), err)
	}
	return got
}

func TestProtocolRoundTrip(t *testing.T) {
	cases := []Value{
		Simple("OK"),
		Int(-42),
		Bulk("hello world"),
		Bulk(""),
		Bulk("with\r\nnewlines"),
		NullBulk(),
		Arr(),
		Arr(Bulk("a"), Int(1), Arr(Simple("x"))),
	}
	for _, v := range cases {
		got := roundTrip(t, v)
		if got.Kind != v.Kind || got.Str != v.Str || got.Int != v.Int || got.Null != v.Null || len(got.Array) != len(v.Array) {
			t.Fatalf("round trip changed %+v -> %+v", v, got)
		}
	}
}

func TestErrorReply(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := Write(w, Errorf("boom %d", 7)); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	got, err := Read(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != ErrorString || !strings.Contains(got.Str, "boom 7") {
		t.Fatalf("error reply = %+v", got)
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []string{
		"",
		"?x\r\n",
		":abc\r\n",
		"$5\r\nab\r\n",
		"$-5\r\n",
		"*-5\r\n",
		"+no-crlf",
	}
	for _, src := range cases {
		if _, err := Read(bufio.NewReader(strings.NewReader(src))); err == nil {
			t.Errorf("Read(%q): expected error", src)
		}
	}
}

func TestStringsExtraction(t *testing.T) {
	args, err := Strings(Arr(Bulk("PING"), Bulk("x")))
	if err != nil || len(args) != 2 || args[0] != "PING" {
		t.Fatalf("Strings = %v, %v", args, err)
	}
	if _, err := Strings(Int(1)); err == nil {
		t.Fatal("expected error for non-array")
	}
	if _, err := Strings(Arr(Int(1))); err == nil {
		t.Fatal("expected error for non-string element")
	}
}

// startTestServer launches a server on a random port.
func startTestServer(t *testing.T) (*Server, string) {
	t.Helper()
	db := gdb.New()
	g := graph.New(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 0)
	g.AddEdge(0, "b", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)
	db.AddGraph("cycles", g)
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

func TestServerPingEcho(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	v, err := c.Do("ECHO", "hello")
	if err != nil || v.Str != "hello" {
		t.Fatalf("echo = %+v, %v", v, err)
	}
	if _, err := c.Do("NOSUCH"); err == nil {
		t.Fatal("expected error for unknown command")
	}
}

func TestServerGraphQueryEndToEnd(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The a^n b^n query over the two cycles: vertex 0 relates to itself.
	reply, err := c.GraphQuery("cycles", `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		WHERE id(v) = 0
		RETURN v, to`)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Columns) != 2 || reply.Columns[0] != "v" {
		t.Fatalf("columns = %v", reply.Columns)
	}
	found := false
	for _, row := range reply.Rows {
		if row[0] == 0 && row[1] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing (0,0) in %v", reply.Rows)
	}
	if len(reply.Stats) == 0 {
		t.Fatal("missing stats")
	}
}

func TestServerCreateListDelete(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.GraphQuery("new", `CREATE (a:N)-[:e]->(b:N)`); err != nil {
		t.Fatal(err)
	}
	names, err := c.GraphList()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 { // cycles + new
		t.Fatalf("list = %v", names)
	}
	if err := c.GraphDelete("new"); err != nil {
		t.Fatal(err)
	}
	if err := c.GraphDelete("new"); err == nil {
		t.Fatal("double delete must fail")
	}
}

func TestServerExplain(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	lines, err := c.GraphExplain("cycles", `MATCH (v)-[:a]->(u) RETURN v`)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"Project", "CondTraverse", "AllNodeScan"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("explain missing %q:\n%s", want, joined)
		}
	}
}

func TestServerStatsDumpRestore(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	v, err := c.Do("GRAPH.STATS", "cycles")
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, l := range v.Array {
		joined += l.Str + "\n"
	}
	if !strings.Contains(joined, "Vertices: 4") || !strings.Contains(joined, "Label a: 2") {
		t.Fatalf("stats = %s", joined)
	}

	dump, err := c.Do("GRAPH.DUMP", "cycles")
	if err != nil || dump.Kind != BulkString {
		t.Fatalf("dump: %v %v", dump, err)
	}
	if _, err := c.Do("GRAPH.RESTORE", "copy", dump.Str); err != nil {
		t.Fatal(err)
	}
	reply, err := c.GraphQuery("copy", `MATCH (v)-[:a]->(u) RETURN count(*)`)
	if err != nil || len(reply.Rows) != 1 || reply.Rows[0][0] != 2 {
		t.Fatalf("restored query: %v %v", reply, err)
	}
	if _, err := c.Do("GRAPH.STATS", "missing"); err == nil {
		t.Fatal("expected error for missing graph")
	}
}

func TestServerInlineCommands(t *testing.T) {
	_, addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Plain text lines, as typed into netcat; blank lines are ignored.
	if _, err := conn.Write([]byte("\nPING\nGRAPH.LIST\n")); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	pong, err := Read(r)
	if err != nil || pong.Str != "PONG" {
		t.Fatalf("inline PING reply = %+v, %v", pong, err)
	}
	list, err := Read(r)
	if err != nil || list.Kind != Array || len(list.Array) != 1 || list.Array[0].Str != "cycles" {
		t.Fatalf("inline GRAPH.LIST reply = %+v, %v", list, err)
	}
}

func TestServerQuit(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do("QUIT"); err != nil {
		t.Fatal(err)
	}
	// The server closes the connection after QUIT; subsequent commands
	// must fail.
	if err := c.Ping(); err == nil {
		t.Fatal("expected closed connection after QUIT")
	}
	c.Close()
}
