package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mscfpq/internal/grammar"
	"mscfpq/internal/store"
)

// cacheReps is how many cold/warm latency samples each source set
// takes; each warm sample batches cacheWarmInner lookups so the
// sub-microsecond hit path is not lost in timer jitter.
const (
	cacheReps      = 9
	cacheWarmInner = 64
	// cacheMinSpeedup is the acceptance gate (ISSUE 7): a warm hit must
	// be at least this much faster than the cold evaluation it replaces.
	cacheMinSpeedup = 10
)

// CacheMeasurement is one row of the cache experiment, as serialized
// into BENCH_cache.json by `make bench-smoke`: either a cold-vs-warm
// latency pair (Readers == 0) or a concurrent-reader throughput run.
type CacheMeasurement struct {
	Workload      string  `json:"workload"`
	Graph         string  `json:"graph"`
	Query         string  `json:"query"`
	Sources       int     `json:"sources,omitempty"`
	ColdMS        float64 `json:"cold_ms,omitempty"`
	WarmMS        float64 `json:"warm_ms,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
	Readers       int     `json:"readers,omitempty"`
	ThroughputQPS float64 `json:"throughput_qps,omitempty"`
	Reps          int     `json:"reps"`
}

// CacheBench measures the versioned query cache (DESIGN.md §11): the
// latency of a cold evaluation vs a warm version-keyed hit for each
// source-set size, and the aggregate throughput of 1/4/8 concurrent
// readers hammering a warm cache against a pinned snapshot. It returns
// an error if any warm hit fails the >=10x acceptance gate.
func CacheBench(cfg Config) (*Report, []CacheMeasurement, error) {
	const graphName = "core"
	g, spec, err := cfg.Generate(graphName)
	if err != nil {
		return nil, nil, err
	}
	qname, q := queryFor(graphName)
	w, err := grammar.ToWCNF(q)
	if err != nil {
		return nil, nil, err
	}
	st := store.New(g)
	snap := st.Pin()
	cache := store.NewCache(64<<20, 0)

	rep := &Report{
		ID:      "Cache",
		Title:   "Versioned query cache: cold vs warm latency and reader scaling",
		Columns: []string{"Workload", "Sources/Readers", "Cold ms", "Warm ms", "Speedup", "QPS"},
	}
	var out []CacheMeasurement

	for _, size := range cfg.ChunkSizes {
		srcs := cfg.chunks(g.NumVertices(), size)
		if len(srcs) == 0 {
			continue
		}
		src := srcs[0]
		var cold, warm time.Duration
		for trial := 0; trial < cacheReps; trial++ {
			// A fresh version key per trial forces a true cold evaluation
			// (and exercises the invalidation sweep on every fill).
			version := uint64(trial)
			dCold, err := timeIt(func() error {
				_, hit, err := store.CachedEval(cache, st.ID(), version, snap.Graph(), w, src)
				if err == nil && hit {
					return fmt.Errorf("cold run hit the cache")
				}
				return err
			})
			if err != nil {
				return nil, nil, fmt.Errorf("cold size %d: %w", size, err)
			}
			dWarm, err := timeIt(func() error {
				for i := 0; i < cacheWarmInner; i++ {
					_, hit, err := store.CachedEval(cache, st.ID(), version, snap.Graph(), w, src)
					if err != nil {
						return err
					}
					if !hit {
						return fmt.Errorf("warm run missed the cache")
					}
				}
				return nil
			})
			if err != nil {
				return nil, nil, fmt.Errorf("warm size %d: %w", size, err)
			}
			dWarm /= cacheWarmInner
			if cold == 0 || dCold < cold {
				cold = dCold
			}
			if warm == 0 || dWarm < warm {
				warm = dWarm
			}
		}
		if warm <= 0 {
			warm = time.Nanosecond
		}
		speedup := float64(cold) / float64(warm)
		m := CacheMeasurement{
			Workload: "cold-vs-warm", Graph: spec.Name, Query: qname,
			Sources: src.NVals(),
			ColdMS:  float64(cold.Nanoseconds()) / 1e6,
			WarmMS:  float64(warm.Nanoseconds()) / 1e6,
			Speedup: speedup, Reps: cacheReps,
		}
		out = append(out, m)
		rep.Rows = append(rep.Rows, []string{
			m.Workload, fmt.Sprintf("%d src", m.Sources), ms(cold), ms(warm),
			fmt.Sprintf("%.0fx", speedup), "-",
		})
		if speedup < cacheMinSpeedup {
			return nil, nil, fmt.Errorf(
				"cache acceptance gate failed: %d sources: warm %.4fms vs cold %.4fms (%.1fx < %dx)",
				m.Sources, m.WarmMS, m.ColdMS, speedup, cacheMinSpeedup)
		}
	}

	// Concurrent readers against a warm cache: every query is a hit, so
	// this measures contention on the cache's lock and the lock-free
	// snapshot pin, not evaluation time.
	srcs := cfg.chunks(g.NumVertices(), cfg.ChunkSizes[len(cfg.ChunkSizes)-1])
	for _, src := range srcs {
		if _, _, err := store.CachedEval(cache, st.ID(), 0, snap.Graph(), w, src); err != nil {
			return nil, nil, err
		}
	}
	const window = 100 * time.Millisecond
	for _, readers := range []int{1, 4, 8} {
		var ops atomic.Int64
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				i := r
				for {
					select {
					case <-stop:
						return
					default:
					}
					pin := st.Pin()
					src := srcs[i%len(srcs)]
					if _, _, err := store.CachedEval(cache, pin.StoreID(), pin.Version(), pin.Graph(), w, src); err != nil {
						return
					}
					ops.Add(1)
					i++
				}
			}(r)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		qps := float64(ops.Load()) / window.Seconds()
		m := CacheMeasurement{
			Workload: "concurrent-readers", Graph: spec.Name, Query: qname,
			Readers: readers, ThroughputQPS: qps, Reps: 1,
		}
		out = append(out, m)
		rep.Rows = append(rep.Rows, []string{
			m.Workload, fmt.Sprintf("%d readers", readers), "-", "-", "-",
			fmt.Sprintf("%.0f", qps),
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"cold/warm are per-mode minima over %d reps (warm batches of %d); acceptance: warm hit >= %dx faster than cold; throughput windows of %s on an all-hit cache",
		cacheReps, cacheWarmInner, cacheMinSpeedup, window))
	return rep, out, nil
}

// WriteCacheJSON serializes the measurements as indented JSON.
func WriteCacheJSON(w io.Writer, ms []CacheMeasurement) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}
