package repl

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"mscfpq/internal/fault"
	"mscfpq/internal/gdb"
	"mscfpq/internal/obs"
	"mscfpq/internal/resp"
)

// pingEvery bounds how long an idle stream stays silent: the leader
// sends a PING (liveness + its current position, which is what lag is
// measured against) at this cadence when no records flow.
const pingEvery = 500 * time.Millisecond

// scanBatch bounds how many record bytes one tail iteration reads and
// ships before re-checking the journal position.
const scanBatch = 1 << 20

// Hub is the leader side: it owns the SYNC command, streaming the op
// journal (and, when needed, a full snapshot bootstrap) to each
// connected replica. Install it on a server with
//
//	srv.SyncHandler = hub.HandleSync
//	srv.ReplInfo = hub.InfoLines
type Hub struct {
	db     *gdb.DB
	replid string

	mu       sync.Mutex
	replicas map[*replicaConn]struct{} // guarded by mu
}

// replicaConn tracks one connected replica for INFO replication.
type replicaConn struct {
	addr  string
	since time.Time

	mu   sync.Mutex
	sent position // guarded by mu: last position shipped
}

// syncRequest is a parsed SYNC handshake.
type syncRequest struct {
	replid string
	pos    position
}

// NewHub wraps a durable database as a replication leader, minting (or
// loading) its history identity.
func NewHub(db *gdb.DB) (*Hub, error) {
	if !db.Durable() {
		return nil, errors.New("repl: a leader needs a durable database (journal shipping has no source otherwise)")
	}
	replid, err := loadOrCreateReplID(db.DataDir())
	if err != nil {
		return nil, err
	}
	return &Hub{db: db, replid: replid, replicas: map[*replicaConn]struct{}{}}, nil
}

// ReplID returns the leader's history identity.
func (h *Hub) ReplID() string { return h.replid }

// HandleSync serves one replica's SYNC for the lifetime of its
// connection; it matches resp.Server.SyncHandler. Errors are written
// as RESP errors when the protocol still allows one, then the
// connection closes and the replica reconnects.
func (h *Hub) HandleSync(ctx context.Context, args []string, conn net.Conn, _ *bufio.Reader, _ *bufio.Writer) {
	// Frames flow through a dedicated writer so the send path is
	// tearable in chaos tests (fault.Writer wraps the socket).
	w := bufio.NewWriter(fault.Writer(FPSend, conn))
	req, err := parseSyncArgs(args)
	if err != nil {
		//lint:ignore errdrop best-effort error reply on a handshake we are rejecting
		_ = resp.Write(w, resp.Errorf("%v", err))
		_ = w.Flush()
		return
	}

	rc := &replicaConn{addr: conn.RemoteAddr().String(), since: time.Now()}
	h.mu.Lock()
	h.replicas[rc] = struct{}{}
	h.mu.Unlock()
	obs.ReplReplicasConnected.Add(1)
	defer func() {
		h.mu.Lock()
		delete(h.replicas, rc)
		h.mu.Unlock()
		obs.ReplReplicasConnected.Add(-1)
	}()

	// Unblock the stream loop's writes when the server shuts down.
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
	defer stop()

	// Stream errors are expected churn — the replica reconnects and
	// renegotiates, so there is nothing to unwind here.
	_ = h.stream(ctx, req, rc, w)
}

// parseSyncArgs decodes "SYNC <replid> <seq> <off>".
func parseSyncArgs(args []string) (syncRequest, error) {
	var req syncRequest
	if len(args) != 4 {
		return req, fmt.Errorf("usage: SYNC <replid> <seq> <offset>")
	}
	req.replid = args[1]
	seq, err := strconv.ParseUint(args[2], 10, 64)
	if err != nil {
		return req, fmt.Errorf("SYNC: bad sequence %q", args[2])
	}
	off, err := strconv.ParseInt(args[3], 10, 64)
	if err != nil || off < 0 {
		return req, fmt.Errorf("SYNC: bad offset %q", args[3])
	}
	req.pos = position{seq: seq, off: off}
	return req, nil
}

// stream negotiates CONTINUE vs FULLSYNC and then tails the journal to
// the replica until the connection or server dies.
func (h *Hub) stream(ctx context.Context, req syncRequest, rc *replicaConn, w *bufio.Writer) error {
	pos, release, err := h.openStream(req.replid, req.pos, w)
	if err != nil {
		return err
	}
	defer func() { release() }()
	rc.setSent(pos)

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Take the watch channel BEFORE reading the position and
		// scanning: a record landing after the scan still closes this
		// channel, so the idle wait below cannot sleep through it.
		watch := h.db.WatchJournal()
		curSeq, curOff := h.db.ReplPosition()

		if pos.seq == curSeq {
			// Ship only the committed prefix: bytes past curOff may
			// belong to an append that fails fsync and rolls back.
			budget := curOff - pos.off
			sent := 0
			if budget > 0 {
				n, newOff, err := h.shipRecords(pos, budget, w)
				if err != nil {
					return err
				}
				sent, pos.off = n, newOff
				rc.setSent(pos)
			}
			if sent == 0 && pos.off >= curOff {
				if err := h.ping(w, curSeq, curOff); err != nil {
					return err
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-watch:
				case <-time.After(pingEvery):
				}
			}
			continue
		}

		// The leader rotated past this segment: drain it to EOF, then
		// tell the replica to rotate in lockstep.
		for {
			n, newOff, err := h.shipRecords(pos, scanBatch, w)
			if err != nil {
				return err
			}
			pos.off = newOff
			rc.setSent(pos)
			if n == 0 {
				break
			}
		}
		next := position{seq: pos.seq + 1}
		// Pin the next segment before releasing the old one; a segment
		// already pruned (the leader rotated several times while this
		// stream lagged) surfaces as a scan error and renegotiates.
		nextRelease := h.db.PinSegment(next.seq)
		release()
		release = nextRelease
		if err := h.send(w, resp.Arr(resp.Bulk(frameRotate), resp.Int(int64(next.seq)))); err != nil {
			return err
		}
		pos = next
		rc.setSent(pos)
	}
}

// openStream decides CONTINUE vs FULLSYNC, sends the decision frame
// (plus the snapshot transfer when bootstrapping), and returns the
// stream position and the pin holding its files.
func (h *Hub) openStream(replid string, reqPos position, w *bufio.Writer) (position, func(), error) {
	if replid == h.replid {
		release := h.db.PinSegment(reqPos.seq)
		if h.resumable(reqPos) {
			err := h.send(w, resp.Arr(resp.Bulk(frameContinue),
				resp.Int(int64(reqPos.seq)), resp.Int(reqPos.off)))
			if err != nil {
				release()
				return position{}, nil, err
			}
			return reqPos, release, nil
		}
		release()
	}
	return h.fullsync(w)
}

// resumable reports whether an incremental catch-up from pos is safe:
// the segment's journal still exists (pinned first, so this cannot
// race pruning) and pos.off does not exceed its committed prefix.
func (h *Hub) resumable(pos position) bool {
	curSeq, curOff := h.db.ReplPosition()
	if pos.seq > curSeq {
		return false
	}
	st, err := os.Stat(h.db.JournalFile(pos.seq))
	if err != nil || pos.off > st.Size() {
		return false
	}
	if pos.seq == curSeq && pos.off > curOff {
		return false
	}
	return true
}

// fullsync cuts a fresh snapshot boundary (Save rotates the journal,
// so the streamed snapshot pairs with an empty journal — the replica
// needs no journal backfill) and ships the snapshot file verbatim.
func (h *Hub) fullsync(w *bufio.Writer) (position, func(), error) {
	if err := fault.Inject(FPFullsyncSave); err != nil {
		return position{}, nil, fmt.Errorf("repl: fullsync save: %w", err)
	}
	if err := h.db.Save(); err != nil {
		return position{}, nil, fmt.Errorf("repl: fullsync save: %w", err)
	}
	seq, _ := h.db.ReplPosition()
	release := h.db.PinSegment(seq)
	fail := func(err error) (position, func(), error) {
		release()
		return position{}, nil, err
	}

	if err := h.send(w, resp.Arr(resp.Bulk(frameFullsync),
		resp.Bulk(h.replid), resp.Int(int64(seq)))); err != nil {
		return fail(err)
	}
	f, err := os.Open(h.db.SnapshotFile(seq))
	if err != nil {
		return fail(fmt.Errorf("repl: fullsync read: %w", err))
	}
	// Read-only file; close failures cannot lose data.
	defer f.Close()
	var total int64
	buf := make([]byte, snapChunk)
	for {
		if err := fault.Inject(FPFullsyncRead); err != nil {
			return fail(fmt.Errorf("repl: fullsync read: %w", err))
		}
		n, rerr := f.Read(buf)
		if n > 0 {
			total += int64(n)
			if err := h.send(w, resp.Arr(resp.Bulk(frameSnap), resp.Bulk(string(buf[:n])))); err != nil {
				return fail(err)
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return fail(fmt.Errorf("repl: fullsync read: %w", rerr))
		}
	}
	if err := h.send(w, resp.Arr(resp.Bulk(frameSnapEnd), resp.Int(total))); err != nil {
		return fail(err)
	}
	obs.ReplBytesShipped.Add(total)
	return position{seq: seq}, release, nil
}

// shipRecords scans up to maxBytes of committed records at pos and
// sends them as REC frames, returning how many and the new offset.
func (h *Hub) shipRecords(pos position, maxBytes int64, w *bufio.Writer) (int, int64, error) {
	recs, newOff, err := gdb.ScanRecords(h.db.JournalFile(pos.seq), pos.off, maxBytes)
	if err != nil {
		return 0, pos.off, fmt.Errorf("repl: tailing journal %d: %w", pos.seq, err)
	}
	for _, raw := range recs {
		err := h.send(w, resp.Arr(resp.Bulk(frameRec),
			resp.Int(int64(pos.seq)), resp.Bulk(string(raw))))
		if err != nil {
			return 0, pos.off, err
		}
		obs.ReplRecordsShipped.Inc()
		obs.ReplBytesShipped.Add(int64(len(raw)))
	}
	return len(recs), newOff, nil
}

// ping reports the leader's committed position on an idle stream.
func (h *Hub) ping(w *bufio.Writer, seq uint64, off int64) error {
	return h.send(w, resp.Arr(resp.Bulk(framePing),
		resp.Int(int64(seq)), resp.Int(off), resp.Int(time.Now().UnixMicro())))
}

// send writes one frame and flushes it, behind the tearable send
// failpoint.
func (h *Hub) send(w *bufio.Writer, frame resp.Value) error {
	if err := fault.Inject(FPSend); err != nil {
		return fmt.Errorf("repl: send: %w", err)
	}
	if err := resp.Write(w, frame); err != nil {
		return fmt.Errorf("repl: send: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("repl: send: %w", err)
	}
	return nil
}

// setSent records the stream's shipped position for INFO.
func (rc *replicaConn) setSent(pos position) {
	rc.mu.Lock()
	rc.sent = pos
	rc.mu.Unlock()
}

// InfoLines renders the leader's INFO replication section.
func (h *Hub) InfoLines() []string {
	seq, off := h.db.ReplPosition()
	h.mu.Lock()
	conns := make([]*replicaConn, 0, len(h.replicas))
	for rc := range h.replicas {
		conns = append(conns, rc)
	}
	h.mu.Unlock()
	sort.Slice(conns, func(i, j int) bool { return conns[i].addr < conns[j].addr })
	lines := []string{
		"role:leader",
		"replid:" + h.replid,
		fmt.Sprintf("journal_seq:%d", seq),
		fmt.Sprintf("journal_offset:%d", off),
		fmt.Sprintf("connected_replicas:%d", len(conns)),
	}
	for i, rc := range conns {
		rc.mu.Lock()
		sent := rc.sent
		rc.mu.Unlock()
		lines = append(lines, fmt.Sprintf("replica%d:addr=%s,seq=%d,offset=%d,age_seconds=%d",
			i, rc.addr, sent.seq, sent.off, int64(time.Since(rc.since).Seconds())))
	}
	return lines
}
