package matrix

import (
	"math/rand"
	"testing"
)

// denseRef is a naive dense Boolean matrix used as a test oracle.
type denseRef struct {
	nrows, ncols int
	v            []bool
}

func newDense(nrows, ncols int) *denseRef {
	return &denseRef{nrows: nrows, ncols: ncols, v: make([]bool, nrows*ncols)}
}

func (d *denseRef) set(i, j int)      { d.v[i*d.ncols+j] = true }
func (d *denseRef) get(i, j int) bool { return d.v[i*d.ncols+j] }

func (d *denseRef) mul(o *denseRef) *denseRef {
	out := newDense(d.nrows, o.ncols)
	for i := 0; i < d.nrows; i++ {
		for k := 0; k < d.ncols; k++ {
			if !d.get(i, k) {
				continue
			}
			for j := 0; j < o.ncols; j++ {
				if o.get(k, j) {
					out.set(i, j)
				}
			}
		}
	}
	return out
}

func (d *denseRef) toSparse() *Bool {
	m := NewBool(d.nrows, d.ncols)
	for i := 0; i < d.nrows; i++ {
		for j := 0; j < d.ncols; j++ {
			if d.get(i, j) {
				m.Set(i, j)
			}
		}
	}
	return m
}

func sparseEqualDense(t *testing.T, m *Bool, d *denseRef) {
	t.Helper()
	if m.NRows() != d.nrows || m.NCols() != d.ncols {
		t.Fatalf("shape mismatch: sparse %dx%d dense %dx%d", m.NRows(), m.NCols(), d.nrows, d.ncols)
	}
	for i := 0; i < d.nrows; i++ {
		for j := 0; j < d.ncols; j++ {
			if m.Get(i, j) != d.get(i, j) {
				t.Fatalf("entry (%d,%d): sparse=%v dense=%v", i, j, m.Get(i, j), d.get(i, j))
			}
		}
	}
}

func randomMatrix(rng *rand.Rand, nrows, ncols int, density float64) (*Bool, *denseRef) {
	m := NewBool(nrows, ncols)
	d := newDense(nrows, ncols)
	for i := 0; i < nrows; i++ {
		for j := 0; j < ncols; j++ {
			if rng.Float64() < density {
				m.Set(i, j)
				d.set(i, j)
			}
		}
	}
	return m, d
}

func mustValidate(t *testing.T, m *Bool) {
	t.Helper()
	if err := m.validate(); err != nil {
		t.Fatalf("invalid matrix: %v", err)
	}
}

func TestSetGetUnset(t *testing.T) {
	m := NewBool(4, 5)
	if m.Get(1, 2) {
		t.Fatal("fresh matrix should be empty")
	}
	m.Set(1, 2)
	m.Set(1, 2) // idempotent
	m.Set(1, 0)
	m.Set(3, 4)
	if !m.Get(1, 2) || !m.Get(1, 0) || !m.Get(3, 4) {
		t.Fatal("set entries not readable")
	}
	if m.NVals() != 3 {
		t.Fatalf("NVals = %d, want 3", m.NVals())
	}
	m.Unset(1, 2)
	m.Unset(1, 2) // idempotent
	if m.Get(1, 2) || m.NVals() != 2 {
		t.Fatalf("after Unset: Get=%v NVals=%d", m.Get(1, 2), m.NVals())
	}
	mustValidate(t, m)
}

func TestSetOrderIndependent(t *testing.T) {
	a := NewBool(1, 10)
	b := NewBool(1, 10)
	cols := []int{7, 3, 9, 0, 5}
	for _, c := range cols {
		a.Set(0, c)
	}
	for i := len(cols) - 1; i >= 0; i-- {
		b.Set(0, cols[i])
	}
	if !a.Equal(b) {
		t.Fatalf("insertion order changed result:\n%v\n%v", a, b)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []func(){
		func() { NewBool(2, 2).Set(2, 0) },
		func() { NewBool(2, 2).Set(0, -1) },
		func() { NewBool(2, 2).Get(-1, 0) },
		func() { NewBool(2, 2).Row(5) },
		func() { NewVector(3).Set(3) },
		func() { Mul(NewBool(2, 3), NewBool(2, 3)) },
		func() { Add(NewBool(2, 3), NewBool(3, 2)) },
		func() { GetDst(NewBool(2, 3)) },
		func() { NewBool(2, 2).Resize(1, 2) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewBoolFromPairs(3, 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	c := m.Clone()
	c.Set(0, 0)
	if m.Get(0, 0) {
		t.Fatal("Clone shares storage with original")
	}
	m.Unset(0, 1)
	if !c.Get(0, 1) {
		t.Fatal("Clone affected by original mutation")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if id.NVals() != 4 {
		t.Fatalf("NVals = %d", id.NVals())
	}
	m, _ := randomMatrix(rand.New(rand.NewSource(1)), 4, 4, 0.4)
	if !Mul(id, m).Equal(m) || !Mul(m, id).Equal(m) {
		t.Fatal("identity is not multiplicative identity")
	}
}

func TestPairsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, _ := randomMatrix(rng, 9, 13, 0.2)
	back := NewBoolFromPairs(9, 13, m.Pairs())
	if !back.Equal(m) {
		t.Fatal("Pairs round trip mismatch")
	}
}

func TestIterateEarlyStop(t *testing.T) {
	m := NewBoolFromPairs(3, 3, [][2]int{{0, 0}, {1, 1}, {2, 2}})
	n := 0
	m.Iterate(func(i, j int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("Iterate visited %d entries, want 2", n)
	}
}

func TestClearAndResize(t *testing.T) {
	m := NewBoolFromPairs(3, 3, [][2]int{{0, 1}, {2, 2}})
	m.Clear()
	if m.NVals() != 0 || m.Get(0, 1) {
		t.Fatal("Clear left entries behind")
	}
	m.Set(2, 2)
	m.Resize(5, 6)
	if m.NRows() != 5 || m.NCols() != 6 || !m.Get(2, 2) {
		t.Fatal("Resize lost entries or shape")
	}
	m.Set(4, 5)
	mustValidate(t, m)
}

func TestSetRow(t *testing.T) {
	m := NewBool(3, 10)
	m.Set(1, 1)
	m.SetRow(1, []uint32{2, 4, 8})
	if m.NVals() != 3 || !m.Get(1, 4) || m.Get(1, 1) {
		t.Fatal("SetRow did not replace row")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted SetRow should panic")
		}
	}()
	m.SetRow(0, []uint32{4, 2})
}

func TestStringSmallAndLarge(t *testing.T) {
	small := NewBoolFromPairs(2, 3, [][2]int{{0, 0}, {1, 2}})
	if got := small.String(); got == "" {
		t.Fatal("empty String for small matrix")
	}
	large := NewBool(100, 100)
	if got := large.String(); got != "Bool{100x100, 0 vals}" {
		t.Fatalf("large String = %q", got)
	}
}
