package cfpq

import (
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
)

// AllPairsSemiNaive evaluates the all-pairs query with semi-naive
// (delta) iteration: instead of re-multiplying full relation matrices
// every round (Algorithm 1 line 8), each round multiplies only the
// entries discovered in the previous round against the full matrices,
//
//	new(A) = Δ(B) * T(C)  +  T(B) * Δ(C)
//
// which is the standard Datalog semi-naive rewrite lifted to Boolean
// matrices. The result is identical to AllPairs; the work saved grows
// with the number of fixpoint rounds (deep hierarchies).
func AllPairsSemiNaive(g *graph.Graph, w *grammar.WCNF, opts ...Option) (*Result, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	n := g.NumVertices()
	r := newResult(w, n)
	initSimpleRules(r, g)
	initEpsRules(r, n)

	nnt := w.NumNonterms()
	// The first deltas are the full initial relations.
	delta := make([]*matrix.Bool, nnt)
	for a := 0; a < nnt; a++ {
		delta[a] = r.T[a].Clone()
	}
	for {
		if err := run.Err(); err != nil {
			return nil, err
		}
		r.Rounds++
		span := run.StartSpan(obs.SpanRound(r.Rounds))
		next := make([]*matrix.Bool, nnt)
		for a := 0; a < nnt; a++ {
			next[a] = matrix.NewBool(n, n)
		}
		progress := false
		for _, rule := range w.BinRules {
			if delta[rule.B].NVals() > 0 {
				prod, err := run.Mul(delta[rule.B], r.T[rule.C])
				if err != nil {
					span.End()
					return nil, err
				}
				fresh := matrix.Sub(prod, r.T[rule.A])
				if fresh.NVals() > 0 {
					run.Add(next[rule.A], fresh)
				}
			}
			if delta[rule.C].NVals() > 0 {
				prod, err := run.Mul(r.T[rule.B], delta[rule.C])
				if err != nil {
					span.End()
					return nil, err
				}
				fresh := matrix.Sub(prod, r.T[rule.A])
				if fresh.NVals() > 0 {
					run.Add(next[rule.A], fresh)
				}
			}
		}
		for a := 0; a < nnt; a++ {
			// Entries may have landed in T[a] through another rule of
			// the same round; keep only genuinely new ones as the delta.
			matrix.SubInPlace(next[a], r.T[a])
			if run.Add(r.T[a], next[a]) {
				progress = true
			}
			delta[a] = next[a]
		}
		span.End()
		if !progress {
			obs.CFPQRounds.Observe(int64(r.Rounds))
			r.Work = run.Spent()
			return r, nil
		}
	}
}
