package grammar

// Accepts reports whether the word (a sequence of terminal names) is in
// the language of the normalized grammar, starting from the start symbol.
//
// It runs a CYK-style fixpoint generalized to weak CNF: table[A][i][j]
// means A derives word[i:j]; empty spans are seeded from explicit eps
// rules and grow through binary rules, exactly mirroring how Algorithm 1
// treats a chain-shaped graph. Intended as a test oracle and for witness
// verification, not for performance.
func (w *WCNF) Accepts(word []string) bool {
	return w.Derives(w.Start, word)
}

// Derives reports whether nonterminal a derives the given word.
func (w *WCNF) Derives(a int, word []string) bool {
	n := len(word)
	nnt := len(w.Nonterms)
	// table[A][i*(n+1)+j] with i <= j.
	table := make([][]bool, nnt)
	for A := range table {
		table[A] = make([]bool, (n+1)*(n+1))
	}
	at := func(A, i, j int) bool { return table[A][i*(n+1)+j] }
	set := func(A, i, j int) { table[A][i*(n+1)+j] = true }

	for A, null := range w.Nullable {
		if null {
			for i := 0; i <= n; i++ {
				set(A, i, i)
			}
		}
	}
	for i, t := range word {
		id := w.TermID(t)
		if id < 0 {
			continue
		}
		for _, A := range w.byTerm[id] {
			set(A, i, i+1)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, r := range w.BinRules {
			for i := 0; i <= n; i++ {
				for j := i; j <= n; j++ {
					if at(r.A, i, j) {
						continue
					}
					for k := i; k <= j; k++ {
						if at(r.B, i, k) && at(r.C, k, j) {
							set(r.A, i, j)
							changed = true
							break
						}
					}
				}
			}
		}
	}
	return at(a, 0, n)
}
