package cfpq

import (
	"fmt"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
)

// MSSinglePathResult is a multiple-source result with single-path
// semantics: the relation matrices are restricted the way Algorithm 2
// restricts them, and every derived fact carries enough provenance to
// reconstruct one witness path.
type MSSinglePathResult struct {
	*SinglePathResult
	// Src holds the accumulated TSrc matrices, as in MSResult.
	Src []*matrix.Bool
	// Sources is the original query source set.
	Sources *matrix.Vector
}

// Answer returns the start-relation pairs restricted to the queried
// sources (see MSResult.Answer).
func (r *MSSinglePathResult) Answer() *matrix.Bool {
	return matrix.ExtractRows(r.Start(), r.Sources)
}

// MultiSourceSinglePath combines Algorithm 2 with single-path
// semantics: it evaluates the query only for paths starting at src
// while recording, for every derived fact, the first derivation that
// produced it. Combining the two is the natural extension of the
// paper's Figure 2 experiment (single-path extraction) to the
// multiple-source setting the paper advocates.
func MultiSourceSinglePath(g *graph.Graph, w *grammar.WCNF, src *matrix.Vector, opts ...Option) (*MSSinglePathResult, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	n := g.NumVertices()
	if src == nil || src.Size() != n {
		return nil, fmt.Errorf("cfpq: source vector size mismatch (graph has %d vertices)", n)
	}

	r := &MSSinglePathResult{
		SinglePathResult: &SinglePathResult{
			Result: newResult(w, n),
			prov:   make([]map[uint64]provEntry, w.NumNonterms()),
		},
		Src:     make([]*matrix.Bool, w.NumNonterms()),
		Sources: src.Clone(),
	}
	for a := range r.prov {
		r.prov[a] = map[uint64]provEntry{}
		r.Src[a] = matrix.NewBool(n, n)
	}
	matrix.AddInPlace(r.Src[w.Start], src.Diag())

	// Simple and eps rules with terminal provenance (as in SinglePath).
	// Seeding polls the governor so terminal-only queries stay
	// cancellable too.
	for _, rule := range w.TermRules {
		if err := run.Err(); err != nil {
			return nil, err
		}
		name := w.Terms[rule.Term]
		g.EdgeMatrix(name).Iterate(func(i, j int) bool {
			if !r.T[rule.A].Get(i, j) {
				r.prov[rule.A][matrix.Key(i, j)] = provEntry{kind: provEdge, rule: int32(rule.Term)}
				r.T[rule.A].Set(i, j)
			}
			return true
		})
		for _, v := range g.VertexSet(name).Ints() {
			if !r.T[rule.A].Get(v, v) {
				r.prov[rule.A][matrix.Key(v, v)] = provEntry{kind: provVertex, rule: int32(rule.Term)}
				r.T[rule.A].Set(v, v)
			}
		}
	}
	for a, nullable := range w.Nullable {
		if !nullable {
			continue
		}
		if err := run.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if !r.T[a].Get(i, i) {
				r.prov[a][matrix.Key(i, i)] = provEntry{kind: provEps}
				r.T[a].Set(i, i)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		r.Rounds++
		span := run.StartSpan(obs.SpanRound(r.Rounds))
		for ri, rule := range w.BinRules {
			// M = TSrc^A * T^B restricts rows to the current sources;
			// because TSrc^A is diagonal, M's entries are T^B entries,
			// so witnesses found against M decompose through real facts.
			run.ObserveFrontier(r.Src[rule.A].NVals())
			m, err := run.Mul(r.Src[rule.A], r.T[rule.B])
			if err != nil {
				span.End()
				return nil, err
			}
			prod, wit := matrix.MulWitness(m, r.T[rule.C])
			if err := run.Charge(prod.NVals()); err != nil {
				span.End()
				return nil, err
			}
			fresh := matrix.Sub(prod, r.T[rule.A])
			if fresh.NVals() > 0 {
				fresh.Iterate(func(i, j int) bool {
					key := matrix.Key(i, j)
					r.prov[rule.A][key] = provEntry{kind: provBin, mid: wit[key], rule: int32(ri)}
					return true
				})
				run.Add(r.T[rule.A], fresh)
				changed = true
			}
			if run.Add(r.Src[rule.B], r.Src[rule.A]) {
				changed = true
			}
			if run.Add(r.Src[rule.C], matrix.GetDst(m)) {
				changed = true
			}
		}
		span.End()
	}
	obs.CFPQRounds.Observe(int64(r.Rounds))
	r.Work = run.Spent()
	return r, nil
}
