package rpq

import (
	"context"
	"errors"
	"testing"

	"mscfpq/internal/exec"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

func engineGraph() *graph.Graph {
	g := graph.New(8)
	for i := 0; i < 7; i++ {
		g.AddEdge(i, "a", i+1)
	}
	g.AddEdge(7, "b", 0)
	g.AddEdge(3, "b", 5)
	return g
}

var allEngines = []exec.Engine{
	exec.EngineAuto, exec.EngineNFA, exec.EngineDFA, exec.EngineCFPQ, exec.EngineTensor,
}

func TestEvalEnginesAgree(t *testing.T) {
	g := engineGraph()
	src := matrix.NewVectorFromIndices(g.NumVertices(), []int{0, 3})
	for _, query := range []string{"a+", "a* b", "a a b?"} {
		var want *matrix.Bool
		for _, e := range allEngines {
			got, err := Eval(g, query, src, exec.WithEngine(e))
			if err != nil {
				t.Fatalf("%q engine %s: %v", query, e, err)
			}
			if want == nil {
				want = got
			} else if !got.Equal(want) {
				t.Fatalf("%q engine %s disagrees with %s", query, e, allEngines[0])
			}
		}
	}
}

func TestEvalValidatesInputs(t *testing.T) {
	g := engineGraph()
	src := matrix.NewVectorFromIndices(g.NumVertices(), []int{0})
	if _, err := Eval(nil, "a", src); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Eval(g, "a", nil); err == nil {
		t.Fatal("nil sources accepted")
	}
	if _, err := Eval(g, "a (", src); err == nil {
		t.Fatal("bad regex accepted")
	}
}

func TestEvalCancelledContext(t *testing.T) {
	g := engineGraph()
	src := matrix.NewVectorFromIndices(g.NumVertices(), []int{0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range allEngines {
		_, err := Eval(g, "a+ b", src, exec.WithEngine(e), exec.WithContext(ctx))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("engine %s: err = %v, want context.Canceled", e, err)
		}
	}
}
