// Package obscatalog kills metric/span name drift: every name a trace
// or instrument call uses must resolve to the internal/obs catalog —
// an instrument registered in obs, or an obs Key*/Span*/Layer* string
// constant — and, conversely, every catalog entry must be referenced
// somewhere outside obs (a registered-but-never-bumped counter, or a
// span constant nothing emits, is drift in the other direction).
//
// Name arguments may be: a string constant whose value is a registered
// instrument name or equals an obs catalog constant, any expression
// rooted in the obs package (obs.SpanQuery, obs.SpanRound(n)), or a
// bare parameter of the enclosing function — the wrapper-forwarding
// idiom (exec.Run.StartSpan) whose own call sites are checked instead.
//
// Registered instrument names must also start with a declared Layer*
// prefix, so the RESP INFO sectioning never silently buckets a new
// metric into the wrong place.
package obscatalog

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"mscfpq/internal/analysis"
)

// Analyzer is the obscatalog check.
var Analyzer = &analysis.Analyzer{
	Name:            "obscatalog",
	Doc:             "every metric/span name in code must resolve to the internal/obs instrument catalog, and every catalog entry must be referenced (unused entries are drift)",
	IgnoreTestFiles: true,
	RunModule:       run,
}

// catalog is what the obs package declares.
type catalog struct {
	obsPkg *types.Package
	names  map[string]bool // registered instrument names + const values
	layers map[string]bool // Layer* const values

	// entries are the reverse-check subjects: instrument vars and
	// Key*/Span* consts, in declaration order.
	entries []entry
}

type entry struct {
	obj  types.Object
	name string
	pos  token.Pos
}

func run(pass *analysis.ModulePass) error {
	obsUnits := findObsUnits(pass)
	if len(obsUnits) == 0 {
		return nil // nothing to check against (driver run without obs in scope)
	}
	cat := collectCatalog(pass, obsUnits)
	checkLayers(pass, obsUnits, cat)
	for _, u := range pass.Units {
		if u.Pkg == cat.obsPkg {
			continue
		}
		checkNames(pass, u, cat)
	}
	if pass.Complete {
		checkUnreferenced(pass, cat)
	}
	return nil
}

// findObsUnits locates the obs package among the loaded units, loading
// it on demand when the driver was pointed at a subset of directories.
func findObsUnits(pass *analysis.ModulePass) []*analysis.Unit {
	var out []*analysis.Unit
	for _, u := range pass.Units {
		if pathBase(u.Pkg.Path()) == "obs" {
			out = append(out, u)
		}
	}
	if len(out) > 0 {
		return out
	}
	if pass.Module == nil {
		return nil
	}
	units, err := pass.Module.LoadUnits("internal/obs", false)
	if err != nil {
		return nil
	}
	for _, u := range units {
		pass.AddUnit(u)
	}
	return units
}

func pathBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// collectCatalog gathers registered instrument names, Key*/Span*/Layer*
// constants, and the reverse-check entries from the obs package.
func collectCatalog(pass *analysis.ModulePass, obsUnits []*analysis.Unit) *catalog {
	cat := &catalog{obsPkg: obsUnits[0].Pkg, names: map[string]bool{}, layers: map[string]bool{}}
	for _, u := range obsUnits {
		for _, f := range u.Files {
			if isTestFile(u, f) {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					collectSpec(u, gd.Tok, vs, cat)
				}
			}
		}
	}
	return cat
}

func collectSpec(u *analysis.Unit, tok token.Token, vs *ast.ValueSpec, cat *catalog) {
	for i, name := range vs.Names {
		obj := u.Info.Defs[name]
		if obj == nil || !obj.Exported() {
			continue
		}
		switch {
		case tok == token.CONST:
			val := constStringValue(obj)
			if val == "" {
				continue
			}
			switch {
			case strings.HasPrefix(name.Name, "Layer"):
				cat.layers[val] = true
				cat.names[val] = true
			case strings.HasPrefix(name.Name, "Key"), strings.HasPrefix(name.Name, "Span"):
				cat.names[val] = true
				cat.entries = append(cat.entries, entry{obj: obj, name: val, pos: name.Pos()})
			}
		case tok == token.VAR && i < len(vs.Values):
			// Instrument registrations: Default.Counter("name") etc.
			if val, pos, ok := registrationName(u, vs.Values[i]); ok {
				cat.names[val] = true
				cat.entries = append(cat.entries, entry{obj: obj, name: val, pos: pos})
			}
		}
	}
}

// constStringValue returns a constant's string value, or "".
func constStringValue(obj types.Object) string {
	c, ok := obj.(*types.Const)
	if !ok || c.Val().Kind() != constant.String {
		return ""
	}
	return constant.StringVal(c.Val())
}

// registrationName extracts the constant name argument of a
// Counter/Gauge/Histogram registration expression.
func registrationName(u *analysis.Unit, rhs ast.Expr) (string, token.Pos, bool) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", token.NoPos, false
	}
	fn := analysis.CalleeFunc(u.Info, call)
	if fn == nil || !registerMethods[fn.Name()] {
		return "", token.NoPos, false
	}
	tv, ok := u.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", token.NoPos, false
	}
	return constant.StringVal(tv.Value), call.Args[0].Pos(), true
}

var registerMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// checkLayers verifies every registered instrument name starts with a
// declared layer prefix.
func checkLayers(pass *analysis.ModulePass, obsUnits []*analysis.Unit, cat *catalog) {
	if len(cat.layers) == 0 {
		return
	}
	for _, e := range cat.entries {
		if _, isVar := e.obj.(*types.Var); !isVar {
			continue // only registered instruments carry layer prefixes
		}
		prefix, _, _ := strings.Cut(e.name, ".")
		if !cat.layers[prefix] {
			pass.Reportf(e.pos, "instrument %q has no declared layer: %q is not a Layer* constant (INFO sectioning would misfile it)", e.name, prefix)
		}
	}
}

// checkNames verifies every name argument in a non-obs unit resolves
// to the catalog.
func checkNames(pass *analysis.ModulePass, u *analysis.Unit, cat *catalog) {
	for _, f := range u.Files {
		var enclosing *ast.FuncDecl
		stackWalk := func(n ast.Node, stack []ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok {
				enclosing = fd
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !nameTakingCall(u.Info, call, cat) || len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			if tv, ok := u.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
				name := constant.StringVal(tv.Value)
				if !cat.names[name] {
					pass.Reportf(arg.Pos(), "metric/span name %q is not in the internal/obs catalog — declare it there (or reuse an existing Span*/Key* constant)", name)
				}
				return true
			}
			if obsRooted(u.Info, arg, cat.obsPkg) {
				return true
			}
			if forwardedParam(u.Info, arg, enclosing) {
				return true
			}
			pass.Reportf(arg.Pos(), "dynamic metric/span name does not come from the obs catalog — derive it through an obs helper (e.g. obs.SpanRound) or forward a checked parameter")
			return true
		}
		analysis.WalkStack(f, stackWalk)
	}
}

// nameTakingCall matches the APIs whose first argument is a metric or
// span name: obs.NewTrace, (*obs.Trace).Start/AddSpan/Add,
// (*obs.Registry).Counter/Gauge/Histogram, and the exec.Run.StartSpan
// forwarder.
func nameTakingCall(info *types.Info, call *ast.CallExpr, cat *catalog) bool {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	recvName := ""
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recvName = named.Obj().Name()
		}
	}
	if fn.Pkg() == cat.obsPkg || pathBase(fn.Pkg().Path()) == "obs" {
		switch recvName {
		case "":
			return fn.Name() == "NewTrace"
		case "Trace":
			return fn.Name() == "Start" || fn.Name() == "AddSpan" || fn.Name() == "Add"
		case "Registry":
			return registerMethods[fn.Name()]
		}
		return false
	}
	if strings.HasSuffix(fn.Pkg().Path(), "internal/exec") && recvName == "Run" {
		return fn.Name() == "StartSpan"
	}
	return false
}

// obsRooted reports whether the expression derives from the obs
// package: a qualified obs identifier or a call of an obs function.
func obsRooted(info *types.Info, e ast.Expr, obsPkg *types.Package) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := analysis.CalleeFunc(info, v)
		return fn != nil && fn.Pkg() != nil && (fn.Pkg() == obsPkg || pathBase(fn.Pkg().Path()) == "obs")
	case *ast.SelectorExpr:
		obj := info.Uses[v.Sel]
		return obj != nil && obj.Pkg() != nil && (obj.Pkg() == obsPkg || pathBase(obj.Pkg().Path()) == "obs")
	case *ast.Ident:
		obj := info.Uses[v]
		return obj != nil && obj.Pkg() != nil && (obj.Pkg() == obsPkg || pathBase(obj.Pkg().Path()) == "obs")
	}
	return false
}

// forwardedParam reports whether arg is a bare parameter of the
// enclosing function — the wrapper idiom, whose callers are checked.
func forwardedParam(info *types.Info, arg ast.Expr, enclosing *ast.FuncDecl) bool {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok || enclosing == nil || enclosing.Type.Params == nil {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	for _, field := range enclosing.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// isTestFile reports whether f is a _test.go file of its unit.
func isTestFile(u *analysis.Unit, f *ast.File) bool {
	return strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go")
}

// checkUnreferenced flags catalog entries no non-test file outside
// their declaration ever mentions. Units type-check independently, so
// the same obs declaration materializes as distinct objects per
// importing unit — entries are matched by (package path, name).
func checkUnreferenced(pass *analysis.ModulePass, cat *catalog) {
	referenced := map[string]bool{}
	for _, u := range pass.Units {
		for _, f := range u.Files {
			if isTestFile(u, f) {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := u.Info.Uses[id]; obj != nil && obj.Pkg() != nil {
					referenced[obj.Pkg().Path()+"."+obj.Name()] = true
				}
				return true
			})
		}
	}
	for _, e := range cat.entries {
		if !referenced[e.obj.Pkg().Path()+"."+e.obj.Name()] {
			pass.Reportf(e.pos, "catalog entry %q is never referenced outside its declaration — drift (delete it or wire it up)", e.name)
		}
	}
}
