package obs

import "io"

// CountingWriter wraps an io.Writer and counts the bytes successfully
// written through it — how the durability layer sizes snapshot output
// without buffering it.
type CountingWriter struct {
	W io.Writer
	N int64
}

func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.W.Write(p)
	c.N += int64(n)
	return n, err
}
