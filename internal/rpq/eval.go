package rpq

import (
	"fmt"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
)

// EvalPairs answers a multiple-source regular path query with pair
// semantics: the result matrix has (s, v) set when some path from source
// s to v spells a word of the regex's language.
//
// The evaluation is expressed in linear algebra, mirroring how the
// database layer chains relation matrices: one |V| x |V| reachability
// matrix R_q per NFA state, seeded with diag(src) at the start state and
// grown by R_q' += R_q * G^l for every transition q -l-> q' until
// fixpoint. The answer is R_accept restricted to src rows.
func EvalPairs(g *graph.Graph, n *NFA, src *matrix.Vector, opts ...exec.Option) (*matrix.Bool, error) {
	if g == nil || n == nil {
		return nil, fmt.Errorf("rpq: nil graph or NFA")
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	nv := g.NumVertices()
	if src == nil || src.Size() != nv {
		return nil, fmt.Errorf("rpq: source vector size mismatch (graph has %d vertices)", nv)
	}
	r := make([]*matrix.Bool, n.NumStates)
	for q := range r {
		r[q] = matrix.NewBool(nv, nv)
	}
	matrix.AddInPlace(r[n.Start], src.Diag())

	// Resolve each label to its graph matrix once.
	labelM := map[string]*matrix.Bool{}
	for _, l := range n.Labels() {
		m := g.EdgeMatrix(l)
		if vs := g.VertexSet(l); vs.NVals() > 0 {
			m = matrix.Add(m, vs.Diag())
		}
		labelM[l] = m
	}

	rounds := 0
	for changed := true; changed; {
		changed = false
		rounds++
		span := run.StartSpan(obs.SpanRound(rounds))
		for _, e := range n.Eps {
			if run.Add(r[e[1]], r[e[0]]) {
				changed = true
			}
		}
		for l, trans := range n.Trans {
			gm := labelM[l]
			if gm.NVals() == 0 {
				continue
			}
			for _, tr := range trans {
				if r[tr[0]].NVals() == 0 {
					continue
				}
				prod, err := run.Mul(r[tr[0]], gm)
				if err != nil {
					span.End()
					return nil, err
				}
				if run.Add(r[tr[1]], prod) {
					changed = true
				}
			}
		}
		span.End()
	}
	obs.RPQRounds.Observe(int64(rounds))
	return matrix.ExtractRows(r[n.Accept], src), nil
}

// EvalReachable answers the query with set semantics: the vertices
// reachable from any source by a path in the language.
func EvalReachable(g *graph.Graph, n *NFA, src *matrix.Vector, opts ...exec.Option) (*matrix.Vector, error) {
	pairs, err := EvalPairs(g, n, src, opts...)
	if err != nil {
		return nil, err
	}
	return matrix.ReduceCols(pairs), nil
}

// ToGrammar reduces the NFA to a right-linear context-free grammar whose
// language equals the automaton's: one nonterminal per state, a
// production Q_from -> l Q_to per transition, unit productions for eps
// transitions, and Q_accept -> eps. Running the CFPQ engine on this
// grammar answers the regular query, demonstrating the paper's claim
// that regular queries are a partial case of CFPQ.
func ToGrammar(n *NFA) *grammar.Grammar {
	name := func(q int) string { return fmt.Sprintf("Q%d", q) }
	var prods []grammar.Production
	// Iterate labels in sorted order: grammar nonterminal ids are
	// assigned in production order, so ranging the Trans map directly
	// would make the reduction nondeterministic across runs.
	for _, l := range n.Labels() {
		for _, tr := range n.Trans[l] {
			prods = append(prods, grammar.Production{
				LHS: name(tr[0]),
				RHS: []grammar.Symbol{grammar.T(l), grammar.N(name(tr[1]))},
			})
		}
	}
	for _, e := range n.Eps {
		prods = append(prods, grammar.Production{
			LHS: name(e[0]),
			RHS: []grammar.Symbol{grammar.N(name(e[1]))},
		})
	}
	prods = append(prods, grammar.Production{LHS: name(n.Accept)})
	return grammar.MustNew(name(n.Start), prods)
}
