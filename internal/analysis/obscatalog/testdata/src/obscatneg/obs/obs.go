// Package obs is the clean fixture catalog: every entry referenced,
// every instrument inside a declared layer.
package obs

import "strconv"

type Counter struct{}

func (c *Counter) Inc() {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

var Default = &Registry{}

const (
	LayerKernel = "kernel"
	LayerBatch  = "batch"
)

var (
	KernelOps   = Default.Counter("kernel.mul.ops")
	BatchGroups = Default.Counter("batch.groups")
)

const (
	SpanQuery     = "query"
	SpanBatchWait = "batch.wait"
)

// SpanRound derives a per-round span name inside the catalog package.
func SpanRound(n int) string { return "round " + strconv.Itoa(n) }

type Trace struct{}

func NewTrace(name string) *Trace { return &Trace{} }

func (t *Trace) Start(name string) {}
