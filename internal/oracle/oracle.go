// Package oracle holds slow-but-obviously-correct reference evaluators
// for the differential test harness (see TESTING.md). Both oracles work
// directly on edge lists with plain Go maps and share no code with the
// production linear-algebra kernels in internal/matrix, so an agreement
// between an engine and an oracle is evidence of correctness rather
// than of a shared bug.
//
// The CFPQ oracle is the CYK-style closure of Azimov's relation spelled
// out on triples: a fact (A, i, j) means some path from i to j spells a
// word derivable from nonterminal A. The RPQ oracle is a breadth-first
// search over the product of the graph and the query NFA.
package oracle

import (
	"sort"

	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/rpq"
)

// Relation is the oracle's answer to a CFPQ: one fact set per grammar
// nonterminal.
type Relation struct {
	w     *grammar.WCNF
	n     int
	facts []map[[2]int]bool // per nonterminal: set of (i, j)
}

// NumVertices returns the vertex universe size of the relation.
func (r *Relation) NumVertices() int { return r.n }

// Has reports whether fact (a, i, j) holds.
func (r *Relation) Has(a, i, j int) bool { return r.facts[a][[2]int{i, j}] }

// Count returns the number of facts of nonterminal a.
func (r *Relation) Count(a int) int { return len(r.facts[a]) }

// Pairs returns the sorted fact pairs of nonterminal a.
func (r *Relation) Pairs(a int) [][2]int {
	out := make([][2]int, 0, len(r.facts[a]))
	for p := range r.facts[a] {
		out = append(out, p)
	}
	SortPairs(out)
	return out
}

// StartPairs returns the sorted pairs of the start nonterminal — the
// all-pairs CFPQ answer.
func (r *Relation) StartPairs() [][2]int { return r.Pairs(r.w.Start) }

// StartPairsFrom returns the start-nonterminal pairs whose source lies
// in sources — the multiple-source CFPQ answer the paper's Algorithm 2
// must reproduce. Sources may repeat or lie outside the vertex range;
// such entries cannot contribute pairs and are ignored.
func (r *Relation) StartPairsFrom(sources []int) [][2]int {
	keep := map[int]bool{}
	for _, s := range sources {
		if s >= 0 && s < r.n {
			keep[s] = true
		}
	}
	var out [][2]int
	for p := range r.facts[r.w.Start] {
		if keep[p[0]] {
			out = append(out, p)
		}
	}
	SortPairs(out)
	return out
}

// CFPQ computes the full context-free relations of w over g by naive
// fixpoint iteration on explicit triples. Each pass scans every binary
// rule against the complete current fact sets and buffers additions, so
// no pass mutates a set it is iterating; the loop stops after a pass
// that adds nothing. Exponentially clearer, polynomially slower than
// the production engines — intended for small generated instances only.
func CFPQ(g *graph.Graph, w *grammar.WCNF) *Relation {
	n := g.NumVertices()
	r := &Relation{w: w, n: n, facts: make([]map[[2]int]bool, w.NumNonterms())}
	// succ[a][i] is the set of j with (a, i, j), the index the closure
	// joins through.
	succ := make([]map[int]map[int]bool, w.NumNonterms())
	for a := range r.facts {
		r.facts[a] = map[[2]int]bool{}
		succ[a] = map[int]map[int]bool{}
	}
	add := func(a, i, j int) bool {
		p := [2]int{i, j}
		if r.facts[a][p] {
			return false
		}
		r.facts[a][p] = true
		if succ[a][i] == nil {
			succ[a][i] = map[int]bool{}
		}
		succ[a][i][j] = true
		return true
	}

	// Simple rules A -> t: edges labeled t (reversed base edges for an
	// inverse label t = "x_r"), and self pairs for vertices labeled t.
	for _, rule := range w.TermRules {
		name := w.Terms[rule.Term]
		base, inverse := name, false
		if grammar.IsInverseLabel(name) {
			base, inverse = grammar.InverseLabel(name), true
		}
		g.Edges(func(src int, label string, dst int) bool {
			if label == base {
				if inverse {
					add(rule.A, dst, src)
				} else {
					add(rule.A, src, dst)
				}
			}
			return true
		})
		for _, v := range g.VertexSet(name).Ints() {
			add(rule.A, v, v)
		}
	}
	// Eps rules: every vertex relates to itself.
	for a, nullable := range w.Nullable {
		if nullable {
			for v := 0; v < n; v++ {
				add(a, v, v)
			}
		}
	}

	// Closure over the binary rules.
	type triple struct{ a, i, j int }
	for changed := true; changed; {
		changed = false
		var buf []triple
		for _, rule := range w.BinRules {
			for i, ks := range succ[rule.B] {
				for k := range ks {
					for j := range succ[rule.C][k] {
						if !r.facts[rule.A][[2]int{i, j}] {
							//lint:ignore detrange buf is folded into the facts sets below; discovery order never reaches output
							buf = append(buf, triple{rule.A, i, j})
						}
					}
				}
			}
		}
		for _, t := range buf {
			if add(t.a, t.i, t.j) {
				changed = true
			}
		}
	}
	return r
}

// RPQ answers a multiple-source regular path query by breadth-first
// search over the product of g and the NFA: pairs (s, v) such that some
// path from source s to v spells a word of the automaton's language.
// Like the engines, a label matches graph edges and, as a zero-length
// step, vertices carrying it as a vertex label; an inverse label "x_r"
// traverses x edges backwards. Out-of-range or duplicate sources are
// ignored.
func RPQ(g *graph.Graph, nfa *rpq.NFA, sources []int) [][2]int {
	n := g.NumVertices()
	// adj[l][v] lists the vertices one l-step away from v.
	adj := map[string]map[int][]int{}
	for _, l := range nfa.Labels() {
		out := map[int][]int{}
		base, inverse := l, false
		if grammar.IsInverseLabel(l) {
			base, inverse = grammar.InverseLabel(l), true
		}
		g.Edges(func(src int, label string, dst int) bool {
			if label == base {
				if inverse {
					out[dst] = append(out[dst], src)
				} else {
					out[src] = append(out[src], dst)
				}
			}
			return true
		})
		for _, v := range g.VertexSet(l).Ints() {
			out[v] = append(out[v], v)
		}
		adj[l] = out
	}
	// eps[q] lists the NFA states reachable from q by one eps move.
	eps := map[int][]int{}
	for _, e := range nfa.Eps {
		eps[e[0]] = append(eps[e[0]], e[1])
	}
	// trans[q] lists the labeled NFA moves out of q.
	type move struct {
		label string
		to    int
	}
	trans := map[int][]move{}
	for l, trs := range nfa.Trans {
		for _, tr := range trs {
			trans[tr[0]] = append(trans[tr[0]], move{l, tr[1]})
		}
	}

	var out [][2]int
	done := map[int]bool{}
	for _, s := range sources {
		if s < 0 || s >= n || done[s] {
			continue
		}
		done[s] = true
		type state struct{ q, v int }
		start := state{nfa.Start, s}
		seen := map[state]bool{start: true}
		queue := []state{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			push := func(next state) {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
			for _, q := range eps[cur.q] {
				push(state{q, cur.v})
			}
			for _, m := range trans[cur.q] {
				for _, v := range adj[m.label][cur.v] {
					push(state{m.to, v})
				}
			}
		}
		for st := range seen {
			if st.q == nfa.Accept {
				out = append(out, [2]int{s, st.v})
			}
		}
	}
	SortPairs(out)
	return out
}

// SortPairs orders pairs lexicographically, the canonical form the
// differential suite compares answers in.
func SortPairs(ps [][2]int) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}
