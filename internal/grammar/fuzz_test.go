package grammar

import (
	"os"
	"path/filepath"
	"testing"
)

// queryFileSeeds returns the contents of the repository's checked-in
// query grammars (queries/*.txt) so the shipped surface syntax is always
// in the fuzz corpus. Missing files are skipped: the corpus still works
// when the package is vendored elsewhere.
func queryFileSeeds() []string {
	paths, _ := filepath.Glob(filepath.Join("..", "..", "queries", "*.txt"))
	var seeds []string
	for _, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			seeds = append(seeds, string(data))
		}
	}
	return seeds
}

// FuzzParse asserts parsing never panics and that parsed grammars
// normalize and render/re-parse cleanly.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"S -> a S b | a b",
		"S -> eps\nS -> a",
		"S -> A B\nA -> a | eps\nB -> b B | b",
		"S -> subClassOf_r S subClassOf | type_r type",
		"# comment\nS->a",
		"S -> | a",
		"-> a",
	}
	seeds = append(seeds, queryFileSeeds()...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return
		}
		// A grammar the parser accepts must render and re-parse.
		back, err := ParseString(g.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, g.String())
		}
		if back.Start != g.Start {
			t.Fatalf("round trip changed start: %q vs %q", back.Start, g.Start)
		}
		// Normalization must not panic; errors are acceptable.
		if w, err := ToWCNF(g); err == nil {
			// The normalized grammar answers membership without panics.
			w.Accepts([]string{"a", "b"})
		}
	})
}
