// Ontology analysis: the paper's motivating RDF workload.
//
// The program generates a synthetic analog of the "core" ontology from
// the CFPQ_Data dataset, then evaluates the same-generation queries G1
// and G2 in the multiple-source setting: given a handful of concept
// vertices, find the concepts at the same hierarchy depth. It also
// demonstrates the cached index (Algorithm 3): the second batch of
// sources reuses everything the first batch computed.
//
// Run with: go run ./examples/ontology
package main

import (
	"fmt"
	"log"
	"time"

	"mscfpq"
)

func main() {
	g, err := mscfpq.GenerateDataset("core", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core analog: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	w, err := mscfpq.ToWCNF(mscfpq.G2())
	if err != nil {
		log.Fatal(err)
	}

	// Fresh multiple-source query for the first ten concepts.
	batch1 := mscfpq.NewVertexSet(g.NumVertices(), 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	start := time.Now()
	res, err := mscfpq.EvalCFPQ(g, w, batch1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G2 from 10 sources: %d same-generation pairs in %v\n",
		res.Stats().Answers, time.Since(start).Round(time.Microsecond))

	// The cached index: batch 1 warms it, batch 2 overlaps heavily and
	// finishes far faster than a fresh evaluation.
	idx, err := mscfpq.NewIndex(g, w)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := idx.MultiSourceSmart(batch1); err != nil {
		log.Fatal(err)
	}
	cold := time.Since(start)
	batch2 := mscfpq.NewVertexSet(g.NumVertices(), 5, 6, 7, 8, 9, 10, 11, 12)
	start = time.Now()
	smart, err := idx.MultiSourceSmart(batch2)
	if err != nil {
		log.Fatal(err)
	}
	warm := time.Since(start)
	fmt.Printf("index: cold batch %v, overlapping warm batch %v (%d pairs)\n",
		cold.Round(time.Microsecond), warm.Round(time.Microsecond), smart.Answer().NVals())

	// G1 adds the type relation: classes also relate when they share
	// typed instances (the query starts at class vertices, whose
	// incoming type/subClassOf edges drive the x̄-steps).
	w1, err := mscfpq.ToWCNF(mscfpq.G1())
	if err != nil {
		log.Fatal(err)
	}
	classes := mscfpq.NewVertexSet(g.NumVertices(), 0, 1, 2, 3, 4)
	res1, err := mscfpq.EvalCFPQ(g, w1, classes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("G1 from 5 class vertices: %d pairs\n", res1.Stats().Answers)
	for i, p := range res1.Pairs() {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %d and %d are same-generation\n", p[0], p[1])
	}
}
