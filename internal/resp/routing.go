package resp

import (
	"fmt"
	"sync"
)

// RoutingClient fans a replicated deployment's traffic to the right
// node: writes go to the leader, reads round-robin across replicas
// (falling back to the leader when none answer). If leadership moved —
// a write lands on a replica and comes back READONLY — the client
// follows the error's leader hint and retries once, so callers keep a
// single handle across failovers. Safe for concurrent use; calls
// serialize on one connection per node.
type RoutingClient struct {
	mu       sync.Mutex
	leader   string             // guarded by mu
	replicas []string           // guarded by mu
	next     int                // guarded by mu: round-robin cursor over replicas
	conns    map[string]*Client // guarded by mu: one live connection per address
}

// NewRoutingClient targets a leader and any number of read replicas.
// Connections are dialed lazily on first use.
func NewRoutingClient(leader string, replicas ...string) *RoutingClient {
	return &RoutingClient{
		leader:   leader,
		replicas: append([]string(nil), replicas...),
		conns:    map[string]*Client{},
	}
}

// Leader returns the address writes currently route to.
func (rc *RoutingClient) Leader() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.leader
}

// clientLocked returns (dialing if needed) the connection for addr.
// Caller holds mu.
func (rc *RoutingClient) clientLocked(addr string) (*Client, error) {
	if c, ok := rc.conns[addr]; ok {
		return c, nil
	}
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	rc.conns[addr] = c
	return c, nil
}

// dropLocked discards addr's connection (after a hard failure). Caller
// holds mu.
func (rc *RoutingClient) dropLocked(addr string) {
	if c, ok := rc.conns[addr]; ok {
		//lint:ignore errdrop best-effort close of a connection that already failed
		_ = c.Close()
		delete(rc.conns, addr)
	}
}

// doLocked runs one command against addr with retry. Caller holds mu.
func (rc *RoutingClient) doLocked(addr string, args []string) (Value, error) {
	c, err := rc.clientLocked(addr)
	if err != nil {
		return Value{}, err
	}
	v, err := c.DoRetry(3, args...)
	if IsBrokenConn(err) {
		rc.dropLocked(addr)
	}
	return v, err
}

// Write sends a mutating command to the leader. A READONLY rejection
// means the node demoted (or the caller bootstrapped against a
// replica): the embedded leader hint becomes the new write target and
// the command is retried there once.
func (rc *RoutingClient) Write(args ...string) (Value, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	v, err := rc.doLocked(rc.leader, args)
	if hint, ok := LeaderHint(err); ok && hint != rc.leader {
		rc.leader = hint
		return rc.doLocked(rc.leader, args)
	}
	return v, err
}

// Read sends a read-only command to the next replica in round-robin
// order; a replica that fails outright is skipped (its result is the
// error only when every node, leader included, failed). With no
// replicas configured the leader serves reads directly.
func (rc *RoutingClient) Read(args ...string) (Value, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var lastErr error
	for range rc.replicas {
		addr := rc.replicas[rc.next%len(rc.replicas)]
		rc.next++
		v, err := rc.doLocked(addr, args)
		if err == nil {
			return v, nil
		}
		lastErr = err
	}
	v, err := rc.doLocked(rc.leader, args)
	if err != nil && lastErr != nil {
		return v, fmt.Errorf("%w (replicas also failed: %v)", err, lastErr)
	}
	return v, err
}

// Close closes every connection.
func (rc *RoutingClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	var first error
	for addr, c := range rc.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		delete(rc.conns, addr)
	}
	return first
}
