package bench

import (
	"fmt"
	"time"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/dataset"
	"mscfpq/internal/gdb"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/rpq"
	"mscfpq/internal/rsm"
)

// queryFor returns the paper's query for a graph (Geo for geospecies,
// G1 otherwise) plus its name.
func queryFor(graphName string) (string, *grammar.Grammar) {
	if graphName == "geospecies" {
		return "Geo", grammar.Geo()
	}
	return "G1", grammar.G1()
}

// Table1 regenerates the dataset statistics table (experiment E1).
func Table1(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "Table1",
		Title:   "Graphs for CFPQ evaluation (synthetic analogs, scaled)",
		Columns: []string{"Graph", "#V", "#E", "#subClassOf", "#type", "#broaderTransitive"},
	}
	for _, name := range cfg.graphNames() {
		g, spec, err := cfg.Generate(name)
		if err != nil {
			return nil, err
		}
		s := g.Stats()
		rep.Rows = append(rep.Rows, []string{
			spec.Name,
			fmt.Sprintf("%d", s.Vertices),
			fmt.Sprintf("%d", s.Edges),
			fmt.Sprintf("%d", s.ByLabel["subClassOf"]),
			fmt.Sprintf("%d", s.ByLabel["type"]),
			fmt.Sprintf("%d", s.ByLabel["broaderTransitive"]),
		})
	}
	rep.Notes = append(rep.Notes,
		"synthetic analogs of the CFPQ_Data graphs; names carry the scale factor (DESIGN.md §4)")
	return rep, nil
}

// fig2MaxVertices caps the graphs of the single-path experiment: the
// all-pairs relation with per-fact provenance is quadratic in the worst
// case, so E2 runs on reduced instances (the paper's own Figure 2 uses
// the all-pairs single-path algorithm of GRADES-NDA'20, which has the
// same scaling behaviour).
const fig2MaxVertices = 2500

// Fig2 measures single-path extraction (experiment E2): all-pairs
// single-path CFPQ (index construction) plus the time to extract a
// witness path for a sample of result pairs.
func Fig2(cfg Config, sample int) (*Report, error) {
	rep := &Report{
		ID:      "Fig2",
		Title:   "Single path extraction (query G1/Geo)",
		Columns: []string{"Graph", "Query", "Pairs", "Index ms", "Extract ms", "Paths", "AvgLen"},
	}
	for _, name := range cfg.graphNames() {
		scale := cfg.scaleFor(name)
		if spec, err := dataset.ByName(name); err == nil {
			if expected := float64(spec.Vertices) * scale; expected > fig2MaxVertices {
				scale *= fig2MaxVertices / expected
			}
		}
		sub := cfg
		sub.Scales = map[string]float64{name: scale}
		g, spec, err := sub.Generate(name)
		if err != nil {
			return nil, err
		}
		qname, q := queryFor(name)
		w := grammar.MustWCNF(q)
		var sp *cfpq.SinglePathResult
		indexTime, err := timeIt(func() error {
			var e error
			sp, e = cfpq.SinglePath(g, w)
			return e
		})
		if err != nil {
			return nil, err
		}
		pairs := sp.Pairs()
		count := len(pairs)
		if count > sample {
			pairs = pairs[:sample]
		}
		totalLen := 0
		extracted := 0
		extractTime, err := timeIt(func() error {
			for _, p := range pairs {
				steps, e := sp.Path(p[0], p[1])
				if e != nil {
					return e
				}
				totalLen += len(steps)
				extracted++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		avg := "0"
		if extracted > 0 {
			avg = fmt.Sprintf("%.1f", float64(totalLen)/float64(extracted))
		}
		rep.Rows = append(rep.Rows, []string{
			spec.Name, qname, fmt.Sprintf("%d", count),
			ms(indexTime), ms(extractTime), fmt.Sprintf("%d", extracted), avg,
		})
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf("extraction sampled at up to %d pairs per graph", sample))
	return rep, nil
}

// FigureSeries is one (graph, query) sweep of experiment E3-E8: mean
// per-chunk time of Algorithm 2 (fresh) vs Algorithm 3 (shared index)
// for each chunk size.
type FigureSeries struct {
	Graph  string
	Query  string
	Points []FigurePoint
}

// FigurePoint is one chunk size of a sweep.
type FigurePoint struct {
	ChunkSize  int
	Chunks     int
	MSMean     time.Duration // Algorithm 2, fresh per chunk
	SmartMean  time.Duration // Algorithm 3, shared index
	MSTotal    time.Duration
	SmartTotal time.Duration
	Answer     int // result pairs of the final chunk (sanity signal)
}

// Figures runs the multiple-source sweep (experiments E3-E8).
func Figures(cfg Config) ([]FigureSeries, error) {
	var out []FigureSeries
	for _, name := range cfg.graphNames() {
		g, spec, err := cfg.Generate(name)
		if err != nil {
			return nil, err
		}
		qname, q := queryFor(name)
		w := grammar.MustWCNF(q)
		series := FigureSeries{Graph: spec.Name, Query: qname}
		for _, size := range cfg.ChunkSizes {
			chunks := cfg.chunks(g.NumVertices(), size)
			if len(chunks) == 0 {
				continue
			}
			idx, err := cfpq.NewIndex(g, w)
			if err != nil {
				return nil, err
			}
			pt := FigurePoint{ChunkSize: size, Chunks: len(chunks)}
			for _, src := range chunks {
				d, err := timeIt(func() error {
					ms, e := cfpq.MultiSource(g, w, src)
					if e == nil {
						pt.Answer = ms.Answer().NVals()
					}
					return e
				})
				if err != nil {
					return nil, err
				}
				pt.MSTotal += d
				d, err = timeIt(func() error {
					_, e := idx.MultiSourceSmart(src)
					return e
				})
				if err != nil {
					return nil, err
				}
				pt.SmartTotal += d
			}
			pt.MSMean = pt.MSTotal / time.Duration(len(chunks))
			pt.SmartMean = pt.SmartTotal / time.Duration(len(chunks))
			series.Points = append(series.Points, pt)
		}
		out = append(out, series)
	}
	return out, nil
}

// FiguresReport renders the sweep as a table (one row per point).
func FiguresReport(series []FigureSeries) *Report {
	rep := &Report{
		ID:    "Fig3-8",
		Title: "Multiple-source sweep: Algorithm 2 (fresh) vs Algorithm 3 (cached index)",
		Columns: []string{"Graph", "Query", "ChunkSize", "Chunks",
			"MS mean ms", "Smart mean ms", "MS total ms", "Smart total ms"},
	}
	for _, s := range series {
		for _, p := range s.Points {
			rep.Rows = append(rep.Rows, []string{
				s.Graph, s.Query,
				fmt.Sprintf("%d", p.ChunkSize), fmt.Sprintf("%d", p.Chunks),
				ms(p.MSMean), ms(p.SmartMean), ms(p.MSTotal), ms(p.SmartTotal),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"smart mean drops as the shared index warms up across chunks; fresh cost stays flat",
	)
	return rep
}

// Ablation compares the three ways to answer one multiple-source query
// (experiment E9): Algorithm 2, all-pairs + row filter, and the
// worklist CFL-reachability baseline. All three must agree.
func Ablation(cfg Config, graphName string, chunkSize int) (*Report, error) {
	g, spec, err := cfg.Generate(graphName)
	if err != nil {
		return nil, err
	}
	qname, q := queryFor(graphName)
	w := grammar.MustWCNF(q)
	chunks := cfg.chunks(g.NumVertices(), chunkSize)
	if len(chunks) == 0 {
		return nil, fmt.Errorf("bench: no chunks for %s", graphName)
	}
	src := chunks[0]

	var msAnswer, apAnswer, wlAnswer *matrix.Bool
	msTime, err := timeIt(func() error {
		r, e := cfpq.MultiSource(g, w, src)
		if e == nil {
			msAnswer = r.Answer()
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	apTime, err := timeIt(func() error {
		r, e := cfpq.AllPairs(g, w)
		if e == nil {
			apAnswer = matrix.ExtractRows(r.Start(), src)
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	var snAnswer *matrix.Bool
	snTime, err := timeIt(func() error {
		r, e := cfpq.AllPairsSemiNaive(g, w)
		if e == nil {
			snAnswer = matrix.ExtractRows(r.Start(), src)
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	wlTime, err := timeIt(func() error {
		var e error
		wlAnswer, e = cfpq.WorklistMultiSource(g, w, src)
		return e
	})
	if err != nil {
		return nil, err
	}
	if !msAnswer.Equal(apAnswer) || !msAnswer.Equal(wlAnswer) || !msAnswer.Equal(snAnswer) {
		return nil, fmt.Errorf("bench: ablation answers disagree on %s", graphName)
	}
	rep := &Report{
		ID:      "Ablation",
		Title:   fmt.Sprintf("Multiple-source strategies on %s (%s, |Src|=%d, answer=%d pairs)", spec.Name, qname, src.NVals(), msAnswer.NVals()),
		Columns: []string{"Strategy", "Time ms"},
		Rows: [][]string{
			{"Algorithm 2 (multi-source)", ms(msTime)},
			{"All-pairs + row filter", ms(apTime)},
			{"All-pairs semi-naive + row filter", ms(snTime)},
			{"Worklist on reachable subgraph", ms(wlTime)},
		},
		Notes: []string{"all four strategies returned identical answers"},
	}
	return rep, nil
}

// FullStack measures end-to-end database evaluation (experiment E10):
// the same query through the Cypher front end + execution plan vs the
// raw algorithm, plus a regular path query evaluated through CFPQ.
func FullStack(cfg Config) (*Report, error) {
	rep := &Report{
		ID:      "FullStack",
		Title:   "End-to-end GRAPH.QUERY vs raw algorithm",
		Columns: []string{"Graph", "Query", "Rows", "In-DB ms", "Warm ms", "Raw ms", "Overhead"},
	}
	db := gdb.New()

	type caseDef struct {
		graph   string
		query   string // Cypher
		raw     func(g *graph.Graph, src *matrix.Vector) (int, error)
		srcSize int
		label   string
	}
	geoCypher := `
		PATH PATTERN S = ()-/ [:broaderTransitive ~S <:broaderTransitive] | [:broaderTransitive <:broaderTransitive] /->()
		MATCH (v)-/ ~S /->(to)
		%s
		RETURN v, to`
	g2Cypher := `
		PATH PATTERN S = ()-/ [<:subClassOf ~S :subClassOf] | [:subClassOf] /->()
		MATCH (v)-/ ~S /->(to)
		%s
		RETURN v, to`
	regCypher := `MATCH (v)-/ [:subClassOf]+ /->(to) %s RETURN v, to`

	cases := []caseDef{
		{graph: "geospecies", label: "Geo", query: geoCypher, srcSize: 50,
			raw: func(g *graph.Graph, src *matrix.Vector) (int, error) {
				r, err := cfpq.MultiSource(g, grammar.MustWCNF(grammar.Geo()), src)
				if err != nil {
					return 0, err
				}
				return r.Answer().NVals(), nil
			}},
		{graph: "core", label: "G2", query: g2Cypher, srcSize: 50,
			raw: func(g *graph.Graph, src *matrix.Vector) (int, error) {
				r, err := cfpq.MultiSource(g, grammar.MustWCNF(grammar.G2()), src)
				if err != nil {
					return 0, err
				}
				return r.Answer().NVals(), nil
			}},
		{graph: "core", label: "RPQ subClassOf+", query: regCypher, srcSize: 50,
			raw: func(g *graph.Graph, src *matrix.Vector) (int, error) {
				nfa, err := rpq.CompileRegex("subClassOf+")
				if err != nil {
					return 0, err
				}
				m, err := rpq.EvalPairs(g, nfa, src)
				if err != nil {
					return 0, err
				}
				return m.NVals(), nil
			}},
	}
	for _, c := range cases {
		g, spec, err := cfg.Generate(c.graph)
		if err != nil {
			return nil, err
		}
		db.AddGraph(spec.Name, g)
		src := cfg.chunks(g.NumVertices(), c.srcSize)[0]
		where := "WHERE id(v) IN ["
		for i, v := range src.Ints() {
			if i > 0 {
				where += ", "
			}
			where += fmt.Sprintf("%d", v)
		}
		where += "]"
		queryText := fmt.Sprintf(c.query, where)

		var dbRows int
		dbTime, err := timeIt(func() error {
			res, e := db.Query(spec.Name, queryText)
			if e == nil {
				dbRows = len(res.Rows)
			}
			return e
		})
		if err != nil {
			return nil, err
		}
		// Second run: the store's path-pattern context cache makes the
		// warmed Algorithm 3 index answer repeated queries.
		var warmRows int
		warmTime, err := timeIt(func() error {
			res, e := db.Query(spec.Name, queryText)
			if e == nil {
				warmRows = len(res.Rows)
			}
			return e
		})
		if err != nil {
			return nil, err
		}
		if warmRows != dbRows {
			return nil, fmt.Errorf("bench: warm query rows %d != cold %d on %s/%s", warmRows, dbRows, c.graph, c.label)
		}
		var rawRows int
		rawTime, err := timeIt(func() error {
			var e error
			rawRows, e = c.raw(g, src)
			return e
		})
		if err != nil {
			return nil, err
		}
		if dbRows != rawRows {
			return nil, fmt.Errorf("bench: full-stack row count %d != raw %d on %s/%s", dbRows, rawRows, c.graph, c.label)
		}
		overhead := "n/a"
		if rawTime > 0 {
			overhead = fmt.Sprintf("%.2fx", float64(dbTime)/float64(rawTime))
		}
		rep.Rows = append(rep.Rows, []string{
			spec.Name, c.label, fmt.Sprintf("%d", dbRows), ms(dbTime), ms(warmTime), ms(rawTime), overhead,
		})
	}
	rep.Notes = append(rep.Notes,
		"row counts verified equal between the database and the raw algorithm",
		"warm = repeated query reusing the store's cached path-pattern context (Algorithm 3 index)",
	)
	return rep, nil
}

// RPQUnification compares the three engines on one regular query
// (experiment E11): NFA product evaluation, CFPQ over the regex-derived
// grammar, and the Kronecker/tensor RSM algorithm.
func RPQUnification(cfg Config, graphName, regex string, srcSize int) (*Report, error) {
	g, spec, err := cfg.Generate(graphName)
	if err != nil {
		return nil, err
	}
	nfa, err := rpq.CompileRegex(regex)
	if err != nil {
		return nil, err
	}
	src := cfg.chunks(g.NumVertices(), srcSize)[0]

	var direct, viaDFA, viaCFPQ *matrix.Bool
	directTime, err := timeIt(func() error {
		var e error
		direct, e = rpq.EvalPairs(g, nfa, src)
		return e
	})
	if err != nil {
		return nil, err
	}
	dfa := rpq.Determinize(nfa).Minimize()
	dfaTime, err := timeIt(func() error {
		var e error
		viaDFA, e = rpq.EvalPairsDFA(g, dfa, src)
		return e
	})
	if err != nil {
		return nil, err
	}
	cf := rpq.ToGrammar(nfa)
	w, err := grammar.ToWCNF(cf)
	if err != nil {
		return nil, err
	}
	cfpqTime, err := timeIt(func() error {
		r, e := cfpq.MultiSource(g, w, src)
		if e == nil {
			viaCFPQ = r.Answer()
		}
		return e
	})
	if err != nil {
		return nil, err
	}
	if !direct.Equal(viaCFPQ) || !direct.Equal(viaDFA) {
		return nil, fmt.Errorf("bench: RPQ engines disagree on %s", graphName)
	}
	// The tensor engine is all-pairs; restrict afterwards. It is O((QV)^2)
	// so it runs on a reduced graph when the input is large.
	tg := g
	tname := spec.Name
	if g.NumVertices() > 1500 {
		reduced, rspec, err := Config{Scales: map[string]float64{graphName: cfg.scaleFor(graphName) * 0.1}}.Generate(graphName)
		if err != nil {
			return nil, err
		}
		tg = reduced
		tname = rspec.Name
	}
	machine, err := rsm.FromGrammar(cf)
	if err != nil {
		return nil, err
	}
	var tensorPairs int
	tensorTime, err := timeIt(func() error {
		rel, e := machine.Eval(tg)
		if e == nil {
			tensorPairs = rel.NVals()
		}
		return e
	})
	if err != nil {
		return nil, err
	}

	rep := &Report{
		ID:      "RPQ",
		Title:   fmt.Sprintf("Regular query %q on %s (|Src|=%d)", regex, spec.Name, src.NVals()),
		Columns: []string{"Engine", "Scope", "Pairs", "Time ms"},
		Rows: [][]string{
			{"NFA product (direct RPQ)", spec.Name, fmt.Sprintf("%d", direct.NVals()), ms(directTime)},
			{"Minimized DFA product", spec.Name, fmt.Sprintf("%d", viaDFA.NVals()), ms(dfaTime)},
			{"CFPQ over regex grammar", spec.Name, fmt.Sprintf("%d", viaCFPQ.NVals()), ms(cfpqTime)},
			{"Tensor/Kronecker RSM (all pairs)", tname, fmt.Sprintf("%d", tensorPairs), ms(tensorTime)},
		},
		Notes: []string{"NFA, DFA and CFPQ answers verified equal; tensor engine solves all pairs"},
	}
	return rep, nil
}
