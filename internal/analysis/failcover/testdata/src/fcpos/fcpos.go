// Package fcpos holds true positives for failcover: durability
// operations no chaos test can make fail.
package fcpos

import (
	"os"

	"internal/fault"
)

const fpSave = "fc.save"

// saveUncovered persists without any failpoint on the path.
func saveUncovered(f *os.File, tmp, final string) error {
	if _, err := f.Write([]byte("x")); err != nil { // want `\(\*os\.File\)\.Write on a durability path without failpoint coverage`
		return err
	}
	if err := f.Sync(); err != nil { // want `\(\*os\.File\)\.Sync on a durability path without failpoint coverage`
		return err
	}
	return os.Rename(tmp, final) // want `os\.Rename on a durability path without failpoint coverage`
}

// rollback truncates with no way to fail the truncate itself.
func rollback(f *os.File, size int64) error {
	return f.Truncate(size) // want `\(\*os\.File\)\.Truncate on a durability path without failpoint coverage`
}

// helperSync is called from one covered and one uncovered site — the
// uncovered caller breaks its inherited coverage.
func helperSync(f *os.File) error {
	return f.Sync() // want `\(\*os\.File\)\.Sync on a durability path without failpoint coverage`
}

func callCovered(f *os.File) error {
	if err := fault.Inject(fpSave); err != nil {
		return err
	}
	return helperSync(f)
}

func callUncovered(f *os.File) error {
	return helperSync(f)
}

// lateInject fires the failpoint after the op — too late to tear it.
func lateInject(f *os.File) error {
	if err := f.Sync(); err != nil { // want `\(\*os\.File\)\.Sync on a durability path without failpoint coverage`
		return err
	}
	return fault.Inject(fpSave)
}
