package cfpq

import (
	"fmt"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// Option tunes algorithm execution. It is an alias of exec.Option, so
// the same options (context, timeout, budget, workers, kernels) work
// uniformly across the CFPQ, RPQ, and tensor engines.
type Option = exec.Option

// WithContext attaches a cancellation context to the query.
var WithContext = exec.WithContext

// WithTimeout bounds the query's wall-clock execution time.
var WithTimeout = exec.WithTimeout

// WithBudget bounds the query's total work (relation entries produced
// across fixpoint iterations).
var WithBudget = exec.WithBudget

// WithWorkers sets the multiplication parallelism.
var WithWorkers = exec.WithWorkers

// WithHybridKernels enables density-based kernel switching.
var WithHybridKernels = exec.WithHybridKernels

// WithRun shares an existing execution governor across layers of one
// query.
var WithRun = exec.WithRun

// WithTrace attaches a per-query trace recording stage spans and
// kernel counter deltas.
var WithTrace = exec.WithTrace

// WithAlgorithm selects the evaluation algorithm for Eval.
var WithAlgorithm = exec.WithAlgorithm

// Result holds the context-free relations R_A computed by a query: one
// Boolean matrix per grammar nonterminal, where T^A[i,j] means there is
// a path from i to j whose word is derivable from A.
type Result struct {
	W *grammar.WCNF
	T []*matrix.Bool // indexed by nonterminal id

	// Rounds is the number of fixpoint iterations until convergence and
	// Work the governor charge (relation entries produced); both are
	// filled by the evaluation algorithms for Stats reporting.
	Rounds int
	Work   int64
}

// Matrix returns the relation matrix of the named nonterminal; nil if
// the nonterminal does not exist.
func (r *Result) Matrix(nonterm string) *matrix.Bool {
	id := r.W.NontermID(nonterm)
	if id < 0 {
		return nil
	}
	return r.T[id]
}

// Start returns the relation matrix of the start nonterminal.
func (r *Result) Start() *matrix.Bool { return r.T[r.W.Start] }

// Pairs returns all (source, destination) pairs of the start relation.
func (r *Result) Pairs() [][2]int { return r.Start().Pairs() }

// PairsFrom returns the start-relation pairs whose source is in src.
func (r *Result) PairsFrom(src *matrix.Vector) [][2]int {
	return matrix.ExtractRows(r.Start(), src).Pairs()
}

// ReachableFrom returns the set of vertices to such that (v, to) is in
// the start relation for some v in src.
func (r *Result) ReachableFrom(src *matrix.Vector) *matrix.Vector {
	return matrix.ReduceCols(matrix.ExtractRows(r.Start(), src))
}

// newResult allocates empty relation matrices for every nonterminal.
func newResult(w *grammar.WCNF, n int) *Result {
	r := &Result{W: w, T: make([]*matrix.Bool, w.NumNonterms())}
	for a := range r.T {
		r.T[a] = matrix.NewBool(n, n)
	}
	return r
}

// initSimpleRules seeds the relation matrices from the simple rules
// (Algorithm 1 line 3 / Algorithm 2 lines 6-8): for A -> t, T^A gains
// the adjacency matrix of edge label t (transpose for inverse labels)
// and the diagonal vertex matrix of vertex label t.
func initSimpleRules(r *Result, g *graph.Graph) {
	for _, rule := range r.W.TermRules {
		name := r.W.Terms[rule.Term]
		if em := g.EdgeMatrix(name); em.NVals() > 0 {
			matrix.AddInPlace(r.T[rule.A], em)
		}
		if vs := g.VertexSet(name); vs.NVals() > 0 {
			matrix.AddInPlace(r.T[rule.A], vs.Diag())
		}
	}
}

// initEpsRules seeds diagonals for nullable nonterminals (Algorithm 1
// lines 5-6): A -> eps relates every vertex to itself.
func initEpsRules(r *Result, n int) {
	for a, nullable := range r.W.Nullable {
		if nullable {
			matrix.AddInPlace(r.T[a], matrix.Identity(n))
		}
	}
}

func checkInputs(g *graph.Graph, w *grammar.WCNF) error {
	if g == nil || w == nil {
		return fmt.Errorf("cfpq: nil graph or grammar")
	}
	if w.NumNonterms() == 0 {
		return fmt.Errorf("cfpq: grammar has no nonterminals")
	}
	return nil
}
