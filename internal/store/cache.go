package store

import (
	"container/list"
	"sync"
	"time"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
)

// entry is one cached value plus the bookkeeping eviction and
// invalidation need.
type entry struct {
	key     Key
	val     any
	bytes   int64
	storeID uint64
	version uint64
	expires time.Time // zero when the cache has no TTL
}

// Cache is the version-keyed query cache: an LRU under a configurable
// byte budget with optional TTL. Entries are keyed by Key (EvalKey /
// ResultKey), which embeds the graph version — a version bump makes
// new lookups miss immediately, and Put sweeps the displaced older
// versions of the same store so their bytes are reclaimed without any
// explicit invalidation call (retention: only the newest seen version
// per store is kept). Safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64                 // guarded by mu: <= 0 disables the cache
	ttl      time.Duration         // guarded by mu: 0 means entries never expire
	ll       *list.List            // guarded by mu: LRU order, front = most recent
	items    map[Key]*list.Element // guarded by mu
	bytes    int64                 // guarded by mu: sum of entry sizes
	newest   map[uint64]uint64     // guarded by mu: newest version seen per store

	hits, misses, evictions, invalidations uint64 // guarded by mu
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Evictions, Invalidations uint64
	Entries                                int
	Bytes                                  int64
}

// NewCache returns a cache bounded by maxBytes (<= 0 disables it) with
// per-entry TTL ttl (0 = no expiry).
func NewCache(maxBytes int64, ttl time.Duration) *Cache {
	c := &Cache{ll: list.New(), items: map[Key]*list.Element{}, newest: map[uint64]uint64{}}
	c.Configure(maxBytes, ttl)
	return c
}

// Configure replaces the byte budget and TTL, evicting (or purging,
// when disabled) to fit.
func (c *Cache) Configure(maxBytes int64, ttl time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.maxBytes, c.ttl = maxBytes, ttl
	if maxBytes <= 0 {
		c.purgeLocked()
		return
	}
	c.evictToFitLocked()
	c.publishGaugesLocked()
}

// Enabled reports whether the cache currently stores anything.
func (c *Cache) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxBytes > 0
}

// Get returns the cached value for key, updating LRU order. Expired
// entries are dropped and count as misses. The returned value is
// shared — callers must treat it as immutable.
func (c *Cache) Get(key Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		if e.expires.IsZero() || time.Now().Before(e.expires) {
			c.ll.MoveToFront(el)
			c.hits++
			obs.CacheHits.Inc()
			return e.val, true
		}
		c.removeLocked(el)
		c.evictions++
		obs.CacheEvictions.Inc()
		c.publishGaugesLocked()
	}
	c.misses++
	obs.CacheMisses.Inc()
	return nil, false
}

// Put stores val under key, charging bytes against the budget. The
// (storeID, version) pair drives retention: when version advances past
// the newest this cache has seen for storeID, every entry of an older
// version of that store is invalidated (they can never be looked up
// again — keys embed the version). Values too large for the whole
// budget are not stored.
func (c *Cache) Put(key Key, val any, bytes int64, storeID, version uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes <= 0 || bytes > c.maxBytes {
		return
	}
	if version > c.newest[storeID] {
		c.newest[storeID] = version
		c.invalidateBelowLocked(storeID, version)
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = time.Now().Add(c.ttl)
	}
	if el, ok := c.items[key]; ok {
		c.removeLocked(el)
	}
	e := &entry{key: key, val: val, bytes: bytes, storeID: storeID, version: version, expires: expires}
	c.items[key] = c.ll.PushFront(e)
	c.bytes += bytes
	c.evictToFitLocked()
	c.publishGaugesLocked()
}

// DropStore invalidates every entry of a store incarnation; the gdb
// layer calls it when GRAPH.DELETE or GRAPH.RESTORE retires the store
// object (its keys would otherwise linger until LRU eviction).
func (c *Cache) DropStore(storeID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidateBelowLocked(storeID, ^uint64(0))
	delete(c.newest, storeID)
	c.publishGaugesLocked()
}

// Stats returns the counter snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Invalidations: c.invalidations, Entries: len(c.items), Bytes: c.bytes,
	}
}

// invalidateBelowLocked drops entries of storeID with version < below.
func (c *Cache) invalidateBelowLocked(storeID, below uint64) {
	var stale []*list.Element
	for _, el := range c.items {
		e := el.Value.(*entry)
		if e.storeID == storeID && e.version < below {
			//lint:ignore detrange stale feeds only map deletes and counter increments, which are order-independent
			stale = append(stale, el)
		}
	}
	for _, el := range stale {
		c.removeLocked(el)
		c.invalidations++
		obs.CacheInvalidations.Inc()
	}
}

// evictToFitLocked drops least-recently-used entries until the budget
// holds.
func (c *Cache) evictToFitLocked() {
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			return
		}
		c.removeLocked(back)
		c.evictions++
		obs.CacheEvictions.Inc()
	}
}

func (c *Cache) purgeLocked() {
	c.ll.Init()
	c.items = map[Key]*list.Element{}
	c.bytes = 0
	c.publishGaugesLocked()
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
}

func (c *Cache) publishGaugesLocked() {
	obs.CacheBytes.Set(c.bytes)
	obs.CacheEntries.Set(int64(len(c.items)))
}

// PairsBytes estimates the cache charge of an answer pair set.
func PairsBytes(pairs [][2]int, key Key) int64 {
	return int64(len(pairs))*16 + int64(len(key)) + 64
}

// CachedEval answers a CFPQ evaluation through the cache: on a hit the
// previously computed pair set is returned (shared — treat as
// read-only); on a miss cfpq.Eval runs against g and the sorted answer
// pairs are stored under the canonical EvalKey for (storeID, version).
// The boolean reports whether the answer came from the cache. g must
// be the immutable graph of the (storeID, version) snapshot the caller
// pinned — the key, not the caller, is what guarantees cached and
// uncached results are byte-identical.
func CachedEval(c *Cache, storeID, version uint64, g *graph.Graph, w *grammar.WCNF, src *matrix.Vector, opts ...cfpq.Option) ([][2]int, bool, error) {
	alg := exec.Build(opts).Algorithm
	if alg == exec.AlgAuto {
		// Resolve exactly as cfpq.Eval does, so AlgAuto and its resolved
		// algorithm share one entry.
		if src != nil {
			alg = exec.AlgMultiSource
		} else {
			alg = exec.AlgMatrix
		}
	}
	key := EvalKey(storeID, version, w, src, alg)
	if v, ok := c.Get(key); ok {
		return v.([][2]int), true, nil
	}
	res, err := cfpq.Eval(g, w, src, opts...)
	if err != nil {
		return nil, false, err
	}
	pairs := res.Pairs()
	c.Put(key, pairs, PairsBytes(pairs, key), storeID, version)
	return pairs, false, nil
}
