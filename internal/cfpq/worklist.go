package cfpq

import (
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// Worklist solves all-pairs CFL reachability with the classic dynamic
// programming worklist algorithm (Melski & Reps style), the kind of
// non-linear-algebra solution the paper's future-work section asks to
// compare against. Facts (A, i, j) are propagated one at a time through
// the binary rules; adjacency lists per (nonterminal, vertex) give the
// required joins.
func Worklist(g *graph.Graph, w *grammar.WCNF, opts ...Option) (*Result, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	return worklistOn(g, w, nil, run)
}

// WorklistMultiSource answers a multiple-source query with the worklist
// solver. It first prunes the graph to the vertices reachable from src
// over the union of all label matrices and their inverses (a sound
// over-approximation of the vertices any derivation from src can touch,
// since grammars may traverse relations backwards), then solves
// all-pairs on the induced subgraph and restricts rows to src. This is
// the natural "handle only the required subgraph" strategy the paper's
// conclusion attributes to non-linear-algebra solutions.
func WorklistMultiSource(g *graph.Graph, w *grammar.WCNF, src *matrix.Vector, opts ...Option) (*matrix.Bool, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	keep := g.Reachable(src, true)
	r, err := worklistOn(g, w, keep, run)
	if err != nil {
		return nil, err
	}
	return matrix.ExtractRows(r.Start(), src), nil
}

// worklistCheckFacts is how many queue pops the worklist solver
// processes between governor checks.
const worklistCheckFacts = 1024

// worklistOn runs the solver; if keep is non-nil only vertices in keep
// participate. The governor is consulted every worklistCheckFacts
// propagated facts and charged one work unit per derived fact.
func worklistOn(g *graph.Graph, w *grammar.WCNF, keep *matrix.Vector, run *exec.Run) (*Result, error) {
	n := g.NumVertices()
	nnt := w.NumNonterms()
	r := newResult(w, n)

	inKeep := func(v int) bool { return keep == nil || keep.Get(v) }

	type fact struct {
		a    int32
		i, j uint32
	}
	var queue []fact
	// fwd[a][i] lists j with (a,i,j); bwd[a][j] lists i.
	fwd := make([][][]uint32, nnt)
	bwd := make([][][]uint32, nnt)
	for a := 0; a < nnt; a++ {
		fwd[a] = make([][]uint32, n)
		bwd[a] = make([][]uint32, n)
	}
	add := func(a, i, j int) {
		if r.T[a].Get(i, j) {
			return
		}
		r.T[a].Set(i, j)
		fwd[a][i] = append(fwd[a][i], uint32(j))
		bwd[a][j] = append(bwd[a][j], uint32(i))
		queue = append(queue, fact{a: int32(a), i: uint32(i), j: uint32(j)})
	}

	// Seed simple rules restricted to kept vertices. Seeding is
	// O(edges) per rule and polls the governor so queries on
	// terminal-only grammars abort too.
	for _, rule := range w.TermRules {
		if err := run.Err(); err != nil {
			return nil, err
		}
		name := w.Terms[rule.Term]
		g.EdgeMatrix(name).Iterate(func(i, j int) bool {
			if inKeep(i) && inKeep(j) {
				add(rule.A, i, j)
			}
			return true
		})
		for _, v := range g.VertexSet(name).Ints() {
			if inKeep(v) {
				add(rule.A, v, v)
			}
		}
	}
	for a, nullable := range w.Nullable {
		if !nullable {
			continue
		}
		if err := run.Err(); err != nil {
			return nil, err
		}
		if keep != nil {
			for _, v := range keep.Ints() {
				add(a, v, v)
			}
		} else {
			for v := 0; v < n; v++ {
				add(a, v, v)
			}
		}
	}

	// Rule indexes: rules with B on the left position, C on the right.
	byB := make([][]grammar.BinRule, nnt)
	byC := make([][]grammar.BinRule, nnt)
	for _, rule := range w.BinRules {
		byB[rule.B] = append(byB[rule.B], rule)
		byC[rule.C] = append(byC[rule.C], rule)
	}

	popped := 0
	for len(queue) > 0 {
		if popped%worklistCheckFacts == 0 {
			charge := worklistCheckFacts
			if popped == 0 {
				charge = 0
			}
			if err := run.Charge(charge); err != nil {
				return nil, err
			}
		}
		popped++
		f := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// f is a (B, i, j) fact: extend right with C facts (j, k).
		for _, rule := range byB[f.a] {
			for _, k := range fwd[rule.C][f.j] {
				add(rule.A, int(f.i), int(k))
			}
		}
		// f is a (C, i, j) fact: extend left with B facts (k, i).
		for _, rule := range byC[f.a] {
			for _, k := range bwd[rule.B][f.i] {
				add(rule.A, int(k), int(f.j))
			}
		}
	}
	// The worklist has no matrix rounds; its Stats work figure is the
	// governor charge (facts propagated).
	r.Work = run.Spent()
	return r, nil
}
