// Package lockpos holds lockguard true positives.
package lockpos

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) bump() {
	c.n++ // want `write to c.n without holding c.mu`
}

func (c *counter) get() int {
	return c.n // want `read of c.n without holding c.mu`
}

// unlockTooEarly ends the critical section before the write.
func (c *counter) unlockTooEarly() {
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
	c.n = 1 // want `write to c.n without holding c.mu`
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

// putUnderRead writes while holding only the read lock.
func (t *table) putUnderRead(k string, v int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.m[k] = v // want `write to t.m \(guarded by mu\) while holding only the read lock`
}

// deleteUnlocked mutates the guarded map with no lock at all.
func (t *table) deleteUnlocked(k string) {
	delete(t.m, k) // want `write to t.m without holding t.mu`
}

type broken struct {
	n int // guarded by mu -- want `no sync.Mutex/RWMutex field named "mu"`
}

func (b *broken) value() int { return b.n }
