// Package plan builds and evaluates execution plans for the database
// layer, reproducing the paper's Section 4.3: MATCH patterns become a
// query graph, the query graph is split into linear paths, each path is
// translated into an algebraic expression over label matrices, and the
// expressions drive streaming plan operations — LabelScan, CondTraverse
// for relationship patterns, and the new CFPQTraverse for path patterns,
// whose named-pattern references are resolved by the multiple-source
// CFPQ algorithm through the path pattern context.
package plan

import (
	"fmt"

	"mscfpq/internal/algebra"
	"mscfpq/internal/cypher"
	"mscfpq/internal/grammar"
)

// TranslatePathExpr converts a parsed path-pattern expression into an
// algebraic expression (paper examples: node pattern (:x) -> V^x,
// relationship :a -> E^a, path pattern :b ~S -> E^b * Ref(S)).
func TranslatePathExpr(e cypher.PathExpr) (algebra.Expr, error) {
	switch v := e.(type) {
	case cypher.PESeq:
		var out algebra.Expr
		for _, part := range v.Parts {
			sub, err := TranslatePathExpr(part)
			if err != nil {
				return nil, err
			}
			if _, isIdent := sub.(algebra.Ident); isIdent {
				continue
			}
			if out == nil {
				out = sub
			} else {
				out = algebra.Mul{L: out, R: sub}
			}
		}
		if out == nil {
			return algebra.Ident{}, nil
		}
		return out, nil
	case cypher.PEAlt:
		var out algebra.Expr
		for _, alt := range v.Alts {
			sub, err := TranslatePathExpr(alt)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = sub
			} else {
				out = algebra.Add{L: out, R: sub}
			}
		}
		return out, nil
	case cypher.PERel:
		label := v.Type
		if v.Inverse {
			label = grammar.InverseLabel(label)
		}
		return algebra.EdgeLabel{Label: label}, nil
	case cypher.PENode:
		var out algebra.Expr
		for _, l := range v.Labels {
			sub := algebra.Expr(algebra.VertexLabel{Label: l})
			if out == nil {
				out = sub
			} else {
				out = algebra.Mul{L: out, R: sub}
			}
		}
		if out == nil {
			return algebra.Ident{}, nil
		}
		return out, nil
	case cypher.PERef:
		return algebra.Ref{Name: v.Name}, nil
	case cypher.PEStar:
		sub, err := TranslatePathExpr(v.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.Star{Sub: sub}, nil
	case cypher.PEPlus:
		sub, err := TranslatePathExpr(v.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.Plus{Sub: sub}, nil
	case cypher.PEOpt:
		sub, err := TranslatePathExpr(v.Sub)
		if err != nil {
			return nil, err
		}
		return algebra.Opt{Sub: sub}, nil
	default:
		return nil, fmt.Errorf("plan: unsupported path expression %T", e)
	}
}

// TranslateConnection converts a pattern connection into the algebraic
// expression of the traverse operation that will execute it.
func TranslateConnection(c cypher.Connection) (expr algebra.Expr, isPath bool, err error) {
	switch v := c.(type) {
	case cypher.RelPattern:
		var e algebra.Expr
		if len(v.Types) == 0 {
			e = algebra.AnyEdge{}
		} else {
			for _, t := range v.Types {
				sub := algebra.Expr(algebra.EdgeLabel{Label: t})
				if e == nil {
					e = sub
				} else {
					e = algebra.Add{L: e, R: sub}
				}
			}
		}
		if v.Inverse {
			e = algebra.Transpose{Sub: e}
		}
		return e, false, nil
	case cypher.PathApply:
		e, err := TranslatePathExpr(v.Expr)
		if err != nil {
			return nil, false, err
		}
		if v.Inverse {
			e = algebra.Transpose{Sub: e}
		}
		return e, true, nil
	default:
		return nil, false, fmt.Errorf("plan: unsupported connection %T", c)
	}
}

// PatternsToGrammar compiles the PATH PATTERN declarations into a
// context-free grammar whose nonterminals are the pattern names:
// relationship steps become terminals, node checks become vertex-label
// terminals, references become nonterminals, and quantifiers introduce
// auxiliary nonterminals. The grammar feeds the multiple-source CFPQ
// engine that resolves references during plan evaluation.
func PatternsToGrammar(pats []cypher.NamedPathPattern) (*grammar.Grammar, error) {
	if len(pats) == 0 {
		return nil, fmt.Errorf("plan: no named path patterns")
	}
	declared := map[string]bool{}
	for _, p := range pats {
		if declared[p.Name] {
			return nil, fmt.Errorf("plan: duplicate path pattern %q", p.Name)
		}
		declared[p.Name] = true
	}
	var prods []grammar.Production
	fresh := 0
	freshNT := func(base string) string {
		fresh++
		return fmt.Sprintf("%s#q%d", base, fresh)
	}

	// toSymbols flattens an expression into one RHS, introducing helper
	// nonterminals for nested alternation and quantifiers.
	var toSymbols func(owner string, e cypher.PathExpr) ([]grammar.Symbol, error)
	var addAlternatives func(owner string, e cypher.PathExpr) error

	toSymbols = func(owner string, e cypher.PathExpr) ([]grammar.Symbol, error) {
		switch v := e.(type) {
		case cypher.PESeq:
			var out []grammar.Symbol
			for _, part := range v.Parts {
				syms, err := toSymbols(owner, part)
				if err != nil {
					return nil, err
				}
				out = append(out, syms...)
			}
			return out, nil
		case cypher.PEAlt:
			nt := freshNT(owner)
			if err := addAlternatives(nt, v); err != nil {
				return nil, err
			}
			return []grammar.Symbol{grammar.N(nt)}, nil
		case cypher.PERel:
			label := v.Type
			if v.Inverse {
				label = grammar.InverseLabel(label)
			}
			return []grammar.Symbol{grammar.T(label)}, nil
		case cypher.PENode:
			var out []grammar.Symbol
			for _, l := range v.Labels {
				out = append(out, grammar.T(l))
			}
			return out, nil
		case cypher.PERef:
			if !declared[v.Name] {
				return nil, fmt.Errorf("plan: reference to undeclared path pattern %q", v.Name)
			}
			return []grammar.Symbol{grammar.N(v.Name)}, nil
		case cypher.PEStar:
			nt := freshNT(owner)
			inner, err := toSymbols(nt, v.Sub)
			if err != nil {
				return nil, err
			}
			prods = append(prods,
				grammar.Production{LHS: nt},
				grammar.Production{LHS: nt, RHS: append(inner, grammar.N(nt))},
			)
			return []grammar.Symbol{grammar.N(nt)}, nil
		case cypher.PEPlus:
			nt := freshNT(owner)
			inner, err := toSymbols(nt, v.Sub)
			if err != nil {
				return nil, err
			}
			prods = append(prods,
				grammar.Production{LHS: nt, RHS: inner},
				grammar.Production{LHS: nt, RHS: append(append([]grammar.Symbol{}, inner...), grammar.N(nt))},
			)
			return []grammar.Symbol{grammar.N(nt)}, nil
		case cypher.PEOpt:
			nt := freshNT(owner)
			inner, err := toSymbols(nt, v.Sub)
			if err != nil {
				return nil, err
			}
			prods = append(prods,
				grammar.Production{LHS: nt},
				grammar.Production{LHS: nt, RHS: inner},
			)
			return []grammar.Symbol{grammar.N(nt)}, nil
		default:
			return nil, fmt.Errorf("plan: unsupported path expression %T", e)
		}
	}

	addAlternatives = func(owner string, e cypher.PathExpr) error {
		if alt, ok := e.(cypher.PEAlt); ok {
			for _, a := range alt.Alts {
				syms, err := toSymbols(owner, a)
				if err != nil {
					return err
				}
				prods = append(prods, grammar.Production{LHS: owner, RHS: syms})
			}
			return nil
		}
		syms, err := toSymbols(owner, e)
		if err != nil {
			return err
		}
		prods = append(prods, grammar.Production{LHS: owner, RHS: syms})
		return nil
	}

	for _, p := range pats {
		if err := addAlternatives(p.Name, p.Expr); err != nil {
			return nil, err
		}
	}
	return grammar.New(pats[0].Name, prods)
}
