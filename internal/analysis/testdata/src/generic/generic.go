// Package generic exercises the loader's type-checking of generic
// code: instantiation must populate Info.Instances so analyzers can
// resolve callees of generic functions.
package generic

// Pair is a generic container.
type Pair[K comparable, V any] struct {
	Key K
	Val V
}

// Map applies f elementwise.
func Map[T, U any](xs []T, f func(T) U) []U {
	out := make([]U, 0, len(xs))
	for _, x := range xs {
		out = append(out, f(x))
	}
	return out
}

// Use instantiates Map and Pair.
func Use() []Pair[string, int] {
	return Map([]int{1, 2}, func(i int) Pair[string, int] {
		return Pair[string, int]{Key: "n", Val: i}
	})
}
