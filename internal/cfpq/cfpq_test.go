package cfpq

import (
	"math/rand"
	"testing"

	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// paperGraph is the example graph D of Figure 1 (0-based vertex ids).
func paperGraph() *graph.Graph {
	g := graph.New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(1, "b", 2)
	g.AddEdge(1, "b", 5)
	g.AddEdge(2, "d", 4)
	g.AddEdge(3, "c", 2)
	g.AddEdge(4, "c", 3)
	g.AddEdge(4, "d", 5)
	g.AddEdge(5, "d", 4)
	g.AddVertexLabel(0, "x")
	g.AddVertexLabel(2, "x")
	g.AddVertexLabel(2, "y")
	g.AddVertexLabel(5, "y")
	return g
}

// cndGrammar is the paper's running query: L = { c^n y d^n } where y is
// a vertex label (Section 2.3).
func cndGrammar() *grammar.WCNF {
	return grammar.MustWCNF(grammar.MustNew("S", []grammar.Production{
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("c"), grammar.N("S"), grammar.T("d")}},
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("c"), grammar.T("y"), grammar.T("d")}},
	}))
}

// twoCycleGraph builds the classic CFPQ worst-case input: a cycle of p
// a-edges and a cycle of q b-edges sharing vertex 0.
func twoCycleGraph(p, q int) *graph.Graph {
	g := graph.New(p + q)
	for i := 0; i < p; i++ {
		g.AddEdge(i, "a", (i+1)%p)
	}
	// b-cycle: 0 -> p -> p+1 -> ... -> p+q-1 -> 0.
	prev := 0
	for i := 0; i < q-1; i++ {
		g.AddEdge(prev, "b", p+i)
		prev = p + i
	}
	g.AddEdge(prev, "b", 0)
	return g
}

func pairsSet(m *matrix.Bool) map[[2]int]bool {
	out := map[[2]int]bool{}
	for _, p := range m.Pairs() {
		out[p] = true
	}
	return out
}

func TestAllPairsPaperExample(t *testing.T) {
	r, err := AllPairs(paperGraph(), cndGrammar())
	if err != nil {
		t.Fatal(err)
	}
	got := pairsSet(r.Start())
	want := map[[2]int]bool{{3, 4}: true, {4, 5}: true}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v, want %v", r.Pairs(), want)
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing pair %v in %v", p, r.Pairs())
		}
	}
}

func TestAllPairsAnBnTwoCycles(t *testing.T) {
	// With cycles of length 2 (a) and 3 (b), vertex 0 relates to itself
	// via a^n b^n whenever n ≡ 0 mod 2 and n ≡ 0 mod 3, i.e. n = 6k.
	g := twoCycleGraph(2, 3)
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	r, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Start().Get(0, 0) {
		t.Fatalf("expected (0,0) in relation; got %v", r.Pairs())
	}
	// All-pairs on this construction is known to relate every a-cycle
	// vertex to every b-cycle vertex eventually; sanity: relation must
	// not be empty and must stay within bounds.
	if r.Start().NVals() == 0 {
		t.Fatal("empty relation")
	}
}

func TestAllPairsEmptyGraphAndGrammarMismatch(t *testing.T) {
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	r, err := AllPairs(graph.New(4), w) // no edges at all
	if err != nil {
		t.Fatal(err)
	}
	if r.Start().NVals() != 0 {
		t.Fatal("relation on empty graph must be empty")
	}
	// Graph whose labels don't intersect the grammar's terminals.
	g := graph.New(3)
	g.AddEdge(0, "z", 1)
	r, err = AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start().NVals() != 0 {
		t.Fatal("relation with unrelated labels must be empty")
	}
}

func TestAllPairsNilInputs(t *testing.T) {
	if _, err := AllPairs(nil, nil); err == nil {
		t.Fatal("expected error for nil inputs")
	}
}

func TestAllPairsEpsilonGrammar(t *testing.T) {
	w := grammar.MustWCNF(grammar.Dyck1("a", "b"))
	g := graph.New(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	r, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	// eps relates every vertex to itself; ab relates 0 to 2.
	for i := 0; i < 3; i++ {
		if !r.Start().Get(i, i) {
			t.Fatalf("missing trivial pair (%d,%d)", i, i)
		}
	}
	if !r.Start().Get(0, 2) || r.Start().Get(0, 1) {
		t.Fatalf("dyck relation wrong: %v", r.Pairs())
	}
}

func TestAllPairsInverseLabels(t *testing.T) {
	// S -> a_r a : pairs (v,v) for every v with an incoming... precisely,
	// v -a_r-> u -a-> w means edges u->v and u->w. From vertex 1: edge
	// 0->1 gives 1 -a_r-> 0, then 0 -a-> 1 or 0 -a-> 2.
	g := graph.New(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(0, "a", 2)
	w := grammar.MustWCNF(grammar.MustNew("S", []grammar.Production{
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("a_r"), grammar.T("a")}},
	}))
	r, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]bool{{1, 1}: true, {1, 2}: true, {2, 1}: true, {2, 2}: true}
	got := pairsSet(r.Start())
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", r.Pairs())
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing %v in %v", p, r.Pairs())
		}
	}
}

func TestMultiSourceMatchesAllPairsOnPaperExample(t *testing.T) {
	g := paperGraph()
	w := cndGrammar()
	ap, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, srcIdx := range [][]int{{3}, {4}, {0}, {3, 4}, {0, 1, 2, 3, 4, 5}} {
		src := matrix.NewVectorFromIndices(6, srcIdx)
		ms, err := MultiSource(g, w, src)
		if err != nil {
			t.Fatal(err)
		}
		want := matrix.ExtractRows(ap.Start(), src)
		if !ms.Answer().Equal(want) {
			t.Fatalf("src=%v: MS=%v want %v", srcIdx, ms.Answer().Pairs(), want.Pairs())
		}
	}
}

func TestMultiSourceSizeMismatch(t *testing.T) {
	g := paperGraph()
	if _, err := MultiSource(g, cndGrammar(), matrix.NewVector(5)); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := MultiSource(g, cndGrammar(), nil); err == nil {
		t.Fatal("expected nil source error")
	}
}

func TestMultiSourceEmptySources(t *testing.T) {
	ms, err := MultiSource(paperGraph(), cndGrammar(), matrix.NewVector(6))
	if err != nil {
		t.Fatal(err)
	}
	if ms.Answer().NVals() != 0 {
		t.Fatal("empty source set must yield empty answer")
	}
}

// randomGraph builds a random labeled graph for property tests.
func randomGraph(rng *rand.Rand, n, edges int, labels []string) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < edges; i++ {
		g.AddEdge(rng.Intn(n), labels[rng.Intn(len(labels))], rng.Intn(n))
	}
	return g
}

func testGrammars() map[string]*grammar.WCNF {
	return map[string]*grammar.WCNF{
		"anbn":    grammar.MustWCNF(grammar.AnBn("a", "b")),
		"dyck":    grammar.MustWCNF(grammar.Dyck1("a", "b")),
		"samegen": grammar.MustWCNF(grammar.SameGen("a", "b")),
		"g2":      grammar.MustWCNF(grammar.G2()),
	}
}

// Property: MultiSource answers equal row-filtered AllPairs answers, for
// random graphs, grammars and source sets. This is the core correctness
// claim of Algorithm 2.
func TestMultiSourceEqualsFilteredAllPairsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2021))
	labels := []string{"a", "b", "subClassOf"}
	for name, w := range testGrammars() {
		w := w
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 15; trial++ {
				n := 3 + rng.Intn(18)
				g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
				ap, err := AllPairs(g, w)
				if err != nil {
					t.Fatal(err)
				}
				src := matrix.NewVector(n)
				for v := 0; v < n; v++ {
					if rng.Intn(3) == 0 {
						src.Set(v)
					}
				}
				ms, err := MultiSource(g, w, src)
				if err != nil {
					t.Fatal(err)
				}
				want := matrix.ExtractRows(ap.Start(), src)
				if !ms.Answer().Equal(want) {
					t.Fatalf("trial %d n=%d: MS != filtered AP\nMS:   %v\nwant: %v",
						trial, n, ms.Answer().Pairs(), want.Pairs())
				}
			}
		})
	}
}

// Property: the worklist baseline computes the same all-pairs relation
// as the matrix algorithm.
func TestWorklistEqualsAllPairsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	labels := []string{"a", "b", "subClassOf"}
	for name, w := range testGrammars() {
		w := w
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				n := 3 + rng.Intn(15)
				g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
				ap, err := AllPairs(g, w)
				if err != nil {
					t.Fatal(err)
				}
				wl, err := Worklist(g, w)
				if err != nil {
					t.Fatal(err)
				}
				for a := 0; a < w.NumNonterms(); a++ {
					if !ap.T[a].Equal(wl.T[a]) {
						t.Fatalf("trial %d: relation of %s differs", trial, w.Nonterms[a])
					}
				}
			}
		})
	}
}

// Property: the multiple-source worklist baseline agrees with Algorithm 2.
func TestWorklistMultiSourceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	labels := []string{"a", "b"}
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(15)
		g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
		src := matrix.NewVector(n)
		for v := 0; v < n; v++ {
			if rng.Intn(4) == 0 {
				src.Set(v)
			}
		}
		ms, err := MultiSource(g, w, src)
		if err != nil {
			t.Fatal(err)
		}
		wl, err := WorklistMultiSource(g, w, src)
		if err != nil {
			t.Fatal(err)
		}
		if !wl.Equal(ms.Answer()) {
			t.Fatalf("trial %d: worklist MS differs:\n%v\nvs\n%v", trial, wl.Pairs(), ms.Answer().Pairs())
		}
	}
}

func TestParallelWorkersMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 40, 160, []string{"a", "b"})
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	serial, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AllPairs(g, w, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Start().Equal(par.Start()) {
		t.Fatal("parallel result differs from serial")
	}
}

// Property: semi-naive evaluation computes exactly the Algorithm 1
// relations on random inputs.
func TestSemiNaiveEqualsAllPairsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	labels := []string{"a", "b", "subClassOf"}
	for name, w := range testGrammars() {
		w := w
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 12; trial++ {
				n := 3 + rng.Intn(16)
				g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
				ap, err := AllPairs(g, w)
				if err != nil {
					t.Fatal(err)
				}
				sn, err := AllPairsSemiNaive(g, w)
				if err != nil {
					t.Fatal(err)
				}
				for a := 0; a < w.NumNonterms(); a++ {
					if !ap.T[a].Equal(sn.T[a]) {
						t.Fatalf("trial %d: %s relation differs", trial, w.Nonterms[a])
					}
				}
			}
		})
	}
}

func TestSemiNaivePaperExample(t *testing.T) {
	sn, err := AllPairsSemiNaive(paperGraph(), cndGrammar())
	if err != nil {
		t.Fatal(err)
	}
	got := pairsSet(sn.Start())
	if len(got) != 2 || !got[[2]int{3, 4}] || !got[[2]int{4, 5}] {
		t.Fatalf("pairs = %v", sn.Pairs())
	}
	if _, err := AllPairsSemiNaive(nil, nil); err == nil {
		t.Fatal("expected error for nil inputs")
	}
}

func TestHybridKernelsMatchDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomGraph(rng, 60, 600, []string{"a", "b"}) // dense enough to trigger the bitset path
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	plain, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := AllPairs(g, w, WithHybridKernels())
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Start().Equal(hybrid.Start()) {
		t.Fatal("hybrid kernels changed the all-pairs result")
	}
	src := matrix.NewVectorFromIndices(60, []int{0, 1, 2, 3, 4})
	ms, err := MultiSource(g, w, src)
	if err != nil {
		t.Fatal(err)
	}
	msh, err := MultiSource(g, w, src, WithHybridKernels())
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Answer().Equal(msh.Answer()) {
		t.Fatal("hybrid kernels changed the multi-source answer")
	}
}

func TestResultAccessors(t *testing.T) {
	r, err := AllPairs(paperGraph(), cndGrammar())
	if err != nil {
		t.Fatal(err)
	}
	if r.Matrix("S") != r.Start() {
		t.Fatal("Matrix(S) != Start()")
	}
	if r.Matrix("NoSuch") != nil {
		t.Fatal("unknown nonterminal should give nil")
	}
	src := matrix.NewVectorFromIndices(6, []int{3})
	if got := r.PairsFrom(src); len(got) != 1 || got[0] != [2]int{3, 4} {
		t.Fatalf("PairsFrom = %v", got)
	}
	if got := r.ReachableFrom(src); !got.Equal(matrix.NewVectorFromIndices(6, []int{4})) {
		t.Fatalf("ReachableFrom = %v", got)
	}
}
