package resp

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mscfpq/internal/fault"
	"mscfpq/internal/gdb"
	"mscfpq/internal/graph"
)

// The hostile-client suite: malformed, oversized, and half-finished
// input must cost the server at most the offending connection — never
// memory, never the process — and overload must shed with an explicit
// retryable refusal instead of queueing without bound.

// startConfiguredServer is startServerWith with a configuration hook
// that runs before Serve (MaxConns and IdleTimeout must be set then).
func startConfiguredServer(t *testing.T, db *gdb.DB, cfg func(*Server)) (*Server, string) {
	t.Helper()
	srv := NewServer(db)
	if cfg != nil {
		cfg(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv, addr.String()
}

// dialRaw opens a plain TCP connection with a read deadline so a
// misbehaving server fails the test instead of hanging it.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

// mustServeHealthy asserts the server still answers fresh connections.
func mustServeHealthy(t *testing.T, addr string) {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial after hostile input: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after hostile input: %v", err)
	}
}

// infiniteReader yields an endless stream of one byte, counting what
// the consumer actually pulled.
type infiniteReader struct {
	b    byte
	read int
}

func (r *infiniteReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.b
	}
	r.read += len(p)
	return len(p), nil
}

// TestReadBoundedLineBoundsMemory is the regression test for the
// unbounded inline path: against an endless newline-less stream the
// reader must fail promptly, having consumed only limit-plus-one-buffer
// bytes — not grow until the process dies.
func TestReadBoundedLineBoundsMemory(t *testing.T) {
	src := &infiniteReader{b: 'x'}
	br := bufio.NewReader(src)
	_, err := readBoundedLine(br, maxInlineLen)
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("readBoundedLine on endless stream = %v, want too-large error", err)
	}
	if limit := maxInlineLen + 64<<10; src.read > limit {
		t.Fatalf("bounded line read consumed %d bytes from the stream, want <= %d", src.read, limit)
	}
}

func TestHostileOversizedInlineLine(t *testing.T) {
	_, addr := startServerWith(t, nil)
	conn := dialRaw(t, addr)
	// A newline-less stream just past the inline bound. The server must
	// refuse and close; depending on close timing the error reply may
	// be lost to a TCP reset, so health of the next connection is the
	// hard assertion.
	payload := bytes.Repeat([]byte{'x'}, maxInlineLen+4096)
	// The server may close mid-write; the write error is part of the scenario.
	_, _ = conn.Write(payload)
	reply, _ := io.ReadAll(conn)
	if len(reply) > 0 && !strings.Contains(string(reply), "protocol error") {
		t.Fatalf("reply to oversized inline = %q, want protocol error", reply)
	}
	mustServeHealthy(t, addr)
}

func TestHostileOversizedBulkLength(t *testing.T) {
	_, addr := startServerWith(t, nil)
	conn := dialRaw(t, addr)
	if _, err := conn.Write([]byte("*1\r\n$999999999\r\n")); err != nil {
		t.Fatal(err)
	}
	reply, _ := io.ReadAll(conn)
	if !strings.Contains(string(reply), "protocol error") || !strings.Contains(string(reply), "bulk length") {
		t.Fatalf("reply to hostile bulk length = %q", reply)
	}
	mustServeHealthy(t, addr)
}

func TestHostileOversizedArrayLength(t *testing.T) {
	_, addr := startServerWith(t, nil)
	conn := dialRaw(t, addr)
	if _, err := conn.Write([]byte("*99999999\r\n")); err != nil {
		t.Fatal(err)
	}
	reply, _ := io.ReadAll(conn)
	if !strings.Contains(string(reply), "protocol error") || !strings.Contains(string(reply), "array length") {
		t.Fatalf("reply to hostile array length = %q", reply)
	}
	mustServeHealthy(t, addr)
}

func TestHostileMidCommandDisconnect(t *testing.T) {
	_, addr := startServerWith(t, nil)
	conn := dialRaw(t, addr)
	// Promise two elements, deliver one, hang up.
	if _, err := conn.Write([]byte("*2\r\n$4\r\nPING\r\n")); err != nil {
		t.Fatal(err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	mustServeHealthy(t, addr)
}

// TestDispatchPanicIsOneErrorReply arms the dispatch failpoint with a
// panic: the crashing command costs exactly one error reply, and the
// same connection keeps working.
func TestDispatchPanicIsOneErrorReply(t *testing.T) {
	defer fault.Reset()
	_, addr := startServerWith(t, map[string]*graph.Graph{"g": twoCycle(4)})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	defer fault.Enable(FPDispatch, fault.Spec{Panic: "chaos: handler exploded", Times: 1})()
	_, err = c.Do("GRAPH.LIST")
	if err == nil || !strings.Contains(err.Error(), "internal error") || !strings.Contains(err.Error(), "GRAPH.LIST") {
		t.Fatalf("panicking dispatch returned %v, want internal-error reply naming the command", err)
	}
	// The very same connection survives the handler panic.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping on the same connection after panic: %v", err)
	}
	if r, err := c.GraphQuery("g", anbnQuery); err != nil || len(r.Rows) == 0 {
		t.Fatalf("query after panic = (%v, %v)", r, err)
	}
}

func TestMaxConnsRefusesExcess(t *testing.T) {
	_, addr := startConfiguredServer(t, gdb.New(), func(s *Server) { s.MaxConns = 1 })
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil { // round-trip: c1 is registered
		t.Fatal(err)
	}

	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Ping(); err == nil || !strings.Contains(err.Error(), "max number of clients") {
		t.Fatalf("excess connection got %v, want maxclients refusal", err)
	}

	// Freeing the slot readmits new clients.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(addr)
		if err == nil {
			err = c3.Ping()
			c3.Close()
			if err == nil {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after close: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestIdleTimeoutClosesConnection(t *testing.T) {
	_, addr := startConfiguredServer(t, gdb.New(), func(s *Server) { s.IdleTimeout = 100 * time.Millisecond })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded on a connection the idle deadline should have closed")
	}
	mustServeHealthy(t, addr)
}

// TestBusySheddingAndRetry drives the overload path end to end: with
// MaxConcurrent 1 and a slow query holding the slot, a second command
// is refused with the retryable BUSY error, PING still answers (health
// checks bypass shedding), and DoRetry's backoff eventually lands the
// refused command once the slot frees.
func TestBusySheddingAndRetry(t *testing.T) {
	srv, addr := startServerWith(t, map[string]*graph.Graph{"g": twoCycle(150)})
	srv.DB.SetPolicy(gdb.Policy{MaxConcurrent: 1})

	slow, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	slowDone := make(chan error, 1)
	go func() {
		// The TIMEOUT clause bounds the slot-holding query so the test
		// ends promptly (especially under -race) once shedding and the
		// retry have been observed.
		_, err := slow.GraphQuery("g", anbnQuery+` TIMEOUT 5000`)
		slowDone <- err
	}()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Observe at least one BUSY refusal while the slot is held.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := c.Do("GRAPH.LIST")
		if err != nil {
			if !IsTransient(err) {
				t.Fatalf("refusal is not transient: %v", err)
			}
			if !strings.Contains(err.Error(), "BUSY") {
				t.Fatalf("refusal lacks the BUSY code: %v", err)
			}
			break
		}
		select {
		case serr := <-slowDone:
			t.Fatalf("slow query finished before shedding was observed (err=%v); grow the graph", serr)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("no BUSY refusal within 10s")
		}
	}

	// Health checks bypass shedding.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping during overload: %v", err)
	}

	// Backoff retry rides out the overload.
	if _, err := c.DoRetry(200, "GRAPH.LIST"); err != nil {
		t.Fatalf("DoRetry never landed: %v", err)
	}
	if err := <-slowDone; err != nil && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("slow query failed: %v", err)
	}
}

// TestShutdownRacesSaveAndJournal races graceful Shutdown against
// in-flight mutating queries and explicit GRAPH.SAVE snapshots on a
// durable store (run under -race). Whatever interleaving happens, the
// data directory must recover cleanly afterwards.
func TestShutdownRacesSaveAndJournal(t *testing.T) {
	dir := t.TempDir()
	db, err := gdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, addr := startConfiguredServer(t, db, nil)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			for {
				if _, err := c.GraphQuery("race", `CREATE (a:N)-[:e]->(b:N)`); err != nil {
					return // shutdown refusal or closed connection ends the loop
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(addr)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			if _, err := c.Do("GRAPH.SAVE"); err != nil {
				return
			}
		}
	}()

	time.Sleep(150 * time.Millisecond) // let the workload overlap snapshots
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown during workload = %v", err)
	}
	wg.Wait()
	if err := db.Close(); err != nil {
		t.Fatalf("Close after shutdown: %v", err)
	}

	db2, err := gdb.Open(dir)
	if err != nil {
		t.Fatalf("recovery after racing shutdown: %v", err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
}
