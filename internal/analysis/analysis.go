// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary used by this
// repository's lint suite (cmd/mscfpq-lint).
//
// The repository builds with the standard library only, so instead of
// depending on x/tools the package provides the same three concepts —
// an Analyzer (a named check with a Run function), a Pass (one
// type-checked package handed to an analyzer), and Diagnostics — plus
// the //lint:ignore suppression convention. Packages are loaded and
// type-checked from source by the loader in load.go.
//
// Suppression policy: a diagnostic may be silenced by a comment of the
// form
//
//	//lint:ignore <analyzer> <reason>
//
// placed either at the end of the flagged line or on its own line
// directly above it. The reason is mandatory: an ignore comment without
// one is itself reported and cannot be suppressed. The policy is
// documented in TESTING.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by
	// `mscfpq-lint -help`.
	Doc string

	// DefaultScope lists module-relative package-path prefixes the
	// driver applies the analyzer to (e.g. "internal/matrix"). Empty
	// means every package in the module. Scoping is a driver concern:
	// tests run analyzers on fixture packages regardless of scope.
	DefaultScope []string

	// IgnoreTestFiles drops diagnostics reported in _test.go files.
	IgnoreTestFiles bool

	// Run implements the check. It reports findings through
	// pass.Reportf and returns an error only for internal failures
	// (never for findings).
	Run func(*Pass) error
}

// A Pass is one type-checked package presented to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Run applies one analyzer to one loaded unit and returns the
// diagnostics that survive test-file filtering and //lint:ignore
// suppression processing, sorted by position.
func Run(a *Analyzer, u *Unit) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags := pass.diags
	if a.IgnoreTestFiles {
		kept := diags[:0]
		for _, d := range diags {
			if !strings.HasSuffix(u.Fset.Position(d.Pos).Filename, "_test.go") {
				kept = append(kept, d)
			}
		}
		diags = kept
	}
	diags = applySuppressions(u, a.Name, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Pos
}

// suppressionsByLine maps "filename:line" of the code a comment covers
// to the suppressions in force there. A trailing comment covers its own
// line; a standalone comment covers the line below its last line.
func suppressionsByLine(u *Unit) map[string][]suppression {
	out := map[string][]suppression{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				s := suppression{pos: c.Pos()}
				if len(fields) > 0 {
					s.analyzer = fields[0]
				}
				if len(fields) > 1 {
					s.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				p := u.Fset.Position(c.Pos())
				end := u.Fset.Position(c.End())
				// The comment covers its own starting line (trailing
				// form) and the first line after it (standalone form).
				for _, line := range []int{p.Line, end.Line + 1} {
					key := fmt.Sprintf("%s:%d", p.Filename, line)
					out[key] = append(out[key], s)
				}
			}
		}
	}
	return out
}

// applySuppressions removes diagnostics covered by a well-formed
// //lint:ignore comment for this analyzer and reports malformed
// (reason-less) ignore comments that tried to cover a finding.
func applySuppressions(u *Unit, name string, diags []Diagnostic) []Diagnostic {
	sup := suppressionsByLine(u)
	if len(sup) == 0 {
		return diags
	}
	var out []Diagnostic
	badReported := map[token.Pos]bool{}
	for _, d := range diags {
		p := u.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, s := range sup[key] {
			if s.analyzer != name {
				continue
			}
			if s.reason == "" {
				if !badReported[s.pos] {
					badReported[s.pos] = true
					out = append(out, Diagnostic{
						Pos:      s.pos,
						Analyzer: name,
						Message:  "//lint:ignore requires a reason: //lint:ignore " + name + " <why this is safe>",
					})
				}
				continue
			}
			matched = true
		}
		if !matched {
			out = append(out, d)
		}
	}
	return out
}
