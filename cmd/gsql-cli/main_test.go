package main

import (
	"path/filepath"
	"strings"
	"testing"

	"mscfpq/internal/gdb"
	"mscfpq/internal/graph"
	"mscfpq/internal/resp"
)

// startServer runs an in-process server with a small seeded graph.
func startServer(t *testing.T) *resp.Client {
	t.Helper()
	db := gdb.New()
	g := graph.New(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	db.AddGraph("g", g)
	srv := resp.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	c, err := resp.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func runREPL(t *testing.T, c *resp.Client, script string) string {
	t.Helper()
	var out strings.Builder
	if err := repl(c, "g", strings.NewReader(script), &out); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

func TestREPLQueryAndMeta(t *testing.T) {
	c := startServer(t)
	out := runREPL(t, c, `
ping
list
MATCH (v)-[:a]->(u) RETURN v, u
explain MATCH (v)-[:a]->(u) RETURN v
profile MATCH (v)-[:a]->(u) RETURN v
quit
`)
	for _, want := range []string{"PONG", "g\n", "0 | 1", "1 | 2", "CondTraverse", "Records produced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("repl output missing %q:\n%s", want, out)
		}
	}
}

func TestREPLUseAndDelete(t *testing.T) {
	c := startServer(t)
	out := runREPL(t, c, `
use other
CREATE (a:N)-[:e]->(b:N)
MATCH (v:N)-[:e]->(u) RETURN v, u
delete other
list
`)
	if !strings.Contains(out, "0 | 1") {
		t.Fatalf("query on new graph failed:\n%s", out)
	}
	if !strings.Contains(out, "OK") {
		t.Fatalf("delete failed:\n%s", out)
	}
}

func TestREPLSave(t *testing.T) {
	dir := t.TempDir()
	db, err := gdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv := resp.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	c, err := resp.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	out := runREPL(t, c, `
CREATE (a:N)-[:e]->(b:N)
save
`)
	if !strings.Contains(out, "OK") {
		t.Fatalf("save failed:\n%s", out)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 1 {
		t.Fatalf("snapshots after save = %v (%v)", snaps, err)
	}
}

func TestREPLLineContinuation(t *testing.T) {
	c := startServer(t)
	out := runREPL(t, c, `
PATH PATTERN P = ()-/ [:a]+ /->() \
MATCH (v)-/ ~P /->(u) \
WHERE id(v) = 0 \
RETURN v, u
quit
`)
	if !strings.Contains(out, "0 | 1") || !strings.Contains(out, "0 | 2") {
		t.Fatalf("continued query failed:\n%s", out)
	}
}

func TestREPLErrorsSurface(t *testing.T) {
	c := startServer(t)
	out := runREPL(t, c, `
MATCH (v RETURN v
delete missing
use
`)
	if strings.Count(out, "error:") < 2 || !strings.Contains(out, "usage: use") {
		t.Fatalf("errors not surfaced:\n%s", out)
	}
}
