package analysis_test

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"mscfpq/internal/analysis"
)

// unitFiles lists the base filenames a unit was built from.
func unitFiles(u *analysis.Unit) map[string]bool {
	out := map[string]bool{}
	for _, f := range u.Files {
		out[filepath.Base(u.Fset.Position(f.Pos()).Filename)] = true
	}
	return out
}

// TestLoadModuleTags pins the build-tag handling the nofault lint pass
// depends on: internal/fault splits on the tag (fault.go vs
// fault_off.go), and both selections must type-check with the same
// exported surface.
func TestLoadModuleTags(t *testing.T) {
	cases := []struct {
		name      string
		tags      []string
		wantFile  string
		rejelFile string
	}{
		{"default", nil, "fault.go", "fault_off.go"},
		{"nofault", []string{"nofault"}, "fault_off.go", "fault.go"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := analysis.LoadModuleTags("../..", tc.tags)
			if err != nil {
				t.Fatal(err)
			}
			units, err := m.LoadUnits("internal/fault", false)
			if err != nil {
				t.Fatal(err)
			}
			if len(units) != 1 {
				t.Fatalf("units = %d, want 1", len(units))
			}
			u := units[0]
			files := unitFiles(u)
			if !files[tc.wantFile] {
				t.Errorf("tags %v: %s not selected (got %v)", tc.tags, tc.wantFile, files)
			}
			if files[tc.rejelFile] {
				t.Errorf("tags %v: %s should be excluded (got %v)", tc.tags, tc.rejelFile, files)
			}
			// Both builds expose the injection API.
			for _, name := range []string{"Inject", "Enable", "Declare", "Names"} {
				if u.Pkg.Scope().Lookup(name) == nil {
					t.Errorf("tags %v: package lacks %s", tc.tags, name)
				}
			}
		})
	}
}

// TestLoadFixtureGenerics verifies generic code type-checks and the
// loader records instantiations — analyzers resolve generic callees
// through Info.Instances.
func TestLoadFixtureGenerics(t *testing.T) {
	_, u := loadFixture(t, "generic")
	if u.Pkg == nil || u.Pkg.Name() != "generic" {
		t.Fatalf("unexpected package: %v", u.Pkg)
	}
	if len(u.Info.Instances) == 0 {
		t.Fatal("Info.Instances is empty — generic instantiations were not recorded")
	}
	var sawMap bool
	for id := range u.Info.Instances {
		if id.Name == "Map" {
			sawMap = true
		}
	}
	if !sawMap {
		names := []string{}
		for id := range u.Info.Instances {
			names = append(names, id.Name)
		}
		sort.Strings(names)
		t.Fatalf("no instantiation of Map recorded (got %s)", strings.Join(names, ", "))
	}
}
