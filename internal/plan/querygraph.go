package plan

import (
	"fmt"
	"strings"

	"mscfpq/internal/cypher"
)

// QueryGraph is the intermediate representation the paper's Section
// 4.3.1 describes (Figure 10): pattern nodes become query-graph nodes
// and connections — relationship or path patterns — become its edges.
// The planner linearizes it into chains before translating each chain
// into algebraic expressions.
type QueryGraph struct {
	Nodes []QGNode
	Edges []QGEdge
}

// QGNode is one pattern node; anonymous nodes get synthetic names.
type QGNode struct {
	Name   string
	Labels []string
	Props  []cypher.Property
}

// QGEdge connects two query-graph nodes with the original pattern
// connection.
type QGEdge struct {
	From, To int // indices into Nodes
	Conn     cypher.Connection
}

// BuildQueryGraph folds the MATCH patterns into a query graph, merging
// nodes that share a variable name.
func BuildQueryGraph(m *cypher.MatchClause) (*QueryGraph, error) {
	if m == nil || len(m.Patterns) == 0 {
		return nil, fmt.Errorf("plan: empty MATCH clause")
	}
	qg := &QueryGraph{}
	byName := map[string]int{}
	anon := 0
	nodeIdx := func(n cypher.NodePattern) int {
		name := n.Var
		if name == "" {
			name = fmt.Sprintf("$anon%d", anon)
			anon++
		}
		if idx, ok := byName[name]; ok {
			// Merge label and property constraints of repeated vars.
			qg.Nodes[idx].Labels = append(qg.Nodes[idx].Labels, n.Labels...)
			qg.Nodes[idx].Props = append(qg.Nodes[idx].Props, n.Props...)
			return idx
		}
		idx := len(qg.Nodes)
		byName[name] = idx
		qg.Nodes = append(qg.Nodes, QGNode{Name: name, Labels: n.Labels, Props: n.Props})
		return idx
	}
	for _, pat := range m.Patterns {
		if len(pat.Nodes) != len(pat.Connections)+1 {
			return nil, fmt.Errorf("plan: malformed pattern (%d nodes, %d connections)",
				len(pat.Nodes), len(pat.Connections))
		}
		prev := nodeIdx(pat.Nodes[0])
		for i, conn := range pat.Connections {
			next := nodeIdx(pat.Nodes[i+1])
			qg.Edges = append(qg.Edges, QGEdge{From: prev, To: next, Conn: conn})
			prev = next
		}
	}
	return qg, nil
}

// Chains splits the query graph back into linear traversal chains,
// mirroring the paper's "linearize then split into small paths" step:
// edges are emitted in input order, starting a new chain whenever an
// edge does not continue from the previous edge's destination.
func (qg *QueryGraph) Chains() [][]QGEdge {
	var chains [][]QGEdge
	var cur []QGEdge
	for _, e := range qg.Edges {
		if len(cur) > 0 && cur[len(cur)-1].To != e.From {
			chains = append(chains, cur)
			cur = nil
		}
		cur = append(cur, e)
	}
	if len(cur) > 0 {
		chains = append(chains, cur)
	}
	return chains
}

// String renders the query graph for debugging and EXPLAIN output.
func (qg *QueryGraph) String() string {
	var b strings.Builder
	b.WriteString("QueryGraph{")
	for i, n := range qg.Nodes {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(n.Name)
		for _, l := range n.Labels {
			b.WriteString(":" + l)
		}
	}
	b.WriteString(" | ")
	for i, e := range qg.Edges {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s->%s", qg.Nodes[e.From].Name, qg.Nodes[e.To].Name)
	}
	b.WriteString("}")
	return b.String()
}
