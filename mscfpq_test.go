package mscfpq

import "testing"

// TestFacadeQuickstart exercises the doc-comment example end to end.
func TestFacadeQuickstart(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)
	gr, err := ParseGrammar("S -> a S b | a b")
	if err != nil {
		t.Fatal(err)
	}
	w, err := ToWCNF(gr)
	if err != nil {
		t.Fatal(err)
	}
	src := NewVertexSet(g.NumVertices(), 0, 1)
	res, err := MultiSource(g, w, src)
	if err != nil {
		t.Fatal(err)
	}
	// a a b b from 0 ends at 0; a b from 1 ends at 3.
	if !res.Answer().Get(0, 0) || !res.Answer().Get(1, 3) {
		t.Fatalf("answer = %v", res.Answer().Pairs())
	}

	ap, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !ap.Start().Get(0, 0) {
		t.Fatal("all-pairs missing (0,0)")
	}

	sp, err := SinglePath(g, w)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sp.Path(1, 3)
	if err != nil || len(steps) != 2 {
		t.Fatalf("path = %v, %v", steps, err)
	}

	wl, err := Worklist(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !wl.Start().Equal(ap.Start()) {
		t.Fatal("worklist differs from all-pairs")
	}

	idx, err := NewIndex(g, w)
	if err != nil {
		t.Fatal(err)
	}
	smart, err := idx.MultiSourceSmart(src)
	if err != nil {
		t.Fatal(err)
	}
	if !smart.Answer().Equal(res.Answer()) {
		t.Fatal("smart differs from fresh")
	}
}

func TestFacadeSinglePathAndSemiNaive(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)
	w, err := ToWCNF(AnBnGrammar())
	if err != nil {
		t.Fatal(err)
	}
	src := NewVertexSet(4, 0)
	msp, err := MultiSourceSinglePath(g, w, src)
	if err != nil {
		t.Fatal(err)
	}
	if !msp.Answer().Get(0, 0) {
		t.Fatalf("answer = %v", msp.Answer().Pairs())
	}
	steps, err := msp.Path(0, 0)
	if err != nil || len(steps) != 4 {
		t.Fatalf("witness = %v, %v", steps, err)
	}
	sn, err := AllPairsSemiNaive(g, w)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !sn.Start().Equal(ap.Start()) {
		t.Fatal("semi-naive differs")
	}
}

func TestFacadeRegexAndRSM(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	nfa, err := CompileRegex("a+")
	if err != nil {
		t.Fatal(err)
	}
	src := NewVertexSet(3, 0)
	m, err := EvalRegex(g, nfa, src)
	if err != nil || m.NVals() != 2 {
		t.Fatalf("regex pairs = %v, %v", m, err)
	}
	gr := RegexToGrammar(nfa)
	w, err := ToWCNF(gr)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := MultiSource(g, w, src)
	if err != nil {
		t.Fatal(err)
	}
	if !ms.Answer().Equal(m) {
		t.Fatal("regex via CFPQ differs")
	}
	machine, err := NewRSM(gr)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := machine.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Get(0, 1) || !rel.Get(0, 2) {
		t.Fatalf("tensor relation = %v", rel.Pairs())
	}
}

func TestFacadeDatabase(t *testing.T) {
	db := NewDB()
	if _, err := db.Query("g", `CREATE (a:N)-[:e]->(b:N)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("g", `MATCH (v:N)-[:e]->(u) RETURN v, u`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("rows = %v, %v", res, err)
	}
	srv := NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.GraphQuery("g", `MATCH (v:N)-[:e]->(u) RETURN v, u`)
	if err != nil || len(reply.Rows) != 1 {
		t.Fatalf("reply = %v, %v", reply, err)
	}
}

func TestFacadeDataset(t *testing.T) {
	if len(Dataset()) != 8 {
		t.Fatal("dataset registry incomplete")
	}
	g, err := GenerateDataset("core", 0.2)
	if err != nil || g.NumVertices() == 0 {
		t.Fatalf("generate: %v", err)
	}
	if _, err := GenerateDataset("nope", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestFacadeQueryGrammars(t *testing.T) {
	for _, g := range []*Grammar{G1(), G2(), Geo()} {
		if _, err := ToWCNF(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeGraphIO(t *testing.T) {
	path := t.TempDir() + "/g.txt"
	g := NewGraph(2)
	g.AddEdge(0, "a", 1)
	if err := SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGraph(path)
	if err != nil || !back.HasEdge(0, "a", 1) {
		t.Fatalf("load: %v", err)
	}
	if _, err := LoadGrammar(path + ".nope"); err == nil {
		t.Fatal("expected error")
	}
}
