package matrix

import (
	"math/rand"
	"testing"
)

// snapshotRows deep-copies the row contents of m for later
// bit-for-bit comparison, independent of m's own storage.
func snapshotRows(m *Bool) [][]uint32 {
	out := make([][]uint32, m.NRows())
	for i := range out {
		out[i] = append([]uint32(nil), m.Row(i)...)
	}
	return out
}

func rowsEqual(t *testing.T, m *Bool, want [][]uint32, label string) {
	t.Helper()
	if m.NRows() != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, m.NRows(), len(want))
	}
	for i, w := range want {
		got := m.Row(i)
		if len(got) != len(w) {
			t.Fatalf("%s: row %d = %v, want %v", label, i, got, w)
		}
		for k := range w {
			if got[k] != w[k] {
				t.Fatalf("%s: row %d = %v, want %v", label, i, got, w)
			}
		}
	}
}

// TestCloneCOWChildMutationDoesNotAliasParent is the aliasing
// regression test for copy-on-write snapshots: every mutation path on
// a child clone must leave the parent's rows bit-for-bit unchanged.
// Set's in-place insert (append + copy shift) is the historical
// hazard — on a shared backing array it would shift the parent's
// elements too.
func TestCloneCOWChildMutationDoesNotAliasParent(t *testing.T) {
	build := func() *Bool {
		return NewBoolFromPairs(6, 8, [][2]int{
			{0, 1}, {0, 3}, {0, 5}, {1, 0}, {2, 2}, {2, 4}, {4, 7}, {5, 0}, {5, 1}, {5, 2},
		})
	}
	mutations := []struct {
		name string
		run  func(c *Bool)
	}{
		{"Set-new-entry", func(c *Bool) { c.Set(0, 2) }},
		{"Set-shifting-entry", func(c *Bool) { c.Set(5, 0); c.Set(5, 3) }},
		{"Unset", func(c *Bool) { c.Unset(0, 3) }},
		{"SetRow", func(c *Bool) { c.SetRow(2, []uint32{1, 6}) }},
		{"Clear", func(c *Bool) { c.Clear() }},
		{"AddInPlace", func(c *Bool) {
			AddInPlace(c, NewBoolFromPairs(6, 8, [][2]int{{0, 0}, {0, 4}, {3, 3}}))
		}},
		{"SubInPlace", func(c *Bool) {
			SubInPlace(c, NewBoolFromPairs(6, 8, [][2]int{{0, 3}, {5, 1}}))
		}},
		{"Resize-then-Set", func(c *Bool) { c.Resize(8, 8); c.Set(7, 7); c.Set(0, 0) }},
	}
	for _, mut := range mutations {
		parent := build()
		want := snapshotRows(parent)
		child := parent.CloneCOW()
		mut.run(child)
		rowsEqual(t, parent, want, mut.name+": parent after child mutation")
		if err := parent.validate(); err != nil {
			t.Fatalf("%s: parent invariants: %v", mut.name, err)
		}
		if err := child.validate(); err != nil {
			t.Fatalf("%s: child invariants: %v", mut.name, err)
		}
	}
}

// TestCloneCOWParentMutationDoesNotAliasChild checks the other
// direction: the clone is a stable snapshot even while the original
// keeps mutating.
func TestCloneCOWParentMutationDoesNotAliasChild(t *testing.T) {
	parent := NewBoolFromPairs(4, 4, [][2]int{{0, 1}, {1, 2}, {3, 0}, {3, 3}})
	child := parent.CloneCOW()
	want := snapshotRows(child)
	parent.Set(0, 0)
	parent.Set(3, 1)
	parent.Unset(1, 2)
	AddInPlace(parent, Identity(4))
	rowsEqual(t, child, want, "child after parent mutation")
	if err := child.validate(); err != nil {
		t.Fatalf("child invariants: %v", err)
	}
	if err := parent.validate(); err != nil {
		t.Fatalf("parent invariants: %v", err)
	}
}

// TestCloneCOWChain exercises a chain of versions (clone of clone),
// the shape the epoch-versioned store produces, under randomized
// mutation, checking every retained snapshot stays frozen.
func TestCloneCOWChain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cur := NewBool(10, 10)
	type gen struct {
		m    *Bool
		want [][]uint32
	}
	var history []gen
	for v := 0; v < 20; v++ {
		history = append(history, gen{cur, snapshotRows(cur)})
		next := cur.CloneCOW()
		for k := 0; k < 5; k++ {
			next.Set(rng.Intn(10), rng.Intn(10))
		}
		if v%3 == 0 {
			next.Unset(rng.Intn(10), rng.Intn(10))
		}
		cur = next
	}
	for v, h := range history {
		rowsEqual(t, h.m, h.want, "version "+string(rune('0'+v%10)))
		if err := h.m.validate(); err != nil {
			t.Fatalf("version %d invariants: %v", v, err)
		}
	}
}

// TestCloneCOWSemantics: the clone must read back exactly as a deep
// clone would, before and after divergent mutation.
func TestCloneCOWSemantics(t *testing.T) {
	parent := NewBoolFromPairs(5, 5, [][2]int{{0, 0}, {1, 3}, {2, 1}, {4, 4}})
	child := parent.CloneCOW()
	if !child.Equal(parent) {
		t.Fatalf("fresh COW clone differs from parent")
	}
	child.Set(1, 1)
	parent.Set(2, 2)
	if child.Get(2, 2) {
		t.Fatalf("parent mutation leaked into child")
	}
	if parent.Get(1, 1) {
		t.Fatalf("child mutation leaked into parent")
	}
	if got, want := child.NVals(), 5; got != want {
		t.Fatalf("child nvals = %d, want %d", got, want)
	}
	if got, want := parent.NVals(), 5; got != want {
		t.Fatalf("parent nvals = %d, want %d", got, want)
	}
}

// TestCloneFrozenLeavesSourceUntouched: CloneFrozen is the
// snapshot-publication clone — it must not write the source at all,
// not even the shared bitmap, because the source is a published
// snapshot that concurrent readers access with plain loads. (CloneCOW
// deliberately writes both bitmaps; that is its contract for the
// both-sides-mutable case, which the contrast check pins down.)
func TestCloneFrozenLeavesSourceUntouched(t *testing.T) {
	m := NewBoolFromPairs(4, 6, [][2]int{{0, 1}, {0, 3}, {2, 2}, {3, 5}})
	want := snapshotRows(m)

	c := m.CloneFrozen()
	if m.shared != nil {
		t.Fatalf("CloneFrozen wrote the source's shared bitmap: %v", m.shared)
	}

	// Contrast: CloneCOW still marks the source shared.
	m2 := NewBoolFromPairs(2, 2, [][2]int{{0, 1}})
	m2.CloneCOW()
	if m2.shared == nil {
		t.Fatal("CloneCOW no longer marks the source shared — its contract changed")
	}

	// Every clone mutation path leaves the frozen source bit-for-bit
	// unchanged (the aliased rows are copied on first write).
	c.Set(0, 2)
	c.Set(3, 0)
	c.Unset(2, 2)
	c.SetRow(1, []uint32{0, 5})
	rowsEqual(t, m, want, "frozen source after clone mutations")
	if !c.Get(0, 2) || !c.Get(3, 0) || c.Get(2, 2) || !c.Get(1, 5) {
		t.Fatal("clone lost its own mutations")
	}
	if err := c.validate(); err != nil {
		t.Fatal(err)
	}
}
