package plan

import (
	"fmt"
	"sort"
	"strings"
)

// OutCol describes one output column of a projection or aggregation.
type OutCol struct {
	Name  string
	Slot  int  // record slot; -1 for count(*)
	Count bool // column is a count aggregate
}

// Aggregate implements RETURN with count aggregates: non-count columns
// are grouping keys, count columns report the group sizes. Groups are
// emitted in first-seen order.
type Aggregate struct {
	child Operation
	cols  []OutCol

	out []Record
	pos int
}

// NewAggregate builds the aggregation operation.
func NewAggregate(child Operation, cols []OutCol) *Aggregate {
	return &Aggregate{child: child, cols: cols}
}

func (a *Aggregate) Open() error {
	a.out, a.pos = nil, 0
	return a.child.Open()
}

func (a *Aggregate) Next() (Record, error) {
	if a.out == nil {
		if err := a.drain(); err != nil {
			return nil, err
		}
	}
	if a.pos >= len(a.out) {
		return nil, nil
	}
	rec := a.out[a.pos]
	a.pos++
	return rec, nil
}

func (a *Aggregate) drain() error {
	groups := map[string]int{} // key -> index in a.out
	counts := []int64{}
	for {
		rec, err := a.child.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		var key strings.Builder
		for _, c := range a.cols {
			if !c.Count {
				fmt.Fprintf(&key, "%d|", rec[c.Slot])
			}
		}
		idx, ok := groups[key.String()]
		if !ok {
			idx = len(a.out)
			groups[key.String()] = idx
			row := make(Record, len(a.cols))
			for i, c := range a.cols {
				if c.Count {
					row[i] = 0
				} else {
					row[i] = rec[c.Slot]
				}
			}
			a.out = append(a.out, row)
			counts = append(counts, 0)
		}
		counts[idx]++
	}
	for idx, row := range a.out {
		for i, c := range a.cols {
			if c.Count {
				row[i] = counts[idx]
			}
		}
	}
	if a.out == nil {
		a.out = []Record{} // distinguish "drained, empty" from "not drained"
	}
	return nil
}

func (a *Aggregate) Explain() string {
	names := make([]string, len(a.cols))
	for i, c := range a.cols {
		names[i] = c.Name
	}
	return "Aggregate(" + strings.Join(names, ", ") + ")"
}

func (a *Aggregate) Child() Operation     { return a.child }
func (a *Aggregate) setChild(c Operation) { a.child = c }

// Sort orders the (already projected) records by output columns.
type Sort struct {
	child Operation
	keys  []sortKey

	out []Record
	pos int
}

type sortKey struct {
	col  int
	desc bool
}

// NewSort builds the sort operation over output column indices.
func NewSort(child Operation, keys []sortKey) *Sort {
	return &Sort{child: child, keys: keys}
}

func (s *Sort) Open() error {
	s.out, s.pos = nil, 0
	return s.child.Open()
}

func (s *Sort) Next() (Record, error) {
	if s.out == nil {
		for {
			rec, err := s.child.Next()
			if err != nil {
				return nil, err
			}
			if rec == nil {
				break
			}
			s.out = append(s.out, rec)
		}
		sort.SliceStable(s.out, func(i, j int) bool {
			for _, k := range s.keys {
				a, b := s.out[i][k.col], s.out[j][k.col]
				if a == b {
					continue
				}
				if k.desc {
					return a > b
				}
				return a < b
			}
			return false
		})
		if s.out == nil {
			s.out = []Record{}
		}
	}
	if s.pos >= len(s.out) {
		return nil, nil
	}
	rec := s.out[s.pos]
	s.pos++
	return rec, nil
}

func (s *Sort) Explain() string {
	parts := make([]string, len(s.keys))
	for i, k := range s.keys {
		dir := "asc"
		if k.desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("col%d %s", k.col, dir)
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

func (s *Sort) Child() Operation     { return s.child }
func (s *Sort) setChild(c Operation) { s.child = c }

// Paginate applies SKIP and LIMIT after projection (and sorting).
type Paginate struct {
	child   Operation
	skip    int
	limit   int // 0 = unlimited
	skipped int
	emitted int
}

// NewPaginate builds the pagination operation.
func NewPaginate(child Operation, skip, limit int) *Paginate {
	return &Paginate{child: child, skip: skip, limit: limit}
}

func (p *Paginate) Open() error {
	p.skipped, p.emitted = 0, 0
	return p.child.Open()
}

func (p *Paginate) Next() (Record, error) {
	for {
		if p.limit > 0 && p.emitted >= p.limit {
			return nil, nil
		}
		rec, err := p.child.Next()
		if err != nil || rec == nil {
			return nil, err
		}
		if p.skipped < p.skip {
			p.skipped++
			continue
		}
		p.emitted++
		return rec, nil
	}
}

func (p *Paginate) Explain() string {
	return fmt.Sprintf("Paginate(skip=%d, limit=%d)", p.skip, p.limit)
}

func (p *Paginate) Child() Operation     { return p.child }
func (p *Paginate) setChild(c Operation) { p.child = c }
