package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/grammar"
	"mscfpq/internal/obs"
)

// obsReps is how many paired off/on timing samples each workload
// takes. Within a rep the two modes run back-to-back, so machine
// drift (load spikes, thermal throttling) inflates both sides of a
// pair together and cancels in the per-rep ratio; the reported
// overhead is the median of those paired ratios, which is robust to
// the occasional rep that lands on a busy scheduler. Each sample
// batches obsInner evaluations so sub-millisecond workloads are not
// lost in timer jitter.
const (
	obsReps  = 15
	obsInner = 8
)

// ObsMeasurement is one workload's metrics-on vs metrics-off
// comparison, as serialized into BENCH_obs.json by `make bench-smoke`.
type ObsMeasurement struct {
	Workload     string  `json:"workload"`
	Graph        string  `json:"graph"`
	Query        string  `json:"query"`
	MetricsOnMS  float64 `json:"metrics_on_ms"`
	MetricsOffMS float64 `json:"metrics_off_ms"`
	OverheadPct  float64 `json:"overhead_pct"`
	Reps         int     `json:"reps"`
}

// ObsOverhead measures the cost of the observability layer (the obs
// acceptance gate, TESTING.md): the governed-kernel workload
// (all-pairs CFPQ, every Mul/Add charged and counted through exec.Run)
// and the multiple-source workload, each run with the metrics registry
// enabled and disabled. No trace is attached — this isolates the
// always-on metric hooks, which must stay within a few percent.
func ObsOverhead(cfg Config) (*Report, []ObsMeasurement, error) {
	const graphName = "core"
	g, spec, err := cfg.Generate(graphName)
	if err != nil {
		return nil, nil, err
	}
	qname, q := queryFor(graphName)
	w := grammar.MustWCNF(q)
	srcs := cfg.chunks(g.NumVertices(), 10)
	workloads := []struct {
		name string
		run  func() error
	}{
		{"governed-kernel", func() error {
			_, err := cfpq.AllPairs(g, w)
			return err
		}},
		{"multi-source", func() error {
			for _, src := range srcs {
				if _, err := cfpq.MultiSource(g, w, src); err != nil {
					return err
				}
			}
			return nil
		}},
	}

	defer obs.SetEnabled(true)
	rep := &Report{
		ID:      "Obs",
		Title:   "Observability overhead (metrics on vs off)",
		Columns: []string{"Workload", "Graph", "Query", "On ms", "Off ms", "Overhead %"},
	}
	var out []ObsMeasurement
	for _, wl := range workloads {
		// One untimed warmup so allocator growth and cache fills are
		// paid before either mode is measured.
		if err := wl.run(); err != nil {
			return nil, nil, fmt.Errorf("%s (warmup): %w", wl.name, err)
		}
		best := map[bool]time.Duration{}
		var ratios []float64
		for i := 0; i < obsReps; i++ {
			sample := map[bool]time.Duration{}
			// Alternate which mode goes first so within-pair warmup
			// (the second run of a pair sees hotter caches) does not
			// systematically favor one side.
			order := []bool{false, true}
			if i%2 == 1 {
				order = []bool{true, false}
			}
			for _, enabled := range order {
				obs.SetEnabled(enabled)
				d, err := timeIt(func() error {
					for j := 0; j < obsInner; j++ {
						if err := wl.run(); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return nil, nil, fmt.Errorf("%s (metrics=%v): %w", wl.name, enabled, err)
				}
				d /= obsInner
				sample[enabled] = d
				if cur, ok := best[enabled]; !ok || d < cur {
					best[enabled] = d
				}
			}
			if sample[false] > 0 {
				ratios = append(ratios, float64(sample[true])/float64(sample[false]))
			}
		}
		on, off := best[true], best[false]
		overhead := 0.0
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			overhead = (ratios[len(ratios)/2] - 1) * 100
		}
		m := ObsMeasurement{
			Workload: wl.name, Graph: spec.Name, Query: qname,
			MetricsOnMS:  float64(on.Microseconds()) / 1000,
			MetricsOffMS: float64(off.Microseconds()) / 1000,
			OverheadPct:  overhead, Reps: obsReps,
		}
		out = append(out, m)
		rep.Rows = append(rep.Rows, []string{
			m.Workload, m.Graph, m.Query, ms(on), ms(off), fmt.Sprintf("%.2f", overhead),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("median paired on/off ratio over %d reps (batches of %d); On/Off ms are per-mode minima; acceptance: governed-kernel overhead <= 3%%", obsReps, obsInner))
	return rep, out, nil
}

// WriteObsJSON serializes the measurements as indented JSON.
func WriteObsJSON(w io.Writer, ms []ObsMeasurement) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}
