package gdb

import (
	"fmt"
	"sync"
	"testing"

	"mscfpq/internal/cypher"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/oracle"
	"mscfpq/internal/store"
)

// The stress suite (ISSUE 7, satellite 1): N writers mutate a graph
// while M readers evaluate CFPQ queries against pinned versions. Every
// result must be byte-identical to the oracle's answer for the PINNED
// version — not whatever the graph looks like by the time the query
// finishes. Run under -race (make chaos) this also proves the
// lock-free pin → evaluate → unpin path is data-race clean.

// stressGrammar is a^n b^n, matching the edge labels the writers
// produce.
func stressGrammar(t testing.TB) *grammar.WCNF {
	t.Helper()
	g, err := grammar.ParseString("S -> a S b | a b")
	if err != nil {
		t.Fatal(err)
	}
	w, err := grammar.ToWCNF(g)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// stressSeed creates a small graph with a non-trivial a^n b^n answer
// set: an a-cycle feeding a b-cycle.
func stressSeed(t testing.TB, db *DB, name string) *GraphStore {
	t.Helper()
	if _, err := db.Query(name, `CREATE (a:N)-[:a]->(b:N), (b)-[:a]->(c:N), (c)-[:a]->(a), (a)-[:b]->(d:N), (d)-[:b]->(a)`); err != nil {
		t.Fatal(err)
	}
	st, err := db.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func allVertices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func sortedPairs(ps [][2]int) [][2]int {
	out := append([][2]int(nil), ps...)
	oracle.SortPairs(out)
	return out
}

func pairsFromRows(rows [][]int64) [][2]int {
	out := make([][2]int, len(rows))
	for i, r := range rows {
		out[i] = [2]int{int(r[0]), int(r[1])}
	}
	return out
}

func pairsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStressPinnedReadsUnderWrites is the linearizability-style check:
// concurrent CREATE writers (journal path) and direct store writers
// advance the version while readers pin snapshots and verify, per pin,
//
//   - versions are monotonic per reader,
//   - the snapshot is internally consistent (each update commits
//     exactly one edge, so edges == base + version — a torn read
//     breaks the equality),
//   - the Cypher answer and the cached-eval answer both equal the
//     oracle's answer for the pinned graph.
func TestStressPinnedReadsUnderWrites(t *testing.T) {
	db := New()
	db.SetPolicy(Policy{CacheMaxBytes: 1 << 20})
	w := stressGrammar(t)
	s := stressSeed(t, db, "g")
	baseEdges := s.Snapshot().Graph().NumEdges()
	baseVersion := s.Version()

	const (
		createWriters = 2
		storeWriters  = 2
		writesPer     = 16
		readers       = 4
		readsPer      = 30
	)
	matchQuery := `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`

	var wg sync.WaitGroup
	// CREATE writers go through the full journal/commit path: one
	// statement = one version = one edge (plus two fresh nodes).
	for wr := 0; wr < createWriters; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				label := "a"
				if i%2 == 1 {
					label = "b"
				}
				if _, err := db.Query("g", fmt.Sprintf(`CREATE (x:W%d)-[:%s]->(y:W%d)`, wr, label, wr)); err != nil {
					t.Errorf("create writer %d: %v", wr, err)
					return
				}
			}
		}(wr)
	}
	// Store writers commit through Update directly, growing an a/b
	// chain in a reserved vertex range so every edge is fresh (exactly
	// one new edge per version) and the a^n b^n answer keeps changing.
	for wr := 0; wr < storeWriters; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			r := 100 + 50*wr
			for i := 0; i < writesPer; i++ {
				k := i / 2
				if _, err := s.st.Update(func(tx *store.Tx) error {
					if i%2 == 0 {
						tx.Graph().AddEdge(r+k, "a", r+k+1)
					} else {
						tx.Graph().AddEdge(r+k+1, "b", r+k)
					}
					return nil
				}); err != nil {
					t.Errorf("store writer %d: %v", wr, err)
					return
				}
			}
		}(wr)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			q, err := cypher.Parse(matchQuery)
			if err != nil {
				t.Errorf("reader %d: %v", rd, err)
				return
			}
			last := baseVersion
			for i := 0; i < readsPer; i++ {
				snap := s.Snapshot()
				v := snap.Version()
				if v < last {
					t.Errorf("reader %d: version went backwards %d -> %d", rd, last, v)
					return
				}
				last = v
				g := snap.Graph()
				if got, want := g.NumEdges(), baseEdges+int(v-baseVersion); got != want {
					t.Errorf("reader %d: torn read at version %d: %d edges, want %d", rd, v, got, want)
					return
				}
				want := sortedPairs(oracle.CFPQ(g, w).StartPairsFrom(allVertices(g.NumVertices())))

				run, cancel := exec.Options{}.Start()
				res, err := s.runMatchSnap(snap, q, run)
				cancel()
				if err != nil {
					t.Errorf("reader %d: match at version %d: %v", rd, v, err)
					return
				}
				if got := sortedPairs(pairsFromRows(res.Rows)); !pairsEqual(got, want) {
					t.Errorf("reader %d: version %d: match answer diverged from pinned oracle\n got %v\nwant %v", rd, v, got, want)
					return
				}

				pairs, _, err := store.CachedEval(db.Cache(), s.StoreID(), v, g, w, nil)
				if err != nil {
					t.Errorf("reader %d: cached eval at version %d: %v", rd, v, err)
					return
				}
				if got := sortedPairs(pairs); !pairsEqual(got, want) {
					t.Errorf("reader %d: version %d: cached answer diverged from pinned oracle\n got %v\nwant %v", rd, v, got, want)
					return
				}
			}
		}(rd)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The storm is over: the final version count is exact, and a
	// cache-served query agrees with the oracle on the final graph —
	// stale entries surviving invalidation would surface here.
	wantVersion := baseVersion + uint64((createWriters+storeWriters)*writesPer)
	if got := s.Version(); got != wantVersion {
		t.Fatalf("final version = %d, want %d", got, wantVersion)
	}
	g := s.Snapshot().Graph()
	want := sortedPairs(oracle.CFPQ(g, w).StartPairsFrom(allVertices(g.NumVertices())))
	for round := 0; round < 2; round++ { // second round is a cache hit
		res, err := db.Query("g", matchQuery)
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedPairs(pairsFromRows(res.Rows)); !pairsEqual(got, want) {
			t.Fatalf("round %d: quiesced answer diverged from oracle\n got %v\nwant %v", round, got, want)
		}
	}
	if st := db.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("stress run never hit the cache: %+v", st)
	}
}

// TestStressCacheCoherenceAcrossVersions drives the full QueryContext
// result-cache path while writes advance the graph: after every write
// the next query must see the new answer (version-keyed entries cannot
// serve stale data), and repeating it must hit the cache with the
// identical answer.
func TestStressCacheCoherenceAcrossVersions(t *testing.T) {
	db := New()
	db.SetPolicy(Policy{CacheMaxBytes: 1 << 20})
	w := stressGrammar(t)
	s := stressSeed(t, db, "g")
	matchQuery := `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`

	for i := 0; i < 12; i++ {
		g := s.Snapshot().Graph()
		want := sortedPairs(oracle.CFPQ(g, w).StartPairsFrom(allVertices(g.NumVertices())))
		cold, err := db.Query("g", matchQuery)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := db.Query("g", matchQuery)
		if err != nil {
			t.Fatal(err)
		}
		if got := sortedPairs(pairsFromRows(cold.Rows)); !pairsEqual(got, want) {
			t.Fatalf("write %d: cold answer diverged\n got %v\nwant %v", i, got, want)
		}
		if got := sortedPairs(pairsFromRows(warm.Rows)); !pairsEqual(got, want) {
			t.Fatalf("write %d: warm answer diverged\n got %v\nwant %v", i, got, want)
		}
		// Extend the a/b chain through the seed cycle, changing the
		// answer set on most iterations.
		label := "a"
		if i%2 == 1 {
			label = "b"
		}
		if _, err := db.Query("g", fmt.Sprintf(`CREATE (x:C%d)-[:%s]->(y:C%d)`, i, label, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.st.Update(func(tx *store.Tx) error {
			tx.Graph().AddEdge(0, label, tx.Graph().NumVertices()-1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Cache().Stats()
	if st.Hits == 0 || st.Invalidations == 0 {
		t.Fatalf("coherence run exercised no hits or no invalidations: %+v", st)
	}
}
