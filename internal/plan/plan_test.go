package plan

import (
	"sort"
	"strings"
	"testing"

	"mscfpq/internal/cypher"
	"mscfpq/internal/graph"
)

// paperGraph is the example graph D of Figure 1 (0-based ids).
func paperGraph() *graph.Graph {
	g := graph.New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(1, "b", 2)
	g.AddEdge(1, "b", 5)
	g.AddEdge(2, "d", 4)
	g.AddEdge(3, "c", 2)
	g.AddEdge(4, "c", 3)
	g.AddEdge(4, "d", 5)
	g.AddEdge(5, "d", 4)
	g.AddVertexLabel(0, "x")
	g.AddVertexLabel(2, "x")
	g.AddVertexLabel(2, "y")
	g.AddVertexLabel(5, "y")
	return g
}

func runQuery(t *testing.T, g *graph.Graph, src string) *ResultSet {
	t.Helper()
	q, err := cypher.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	env := NewEnv(g, nil, nil)
	p, err := Build(q, env)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rs, err := p.Execute()
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return rs
}

func sortedRows(rs *ResultSet) [][]int64 {
	rows := append([][]int64(nil), rs.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
	return rows
}

func expectRows(t *testing.T, rs *ResultSet, want [][]int64) {
	t.Helper()
	got := sortedRows(rs)
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		for k := range want[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("rows = %v, want %v", got, want)
			}
		}
	}
}

func TestSimpleRelTraverse(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:a]->(u) RETURN v, u`)
	expectRows(t, rs, [][]int64{{0, 1}, {1, 2}})
}

func TestInverseRelTraverse(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)<-[:c]-(u) RETURN v, u`)
	// v <-c- u means u -c-> v: (2,3) and (3,4).
	expectRows(t, rs, [][]int64{{2, 3}, {3, 4}})
}

func TestLabelScanRestrictsSources(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v:x)-[:a]->(u) RETURN v, u`)
	// x vertices are {0,2}; only 0 has an a-edge.
	expectRows(t, rs, [][]int64{{0, 1}})
}

func TestRelAlternationAndAnyEdge(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:a|b]->(u) RETURN v, u`)
	expectRows(t, rs, [][]int64{{0, 1}, {1, 2}, {1, 5}})
	any := runQuery(t, paperGraph(), `MATCH (v)-->(u) RETURN v, u`)
	// Relation semantics are set-based: (1,2) carries labels a and b but
	// is one pair, so 9 labeled edges yield 8 distinct pairs.
	if len(any.Rows) != 8 {
		t.Fatalf("any-edge rows = %d, want 8", len(any.Rows))
	}
}

func TestNamedPathPatternCND(t *testing.T) {
	// L(S) = { c^n y d^n }: relation {(3,4), (4,5)} on the paper graph.
	rs := runQuery(t, paperGraph(), `
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)
	expectRows(t, rs, [][]int64{{3, 4}, {4, 5}})
}

func TestListing7EndToEnd(t *testing.T) {
	// The paper's running example; its walk-through reaches S-sources
	// {3,6} (1-based) where no S-path starts, so the result is empty —
	// the machinery must still execute every stage without error.
	rs := runQuery(t, paperGraph(), `
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v:x)-[:a]->()-/ :b ~S /->(to)
		RETURN v, to`)
	if len(rs.Rows) != 0 {
		t.Fatalf("expected empty result, got %v", rs.Rows)
	}
}

func TestAnBnNamedPattern(t *testing.T) {
	// Two cycles sharing vertex 0: a-cycle length 2, b-cycle length 3.
	g := graph.New(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 0)
	g.AddEdge(0, "b", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)
	rs := runQuery(t, g, `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		WHERE id(v) = 0
		RETURN v, to`)
	found := false
	for _, row := range rs.Rows {
		if row[0] == 0 && row[1] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected (0,0) in %v", rs.Rows)
	}
}

func TestQuantifiersPlus(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "a", 3)
	rs := runQuery(t, g, `MATCH (v)-/ [:a]+ /->(u) WHERE id(v) = 0 RETURN v, u`)
	expectRows(t, rs, [][]int64{{0, 1}, {0, 2}, {0, 3}})
	star := runQuery(t, g, `MATCH (v)-/ [:a]* /->(u) WHERE id(v) = 0 RETURN v, u`)
	expectRows(t, star, [][]int64{{0, 0}, {0, 1}, {0, 2}, {0, 3}})
	opt := runQuery(t, g, `MATCH (v)-/ [:a]? /->(u) WHERE id(v) = 0 RETURN v, u`)
	expectRows(t, opt, [][]int64{{0, 0}, {0, 1}})
}

func TestWhereIDInFilters(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:d]->(u) WHERE id(v) IN [2, 5] RETURN v, u`)
	expectRows(t, rs, [][]int64{{2, 4}, {5, 4}})
}

func TestWhereLabelPredicate(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:b]->(u) WHERE u:y RETURN v, u`)
	expectRows(t, rs, [][]int64{{1, 2}, {1, 5}})
}

func TestMultiPatternJoin(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:a]->(u), (u)-[:b]->(w) RETURN v, u, w`)
	expectRows(t, rs, [][]int64{{0, 1, 2}, {0, 1, 5}})
}

func TestDestinationLabelFolded(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:b]->(u:y) RETURN v, u`)
	expectRows(t, rs, [][]int64{{1, 2}, {1, 5}})
	rs = runQuery(t, paperGraph(), `MATCH (v)-[:a]->(u:y) RETURN v, u`)
	expectRows(t, rs, [][]int64{{1, 2}})
}

func TestLimit(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-->(u) RETURN v LIMIT 3`)
	if len(rs.Rows) != 3 {
		t.Fatalf("limit ignored: %d rows", len(rs.Rows))
	}
}

func TestBoundEndpointFilter(t *testing.T) {
	// Cycle pattern: the d-edges 4->5 and 5->4 close on each other.
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:d]->(u)-[:d]->(v) RETURN v, u`)
	expectRows(t, rs, [][]int64{{4, 5}, {5, 4}})
}

func TestTraverseMultipleBatches(t *testing.T) {
	// More scan records than one traverse batch (1024) exercises the
	// refill path; every vertex has exactly one a-successor.
	const n = 2600
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, "a", i+1)
	}
	rs := runQuery(t, g, `MATCH (v)-[:a]->(u) RETURN count(*)`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != n-1 {
		t.Fatalf("count = %v, want %d", rs.Rows, n-1)
	}
	// Path-pattern flavour across batches.
	rs = runQuery(t, g, `MATCH (v)-/ [:a]? /->(u) RETURN count(*)`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != int64(n+n-1) {
		t.Fatalf("opt count = %v, want %d", rs.Rows, n+n-1)
	}
}

func TestStandaloneNodeScan(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v) RETURN v`)
	if len(rs.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rs.Rows))
	}
	rs = runQuery(t, paperGraph(), `MATCH (v:y) RETURN v`)
	expectRows(t, rs, [][]int64{{2}, {5}})
}

func TestMultiLabelNode(t *testing.T) {
	// Vertex 2 carries both x and y; vertex 0 only x, vertex 5 only y.
	rs := runQuery(t, paperGraph(), `MATCH (v:x:y) RETURN v`)
	expectRows(t, rs, [][]int64{{2}})
}

func TestSharedVarAcrossPatternsMergesConstraints(t *testing.T) {
	// b appears unlabeled in the first pattern and labeled in the
	// second; the query graph merges the constraint.
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:b]->(u), (u:y)-[:d]->(w) RETURN v, u, w`)
	expectRows(t, rs, [][]int64{{1, 2, 4}, {1, 5, 4}})
}

func TestCartesianPatterns(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v:x), (u:y) RETURN v, u`)
	if len(rs.Rows) != 4 { // {0,2} x {2,5}
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestChainOrientationBySelectivity(t *testing.T) {
	// The filter sits on the destination: the planner must scan from u
	// and traverse the relation backwards.
	q := mustParseQuery(t, `MATCH (v)-[:a]->(u) WHERE id(u) = 2 RETURN v, u`)
	env := NewEnv(paperGraph(), nil, nil)
	p, err := Build(q, env)
	if err != nil {
		t.Fatal(err)
	}
	explain := p.Explain()
	// u has slot 1; the scan must bind it, and the traverse must invert.
	if !strings.Contains(explain, "AllNodeScan(slot=1)") {
		t.Fatalf("scan not reoriented:\n%s", explain)
	}
	if !strings.Contains(explain, "Transpose(E^a)") {
		t.Fatalf("traverse not inverted:\n%s", explain)
	}
	rs, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, &ResultSet{Rows: rs.Rows}, [][]int64{{1, 2}})
}

func TestChainOrientationKeepsForwardWhenSourceSelective(t *testing.T) {
	q := mustParseQuery(t, `MATCH (v)-[:a]->(u) WHERE id(v) = 0 RETURN v, u`)
	p, err := Build(q, NewEnv(paperGraph(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "AllNodeScan(slot=0)") {
		t.Fatalf("forward chain reoriented:\n%s", p.Explain())
	}
	rs, err := p.Execute()
	if err != nil {
		t.Fatal(err)
	}
	expectRows(t, &ResultSet{Rows: rs.Rows}, [][]int64{{0, 1}})
}

func TestChainOrientationPathPattern(t *testing.T) {
	// Same-relation sanity for a path-pattern chain with a selective
	// destination.
	rs := runQuery(t, paperGraph(), `
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v)-/ ~S /->(to)
		WHERE id(to) = 4
		RETURN v, to`)
	expectRows(t, rs, [][]int64{{3, 4}})
}

func TestExplainShowsOperationsAndContext(t *testing.T) {
	q, err := cypher.Parse(`
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v:x)-[:a]->()-/ :b ~S /->(to)
		RETURN v, to`)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(paperGraph(), nil, nil)
	p, err := Build(q, env)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	for _, want := range []string{"Project", "CFPQTraverse", "CondTraverse", "LabelScan", "Ref(S)", "Path pattern context"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explain missing %q:\n%s", want, out)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		`MATCH (v)-[:a]->(u) RETURN nosuch`,
		`MATCH (v)-[:a]->(u) WHERE id(zz) = 1 RETURN v`,
		`MATCH (v)-/ ~Undeclared /->(u) RETURN v`,
		`CREATE (a:X)`, // planner only handles MATCH
	}
	for _, src := range cases {
		q, err := cypher.Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Build(q, NewEnv(paperGraph(), nil, nil)); err == nil {
			t.Errorf("Build(%q): expected error", src)
		}
	}
}

func TestPropertyPredicateWithoutStoreFails(t *testing.T) {
	q, err := cypher.Parse(`MATCH (v)-[:a]->(u) WHERE v.name = 'x' RETURN v`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(q, NewEnv(paperGraph(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(); err == nil {
		t.Fatal("expected property-store error")
	}
}

func TestTranslateConnectionShapes(t *testing.T) {
	q, err := cypher.Parse(`MATCH (v)-/ <:a [:b | :c] (:x) ~S /->(u) RETURN v`)
	if err != nil {
		t.Fatal(err)
	}
	conn := q.Match.Patterns[0].Connections[0]
	expr, isPath, err := TranslateConnection(conn)
	if err != nil || !isPath {
		t.Fatalf("translate: %v isPath=%v", err, isPath)
	}
	s := expr.String()
	// Inverse relationship steps resolve to the "_r" label (the graph
	// layer serves its transpose).
	for _, want := range []string{"E^a_r", "E^b", "E^c", "V^x", "Ref(S)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("expr %q missing %q", s, want)
		}
	}
}

func TestPatternsToGrammarQuantifiers(t *testing.T) {
	q, err := cypher.Parse(`
		PATH PATTERN P = ()-/ [:a]+ [:b]? /->()
		MATCH (v)-/ ~P /->(u)
		RETURN v`)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := PatternsToGrammar(q.PathPatterns)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Start != "P" {
		t.Fatalf("start = %q", cf.Start)
	}
	// The grammar must accept a+, a+b and nothing else short.
	wcnfize := func() interface{ Accepts([]string) bool } {
		w, err := wcnfFor(cf)
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	w := wcnfize()
	for _, ok := range [][]string{{"a"}, {"a", "a"}, {"a", "b"}, {"a", "a", "b"}} {
		if !w.Accepts(ok) {
			t.Fatalf("grammar rejects %v", ok)
		}
	}
	for _, bad := range [][]string{{}, {"b"}, {"a", "b", "b"}, {"b", "a"}} {
		if w.Accepts(bad) {
			t.Fatalf("grammar accepts %v", bad)
		}
	}
}

func TestTransposedRefStillResolves(t *testing.T) {
	// A reference under a transpose escapes Algorithm 8's source rule;
	// the traverse must fall back to full-source resolution.
	rs := runQuery(t, paperGraph(), `
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v)<-/ ~S /-(to)
		RETURN v, to`)
	// Reversed relation of {(3,4),(4,5)}.
	expectRows(t, rs, [][]int64{{4, 3}, {5, 4}})
}
