//go:build !nofault

package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestInjectIdleIsTransparent(t *testing.T) {
	Reset()
	if err := Inject("idle.point"); err != nil {
		t.Fatalf("idle Inject = %v", err)
	}
	if Active() {
		t.Fatal("Active with nothing armed")
	}
}

func TestInjectError(t *testing.T) {
	Reset()
	boom := errors.New("boom")
	disable := Enable("t.err", Spec{Err: boom})
	if err := Inject("t.err"); !errors.Is(err, boom) {
		t.Fatalf("Inject = %v, want boom", err)
	}
	if Hits("t.err") != 1 {
		t.Fatalf("hits = %d", Hits("t.err"))
	}
	disable()
	if err := Inject("t.err"); err != nil {
		t.Fatalf("Inject after disable = %v", err)
	}
}

func TestInjectDefaultError(t *testing.T) {
	Reset()
	defer Enable("t.def", Spec{})()
	if err := Inject("t.def"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
}

func TestInjectPanic(t *testing.T) {
	Reset()
	defer Enable("t.panic", Spec{Panic: "kapow"})()
	defer func() {
		if r := recover(); r != "kapow" {
			t.Fatalf("recover = %v", r)
		}
	}()
	// The call panics; there is no error to see.
	_ = Inject("t.panic")
	t.Fatal("Inject did not panic")
}

func TestInjectDelayOnly(t *testing.T) {
	Reset()
	defer Enable("t.delay", Spec{Delay: 20 * time.Millisecond})()
	start := time.Now()
	if err := Inject("t.delay"); err != nil {
		t.Fatalf("latency probe returned %v", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("Inject returned after %v, want >= 20ms sleep", elapsed)
	}
}

func TestSkipFirstAndTimes(t *testing.T) {
	Reset()
	defer Enable("t.window", Spec{SkipFirst: 2, Times: 1})()
	var failures int
	for i := 0; i < 5; i++ {
		if Inject("t.window") != nil {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("failures = %d, want exactly 1 (skip 2, act once)", failures)
	}
	if Hits("t.window") != 5 {
		t.Fatalf("hits = %d, want 5", Hits("t.window"))
	}
}

func TestTornWriter(t *testing.T) {
	Reset()
	defer Enable("t.torn", Spec{TruncateAfter: 5})()
	var buf bytes.Buffer
	w := Writer("t.torn", &buf)
	n, err := w.Write([]byte("abcdefgh"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if buf.String() != "abcde" {
		t.Fatalf("delivered %q, want %q", buf.String(), "abcde")
	}
	if n, err := w.Write([]byte("x")); n != 0 || err == nil {
		t.Fatalf("write past tear = (%d, %v), want (0, err)", n, err)
	}
}

func TestWriterTransparentWithoutTruncate(t *testing.T) {
	Reset()
	var buf bytes.Buffer
	if w := Writer("t.none", &buf); w != &buf {
		t.Fatal("idle Writer wrapped")
	}
	defer Enable("t.errOnly", Spec{Err: errors.New("x")})()
	if w := Writer("t.errOnly", &buf); w != &buf {
		t.Fatal("error-only spec wrapped the writer")
	}
}

func TestDeclareAndNames(t *testing.T) {
	Reset()
	Declare("a.one", "a.two")
	Declare("a.one") // idempotent
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	if !seen["a.one"] || !seen["a.two"] {
		t.Fatalf("Names() = %v, missing declared points", names)
	}
}

func TestResetDisarmsEverything(t *testing.T) {
	Reset()
	Enable("t.r1", Spec{})
	Enable("t.r2", Spec{})
	if !Active() {
		t.Fatal("not active after Enable")
	}
	Reset()
	if Active() {
		t.Fatal("still active after Reset")
	}
	if err := Inject("t.r1"); err != nil {
		t.Fatalf("Inject after Reset = %v", err)
	}
}
