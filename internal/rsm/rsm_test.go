package rsm

import (
	"math/rand"
	"testing"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
)

func TestFromGrammarShapes(t *testing.T) {
	g := grammar.AnBn("a", "b")
	r, err := FromGrammar(g)
	if err != nil {
		t.Fatal(err)
	}
	if r.Start != "S" {
		t.Fatalf("start = %q", r.Start)
	}
	if _, ok := r.BoxStart["S"]; !ok {
		t.Fatal("no box for S")
	}
	if len(r.BoxFinals["S"]) == 0 {
		t.Fatal("S box has no final states")
	}
	if !r.Nonterms["S"] || r.Nonterms["a"] {
		t.Fatal("nonterminal classification wrong")
	}
	// Symbols: a, b, S.
	syms := r.Symbols()
	if len(syms) != 3 {
		t.Fatalf("symbols = %v", syms)
	}
}

func TestFromGrammarEpsilonBox(t *testing.T) {
	r, err := FromGrammar(grammar.Dyck1("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	// S -> eps makes the box start final.
	start := r.BoxStart["S"]
	found := false
	for _, f := range r.BoxFinals["S"] {
		if f == start {
			found = true
		}
	}
	if !found {
		t.Fatal("eps production did not mark box start final")
	}
}

func TestFromGrammarInvalid(t *testing.T) {
	bad := &grammar.Grammar{Start: "X", Prods: []grammar.Production{{LHS: "S", RHS: []grammar.Symbol{grammar.T("a")}}}}
	if _, err := FromGrammar(bad); err == nil {
		t.Fatal("expected error for invalid grammar")
	}
}

func TestTensorMatchesMatrixOnExample(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)
	cf := grammar.AnBn("a", "b")
	r, err := FromGrammar(cf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := cfpq.AllPairs(g, grammar.MustWCNF(cf))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ap.Start()) {
		t.Fatalf("tensor:\n%v\nmatrix:\n%v", got, ap.Start())
	}
}

// Property: the Kronecker algorithm agrees with Algorithm 1 on random
// graphs for several grammars, including eps- and vertex-label cases.
func TestTensorEqualsAllPairsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	grammars := map[string]*grammar.Grammar{
		"anbn": grammar.AnBn("a", "b"),
		"dyck": grammar.Dyck1("a", "b"),
		"geoish": grammar.MustNew("S", []grammar.Production{
			{LHS: "S", RHS: []grammar.Symbol{grammar.T("a"), grammar.N("S"), grammar.T("a_r")}},
			{LHS: "S", RHS: []grammar.Symbol{grammar.T("a"), grammar.T("a_r")}},
		}),
	}
	for name, cf := range grammars {
		cf := cf
		t.Run(name, func(t *testing.T) {
			r, err := FromGrammar(cf)
			if err != nil {
				t.Fatal(err)
			}
			w := grammar.MustWCNF(cf)
			for trial := 0; trial < 6; trial++ {
				n := 2 + rng.Intn(8)
				g := graph.New(n)
				for e := 0; e < 2+rng.Intn(2*n); e++ {
					label := "a"
					if rng.Intn(2) == 0 {
						label = "b"
					}
					g.AddEdge(rng.Intn(n), label, rng.Intn(n))
				}
				got, err := r.Eval(g)
				if err != nil {
					t.Fatal(err)
				}
				ap, err := cfpq.AllPairs(g, w)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(ap.Start()) {
					t.Fatalf("trial %d (n=%d):\ntensor:\n%v\nmatrix:\n%v", trial, n, got, ap.Start())
				}
			}
		})
	}
}

func TestTensorVertexLabels(t *testing.T) {
	// Paper's running example: L = { c^n y d^n } with y a vertex label.
	g := graph.New(6)
	g.AddEdge(3, "c", 2)
	g.AddEdge(4, "c", 3)
	g.AddEdge(2, "d", 4)
	g.AddEdge(4, "d", 5)
	g.AddEdge(5, "d", 4)
	g.AddVertexLabel(2, "y")
	g.AddVertexLabel(5, "y")
	cf := grammar.MustNew("S", []grammar.Production{
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("c"), grammar.N("S"), grammar.T("d")}},
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("c"), grammar.T("y"), grammar.T("d")}},
	})
	r, err := FromGrammar(cf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Eval(g)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := cfpq.AllPairs(g, grammar.MustWCNF(cf))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ap.Start()) {
		t.Fatalf("tensor:\n%v\nmatrix:\n%v", got, ap.Start())
	}
}

func TestTensorNilGraph(t *testing.T) {
	r, err := FromGrammar(grammar.AnBn("a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.TensorAllPairs(nil); err == nil {
		t.Fatal("expected error for nil graph")
	}
}
