package cypher

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return q
}

func TestParseListing4(t *testing.T) {
	// Paper listing 4: simple unnamed path pattern with alternation.
	q := mustParse(t, `MATCH (v)-/ [:a (:x) :b] | [:c (:y) :d] /->(to) RETURN v, to`)
	if q.Match == nil || len(q.Match.Patterns) != 1 {
		t.Fatal("expected one match pattern")
	}
	pat := q.Match.Patterns[0]
	if len(pat.Nodes) != 2 || pat.Nodes[0].Var != "v" || pat.Nodes[1].Var != "to" {
		t.Fatalf("nodes = %+v", pat.Nodes)
	}
	pa, ok := pat.Connections[0].(PathApply)
	if !ok {
		t.Fatalf("connection = %T", pat.Connections[0])
	}
	alt, ok := pa.Expr.(PEAlt)
	if !ok || len(alt.Alts) != 2 {
		t.Fatalf("expr = %v", pa.Expr)
	}
	seq, ok := alt.Alts[0].(PESeq)
	if !ok || len(seq.Parts) != 3 {
		t.Fatalf("first alt = %v", alt.Alts[0])
	}
	if rel, ok := seq.Parts[0].(PERel); !ok || rel.Type != "a" {
		t.Fatalf("first step = %v", seq.Parts[0])
	}
	if node, ok := seq.Parts[1].(PENode); !ok || len(node.Labels) != 1 || node.Labels[0] != "x" {
		t.Fatalf("middle step = %v", seq.Parts[1])
	}
	if len(q.Return.Items) != 2 {
		t.Fatalf("return = %+v", q.Return)
	}
}

func TestParseListing5(t *testing.T) {
	// Paper listing 5: named path pattern (a^n b^n).
	q := mustParse(t, `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)
	if len(q.PathPatterns) != 1 || q.PathPatterns[0].Name != "S" {
		t.Fatalf("path patterns = %+v", q.PathPatterns)
	}
	alt, ok := q.PathPatterns[0].Expr.(PEAlt)
	if !ok || len(alt.Alts) != 2 {
		t.Fatalf("expr = %v", q.PathPatterns[0].Expr)
	}
	seq := alt.Alts[0].(PESeq)
	if ref, ok := seq.Parts[1].(PERef); !ok || ref.Name != "S" {
		t.Fatalf("reference = %v", seq.Parts[1])
	}
}

func TestParseListing7(t *testing.T) {
	// Paper listing 7: mixed relationship, node and path patterns.
	q := mustParse(t, `
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v:x)-[:a]->()-/ :b ~S /->(to)
		RETURN v, to`)
	pat := q.Match.Patterns[0]
	if len(pat.Nodes) != 3 || len(pat.Connections) != 2 {
		t.Fatalf("pattern shape: %d nodes, %d connections", len(pat.Nodes), len(pat.Connections))
	}
	if pat.Nodes[0].Var != "v" || len(pat.Nodes[0].Labels) != 1 || pat.Nodes[0].Labels[0] != "x" {
		t.Fatalf("first node = %+v", pat.Nodes[0])
	}
	rel, ok := pat.Connections[0].(RelPattern)
	if !ok || len(rel.Types) != 1 || rel.Types[0] != "a" || rel.Inverse {
		t.Fatalf("rel = %+v", pat.Connections[0])
	}
	pa, ok := pat.Connections[1].(PathApply)
	if !ok {
		t.Fatalf("second connection = %T", pat.Connections[1])
	}
	seq, ok := pa.Expr.(PESeq)
	if !ok || len(seq.Parts) != 2 {
		t.Fatalf("path expr = %v", pa.Expr)
	}
}

func TestParseCreate(t *testing.T) {
	q := mustParse(t, `CREATE (a:Person {name: 'Ann', age: 41})-[:knows]->(b:Person), (b)-[:knows]->(a)`)
	if q.Create == nil || len(q.Create.Patterns) != 2 {
		t.Fatal("create patterns wrong")
	}
	n := q.Create.Patterns[0].Nodes[0]
	if n.Var != "a" || n.Labels[0] != "Person" || len(n.Props) != 2 {
		t.Fatalf("node = %+v", n)
	}
	if n.Props[0].Key != "name" || n.Props[0].Val.Str != "Ann" {
		t.Fatalf("prop = %+v", n.Props[0])
	}
	if n.Props[1].Key != "age" || !n.Props[1].Val.IsInt || n.Props[1].Val.Int != 41 {
		t.Fatalf("prop = %+v", n.Props[1])
	}
}

func TestParseInverseRelAndAnyRel(t *testing.T) {
	q := mustParse(t, `MATCH (a)<-[:likes]-(b)-->(c) RETURN a`)
	pat := q.Match.Patterns[0]
	rel := pat.Connections[0].(RelPattern)
	if !rel.Inverse || rel.Types[0] != "likes" {
		t.Fatalf("rel = %+v", rel)
	}
	anyRel := pat.Connections[1].(RelPattern)
	if anyRel.Inverse || len(anyRel.Types) != 0 {
		t.Fatalf("any rel = %+v", anyRel)
	}
}

func TestParseRelAlternation(t *testing.T) {
	q := mustParse(t, `MATCH (a)-[r:x|y|:z]->(b) RETURN r`)
	rel := q.Match.Patterns[0].Connections[0].(RelPattern)
	if rel.Var != "r" || len(rel.Types) != 3 {
		t.Fatalf("rel = %+v", rel)
	}
}

func TestParseWhere(t *testing.T) {
	q := mustParse(t, `MATCH (v)-[:a]->(u) WHERE id(v) IN [1, 2, 3] AND u.name = 'x' AND v:Label AND id(u) = 7 RETURN v`)
	if q.Where == nil {
		t.Fatal("missing where")
	}
	s := q.Where.exprString()
	for _, want := range []string{"id(v) IN [1, 2, 3]", "u.name = 'x'", "v:Label", "id(u) = 7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("where %q missing %q", s, want)
		}
	}
}

func TestParseReturnAliasAndLimit(t *testing.T) {
	q := mustParse(t, `MATCH (v) RETURN v AS vertex LIMIT 10`)
	if q.Return.Items[0].Alias != "vertex" || q.Return.Limit != 10 {
		t.Fatalf("return = %+v", q.Return)
	}
}

func TestParseCountAndOrderBy(t *testing.T) {
	q := mustParse(t, `MATCH (v)-[:a]->(u) RETURN v, count(u) AS deg, count(*) ORDER BY deg DESC, v ASC SKIP 2 LIMIT 5`)
	items := q.Return.Items
	if len(items) != 3 {
		t.Fatalf("items = %+v", items)
	}
	if items[0].Count || items[0].Var != "v" {
		t.Fatalf("item 0 = %+v", items[0])
	}
	if !items[1].Count || items[1].Var != "u" || items[1].Alias != "deg" {
		t.Fatalf("item 1 = %+v", items[1])
	}
	if !items[2].Count || items[2].Var != "*" {
		t.Fatalf("item 2 = %+v", items[2])
	}
	ob := q.Return.OrderBy
	if len(ob) != 2 || ob[0].Name != "deg" || !ob[0].Desc || ob[1].Name != "v" || ob[1].Desc {
		t.Fatalf("order by = %+v", ob)
	}
	if q.Return.Skip != 2 || q.Return.Limit != 5 {
		t.Fatalf("skip/limit = %d/%d", q.Return.Skip, q.Return.Limit)
	}
}

func TestParseCountVarNamedCount(t *testing.T) {
	// "count" not followed by "(" is an ordinary variable.
	q := mustParse(t, `MATCH (count)-[:a]->(u) RETURN count`)
	if q.Return.Items[0].Count || q.Return.Items[0].Var != "count" {
		t.Fatalf("item = %+v", q.Return.Items[0])
	}
}

func TestParseReturnErrors(t *testing.T) {
	for _, src := range []string{
		`MATCH (v) RETURN count(v`,    // unclosed
		`MATCH (v) RETURN v ORDER v`,  // missing BY
		`MATCH (v) RETURN v SKIP x`,   // bad skip
		`MATCH (v) RETURN v ORDER BY`, // missing key
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestParseQuantifiersAndInverseSteps(t *testing.T) {
	q := mustParse(t, `MATCH (v)-/ [:a]* <:b [:c | :d]+ [:e]? /->(u) RETURN v`)
	pa := q.Match.Patterns[0].Connections[0].(PathApply)
	seq := pa.Expr.(PESeq)
	if _, ok := seq.Parts[0].(PEStar); !ok {
		t.Fatalf("part 0 = %T", seq.Parts[0])
	}
	if rel, ok := seq.Parts[1].(PERel); !ok || !rel.Inverse || rel.Type != "b" {
		t.Fatalf("part 1 = %v", seq.Parts[1])
	}
	if _, ok := seq.Parts[2].(PEPlus); !ok {
		t.Fatalf("part 2 = %T", seq.Parts[2])
	}
	if _, ok := seq.Parts[3].(PEOpt); !ok {
		t.Fatalf("part 3 = %T", seq.Parts[3])
	}
}

func TestParseInversePathApply(t *testing.T) {
	q := mustParse(t, `MATCH (v)<-/ :a :b /-(u) RETURN v`)
	pa := q.Match.Patterns[0].Connections[0].(PathApply)
	if !pa.Inverse {
		t.Fatal("expected inverse path apply")
	}
}

func TestNamedPatternEndLabelsFolded(t *testing.T) {
	q := mustParse(t, `
		PATH PATTERN P = (:x)-/ :a /->(:y)
		MATCH (v)-/ ~P /->(u)
		RETURN v`)
	seq, ok := q.PathPatterns[0].Expr.(PESeq)
	if !ok || len(seq.Parts) != 3 {
		t.Fatalf("expr = %v", q.PathPatterns[0].Expr)
	}
	if n, ok := seq.Parts[0].(PENode); !ok || n.Labels[0] != "x" {
		t.Fatalf("lead = %v", seq.Parts[0])
	}
	if n, ok := seq.Parts[2].(PENode); !ok || n.Labels[0] != "y" {
		t.Fatalf("trail = %v", seq.Parts[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`MATCH (v RETURN v`,
		`MATCH (v)-[:a]->(u)`,                  // missing RETURN
		`MATCH (v)-/ /->(u) RETURN v`,          // empty path expr
		`MATCH (v)-/ :a (w:x) /->(u) RETURN v`, // var in node check
		`RETURN v`,                             // no MATCH
		`MATCH (v) WHERE id(v) = 'x' RETURN v`, // id compares to string
		`MATCH (v) RETURN v LIMIT x`,           // bad limit
		`MATCH (v) RETURN v extra`,             // trailing input
		`PATH PATTERN = ()-/ :a /->() MATCH (v) RETURN v`, // missing name
		`MATCH (v)<-/ :a /->(u) RETURN v`,                 // mismatched arrows
		`CREATE (a {name: })`,                             // bad literal
		`MATCH (v) WHERE id(v) IN [1; 2] RETURN v`,        // bad list (lexer error)
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestLexerStringsAndComments(t *testing.T) {
	q := mustParse(t, "MATCH (v {name: 'O\\'Hara'}) // trailing comment\nRETURN v")
	if q.Match.Patterns[0].Nodes[0].Props[0].Val.Str != "O'Hara" {
		t.Fatalf("escaped string wrong: %+v", q.Match.Patterns[0].Nodes[0].Props)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	mustParse(t, `match (v) return v`)
	mustParse(t, `Match (v) Where id(v) = 1 Return v`)
	mustParse(t, `path pattern P = ()-/ :a /->() match (v)-/ ~P /->(u) return v, u`)
}

func TestConnStringRendering(t *testing.T) {
	q := mustParse(t, `MATCH (v)-[:a]->(u)-/ :b ~S | (:x) /->(w) RETURN v`)
	conns := q.Match.Patterns[0].Connections
	if got := conns[0].connString(); got != "-[:a]->" {
		t.Fatalf("rel string = %q", got)
	}
	if got := conns[1].connString(); !strings.Contains(got, "~S") {
		t.Fatalf("path string = %q", got)
	}
}
