// Package grammar provides context-free grammars, the textual query
// format, and the normalization to weak Chomsky normal form (WCNF) that
// the matrix-based CFPQ algorithms operate on (paper Definitions
// 2.10-2.13).
//
// A grammar is written as productions over whitespace-separated symbols:
//
//	S -> subClassOf_r S subClassOf | subClassOf_r subClassOf
//	S -> eps
//
// Symbols that occur on the left of "->" are nonterminals; every other
// symbol is a terminal (an edge or vertex label of the queried graph).
// The keyword "eps" denotes the empty string. "#" starts a line comment.
// By the paper's convention a terminal "x_r" matches the inverse of the
// relation x (an edge traversed backwards).
package grammar

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is one entry of a production's right-hand side.
type Symbol struct {
	Name string
	Term bool // true: terminal (graph label); false: nonterminal
}

// T returns a terminal symbol.
func T(name string) Symbol { return Symbol{Name: name, Term: true} }

// N returns a nonterminal symbol.
func N(name string) Symbol { return Symbol{Name: name, Term: false} }

// Production is a context-free production LHS -> RHS. An empty RHS
// denotes LHS -> eps.
type Production struct {
	LHS string
	RHS []Symbol
}

func (p Production) String() string {
	if len(p.RHS) == 0 {
		return p.LHS + " -> eps"
	}
	parts := make([]string, len(p.RHS))
	for i, s := range p.RHS {
		parts[i] = s.Name
	}
	return p.LHS + " -> " + strings.Join(parts, " ")
}

// Grammar is a context-free grammar G = (N, Σ, P, S). Nonterminals are
// exactly the names that appear as a LHS.
type Grammar struct {
	Start string
	Prods []Production
}

// New returns a grammar with the given start nonterminal and productions
// and validates it.
func New(start string, prods []Production) (*Grammar, error) {
	g := &Grammar{Start: start, Prods: prods}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustNew is New, panicking on invalid input. For package-level query
// constructors and tests.
func MustNew(start string, prods []Production) *Grammar {
	g, err := New(start, prods)
	if err != nil {
		panic(err)
	}
	return g
}

// Nonterminals returns the sorted set of nonterminal names.
func (g *Grammar) Nonterminals() []string {
	set := map[string]bool{}
	for _, p := range g.Prods {
		set[p.LHS] = true
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Terminals returns the sorted set of terminal names.
func (g *Grammar) Terminals() []string {
	nts := map[string]bool{}
	for _, p := range g.Prods {
		nts[p.LHS] = true
	}
	set := map[string]bool{}
	for _, p := range g.Prods {
		for _, s := range p.RHS {
			if s.Term && !nts[s.Name] {
				set[s.Name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural well-formedness: a start symbol that is a
// nonterminal, no empty names, and symbol kinds consistent with LHS use.
func (g *Grammar) Validate() error {
	if g.Start == "" {
		return fmt.Errorf("grammar: empty start symbol")
	}
	if len(g.Prods) == 0 {
		return fmt.Errorf("grammar: no productions")
	}
	nts := map[string]bool{}
	for _, p := range g.Prods {
		if p.LHS == "" {
			return fmt.Errorf("grammar: production with empty LHS")
		}
		nts[p.LHS] = true
	}
	if !nts[g.Start] {
		return fmt.Errorf("grammar: start symbol %q has no productions", g.Start)
	}
	for _, p := range g.Prods {
		for _, s := range p.RHS {
			if s.Name == "" {
				return fmt.Errorf("grammar: empty symbol in %s", p)
			}
			if s.Term && nts[s.Name] {
				return fmt.Errorf("grammar: symbol %q marked terminal but has productions", s.Name)
			}
			if !s.Term && !nts[s.Name] {
				return fmt.Errorf("grammar: nonterminal %q has no productions (in %s)", s.Name, p)
			}
		}
	}
	return nil
}

// String renders the grammar in the textual format accepted by Parse,
// grouping alternatives of the same LHS.
func (g *Grammar) String() string {
	order := []string{}
	alts := map[string][]string{}
	for _, p := range g.Prods {
		if _, seen := alts[p.LHS]; !seen {
			order = append(order, p.LHS)
		}
		rhs := "eps"
		if len(p.RHS) > 0 {
			parts := make([]string, len(p.RHS))
			for i, s := range p.RHS {
				parts[i] = s.Name
			}
			rhs = strings.Join(parts, " ")
		}
		alts[p.LHS] = append(alts[p.LHS], rhs)
	}
	var b strings.Builder
	for _, lhs := range order {
		fmt.Fprintf(&b, "%s -> %s\n", lhs, strings.Join(alts[lhs], " | "))
	}
	return b.String()
}

// InverseLabel returns the label naming the inverse relation of l,
// following the paper's x̄ convention: "x" <-> "x_r".
func InverseLabel(l string) string {
	if base, ok := strings.CutSuffix(l, "_r"); ok {
		return base
	}
	return l + "_r"
}

// IsInverseLabel reports whether l names an inverse relation.
func IsInverseLabel(l string) bool { return strings.HasSuffix(l, "_r") }
