package errdrop_test

import (
	"testing"

	"mscfpq/internal/analysis/analysistest"
	"mscfpq/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, errdrop.Analyzer, "errpos", "errneg",
		"obspos", "obsneg",
		"internal/gdb/durpos", "internal/gdb/durneg")
}
