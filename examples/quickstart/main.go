// Quickstart: the smallest end-to-end multiple-source CFPQ program.
//
// It builds the classic two-cycle graph (a cycle of a-edges and a cycle
// of b-edges sharing vertex 0), asks for paths spelling a^n b^n from a
// single start vertex, and extracts a witness path for one result.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"mscfpq"
)

func main() {
	// A cycle of two a-edges and a cycle of three b-edges sharing
	// vertex 0: a^n b^n paths from 0 return to 0 whenever 2|n and 3|n.
	g := mscfpq.NewGraph(4)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 0)
	g.AddEdge(0, "b", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)

	gr, err := mscfpq.ParseGrammar("S -> a S b | a b")
	if err != nil {
		log.Fatal(err)
	}
	w, err := mscfpq.ToWCNF(gr)
	if err != nil {
		log.Fatal(err)
	}

	// Multiple-source query: only paths starting at vertex 0. EvalCFPQ
	// picks the multiple-source algorithm automatically because a
	// source set is given.
	src := mscfpq.NewVertexSet(g.NumVertices(), 0)
	res, err := mscfpq.EvalCFPQ(g, w, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairs reachable from vertex 0 via a^n b^n:")
	for _, p := range res.Pairs() {
		fmt.Printf("  %d -> %d\n", p[0], p[1])
	}

	// Single-path semantics: reconstruct one witness.
	spRes, err := mscfpq.EvalCFPQ(g, w, nil, mscfpq.WithAlgorithm(mscfpq.AlgSinglePath))
	if err != nil {
		log.Fatal(err)
	}
	sp := spRes.(mscfpq.PathCFPQResult)
	steps, err := sp.Path(0, 0)
	if err != nil {
		log.Fatal(err)
	}
	words := make([]string, len(steps))
	for i, s := range steps {
		words[i] = fmt.Sprintf("%d-%s->%d", s.Src, s.Label, s.Dst)
	}
	fmt.Printf("witness for (0,0): %s\n", strings.Join(words, " "))
}
