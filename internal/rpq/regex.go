// Package rpq implements regular path querying: parsing of path regular
// expressions, Thompson NFA construction, a matrix-based multiple-source
// evaluator, and a reduction of regexes to context-free grammars.
//
// The paper's conclusion demonstrates that regular queries are a partial
// case of CFPQ; this package provides both the direct automaton
// evaluation and the regex -> grammar reduction so the two can be
// compared (experiment E11).
//
// Regex syntax over graph labels:
//
//	subClassOf type_r            concatenation (juxtaposition)
//	a | b                        alternation
//	a* a+ a?                     closure, positive closure, option
//	(a b)* c                     grouping
//
// Identifiers consist of letters, digits and underscores; the "_r"
// suffix denotes inverse traversal, as everywhere in this module.
package rpq

import (
	"fmt"
	"strings"
	"unicode"
)

// Node is a regular expression AST node.
type Node interface{ String() string }

// Label matches one edge (or vertex) label.
type Label struct{ Name string }

// Concat matches Left followed by Right.
type Concat struct{ Left, Right Node }

// Alt matches Left or Right.
type Alt struct{ Left, Right Node }

// Star matches zero or more repetitions.
type Star struct{ Sub Node }

// Plus matches one or more repetitions.
type Plus struct{ Sub Node }

// Opt matches zero or one occurrence.
type Opt struct{ Sub Node }

func (n Label) String() string  { return n.Name }
func (n Concat) String() string { return n.Left.String() + " " + n.Right.String() }
func (n Alt) String() string    { return "(" + n.Left.String() + " | " + n.Right.String() + ")" }
func (n Star) String() string   { return "(" + n.Sub.String() + ")*" }
func (n Plus) String() string   { return "(" + n.Sub.String() + ")+" }
func (n Opt) String() string    { return "(" + n.Sub.String() + ")?" }

type parser struct {
	toks []string
	pos  int
}

// ParseRegex parses a path regular expression.
func ParseRegex(src string) (Node, error) {
	toks, err := lexRegex(src)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("rpq: empty regex")
	}
	p := &parser{toks: toks}
	node, err := p.alt()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("rpq: unexpected token %q", p.toks[p.pos])
	}
	return node, nil
}

func lexRegex(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := rune(src[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case strings.ContainsRune("()|*+?", c):
			toks = append(toks, string(c))
			i++
		case c == '_' || unicode.IsLetter(c) || unicode.IsDigit(c):
			j := i
			for j < len(src) {
				r := rune(src[j])
				if r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) {
					j++
				} else {
					break
				}
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("rpq: invalid character %q", c)
		}
	}
	return toks, nil
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) alt() (Node, error) {
	left, err := p.concat()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.pos++
		right, err := p.concat()
		if err != nil {
			return nil, err
		}
		left = Alt{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) concat() (Node, error) {
	left, err := p.postfix()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t == "" || t == ")" || t == "|" {
			return left, nil
		}
		right, err := p.postfix()
		if err != nil {
			return nil, err
		}
		left = Concat{Left: left, Right: right}
	}
}

func (p *parser) postfix() (Node, error) {
	node, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case "*":
			p.pos++
			node = Star{Sub: node}
		case "+":
			p.pos++
			node = Plus{Sub: node}
		case "?":
			p.pos++
			node = Opt{Sub: node}
		default:
			return node, nil
		}
	}
}

func (p *parser) atom() (Node, error) {
	t := p.peek()
	switch t {
	case "":
		return nil, fmt.Errorf("rpq: unexpected end of regex")
	case "(":
		p.pos++
		node, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ")" {
			return nil, fmt.Errorf("rpq: missing closing parenthesis")
		}
		p.pos++
		return node, nil
	case ")", "|", "*", "+", "?":
		return nil, fmt.Errorf("rpq: unexpected token %q", t)
	default:
		p.pos++
		return Label{Name: t}, nil
	}
}
