// Package use carries exactly one errdrop finding and one stale
// suppression, so the driver tests can pin exit codes, -json shape,
// and -unused-suppressions reporting.
package use

import "lintfixture/internal/graph"

// Run drops one error (the finding) and carries a stale ignore.
func Run() int {
	_ = graph.Load("x") // the errdrop finding

	//lint:ignore errdrop nothing is dropped on this line; the ignore is stale
	n := len("y")
	return n
}
