package rpq

import (
	"fmt"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/rsm"
)

// Eval is the single entry point over the library's four RPQ engines:
// it compiles the regular expression and answers the multiple-source
// query with pair semantics through the engine selected by
// exec.WithEngine. All engines agree on the answer; they differ in how
// they compute it:
//
//   - exec.EngineNFA: the Thompson NFA product (one reachability matrix
//     per NFA state, epsilon fixpoint interleaved);
//   - exec.EngineDFA (the EngineAuto default): the minimized-DFA
//     product, the fastest evaluator here;
//   - exec.EngineCFPQ: reduction to a right-linear grammar evaluated by
//     the multiple-source CFPQ algorithm (Algorithm 2), demonstrating
//     that regular queries are a partial case of CFPQ;
//   - exec.EngineTensor: the Kronecker-product RSM engine, the unified
//     RPQ/CFPQ evaluator of the paper's conclusion.
//
// Context, timeout, budget, and kernel options apply to every engine.
func Eval(g *graph.Graph, query string, src *matrix.Vector, opts ...exec.Option) (*matrix.Bool, error) {
	if g == nil {
		return nil, fmt.Errorf("rpq: nil graph")
	}
	if src == nil || src.Size() != g.NumVertices() {
		return nil, fmt.Errorf("rpq: source vector size mismatch (graph has %d vertices)", g.NumVertices())
	}
	n, err := CompileRegex(query)
	if err != nil {
		return nil, err
	}
	switch e := exec.Build(opts).Engine; e {
	case exec.EngineNFA:
		return EvalPairs(g, n, src, opts...)
	case exec.EngineAuto, exec.EngineDFA:
		return EvalPairsDFA(g, Determinize(n).Minimize(), src, opts...)
	case exec.EngineCFPQ:
		w, err := grammar.ToWCNF(ToGrammar(n))
		if err != nil {
			return nil, err
		}
		res, err := cfpq.MultiSource(g, w, src, opts...)
		if err != nil {
			return nil, err
		}
		return res.Answer(), nil
	case exec.EngineTensor:
		machine, err := rsm.FromGrammar(ToGrammar(n))
		if err != nil {
			return nil, err
		}
		rel, err := machine.Eval(g, opts...)
		if err != nil {
			return nil, err
		}
		return matrix.ExtractRows(rel, src), nil
	default:
		return nil, fmt.Errorf("rpq: unknown engine %s", e)
	}
}
