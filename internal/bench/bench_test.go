package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps unit-test runs fast: small graphs, tiny sweeps.
func tinyConfig() Config {
	cfg := QuickConfig()
	cfg.Graphs = []string{"core", "geospecies"}
	cfg.Scales = map[string]float64{"core": 0.2, "geospecies": 0.002}
	cfg.ChunkSizes = []int{1, 5}
	cfg.MaxChunks = 2
	return cfg
}

func TestTable1(t *testing.T) {
	rep, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table1", "#subClassOf", "core", "geospecies"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestFig2(t *testing.T) {
	rep, err := Fig2(tinyConfig(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestFiguresSweep(t *testing.T) {
	series, err := Figures(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Fatalf("no points for %s", s.Graph)
		}
		for _, p := range s.Points {
			if p.Chunks == 0 || p.MSMean < 0 || p.SmartMean < 0 {
				t.Fatalf("bad point %+v", p)
			}
		}
	}
	rep := FiguresReport(series)
	if len(rep.Rows) == 0 {
		t.Fatal("empty figures report")
	}
}

func TestAblationAgreement(t *testing.T) {
	rep, err := Ablation(tinyConfig(), "core", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // Algorithm 2, all-pairs, semi-naive, worklist
		t.Fatalf("rows = %v", rep.Rows)
	}
}

func TestFullStackAgreement(t *testing.T) {
	rep, err := FullStack(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %v", rep.Rows)
	}
}

func TestRPQUnification(t *testing.T) {
	rep, err := RPQUnification(tinyConfig(), "core", "subClassOf+", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 { // NFA, DFA, CFPQ, tensor
		t.Fatalf("rows = %v", rep.Rows)
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.scaleFor("core") != 1 {
		t.Fatal("core scale wrong")
	}
	if cfg.scaleFor("unknown") != 1 {
		t.Fatal("fallback scale wrong")
	}
	cfg.Scale = 0.5
	delete(cfg.Scales, "core")
	if cfg.scaleFor("core") != 0.5 {
		t.Fatal("global scale not applied")
	}
	chunks := cfg.chunks(10, 3)
	if len(chunks) == 0 || chunks[0].NVals() != 3 {
		t.Fatalf("chunks = %v", chunks)
	}
	// Chunks are disjoint.
	seen := map[int]bool{}
	for _, c := range chunks {
		for _, v := range c.Ints() {
			if seen[v] {
				t.Fatal("chunks overlap")
			}
			seen[v] = true
		}
	}
	// Oversized chunk clamps to n.
	if got := cfg.chunks(4, 100); len(got) != 1 || got[0].NVals() != 4 {
		t.Fatalf("clamped chunks = %v", got)
	}
}
