// Package store implements epoch-versioned, immutable graph snapshots
// and the version-keyed query cache built on top of them (DESIGN.md
// §11).
//
// A Store holds an atomically published chain of Snapshots. Readers
// pin the current snapshot with one atomic load and evaluate against
// it lock-free — no lock is held while a query runs, so a long CFPQ
// fixpoint never stalls writers and writers never stall readers.
// Writers are serialized: each Update clones the current snapshot
// copy-on-write (matrix.Bool row sharing, so the clone is
// O(labels + vertices), not O(edges)), applies its mutations to the
// private clone, and publishes it as the next version. Versions are
// monotonically increasing; on a durable database the gdb layer drives
// every Update from inside its journal commit, so version N is exactly
// the state after journal record N.
package store

import (
	"sync"
	"sync/atomic"

	"mscfpq/internal/cypher"
	"mscfpq/internal/graph"
)

// storeIDs hands out process-unique store identities. Cache keys embed
// the id so entries can never collide across store incarnations (a
// GRAPH.RESTORE replaces the whole store object: its version counter
// restarts, but its id is fresh).
var storeIDs atomic.Uint64

// Snapshot is one immutable version of a graph plus its node
// properties. All accessors are safe for concurrent use; callers must
// not mutate the returned graph or property maps.
//
// immutable after publish (enforced by the snapfreeze analyzer):
// once Update stores a Snapshot in st.cur, readers access it with
// plain loads, so no field may ever be written again.
type Snapshot struct {
	storeID uint64
	version uint64
	g       *graph.Graph
	props   map[int]map[string]cypher.Value
}

// StoreID returns the process-unique id of the owning store.
func (s *Snapshot) StoreID() uint64 { return s.storeID }

// Version returns the snapshot's epoch: 0 for the initial state, +1
// per committed Update.
func (s *Snapshot) Version() uint64 { return s.version }

// Graph returns the snapshot's graph. Read-only: mutating it would
// corrupt every snapshot sharing its rows.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Props returns vertex v's properties (nil if none). Read-only.
func (s *Snapshot) Props(v int) map[string]cypher.Value { return s.props[v] }

// PropEquals reports whether vertex v has property key equal to val.
// It implements plan.PropStore, so a pinned snapshot can back filter
// evaluation directly.
func (s *Snapshot) PropEquals(v int, key string, val cypher.Value) bool {
	p, ok := s.props[v]
	if !ok {
		return false
	}
	have, ok := p[key]
	return ok && have == val
}

// Store is an epoch-versioned snapshot holder: one atomic pointer to
// the current Snapshot, a writer lock serializing Updates.
type Store struct {
	id  uint64
	wmu sync.Mutex // serializes writers (Update)
	cur atomic.Pointer[Snapshot]
}

// New wraps a graph as version 0 of a fresh store. The graph is
// adopted: the caller must not mutate it after handing it over (seed
// it fully first, or go through Update).
func New(g *graph.Graph) *Store {
	st := &Store{id: storeIDs.Add(1)}
	st.cur.Store(&Snapshot{storeID: st.id, g: g, props: map[int]map[string]cypher.Value{}})
	return st
}

// ID returns the store's process-unique identity.
func (st *Store) ID() uint64 { return st.id }

// Pin returns the current snapshot. The snapshot stays valid (and
// immutable) for as long as the caller holds it; unpinning is implicit
// — dropping the reference lets the garbage collector reclaim rows no
// newer version shares.
func (st *Store) Pin() *Snapshot { return st.cur.Load() }

// Version returns the current version without pinning.
func (st *Store) Version() uint64 { return st.cur.Load().version }

// Tx is the mutable copy-on-write view of one Update: a private clone
// of the graph plus property maps that copy inner maps on first write.
type Tx struct {
	g     *graph.Graph
	props map[int]map[string]cypher.Value
	owned map[int]bool // vertices whose inner prop map is already private
}

// Graph returns the transaction's private graph; mutations stay
// invisible until the Update commits.
func (tx *Tx) Graph() *graph.Graph { return tx.g }

// Prop reads a property through the transaction (its own writes
// included).
func (tx *Tx) Prop(v int, key string) (cypher.Value, bool) {
	p, ok := tx.props[v]
	if !ok {
		return cypher.Value{}, false
	}
	val, ok := p[key]
	return val, ok
}

// SetProp sets a node property, copying the vertex's inner map on
// first write so prior snapshots keep their values.
func (tx *Tx) SetProp(v int, key string, val cypher.Value) {
	p := tx.props[v]
	if p == nil {
		p = map[string]cypher.Value{}
		tx.props[v] = p
		tx.owned[v] = true
	} else if !tx.owned[v] {
		c := make(map[string]cypher.Value, len(p)+1)
		for k, vv := range p {
			c[k] = vv
		}
		p = c
		tx.props[v] = p
		tx.owned[v] = true
	}
	p[key] = val
}

// Update applies fn to a copy-on-write transaction over the current
// snapshot and publishes the result as the next version. The snapshot
// is published even when fn returns an error: the version then
// captures exactly the mutations fn applied before failing, mirroring
// journal-replay semantics (a statement that failed halfway live fails
// at the same point during replay, reproducing the acknowledged
// partial state). fn's error is returned alongside the new snapshot.
//
// Updates are serialized; readers are never blocked and keep serving
// the prior version until the new one is published.
func (st *Store) Update(fn func(tx *Tx) error) (*Snapshot, error) {
	st.wmu.Lock()
	defer st.wmu.Unlock()
	cur := st.cur.Load()
	tx := &Tx{
		// CloneFrozen, not CowClone: cur is published — readers hold
		// it — and must stay bit-for-bit immutable; CowClone would
		// write its shared bitmap.
		g:     cur.g.CloneFrozen(),
		props: make(map[int]map[string]cypher.Value, len(cur.props)),
		owned: map[int]bool{},
	}
	for v, p := range cur.props {
		tx.props[v] = p
	}
	err := fn(tx)
	next := &Snapshot{storeID: st.id, version: cur.version + 1, g: tx.g, props: tx.props}
	st.cur.Store(next)
	return next, err
}
