package graph

import (
	"testing"
)

// edgeSet flattens a graph's labeled edges for comparison.
func edgeSet(g *Graph) map[[2]int]string {
	out := map[[2]int]string{}
	g.Edges(func(src int, label string, dst int) bool {
		out[[2]int{src, dst}] = out[[2]int{src, dst}] + label + ";"
		return true
	})
	return out
}

func sameEdges(a, b map[[2]int]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestGraphCowCloneIsolation: mutating a COW clone (the next version)
// must leave the original (the pinned snapshot) untouched, including
// when the clone grows the vertex set, and vice versa.
func TestGraphCowCloneIsolation(t *testing.T) {
	g := New(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 0)
	g.AddVertexLabel(0, "Person")

	want := edgeSet(g)
	c := g.CowClone()
	if !sameEdges(edgeSet(c), want) {
		t.Fatalf("fresh clone differs from original")
	}

	// Mutate the clone: existing label, new label, growth, vertex label.
	c.AddEdge(0, "a", 2)
	c.AddEdge(2, "c", 1)
	c.AddEdge(5, "a", 0) // grows to 6 vertices
	c.AddVertexLabel(3, "Person")

	if !sameEdges(edgeSet(g), want) {
		t.Fatalf("clone mutation leaked into original:\n got %v\nwant %v", edgeSet(g), want)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("original grew to %d vertices", g.NumVertices())
	}
	if g.HasVertexLabel(3, "Person") {
		t.Fatalf("clone vertex label leaked into original")
	}
	if c.NumVertices() != 6 || !c.HasEdge(5, "a", 0) || !c.HasEdge(0, "a", 1) {
		t.Fatalf("clone lost its own or inherited edges")
	}

	// And the other direction.
	cwant := edgeSet(c)
	g.AddEdge(1, "b", 1)
	if !sameEdges(edgeSet(c), cwant) {
		t.Fatalf("original mutation leaked into clone")
	}

	// Inverse-label reads on the snapshot must reflect only its edges.
	if got := g.EdgeMatrix("a_r").NVals(); got != 2 {
		t.Fatalf("snapshot transpose has %d entries, want 2", got)
	}
	if got := c.EdgeMatrix("a_r").NVals(); got != 4 {
		t.Fatalf("clone transpose has %d entries, want 4", got)
	}
}

// TestGraphCowCloneChain walks several versions, asserting each
// retained snapshot keeps its exact edge count (the no-torn-read
// invariant the store's stress suite relies on).
func TestGraphCowCloneChain(t *testing.T) {
	cur := New(2)
	cur.AddEdge(0, "x", 1)
	type version struct {
		g     *Graph
		edges map[[2]int]string
		n     int
	}
	var history []version
	for v := 0; v < 12; v++ {
		history = append(history, version{cur, edgeSet(cur), cur.NumVertices()})
		next := cur.CowClone()
		next.AddEdge(v, "x", v+1)
		next.AddEdge(v+1, "y", 0)
		cur = next
	}
	for i, h := range history {
		if !sameEdges(edgeSet(h.g), h.edges) {
			t.Fatalf("version %d edges changed", i)
		}
		if h.g.NumVertices() != h.n {
			t.Fatalf("version %d vertex count changed", i)
		}
	}
}

// TestGraphCloneFrozenIsolation: CloneFrozen yields the mutable next
// version of a published, never-again-mutated snapshot. The clone may
// be mutated and grown freely; the frozen original must stay
// bit-for-bit identical (internal/store publishes snapshots on this
// guarantee — see the `// immutable after publish` annotation there).
func TestGraphCloneFrozenIsolation(t *testing.T) {
	g := New(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 0)
	g.AddVertexLabel(0, "Person")
	want := edgeSet(g)

	c := g.CloneFrozen()
	if !sameEdges(edgeSet(c), want) {
		t.Fatalf("fresh frozen clone differs from original")
	}

	c.AddEdge(0, "a", 2)
	c.AddEdge(2, "c", 1)
	c.AddEdge(5, "a", 0) // grows to 6 vertices
	c.AddVertexLabel(3, "Person")

	if !sameEdges(edgeSet(g), want) {
		t.Fatalf("frozen-clone mutation leaked into original:\n got %v\nwant %v", edgeSet(g), want)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("original grew to %d vertices", g.NumVertices())
	}
	if g.HasVertexLabel(3, "Person") {
		t.Fatalf("clone vertex label leaked into frozen original")
	}
	if c.NumVertices() != 6 || !c.HasEdge(5, "a", 0) || !c.HasEdge(0, "a", 1) {
		t.Fatalf("clone lost its own mutations")
	}
}
