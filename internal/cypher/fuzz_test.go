package cypher

import "testing"

// FuzzParse asserts the parser never panics and that lexical errors are
// reported as errors, for arbitrary input. Run with `go test -fuzz=FuzzParse`;
// the seed corpus also runs under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`MATCH (v)-[:a]->(u) RETURN v, u`,
		`PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->() MATCH (v)-/ ~S /->(to) RETURN v, to`,
		`CREATE (a:N {k: 'v', n: 42})-[:e]->(b)`,
		`MATCH (v) WHERE id(v) IN [1,2] AND v.x = 'y' RETURN count(v) ORDER BY v DESC SKIP 1 LIMIT 2`,
		`MATCH (v)<-/ [:a]* <:b /-(u) RETURN v AS x`,
		`MATCH (v)-/`,
		`-/ /-> ~ [ ] | < : (`,
		"MATCH (v {s: 'O\\'Hara'}) RETURN v",
		// Path patterns over the labels of the checked-in query grammars
		// (queries/*.txt): G1, Geo, and a^n b^n as GQL-style patterns.
		`PATH PATTERN S = ()-/ [<:subClassOf ~S :subClassOf] | [<:subClassOf :subClassOf] /->() MATCH (v)-/ ~S /->(u) RETURN v, u`,
		`PATH PATTERN S = ()-/ [:broaderTransitive ~S <:broaderTransitive] | [:broaderTransitive <:broaderTransitive] /->() MATCH (x)-/ ~S /->(y) RETURN x, y`,
		`PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->() MATCH (v)-/ ~S /->(u) RETURN count(v)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err == nil && q == nil {
			t.Fatal("nil query without error")
		}
	})
}
