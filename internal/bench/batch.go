package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mscfpq/internal/exec"
	"mscfpq/internal/gdb"
	"mscfpq/internal/grammar"
	"mscfpq/internal/matrix"
)

const (
	// batchMinSpeedup is the acceptance gate (ISSUE 10): with 8
	// concurrent same-grammar clients, coalescing must at least double
	// the aggregate throughput over the unbatched baseline.
	batchMinSpeedup = 2.0
	// batchMaxAddedP50 bounds the latency cost for an uncontended
	// client: admission is adaptive (a lone query never waits), so
	// enabling the window must not add more than this to its p50.
	batchMaxAddedP50 = time.Millisecond
	// batchLoneReps is how many sequential queries the lone-client p50
	// is taken over; batchPoolSets/batchSetSize shape the overlapping
	// source-set pool the clients rotate through.
	batchLoneReps = 30
	batchPoolSets = 16
	batchSetSize  = 8
)

// BatchMeasurement is one row of the coalescing experiment, serialized
// into BENCH_batch.json by `make bench-smoke`: either a lone-client
// latency comparison (Clients == 1) or a concurrent-throughput pair.
type BatchMeasurement struct {
	Workload       string  `json:"workload"`
	Graph          string  `json:"graph"`
	Query          string  `json:"query"`
	Clients        int     `json:"clients"`
	WindowMS       float64 `json:"window_ms,omitempty"`
	P50UnbatchedMS float64 `json:"p50_unbatched_ms,omitempty"`
	P50WindowedMS  float64 `json:"p50_windowed_ms,omitempty"`
	AddedP50MS     float64 `json:"added_p50_ms,omitempty"`
	UnbatchedQPS   float64 `json:"unbatched_qps,omitempty"`
	BatchedQPS     float64 `json:"batched_qps,omitempty"`
	Speedup        float64 `json:"speedup,omitempty"`
	Groups         uint64  `json:"groups,omitempty"`
	Members        uint64  `json:"members,omitempty"`
	Reps           int     `json:"reps"`
}

// batchPool builds overlapping source sets: every set samples from one
// small candidate window of the vertex space, so concurrent members
// share sources and the union stays compact — the workload the paper's
// multiple-source amortization targets.
func batchPool(n int, seed int64) []*matrix.Vector {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	cand := perm[:min(n, 2*batchSetSize)]
	pool := make([]*matrix.Vector, batchPoolSets)
	for i := range pool {
		v := matrix.NewVector(n)
		for k := 0; k < min(batchSetSize, len(cand)); k++ {
			v.Set(cand[rng.Intn(len(cand))])
		}
		pool[i] = v
	}
	return pool
}

// BatchBench measures multi-source query coalescing (DESIGN.md §14) on
// the serving path: 8 concurrent same-grammar clients with and without
// an admission window (cache disabled, so every query pays its
// fixpoint), plus the lone-client p50 that proves adaptive admission
// adds no latency when there is nothing to coalesce. It returns an
// error if the 8-client speedup falls below 2x or the lone-client p50
// grows by more than 1ms.
func BatchBench(cfg Config) (*Report, []BatchMeasurement, error) {
	const graphName = "core"
	g, spec, err := cfg.Generate(graphName)
	if err != nil {
		return nil, nil, err
	}
	qname, q := queryFor(graphName)
	w, err := grammar.ToWCNF(q)
	if err != nil {
		return nil, nil, err
	}
	db := gdb.New()
	db.AddGraph(graphName, g)
	pool := batchPool(g.NumVertices(), cfg.Seed)
	ctx := context.Background()

	run := func(src *matrix.Vector) error {
		_, err := db.EvalCFPQ(ctx, graphName, w, src, exec.AlgMultiSource)
		return err
	}
	// p50 of one client issuing sequential queries over the pool.
	lonePS0 := func() (time.Duration, error) {
		lat := make([]time.Duration, 0, batchLoneReps)
		for i := 0; i < batchLoneReps; i++ {
			d, err := timeIt(func() error { return run(pool[i%len(pool)]) })
			if err != nil {
				return 0, err
			}
			lat = append(lat, d)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], nil
	}
	setWindow := func(window time.Duration) {
		db.SetPolicy(gdb.Policy{CacheMaxBytes: 0, BatchWindow: window})
	}
	qps := func(clients int, measure time.Duration) (float64, error) {
		var ops atomic.Int64
		var wg sync.WaitGroup
		var firstErr atomic.Value
		stop := make(chan struct{})
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := c; ; i += clients {
					select {
					case <-stop:
						return
					default:
					}
					if err := run(pool[i%len(pool)]); err != nil {
						firstErr.Store(err)
						return
					}
					ops.Add(1)
				}
			}(c)
		}
		time.Sleep(measure)
		close(stop)
		wg.Wait()
		if err, ok := firstErr.Load().(error); ok {
			return 0, err
		}
		return float64(ops.Load()) / measure.Seconds(), nil
	}

	rep := &Report{
		ID:      "Batch",
		Title:   "Query coalescing: shared fixpoints for concurrent same-grammar clients",
		Columns: []string{"Workload", "Clients", "Window", "Unbatched", "Batched", "Speedup"},
	}
	var out []BatchMeasurement

	// Lone client: p50 without a window, then with one. The window is
	// sized from the measured solo latency so coalescing has one solo
	// evaluation's worth of time to gather concurrent arrivals.
	setWindow(0)
	p50Cold, err := lonePS0()
	if err != nil {
		return nil, nil, fmt.Errorf("lone-client baseline: %w", err)
	}
	window := p50Cold / 2
	if window < 200*time.Microsecond {
		window = 200 * time.Microsecond
	}
	if window > 5*time.Millisecond {
		window = 5 * time.Millisecond
	}
	setWindow(window)
	p50Warm, err := lonePS0()
	if err != nil {
		return nil, nil, fmt.Errorf("lone-client windowed: %w", err)
	}
	added := p50Warm - p50Cold
	m := BatchMeasurement{
		Workload: "lone-client-p50", Graph: spec.Name, Query: qname, Clients: 1,
		WindowMS:       float64(window.Nanoseconds()) / 1e6,
		P50UnbatchedMS: float64(p50Cold.Nanoseconds()) / 1e6,
		P50WindowedMS:  float64(p50Warm.Nanoseconds()) / 1e6,
		AddedP50MS:     float64(added.Nanoseconds()) / 1e6,
		Reps:           batchLoneReps,
	}
	out = append(out, m)
	rep.Rows = append(rep.Rows, []string{
		m.Workload, "1", ms(window), ms(p50Cold) + " p50", ms(p50Warm) + " p50",
		fmt.Sprintf("%+.3fms", m.AddedP50MS),
	})
	if added > batchMaxAddedP50 {
		return nil, nil, fmt.Errorf(
			"batch acceptance gate failed: lone-client p50 grew by %.3fms (> %s) with the window on",
			m.AddedP50MS, batchMaxAddedP50)
	}

	// Concurrent same-grammar clients: aggregate throughput without
	// coalescing, then with the admission window.
	const measure = 400 * time.Millisecond
	for _, clients := range []int{2, 4, 8} {
		setWindow(0)
		qps0, err := qps(clients, measure)
		if err != nil {
			return nil, nil, fmt.Errorf("%d clients unbatched: %w", clients, err)
		}
		before := db.BatchStats()
		setWindow(window)
		qpsW, err := qps(clients, measure)
		if err != nil {
			return nil, nil, fmt.Errorf("%d clients batched: %w", clients, err)
		}
		after := db.BatchStats()
		groups := after.Groups - before.Groups
		members := after.Members - before.Members
		speedup := qpsW / qps0
		m := BatchMeasurement{
			Workload: "concurrent-clients", Graph: spec.Name, Query: qname,
			Clients: clients, WindowMS: float64(window.Nanoseconds()) / 1e6,
			UnbatchedQPS: qps0, BatchedQPS: qpsW, Speedup: speedup,
			Groups: groups, Members: members, Reps: 1,
		}
		out = append(out, m)
		rep.Rows = append(rep.Rows, []string{
			m.Workload, fmt.Sprintf("%d", clients), ms(window),
			fmt.Sprintf("%.0f qps", qps0), fmt.Sprintf("%.0f qps", qpsW),
			fmt.Sprintf("%.1fx", speedup),
		})
		if clients == 8 {
			if groups == 0 {
				return nil, nil, fmt.Errorf(
					"batch acceptance gate failed: 8 clients formed no groups (window %s)", window)
			}
			if speedup < batchMinSpeedup {
				return nil, nil, fmt.Errorf(
					"batch acceptance gate failed: 8 clients: %.0f qps batched vs %.0f unbatched (%.2fx < %.1fx)",
					qpsW, qps0, speedup, batchMinSpeedup)
			}
		}
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"cache disabled; window %s (half the measured lone-client p50, clamped); throughput windows of %s over a pool of %d overlapping %d-source sets; acceptance: >=%.0fx qps at 8 clients, <=%s added lone-client p50",
		ms(window), measure, batchPoolSets, batchSetSize, batchMinSpeedup, batchMaxAddedP50))
	return rep, out, nil
}

// WriteBatchJSON serializes the measurements as indented JSON.
func WriteBatchJSON(w io.Writer, ms []BatchMeasurement) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}
