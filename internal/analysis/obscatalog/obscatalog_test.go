package obscatalog_test

import (
	"testing"

	"mscfpq/internal/analysis/analysistest"
	"mscfpq/internal/analysis/obscatalog"
)

func TestObsCatalogDrift(t *testing.T) {
	analysistest.Run(t, obscatalog.Analyzer, "obscatpos/obs", "obscatpos/use")
}

func TestObsCatalogClean(t *testing.T) {
	analysistest.Run(t, obscatalog.Analyzer, "obscatneg/obs", "obscatneg/use")
}
