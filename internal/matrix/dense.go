package matrix

import (
	"fmt"
	"math/bits"
)

// Dense is a Boolean matrix stored as a bitset, one row per stripe of
// 64-bit words. Same-generation relations on deep hierarchies (e.g. the
// go-hierarchy graph) grow dense during the CFPQ fixpoint, where bitset
// rows multiply far faster than sorted index slices; this mirrors the
// sparse/bitmap format switching SuiteSparse:GraphBLAS performs.
type Dense struct {
	nrows, ncols int
	wpr          int // words per row
	words        []uint64
}

// NewDense returns an empty dense matrix.
func NewDense(nrows, ncols int) *Dense {
	if nrows < 0 || ncols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", nrows, ncols))
	}
	wpr := (ncols + 63) / 64
	return &Dense{nrows: nrows, ncols: ncols, wpr: wpr, words: make([]uint64, nrows*wpr)}
}

// FromBool converts a sparse matrix to dense form.
func FromBool(b *Bool) *Dense {
	d := NewDense(b.nrows, b.ncols)
	for i, row := range b.rows {
		base := i * d.wpr
		for _, c := range row {
			d.words[base+int(c>>6)] |= 1 << (c & 63)
		}
	}
	return d
}

// ToBool converts back to the sparse representation.
func (d *Dense) ToBool() *Bool {
	out := NewBool(d.nrows, d.ncols)
	for i := 0; i < d.nrows; i++ {
		base := i * d.wpr
		n := 0
		for w := 0; w < d.wpr; w++ {
			n += bits.OnesCount64(d.words[base+w])
		}
		if n == 0 {
			continue
		}
		row := make([]uint32, 0, n)
		for w := 0; w < d.wpr; w++ {
			word := d.words[base+w]
			wb := uint32(w << 6)
			for word != 0 {
				row = append(row, wb+uint32(bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
		out.rows[i] = row
		out.nvals += n
	}
	return out
}

// NRows returns the number of rows.
func (d *Dense) NRows() int { return d.nrows }

// NCols returns the number of columns.
func (d *Dense) NCols() int { return d.ncols }

// Set makes entry (i, j) true.
func (d *Dense) Set(i, j int) {
	d.check(i, j)
	d.words[i*d.wpr+(j>>6)] |= 1 << (uint(j) & 63)
}

// Get reports entry (i, j).
func (d *Dense) Get(i, j int) bool {
	d.check(i, j)
	return d.words[i*d.wpr+(j>>6)]&(1<<(uint(j)&63)) != 0
}

func (d *Dense) check(i, j int) {
	if i < 0 || i >= d.nrows || j < 0 || j >= d.ncols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, d.nrows, d.ncols))
	}
}

// NVals counts the true entries.
func (d *Dense) NVals() int {
	n := 0
	for _, w := range d.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether two dense matrices are identical.
func (d *Dense) Equal(o *Dense) bool {
	if d.nrows != o.nrows || d.ncols != o.ncols {
		return false
	}
	for i, w := range d.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// Clone deep-copies the matrix.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.nrows, d.ncols)
	copy(c.words, d.words)
	return c
}

// OrInPlace ORs o into d and reports whether d changed.
func (d *Dense) OrInPlace(o *Dense) bool {
	if d.nrows != o.nrows || d.ncols != o.ncols {
		panic(fmt.Sprintf("matrix: OrInPlace shape mismatch %dx%d vs %dx%d", d.nrows, d.ncols, o.nrows, o.ncols))
	}
	changed := false
	for i, w := range o.words {
		merged := d.words[i] | w
		if merged != d.words[i] {
			d.words[i] = merged
			changed = true
		}
	}
	return changed
}

// MulBoolDense multiplies a sparse left operand by a dense right
// operand, producing a dense result: each set column k of a row of a
// ORs b's k-th bitset row into the output row. This is the hot kernel
// when relations densify during a fixpoint.
func MulBoolDense(a *Bool, b *Dense) *Dense {
	if a.ncols != b.nrows {
		panic(fmt.Sprintf("matrix: MulBoolDense dimension mismatch %dx%d * %dx%d", a.nrows, a.ncols, b.nrows, b.ncols))
	}
	out := NewDense(a.nrows, b.ncols)
	for i, row := range a.rows {
		if len(row) == 0 {
			continue
		}
		dst := out.words[i*out.wpr : (i+1)*out.wpr]
		for _, k := range row {
			src := b.words[int(k)*b.wpr : (int(k)+1)*b.wpr]
			for w := range dst {
				dst[w] |= src[w]
			}
		}
	}
	return out
}

// MulDense multiplies two dense matrices over the (OR, AND) semiring.
func MulDense(a, b *Dense) *Dense {
	if a.ncols != b.nrows {
		panic(fmt.Sprintf("matrix: MulDense dimension mismatch %dx%d * %dx%d", a.nrows, a.ncols, b.nrows, b.ncols))
	}
	out := NewDense(a.nrows, b.ncols)
	for i := 0; i < a.nrows; i++ {
		arow := a.words[i*a.wpr : (i+1)*a.wpr]
		dst := out.words[i*out.wpr : (i+1)*out.wpr]
		for w, word := range arow {
			base := w << 6
			for word != 0 {
				k := base + bits.TrailingZeros64(word)
				word &= word - 1
				src := b.words[k*b.wpr : (k+1)*b.wpr]
				for x := range dst {
					dst[x] |= src[x]
				}
			}
		}
	}
	return out
}

// Density returns the fraction of true entries.
func (m *Bool) Density() float64 {
	if m.nrows == 0 || m.ncols == 0 {
		return 0
	}
	return float64(m.nvals) / (float64(m.nrows) * float64(m.ncols))
}

// hybridDensityThreshold is the right-operand density above which MulHybrid
// switches to the bitset kernel. Chosen empirically: beyond a few
// percent density the bitset OR beats merging sorted index slices.
const hybridDensityThreshold = 0.05

// MulHybrid multiplies choosing the kernel by operand density, like
// GraphBLAS's automatic sparse/bitmap switching: dense right operands
// take the bitset path, sparse ones the CSR path. The result is always
// sparse form.
func MulHybrid(a, b *Bool) *Bool {
	if b.Density() >= hybridDensityThreshold {
		return MulBoolDense(a, FromBool(b)).ToBool()
	}
	return Mul(a, b)
}
