// Package atomicfield enforces the all-or-nothing discipline of
// sync/atomic on struct fields: a field accessed through sync/atomic
// anywhere in the module must be accessed atomically everywhere.
// Mixed plain/atomic access is a latent race — the plain access is
// invisible to the atomic protocol, and the race detector only
// catches it when a schedule happens to expose the pair.
//
// Intent is declared with a `// atomic` comment on the field (with an
// optional `// atomic: <why>` tail), and is also inferred from any
// `&x.f` passed as the first argument of a sync/atomic call. Fields
// of the typed sync/atomic wrappers (atomic.Int64 etc.) need no
// checking — their API admits no plain access — and are skipped.
//
// Plain access is permitted only during construction: on a local
// freshly allocated in the current scope, before it escapes.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mscfpq/internal/analysis"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name:            "atomicfield",
	Doc:             "a struct field accessed through sync/atomic (or annotated `// atomic`) must be accessed atomically everywhere; mixed plain/atomic access is a latent race",
	IgnoreTestFiles: true,
	RunModule:       run,
}

// evidence records why a field is considered atomic.
type evidence struct {
	pos       token.Pos // the annotation or the atomic call
	annotated bool
}

func run(pass *analysis.ModulePass) error {
	fields := map[types.Object]evidence{}
	for _, u := range pass.Units {
		collectAnnotated(u, fields)
	}
	for _, u := range pass.Units {
		collectInferred(u, fields)
	}
	if len(fields) == 0 {
		return nil
	}
	for _, u := range pass.Units {
		checkUnit(pass, u, fields)
	}
	return nil
}

// collectAnnotated gathers fields declared atomic with a `// atomic`
// doc or line comment.
func collectAnnotated(u *analysis.Unit, fields map[types.Object]evidence) {
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if !atomicAnnotation(fld.Doc) && !atomicAnnotation(fld.Comment) {
					continue
				}
				for _, name := range fld.Names {
					obj := u.Info.Defs[name]
					if obj == nil || isTypedAtomic(obj.Type()) {
						continue
					}
					if _, seen := fields[obj]; !seen {
						fields[obj] = evidence{pos: name.Pos(), annotated: true}
					}
				}
			}
			return true
		})
	}
}

// atomicAnnotation matches a comment group that is exactly `// atomic`
// or starts `// atomic:` — prose that merely begins with the word
// ("atomic so kernels can charge it") is not a declaration.
func atomicAnnotation(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	text := strings.TrimSpace(cg.Text())
	return text == "atomic" || strings.HasPrefix(text, "atomic:")
}

// collectInferred gathers fields whose address is taken as the first
// argument of a sync/atomic function call.
func collectInferred(u *analysis.Unit, fields map[types.Object]evidence) {
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isAtomicCall(u.Info, call) || len(call.Args) == 0 {
				return true
			}
			obj := addrOfField(u.Info, call.Args[0])
			if obj == nil || isTypedAtomic(obj.Type()) {
				return true
			}
			if _, seen := fields[obj]; !seen {
				fields[obj] = evidence{pos: call.Pos()}
			}
			return true
		})
	}
}

// isAtomicCall reports whether the call invokes a sync/atomic package
// function (AddInt64, LoadUint64, CompareAndSwapPointer, ...).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// addrOfField resolves &x.f to the field object f, or nil.
func addrOfField(info *types.Info, arg ast.Expr) types.Object {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	selection := info.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	return selection.Obj()
}

// isTypedAtomic reports whether t is one of sync/atomic's typed
// wrappers (atomic.Int64, atomic.Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// checkUnit flags every plain access to a collected field.
func checkUnit(pass *analysis.ModulePass, u *analysis.Unit, fields map[types.Object]evidence) {
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, u, fd.Body, fields)
		}
	}
}

// checkScope walks one function scope; FuncLits are fresh scopes with
// their own construction state.
func checkScope(pass *analysis.ModulePass, u *analysis.Unit, scope *ast.BlockStmt, fields map[types.Object]evidence) {
	constructed := analysis.ConstructedLocals(u.Info, scope)
	escapes := map[types.Object]token.Pos{}
	analysis.WalkStack(scope, func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != scope {
			checkScope(pass, u, lit.Body, fields)
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := u.Info.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		ev, isAtomic := fields[selection.Obj()]
		if !isAtomic {
			return true
		}
		if inAtomicArg(u.Info, sel, stack) {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := u.Info.Uses[id]; obj != nil && constructed[obj] {
				esc, seen := escapes[obj]
				if !seen {
					esc = analysis.FirstEscape(u.Info, scope, obj)
					escapes[obj] = esc
				}
				if !esc.IsValid() || sel.Pos() < esc {
					return true // construction phase: value not shared yet
				}
			}
		}
		what := "used through sync/atomic"
		if ev.annotated {
			what = "annotated `// atomic`"
		}
		pass.Reportf(sel.Pos(), "plain access to atomic field %s (%s at %s) — every access must go through sync/atomic",
			selection.Obj().Name(), what, pass.Module.Fset().Position(ev.pos))
		return true
	})
}

// inAtomicArg reports whether the selector sits inside `&x.f` passed
// directly to a sync/atomic call — the one sanctioned access form.
func inAtomicArg(info *types.Info, sel *ast.SelectorExpr, stack []ast.Node) bool {
	var child ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			child = p
		case *ast.UnaryExpr:
			if p.Op != token.AND {
				return false
			}
			child = p
		case *ast.CallExpr:
			if !isAtomicCall(info, p) {
				return false
			}
			for _, a := range p.Args {
				if a == child {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}
