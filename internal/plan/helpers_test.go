package plan

import (
	"strings"
	"testing"

	"mscfpq/internal/cypher"
)

func mustParseQuery(t *testing.T, src string) *cypher.Query {
	t.Helper()
	q, err := cypher.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q
}

func contains(haystack, needle string) bool { return strings.Contains(haystack, needle) }
