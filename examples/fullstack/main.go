// Fullstack: the paper's Section 4 demonstration — a graph database
// with first-class CFPQ, spoken to over the wire.
//
// The program starts the RESP server in-process, connects a client,
// creates a graph with Cypher CREATE statements, and runs the paper's
// listing-5 query (the a^n b^n named path pattern) plus a regular path
// query, showing both the results and the execution plan.
//
// Run with: go run ./examples/fullstack
package main

import (
	"fmt"
	"log"

	"mscfpq"
)

func main() {
	db := mscfpq.NewDB()
	srv := mscfpq.NewServer(db)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(); err != nil {
			log.Print(err)
		}
	}()
	defer srv.Close()
	fmt.Printf("server on %s\n", addr)

	c, err := mscfpq.Dial(addr.String())
	if err != nil {
		log.Fatal(err)
	}
	//lint:ignore errdrop closing the client at process exit; nothing can act on the error
	defer c.Close()

	// Build the two-cycle graph over the wire: vertices are created
	// implicitly, ids are assigned in CREATE order.
	stmts := []string{
		`CREATE (v0:N)-[:a]->(v1:N), (v1)-[:a]->(v0)`,
		`MATCH (x:N) RETURN x`, // force ids to exist before reuse below
	}
	for _, s := range stmts {
		if _, err := c.GraphQuery("cycles", s); err != nil {
			log.Fatal(err)
		}
	}
	// The b-cycle reuses vertex 0 via a MATCH-free CREATE with fresh
	// nodes, then explicit edges between known ids are added with
	// CREATE patterns on bound variables.
	if _, err := c.GraphQuery("cycles", `CREATE (v2:N)-[:x]->(v3:N)`); err != nil {
		log.Fatal(err)
	}
	// Wire the b-cycle 0 -> 2 -> 3 -> 0 directly through the library
	// handle (mixing API and wire access on one database).
	store, err := db.Get("cycles")
	if err != nil {
		log.Fatal(err)
	}
	store.Graph().AddEdge(0, "b", 2)
	store.Graph().AddEdge(2, "b", 3)
	store.Graph().AddEdge(3, "b", 0)

	// Listing 5: the context-free a^n b^n query as a named path pattern.
	query := `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`
	plan, err := c.GraphExplain("cycles", query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("execution plan:")
	for _, line := range plan {
		fmt.Println("  " + line)
	}
	reply, err := c.GraphQuery("cycles", query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("a^n b^n pairs:")
	for _, row := range reply.Rows {
		fmt.Printf("  %d -> %d\n", row[0], row[1])
	}

	// Regular queries are a partial case: a Kleene plus over :a.
	reply, err = c.GraphQuery("cycles", `MATCH (v)-/ [:a]+ /->(u) WHERE id(v) = 0 RETURN v, u`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("a+ from vertex 0:")
	for _, row := range reply.Rows {
		fmt.Printf("  %d -> %d\n", row[0], row[1])
	}
	for _, s := range reply.Stats {
		fmt.Println("  --", s)
	}

	// Aggregation and profiling through the same wire protocol.
	// PATH PATTERN declarations are per-query (the store caches the
	// compiled context, so the index is reused under the hood).
	reply, err = c.GraphQuery("cycles", `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to) RETURN v, count(to) AS n ORDER BY n DESC LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top sources by a^n b^n fan-out:")
	for _, row := range reply.Rows {
		fmt.Printf("  vertex %d reaches %d\n", row[0], row[1])
	}
	profile, err := c.GraphProfile("cycles", query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("profile of the path-pattern query:")
	for _, line := range profile {
		fmt.Println("  " + line)
	}
	stats, err := c.Do("GRAPH.STATS", "cycles")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph statistics:")
	for _, l := range stats.Array {
		fmt.Println("  " + l.Str)
	}
}
