package cypher

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a Cypher statement.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks, src: src}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	return q, nil
}

type qparser struct {
	toks []token
	pos  int
	src  string
}

func (p *qparser) cur() token  { return p.toks[p.pos] }
func (p *qparser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *qparser) errf(format string, args ...any) error {
	t := p.cur()
	where := fmt.Sprintf("offset %d", t.pos)
	return fmt.Errorf("cypher: %s (at %s)", fmt.Sprintf(format, args...), where)
}

// isKeyword matches an identifier token case-insensitively.
func (p *qparser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *qparser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s", strings.ToUpper(kw))
	}
	return nil
}

func (p *qparser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *qparser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *qparser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

func (p *qparser) query() (*Query, error) {
	q := &Query{}
	if p.acceptKeyword("profile") {
		q.Profile = true
	}
	for p.isKeyword("path") {
		np, err := p.namedPathPattern()
		if err != nil {
			return nil, err
		}
		q.PathPatterns = append(q.PathPatterns, np)
	}
	switch {
	case p.acceptKeyword("create"):
		pats, err := p.patternList()
		if err != nil {
			return nil, err
		}
		q.Create = &CreateClause{Patterns: pats}
	case p.acceptKeyword("match"):
		pats, err := p.patternList()
		if err != nil {
			return nil, err
		}
		q.Match = &MatchClause{Patterns: pats}
		if p.acceptKeyword("where") {
			e, err := p.whereExpr()
			if err != nil {
				return nil, err
			}
			q.Where = e
		}
		if err := p.expectKeyword("return"); err != nil {
			return nil, err
		}
		ret, err := p.returnClause()
		if err != nil {
			return nil, err
		}
		q.Return = ret
	default:
		return nil, p.errf("expected CREATE, MATCH or PATH PATTERN, found %q", p.cur().text)
	}
	if p.acceptKeyword("timeout") {
		n, err := p.nonNegInt("TIMEOUT")
		if err != nil {
			return nil, err
		}
		q.TimeoutMS = n
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return q, nil
}

// namedPathPattern parses: PATH PATTERN Name = ()-/ expr /->().
func (p *qparser) namedPathPattern() (NamedPathPattern, error) {
	var np NamedPathPattern
	if err := p.expectKeyword("path"); err != nil {
		return np, err
	}
	if err := p.expectKeyword("pattern"); err != nil {
		return np, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return np, err
	}
	np.Name = name
	if err := p.expectPunct("="); err != nil {
		return np, err
	}
	// Leading node pattern (usually empty "()").
	lead, err := p.nodePattern()
	if err != nil {
		return np, err
	}
	if err := p.expectPunct("-/"); err != nil {
		return np, err
	}
	expr, err := p.pathExpr()
	if err != nil {
		return np, err
	}
	if err := p.expectPunct("/->"); err != nil {
		return np, err
	}
	trail, err := p.nodePattern()
	if err != nil {
		return np, err
	}
	// Fold end-node label checks into the expression.
	parts := []PathExpr{}
	if len(lead.Labels) > 0 {
		parts = append(parts, PENode{Labels: lead.Labels})
	}
	parts = append(parts, expr)
	if len(trail.Labels) > 0 {
		parts = append(parts, PENode{Labels: trail.Labels})
	}
	if len(parts) == 1 {
		np.Expr = parts[0]
	} else {
		np.Expr = PESeq{Parts: parts}
	}
	return np, nil
}

func (p *qparser) patternList() ([]Pattern, error) {
	var out []Pattern
	for {
		pat, err := p.pattern()
		if err != nil {
			return nil, err
		}
		out = append(out, pat)
		if !p.acceptPunct(",") {
			return out, nil
		}
	}
}

// pattern parses node (connection node)*.
func (p *qparser) pattern() (Pattern, error) {
	var pat Pattern
	n, err := p.nodePattern()
	if err != nil {
		return pat, err
	}
	pat.Nodes = append(pat.Nodes, n)
	for {
		conn, ok, err := p.connection()
		if err != nil {
			return pat, err
		}
		if !ok {
			return pat, nil
		}
		n, err := p.nodePattern()
		if err != nil {
			return pat, err
		}
		pat.Connections = append(pat.Connections, conn)
		pat.Nodes = append(pat.Nodes, n)
	}
}

// nodePattern parses (v:Label1:Label2 {k: v, ...}).
func (p *qparser) nodePattern() (NodePattern, error) {
	var n NodePattern
	if err := p.expectPunct("("); err != nil {
		return n, err
	}
	if p.cur().kind == tokIdent {
		n.Var = p.next().text
	}
	for p.acceptPunct(":") {
		l, err := p.expectIdent()
		if err != nil {
			return n, err
		}
		n.Labels = append(n.Labels, l)
	}
	if p.acceptPunct("{") {
		for {
			key, err := p.expectIdent()
			if err != nil {
				return n, err
			}
			if err := p.expectPunct(":"); err != nil {
				return n, err
			}
			val, err := p.literal()
			if err != nil {
				return n, err
			}
			n.Props = append(n.Props, Property{Key: key, Val: val})
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct("}"); err != nil {
			return n, err
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return n, err
	}
	return n, nil
}

func (p *qparser) literal() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.pos++
		return Value{Str: t.text}, nil
	case tokInt:
		p.pos++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, p.errf("bad integer %q", t.text)
		}
		return Value{Int: n, IsInt: true}, nil
	case tokPunct:
		if t.text == "-" { // negative integer
			p.pos++
			if p.cur().kind != tokInt {
				return Value{}, p.errf("expected integer after -")
			}
			n, err := strconv.ParseInt(p.next().text, 10, 64)
			if err != nil {
				return Value{}, p.errf("bad integer")
			}
			return Value{Int: -n, IsInt: true}, nil
		}
	}
	return Value{}, p.errf("expected literal, found %q", t.text)
}

// connection parses one of:
//
//	-[r:a|b]->   <-[:a]-   -->   <--   -/ expr /->   <-/ expr /-
//
// Returns ok=false when the pattern ends (no connection follows).
func (p *qparser) connection() (Connection, bool, error) {
	switch {
	case p.acceptPunct("-/"):
		expr, err := p.pathExpr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectPunct("/->"); err != nil {
			return nil, false, err
		}
		return PathApply{Expr: expr}, true, nil
	case p.acceptPunct("<-/"):
		expr, err := p.pathExpr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectPunct("/-"); err != nil {
			return nil, false, err
		}
		return PathApply{Expr: expr, Inverse: true}, true, nil
	case p.acceptPunct("-"):
		rel, err := p.relBody()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectPunct("->"); err != nil {
			return nil, false, err
		}
		return rel, true, nil
	case p.acceptPunct("<-"):
		rel, err := p.relBody()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectPunct("-"); err != nil {
			return nil, false, err
		}
		rel.Inverse = true
		return rel, true, nil
	case p.isPunct("->"): // "-->" lexes as "-" + "->"; handled above
		return nil, false, p.errf("unexpected ->")
	default:
		return nil, false, nil
	}
}

// relBody parses the optional [r:a|b] between the dashes.
func (p *qparser) relBody() (RelPattern, error) {
	var rel RelPattern
	if !p.acceptPunct("[") {
		return rel, nil // plain --> : any relationship
	}
	if p.cur().kind == tokIdent {
		rel.Var = p.next().text
	}
	if p.acceptPunct(":") {
		for {
			t, err := p.expectIdent()
			if err != nil {
				return rel, err
			}
			rel.Types = append(rel.Types, t)
			if !p.acceptPunct("|") {
				break
			}
			p.acceptPunct(":") // allow :a|:b style
		}
	}
	if err := p.expectPunct("]"); err != nil {
		return rel, err
	}
	return rel, nil
}

// pathExpr parses alternation of sequences.
func (p *qparser) pathExpr() (PathExpr, error) {
	first, err := p.pathSeq()
	if err != nil {
		return nil, err
	}
	alts := []PathExpr{first}
	for p.acceptPunct("|") {
		next, err := p.pathSeq()
		if err != nil {
			return nil, err
		}
		alts = append(alts, next)
	}
	if len(alts) == 1 {
		return first, nil
	}
	return PEAlt{Alts: alts}, nil
}

func (p *qparser) pathSeq() (PathExpr, error) {
	var parts []PathExpr
	for {
		atom, ok, err := p.pathAtom()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		parts = append(parts, atom)
	}
	if len(parts) == 0 {
		return nil, p.errf("empty path-pattern sequence")
	}
	if len(parts) == 1 {
		return parts[0], nil
	}
	return PESeq{Parts: parts}, nil
}

// pathAtom parses :rel, <:rel, (:label), ~Ref or [ expr ] with optional
// quantifiers. ok=false signals the end of the sequence.
func (p *qparser) pathAtom() (PathExpr, bool, error) {
	var atom PathExpr
	switch {
	case p.acceptPunct(":"):
		t, err := p.expectIdent()
		if err != nil {
			return nil, false, err
		}
		atom = PERel{Type: t}
	case p.acceptPunct("<"):
		if err := p.expectPunct(":"); err != nil {
			return nil, false, err
		}
		t, err := p.expectIdent()
		if err != nil {
			return nil, false, err
		}
		atom = PERel{Type: t, Inverse: true}
	case p.acceptPunct("~"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, false, err
		}
		atom = PERef{Name: name}
	case p.isPunct("("):
		n, err := p.nodePattern()
		if err != nil {
			return nil, false, err
		}
		if n.Var != "" || len(n.Props) > 0 {
			return nil, false, p.errf("node checks inside path patterns take only labels")
		}
		atom = PENode{Labels: n.Labels}
	case p.acceptPunct("["):
		inner, err := p.pathExpr()
		if err != nil {
			return nil, false, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, false, err
		}
		atom = inner
	default:
		return nil, false, nil
	}
	for {
		switch {
		case p.acceptPunct("*"):
			atom = PEStar{Sub: atom}
		case p.acceptPunct("+"):
			atom = PEPlus{Sub: atom}
		case p.acceptPunct("?"):
			atom = PEOpt{Sub: atom}
		default:
			return atom, true, nil
		}
	}
}

// whereExpr parses conjunctions of simple predicates.
func (p *qparser) whereExpr() (Expr, error) {
	left, err := p.predicate()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("and") {
		right, err := p.predicate()
		if err != nil {
			return nil, err
		}
		left = AndExpr{Left: left, Right: right}
	}
	return left, nil
}

func (p *qparser) predicate() (Expr, error) {
	if p.isKeyword("id") {
		p.pos++
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		switch {
		case p.acceptPunct("="):
			val, err := p.literal()
			if err != nil || !val.IsInt {
				return nil, p.errf("id() compares to an integer")
			}
			return IDCompare{Var: v, ID: val.Int}, nil
		case p.acceptKeyword("in"):
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			var ids []int64
			for {
				val, err := p.literal()
				if err != nil || !val.IsInt {
					return nil, p.errf("id() IN takes integers")
				}
				ids = append(ids, val.Int)
				if !p.acceptPunct(",") {
					break
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return IDIn{Var: v, IDs: ids}, nil
		default:
			return nil, p.errf("expected = or IN after id()")
		}
	}
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptPunct("."):
		key, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		return PropCompare{Var: v, Key: key, Val: val}, nil
	case p.acceptPunct(":"):
		label, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return HasLabel{Var: v, Label: label}, nil
	default:
		return nil, p.errf("expected predicate")
	}
}

func (p *qparser) returnClause() (*ReturnClause, error) {
	ret := &ReturnClause{}
	for {
		item, err := p.returnItem()
		if err != nil {
			return nil, err
		}
		ret.Items = append(ret.Items, item)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Name: name}
			if p.acceptKeyword("desc") {
				key.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			ret.OrderBy = append(ret.OrderBy, key)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("skip") {
		n, err := p.nonNegInt("SKIP")
		if err != nil {
			return nil, err
		}
		ret.Skip = n
	}
	if p.acceptKeyword("limit") {
		n, err := p.nonNegInt("LIMIT")
		if err != nil {
			return nil, err
		}
		ret.Limit = n
	}
	return ret, nil
}

// returnItem parses "v", "count(v)", "count(*)", each with optional AS.
func (p *qparser) returnItem() (ReturnItem, error) {
	var item ReturnItem
	if p.isKeyword("count") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
		p.pos += 2
		if p.acceptPunct("*") {
			item = ReturnItem{Var: "*", Count: true}
		} else {
			v, err := p.expectIdent()
			if err != nil {
				return item, err
			}
			item = ReturnItem{Var: v, Count: true}
		}
		if err := p.expectPunct(")"); err != nil {
			return item, err
		}
	} else {
		v, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item = ReturnItem{Var: v}
	}
	if p.acceptKeyword("as") {
		alias, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *qparser) nonNegInt(what string) (int, error) {
	t := p.cur()
	if t.kind != tokInt {
		return 0, p.errf("%s takes an integer", what)
	}
	p.pos++
	n, err := strconv.Atoi(t.text)
	if err != nil || n < 0 {
		return 0, p.errf("bad %s %q", what, t.text)
	}
	return n, nil
}
