package gen

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"mscfpq/internal/graph"
)

func graphText(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatalf("write graph: %v", err)
	}
	return buf.String()
}

// The generators must be pure functions of their seed: the whole point
// of the harness is that a failure reproduces from the printed seed.
func TestDeterministicFromSeed(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := NewInstance(seed, 20)
		b := NewInstance(seed, 20)
		if got, want := graphText(t, a.G), graphText(t, b.G); got != want {
			t.Fatalf("seed %d: graphs differ:\n%s\nvs\n%s", seed, got, want)
		}
		if a.Grammar.String() != b.Grammar.String() {
			t.Fatalf("seed %d: grammars differ:\n%s\nvs\n%s", seed, a.Grammar, b.Grammar)
		}
		if !reflect.DeepEqual(a.Sources, b.Sources) {
			t.Fatalf("seed %d: sources differ: %v vs %v", seed, a.Sources, b.Sources)
		}
	}
}

func TestGraphShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := Graph(rng, KindEmpty, 10, DefaultLabels); g.NumEdges() != 0 {
		t.Errorf("empty graph has %d edges", g.NumEdges())
	}
	if g := Graph(rng, KindSingleVertex, 10, DefaultLabels); g.NumVertices() != 1 {
		t.Errorf("single-vertex graph has %d vertices", g.NumVertices())
	}
	if g := Graph(rng, KindTwoCycles, 10, DefaultLabels); g.NumEdges() == 0 {
		t.Error("two-cycles graph has no edges")
	}
	// Every kind must produce a well-formed graph and valid labels.
	for k := GraphKind(0); k < numKinds; k++ {
		g := Graph(rng, k, 12, DefaultLabels)
		if g.NumVertices() < 1 {
			t.Errorf("kind %v: no vertices", k)
		}
		g.Edges(func(src int, label string, dst int) bool {
			if src < 0 || src >= g.NumVertices() || dst < 0 || dst >= g.NumVertices() {
				t.Errorf("kind %v: edge (%d,%d) out of range", k, src, dst)
			}
			return true
		})
	}
}

// Generated grammars must always validate and normalize; sources must
// stay in range of their graph.
func TestInstancesWellFormed(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		inst := NewInstance(seed, 20)
		if err := inst.Grammar.Validate(); err != nil {
			t.Fatalf("seed %d: invalid grammar: %v", seed, err)
		}
		if inst.W.NumNonterms() == 0 {
			t.Fatalf("seed %d: WCNF has no nonterminals", seed)
		}
		for _, s := range inst.Sources {
			if s < 0 || s >= inst.G.NumVertices() {
				t.Fatalf("seed %d: source %d out of range %d", seed, s, inst.G.NumVertices())
			}
		}
	}
}
