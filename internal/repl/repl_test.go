package repl

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"mscfpq/internal/gdb"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/oracle"
	"mscfpq/internal/resp"
)

// End-to-end replication: a real leader server (Hub on SYNC) and a
// real follower loop (Replica) over TCP, exercising bootstrap,
// incremental catch-up, lockstep rotation, read-only serving from
// pinned snapshots, and the INFO surfaces.

// leaderNode is a running leader: durable database + RESP server with
// the replication hub installed.
type leaderNode struct {
	dir  string
	db   *gdb.DB
	hub  *Hub
	srv  *resp.Server
	addr string
}

// startLeaderAt boots a leader over dir, listening on addr ("127.0.0.1:0"
// for any port). Restart tests reuse the dir and the bound address.
func startLeaderAt(t *testing.T, dir, addr string) *leaderNode {
	t.Helper()
	db, err := gdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := resp.NewServer(db)
	srv.SyncHandler = hub.HandleSync
	srv.ReplInfo = hub.InfoLines
	bound, err := srv.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return &leaderNode{dir: dir, db: db, hub: hub, srv: srv, addr: bound.String()}
}

func startLeader(t *testing.T) *leaderNode {
	return startLeaderAt(t, t.TempDir(), "127.0.0.1:0")
}

// followerNode is a running follower: durable replica database + the
// stream loop, plus a RESP server so reads are exercised end to end.
type followerNode struct {
	dir    string
	db     *gdb.DB
	rep    *Replica
	srv    *resp.Server
	addr   string
	cancel context.CancelFunc
	done   chan struct{}
}

func startFollowerAt(t *testing.T, dir, leaderAddr string) *followerNode {
	t.Helper()
	db, err := gdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	db.SetReplicaSource(leaderAddr)
	rep := New(db, leaderAddr, WithBackoff(5*time.Millisecond, 100*time.Millisecond))
	srv := resp.NewServer(db)
	srv.ReplInfo = rep.InfoLines
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = rep.Run(ctx) // returns only the shutdown cancellation
	}()
	f := &followerNode{dir: dir, db: db, rep: rep, srv: srv, addr: bound.String(), cancel: cancel, done: done}
	t.Cleanup(f.stop)
	return f
}

func startFollower(t *testing.T, leaderAddr string) *followerNode {
	return startFollowerAt(t, t.TempDir(), leaderAddr)
}

// stop cancels the stream loop and waits for it to exit. Idempotent.
func (f *followerNode) stop() {
	f.cancel()
	<-f.done
}

func mustExec(t *testing.T, db *gdb.DB, graph, src string) {
	t.Helper()
	if _, err := db.Query(graph, src); err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
}

// dumpAll fingerprints every graph in the database.
func dumpAll(t *testing.T, db *gdb.DB) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range db.List() {
		d, err := db.Dump(name)
		if err != nil {
			t.Fatalf("Dump(%s): %v", name, err)
		}
		out[name] = d
	}
	return out
}

func equalState(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// waitConverged blocks until the follower mirrors the leader exactly:
// same journal position, same graph dumps. Call only after leader
// writes have stopped.
func waitConverged(t *testing.T, leader, follower *gdb.DB, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ls, lo := leader.ReplPosition()
		fs, fo := follower.ReplPosition()
		if ls == fs && lo == fo && equalState(dumpAll(t, leader), dumpAll(t, follower)) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: leader %d:%d, follower %d:%d", ls, lo, fs, fo)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// infoMap parses "k:v" INFO lines (replicaN lines keep their raw value).
func infoMap(lines []string) map[string]string {
	m := map[string]string{}
	for _, l := range lines {
		k, v, _ := strings.Cut(l, ":")
		m[k] = v
	}
	return m
}

// TestBootstrapUnderConcurrentWrites is the acceptance scenario: a
// fresh replica attaches to a live leader under concurrent writes,
// bootstraps from a streamed snapshot, catches up to lag 0 once writes
// stop, and serves correct read-only queries over RESP.
func TestBootstrapUnderConcurrentWrites(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N {name: 'seed'})-[:e]->(b:N)`)
	if err := leader.db.Save(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := leader.db.Query("g", fmt.Sprintf(`CREATE (w%d:W {k: %d})`, i, i)); err != nil {
				t.Errorf("concurrent write %d: %v", i, err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	follower := startFollower(t, leader.addr)
	wg.Wait()
	waitConverged(t, leader.db, follower.db, 10*time.Second)
	waitUntil(t, 5*time.Second, "lag to reach 0", func() bool { return follower.rep.Lag() == 0 })

	// The follower's own INFO: a replica that bootstrapped once.
	info := infoMap(follower.rep.InfoLines())
	if info["role"] != "replica" || info["state"] != "connected" || info["sync_full"] != "1" {
		t.Fatalf("follower INFO wrong: %v", info)
	}
	if info["lag_seconds"] != "0" {
		t.Fatalf("lag_seconds = %s after convergence", info["lag_seconds"])
	}
	linfo := infoMap(leader.hub.InfoLines())
	if linfo["role"] != "leader" || linfo["connected_replicas"] != "1" {
		t.Fatalf("leader INFO wrong: %v", linfo)
	}

	// Read-only serving over RESP: reads answer, writes bounce with the
	// leader's address.
	c, err := resp.Dial(follower.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.GraphQuery("g", `MATCH (v:W) RETURN v`)
	if err != nil {
		t.Fatal(err)
	}
	if len(reply.Rows) != 20 {
		t.Fatalf("follower served %d rows, want 20", len(reply.Rows))
	}
	_, err = c.Do("GRAPH.QUERY", "g", `CREATE (x:X)`)
	if hint, ok := resp.LeaderHint(err); !ok || hint != leader.addr {
		t.Fatalf("follower write rejection hint = %q, %v (err=%v)", hint, ok, err)
	}
	v, err := c.Do("INFO", "replication")
	if err != nil || !strings.Contains(v.Str, "role:replica") {
		t.Fatalf("INFO replication over RESP = %q, %v", v.Str, err)
	}
}

// TestFollowerQueryMatchesOracle closes the loop with the paper's
// semantics: a graph built through the replication stream answers the
// a^n b^n context-free path query exactly as the reference CYK oracle
// does on the same edges.
func TestFollowerQueryMatchesOracle(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "anbn", `CREATE (v0)-[:a]->(v1), (v1)-[:a]->(v0), (v0)-[:b]->(v2), (v2)-[:b]->(v3), (v3)-[:b]->(v0)`)
	follower := startFollower(t, leader.addr)
	mustExec(t, leader.db, "anbn", `CREATE (v1b)-[:b]->(v1c)`)
	waitConverged(t, leader.db, follower.db, 10*time.Second)

	res, err := follower.db.Query("anbn", `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)
	if err != nil {
		t.Fatal(err)
	}
	got := append([][]int64(nil), res.Rows...)
	sort.Slice(got, func(i, j int) bool {
		return got[i][0] < got[j][0] || (got[i][0] == got[j][0] && got[i][1] < got[j][1])
	})

	g := graph.New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 0)
	g.AddEdge(0, "b", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)
	g.AddEdge(4, "b", 5)
	w := grammar.MustWCNF(grammar.MustParse("S -> a S b | a b"))
	want := oracle.CFPQ(g, w).StartPairs()
	if len(want) == 0 {
		t.Fatal("oracle relation is empty — the scenario lost its teeth")
	}
	if len(got) != len(want) {
		t.Fatalf("follower returned %d pairs, oracle %d\ngot: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i, p := range want {
		if got[i][0] != int64(p[0]) || got[i][1] != int64(p[1]) {
			t.Fatalf("pair %d: follower %v, oracle %v", i, got[i], p)
		}
	}
}

// TestPartialResyncContinues: a follower that restarts with intact
// history resumes from its recovered journal position (CONTINUE), not
// a second snapshot transfer.
func TestPartialResyncContinues(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	fdir := t.TempDir()
	follower := startFollowerAt(t, fdir, leader.addr)
	waitConverged(t, leader.db, follower.db, 10*time.Second)
	follower.stop()
	follower.srv.Close()
	if err := follower.db.Close(); err != nil {
		t.Fatal(err)
	}

	// The leader moves on while the follower is down.
	for i := 0; i < 5; i++ {
		mustExec(t, leader.db, "g", fmt.Sprintf(`CREATE (p%d:P)`, i))
	}

	f2 := startFollowerAt(t, fdir, leader.addr)
	waitConverged(t, leader.db, f2.db, 10*time.Second)
	info := infoMap(f2.rep.InfoLines())
	if info["sync_full"] != "0" {
		t.Fatalf("restart with intact history full-synced (sync_full=%s), want CONTINUE", info["sync_full"])
	}
}

// TestForeignHistoryForcesFullSync: a directory carrying some other
// history (wrong replid) is wiped and re-bootstrapped, never merged.
func TestForeignHistoryForcesFullSync(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N)-[:e]->(b:N)`)

	// Build a divergent standalone history in the follower's dir.
	fdir := t.TempDir()
	stale, err := gdb.Open(fdir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stale.Query("stale", `CREATE (z:Z)`); err != nil {
		t.Fatal(err)
	}
	if err := stale.Save(); err != nil {
		t.Fatal(err)
	}
	if err := stale.Close(); err != nil {
		t.Fatal(err)
	}
	// Claim a history the leader has never heard of.
	if err := saveSource(fdir, "00000000000000000000000000000000"); err != nil {
		t.Fatal(err)
	}

	follower := startFollowerAt(t, fdir, leader.addr)
	waitConverged(t, leader.db, follower.db, 10*time.Second)
	// The bookkeeping (sync_full counter, persisted source identity)
	// lands moments after the install the convergence check observes;
	// had the foreign history been CONTINUEd, sync_full would stay 0.
	waitUntil(t, 5*time.Second, "the full sync to be recorded", func() bool {
		return infoMap(follower.rep.InfoLines())["sync_full"] == "1"
	})
	if _, err := follower.db.Dump("stale"); err == nil {
		t.Fatal("divergent graph survived the full sync")
	}
	// The adopted identity is the leader's.
	waitUntil(t, 5*time.Second, "the leader's identity to be adopted", func() bool {
		return loadSource(fdir) == leader.hub.ReplID()
	})
}

// TestRotationLockstepLive: SAVEs on the live leader rotate the
// follower's files in lockstep, mid-stream, repeatedly.
func TestRotationLockstepLive(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	follower := startFollower(t, leader.addr)
	waitConverged(t, leader.db, follower.db, 10*time.Second)

	for round := 0; round < 3; round++ {
		mustExec(t, leader.db, "g", fmt.Sprintf(`CREATE (r%d:R)`, round))
		if err := leader.db.Save(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, leader.db, "g", fmt.Sprintf(`CREATE (s%d:S)`, round))
		waitConverged(t, leader.db, follower.db, 10*time.Second)
	}
	lseq, _ := leader.db.ReplPosition()
	fseq, _ := follower.db.ReplPosition()
	if fseq != lseq || fseq < 3 {
		t.Fatalf("sequences diverged after rotations: leader %d, follower %d", lseq, fseq)
	}
}

// TestPinnedSnapshotIsolation: a query pinned at version V on the
// follower keeps seeing V while the stream applies V+1 underneath —
// the MVCC contract replication must not break.
func TestPinnedSnapshotIsolation(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	follower := startFollower(t, leader.addr)
	waitConverged(t, leader.db, follower.db, 10*time.Second)

	store, err := follower.db.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	pinned := store.Snapshot() // version V, held across incoming writes
	baseVersion := pinned.Version()
	baseEdges := pinned.Graph().NumEdges()

	mustExec(t, leader.db, "g", `CREATE (c:N)-[:e2]->(d:N)`)
	waitConverged(t, leader.db, follower.db, 10*time.Second)

	if pinned.Version() != baseVersion || pinned.Graph().NumEdges() != baseEdges {
		t.Fatalf("pinned snapshot mutated: version %d->%d, edges %d->%d",
			baseVersion, pinned.Version(), baseEdges, pinned.Graph().NumEdges())
	}
	fresh, err := follower.db.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	now := fresh.Snapshot()
	if now.Version() <= baseVersion || now.Graph().NumEdges() != baseEdges+1 {
		t.Fatalf("replicated write invisible: version %d (base %d), edges %d (base %d)",
			now.Version(), baseVersion, now.Graph().NumEdges(), baseEdges)
	}
}

// TestInfoMonotonicUnderWrites: while writes (and a rotation) land on
// the leader, both sides' INFO positions advance monotonically in
// (journal_seq, journal_offset) order — offsets never run backwards.
func TestInfoMonotonicUnderWrites(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N)`)
	follower := startFollower(t, leader.addr)

	stopPoll := make(chan struct{})
	var pollErr error
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		parse := func(m map[string]string) (uint64, int64, error) {
			var seq uint64
			var off int64
			if _, err := fmt.Sscanf(m["journal_seq"], "%d", &seq); err != nil {
				return 0, 0, fmt.Errorf("bad journal_seq %q", m["journal_seq"])
			}
			if _, err := fmt.Sscanf(m["journal_offset"], "%d", &off); err != nil {
				return 0, 0, fmt.Errorf("bad journal_offset %q", m["journal_offset"])
			}
			return seq, off, nil
		}
		var lSeq, fSeq uint64
		var lOff, fOff int64
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			ls, lo, err := parse(infoMap(leader.hub.InfoLines()))
			if err != nil {
				pollErr = err
				return
			}
			if ls < lSeq || (ls == lSeq && lo < lOff) {
				pollErr = fmt.Errorf("leader position ran backwards: %d:%d after %d:%d", ls, lo, lSeq, lOff)
				return
			}
			lSeq, lOff = ls, lo
			fs, fo, err := parse(infoMap(follower.rep.InfoLines()))
			if err != nil {
				pollErr = err
				return
			}
			if fs < fSeq || (fs == fSeq && fo < fOff) {
				pollErr = fmt.Errorf("follower position ran backwards: %d:%d after %d:%d", fs, fo, fSeq, fOff)
				return
			}
			fSeq, fOff = fs, fo
		}
	}()

	for i := 0; i < 15; i++ {
		mustExec(t, leader.db, "g", fmt.Sprintf(`CREATE (w%d:W)`, i))
		if i == 7 {
			if err := leader.db.Save(); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitConverged(t, leader.db, follower.db, 10*time.Second)
	close(stopPoll)
	pollWG.Wait()
	if pollErr != nil {
		t.Fatal(pollErr)
	}
}

// TestRoutingClientAgainstLivePair: the client-side of the feature —
// bootstrap against the follower, get routed to the leader for writes,
// read the replicated result back from the follower.
func TestRoutingClientAgainstLivePair(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N)`)
	follower := startFollower(t, leader.addr)
	waitConverged(t, leader.db, follower.db, 10*time.Second)

	rc := resp.NewRoutingClient(follower.addr, follower.addr)
	defer rc.Close()
	if _, err := rc.Write("GRAPH.QUERY", "g", `CREATE (b:B)-[:e]->(c:B)`); err != nil {
		t.Fatalf("routed write: %v", err)
	}
	if rc.Leader() != leader.addr {
		t.Fatalf("routing client leader = %s, want %s", rc.Leader(), leader.addr)
	}
	waitConverged(t, leader.db, follower.db, 10*time.Second)
	v, err := rc.Read("GRAPH.QUERY", "g", `MATCH (v:B)-[:e]->(u) RETURN v, u`)
	if err != nil {
		t.Fatalf("routed read: %v", err)
	}
	if len(v.Array) != 3 || len(v.Array[1].Array) != 1 {
		t.Fatalf("routed read reply shape: %+v", v)
	}
}
