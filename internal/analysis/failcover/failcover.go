// Package failcover keeps the chaos suite's failpoint enumeration
// exhaustive: every durability operation — (*os.File).Sync, Write,
// WriteString, Truncate, and os.Rename / os.Truncate — in the
// durability packages must be reachable only behind a failpoint, so a
// chaos test can make it fail. An operation is covered when
//
//   - a fault.Inject call precedes it in the same function scope, or
//   - it writes through a fault.Writer-wrapped writer, or
//   - every call site of its enclosing function is itself covered
//     (helpers like syncDir inherit coverage from their callers).
//
// Anything else is a durability step a crash test can never reach —
// exactly the drift that silently shrinks chaos coverage as code
// grows.
package failcover

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mscfpq/internal/analysis"
)

// Analyzer is the failcover check.
var Analyzer = &analysis.Analyzer{
	Name:            "failcover",
	Doc:             "every Sync/Rename/Write/Truncate on a durability path must flow through a declared failpoint (fault.Inject before it, fault.Writer around it, or covered callers)",
	DefaultScope:    []string{"internal/gdb", "internal/fault", "internal/resp", "internal/repl"},
	IgnoreTestFiles: true,
	Run:             run,
}

// fileMethods are the (*os.File) methods that persist or destroy data.
var fileMethods = map[string]bool{"Sync": true, "Write": true, "WriteString": true, "Truncate": true}

// pkgFuncs are the package-level os functions that do the same.
var pkgFuncs = map[string]bool{"Rename": true, "Truncate": true}

// op is one durability operation found in the unit.
type op struct {
	call  *ast.CallExpr
	name  string // display name, e.g. "(*os.File).Sync"
	scope *ast.BlockStmt
	fn    *types.Func // enclosing declared function, nil inside FuncLits
}

func run(pass *analysis.Pass) error {
	u := unitView{pass: pass}
	var ops []op
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
			collectOps(pass, fd, &ops)
		}
	}
	if len(ops) == 0 {
		return nil
	}
	sites := collectCallSites(pass, decls)
	memo := map[*types.Func]coverage{}
	for _, o := range ops {
		if u.injectBefore(o.scope, o.call.Pos()) || writerWrapped(pass.TypesInfo, o.call) {
			continue
		}
		if o.fn != nil && u.callersCovered(o.fn, sites, memo) {
			continue
		}
		pass.Reportf(o.call.Pos(), "%s on a durability path without failpoint coverage — precede it with fault.Inject, route it through fault.Writer, or cover every caller (chaos enumeration depends on it)", o.name)
	}
	return nil
}

// collectOps walks one declared function, attributing ops to the
// innermost scope (FuncLit bodies are their own scopes, with no
// resolvable call sites).
func collectOps(pass *analysis.Pass, fd *ast.FuncDecl, ops *[]op) {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	var walk func(scope *ast.BlockStmt, owner *types.Func)
	walk = func(scope *ast.BlockStmt, owner *types.Func) {
		ast.Inspect(scope, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != scope {
				walk(lit.Body, nil)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := durabilityOp(pass.TypesInfo, call); ok {
				*ops = append(*ops, op{call: call, name: name, scope: scope, fn: owner})
			}
			return true
		})
	}
	walk(fd.Body, fn)
}

// durabilityOp classifies a call as a durability operation.
func durabilityOp(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if recv := sig.Recv(); recv != nil {
		ptr, ok := recv.Type().(*types.Pointer)
		if !ok {
			return "", false
		}
		named, ok := ptr.Elem().(*types.Named)
		if !ok || named.Obj().Name() != "File" || !fileMethods[fn.Name()] {
			return "", false
		}
		return "(*os.File)." + fn.Name(), true
	}
	if !pkgFuncs[fn.Name()] {
		return "", false
	}
	return "os." + fn.Name(), true
}

// unitView bundles the pass for the coverage helpers.
type unitView struct {
	pass *analysis.Pass
}

// injectBefore reports whether a fault.Inject call lexically precedes
// pos within the same function scope (nested FuncLits excluded — they
// run at some other time).
func (u unitView) injectBefore(scope *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != scope {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if call.Pos() < pos && isFaultCall(u.pass.TypesInfo, call, "Inject") {
			found = true
		}
		return true
	})
	return found
}

// writerWrapped reports whether the op's receiver expression routes
// through fault.Writer (e.g. fault.Writer(fp, f).Write(rec)).
func writerWrapped(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(sel.X, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isFaultCall(info, c, "Writer") {
			found = true
		}
		return !found
	})
	return found
}

// isFaultCall matches calls to the failpoint framework by package-path
// suffix, so fixture stand-ins qualify.
func isFaultCall(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := analysis.CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Name() == name &&
		strings.HasSuffix(fn.Pkg().Path(), "internal/fault")
}

// site is one call of a declared function.
type site struct {
	pos   token.Pos
	scope *ast.BlockStmt
	fn    *types.Func // caller, nil inside FuncLits
}

// collectCallSites indexes intra-unit calls of each declared function.
func collectCallSites(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl) map[*types.Func][]site {
	sites := map[*types.Func][]site{}
	for _, fd := range decls {
		caller, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		var walk func(scope *ast.BlockStmt, owner *types.Func)
		walk = func(scope *ast.BlockStmt, owner *types.Func) {
			ast.Inspect(scope, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && lit.Body != scope {
					walk(lit.Body, nil)
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.CalleeFunc(pass.TypesInfo, call)
				if callee == nil {
					return true
				}
				if _, declared := decls[callee]; declared {
					sites[callee] = append(sites[callee], site{pos: call.Pos(), scope: scope, fn: owner})
				}
				return true
			})
		}
		walk(fd.Body, caller)
	}
	return sites
}

type coverage int

const (
	unknown coverage = iota
	inProgress
	covered
	uncovered
)

// callersCovered reports whether every call site of fn is behind a
// failpoint, directly or transitively. Recursion cycles and functions
// with no visible call sites are uncovered.
func (u unitView) callersCovered(fn *types.Func, sites map[*types.Func][]site, memo map[*types.Func]coverage) bool {
	switch memo[fn] {
	case covered:
		return true
	case uncovered, inProgress:
		return false
	}
	memo[fn] = inProgress
	ss := sites[fn]
	ok := len(ss) > 0
	for _, s := range ss {
		if u.injectBefore(s.scope, s.pos) {
			continue
		}
		if s.fn != nil && u.callersCovered(s.fn, sites, memo) {
			continue
		}
		ok = false
		break
	}
	if ok {
		memo[fn] = covered
	} else {
		memo[fn] = uncovered
	}
	return ok
}
