//go:build nofault

// Release-build stubs: with the `nofault` tag every injection point
// compiles to a constant no-op the inliner erases, so production
// binaries carry no failpoint machinery at all. The arming API stays
// present (tests are built without the tag; non-test callers only
// Declare) but arms nothing.
package fault

import (
	"fmt"
	"io"
	"time"
)

// Spec mirrors the instrumented build's Spec; see fault.go.
type Spec struct {
	Err           error
	Panic         any
	Delay         time.Duration
	TruncateAfter int64
	SkipFirst     int
	Times         int
}

// ErrInjected mirrors the instrumented build's sentinel.
var ErrInjected = fmt.Errorf("fault: injected failure")

// Declare is a no-op in release builds.
func Declare(...string) struct{} { return struct{}{} }

// Names reports no failpoints in release builds.
func Names() []string { return nil }

// Enable arms nothing in release builds.
func Enable(string, Spec) func() { return func() {} }

// Disable is a no-op in release builds.
func Disable(string) {}

// Reset is a no-op in release builds.
func Reset() {}

// Hits always reports zero in release builds.
func Hits(string) int64 { return 0 }

// Active always reports false in release builds.
func Active() bool { return false }

// Inject is a constant no-op in release builds.
func Inject(string) error { return nil }

// Writer returns w untouched in release builds.
func Writer(_ string, w io.Writer) io.Writer { return w }
