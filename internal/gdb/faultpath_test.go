//go:build !nofault

package gdb

import (
	"errors"
	"os"
	"strings"
	"testing"

	"mscfpq/internal/fault"
)

// Regression tests for the error-path failpoints (FPRollbackTruncate,
// FPRecoverTruncate, FPCloseSync). Unlike the chaos-enumerated
// gdb.snapshot./gdb.journal. points these never fire on a clean
// Save/Query pass, so each needs its failure staged explicitly.

// TestRollbackTruncateFailurePoisonsJournal stages a failed append
// whose rollback also fails: the journal must refuse further
// mutations until a Save rotates in a fresh one.
func TestRollbackTruncateFailurePoisonsJournal(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)-[:e]->(b:N)`)

	offAppend := fault.Enable(FPJournalAppend, fault.Spec{Err: errors.New("injected append failure"), Times: 1})
	offRollback := fault.Enable(FPRollbackTruncate, fault.Spec{Err: errors.New("injected truncate failure"), Times: 1})
	if _, err := db.Query("g", `CREATE (c:N)`); err == nil {
		t.Fatal("mutation with a failing journal append should error")
	}
	offAppend()
	offRollback()
	if fault.Hits(FPRollbackTruncate) == 0 {
		t.Fatal("rollback truncate failpoint never fired")
	}

	if _, err := db.Query("g", `CREATE (d:N)`); err == nil || !strings.Contains(err.Error(), "journal unusable") {
		t.Fatalf("poisoned journal should refuse mutations, got %v", err)
	}
	if err := db.Save(); err != nil {
		t.Fatalf("Save should rotate the broken journal out: %v", err)
	}
	mustQuery(t, db, "g", `CREATE (d:N)`)

	// The healed state must survive a crash-and-recover.
	want := dumpAll(t, db)
	sameState(t, want, dumpAll(t, reopen(t, dir)))
}

// TestRecoverTruncateFailureFailsOpen tears the journal tail on disk,
// then makes the recovery-time truncate fail: Open must surface the
// error rather than hand back a DB whose next append would land after
// garbage. With the failpoint disarmed the same directory recovers.
func TestRecoverTruncateFailureFailsOpen(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	want := dumpAll(t, db)

	// A torn tail: any trailing bytes short of a full record header.
	f, err := os.OpenFile(journalPath(dir, 0), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	off := fault.Enable(FPRecoverTruncate, fault.Spec{Err: errors.New("injected truncate failure")})
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "torn journal tail") {
		t.Fatalf("Open over a torn tail with truncation failing should error, got %v", err)
	}
	if fault.Hits(FPRecoverTruncate) == 0 {
		t.Fatal("recover truncate failpoint never fired")
	}
	off()

	db2 := reopen(t, dir)
	sameState(t, want, dumpAll(t, db2))
	mustQuery(t, db2, "g", `CREATE (c:N)`) // appends start on a clean boundary
}

// TestCloseSyncFailureSurfaces makes the final journal sync fail:
// Close must report it (callers treat Close as the last flush), and
// previously acknowledged data must still recover.
func TestCloseSyncFailureSurfaces(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustQuery(t, db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	want := dumpAll(t, db)

	off := fault.Enable(FPCloseSync, fault.Spec{Err: errors.New("injected sync failure")})
	if err := db.Close(); err == nil || !strings.Contains(err.Error(), "close") {
		t.Fatalf("Close with a failing sync should error, got %v", err)
	}
	off()

	sameState(t, want, dumpAll(t, reopen(t, dir)))
}
