package matrix

import (
	"math/rand"
	"testing"
)

func TestMulAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n1, n2, n3 := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		a, da := randomMatrix(rng, n1, n2, 0.15)
		b, db := randomMatrix(rng, n2, n3, 0.15)
		got := Mul(a, b)
		mustValidate(t, got)
		sparseEqualDense(t, got, da.mul(db))
	}
}

func TestMulParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a, _ := randomMatrix(rng, 120, 90, 0.05)
	b, _ := randomMatrix(rng, 90, 150, 0.05)
	want := Mul(a, b)
	for _, w := range []int{1, 2, 3, 8} {
		got := MulPar(a, b, w)
		mustValidate(t, got)
		if !got.Equal(want) {
			t.Fatalf("MulPar(workers=%d) differs from Mul", w)
		}
	}
}

func TestMulEmptyOperands(t *testing.T) {
	a := NewBool(3, 4)
	b := NewBool(4, 5)
	if got := Mul(a, b); got.NVals() != 0 {
		t.Fatal("product of empty matrices must be empty")
	}
	a.Set(0, 0)
	if got := Mul(a, b); got.NVals() != 0 {
		t.Fatal("product with empty right operand must be empty")
	}
}

func TestAddAndSub(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		a, da := randomMatrix(rng, 12, 9, 0.3)
		b, db := randomMatrix(rng, 12, 9, 0.3)
		sum := Add(a, b)
		mustValidate(t, sum)
		diff := Sub(a, b)
		mustValidate(t, diff)
		inter := Intersect(a, b)
		mustValidate(t, inter)
		for i := 0; i < 12; i++ {
			for j := 0; j < 9; j++ {
				if sum.Get(i, j) != (da.get(i, j) || db.get(i, j)) {
					t.Fatalf("Add mismatch at (%d,%d)", i, j)
				}
				if diff.Get(i, j) != (da.get(i, j) && !db.get(i, j)) {
					t.Fatalf("Sub mismatch at (%d,%d)", i, j)
				}
				if inter.Get(i, j) != (da.get(i, j) && db.get(i, j)) {
					t.Fatalf("Intersect mismatch at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestAddInPlaceChangeDetection(t *testing.T) {
	a := NewBoolFromPairs(2, 2, [][2]int{{0, 0}, {1, 1}})
	sub := NewBoolFromPairs(2, 2, [][2]int{{0, 0}})
	if AddInPlace(a, sub) {
		t.Fatal("adding a subset must report no change")
	}
	more := NewBoolFromPairs(2, 2, [][2]int{{0, 1}})
	if !AddInPlace(a, more) {
		t.Fatal("adding a new entry must report change")
	}
	if !a.Get(0, 1) || a.NVals() != 3 {
		t.Fatal("AddInPlace result wrong")
	}
	mustValidate(t, a)
}

func TestSubInPlaceChangeDetection(t *testing.T) {
	a := NewBoolFromPairs(2, 2, [][2]int{{0, 0}, {0, 1}})
	if SubInPlace(a, NewBool(2, 2)) {
		t.Fatal("subtracting empty must report no change")
	}
	b := NewBoolFromPairs(2, 2, [][2]int{{0, 1}, {1, 1}})
	if !SubInPlace(a, b) {
		t.Fatal("removing an entry must report change")
	}
	if a.Get(0, 1) || !a.Get(0, 0) || a.NVals() != 1 {
		t.Fatal("SubInPlace result wrong")
	}
	mustValidate(t, a)
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a, da := randomMatrix(rng, 8, 14, 0.25)
	at := Transpose(a)
	mustValidate(t, at)
	for i := 0; i < 8; i++ {
		for j := 0; j < 14; j++ {
			if at.Get(j, i) != da.get(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !Transpose(at).Equal(a) {
		t.Fatal("double transpose is not identity")
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestTransposeOfProductProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 25; trial++ {
		a, _ := randomMatrix(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.2)
		b, _ := randomMatrix(rng, a.NCols(), 1+rng.Intn(15), 0.2)
		lhs := Transpose(Mul(a, b))
		rhs := Mul(Transpose(b), Transpose(a))
		if !lhs.Equal(rhs) {
			t.Fatalf("trial %d: (AB)^T != B^T A^T", trial)
		}
	}
}

// Property: matrix multiplication is associative.
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 25; trial++ {
		a, _ := randomMatrix(rng, 1+rng.Intn(12), 1+rng.Intn(12), 0.25)
		b, _ := randomMatrix(rng, a.NCols(), 1+rng.Intn(12), 0.25)
		c, _ := randomMatrix(rng, b.NCols(), 1+rng.Intn(12), 0.25)
		if !Mul(Mul(a, b), c).Equal(Mul(a, Mul(b, c))) {
			t.Fatalf("trial %d: (AB)C != A(BC)", trial)
		}
	}
}

// Property: addition is idempotent, commutative and associative.
func TestAddAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 25; trial++ {
		a, _ := randomMatrix(rng, 10, 10, 0.3)
		b, _ := randomMatrix(rng, 10, 10, 0.3)
		c, _ := randomMatrix(rng, 10, 10, 0.3)
		if !Add(a, a).Equal(a) {
			t.Fatal("A+A != A")
		}
		if !Add(a, b).Equal(Add(b, a)) {
			t.Fatal("A+B != B+A")
		}
		if !Add(Add(a, b), c).Equal(Add(a, Add(b, c))) {
			t.Fatal("(A+B)+C != A+(B+C)")
		}
	}
}

// Property: multiplication distributes over addition.
func TestMulDistributesOverAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	for trial := 0; trial < 25; trial++ {
		a, _ := randomMatrix(rng, 9, 7, 0.25)
		b, _ := randomMatrix(rng, 7, 11, 0.25)
		c, _ := randomMatrix(rng, 7, 11, 0.25)
		lhs := Mul(a, Add(b, c))
		rhs := Add(Mul(a, b), Mul(a, c))
		if !lhs.Equal(rhs) {
			t.Fatalf("trial %d: A(B+C) != AB+AC", trial)
		}
	}
}

func TestKron(t *testing.T) {
	a := NewBoolFromPairs(2, 2, [][2]int{{0, 1}, {1, 0}})
	b := NewBoolFromPairs(2, 3, [][2]int{{0, 0}, {1, 2}})
	k := Kron(a, b)
	mustValidate(t, k)
	if k.NRows() != 4 || k.NCols() != 6 {
		t.Fatalf("Kron shape %dx%d", k.NRows(), k.NCols())
	}
	if k.NVals() != a.NVals()*b.NVals() {
		t.Fatalf("Kron nvals %d, want %d", k.NVals(), a.NVals()*b.NVals())
	}
	// Spot-check block structure: a[0,1] places b at rows 0..1, cols 3..5.
	if !k.Get(0, 3) || !k.Get(1, 5) || k.Get(0, 0) {
		t.Fatal("Kron block placement wrong")
	}
}

func TestKronAgainstDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	a, da := randomMatrix(rng, 4, 5, 0.3)
	b, db := randomMatrix(rng, 3, 2, 0.4)
	k := Kron(a, b)
	for i1 := 0; i1 < 4; i1++ {
		for j1 := 0; j1 < 5; j1++ {
			for i2 := 0; i2 < 3; i2++ {
				for j2 := 0; j2 < 2; j2++ {
					want := da.get(i1, j1) && db.get(i2, j2)
					if k.Get(i1*3+i2, j1*2+j2) != want {
						t.Fatalf("Kron mismatch at (%d,%d)x(%d,%d)", i1, j1, i2, j2)
					}
				}
			}
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3.
	m := NewBoolFromPairs(4, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	tc := TransitiveClosure(m)
	want := NewBoolFromPairs(4, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if !tc.Equal(want) {
		t.Fatalf("closure:\n%v\nwant:\n%v", tc, want)
	}
	// Cycle 0 -> 1 -> 0 closes to all four pairs.
	cyc := TransitiveClosure(NewBoolFromPairs(2, 2, [][2]int{{0, 1}, {1, 0}}))
	if cyc.NVals() != 4 {
		t.Fatalf("cycle closure nvals = %d, want 4", cyc.NVals())
	}
}

func TestExtractRows(t *testing.T) {
	m := NewBoolFromPairs(4, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	set := NewVectorFromIndices(4, []int{1, 3})
	got := ExtractRows(m, set)
	mustValidate(t, got)
	if got.NVals() != 2 || !got.Get(1, 2) || !got.Get(3, 0) || got.Get(0, 1) {
		t.Fatalf("ExtractRows wrong: %v", got)
	}
}

func TestMulWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		a, _ := randomMatrix(rng, 10, 8, 0.2)
		b, _ := randomMatrix(rng, 8, 12, 0.2)
		prod, wit := MulWitness(a, b)
		if !prod.Equal(Mul(a, b)) {
			t.Fatal("MulWitness product differs from Mul")
		}
		if len(wit) != prod.NVals() {
			t.Fatalf("witness count %d != nvals %d", len(wit), prod.NVals())
		}
		for key, k := range wit {
			i, j := UnKey(key)
			if !a.Get(i, int(k)) || !b.Get(int(k), j) {
				t.Fatalf("witness (%d,%d) via %d is not a valid decomposition", i, j, k)
			}
		}
	}
}

func TestAccumulatorEpochWrap(t *testing.T) {
	acc := getAccumulator(128)
	acc.epoch = ^uint32(0) - 1 // two resets away from wrap
	for round := 0; round < 4; round++ {
		acc.reset()
		acc.orRow([]uint32{1, 64, 127})
		got := acc.extract(nil)
		if len(got) != 3 || got[0] != 1 || got[1] != 64 || got[2] != 127 {
			t.Fatalf("round %d: extract = %v", round, got)
		}
	}
}
