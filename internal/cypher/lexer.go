// Package cypher implements the query front end of the database layer:
// a lexer, AST and recursive-descent parser for the Cypher subset the
// paper's RedisGraph extension supports — CREATE / MATCH / WHERE /
// RETURN — plus the openCypher path-pattern extension (CIP2017-02-06)
// the paper implements in libcypher-parser: PATH PATTERN declarations
// and -/ ... /-> path-pattern connections with sequencing, alternation,
// grouping, node checks, references (~Name) and quantifiers.
package cypher

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical classes.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokPunct // single- or multi-rune punctuation, stored in text
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

// lexer splits query text into tokens. Multi-rune punctuation relevant
// to patterns (->, <-, -/, /->, /-) is emitted as single tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexInt()
		case c == '\'' || c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexInt() {
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokInt, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	quote := l.src[l.pos]
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("cypher: unterminated string at offset %d", start)
}

// multi-rune punctuation, longest first.
var punctSeq = []string{"/->", "<-/", "->", "<-", "-/", "/-", "<>", ">=", "<="}

func (l *lexer) lexPunct() error {
	rest := l.src[l.pos:]
	for _, p := range punctSeq {
		if strings.HasPrefix(rest, p) {
			l.toks = append(l.toks, token{kind: tokPunct, text: p, pos: l.pos})
			l.pos += len(p)
			return nil
		}
	}
	c := l.src[l.pos]
	if strings.ContainsRune("()[]{}-<>|:,=~*+?./", rune(c)) {
		l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("cypher: invalid character %q at offset %d", c, l.pos)
}
