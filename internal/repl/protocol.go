// Package repl implements WAL-shipping replication for the graph
// database (DESIGN.md §13): a leader Hub streams its op journal to
// follower Replicas over the RESP protocol, bootstrapping fresh or
// too-far-behind followers with a full snapshot transfer. A follower's
// data directory is a byte-identical mirror of the leader's — same
// sequence numbers, same journal bytes — so follower crash recovery is
// ordinary gdb.Open and follower state is always a prefix of leader
// state.
//
// Wire protocol, all frames RESP arrays. The follower opens with the
// handshake command
//
//	SYNC <replid> <seq> <off>
//
// where replid identifies the leader history the follower last
// mirrored ("?" = none) and (seq, off) is its recovered journal
// position. The leader replies with one of
//
//	["CONTINUE", seq, off]        incremental catch-up from (seq, off)
//	["FULLSYNC", replid, seq]     snapshot bootstrap under sequence seq
//
// After FULLSYNC the leader ships the snapshot file verbatim as
// ["SNAP", chunk]* frames closed by ["SNAPEND", totalBytes]. Both
// paths then enter the one-way record stream:
//
//	["REC", seq, raw]    one framed journal record, exactly the bytes
//	                     the leader's journal holds (CRC included)
//	["ROTATE", newSeq]   the leader rotated; the follower cuts its own
//	                     snapshot under newSeq and continues at off 0
//	["PING", seq, off, unixMicro]   leader liveness + current position,
//	                                sent when the stream idles
//
// Records are shipped strictly in journal order and only up to the
// leader's committed (fsynced and acknowledged) offset, so a follower
// never applies a record the leader could still roll back.
//
// Limitation: a REC frame carries one journal record as a RESP bulk
// string, so records beyond the protocol's bulk-string bound (16 MiB)
// cannot be shipped; such a stream fails and the follower falls back
// to snapshot bootstraps.
package repl

import (
	"fmt"
	"strconv"

	"mscfpq/internal/fault"
	"mscfpq/internal/resp"
)

// Frame type tags (first array element of every leader→follower frame).
const (
	frameContinue = "CONTINUE"
	frameFullsync = "FULLSYNC"
	frameSnap     = "SNAP"
	frameSnapEnd  = "SNAPEND"
	frameRec      = "REC"
	frameRotate   = "ROTATE"
	framePing     = "PING"
)

// noHistory is the replid a follower sends when it has no mirrored
// history to resume (fresh directory, non-durable, or mid-install
// crash); it always provokes a FULLSYNC.
const noHistory = "?"

// snapChunk is the SNAP frame payload size. Well under the RESP
// bulk-string bound so framing never fails on a healthy stream.
const snapChunk = 64 << 10

// Failpoints on every replication protocol step, named by which side
// they strike. The leader's send path is tearable (fault.Writer wraps
// the socket); the follower's snapshot receive and journal append are
// torn/failed through the gdb repl.install.*/repl.apply.* points.
const (
	// Leader side.
	FPSend         = "repl.send"
	FPFullsyncSave = "repl.fullsync.save"
	FPFullsyncRead = "repl.fullsync.read"
	// Follower side.
	FPHandshake   = "repl.handshake"
	FPApply       = "repl.apply"
	FPRotate      = "repl.rotate"
	FPStateWrite  = "repl.state.write"
	FPStateRename = "repl.state.rename"
)

var _ = fault.Declare(FPSend, FPFullsyncSave, FPFullsyncRead,
	FPHandshake, FPApply, FPRotate, FPStateWrite, FPStateRename)

// position is a journal stream position: the snapshot/journal pair's
// sequence and a byte offset into that journal's record prefix.
type position struct {
	seq uint64
	off int64
}

func (p position) String() string { return fmt.Sprintf("%d:%d", p.seq, p.off) }

// before reports strict stream order: rotation bumps seq and resets
// off, so positions order lexicographically.
func (p position) before(q position) bool {
	return p.seq < q.seq || (p.seq == q.seq && p.off < q.off)
}

// frameTag returns the type tag of a stream frame.
func frameTag(v resp.Value) (string, error) {
	if v.Kind != resp.Array || len(v.Array) == 0 {
		return "", fmt.Errorf("repl: malformed frame (kind %d, %d elements)", v.Kind, len(v.Array))
	}
	return v.Array[0].Str, nil
}

// frameInt extracts element i of a frame as an integer (the encoder
// sends RESP integers; tolerate decimal bulk strings for symmetry with
// the textual handshake).
func frameInt(v resp.Value, i int) (int64, error) {
	if i >= len(v.Array) {
		return 0, fmt.Errorf("repl: frame %s too short (%d elements)", v.Array[0].Str, len(v.Array))
	}
	e := v.Array[i]
	if e.Kind == resp.Integer {
		return e.Int, nil
	}
	n, err := strconv.ParseInt(e.Str, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: frame %s element %d is not a number: %w", v.Array[0].Str, i, err)
	}
	return n, nil
}
