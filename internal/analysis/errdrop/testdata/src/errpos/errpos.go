// Package errpos holds errdrop true positives: parse/IO errors
// silently discarded.
package errpos

import (
	"encoding/csv"
	"io"
	"strings"

	"mscfpq/internal/cypher"
	"mscfpq/internal/grammar"
)

// statementDrop discards every result of an in-scope parse.
func statementDrop(r io.Reader) {
	grammar.Parse(r) // want `error returned by grammar.Parse is dropped`
}

// deferDrop loses the error behind a defer.
func deferDrop(r io.Reader) {
	defer grammar.Parse(r) // want `error returned by grammar.Parse is dropped`
}

// blankMulti keeps the value but blanks the error.
func blankMulti(src string) *cypher.Query {
	q, _ := cypher.Parse(src) // want `error result of cypher.Parse assigned to _`
	return q
}

// blankSingle discards an error-only result with the blank identifier.
func blankSingle(src string) {
	_, _ = grammar.ParseString(src) // want `error result of grammar.ParseString assigned to _`
}

// flushUnchecked never consults the csv writer's Error method.
func flushUnchecked(rows [][]string) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	for _, row := range rows {
		w.Write(row) // csv is outside the parse/IO scope; only Flush is special-cased
	}
	w.Flush() // want `csv.Writer.Flush without checking w.Error`
	return b.String()
}
