// Package resp implements the Redis serialization protocol (RESP2) and
// a TCP server/client pair exposing the graph database the way
// RedisGraph does: GRAPH.QUERY, GRAPH.EXPLAIN, GRAPH.DELETE and
// GRAPH.LIST commands plus the basic PING/ECHO/QUIT.
package resp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Value is one RESP value. Exactly one field is meaningful per Kind.
type Value struct {
	Kind  Kind
	Str   string  // SimpleString, BulkString, Error
	Int   int64   // Integer
	Array []Value // Array
	Null  bool    // null bulk string / null array
}

// Kind enumerates RESP2 types.
type Kind byte

const (
	SimpleString Kind = '+'
	ErrorString  Kind = '-'
	Integer      Kind = ':'
	BulkString   Kind = '$'
	Array        Kind = '*'
)

// Helpers for building replies.

// OK is the +OK reply.
func OK() Value { return Value{Kind: SimpleString, Str: "OK"} }

// Simple builds a simple string.
func Simple(s string) Value { return Value{Kind: SimpleString, Str: s} }

// Errorf builds an error reply.
func Errorf(format string, args ...any) Value {
	return Value{Kind: ErrorString, Str: fmt.Sprintf(format, args...)}
}

// Bulk builds a bulk string.
func Bulk(s string) Value { return Value{Kind: BulkString, Str: s} }

// Int builds an integer.
func Int(n int64) Value { return Value{Kind: Integer, Int: n} }

// Arr builds an array.
func Arr(vs ...Value) Value { return Value{Kind: Array, Array: vs} }

// NullBulk is the null bulk string.
func NullBulk() Value { return Value{Kind: BulkString, Null: true} }

// Write encodes a value onto w.
func Write(w *bufio.Writer, v Value) error {
	switch v.Kind {
	case SimpleString:
		_, err := fmt.Fprintf(w, "+%s\r\n", v.Str)
		return err
	case ErrorString:
		msg := v.Str
		if !hasErrorCode(msg) {
			msg = "ERR " + msg
		}
		_, err := fmt.Fprintf(w, "-%s\r\n", msg)
		return err
	case Integer:
		_, err := fmt.Fprintf(w, ":%d\r\n", v.Int)
		return err
	case BulkString:
		if v.Null {
			_, err := w.WriteString("$-1\r\n")
			return err
		}
		_, err := fmt.Fprintf(w, "$%d\r\n%s\r\n", len(v.Str), v.Str)
		return err
	case Array:
		if v.Null {
			_, err := w.WriteString("*-1\r\n")
			return err
		}
		if _, err := fmt.Fprintf(w, "*%d\r\n", len(v.Array)); err != nil {
			return err
		}
		for _, e := range v.Array {
			if err := Write(w, e); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("resp: unknown kind %q", v.Kind)
	}
}

// hasErrorCode reports whether an error message already starts with a
// Redis-style uppercase code ("BUSY ...", "LOADING ..."), in which
// case Write must not prepend the default ERR code.
func hasErrorCode(msg string) bool {
	code, _, _ := strings.Cut(msg, " ")
	if len(code) < 3 {
		return false
	}
	for _, r := range code {
		if r < 'A' || r > 'Z' {
			return false
		}
	}
	return true
}

// Busyf builds a Redis-style BUSY error reply — the overload-shedding
// refusal clients may treat as transient and retry.
func Busyf(format string, args ...any) Value {
	return Value{Kind: ErrorString, Str: "BUSY " + fmt.Sprintf(format, args...)}
}

// maxBulkLen bounds bulk payloads (16 MiB) to keep a broken peer from
// forcing huge allocations.
const maxBulkLen = 16 << 20

// maxArrayLen bounds client command arrays (1M elements, Redis's
// multibulk cap): a hostile length prefix must not pre-commit the
// server to unbounded element parsing.
const maxArrayLen = 1 << 20

// Read decodes one value from r.
func Read(r *bufio.Reader) (Value, error) {
	t, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch Kind(t) {
	case SimpleString:
		s, err := readLine(r)
		return Value{Kind: SimpleString, Str: s}, err
	case ErrorString:
		s, err := readLine(r)
		return Value{Kind: ErrorString, Str: s}, err
	case Integer:
		s, err := readLine(r)
		if err != nil {
			return Value{}, err
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("resp: bad integer %q", s)
		}
		return Value{Kind: Integer, Int: n}, nil
	case BulkString:
		s, err := readLine(r)
		if err != nil {
			return Value{}, err
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < -1 || n > maxBulkLen {
			return Value{}, fmt.Errorf("resp: bad bulk length %q", s)
		}
		if n == -1 {
			return Value{Kind: BulkString, Null: true}, nil
		}
		buf := make([]byte, n+2)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Value{}, err
		}
		if buf[n] != '\r' || buf[n+1] != '\n' {
			return Value{}, fmt.Errorf("resp: bulk string missing CRLF")
		}
		return Value{Kind: BulkString, Str: string(buf[:n])}, nil
	case Array:
		s, err := readLine(r)
		if err != nil {
			return Value{}, err
		}
		n, err := strconv.Atoi(s)
		if err != nil || n < -1 || n > maxArrayLen {
			return Value{}, fmt.Errorf("resp: bad array length %q", s)
		}
		if n == -1 {
			return Value{Kind: Array, Null: true}, nil
		}
		out := Value{Kind: Array, Array: make([]Value, 0, min(n, 1024))}
		for i := 0; i < n; i++ {
			e, err := Read(r)
			if err != nil {
				return Value{}, err
			}
			out.Array = append(out.Array, e)
		}
		return out, nil
	default:
		return Value{}, fmt.Errorf("resp: unexpected type byte %q", t)
	}
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) < 2 || line[len(line)-2] != '\r' {
		return "", fmt.Errorf("resp: line missing CRLF")
	}
	return line[:len(line)-2], nil
}

// Strings extracts a command's words from a client array.
func Strings(v Value) ([]string, error) {
	if v.Kind != Array || v.Null {
		return nil, fmt.Errorf("resp: expected command array")
	}
	out := make([]string, len(v.Array))
	for i, e := range v.Array {
		switch e.Kind {
		case BulkString, SimpleString:
			out[i] = e.Str
		default:
			return nil, fmt.Errorf("resp: command element %d is not a string", i)
		}
	}
	return out, nil
}
