package difftest

import (
	"math/rand"
	"testing"

	"mscfpq/internal/gen"
)

// The four standing metamorphic invariants (documented in DESIGN.md):
//
//  1. chunk-union: the union of multiple-source answers over any chunking
//     of the source set equals the source-restricted all-pairs relation;
//  2. index reuse: the smart index is order-independent and idempotent;
//  3. path replay: extracted single paths replay to valid derivations;
//  4. governed-abort soundness: budgeted/cancelled runs never return a
//     wrong partial answer, and aborted index queries roll back.
//
// Each invariant runs over its own seeded instance stream so adding or
// resizing one stream never perturbs the others.

func runMetamorphic(t *testing.T, offset int64, check func(inst gen.Instance, rng *rand.Rand) error) {
	t.Helper()
	failures := 0
	for i := 0; i < metamorphicCases; i++ {
		seed := *seedFlag + offset + int64(i)
		inst := gen.NewInstance(seed, maxGraphVertices)
		rng := rand.New(rand.NewSource(seed))
		if err := check(inst, rng); err != nil {
			dir, werr := WriteRepro(inst)
			if werr != nil {
				t.Logf("writing repro: %v", werr)
			}
			t.Errorf("seed %d (rerun: go test ./internal/difftest -seed=%d): %v\nrepro dumped to %s",
				seed, seed, err, dir)
			if failures++; failures >= 3 {
				t.Fatalf("stopping after %d failing instances", failures)
			}
		}
	}
}

func TestMetamorphicChunkUnion(t *testing.T) {
	runMetamorphic(t, 3_000_000, func(inst gen.Instance, rng *rand.Rand) error {
		return CheckChunkUnion(inst, 1+rng.Intn(4))
	})
}

func TestMetamorphicIndexReuse(t *testing.T) {
	runMetamorphic(t, 4_000_000, func(inst gen.Instance, rng *rand.Rand) error {
		return CheckIndexReuse(inst, 1+rng.Intn(4))
	})
}

func TestMetamorphicPathReplay(t *testing.T) {
	runMetamorphic(t, 5_000_000, func(inst gen.Instance, rng *rand.Rand) error {
		return CheckPathReplay(inst)
	})
}

func TestMetamorphicGovernedAbort(t *testing.T) {
	runMetamorphic(t, 6_000_000, func(inst gen.Instance, rng *rand.Rand) error {
		return CheckGoverned(inst, 1+rng.Int63n(governedBudgetSpan))
	})
}
