package obs

import (
	"sync"
	"time"
)

// SlowLogEntry is one slow or aborted query, as the SLOWLOG command
// reports it.
type SlowLogEntry struct {
	ID       int64 // monotonically increasing, survives ring eviction
	Time     time.Time
	Graph    string
	Query    string
	Duration time.Duration
	Status   string // "slow" or "aborted"
	Work     int64  // relation entries produced (governor charge)
	Err      string // non-empty for aborted queries
}

// SlowLog is a fixed-capacity ring buffer of slow-query entries, fed
// by the database policy's slow-query path and served by the RESP
// SLOWLOG GET/RESET/LEN commands.
type SlowLog struct {
	mu   sync.Mutex
	ring []SlowLogEntry // guarded by mu
	head int            // guarded by mu: next write position
	n    int            // guarded by mu: live entries (<= cap)
	next int64          // guarded by mu: next entry id
}

// NewSlowLog returns a ring holding the most recent capacity entries
// (minimum 1).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SlowLog{ring: make([]SlowLogEntry, capacity)}
}

// Add appends an entry, evicting the oldest once full, and returns the
// assigned id.
func (l *SlowLog) Add(e SlowLogEntry) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.ID = l.next
	l.next++
	l.ring[l.head] = e
	l.head = (l.head + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	return e.ID
}

// Entries returns up to n entries, newest first (n <= 0 means all).
func (l *SlowLog) Entries(n int) []SlowLogEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > l.n {
		n = l.n
	}
	out := make([]SlowLogEntry, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.head-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Len returns the number of live entries.
func (l *SlowLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Reset discards all entries (ids keep increasing, like Redis).
func (l *SlowLog) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.head = 0
	l.n = 0
}
