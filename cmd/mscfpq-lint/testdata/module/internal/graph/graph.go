// Package graph is a miniature in-scope layer for the driver tests:
// its package-path suffix puts its error returns under errdrop.
package graph

import "errors"

// Load fails on empty input.
func Load(s string) error {
	if s == "" {
		return errors.New("graph: empty input")
	}
	return nil
}
