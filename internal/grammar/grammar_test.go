package grammar

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	g, err := ParseString(`
		# same-generation
		S -> a S b | a b
		S -> eps
	`)
	if err != nil {
		t.Fatal(err)
	}
	if g.Start != "S" {
		t.Fatalf("start = %q", g.Start)
	}
	if len(g.Prods) != 3 {
		t.Fatalf("prods = %d, want 3", len(g.Prods))
	}
	if got := g.Terminals(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("terminals = %v", got)
	}
	if got := g.Nonterminals(); !reflect.DeepEqual(got, []string{"S"}) {
		t.Fatalf("nonterminals = %v", got)
	}
	if len(g.Prods[2].RHS) != 0 {
		t.Fatal("eps alternative should have empty RHS")
	}
}

func TestParseMultipleNonterminals(t *testing.T) {
	g, err := ParseString(`
		S -> A B
		A -> a | a A
		B -> b
	`)
	if err != nil {
		t.Fatal(err)
	}
	// "A" and "B" must be recognized as nonterminals in S's RHS even
	// though their productions come later.
	for _, s := range g.Prods[0].RHS {
		if s.Term {
			t.Fatalf("symbol %q parsed as terminal", s.Name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"S a b",        // missing arrow
		"S X -> a",     // space in LHS
		"S -> a |",     // empty alternative
		"S -> a eps b", // eps not alone
		"-> a",         // empty LHS
	}
	for _, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("ParseString(%q): expected error", src)
		}
	}
}

func TestValidateRejectsUndefinedStart(t *testing.T) {
	_, err := New("X", []Production{{LHS: "S", RHS: []Symbol{T("a")}}})
	if err == nil {
		t.Fatal("expected error for undefined start")
	}
}

func TestStringRoundTrip(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("a"), N("S"), T("b")}},
		{LHS: "S"},
	})
	back, err := ParseString(g.String())
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, g.String())
	}
	if back.String() != g.String() {
		t.Fatalf("round trip changed grammar:\n%s\nvs\n%s", g, back)
	}
}

func TestInverseLabel(t *testing.T) {
	if InverseLabel("subClassOf") != "subClassOf_r" {
		t.Fatal("forward inverse wrong")
	}
	if InverseLabel("subClassOf_r") != "subClassOf" {
		t.Fatal("backward inverse wrong")
	}
	if !IsInverseLabel("x_r") || IsInverseLabel("x") {
		t.Fatal("IsInverseLabel wrong")
	}
}

func TestWCNFShapes(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("a"), N("S"), T("b")}},
		{LHS: "S", RHS: []Symbol{T("a"), T("b")}},
	})
	w, err := ToWCNF(g)
	if err != nil {
		t.Fatal(err)
	}
	// Every bin rule references valid ids; every term rule too.
	for _, r := range w.BinRules {
		for _, id := range []int{r.A, r.B, r.C} {
			if id < 0 || id >= len(w.Nonterms) {
				t.Fatalf("bin rule id %d out of range", id)
			}
		}
	}
	for _, r := range w.TermRules {
		if r.A < 0 || r.A >= len(w.Nonterms) || r.Term < 0 || r.Term >= len(w.Terms) {
			t.Fatalf("term rule out of range: %+v", r)
		}
	}
	if w.NontermID("S") != w.Start {
		t.Fatal("start id mismatch")
	}
	if w.TermID("a") < 0 || w.TermID("b") < 0 || w.TermID("zzz") != -1 {
		t.Fatal("TermID lookup wrong")
	}
	// byTerm must cover both terminals.
	for _, term := range []string{"a", "b"} {
		if len(w.NontermsForTerm(w.TermID(term))) == 0 {
			t.Fatalf("no nonterminal produces %q", term)
		}
	}
}

func TestWCNFPaperExample(t *testing.T) {
	// Section 2.3: S -> cSd | cyd over terminals c, d, y. After WCNF the
	// language must be {c^n y d^n}.
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("c"), N("S"), T("d")}},
		{LHS: "S", RHS: []Symbol{T("c"), T("y"), T("d")}},
	})
	w := MustWCNF(g)
	if !w.Accepts([]string{"c", "y", "d"}) {
		t.Fatal("cyd rejected")
	}
	if !w.Accepts([]string{"c", "c", "c", "y", "d", "d", "d"}) {
		t.Fatal("cccyddd rejected")
	}
	for _, bad := range [][]string{
		{}, {"c", "d"}, {"y"}, {"c", "y"}, {"c", "y", "d", "d"}, {"d", "y", "c"},
	} {
		if w.Accepts(bad) {
			t.Fatalf("accepted %v", bad)
		}
	}
}

func TestWCNFKeepsEpsilon(t *testing.T) {
	w := MustWCNF(Dyck1("a", "b"))
	if !w.Accepts(nil) {
		t.Fatal("Dyck must accept the empty word")
	}
	if !w.Accepts([]string{"a", "b", "a", "a", "b", "b"}) {
		t.Fatal("ab aabb rejected")
	}
	if w.Accepts([]string{"a"}) || w.Accepts([]string{"b", "a"}) {
		t.Fatal("unbalanced word accepted")
	}
}

func TestWCNFUnitRules(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{N("A")}},
		{LHS: "A", RHS: []Symbol{N("B")}},
		{LHS: "B", RHS: []Symbol{T("x")}},
	})
	w := MustWCNF(g)
	if !w.Accepts([]string{"x"}) {
		t.Fatal("unit chain S->A->B->x rejected")
	}
	if w.Accepts([]string{"x", "x"}) {
		t.Fatal("xx accepted")
	}
	// After unit elimination no rule may have a 1-nonterminal RHS; our
	// representation cannot even express it, so check S gained B's rule.
	found := false
	for _, r := range w.TermRules {
		if r.A == w.Start && w.Terms[r.Term] == "x" {
			found = true
		}
	}
	if !found {
		t.Fatal("unit elimination did not copy terminal rule to start")
	}
}

func TestWCNFLongRuleBinarization(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("a"), T("b"), T("c"), T("d"), T("e")}},
	})
	w := MustWCNF(g)
	if !w.Accepts([]string{"a", "b", "c", "d", "e"}) {
		t.Fatal("abcde rejected")
	}
	for _, bad := range [][]string{
		{"a", "b", "c", "d"},
		{"a", "b", "c", "d", "e", "e"},
		{"e", "d", "c", "b", "a"},
	} {
		if w.Accepts(bad) {
			t.Fatalf("accepted %v", bad)
		}
	}
}

// Property: every word sampled from a random derivation of the original
// grammar is accepted by its WCNF form, and enumeration of small words
// agrees exactly with WCNF membership over all short candidate words.
func TestWCNFPreservesLanguage(t *testing.T) {
	grammars := map[string]*Grammar{
		"anbn": AnBn("a", "b"),
		"dyck": Dyck1("a", "b"),
		"g2ish": MustNew("S", []Production{
			{LHS: "S", RHS: []Symbol{T("x_r"), N("S"), T("x")}},
			{LHS: "S", RHS: []Symbol{T("x")}},
		}),
		"units": MustNew("S", []Production{
			{LHS: "S", RHS: []Symbol{N("A")}},
			{LHS: "A", RHS: []Symbol{T("a"), N("A"), T("b")}},
			{LHS: "A", RHS: []Symbol{N("B")}},
			{LHS: "B", RHS: []Symbol{T("c")}},
			{LHS: "B"},
		}),
	}
	for name, g := range grammars {
		g := g
		t.Run(name, func(t *testing.T) {
			w := MustWCNF(g)
			rng := rand.New(rand.NewSource(7))
			sampled := 0
			for i := 0; i < 200 && sampled < 40; i++ {
				word, ok := Sample(g, rng, 60)
				if !ok {
					continue
				}
				sampled++
				if !w.Accepts(word) {
					t.Fatalf("WCNF rejects sampled word %v\noriginal:\n%s\nwcnf:\n%s", word, g, w)
				}
			}
			if sampled == 0 {
				t.Fatal("sampler produced no words")
			}
			// Exhaustive agreement on all words up to length 6 over the
			// grammar's terminals.
			const maxLen = 6
			lang := Enumerate(g, maxLen)
			terms := g.Terminals()
			var words [][]string
			var build func(cur []string)
			build = func(cur []string) {
				words = append(words, append([]string(nil), cur...))
				if len(cur) == maxLen {
					return
				}
				for _, tm := range terms {
					build(append(cur, tm))
				}
			}
			build(nil)
			for _, word := range words {
				inLang := lang[strings.Join(word, " ")]
				if got := w.Accepts(word); got != inLang {
					t.Fatalf("word %v: WCNF=%v enumeration=%v", word, got, inLang)
				}
			}
		})
	}
}

func TestQueryGrammarsWellFormed(t *testing.T) {
	for name, g := range map[string]*Grammar{
		"G1": G1(), "G2": G2(), "Geo": Geo(),
		"SameGen": SameGen("p", "q", "r"),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if _, err := ToWCNF(g); err != nil {
			t.Errorf("%s: WCNF: %v", name, err)
		}
	}
}

func TestG2Language(t *testing.T) {
	w := MustWCNF(G2())
	u, d := "subClassOf_r", "subClassOf"
	if !w.Accepts([]string{d}) {
		t.Fatal("single subClassOf rejected")
	}
	if !w.Accepts([]string{u, u, d, d, d}) {
		t.Fatal("u u d d d rejected")
	}
	if w.Accepts([]string{u, d, d, d}) {
		t.Fatal("u d d d accepted") // would need S => d d, not derivable
	}
	if w.Accepts([]string{u}) {
		t.Fatal("bare inverse accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile("/nonexistent/grammar.txt"); err == nil {
		t.Fatal("expected error for missing file")
	}
}
