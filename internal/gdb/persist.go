package gdb

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mscfpq/internal/cypher"
	"mscfpq/internal/graph"
	"mscfpq/internal/store"
)

// Graph stores serialize as the textual graph format (internal/graph)
// followed by property lines:
//
//	prop <vertex> <key> s <string-value (quoted)>
//	prop <vertex> <key> i <int-value>
//
// The server exposes this as GRAPH.DUMP / GRAPH.RESTORE.

// WriteStore serializes a graph store. It pins one snapshot, so the
// dump is a consistent version even while writes proceed.
func WriteStore(w io.Writer, s *GraphStore) error {
	snap := s.Snapshot()
	g := snap.Graph()
	bw := bufio.NewWriter(w)
	if err := graph.Write(bw, g); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		props := snap.Props(v)
		if len(props) == 0 {
			continue
		}
		// Deterministic order for reproducible dumps.
		keys := make([]string, 0, len(props))
		for k := range props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			val := props[k]
			if val.IsInt {
				fmt.Fprintf(bw, "prop %d %s i %d\n", v, k, val.Int)
			} else {
				fmt.Fprintf(bw, "prop %d %s s %s\n", v, k, strconv.Quote(val.Str))
			}
		}
	}
	return bw.Flush()
}

// ReadStore deserializes a graph store written by WriteStore.
func ReadStore(r io.Reader) (*GraphStore, error) {
	// Split property lines from the graph body: the graph reader rejects
	// them, so filter in one pass.
	var graphLines, propLines []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "prop ") {
			propLines = append(propLines, strings.TrimSpace(line))
		} else {
			graphLines = append(graphLines, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gdb: read store: %w", err)
	}
	g, err := graph.Read(strings.NewReader(strings.Join(graphLines, "\n")))
	if err != nil {
		return nil, err
	}
	s := NewGraphStore(g)
	if len(propLines) > 0 {
		// One versioned update for the whole property block: the
		// restored store lands at version 1, not one version per line.
		if _, err := s.st.Update(func(tx *store.Tx) error {
			for _, line := range propLines {
				fields := strings.SplitN(line, " ", 5)
				if len(fields) != 5 {
					return fmt.Errorf("gdb: bad prop line %q", line)
				}
				v, err := strconv.Atoi(fields[1])
				if err != nil || v < 0 || v >= g.NumVertices() {
					return fmt.Errorf("gdb: bad prop vertex %q", fields[1])
				}
				key := fields[2]
				switch fields[3] {
				case "i":
					n, err := strconv.ParseInt(fields[4], 10, 64)
					if err != nil {
						return fmt.Errorf("gdb: bad int prop %q", fields[4])
					}
					tx.SetProp(v, key, cypher.Value{Int: n, IsInt: true})
				case "s":
					str, err := strconv.Unquote(fields[4])
					if err != nil {
						return fmt.Errorf("gdb: bad string prop %q", fields[4])
					}
					tx.SetProp(v, key, cypher.Value{Str: str})
				default:
					return fmt.Errorf("gdb: unknown prop kind %q", fields[3])
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dump serializes the named graph to a string.
func (db *DB) Dump(name string) (string, error) {
	s, err := db.Get(name)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := WriteStore(&b, s); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Restore loads a dumped graph under the given name, replacing any
// existing graph. On a durable database the restore is journaled (and
// fsynced) before it is applied.
func (db *DB) Restore(name, dump string) error {
	s, err := ReadStore(strings.NewReader(dump))
	if err != nil {
		return err
	}
	var old *GraphStore
	err = db.commit(journalOp{op: opRestore, name: name, arg: dump}, func() {
		db.mu.Lock()
		old = db.graphs[name]
		db.graphs[name] = s
		db.mu.Unlock()
	})
	if err != nil {
		return err
	}
	// The replaced incarnation's cached results can never be keyed as
	// the new store's (fresh store id), but drop them to free budget.
	if old != nil {
		db.cache.DropStore(old.StoreID())
	}
	return nil
}
