package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// The shipped query files and the Figure 1 example graph must keep
// working through the CLI (they are the documented quickstart inputs).
func TestShippedAssets(t *testing.T) {
	root := filepath.Join("..", "..")
	graphPath := filepath.Join(root, "testdata", "example_graph.txt")
	out, err := runCLI(t, "-graph", graphPath,
		"-grammar", filepath.Join(root, "queries", "cnd.txt"),
		"-algo", "allpairs")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's c^n y d^n relation on the Figure 1 graph.
	for _, want := range []string{"2 result pairs", "3 -> 4", "4 -> 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Every shipped grammar must parse and normalize through the CLI
	// (empty results are fine on this small graph).
	for _, q := range []string{"g1.txt", "g2.txt", "geo.txt", "anbn.txt"} {
		if _, err := runCLI(t, "-graph", graphPath,
			"-grammar", filepath.Join(root, "queries", q), "-algo", "allpairs"); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
}
