package main

import (
	"io"
	"log"
	"os"
	"path/filepath"
	"testing"
)

func silentLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func TestBuildDBLoadAndSeed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	if err := os.WriteFile(path, []byte("0 a 1\n1 a 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := buildDB("", []string{"mine=" + path}, []string{"core@0.1"}, silentLogger())
	if err != nil {
		t.Fatal(err)
	}
	names := db.List()
	if len(names) != 2 || names[0] != "core" || names[1] != "mine" {
		t.Fatalf("graphs = %v", names)
	}
	s, err := db.Get("mine")
	if err != nil || !s.Graph().HasEdge(0, "a", 1) {
		t.Fatalf("loaded graph wrong: %v", err)
	}
}

func TestBuildDBErrors(t *testing.T) {
	cases := []struct{ loads, seeds []string }{
		{loads: []string{"noequals"}},
		{loads: []string{"g=/nonexistent"}},
		{seeds: []string{"unknown-graph"}},
		{seeds: []string{"core@0"}},
		{seeds: []string{"core@abc"}},
	}
	for i, c := range cases {
		if _, err := buildDB("", c.loads, c.seeds, silentLogger()); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestBuildDBDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := buildDB(dir, nil, []string{"core@0.1"}, silentLogger())
	if err != nil {
		t.Fatal(err)
	}
	if !db.Durable() || db.DataDir() != dir {
		t.Fatal("data-dir database is not durable")
	}
	// Journaled work survives a close/reopen cycle; a snapshot captures
	// the full image, seeded graphs included.
	if _, err := db.Query("g", `CREATE (a:N)-[:e]->(b:N)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := buildDB(dir, nil, nil, silentLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db2.Get("g"); err != nil {
		t.Fatalf("created graph not recovered: %v", err)
	}
	if _, err := db2.Get("core"); err != nil {
		t.Fatalf("snapshotted seed graph not recovered: %v", err)
	}
}

func TestListFlag(t *testing.T) {
	var l listFlag
	if err := l.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("b"); err != nil {
		t.Fatal(err)
	}
	if l.String() != "a,b" || len(l) != 2 {
		t.Fatalf("listFlag = %v", l)
	}
}
