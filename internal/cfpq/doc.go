// Package cfpq implements the paper's context-free path querying
// algorithms in terms of sparse Boolean linear algebra:
//
//   - AllPairs: Azimov's matrix-based all-pairs algorithm (Algorithm 1),
//     the baseline the paper modifies;
//   - MultiSource: the multiple-source algorithm (Algorithm 2), which
//     restricts computation to paths starting from a given vertex set by
//     threading source matrices TSrc^A through the fixpoint;
//   - Index.MultiSourceSmart: the optimized multiple-source algorithm
//     (Algorithm 3), which caches previously computed sources across
//     queries so each vertex is processed at most once;
//   - SinglePath: all-pairs querying with single-path semantics
//     (Terekhov et al., GRADES-NDA'20; the paper's Figure 2 experiment),
//     which records one witness derivation per reachability fact and can
//     reconstruct a concrete path for any result pair;
//   - Worklist: a classic non-linear-algebra CFL-reachability solver used
//     as the comparison baseline the paper's future-work section calls
//     for.
//
// All algorithms accept grammars in weak Chomsky normal form
// (grammar.WCNF) and graphs as Boolean label-matrix decompositions
// (graph.Graph). Terminal symbols are resolved against edge labels
// (including the "x_r" inverse convention) and vertex labels: a rule
// A -> y where y labels vertices contributes the diagonal vertex matrix
// V^y, matching Definition 2.14's interleaving of vertex labels into
// path words.
package cfpq
