package cfpq

import (
	"fmt"
	"sync"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
)

// Index is the persistent cache of the optimized multiple-source
// algorithm (Algorithm 3): it pins a graph and a grammar and accumulates
// the relation matrices T and the already-processed source matrices
// TSrc across queries, so repeated or overlapping source sets reuse all
// previously computed facts instead of recomputing them from scratch.
//
// An Index is bound to an immutable snapshot of the graph: mutating the
// graph after NewIndex invalidates the cache (the paper's setting —
// static graph, repeated queries). Queries against one Index may run
// from multiple goroutines; they are serialized internally.
//
// Cancellation safety: each query runs its fixpoint on private clones
// of the cached matrices and folds them back only after the fixpoint
// completes. A query aborted by its context, timeout, or budget leaves
// the cache exactly as it found it — the index never publishes a
// half-grown (T, TSrc) pair.
type Index struct {
	G *graph.Graph
	W *grammar.WCNF

	mu   sync.Mutex
	T    []*matrix.Bool // guarded by mu: cached relation matrices, grown monotonically
	TSrc []*matrix.Bool // guarded by mu: sources already fully processed, per nonterminal

	opts    exec.Options
	queries int // guarded by mu
}

// NewIndex creates an empty cache for (g, w), seeding T from the simple
// and eps rules once; subsequent queries share the seeded matrices. The
// options become per-index defaults; per-query options layered on top
// via MultiSourceSmart override them.
func NewIndex(g *graph.Graph, w *grammar.WCNF, opts ...Option) (*Index, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	idx := &Index{G: g, W: w, opts: exec.Build(opts)}
	r := newResult(w, n)
	initSimpleRules(r, g)
	initEpsRules(r, n)
	idx.T = r.T
	idx.TSrc = make([]*matrix.Bool, w.NumNonterms())
	for a := range idx.TSrc {
		idx.TSrc[a] = matrix.NewBool(n, n)
	}
	return idx, nil
}

// NewIndexWarm creates an index for (g, w) seeded from a prior index's
// accumulated relations — the warm start of the incremental re-query
// path: when a graph version grows out of an older one by edge and
// vertex ADDITIONS only (the gdb write path never deletes), every fact
// the old index derived remains derivable, because CFPQ facts are
// monotone under edge addition. Seeding T with them can therefore only
// skip work, never change answers. The processed-source matrices start
// EMPTY: a source fully processed against the old graph may reach new
// facts through the added edges, so its claim must not carry over —
// the first query touching it reprocesses it against the new graph.
//
// The caller is responsible for the supergraph relationship (in the
// store layer it follows from version lineage); w must be the prior
// index's grammar.
func NewIndexWarm(g *graph.Graph, w *grammar.WCNF, prior *Index, opts ...Option) (*Index, error) {
	idx, err := NewIndex(g, w, opts...)
	if err != nil {
		return nil, err
	}
	if prior == nil {
		return idx, nil
	}
	if prior.W != w {
		return nil, fmt.Errorf("cfpq: warm start requires the prior index's grammar")
	}
	n := g.NumVertices()
	if pn := prior.G.NumVertices(); pn > n {
		return nil, fmt.Errorf("cfpq: warm start from a larger graph (%d > %d vertices)", pn, n)
	}
	prior.mu.Lock()
	defer prior.mu.Unlock()
	// idx is unpublished, but its invariants are mu-guarded; taking the
	// lock is free here and keeps the guarantee machine-checked.
	idx.mu.Lock()
	defer idx.mu.Unlock()
	for a := range idx.T {
		if prior.T[a].NVals() == 0 {
			continue
		}
		warm := prior.T[a].Clone()
		warm.Resize(n, n)
		matrix.AddInPlace(idx.T[a], warm)
	}
	return idx, nil
}

// Queries returns the number of queries evaluated against the index.
func (idx *Index) Queries() int {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return idx.queries
}

// CachedSources returns the set of vertices whose start-nonterminal
// paths are already fully computed.
func (idx *Index) CachedSources() *matrix.Vector {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return matrix.DiagVector(idx.TSrc[idx.W.Start])
}

// MultiSourceSmart evaluates a multiple-source query against the cache
// (Algorithm 3). Vertices of src already present in the index are
// filtered out up front (line 3); during the fixpoint, propagated
// sources are filtered against the cached TSrc (lines 9-10) so each
// vertex is processed at most once per nonterminal across the lifetime
// of the index.
func (idx *Index) MultiSourceSmart(src *matrix.Vector, opts ...Option) (*MSResult, error) {
	if src == nil {
		return nil, fmt.Errorf("cfpq: nil source vector")
	}
	return idx.MultiSourceSmartFrom(map[int]*matrix.Vector{idx.W.Start: src}, opts...)
}

// MultiSourceSmartFrom is the generalization of Algorithm 3 the database
// layer uses (Section 4.3.2): source sets may be requested for arbitrary
// nonterminals (the named path patterns an operation depends on), and
// the cache is shared across all of them.
//
// The returned result holds a private snapshot of the relations as of
// this query's commit, safe to read while later queries grow the cache.
func (idx *Index) MultiSourceSmartFrom(srcByNT map[int]*matrix.Vector, opts ...Option) (*MSResult, error) {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	run, cancel := idx.opts.Apply(opts).Start()
	defer cancel()
	n := idx.G.NumVertices()
	w := idx.W
	nnt := w.NumNonterms()

	newSrc := make([]*matrix.Bool, nnt)
	for a := range newSrc {
		newSrc[a] = matrix.NewBool(n, n)
	}
	requested := matrix.NewVector(n)
	// Line 3: only sources not yet in the cache enter the computation.
	for a, src := range srcByNT {
		if a < 0 || a >= nnt {
			return nil, fmt.Errorf("cfpq: source nonterminal id %d out of range", a)
		}
		if src == nil || src.Size() != n {
			return nil, fmt.Errorf("cfpq: source vector size mismatch (graph has %d vertices)", n)
		}
		fresh := src.Clone()
		fresh.DiffInPlace(matrix.DiagVector(idx.TSrc[a]))
		matrix.AddInPlace(newSrc[a], fresh.Diag())
		if a == w.Start {
			requested = src.Clone()
		}
	}
	idx.queries++

	// The fixpoint mutates private clones of the cached relations; the
	// cache itself is only touched by the commit below, so an abort
	// (cancellation, timeout, budget) rolls back for free.
	work := make([]*matrix.Bool, nnt)
	for a := range work {
		work[a] = idx.T[a].Clone()
	}

	rounds := 0
	for changed := true; changed; {
		if err := run.Err(); err != nil {
			return nil, err
		}
		changed = false
		rounds++
		span := run.StartSpan(obs.SpanRound(rounds))
		for _, rule := range w.BinRules {
			run.ObserveFrontier(newSrc[rule.A].NVals())
			m, err := run.Mul(newSrc[rule.A], work[rule.B])
			if err != nil {
				span.End()
				return nil, err
			}
			prod, err := run.Mul(m, work[rule.C])
			if err != nil {
				span.End()
				return nil, err
			}
			if run.Add(work[rule.A], prod) {
				changed = true
			}
			// TNewSrc^B += TNewSrc^A \ index.TSrc^B (line 9).
			deltaB := matrix.Sub(newSrc[rule.A], idx.TSrc[rule.B])
			if run.Add(newSrc[rule.B], deltaB) {
				changed = true
			}
			// TNewSrc^C += getDst(M) \ index.TSrc^C (line 10).
			deltaC := matrix.Sub(matrix.GetDst(m), idx.TSrc[rule.C])
			if run.Add(newSrc[rule.C], deltaC) {
				changed = true
			}
		}
		span.End()
	}
	obs.CFPQRounds.Observe(int64(rounds))

	// Commit: fold the fully-computed facts and processed sources into
	// the cache. AddInPlace (rather than pointer replacement) keeps the
	// matrices previously handed out by Relation growing monotonically.
	srcSnap := make([]*matrix.Bool, nnt)
	for a := range work {
		matrix.AddInPlace(idx.T[a], work[a])
		matrix.AddInPlace(idx.TSrc[a], newSrc[a])
		srcSnap[a] = idx.TSrc[a].Clone()
	}
	return &MSResult{
		Result:  &Result{W: w, T: work, Rounds: rounds, Work: run.Spent()},
		Src:     srcSnap,
		Sources: requested,
	}, nil
}

// Relation returns the cached relation matrix for a nonterminal id. The
// matrix is shared with the index and grows as queries are evaluated.
func (idx *Index) Relation(a int) *matrix.Bool {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return idx.T[a]
}

// ProcessedSources returns the vertices already fully processed for a
// nonterminal id — the diagonal of the cached TSrc matrix.
func (idx *Index) ProcessedSources(a int) *matrix.Vector {
	idx.mu.Lock()
	defer idx.mu.Unlock()
	return matrix.DiagVector(idx.TSrc[a])
}
