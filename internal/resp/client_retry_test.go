package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"syscall"
	"testing"

	"mscfpq/internal/gdb"
	"mscfpq/internal/graph"
)

func TestIsBrokenConn(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("some app error"), false},
		{&ServerError{Msg: "ERR nope"}, false},
		{io.EOF, true},
		{io.ErrUnexpectedEOF, true},
		{net.ErrClosed, true},
		{fmt.Errorf("wrapped: %w", syscall.ECONNRESET), true},
		{fmt.Errorf("wrapped: %w", syscall.EPIPE), true},
		{&net.OpError{Op: "read", Err: errors.New("boom")}, true},
	}
	for _, c := range cases {
		if got := IsBrokenConn(c.err); got != c.want {
			t.Errorf("IsBrokenConn(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestLeaderHint(t *testing.T) {
	hint, ok := LeaderHint(&ServerError{Msg: "READONLY replica of 10.1.2.3:6380; write commands must go to the leader"})
	if !ok || hint != "10.1.2.3:6380" {
		t.Fatalf("LeaderHint = %q, %v", hint, ok)
	}
	// Wrapped errors still carry the hint.
	hint, ok = LeaderHint(fmt.Errorf("query failed: %w", &ServerError{Msg: "READONLY replica of h:1; no"}))
	if !ok || hint != "h:1" {
		t.Fatalf("wrapped LeaderHint = %q, %v", hint, ok)
	}
	for _, err := range []error{
		nil,
		errors.New("READONLY replica of h:1; not a ServerError"),
		&ServerError{Msg: "ERR unknown command"},
		&ServerError{Msg: "READONLY replica of ; empty"},
	} {
		if _, ok := LeaderHint(err); ok {
			t.Errorf("LeaderHint(%v) unexpectedly ok", err)
		}
	}
}

// flakyServer accepts one connection and drops it cold (no reply), then
// serves +PONG to every command on later connections — the shape of a
// server restart under a pooled client.
func flakyServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		first, err := ln.Accept()
		if err != nil {
			return
		}
		first.Close() // the "crash": the dialed connection dies under the client
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				r := bufio.NewReader(c)
				for {
					if _, err := Read(r); err != nil {
						return
					}
					if _, err := c.Write([]byte("+PONG\r\n")); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestDoRetryRedialsBrokenConnection(t *testing.T) {
	addr := flakyServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Plain Do sees the broken connection as a hard failure...
	if _, err := c.Do("PING"); !IsBrokenConn(err) {
		t.Fatalf("Do on a dropped connection: %v, want broken-conn error", err)
	}
	// ...DoRetry redials and completes on the revived server.
	v, err := c.DoRetry(4, "PING")
	if err != nil || v.Str != "PONG" {
		t.Fatalf("DoRetry after drop = %+v, %v", v, err)
	}
	// The healed connection keeps serving without further retries.
	if _, err := c.Do("PING"); err != nil {
		t.Fatalf("Do after redial: %v", err)
	}
}

func TestDoRetryDoesNotRetryHardErrors(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.DoRetry(5, "NOSUCH")
	var se *ServerError
	if !errors.As(err, &se) || se.Transient() {
		t.Fatalf("DoRetry(NOSUCH) = %v, want immediate hard ServerError", err)
	}
}

// startReplicaPair starts a leader and a read-only replica server; the
// replica's database carries the leader's address so writes bounce with
// the routing hint. (Stream replication is internal/repl's concern —
// here the replica's graph is provisioned directly, the routing layer
// under test only cares about the READONLY contract.)
func startReplicaPair(t *testing.T) (leaderAddr, replicaAddr string) {
	t.Helper()
	mkGraph := func() *graph.Graph {
		g := graph.New(2)
		g.AddEdge(0, "a", 1)
		return g
	}
	ldb := gdb.New()
	ldb.AddGraph("g", mkGraph())
	lsrv := NewServer(ldb)
	laddr, err := lsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go lsrv.Serve()
	t.Cleanup(lsrv.Close)

	rdb := gdb.New()
	rdb.AddGraph("g", mkGraph())
	rdb.SetReplicaSource(laddr.String())
	rsrv := NewServer(rdb)
	raddr, err := rsrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rsrv.Serve()
	t.Cleanup(rsrv.Close)
	return laddr.String(), raddr.String()
}

func TestRoutingClientFollowsLeaderHint(t *testing.T) {
	leaderAddr, replicaAddr := startReplicaPair(t)

	// Bootstrapped against the replica: the first write comes back
	// READONLY and the client re-routes to the hinted leader.
	rc := NewRoutingClient(replicaAddr)
	defer rc.Close()
	if _, err := rc.Write("GRAPH.QUERY", "w", `CREATE (a:N)-[:e]->(b:N)`); err != nil {
		t.Fatalf("routed write: %v", err)
	}
	if rc.Leader() != leaderAddr {
		t.Fatalf("leader after hint = %s, want %s", rc.Leader(), leaderAddr)
	}
	// Later writes go straight to the leader.
	if _, err := rc.Write("GRAPH.QUERY", "w", `CREATE (c:M)`); err != nil {
		t.Fatalf("second write: %v", err)
	}
}

func TestRoutingClientReadsFromReplicas(t *testing.T) {
	leaderAddr, replicaAddr := startReplicaPair(t)
	rc := NewRoutingClient(leaderAddr, replicaAddr)
	defer rc.Close()
	v, err := rc.Read("GRAPH.QUERY", "g", `MATCH (v)-[:a]->(u) RETURN v, u`)
	if err != nil {
		t.Fatalf("replica read: %v", err)
	}
	if v.Kind != Array || len(v.Array) != 3 {
		t.Fatalf("replica read reply shape: %+v", v)
	}
	// A write through the same handle stays on the leader.
	if _, err := rc.Write("GRAPH.QUERY", "g", `CREATE (x:X)`); err != nil {
		t.Fatalf("write with replicas configured: %v", err)
	}
}

func TestRoutingClientFallsBackToLeader(t *testing.T) {
	leaderAddr, _ := startReplicaPair(t)
	// The only replica is a dead address; reads must fall back.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	rc := NewRoutingClient(leaderAddr, deadAddr)
	defer rc.Close()
	if _, err := rc.Read("GRAPH.LIST"); err != nil {
		t.Fatalf("read with dead replica: %v", err)
	}
}

func TestServerReadOnlyReplyAndInfo(t *testing.T) {
	leaderAddr, replicaAddr := startReplicaPair(t)
	c, err := Dial(replicaAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Writes bounce with the READONLY code (no ERR prefix) and the
	// leader address embedded.
	_, err = c.Do("GRAPH.QUERY", "g", `CREATE (z:Z)`)
	hint, ok := LeaderHint(err)
	if !ok || hint != leaderAddr {
		t.Fatalf("replica write rejection carried hint %q, %v (err=%v)", hint, ok, err)
	}
	// Reads pass through.
	if _, err := c.GraphQuery("g", `MATCH (v)-[:a]->(u) RETURN v, u`); err != nil {
		t.Fatalf("replica read: %v", err)
	}
	// REPLCONF is accepted as a no-op; SYNC without a handler installed
	// is a clean error, not a hang.
	if v, err := c.Do("REPLCONF", "listening-port", "0"); err != nil || v.Str != "OK" {
		t.Fatalf("REPLCONF = %+v, %v", v, err)
	}
	if _, err := c.Do("SYNC", "?", "0", "0"); err == nil {
		t.Fatal("SYNC without a hub must error")
	}

	// INFO replication renders the installed ReplInfo lines (here the
	// default leader stub, since no hub/replica loop is attached).
	v, err := c.Do("INFO", "replication")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(v.Str, "role:leader") {
		t.Fatalf("INFO replication missing role line:\n%s", v.Str)
	}
}
