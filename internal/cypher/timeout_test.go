package cypher

import (
	"testing"
)

func TestParseTimeoutClause(t *testing.T) {
	q, err := Parse("MATCH (v)-[:a]->(w) RETURN v, w TIMEOUT 250")
	if err != nil {
		t.Fatal(err)
	}
	if q.TimeoutMS != 250 {
		t.Fatalf("TimeoutMS = %d, want 250", q.TimeoutMS)
	}

	q, err = Parse("MATCH (v)-[:a]->(w) RETURN v, w")
	if err != nil {
		t.Fatal(err)
	}
	if q.TimeoutMS != 0 {
		t.Fatalf("TimeoutMS = %d, want 0 (no clause)", q.TimeoutMS)
	}
}

func TestParseTimeoutCaseInsensitive(t *testing.T) {
	q, err := Parse("MATCH (v)-[:a]->(w) RETURN v timeout 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.TimeoutMS != 5 {
		t.Fatalf("TimeoutMS = %d, want 5", q.TimeoutMS)
	}
}

func TestParseTimeoutErrors(t *testing.T) {
	for _, src := range []string{
		"MATCH (v)-[:a]->(w) RETURN v TIMEOUT",
		"MATCH (v)-[:a]->(w) RETURN v TIMEOUT -3",
		"MATCH (v)-[:a]->(w) RETURN v TIMEOUT soon",
		"MATCH (v)-[:a]->(w) RETURN v TIMEOUT 5 TIMEOUT 6",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseTimeoutOnlyTrailing(t *testing.T) {
	// TIMEOUT is a trailing clause: it cannot precede RETURN.
	if _, err := Parse("MATCH (v)-[:a]->(w) TIMEOUT 5 RETURN v"); err == nil {
		t.Fatal("mid-query TIMEOUT accepted")
	}
}
