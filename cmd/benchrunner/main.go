// Command benchrunner regenerates the paper's evaluation artifacts
// (experiment index in DESIGN.md §3) and prints them as text tables.
//
// Usage:
//
//	benchrunner -exp all            # every experiment at default scale
//	benchrunner -exp figures -quick # the multiple-source sweep, small
//	benchrunner -exp table1 -graphs core,pathways
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mscfpq/internal/bench"
)

// sanitize keeps file names shell-friendly.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchrunner", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "table1 | fig2 | figures | ablation | fullstack | rpq | obs | cache | batch | all")
		quick    = fs.Bool("quick", false, "use the reduced smoke-test scales")
		graphs   = fs.String("graphs", "", "comma-separated graph subset")
		chunks   = fs.String("chunks", "", "comma-separated chunk sizes for the sweep")
		seed     = fs.Int64("seed", 2021, "chunk sampling seed")
		csvPath  = fs.String("csv", "", "also write the figures sweep as CSV to this path")
		svgDir   = fs.String("svg", "", "also render one SVG chart per figures series into this directory")
		jsonPath = fs.String("json", "", "also write the obs experiment's measurements as JSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Seed = *seed
	if *graphs != "" {
		cfg.Graphs = strings.Split(*graphs, ",")
	}
	if *chunks != "" {
		cfg.ChunkSizes = nil
		for _, c := range strings.Split(*chunks, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(c), "%d", &n); err != nil || n < 1 {
				return fmt.Errorf("bad chunk size %q", c)
			}
			cfg.ChunkSizes = append(cfg.ChunkSizes, n)
		}
	}

	runOne := func(name string) error {
		switch name {
		case "table1":
			rep, err := bench.Table1(cfg)
			if err != nil {
				return err
			}
			return rep.Render(stdout)
		case "fig2":
			rep, err := bench.Fig2(cfg, 200)
			if err != nil {
				return err
			}
			return rep.Render(stdout)
		case "figures":
			series, err := bench.Figures(cfg)
			if err != nil {
				return err
			}
			if *csvPath != "" {
				f, err := os.Create(*csvPath)
				if err != nil {
					return err
				}
				if err := bench.WriteFiguresCSV(f, series); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
			}
			if *svgDir != "" {
				if err := os.MkdirAll(*svgDir, 0o755); err != nil {
					return err
				}
				for i, s := range series {
					name := fmt.Sprintf("fig%d_%s_%s.svg", i+3, sanitize(s.Graph), s.Query)
					path := filepath.Join(*svgDir, name)
					f, err := os.Create(path)
					if err != nil {
						return err
					}
					if err := bench.WriteFigureSVG(f, s); err != nil {
						f.Close()
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
					fmt.Fprintf(os.Stderr, "wrote %s\n", path)
				}
			}
			return bench.FiguresReport(series).Render(stdout)
		case "ablation":
			for _, g := range []string{"core", "pathways"} {
				rep, err := bench.Ablation(cfg, g, 10)
				if err != nil {
					return err
				}
				if err := rep.Render(stdout); err != nil {
					return err
				}
			}
			return nil
		case "fullstack":
			rep, err := bench.FullStack(cfg)
			if err != nil {
				return err
			}
			return rep.Render(stdout)
		case "rpq":
			rep, err := bench.RPQUnification(cfg, "core", "subClassOf+", 20)
			if err != nil {
				return err
			}
			return rep.Render(stdout)
		case "obs":
			rep, measurements, err := bench.ObsOverhead(cfg)
			if err != nil {
				return err
			}
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				if err := bench.WriteObsJSON(f, measurements); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
			}
			return rep.Render(stdout)
		case "cache":
			rep, measurements, err := bench.CacheBench(cfg)
			if err != nil {
				return err
			}
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				if err := bench.WriteCacheJSON(f, measurements); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
			}
			return rep.Render(stdout)
		case "batch":
			rep, measurements, err := bench.BatchBench(cfg)
			if err != nil {
				return err
			}
			if *jsonPath != "" {
				f, err := os.Create(*jsonPath)
				if err != nil {
					return err
				}
				if err := bench.WriteBatchJSON(f, measurements); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
			}
			return rep.Render(stdout)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"table1", "fig2", "figures", "ablation", "fullstack", "rpq", "obs", "cache", "batch"} {
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(*exp)
}
