package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the textual graph format round-trips: any input the
// reader accepts must serialize to a canonical form that re-reads to an
// identical serialization (Write ∘ Read is idempotent), and reading
// never panics on arbitrary bytes.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"order 6\n0 a 1\n1 b 2\nvertex 3 x\n",
		"# comment\n0 subClassOf 1\n1 type 0\n",
		"order 0\n",
		"0 broaderTransitive 1\n1 broaderTransitive 2\n",
		"vertex 0 y\norder 3\n",
		"order 2\n0 a 0\n0 a 0\n",
		"not a graph",
		"0 a\n",
		"-1 a 2\n",
		"order -5\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var first bytes.Buffer
		if err := Write(&first, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		back, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own serialization failed: %v\n%s", err, first.String())
		}
		var second bytes.Buffer
		if err := Write(&second, back); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("serialization not canonical:\nfirst:\n%s\nsecond:\n%s",
				first.String(), second.String())
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: %d/%d vertices, %d/%d edges",
				g.NumVertices(), back.NumVertices(), g.NumEdges(), back.NumEdges())
		}
	})
}
