package grammar

import (
	"fmt"
	"sort"
)

// Analysis reports structural facts about a grammar.
type Analysis struct {
	// Productive nonterminals derive at least one terminal string.
	Productive map[string]bool
	// Reachable nonterminals occur in some sentential form derived from
	// the start symbol.
	Reachable map[string]bool
	// Nullable nonterminals derive the empty string.
	Nullable map[string]bool
	// UsedTerminals are terminals reachable from the start symbol.
	UsedTerminals map[string]bool
}

// Analyze computes the productive, reachable and nullable nonterminal
// sets with standard fixpoint iterations.
func Analyze(g *Grammar) *Analysis {
	a := &Analysis{
		Productive:    map[string]bool{},
		Reachable:     map[string]bool{},
		Nullable:      map[string]bool{},
		UsedTerminals: map[string]bool{},
	}
	// Productive: A -> α with every nonterminal of α productive.
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			if a.Productive[p.LHS] {
				continue
			}
			ok := true
			for _, s := range p.RHS {
				if !s.Term && !a.Productive[s.Name] {
					ok = false
					break
				}
			}
			if ok {
				a.Productive[p.LHS] = true
				changed = true
			}
		}
	}
	// Nullable: A -> α with every symbol of α a nullable nonterminal
	// (the empty RHS qualifies trivially).
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			if a.Nullable[p.LHS] {
				continue
			}
			ok := true
			for _, s := range p.RHS {
				if s.Term || !a.Nullable[s.Name] {
					ok = false
					break
				}
			}
			if ok {
				a.Nullable[p.LHS] = true
				changed = true
			}
		}
	}
	// Reachable: closure from the start symbol.
	a.Reachable[g.Start] = true
	for changed := true; changed; {
		changed = false
		for _, p := range g.Prods {
			if !a.Reachable[p.LHS] {
				continue
			}
			for _, s := range p.RHS {
				if s.Term {
					if !a.UsedTerminals[s.Name] {
						a.UsedTerminals[s.Name] = true
						changed = true
					}
				} else if !a.Reachable[s.Name] {
					a.Reachable[s.Name] = true
					changed = true
				}
			}
		}
	}
	return a
}

// Prune returns an equivalent grammar without useless symbols: first
// unproductive nonterminals are removed (with every production using
// them), then unreachable ones. Returns an error if the start symbol
// itself is unproductive, i.e. L(G) is empty.
func Prune(g *Grammar) (*Grammar, error) {
	a := Analyze(g)
	if !a.Productive[g.Start] {
		return nil, fmt.Errorf("grammar: start symbol %q is unproductive (empty language)", g.Start)
	}
	// Phase 1: keep only productions over productive nonterminals.
	var kept []Production
	for _, p := range g.Prods {
		if !a.Productive[p.LHS] {
			continue
		}
		ok := true
		for _, s := range p.RHS {
			if !s.Term && !a.Productive[s.Name] {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, p)
		}
	}
	// Phase 2: reachability over the reduced grammar.
	mid := &Grammar{Start: g.Start, Prods: kept}
	ra := Analyze(mid)
	var final []Production
	for _, p := range kept {
		if ra.Reachable[p.LHS] {
			final = append(final, p)
		}
	}
	return New(g.Start, final)
}

// UnusedTerminals lists grammar terminals that cannot occur in any word
// of L(G); useful for validating a query against a graph's labels.
func UnusedTerminals(g *Grammar) []string {
	a := Analyze(g)
	var out []string
	for _, t := range g.Terminals() {
		if !a.UsedTerminals[t] {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}
