package grammar

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Parse reads a grammar in the textual format described in the package
// comment. The start symbol is the LHS of the first production.
func Parse(r io.Reader) (*Grammar, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	type rawProd struct {
		lhs  string
		rhs  []string
		line int
	}
	var raw []rawProd
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lhs, rest, ok := strings.Cut(line, "->")
		if !ok {
			return nil, fmt.Errorf("grammar: line %d: missing \"->\"", lineNo)
		}
		lhs = strings.TrimSpace(lhs)
		if lhs == "" || strings.ContainsAny(lhs, " \t|") {
			return nil, fmt.Errorf("grammar: line %d: invalid LHS %q", lineNo, lhs)
		}
		for _, alt := range strings.Split(rest, "|") {
			syms := strings.Fields(alt)
			if len(syms) == 0 {
				return nil, fmt.Errorf("grammar: line %d: empty alternative (use \"eps\")", lineNo)
			}
			raw = append(raw, rawProd{lhs: lhs, rhs: syms, line: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grammar: read: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("grammar: no productions")
	}

	nts := map[string]bool{}
	for _, p := range raw {
		nts[p.lhs] = true
	}
	prods := make([]Production, 0, len(raw))
	for _, p := range raw {
		prod := Production{LHS: p.lhs}
		if !(len(p.rhs) == 1 && p.rhs[0] == "eps") {
			for _, s := range p.rhs {
				if s == "eps" {
					return nil, fmt.Errorf("grammar: line %d: eps must be the only symbol of an alternative", p.line)
				}
				prod.RHS = append(prod.RHS, Symbol{Name: s, Term: !nts[s]})
			}
		}
		prods = append(prods, prod)
	}
	return New(raw[0].lhs, prods)
}

// ParseString parses a grammar from a string.
func ParseString(s string) (*Grammar, error) {
	return Parse(strings.NewReader(s))
}

// MustParse is ParseString, panicking on error; for literal grammars in
// tests and generators.
func MustParse(s string) *Grammar {
	g, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return g
}

// LoadFile parses a grammar from a file.
func LoadFile(path string) (*Grammar, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("grammar: %w", err)
	}
	defer f.Close()
	g, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("grammar: %s: %w", path, err)
	}
	return g, nil
}
