package resp

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"mscfpq/internal/gdb"
	"mscfpq/internal/obs"
)

// TestServerInfoSlowlog drives INFO and SLOWLOG through a real client
// connection: a policy with a tiny slow-query threshold makes every
// query land in the slow log, which SLOWLOG GET/LEN/RESET then serve.
func TestServerInfoSlowlog(t *testing.T) {
	srv, addr := startTestServer(t)
	srv.DB.SetPolicy(gdb.Policy{SlowQuery: time.Nanosecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.GraphQuery("cycles", anbnQuery); err != nil {
		t.Fatal(err)
	}

	v, err := c.Do("SLOWLOG", "LEN")
	if err != nil || v.Int != 1 {
		t.Fatalf("SLOWLOG LEN = %+v, %v; want 1", v, err)
	}
	v, err = c.Do("SLOWLOG", "GET")
	if err != nil || len(v.Array) != 1 {
		t.Fatalf("SLOWLOG GET = %+v, %v; want one entry", v, err)
	}
	e := v.Array[0]
	if len(e.Array) != 7 {
		t.Fatalf("slowlog entry has %d fields, want 7: %+v", len(e.Array), e)
	}
	if e.Array[0].Kind != Integer || e.Array[1].Kind != Integer || e.Array[2].Kind != Integer {
		t.Fatalf("slowlog id/ts/duration not integers: %+v", e)
	}
	if args := e.Array[3].Array; len(args) != 3 || args[1].Str != "cycles" ||
		!strings.Contains(args[2].Str, "PATH PATTERN") {
		t.Fatalf("slowlog args = %+v", e.Array[3])
	}
	if e.Array[4].Str != "slow" {
		t.Fatalf("slowlog status = %q, want slow", e.Array[4].Str)
	}

	// A bounded GET, then RESET back to empty (ids keep increasing but
	// the ring is cleared).
	if v, err = c.Do("SLOWLOG", "GET", "1"); err != nil || len(v.Array) != 1 {
		t.Fatalf("SLOWLOG GET 1 = %+v, %v", v, err)
	}
	if _, err = c.Do("SLOWLOG", "RESET"); err != nil {
		t.Fatal(err)
	}
	if v, err = c.Do("SLOWLOG", "LEN"); err != nil || v.Int != 0 {
		t.Fatalf("SLOWLOG LEN after RESET = %+v, %v; want 0", v, err)
	}
	if _, err = c.Do("SLOWLOG", "NOSUCH"); err == nil {
		t.Fatal("expected error for unknown SLOWLOG subcommand")
	}

	info, err := c.Do("INFO")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# server", "# gdb", "# batch", "# kernels", "# durability",
		"uptime_seconds:", "graphs:1",
		"gdb.queries:", "gdb.slow_queries:",
		"kernel.mul.ops:", "resp.commands:", "governor.completed:",
		"batch.groups:", "batch.solo:",
	} {
		if !strings.Contains(info.Str, want) {
			t.Errorf("INFO missing %q:\n%s", want, info.Str)
		}
	}
	sec, err := c.Do("INFO", "kernels")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sec.Str, "# kernels") || strings.Contains(sec.Str, "# server") {
		t.Fatalf("INFO kernels = %q", sec.Str)
	}
	if _, err := c.Do("INFO", "a", "b"); err == nil {
		t.Fatal("expected error for INFO with two arguments")
	}
}

// TestServerProfileSpanTree runs a PROFILE'd query over a live
// connection and checks (a) the reply carries the span tree after the
// standard statistics lines, (b) the tree has the expected stage
// shape, and (c) the kernel counter totals across all spans equal the
// metrics registry's delta over the same query — the two views of
// kernel work must agree exactly.
func TestServerProfileSpanTree(t *testing.T) {
	_, addr := startTestServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := obs.Default.Snapshot()
	reply, err := c.GraphQuery("cycles", "PROFILE"+anbnQuery)
	if err != nil {
		t.Fatal(err)
	}
	delta := obs.Default.Snapshot().Sub(before)

	if len(reply.Rows) == 0 {
		t.Fatal("PROFILE'd query returned no rows")
	}
	if len(reply.Stats) <= 3 {
		t.Fatalf("no profile lines after stats: %v", reply.Stats)
	}
	profile := reply.Stats[3:]
	if !strings.HasPrefix(profile[0], "query:") {
		t.Fatalf("profile root = %q", profile[0])
	}
	joined := strings.Join(profile, "\n")
	for _, stage := range []string{"parse:", "plan:", "execute:", "round 1:"} {
		if !strings.Contains(joined, stage) {
			t.Errorf("profile missing stage %q:\n%s", stage, joined)
		}
	}

	for _, key := range []string{"kernel.mul.ops", "kernel.mul.nnz", "kernel.add.ops"} {
		re := regexp.MustCompile(regexp.QuoteMeta(key) + `=(\d+)`)
		var total int64
		for _, m := range re.FindAllStringSubmatch(joined, -1) {
			n, err := strconv.ParseInt(m[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			total += n
		}
		if total != delta[key] {
			t.Errorf("%s: span total %d != registry delta %d\n%s", key, total, delta[key], joined)
		}
	}
	if delta["kernel.mul.ops"] == 0 {
		t.Fatal("expected non-zero mul ops for the CFPQ fixpoint")
	}

	// The same query without PROFILE returns the same rows and no
	// profile lines — tracing never changes answers.
	plain, err := c.GraphQuery("cycles", anbnQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Stats) != 3 {
		t.Fatalf("unprofiled query grew stats: %v", plain.Stats)
	}
	if len(plain.Rows) != len(reply.Rows) {
		t.Fatalf("PROFILE changed answers: %d rows vs %d", len(reply.Rows), len(plain.Rows))
	}
}
