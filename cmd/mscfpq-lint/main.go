// Command mscfpq-lint is the repository's multichecker: it loads and
// type-checks every package of the module from source (standard
// library only — no x/tools dependency) and runs the custom analyzers
// that turn this codebase's kernel, locking, determinism, and
// concurrency-contract conventions into build failures:
//
//	govloop     kernel loops must poll the execution governor they have
//	lockguard   `// guarded by <mu>` fields only touched under the lock
//	detrange    no map-iteration-ordered output or unsorted collection
//	errdrop     no silently dropped parse/IO errors
//	atomicfield a field touched through sync/atomic (or `// atomic`)
//	            is touched atomically everywhere
//	snapfreeze  `// immutable after publish` types only mutated before
//	            the value escapes its constructor
//	failcover   every durability Sync/Rename/Write/Truncate reachable
//	            behind a declared failpoint
//	obscatalog  metric/span names resolve to the internal/obs catalog,
//	            and the catalog carries no dead entries
//
// Findings may be suppressed with `//lint:ignore <analyzer> <reason>`
// on (or directly above) the flagged line; the reason is mandatory.
// `-unused-suppressions` reports ignore comments that no longer
// silence anything.
//
// Usage:
//
//	mscfpq-lint [-root dir] [-run list] [-tags list] [-tests=false]
//	            [-json] [-unused-suppressions] [packages...]
//
// With no package arguments every package in the module is checked,
// each analyzer restricted to its default scope; explicit
// module-relative package arguments (e.g. internal/cfpq) override the
// scopes. Exit status: 0 clean, 1 findings, 2 load/internal error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mscfpq/internal/analysis"
	"mscfpq/internal/analysis/atomicfield"
	"mscfpq/internal/analysis/detrange"
	"mscfpq/internal/analysis/errdrop"
	"mscfpq/internal/analysis/failcover"
	"mscfpq/internal/analysis/govloop"
	"mscfpq/internal/analysis/lockguard"
	"mscfpq/internal/analysis/obscatalog"
	"mscfpq/internal/analysis/snapfreeze"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	govloop.Analyzer,
	lockguard.Analyzer,
	detrange.Analyzer,
	errdrop.Analyzer,
	atomicfield.Analyzer,
	snapfreeze.Analyzer,
	failcover.Analyzer,
	obscatalog.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mscfpq-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	tags := fs.String("tags", "", "comma-separated extra build tags (e.g. nofault)")
	tests := fs.Bool("tests", true, "also analyze _test.go files (per-analyzer filters still apply)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	unused := fs.Bool("unused-suppressions", false, "also report //lint:ignore comments that no longer suppress any finding")
	verbose := fs.Bool("v", false, "log each package as it is analyzed")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mscfpq-lint [flags] [module-relative packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(stderr, "mscfpq-lint:", err)
		return 2
	}

	if *root == "" {
		*root, err = findRoot()
		if err != nil {
			fmt.Fprintln(stderr, "mscfpq-lint:", err)
			return 2
		}
	}
	mod, err := analysis.LoadModuleTags(*root, splitList(*tags))
	if err != nil {
		fmt.Fprintln(stderr, "mscfpq-lint:", err)
		return 2
	}

	dirs := fs.Args()
	explicit := len(dirs) > 0
	if !explicit {
		dirs, err = mod.Dirs()
		if err != nil {
			fmt.Fprintln(stderr, "mscfpq-lint:", err)
			return 2
		}
	}

	var unitAnalyzers, moduleAnalyzers []*analysis.Analyzer
	for _, a := range selected {
		if a.RunModule != nil {
			moduleAnalyzers = append(moduleAnalyzers, a)
		} else {
			unitAnalyzers = append(unitAnalyzers, a)
		}
	}

	tracker := analysis.NewTracker()
	// ranOn records which analyzers produced (possibly suppressed)
	// diagnostics over which units — the baseline -unused-suppressions
	// compares ignore comments against.
	ranOn := map[*analysis.Unit]map[string]bool{}
	markRan := func(u *analysis.Unit, name string) {
		if ranOn[u] == nil {
			ranOn[u] = map[string]bool{}
		}
		ranOn[u][name] = true
	}

	var diags []analysis.Diagnostic
	var allUnits []*analysis.Unit
	for _, rel := range dirs {
		todo := applicable(unitAnalyzers, rel, explicit)
		if len(todo) == 0 && len(moduleAnalyzers) == 0 && !*unused {
			continue
		}
		if *verbose {
			fmt.Fprintf(stderr, "mscfpq-lint: %s\n", mod.ImportPath(rel))
		}
		units, err := mod.LoadUnits(rel, *tests)
		if err != nil {
			fmt.Fprintln(stderr, "mscfpq-lint:", err)
			return 2
		}
		allUnits = append(allUnits, units...)
		for _, u := range units {
			for _, a := range todo {
				ds, err := analysis.RunTracked(a, u, tracker)
				if err != nil {
					fmt.Fprintln(stderr, "mscfpq-lint:", err)
					return 2
				}
				diags = append(diags, ds...)
				markRan(u, a.Name)
			}
		}
	}
	for _, a := range moduleAnalyzers {
		ds, err := analysis.RunModule(a, mod, allUnits, !explicit, tracker)
		if err != nil {
			fmt.Fprintln(stderr, "mscfpq-lint:", err)
			return 2
		}
		diags = append(diags, ds...)
		for _, u := range allUnits {
			markRan(u, a.Name)
		}
	}
	if *unused {
		diags = append(diags, staleSuppressions(allUnits, ranOn, tracker)...)
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := mod.Fset().Position(diags[i].Pos), mod.Fset().Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	if *jsonOut {
		if err := writeJSON(stdout, mod, *root, diags); err != nil {
			fmt.Fprintln(stderr, "mscfpq-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			pos := mod.Fset().Position(d.Pos)
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", relPath(*root, pos.Filename), pos.Line, pos.Column, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mscfpq-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// staleSuppressions reports //lint:ignore comments that silenced
// nothing: either naming an analyzer the suite does not have, or
// covering code where their analyzer ran and found nothing.
func staleSuppressions(units []*analysis.Unit, ranOn map[*analysis.Unit]map[string]bool, tracker *analysis.Tracker) []analysis.Diagnostic {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var out []analysis.Diagnostic
	for _, u := range units {
		for _, s := range analysis.UnitSuppressions(u) {
			if tracker.Used(s.Pos) {
				continue
			}
			switch {
			case !known[s.Analyzer]:
				out = append(out, analysis.Diagnostic{
					Pos:      s.Pos,
					Analyzer: "suppressions",
					Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q — it can never suppress anything", s.Analyzer),
				})
			case ranOn[u][s.Analyzer]:
				out = append(out, analysis.Diagnostic{
					Pos:      s.Pos,
					Analyzer: "suppressions",
					Message:  fmt.Sprintf("stale //lint:ignore: %s reports no finding here — remove the comment", s.Analyzer),
				})
			}
		}
	}
	return out
}

// jsonDiag is the -json output record.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(stdout *os.File, mod *analysis.Module, root string, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		pos := mod.Fset().Position(d.Pos)
		out = append(out, jsonDiag{
			File:     relPath(root, pos.Filename),
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func relPath(root, filename string) string {
	rel, err := filepath.Rel(root, filename)
	if err != nil {
		return filename
	}
	return rel
}

func splitList(list string) []string {
	if list == "" {
		return nil
	}
	var out []string
	for _, s := range strings.Split(list, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// selectAnalyzers resolves -run.
func selectAnalyzers(list string) ([]*analysis.Analyzer, error) {
	if list == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// applicable returns the analyzers whose scope covers a
// module-relative package directory. Explicitly listed packages
// bypass DefaultScope.
func applicable(selected []*analysis.Analyzer, rel string, explicit bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range selected {
		if explicit || inScope(a, rel) {
			out = append(out, a)
		}
	}
	return out
}

func inScope(a *analysis.Analyzer, rel string) bool {
	if len(a.DefaultScope) == 0 {
		return true
	}
	for _, prefix := range a.DefaultScope {
		if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			return true
		}
	}
	return false
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
