package difftest

import (
	"testing"

	"mscfpq/internal/gen"
)

// TestDifferentialBatch forces every algorithm through the coalescer's
// shared fixpoint on seeded instances: each member's scattered answer
// must be byte-identical to its solo Eval — including overlapping,
// duplicate and empty member source sets — and the cache must be seeded
// with exactly those answers. A quarter of the CFPQ corpus: each
// instance runs six algorithms × five members, solo and batched.
func TestDifferentialBatch(t *testing.T) {
	failures := 0
	for i := 0; i < cfpqInstances/4; i++ {
		inst := gen.NewInstance(*seedFlag+int64(5_000_000+i), maxGraphVertices)
		if err := CheckBatch(inst); err != nil {
			reportCFPQFailure(t, inst, err, CheckBatch)
			if failures++; failures >= 3 {
				t.Fatalf("stopping after %d failing instances", failures)
			}
		}
	}
}

// TestDifferentialBatchVersioned runs the coalescer's adaptive path
// against a store that keeps publishing new versions: snapshot-pinned
// answers must exactly match solo evaluations of the pinned graph —
// a batch must never mix versions. Run with -race.
func TestDifferentialBatchVersioned(t *testing.T) {
	for i := 0; i < 4; i++ {
		inst := gen.NewInstance(*seedFlag+int64(6_000_000+i), maxGraphVertices)
		if err := CheckBatchVersioned(inst); err != nil {
			t.Fatalf("seed %d (rerun: go test ./internal/difftest -seed=%d): %v",
				inst.Seed, *seedFlag, err)
		}
	}
}
