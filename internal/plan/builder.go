package plan

import (
	"fmt"
	"strings"

	"mscfpq/internal/algebra"
	"mscfpq/internal/cypher"
	"mscfpq/internal/exec"
)

// Plan is a compiled, executable query plan.
type Plan struct {
	root    Operation
	Columns []string
	ctx     *PathCtx
	env     *Env
	slots   map[string]int
}

// ResultSet holds the rows produced by plan execution. Values are
// vertex ids.
type ResultSet struct {
	Columns []string
	Rows    [][]int64
}

// Build compiles a parsed MATCH query against an environment. CREATE
// statements are handled by the storage layer, not the planner.
func Build(q *cypher.Query, env *Env) (*Plan, error) {
	ctx, err := NewPathCtx(env.G, q.PathPatterns)
	if err != nil {
		return nil, err
	}
	return BuildWithCtx(q, env, ctx)
}

// BuildWithCtx compiles the query against a pre-built path pattern
// context, letting the database layer share one context — and therefore
// one Algorithm 3 index — across queries that declare the same PATH
// PATTERNs over the same graph (the paper's repeated-query scenario).
// The caller must guarantee ctx matches q's PATH PATTERN declarations
// and env's graph (see PathCtx.Key).
func BuildWithCtx(q *cypher.Query, env *Env, ctx *PathCtx) (*Plan, error) {
	if q.Match == nil {
		return nil, fmt.Errorf("plan: query has no MATCH clause")
	}
	if q.Return == nil {
		return nil, fmt.Errorf("plan: query has no RETURN clause")
	}
	env.Ctx = ctx

	// Stage 1 (paper Figure 9): fold the MATCH patterns into the query
	// graph, merging shared variables and their constraints.
	qg, err := BuildQueryGraph(q.Match)
	if err != nil {
		return nil, err
	}
	// One record slot per query-graph node.
	slots := map[string]int{}
	for i, n := range qg.Nodes {
		slots[n.Name] = i
	}
	width := len(qg.Nodes)

	// Pending WHERE predicates, placed as soon as their variables bind.
	pending, err := splitConjunction(q.Where)
	if err != nil {
		return nil, err
	}
	bound := map[int]bool{}
	var root Operation
	attachFilters := func() {
		for i := 0; i < len(pending); {
			vars, perr := predVars(pending[i])
			if perr != nil {
				i++
				continue
			}
			ready := true
			for _, v := range vars {
				s, ok := slots[v]
				if !ok || !bound[s] {
					ready = false
					break
				}
			}
			if ready {
				root = NewFilter(env, root, pending[i], slots)
				pending = append(pending[:i], pending[i+1:]...)
			} else {
				i++
			}
		}
	}
	// bindNode scans (or re-checks) a query-graph node: the first label
	// drives the scan, extra merged labels and property constraints
	// become filters.
	bindNode := func(idx int) {
		n := qg.Nodes[idx]
		label := ""
		if len(n.Labels) > 0 {
			label = n.Labels[0]
		}
		root = NewNodeScan(env, root, width, idx, label)
		bound[idx] = true
		for _, l := range n.Labels[min(1, len(n.Labels)):] {
			root = NewFilter(env, root, cypher.HasLabel{Var: n.Name, Label: l}, slots)
		}
		for _, p := range n.Props {
			root = NewFilter(env, root, cypher.PropCompare{Var: n.Name, Key: p.Key, Val: p.Val}, slots)
		}
		attachFilters()
	}

	// selectivityScore ranks how tightly a node is constrained, for
	// choosing which end of a chain to scan from: an exact id beats an
	// id list beats labels/properties beats nothing; already-bound
	// nodes win outright (their records are already restricted).
	selectivityScore := func(idx int) int {
		if bound[idx] {
			return 100
		}
		n := qg.Nodes[idx]
		score := 0
		if len(n.Labels) > 0 || len(n.Props) > 0 {
			score = 1
		}
		for _, pred := range pending {
			vars, err := predVars(pred)
			if err != nil || len(vars) != 1 {
				continue
			}
			if s, ok := slots[vars[0]]; !ok || s != idx {
				continue
			}
			switch pred.(type) {
			case cypher.IDCompare:
				if score < 3 {
					score = 3
				}
			case cypher.IDIn:
				if score < 2 {
					score = 2
				}
			default:
				if score < 1 {
					score = 1
				}
			}
		}
		return score
	}

	// Stage 2: linearize the query graph into chains and translate each
	// chain edge into an algebraic expression driving a traverse.
	covered := map[int]bool{}
	for _, chain := range qg.Chains() {
		// Orient the chain so the scan starts at the more selective
		// end: a filter on the destination would otherwise force a full
		// scan of the sources (the multiple-source pattern in reverse).
		if selectivityScore(chain[len(chain)-1].To) > selectivityScore(chain[0].From) {
			chain = reverseChain(chain)
		}
		bindNode(chain[0].From)
		covered[chain[0].From] = true
		for _, e := range chain {
			expr, isPath, err := TranslateConnection(e.Conn)
			if err != nil {
				return nil, err
			}
			for _, ref := range algebra.Refs(expr) {
				if _, ok := ctx.Expr(ref); !ok {
					return nil, fmt.Errorf("plan: reference to undeclared path pattern %q", ref)
				}
			}
			// Fold destination node labels into the expression so the
			// traverse lands only on correctly labeled vertices.
			dst := qg.Nodes[e.To]
			for _, l := range dst.Labels {
				expr = mulVertexLabel(expr, l)
			}
			if isPath {
				root = NewCFPQTraverse(env, root, e.From, e.To, expr)
			} else {
				root = NewCondTraverse(env, root, e.From, e.To, expr)
			}
			bound[e.To] = true
			covered[e.To] = true
			for _, p := range dst.Props {
				root = NewFilter(env, root, cypher.PropCompare{Var: dst.Name, Key: p.Key, Val: p.Val}, slots)
			}
			attachFilters()
		}
	}
	// Standalone nodes (MATCH (v) RETURN v) still need a scan.
	for idx := range qg.Nodes {
		if !covered[idx] && !bound[idx] {
			bindNode(idx)
		}
	}
	if len(pending) > 0 {
		attachFilters()
		if len(pending) > 0 {
			return nil, fmt.Errorf("plan: WHERE references unbound variables: %s", predString(pending[0]))
		}
	}

	// Projection / aggregation, then ordering and pagination.
	var cols []OutCol
	hasCount := false
	for _, item := range q.Return.Items {
		col := OutCol{Count: item.Count, Slot: -1}
		switch {
		case item.Count && item.Var == "*":
			col.Name = "count(*)"
		case item.Count:
			s, ok := slots[item.Var]
			if !ok {
				return nil, fmt.Errorf("plan: RETURN references unknown variable %q", item.Var)
			}
			col.Slot = s
			col.Name = "count(" + item.Var + ")"
		default:
			s, ok := slots[item.Var]
			if !ok {
				return nil, fmt.Errorf("plan: RETURN references unknown variable %q", item.Var)
			}
			col.Slot = s
			col.Name = item.Var
		}
		if item.Alias != "" {
			col.Name = item.Alias
		}
		hasCount = hasCount || item.Count
		cols = append(cols, col)
	}
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	if hasCount {
		root = NewAggregate(root, cols)
	} else {
		projSlots := make([]int, len(cols))
		for i, c := range cols {
			projSlots[i] = c.Slot
		}
		root = NewProject(root, names, projSlots)
	}
	if len(q.Return.OrderBy) > 0 {
		var keys []sortKey
		for _, ob := range q.Return.OrderBy {
			idx := -1
			for i, n := range names {
				if n == ob.Name {
					idx = i
					break
				}
			}
			if idx < 0 {
				return nil, fmt.Errorf("plan: ORDER BY %q is not a returned column", ob.Name)
			}
			keys = append(keys, sortKey{col: idx, desc: ob.Desc})
		}
		root = NewSort(root, keys)
	}
	if q.Return.Skip > 0 || q.Return.Limit > 0 {
		root = NewPaginate(root, q.Return.Skip, q.Return.Limit)
	}

	return &Plan{root: root, Columns: names, ctx: ctx, env: env, slots: slots}, nil
}

func mulVertexLabel(e algebra.Expr, label string) algebra.Expr {
	return algebra.Mul{L: e, R: algebra.VertexLabel{Label: label}}
}

// reverseChain flips a traversal chain end to end: edges run in
// opposite order with swapped endpoints and inverted connections, so
// the matched relation is identical.
func reverseChain(chain []QGEdge) []QGEdge {
	out := make([]QGEdge, 0, len(chain))
	for i := len(chain) - 1; i >= 0; i-- {
		e := chain[i]
		var conn cypher.Connection
		switch c := e.Conn.(type) {
		case cypher.RelPattern:
			c.Inverse = !c.Inverse
			conn = c
		case cypher.PathApply:
			c.Inverse = !c.Inverse
			conn = c
		default:
			return chain // unknown connection: keep original orientation
		}
		out = append(out, QGEdge{From: e.To, To: e.From, Conn: conn})
	}
	return out
}

// Execute runs the plan to completion, ungoverned.
func (p *Plan) Execute() (*ResultSet, error) { return p.ExecuteWith() }

// executeCheckRecords is how many records the pull loop emits between
// governor checks (operator-internal work is governed separately
// through the environment's Run).
const executeCheckRecords = 256

// ExecuteWith runs the plan to completion under execution options: the
// context, timeout, and budget govern every operator pull, expression
// evaluation, and nested multiple-source resolution of this execution.
func (p *Plan) ExecuteWith(opts ...exec.Option) (*ResultSet, error) {
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	if p.env != nil {
		p.env.Run = run
		defer func() { p.env.Run = nil }()
	}
	if err := run.Err(); err != nil {
		return nil, err
	}
	if err := p.root.Open(); err != nil {
		return nil, err
	}
	rs := &ResultSet{Columns: p.Columns}
	for pulled := 0; ; pulled++ {
		if pulled%executeCheckRecords == 0 {
			if err := run.Err(); err != nil {
				return nil, err
			}
		}
		rec, err := p.root.Next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			return rs, nil
		}
		rs.Rows = append(rs.Rows, []int64(rec))
	}
}

// Explain renders the operation tree, root first.
func (p *Plan) Explain() string {
	var b strings.Builder
	depth := 0
	for op := p.root; op != nil; op = op.Child() {
		b.WriteString(strings.Repeat("    ", depth))
		b.WriteString(op.Explain())
		b.WriteByte('\n')
		depth++
	}
	if p.ctx != nil && len(p.ctx.Names()) > 0 {
		b.WriteString("Path pattern context:\n")
		for _, name := range p.ctx.Names() {
			e, _ := p.ctx.Expr(name)
			fmt.Fprintf(&b, "    %s -> %s\n", name, e.String())
		}
	}
	return b.String()
}

// splitConjunction flattens an AND tree into a predicate list.
func splitConjunction(e cypher.Expr) ([]cypher.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if and, ok := e.(cypher.AndExpr); ok {
		l, err := splitConjunction(and.Left)
		if err != nil {
			return nil, err
		}
		r, err := splitConjunction(and.Right)
		if err != nil {
			return nil, err
		}
		return append(l, r...), nil
	}
	return []cypher.Expr{e}, nil
}

// predVars lists the variables a predicate reads.
func predVars(e cypher.Expr) ([]string, error) {
	switch v := e.(type) {
	case cypher.IDCompare:
		return []string{v.Var}, nil
	case cypher.IDIn:
		return []string{v.Var}, nil
	case cypher.HasLabel:
		return []string{v.Var}, nil
	case cypher.PropCompare:
		return []string{v.Var}, nil
	case cypher.AndExpr:
		l, _ := predVars(v.Left)
		r, _ := predVars(v.Right)
		return append(l, r...), nil
	default:
		return nil, fmt.Errorf("plan: unsupported predicate %T", e)
	}
}
