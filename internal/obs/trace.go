package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed stage of a traced query: parse, plan, execute, a
// fixpoint round, an answer extraction. Spans nest; kernel counter
// deltas recorded while a span is the innermost open one are
// attributed to it.
type Span struct {
	Name     string
	Dur      time.Duration
	Children []*Span
	Counters map[string]int64 // kernel counter deltas attributed to this span

	start  time.Time
	parent *Span
	t      *Trace
}

// Trace records the span tree of one query execution. Attach one to a
// query with the facade's WithTrace option (or gdb's Cypher PROFILE
// prefix) and render it with Render after the query finishes.
//
// A nil *Trace is valid everywhere: every method no-ops, so execution
// layers thread an optional trace without guards. Methods are
// mutex-serialized — tracing is opt-in, and its cost is only paid by
// the traced query.
type Trace struct {
	mu   sync.Mutex
	root *Span
	cur  *Span // innermost open span
}

// NewTrace starts a trace whose root span is open until Close.
func NewTrace(name string) *Trace {
	t := &Trace{}
	t.root = &Span{Name: name, start: time.Now(), t: t}
	t.cur = t.root
	return t
}

// Start opens a child span of the innermost open span and makes it
// current. End the returned span to pop back. Nil-safe.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, start: time.Now(), parent: t.cur, t: t}
	t.cur.Children = append(t.cur.Children, s)
	t.cur = s
	return s
}

// End closes the span, recording its duration and making its parent
// current again. Nil-safe; ending a span twice is a no-op.
func (s *Span) End() {
	if s == nil || s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.Dur == 0 {
		s.Dur = time.Since(s.start)
	}
	if t.cur == s && s.parent != nil {
		t.cur = s.parent
	}
}

// Add attributes a counter delta to the innermost open span. Keys are
// the instrument names of the metrics registry (obs.Key*), so span
// totals and registry deltas line up. Nil-safe.
func (t *Trace) Add(key string, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cur.Counters == nil {
		t.cur.Counters = map[string]int64{}
	}
	t.cur.Counters[key] += n
}

// AddSpan records an already-measured stage as a completed child of
// the innermost open span — how the parse stage (measured before the
// trace exists) enters the tree. Nil-safe.
func (t *Trace) AddSpan(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{Name: name, Dur: d, parent: t.cur, t: t}
	t.cur.Children = append(t.cur.Children, s)
}

// Close ends every span still open (innermost first) including the
// root. Nil-safe.
func (t *Trace) Close() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for s := t.cur; s != nil; s = s.parent {
		if s.Dur == 0 {
			s.Dur = time.Since(s.start)
		}
	}
	t.cur = t.root
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.root
}

// Total sums a counter key over the span's subtree.
func (s *Span) Total(key string) int64 {
	if s == nil {
		return 0
	}
	n := s.Counters[key]
	for _, c := range s.Children {
		n += c.Total(key)
	}
	return n
}

// Render formats the span tree as indented text lines, one span per
// line with its duration and sorted counter deltas:
//
//	query: 1.204ms
//	    parse: 0.011ms
//	    execute: 1.102ms [kernel.mul.nnz=42 kernel.mul.ops=6]
//
// Counter keys are sorted so the rendering is deterministic. Nil-safe
// (returns nil).
func (t *Trace) Render() []string {
	root := t.Root()
	if root == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []string
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		line := fmt.Sprintf("%s%s: %.3fms", strings.Repeat("    ", depth), s.Name,
			float64(s.Dur.Nanoseconds())/1e6)
		if len(s.Counters) > 0 {
			keys := make([]string, 0, len(s.Counters))
			for k := range s.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%d", k, s.Counters[k])
			}
			line += " [" + strings.Join(parts, " ") + "]"
		}
		out = append(out, line)
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return out
}
