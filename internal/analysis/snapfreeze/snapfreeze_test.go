package snapfreeze_test

import (
	"testing"

	"mscfpq/internal/analysis/analysistest"
	"mscfpq/internal/analysis/snapfreeze"
)

func TestSnapFreeze(t *testing.T) {
	analysistest.Run(t, snapfreeze.Analyzer, "snappos", "snapneg")
}
