package rpq

import (
	"fmt"
	"sort"
	"strings"

	"mscfpq/internal/exec"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// DFA is a deterministic automaton over graph labels, built from an NFA
// by subset construction and optionally minimized. Deterministic
// evaluation multiplies one reachability matrix per state with no
// epsilon bookkeeping, which is the fastest of the RPQ engines here.
type DFA struct {
	NumStates int
	Start     int
	Accept    []bool
	// Trans[label][state] = next state, or -1.
	Trans map[string][]int
}

// Determinize performs subset construction over the NFA (epsilon
// closures become single DFA states).
func Determinize(n *NFA) *DFA {
	closure := func(set map[int]bool) map[int]bool { return n.epsClosure(set) }
	key := func(set map[int]bool) string {
		ids := make([]int, 0, len(set))
		for q := range set {
			ids = append(ids, q)
		}
		sort.Ints(ids)
		parts := make([]string, len(ids))
		for i, q := range ids {
			parts[i] = fmt.Sprintf("%d", q)
		}
		return strings.Join(parts, ",")
	}
	labels := n.Labels()

	d := &DFA{Trans: map[string][]int{}}
	stateOf := map[string]int{}
	var sets []map[int]bool
	newState := func(set map[int]bool) int {
		k := key(set)
		if id, ok := stateOf[k]; ok {
			return id
		}
		id := d.NumStates
		d.NumStates++
		stateOf[k] = id
		sets = append(sets, set)
		d.Accept = append(d.Accept, set[n.Accept])
		for _, l := range labels {
			d.Trans[l] = append(d.Trans[l], -1)
		}
		return id
	}

	start := closure(map[int]bool{n.Start: true})
	d.Start = newState(start)
	for work := []int{d.Start}; len(work) > 0; {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		set := sets[s]
		for _, l := range labels {
			next := map[int]bool{}
			for _, tr := range n.Trans[l] {
				if set[tr[0]] {
					next[tr[1]] = true
				}
			}
			if len(next) == 0 {
				continue
			}
			next = closure(next)
			before := d.NumStates
			t := newState(next)
			d.Trans[l][s] = t
			if t == before { // genuinely new state
				work = append(work, t)
			}
		}
	}
	return d
}

// Minimize merges indistinguishable states (Moore partition
// refinement). Unreachable states are dropped by construction since
// Determinize only creates reachable states.
func (d *DFA) Minimize() *DFA {
	labels := make([]string, 0, len(d.Trans))
	for l := range d.Trans {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	// Initial partition: accepting vs non-accepting (plus an implicit
	// dead class for -1 targets).
	class := make([]int, d.NumStates)
	for s, acc := range d.Accept {
		if acc {
			class[s] = 1
		}
	}
	for {
		// Signature of a state: its class plus the classes reached per
		// label (-1 stays -1).
		sig := make([]string, d.NumStates)
		for s := 0; s < d.NumStates; s++ {
			var b strings.Builder
			fmt.Fprintf(&b, "%d", class[s])
			for _, l := range labels {
				t := d.Trans[l][s]
				if t >= 0 {
					fmt.Fprintf(&b, "|%s=%d", l, class[t])
				} else {
					fmt.Fprintf(&b, "|%s=.", l)
				}
			}
			sig[s] = b.String()
		}
		next := make([]int, d.NumStates)
		ids := map[string]int{}
		for s, g := range sig {
			id, ok := ids[g]
			if !ok {
				id = len(ids)
				ids[g] = id
			}
			next[s] = id
		}
		same := true
		for s := range class {
			if class[s] != next[s] {
				same = false
				break
			}
		}
		class = next
		if same {
			break
		}
	}

	nclasses := 0
	for _, c := range class {
		if c+1 > nclasses {
			nclasses = c + 1
		}
	}
	out := &DFA{NumStates: nclasses, Start: class[d.Start], Accept: make([]bool, nclasses), Trans: map[string][]int{}}
	for _, l := range labels {
		out.Trans[l] = make([]int, nclasses)
		for i := range out.Trans[l] {
			out.Trans[l][i] = -1
		}
	}
	for s := 0; s < d.NumStates; s++ {
		c := class[s]
		if d.Accept[s] {
			out.Accept[c] = true
		}
		for _, l := range labels {
			if t := d.Trans[l][s]; t >= 0 {
				out.Trans[l][c] = class[t]
			}
		}
	}
	return out
}

// AcceptsWord reports whether the DFA accepts the label word.
func (d *DFA) AcceptsWord(word []string) bool {
	s := d.Start
	for _, l := range word {
		ts, ok := d.Trans[l]
		if !ok {
			return false
		}
		s = ts[s]
		if s < 0 {
			return false
		}
	}
	return d.Accept[s]
}

// EvalPairsDFA answers a multiple-source regular path query through the
// deterministic automaton: one reachability matrix per DFA state,
// R_t += R_s * G^l per transition, no epsilon fixpoint interleaving.
func EvalPairsDFA(g *graph.Graph, d *DFA, src *matrix.Vector, opts ...exec.Option) (*matrix.Bool, error) {
	if g == nil || d == nil {
		return nil, fmt.Errorf("rpq: nil graph or DFA")
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	nv := g.NumVertices()
	if src == nil || src.Size() != nv {
		return nil, fmt.Errorf("rpq: source vector size mismatch (graph has %d vertices)", nv)
	}
	r := make([]*matrix.Bool, d.NumStates)
	for q := range r {
		r[q] = matrix.NewBool(nv, nv)
	}
	matrix.AddInPlace(r[d.Start], src.Diag())

	labelM := map[string]*matrix.Bool{}
	for l := range d.Trans {
		m := g.EdgeMatrix(l)
		if vs := g.VertexSet(l); vs.NVals() > 0 {
			m = matrix.Add(m, vs.Diag())
		}
		labelM[l] = m
	}
	for changed := true; changed; {
		changed = false
		for l, ts := range d.Trans {
			gm := labelM[l]
			if gm.NVals() == 0 {
				continue
			}
			for s, t := range ts {
				if t < 0 || r[s].NVals() == 0 {
					continue
				}
				prod, err := run.Mul(r[s], gm)
				if err != nil {
					return nil, err
				}
				if matrix.AddInPlace(r[t], prod) {
					changed = true
				}
			}
		}
	}
	answer := matrix.NewBool(nv, nv)
	for q, acc := range d.Accept {
		if acc {
			matrix.AddInPlace(answer, r[q])
		}
	}
	return matrix.ExtractRows(answer, src), nil
}
