// Package atompos holds true positives for atomicfield: fields with
// mixed plain/atomic access.
package atompos

import "sync/atomic"

// counter declares its intent on hits; the plain read below breaks it.
type counter struct {
	// atomic: incremented from every worker without the lock
	hits int64
	pad  int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) read() int64 {
	return c.hits // want `plain access to atomic field hits`
}

// inferred has no annotation: the Store below is the evidence.
type inferred struct {
	n int64
}

func bump(x *inferred) {
	atomic.StoreInt64(&x.n, 7)
}

func peek(x *inferred) int64 {
	return x.n // want `plain access to atomic field n`
}

func swap(x *inferred) {
	x.n++ // want `plain access to atomic field n`
}

// aliased leaks the address outside the atomic API — indistinguishable
// from a plain access for the protocol.
func aliased(x *inferred) *int64 {
	return &x.n // want `plain access to atomic field n`
}

// declared is annotated but only ever touched plainly: the annotation
// alone makes the plain write a finding.
type declared struct {
	// atomic
	state uint32
}

func set(d *declared) {
	d.state = 1 // want `plain access to atomic field state`
}
