// Package obsrender holds detrange cases shaped like the obs layer's
// snapshot rendering: a metrics snapshot is a map from instrument name
// to value, and every rendered form (INFO sections, the JSON endpoint,
// -metrics-dump) must iterate it in sorted order.
package obsrender

import (
	"fmt"
	"sort"
	"strings"
)

// snapshot mirrors obs.Snapshot.
type snapshot map[string]int64

// renderUnsorted emits key:value lines in map order — the bug the
// analyzer exists to stop: two INFO calls over the same registry
// would disagree byte-for-byte.
func renderUnsorted(s snapshot) string {
	var b strings.Builder
	for k, v := range s {
		fmt.Fprintf(&b, "%s:%d\n", k, v) // want `fmt.Fprintf call inside range over a map`
	}
	return b.String()
}

// renderSorted is the accepted idiom and the real implementation's
// shape (obs.Snapshot.Keys, MarshalSnapshot): collect, sort, emit.
func renderSorted(s snapshot) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s:%d\n", k, s[k])
	}
	return b.String()
}
