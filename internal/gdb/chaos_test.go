package gdb

import (
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"

	"mscfpq/internal/fault"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/oracle"
)

// The chaos suite: for every failpoint in the durability write paths,
// fail (or tear, or crash at) that step mid-workload, simulate a
// process crash by abandoning the DB, and assert that recovery
// restores exactly the acknowledged state — optionally plus the one
// in-flight operation, never less, never garbage.

// chaosFailpoints enumerates the durability failpoints; the suite
// refuses to run against a shrunken list so a renamed point cannot
// silently drop its coverage.
func chaosFailpoints(t *testing.T) []string {
	t.Helper()
	var pts []string
	for _, n := range fault.Names() {
		if strings.HasPrefix(n, "gdb.snapshot.") || strings.HasPrefix(n, "gdb.journal.") {
			pts = append(pts, n)
		}
	}
	if len(pts) < 8 {
		t.Fatalf("chaos suite found only %v — durability failpoints are missing", pts)
	}
	return pts
}

// saveFailpoint reports whether the point fires during Save (snapshot
// cutting and journal rotation) rather than during a mutation's
// journal append.
func saveFailpoint(fp string) bool {
	return strings.HasPrefix(fp, "gdb.snapshot.") || fp == FPJournalRotate
}

// tearableFailpoint reports whether the point streams bytes through
// fault.Writer, making torn-write specs meaningful.
func tearableFailpoint(fp string) bool {
	return fp == FPJournalAppend || fp == FPSnapshotWrite
}

func TestChaosCrashRecoveryAtEveryFailpoint(t *testing.T) {
	specs := []struct {
		name string
		spec fault.Spec
	}{
		{"error", fault.Spec{Err: errors.New("chaos: injected disk failure")}},
		{"torn-after-3", fault.Spec{TruncateAfter: 3}},
		{"torn-after-17", fault.Spec{TruncateAfter: 17}},
	}
	for _, fp := range chaosFailpoints(t) {
		for _, sc := range specs {
			if sc.spec.TruncateAfter > 0 && !tearableFailpoint(fp) {
				continue
			}
			t.Run(fp+"/"+sc.name, func(t *testing.T) {
				chaosFailScenario(t, fp, sc.spec)
			})
		}
	}
}

// chaosFailScenario drives one failpoint through the full life cycle:
// acked history across a snapshot boundary, a failing operation, more
// acked history after the failure (the database must stay usable and
// those later records must stay reachable), then crash + recover +
// keep writing.
func chaosFailScenario(t *testing.T, fp string, spec fault.Spec) {
	defer fault.Reset()
	dir := t.TempDir()
	db := reopen(t, dir)

	// Acknowledged history crossing a snapshot boundary, so the
	// failure strikes a mid-life store, not a fresh one.
	mustQuery(t, db, "g", `CREATE (a:N {name: 'a0'})-[:a]->(b:N), (b)-[:b]->(c:N)`)
	mustQuery(t, db, "h", `CREATE (x:M)-[:e]->(y:M)`)
	if err := db.Save(); err != nil {
		t.Fatalf("unarmed Save: %v", err)
	}
	mustQuery(t, db, "g", `CREATE (p:P {k: 1})`)

	// The operation under fault must fail and must not corrupt state.
	disarm := fault.Enable(fp, spec)
	var opErr error
	if saveFailpoint(fp) {
		opErr = db.Save()
	} else {
		_, opErr = db.Query("g", `CREATE (q:Q {k: 2})`)
	}
	disarm()
	if fault.Hits(fp) == 0 {
		t.Fatalf("failpoint %s was never reached", fp)
	}
	if opErr == nil {
		t.Fatalf("failpoint %s fired but the operation succeeded", fp)
	}

	// The database stays usable after the failure, and records acked
	// now must survive recovery even though a torn/partial record may
	// have preceded them (the append rollback guarantees this).
	mustQuery(t, db, "g", `CREATE (r:R {k: 3})`)
	want := dumpAll(t, db)

	// Crash (abandon db without Close) and recover.
	db2 := reopen(t, dir)
	sameState(t, want, dumpAll(t, db2))

	// The recovered database accepts and persists new writes.
	mustQuery(t, db2, "h", `CREATE (z:Z)`)
	db3 := reopen(t, dir)
	sameState(t, dumpAll(t, db2), dumpAll(t, db3))
}

// TestChaosCrashAtEveryFailpoint simulates the harshest case: the
// process dies AT the failpoint (a panic unwinds past every cleanup
// path), leaving files exactly as a kill -9 at that instant would.
// Recovery must surface either the acked state or — when the crash
// struck after the journal bytes reached the file — the acked state
// plus the one in-flight operation. Never anything else.
func TestChaosCrashAtEveryFailpoint(t *testing.T) {
	for _, fp := range chaosFailpoints(t) {
		t.Run(fp, func(t *testing.T) {
			defer fault.Reset()
			dir := t.TempDir()
			db := reopen(t, dir)
			mustQuery(t, db, "g", `CREATE (a:N)-[:a]->(b:N), (b)-[:b]->(c:N)`)
			if err := db.Save(); err != nil {
				t.Fatalf("unarmed Save: %v", err)
			}
			mustQuery(t, db, "h", `CREATE (x:M)`)
			acked := dumpAll(t, db)

			// The in-flight mutation may legitimately survive a crash
			// that struck after its journal record was written.
			const inflight = `CREATE (q:Q {k: 2})`
			ackedPlus := map[string]string{}
			{
				alt := New()
				for name, d := range acked {
					if err := alt.Restore(name, d); err != nil {
						t.Fatal(err)
					}
				}
				mustQuery(t, alt, "g", inflight)
				ackedPlus = dumpAll(t, alt)
			}

			disarm := fault.Enable(fp, fault.Spec{Panic: "chaos: crash here"})
			panicked := func() (panicked bool) {
				defer func() { panicked = recover() != nil }()
				if saveFailpoint(fp) {
					// The panic preempts the return; there is no error to read.
					_ = db.Save()
				} else {
					// Ditto.
					_, _ = db.Query("g", inflight)
				}
				return false
			}()
			disarm()
			if !panicked {
				t.Fatalf("failpoint %s did not crash the operation", fp)
			}

			// db is now a corpse mid-operation; abandon it and recover.
			got := dumpAll(t, reopen(t, dir))
			if !reflect.DeepEqual(got, acked) && !reflect.DeepEqual(got, ackedPlus) {
				t.Fatalf("recovery after crash at %s produced neither the acked state nor acked+in-flight:\ngot: %v\nacked: %v", fp, got, acked)
			}
		})
	}
}

// TestChaosRecoveryMatchesOracle closes the loop with the paper's
// semantics: a graph built through journaled Cypher survives a torn
// crash, and the recovered store's context-free path query returns
// exactly the reachability relation the reference CYK oracle computes
// for S -> a S b | a b on the same graph.
func TestChaosRecoveryMatchesOracle(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := reopen(t, dir)

	// An a-cycle of length 2 feeding a b-cycle of length 3 — nested
	// a^n b^n matches wrap both cycles, so the answer is not a toy.
	mustQuery(t, db, "anbn", `CREATE (v0)-[:a]->(v1), (v1)-[:a]->(v0), (v0)-[:b]->(v2), (v2)-[:b]->(v3), (v3)-[:b]->(v0)`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	mustQuery(t, db, "anbn", `CREATE (v1b)-[:b]->(v1c)`) // journal-only tail

	// Tear the next append mid-record and crash.
	disarm := fault.Enable(FPJournalAppend, fault.Spec{TruncateAfter: 5})
	if _, err := db.Query("anbn", `CREATE (w)-[:a]->(w2)`); err == nil {
		t.Fatal("torn append was acknowledged")
	}
	disarm()
	db2 := reopen(t, dir)

	got := rows(t, db2, "anbn", `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)

	// The oracle runs on the same graph built directly: vertices are
	// numbered in order of first appearance in the CREATE statements.
	g := graph.New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 0)
	g.AddEdge(0, "b", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 0)
	g.AddEdge(4, "b", 5)
	w := grammar.MustWCNF(grammar.MustParse("S -> a S b | a b"))
	want := oracle.CFPQ(g, w).StartPairs()

	if len(got) != len(want) {
		t.Fatalf("recovered query returned %d pairs, oracle %d\ngot: %v\nwant: %v", len(got), len(want), got, want)
	}
	for i, p := range want {
		if got[i][0] != int64(p[0]) || got[i][1] != int64(p[1]) {
			t.Fatalf("pair %d: got %v, oracle wants %v", i, got[i], p)
		}
	}
	if len(want) == 0 {
		t.Fatal("oracle relation is empty — the scenario lost its teeth")
	}
}

// FuzzRecoverJournal feeds arbitrary bytes to recovery as the journal
// paired with an empty store: Open must never panic, and whenever it
// succeeds a second Open over the recovered directory must agree —
// truncated tails stay truncated.
func FuzzRecoverJournal(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xde, 0xad, 0xbe, 0xef, 'Q'})
	f.Add(journalOp{op: opCypher, name: "g", arg: `CREATE (a:N)`}.encode())
	f.Add(journalOp{op: opDelete, name: "g"}.encode()[:7])
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(journalPath(dir, 0), data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			return
		}
		first := dumpAll(t, db)
		if err := db.Close(); err != nil {
			t.Fatalf("Close after fuzzed recovery: %v", err)
		}
		db2, err := Open(dir)
		if err != nil {
			t.Fatalf("second Open diverged: %v", err)
		}
		defer db2.Close()
		if !reflect.DeepEqual(first, dumpAll(t, db2)) {
			t.Fatal("recovery is not idempotent over a fuzzed journal")
		}
	})
}

// FuzzRecoverSnapshot feeds arbitrary bytes to snapshot validation:
// readSnapshotFile (via Open's fallback scan) must never panic and
// must reject damage rather than load garbage.
func FuzzRecoverSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(snapshotMagic))
	f.Add([]byte("MSCFPQSNAP\x00\x01\x00\x00\x00\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(snapshotPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, err := Open(dir)
		if err != nil {
			return // rejected damage: the contract for arbitrary bytes
		}
		// Fuzz cleanup; the store was already validated by Open.
		defer db.Close()
		dumpAll(t, db)
	})
}
