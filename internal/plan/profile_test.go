package plan

import (
	"strings"
	"testing"

	"mscfpq/internal/cypher"
)

func TestExecuteProfiled(t *testing.T) {
	q, err := cypher.Parse(`MATCH (v:x)-[:a]->(u) RETURN v, u`)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(paperGraph(), nil, nil)
	p, err := Build(q, env)
	if err != nil {
		t.Fatal(err)
	}
	rs, entries, err := p.ExecuteProfiled()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if len(entries) != 3 { // Project, CondTraverse, LabelScan
		t.Fatalf("entries = %d: %+v", len(entries), entries)
	}
	// The projection produces exactly the result rows.
	if entries[0].Records != 1 {
		t.Fatalf("project records = %d", entries[0].Records)
	}
	// The label scan produced the two x-labeled vertices.
	if entries[2].Records != 2 {
		t.Fatalf("scan records = %d", entries[2].Records)
	}
	// Inclusive time is monotone down the chain.
	if entries[0].Inclusive < entries[1].Inclusive || entries[1].Inclusive < entries[2].Inclusive {
		t.Fatalf("inclusive times not monotone: %+v", entries)
	}
	lines := RenderProfile(entries)
	if len(lines) != 3 || !strings.Contains(lines[0], "Records produced: 1") {
		t.Fatalf("rendered = %v", lines)
	}
}

func TestExecuteProfiledWithPathPattern(t *testing.T) {
	q, err := cypher.Parse(`
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(paperGraph(), nil, nil)
	p, err := Build(q, env)
	if err != nil {
		t.Fatal(err)
	}
	rs, entries, err := p.ExecuteProfiled()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	found := false
	for _, e := range entries {
		if strings.Contains(e.Op, "CFPQTraverse") && e.Records == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing CFPQTraverse entry: %+v", entries)
	}
}
