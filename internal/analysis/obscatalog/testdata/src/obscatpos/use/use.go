// Package use exercises the forward check against the drifted catalog.
package use

import "obscatpos/obs"

// Bad uses a name the catalog never declared.
func Bad() {
	obs.NewTrace("unregistered.query") // want `metric/span name "unregistered\.query" is not in the internal/obs catalog`
}

// Dyn builds a span name ad hoc instead of through an obs helper.
func Dyn(t *obs.Trace, name string) {
	t.Start("prefix." + name) // want `dynamic metric/span name does not come from the obs catalog`
}

// Touch keeps the live entries referenced so only the dead ones flag.
func Touch() {
	t := obs.NewTrace(obs.SpanQuery)
	t.Start(obs.SpanQuery)
	t.Start(obs.SpanBatchWait)
	obs.KernelOps.Inc()
	obs.BatchGroups.Inc()
	obs.BadLayer.Inc()
}
