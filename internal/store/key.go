package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/matrix"
)

// Key is a canonical cache key. Two keys are equal exactly when the
// cached computation is guaranteed to produce byte-identical results:
// same store incarnation, same version, same grammar up to nonterminal
// renaming, same source set up to order and duplication, same
// algorithm.
type Key string

// GrammarHash fingerprints a WCNF grammar α-renaming-invariantly.
// ToWCNF interns nonterminals by first appearance in the production
// list and emits rule lists in deterministic id order, so renaming
// nonterminals (which preserves production order) yields identical
// interned ids. The hash therefore covers the id structure — start id,
// term rules as (id, terminal NAME), binary rules as id triples, the
// nullable set — and deliberately ignores nonterminal names. Terminal
// names are included: they are the graph's edge labels, part of the
// query's meaning.
func GrammarHash(w *grammar.WCNF) string {
	h := sha256.New()
	var buf [8]byte
	wr := func(vals ...int) {
		for _, v := range vals {
			binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
			h.Write(buf[:])
		}
	}
	wr(w.Start, w.NumNonterms(), len(w.TermRules), len(w.BinRules))
	for _, r := range w.TermRules {
		name := w.Terms[r.Term]
		wr(r.A, len(name))
		h.Write([]byte(name))
	}
	for _, r := range w.BinRules {
		wr(r.A, r.B, r.C)
	}
	for a, null := range w.Nullable {
		if null {
			wr(a)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// SourceKey canonicalizes a source set. Vectors are sorted and
// duplicate-free by construction (matrix.NewVectorFromIndices), so
// permuted or duplicated input id lists map to the same key. nil means
// the unrestricted all-pairs answer. The vector length participates:
// the same id set over a different vertex count is a different query.
func SourceKey(src *matrix.Vector) string {
	if src == nil {
		return "all"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", src.Size())
	for i, id := range src.Indices() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%x", id)
	}
	return b.String()
}

// EvalKey is the canonical key of one CFPQ evaluation: (store
// incarnation, graph version, grammar hash, canonicalized source set,
// algorithm). Distinct versions or incarnations can never collide —
// both are literal key fields.
func EvalKey(storeID, version uint64, w *grammar.WCNF, src *matrix.Vector, alg exec.Algorithm) Key {
	return Key(fmt.Sprintf("eval|%d|%d|%s|%s|%d", storeID, version, GrammarHash(w), SourceKey(src), int(alg)))
}

// ResultKey is the key of a full gdb query result: the raw statement
// text against one (store incarnation, version). Textual — two
// spellings of the same query cache separately, which costs a
// duplicate entry but can never serve a wrong answer.
func ResultKey(storeID, version uint64, query string) Key {
	return Key(fmt.Sprintf("res|%d|%d|%s", storeID, version, query))
}
