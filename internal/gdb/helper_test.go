package gdb

import "mscfpq/internal/cypher"

func propVal(s string) cypher.Value { return cypher.Value{Str: s} }
