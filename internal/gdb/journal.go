package gdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"mscfpq/internal/fault"
	"mscfpq/internal/obs"
)

// The operation journal is the AOF half of durability: every mutating
// command (GRAPH.RESTORE, GRAPH.DELETE, mutating Cypher) is appended
// as one length-prefixed, checksummed record and fsynced before the
// mutation is acknowledged. Startup recovery replays the journal that
// pairs with the loaded snapshot, truncating a torn tail (a record cut
// short or failing its CRC) instead of failing:
//
//	record:  uint32 payloadLen | uint32 CRC32(payload) | payload
//	payload: opcode byte | uint32 nameLen | name | uint32 argLen | arg
//
// Opcodes: 'Q' mutating Cypher (arg = statement), 'R' GRAPH.RESTORE
// (arg = dump), 'D' GRAPH.DELETE (arg empty). Integers are big-endian.

const (
	opCypher  = 'Q'
	opRestore = 'R'
	opDelete  = 'D'

	// maxJournalRecord bounds one record payload (256 MiB): larger
	// length prefixes are treated as corruption, not allocations.
	maxJournalRecord = 256 << 20
)

// Failpoints in the journal write path.
const (
	FPJournalAppend = "gdb.journal.append"
	FPJournalSync   = "gdb.journal.sync"
	FPJournalRotate = "gdb.journal.rotate"
)

var _ = fault.Declare(FPJournalAppend, FPJournalSync, FPJournalRotate)

// journalOp is one decoded journal record.
type journalOp struct {
	op   byte
	name string
	arg  string
}

// encode renders the record, checksummed and length-prefixed.
func (o journalOp) encode() []byte {
	payload := make([]byte, 0, 9+len(o.name)+len(o.arg))
	payload = append(payload, o.op)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(o.name)))
	payload = append(payload, o.name...)
	payload = binary.BigEndian.AppendUint32(payload, uint32(len(o.arg)))
	payload = append(payload, o.arg...)

	rec := make([]byte, 0, 8+len(payload))
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = binary.BigEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	return append(rec, payload...)
}

// decodeJournalOp parses one CRC-validated payload.
func decodeJournalOp(payload []byte) (journalOp, error) {
	if len(payload) < 9 {
		return journalOp{}, fmt.Errorf("gdb: journal payload too short (%d bytes)", len(payload))
	}
	op := payload[0]
	rest := payload[1:]
	nameLen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(nameLen) > uint64(len(rest)) {
		return journalOp{}, fmt.Errorf("gdb: journal name length %d exceeds payload", nameLen)
	}
	name := string(rest[:nameLen])
	rest = rest[nameLen:]
	if len(rest) < 4 {
		return journalOp{}, fmt.Errorf("gdb: journal payload truncated before arg length")
	}
	argLen := binary.BigEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(argLen) != uint64(len(rest)) {
		return journalOp{}, fmt.Errorf("gdb: journal arg length %d does not match payload", argLen)
	}
	switch op {
	case opCypher, opRestore, opDelete:
	default:
		return journalOp{}, fmt.Errorf("gdb: unknown journal opcode %q", op)
	}
	return journalOp{op: op, name: name, arg: string(rest)}, nil
}

// appendJournal writes one record to the open journal file and fsyncs
// it, returning the record's framed length so the caller can advance
// its journal offset. The caller holds the durability journal lock.
func appendJournal(f *os.File, o journalOp) (int64, error) {
	if err := fault.Inject(FPJournalAppend); err != nil {
		return 0, fmt.Errorf("gdb: journal append: %w", err)
	}
	rec := o.encode()
	if _, err := fault.Writer(FPJournalAppend, f).Write(rec); err != nil {
		return 0, fmt.Errorf("gdb: journal append: %w", err)
	}
	if err := fault.Inject(FPJournalSync); err != nil {
		return 0, fmt.Errorf("gdb: journal sync: %w", err)
	}
	syncStart := time.Now()
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("gdb: journal sync: %w", err)
	}
	obs.DurFsyncLatencyUS.Observe(time.Since(syncStart).Microseconds())
	obs.DurJournalAppends.Inc()
	obs.DurJournalBytes.Add(int64(len(rec)))
	return int64(len(rec)), nil
}

// readJournal scans the journal at path, returning every intact record
// in order and the byte offset where the intact prefix ends. A missing
// file is an empty journal. Damage — a short header, a payload cut off
// by EOF, a CRC mismatch, an undecodable payload — ends the scan at
// the last good offset; torn reports whether such a tail was found.
// The caller truncates the file there so the next append starts on a
// record boundary.
func readJournal(path string) (ops []journalOp, good int64, torn bool, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, false, nil
	}
	if err != nil {
		return nil, 0, false, err
	}
	//lint:ignore errdrop read-only file; close failures cannot lose data
	defer f.Close()

	var off int64
	header := make([]byte, 8)
	for {
		if _, err := io.ReadFull(f, header); err != nil {
			// Clean EOF on a record boundary: the whole journal is
			// intact. Anything else is a torn tail.
			return ops, off, err != io.EOF, nil
		}
		payloadLen := binary.BigEndian.Uint32(header)
		crc := binary.BigEndian.Uint32(header[4:])
		if payloadLen > maxJournalRecord {
			return ops, off, true, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(f, payload); err != nil {
			return ops, off, true, nil
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return ops, off, true, nil
		}
		op, err := decodeJournalOp(payload)
		if err != nil {
			return ops, off, true, nil
		}
		ops = append(ops, op)
		off += 8 + int64(payloadLen)
	}
}
