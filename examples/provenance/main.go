// Provenance segmentation: the data-provenance use case from the
// paper's introduction (Miao & Deshpande, ICDE'19, reduce graph
// segmentation to CFPQ — and hit the wall that "no graph database
// supports CFPQ").
//
// The model: a workflow provenance graph with file and activity
// vertices. Activities read files (an activity -used-> file edge) and
// write files (a file -gen-> activity edge, i.e. wasGeneratedBy). A
// file g sits at the same derivation generation as f when walking up
// f's lineage n derivation steps reaches a common ancestor from which
// g is derived in exactly n steps:
//
//	S -> gen used S used_r gen_r | gen used used_r gen_r
//
// ("gen used" climbs one derivation, "used_r gen_r" descends one).
// This balanced climbing is context-free — not expressible as a regular
// query — which is exactly why the paper needs CFPQ in the database.
//
// Run with: go run ./examples/provenance
package main

import (
	"fmt"
	"log"

	"mscfpq"
)

func main() {
	// Two pipeline runs share one raw input:
	//   raw --(run A)--> A/clean -> A/features -> A/model
	//   raw --(run B)--> B/clean -> B/features -> B/model
	// Files: 0 raw, 1-3 run A, 4-6 run B. Activities: 7-12.
	g := mscfpq.NewGraph(13)
	type stage struct{ act, in, out int }
	stages := []stage{
		{7, 0, 1}, {8, 1, 2}, {9, 2, 3}, // run A
		{10, 0, 4}, {11, 4, 5}, {12, 5, 6}, // run B
	}
	for _, s := range stages {
		g.AddEdge(s.act, "used", s.in) // activity used input file
		g.AddEdge(s.out, "gen", s.act) // output wasGeneratedBy activity
	}
	names := map[int]string{
		0: "raw", 1: "A/clean", 2: "A/features", 3: "A/model",
		4: "B/clean", 5: "B/features", 6: "B/model",
	}

	gr, err := mscfpq.ParseGrammar(`
		S -> gen used S used_r gen_r | gen used used_r gen_r
	`)
	if err != nil {
		log.Fatal(err)
	}
	w, err := mscfpq.ToWCNF(gr)
	if err != nil {
		log.Fatal(err)
	}

	// Segment around run A's artifacts: which files of any run sit at
	// the same derivation depth?
	src := mscfpq.NewVertexSet(g.NumVertices(), 1, 2, 3)
	res, err := mscfpq.EvalCFPQ(g, w, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("files at the same derivation generation:")
	for _, p := range res.Pairs() {
		if p[0] == p[1] {
			continue
		}
		fmt.Printf("  %-11s ~ %s\n", names[p[0]], names[p[1]])
	}

	// The same segmentation through the database stack, as the paper's
	// full-stack contribution makes possible.
	db := mscfpq.NewDB()
	db.AddGraph("prov", g)
	reply, err := db.Query("prov", `
		PATH PATTERN SG = ()-/ [:gen :used ~SG <:used <:gen] | [:gen :used <:used <:gen] /->()
		MATCH (f)-/ ~SG /->(h)
		WHERE id(f) IN [1, 2, 3]
		RETURN f, h`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via GRAPH.QUERY: %d rows (library agrees: %v)\n",
		len(reply.Rows), len(reply.Rows) == res.Stats().Answers)
}
