package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked body of Go files presented to analyzers: a
// package's compiled files, optionally merged with its in-package test
// files, or a package's external (_test package) test files.
type Unit struct {
	// Path is the unit's import path ("mscfpq/internal/cfpq", with a
	// "_test" suffix for external test units).
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Module loads and type-checks the packages of one Go module from
// source, with no toolchain dependencies beyond the standard library:
// imports inside the module resolve to its directories, anything else
// resolves through the standard library's source importer.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path declared in go.mod

	// Extra maps additional import paths to directories, letting test
	// fixtures outside the module (testdata/src/...) import each other
	// and be loaded as units.
	Extra map[string]string

	fset     *token.FileSet
	ctx      build.Context // file selection: build.Default plus any extra tags
	std      types.ImporterFrom
	pkgs     map[string]*types.Package // pure (non-test) packages by import path
	checking map[string]bool
}

// LoadModule prepares a loader for the module rooted at root, selecting
// files with the default build configuration.
func LoadModule(root string) (*Module, error) {
	return LoadModuleTags(root, nil)
}

// LoadModuleTags is LoadModule with extra build tags (e.g. "nofault"),
// so analyzers can be run over every file set the module compiles —
// tag-split files like internal/fault's fault.go/fault_off.go pair are
// otherwise only half-checked.
func LoadModuleTags(root string, tags []string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: not a module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	ctx := build.Default
	ctx.BuildTags = append(ctx.BuildTags[:len(ctx.BuildTags):len(ctx.BuildTags)], tags...)
	return &Module{
		Root:     root,
		Path:     modPath,
		fset:     fset,
		ctx:      ctx,
		std:      std,
		pkgs:     map[string]*types.Package{},
		checking: map[string]bool{},
	}, nil
}

// Fset returns the file set shared by everything the module loads.
func (m *Module) Fset() *token.FileSet { return m.fset }

// Dirs returns the module-relative paths ("" for the root package) of
// every directory containing buildable Go files, sorted, skipping
// testdata, hidden, and underscore-prefixed directories.
func (m *Module) Dirs() ([]string, error) {
	var out []string
	err := filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != m.Root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(m.Root, path)
			if err != nil {
				return err
			}
			if rel == "." {
				rel = ""
			}
			out = append(out, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// ImportPath returns the import path of a module-relative directory.
func (m *Module) ImportPath(rel string) string {
	if rel == "" {
		return m.Path
	}
	return m.Path + "/" + rel
}

// dirFor resolves an import path to a directory inside the module or
// the Extra map; ok is false for anything else (standard library).
func (m *Module) dirFor(path string) (string, bool) {
	if dir, ok := m.Extra[path]; ok {
		return dir, true
	}
	if path == m.Path {
		return m.Root, true
	}
	if rest, ok := strings.CutPrefix(path, m.Path+"/"); ok {
		return filepath.Join(m.Root, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer.
func (m *Module) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module and fixture paths
// are type-checked from their directories (caching the result), the
// rest is delegated to the standard library source importer.
func (m *Module) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if pkgDir, ok := m.dirFor(path); ok {
		return m.loadPure(path, pkgDir)
	}
	return m.std.ImportFrom(path, dir, mode)
}

// loadPure type-checks the non-test files of one directory and caches
// the resulting package. It is what import resolution uses, so test
// files never leak into importers.
func (m *Module) loadPure(path, dir string) (*types.Package, error) {
	if pkg, ok := m.pkgs[path]; ok {
		return pkg, nil
	}
	if m.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	m.checking[path] = true
	defer delete(m.checking, path)

	files, _, _, err := m.listFiles(dir)
	if err != nil {
		return nil, err
	}
	parsed, err := m.parse(dir, files)
	if err != nil {
		return nil, err
	}
	pkg, err := m.check(path, parsed, nil)
	if err != nil {
		return nil, err
	}
	m.pkgs[path] = pkg
	return pkg, nil
}

// listFiles returns the buildable compiled, in-package test, and
// external test file names of a directory, honoring build constraints.
func (m *Module) listFiles(dir string) (goFiles, testFiles, xtestFiles []string, err error) {
	bp, err := m.ctx.ImportDir(dir, 0)
	if err != nil {
		var noGo *build.NoGoError
		if !errors.As(err, &noGo) {
			return nil, nil, nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
	}
	if bp == nil {
		return nil, nil, nil, nil
	}
	return bp.GoFiles, bp.TestGoFiles, bp.XTestGoFiles, nil
}

func (m *Module) parse(dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as a package. info may be nil for pure
// import-resolution loads.
func (m *Module) check(path string, files []*ast.File, info *types.Info) (*types.Package, error) {
	var errs []error
	conf := types.Config{
		Importer: m,
		Error: func(err error) {
			if len(errs) < 10 {
				errs = append(errs, err)
			}
		},
	}
	pkg, _ := conf.Check(path, m.fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type errors in %s: %v", path, errs[0])
	}
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// LoadUnits loads the analysis units of one module-relative directory:
// the compiled package merged with its in-package test files, plus (if
// present and tests is true) the external test package. With tests
// false, test files are excluded entirely.
func (m *Module) LoadUnits(rel string, tests bool) ([]*Unit, error) {
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	path := m.ImportPath(rel)
	goFiles, testFiles, xtestFiles, err := m.listFiles(dir)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	names := goFiles
	if tests {
		names = append(append([]string{}, goFiles...), testFiles...)
	}
	if len(names) > 0 {
		u, err := m.checkUnit(path, dir, names)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if tests && len(xtestFiles) > 0 {
		u, err := m.checkUnit(path+"_test", dir, xtestFiles)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// LoadFixture loads a fixture directory (outside the module tree) as a
// single unit under the given import path; all .go files in the
// directory are included.
func (m *Module) LoadFixture(importPath, dir string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return m.checkUnit(importPath, dir, names)
}

func (m *Module) checkUnit(path, dir string, names []string) (*Unit, error) {
	files, err := m.parse(dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	pkg, err := m.check(path, files, info)
	if err != nil {
		return nil, err
	}
	return &Unit{Path: path, Fset: m.fset, Files: files, Pkg: pkg, Info: info}, nil
}
