// Command gsql-server runs the graph database over the RESP protocol —
// the reproduction of the paper's CFPQ-extended RedisGraph.
//
// Usage:
//
//	gsql-server -addr :6380
//	gsql-server -addr :6380 -load social=social.txt -seed core@0.5
//
// Clients speak RESP: GRAPH.QUERY <name> <cypher>, GRAPH.EXPLAIN,
// GRAPH.DELETE, GRAPH.LIST, PING. See cmd/gsql-cli for an interactive
// client.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"mscfpq/internal/dataset"
	"mscfpq/internal/gdb"
	"mscfpq/internal/graph"
	"mscfpq/internal/resp"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsql-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr  = flag.String("addr", ":6380", "listen address")
		loads listFlag
		seeds listFlag
	)
	flag.Var(&loads, "load", "name=path of a graph file to load (repeatable)")
	flag.Var(&seeds, "seed", "dataset graph to generate, name[@scale] (repeatable)")
	flag.Parse()

	db, err := buildDB(loads, seeds, log.Default())
	if err != nil {
		return err
	}
	srv := resp.NewServer(db)
	srv.Logger = log.Default()
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("gsql-server listening on %s", bound)
	return srv.Serve()
}

// buildDB assembles the database from -load and -seed specifications.
func buildDB(loads, seeds []string, logger *log.Logger) (*gdb.DB, error) {
	db := gdb.New()
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -load %q (want name=path)", spec)
		}
		g, err := graph.LoadFile(path)
		if err != nil {
			return nil, err
		}
		db.AddGraph(name, g)
		logger.Printf("loaded %s: %d vertices, %d edges", name, g.NumVertices(), g.NumEdges())
	}
	for _, spec := range seeds {
		name, scaleStr, hasScale := strings.Cut(spec, "@")
		scale := 1.0
		if hasScale {
			var err error
			scale, err = strconv.ParseFloat(scaleStr, 64)
			if err != nil || scale <= 0 {
				return nil, fmt.Errorf("bad -seed scale %q", scaleStr)
			}
		}
		s, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		g := dataset.Generate(dataset.Scaled(s, scale))
		db.AddGraph(name, g)
		logger.Printf("seeded %s: %d vertices, %d edges", name, g.NumVertices(), g.NumEdges())
	}
	return db, nil
}
