package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mscfpq/internal/graph"
)

func TestDatagenList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"core", "taxonomy", "geospecies"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %q:\n%s", want, out.String())
		}
	}
}

func TestDatagenSingle(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "core.txt")
	var out strings.Builder
	if err := run([]string{"-name", "core", "-scale", "0.5", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 || g.EdgeCount("subClassOf") == 0 {
		t.Fatal("generated graph is empty")
	}
}

func TestDatagenAll(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-all", "-scale", "0.001", "-dir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("generated %d files, want 8", len(entries))
	}
}

func TestDatagenErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-name", "nope"}, &out); err == nil {
		t.Fatal("expected error for unknown graph")
	}
	if err := run([]string{}, &out); err == nil {
		t.Fatal("expected error for missing mode")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("expected flag parse error")
	}
}
