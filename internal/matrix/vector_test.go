package matrix

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVectorSetGet(t *testing.T) {
	v := NewVector(10)
	for _, i := range []int{5, 1, 9, 1} {
		v.Set(i)
	}
	if v.NVals() != 3 || !v.Get(5) || !v.Get(1) || !v.Get(9) || v.Get(0) {
		t.Fatalf("vector state wrong: %v", v)
	}
	if got := v.Ints(); !reflect.DeepEqual(got, []int{1, 5, 9}) {
		t.Fatalf("Ints = %v", got)
	}
}

func TestVectorUnionDiff(t *testing.T) {
	a := NewVectorFromIndices(8, []int{1, 3, 5})
	b := NewVectorFromIndices(8, []int{3, 4})
	if !a.UnionInPlace(b) {
		t.Fatal("union adding new index must report change")
	}
	if !reflect.DeepEqual(a.Ints(), []int{1, 3, 4, 5}) {
		t.Fatalf("union = %v", a.Ints())
	}
	if a.UnionInPlace(b) {
		t.Fatal("second union must report no change")
	}
	if !a.DiffInPlace(NewVectorFromIndices(8, []int{1, 4})) {
		t.Fatal("diff removing indices must report change")
	}
	if !reflect.DeepEqual(a.Ints(), []int{3, 5}) {
		t.Fatalf("diff = %v", a.Ints())
	}
	if a.DiffInPlace(NewVector(8)) {
		t.Fatal("diff with empty must report no change")
	}
}

func TestVectorCloneEqual(t *testing.T) {
	a := NewVectorFromIndices(5, []int{0, 2})
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(4)
	if a.Equal(b) || a.Get(4) {
		t.Fatal("clone shares storage")
	}
	if a.Equal(NewVector(6)) {
		t.Fatal("vectors of different size must differ")
	}
}

func TestDiagRoundTrip(t *testing.T) {
	v := NewVectorFromIndices(6, []int{0, 3, 5})
	d := v.Diag()
	if d.NVals() != 3 || !d.Get(3, 3) || d.Get(3, 0) {
		t.Fatalf("Diag wrong:\n%v", d)
	}
	if !DiagVector(d).Equal(v) {
		t.Fatal("DiagVector(Diag(v)) != v")
	}
}

func TestReduceColsMatchesGetDst(t *testing.T) {
	m := NewBoolFromPairs(5, 5, [][2]int{{0, 2}, {1, 2}, {3, 4}})
	want := NewVectorFromIndices(5, []int{2, 4})
	if got := ReduceCols(m); !got.Equal(want) {
		t.Fatalf("ReduceCols = %v, want %v", got, want)
	}
	if got := GetDst(m); !got.Equal(want.Diag()) {
		t.Fatalf("GetDst = %v", got)
	}
}

func TestReduceRows(t *testing.T) {
	m := NewBoolFromPairs(4, 3, [][2]int{{0, 1}, {2, 0}, {2, 2}})
	if got := ReduceRows(m); !got.Equal(NewVectorFromIndices(4, []int{0, 2})) {
		t.Fatalf("ReduceRows = %v", got)
	}
}

func TestVecMul(t *testing.T) {
	m := NewBoolFromPairs(4, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	v := NewVectorFromIndices(4, []int{0, 2})
	if got := VecMul(v, m); !got.Equal(NewVectorFromIndices(4, []int{1, 3})) {
		t.Fatalf("VecMul = %v", got)
	}
	if got := VecMul(NewVector(4), m); !got.Empty() {
		t.Fatal("empty vector times matrix must be empty")
	}
}

// Property (testing/quick): GetDst(M) has exactly the columns of M on its
// diagonal, for arbitrary generated matrices.
func TestGetDstPropertyQuick(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		const n = 24
		m := NewBool(n, n)
		for _, p := range pairs {
			m.Set(int(p[0])%n, int(p[1])%n)
		}
		d := GetDst(m)
		// Every column of m appears on d's diagonal and nothing else.
		cols := map[int]bool{}
		m.Iterate(func(i, j int) bool { cols[j] = true; return true })
		if d.NVals() != len(cols) {
			return false
		}
		for j := range cols {
			if !d.Get(j, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): Diag(v) * M selects exactly the rows of M
// listed in v — the row-filtering identity Algorithm 2 relies on.
func TestDiagMulSelectsRowsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(rowsSeed []uint8) bool {
		const n = 20
		m, _ := randomMatrix(rng, n, n, 0.2)
		v := NewVector(n)
		for _, s := range rowsSeed {
			v.Set(int(s) % n)
		}
		got := Mul(v.Diag(), m)
		want := ExtractRows(m, v)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
