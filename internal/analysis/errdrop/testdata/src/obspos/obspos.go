// Package obspos holds errdrop positives for the observability scope:
// metrics-serialization errors silently discarded on the way to an
// HTTP response or a log line.
package obspos

import (
	"net/http"

	"mscfpq/internal/obs"
)

// handlerDrop is the metrics-endpoint shape the scope extension
// exists for: the snapshot encoding error vanishes and the scraper
// receives an empty 200.
func handlerDrop(w http.ResponseWriter) {
	body, _ := obs.MarshalSnapshot(obs.Default.Snapshot()) // want `error result of obs.MarshalSnapshot assigned to _`
	w.Write(body)
}

// statementDrop discards both the body and the error.
func statementDrop() {
	obs.MarshalSnapshot(obs.Default.Snapshot()) // want `error returned by obs.MarshalSnapshot is dropped`
}
