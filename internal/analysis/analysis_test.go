package analysis_test

import (
	"go/ast"
	"path/filepath"
	"strings"
	"testing"

	"mscfpq/internal/analysis"
)

// callmark flags every function call; paired with the supp fixture it
// pins the suppression policy end to end.
func callmark() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "callmark",
		Doc:  "test analyzer flagging every call expression",
		Run: func(p *analysis.Pass) error {
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok {
						p.Reportf(c.Pos(), "call marked")
					}
					return true
				})
			}
			return nil
		},
	}
}

func loadFixture(t *testing.T, pkg string) (*analysis.Module, *analysis.Unit) {
	t.Helper()
	m, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	u, err := m.LoadFixture(pkg, dir)
	if err != nil {
		t.Fatal(err)
	}
	return m, u
}

func TestSuppressionPolicy(t *testing.T) {
	_, u := loadFixture(t, "supp")
	diags, err := analysis.Run(callmark(), u)
	if err != nil {
		t.Fatal(err)
	}
	var marked, badIgnore int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "requires a reason"):
			badIgnore++
		case d.Message == "call marked":
			marked++
		default:
			t.Errorf("unexpected diagnostic: %s", d.Message)
		}
	}
	// Five calls in the fixture: trailing and standalone are suppressed
	// with reasons; noReason survives (its ignore is malformed and is
	// itself reported); otherAnalyzer names a different check; bare has
	// no comment at all.
	if marked != 3 {
		t.Errorf("surviving diagnostics = %d, want 3 (noReason, otherAnalyzer, bare)", marked)
	}
	if badIgnore != 1 {
		t.Errorf("reason-less ignore reports = %d, want 1", badIgnore)
	}
}

func TestLoadUnits(t *testing.T) {
	m, err := analysis.LoadModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	units, err := m.LoadUnits("internal/grammar", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("no units for internal/grammar")
	}
	if units[0].Path != "mscfpq/internal/grammar" {
		t.Errorf("unit path = %q", units[0].Path)
	}
	if units[0].Pkg == nil || units[0].Pkg.Name() != "grammar" {
		t.Errorf("unexpected package: %v", units[0].Pkg)
	}
}
