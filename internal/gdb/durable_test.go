package gdb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mscfpq/internal/fault"
)

// reopen simulates a crash-and-restart: the DB is abandoned without
// Close (its journal fd leaks for the test's lifetime, like a killed
// process's) and the directory is recovered fresh.
func reopen(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() {
		if err := db.Close(); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("Close: %v", err)
		}
	})
	return db
}

func mustQuery(t *testing.T, db *DB, graph, src string) *QueryResult {
	t.Helper()
	res, err := db.Query(graph, src)
	if err != nil {
		t.Fatalf("Query(%s, %q): %v", graph, src, err)
	}
	return res
}

// dumpAll renders every graph, keyed by name — the state fingerprint
// the recovery tests compare.
func dumpAll(t *testing.T, db *DB) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range db.List() {
		d, err := db.Dump(name)
		if err != nil {
			t.Fatalf("Dump(%s): %v", name, err)
		}
		out[name] = d
	}
	return out
}

func sameState(t *testing.T, want, got map[string]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("graph sets differ: want %d graphs, got %d", len(want), len(got))
	}
	for name, w := range want {
		if got[name] != w {
			t.Fatalf("graph %q differs after recovery:\nwant:\n%s\ngot:\n%s", name, w, got[name])
		}
	}
}

func TestOpenEmptyAndJournalReplay(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	if !db.Durable() || db.DataDir() != dir {
		t.Fatal("Open did not attach durability")
	}
	mustQuery(t, db, "g", `CREATE (a:N {name: 'x'})-[:e]->(b:N)`)
	mustQuery(t, db, "g", `CREATE (a:M)-[:f]->(b:M)`)
	want := dumpAll(t, db)

	db2 := reopen(t, dir) // journal-only recovery: no snapshot yet
	sameState(t, want, dumpAll(t, db2))
	res := mustQuery(t, db2, "g", `MATCH (v:N)-[:e]->(u) RETURN v, u`)
	if len(res.Rows) != 1 {
		t.Fatalf("replayed graph rows = %d, want 1", len(res.Rows))
	}
}

func TestSaveSnapshotAndRotate(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	if err := db.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := os.Stat(snapshotPath(dir, 1)); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}
	if _, err := os.Stat(journalPath(dir, 1)); err != nil {
		t.Fatalf("rotated journal missing: %v", err)
	}
	if _, err := os.Stat(journalPath(dir, 0)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("retired journal not pruned: %v", err)
	}
	// Ops after the snapshot land in the new journal.
	mustQuery(t, db, "h", `CREATE (a:X)`)
	want := dumpAll(t, db)

	db2 := reopen(t, dir)
	sameState(t, want, dumpAll(t, db2))
}

func TestDeleteAndRestoreAreJournaled(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "a", `CREATE (x:N)`)
	mustQuery(t, db, "b", `CREATE (y:M)`)
	dump, err := db.Dump("a")
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := db.Delete("a"); !ok || err != nil {
		t.Fatalf("Delete = (%v, %v)", ok, err)
	}
	if err := db.Restore("c", dump); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	want := dumpAll(t, db)

	db2 := reopen(t, dir)
	sameState(t, want, dumpAll(t, db2))
	if _, err := db2.Get("a"); err == nil {
		t.Fatal("deleted graph resurrected by replay")
	}
}

func TestTornJournalTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	want := dumpAll(t, db)

	// Tear the tail: append half a record's worth of garbage.
	path := journalPath(dir, 0)
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(intact, 0x00, 0x01, 0x02, 0x03, 0x04), 0o644); err != nil {
		t.Fatal(err)
	}

	db2 := reopen(t, dir)
	sameState(t, want, dumpAll(t, db2))
	// The tail was physically truncated so appends restart cleanly.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(intact) {
		t.Fatalf("journal length after recovery = %d, want %d", len(after), len(intact))
	}
	mustQuery(t, db2, "g", `CREATE (c:P)`)
	db3 := reopen(t, dir)
	sameState(t, dumpAll(t, db2), dumpAll(t, db3))
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)`)
	if err := db.Save(); err != nil { // snap-1
		t.Fatal(err)
	}
	mustQuery(t, db, "g", `CREATE (b:M)`) // acked into wal-1
	if err := db.Save(); err != nil {     // snap-2; snap-1 + wal-1 kept as fallback
		t.Fatal(err)
	}
	want := dumpAll(t, db)

	// Bit-rot the newest snapshot: recovery must fall back to snap-1
	// AND replay its retained journal wal-1, so even the fallback path
	// loses no acknowledged op.
	if err := os.WriteFile(snapshotPath(dir, 2), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journalPath(dir, 1)); err != nil {
		t.Fatalf("fallback journal wal-1 was pruned: %v", err)
	}
	db2 := reopen(t, dir)
	sameState(t, want, dumpAll(t, db2))
}

// TestPruneKeepsOnlyFallbackPair pins the retention policy: after the
// third save the directory holds exactly the live pair and the
// fallback pair.
func TestPruneKeepsOnlyFallbackPair(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	for i := 0; i < 3; i++ {
		mustQuery(t, db, "g", `CREATE (a:N)`)
		if err := db.Save(); err != nil {
			t.Fatal(err)
		}
	}
	for seq, want := range map[uint64]bool{1: false, 2: true, 3: true} {
		_, serr := os.Stat(snapshotPath(dir, seq))
		_, jerr := os.Stat(journalPath(dir, seq))
		if got := serr == nil; got != want {
			t.Errorf("snap-%d present = %v, want %v", seq, got, want)
		}
		if got := jerr == nil; got != want {
			t.Errorf("wal-%d present = %v, want %v", seq, got, want)
		}
	}
	if _, err := os.Stat(journalPath(dir, 0)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("genesis journal wal-0 not pruned: %v", err)
	}
}

func TestAllSnapshotsCorruptIsAnError(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshotPath(dir, 1), []byte("rotten"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("Open succeeded with every snapshot corrupt; want an explicit error, not silent data loss")
	}
}

func TestClosedDatabaseRefusesMutations(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)`)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := db.Query("g", `CREATE (b:M)`); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after Close = %v, want ErrClosed", err)
	}
	if err := db.Save(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Save after Close = %v, want ErrClosed", err)
	}
	// Reads still answer from memory.
	res := mustQuery(t, db, "g", `MATCH (v:N) RETURN v`)
	if len(res.Rows) != 1 {
		t.Fatal("read after Close lost data")
	}
}

func TestSaveOnInMemoryDBErrors(t *testing.T) {
	db := New()
	if err := db.Save(); !errors.Is(err, ErrNotDurable) {
		t.Fatalf("Save on in-memory DB = %v, want ErrNotDurable", err)
	}
	if db.Durable() || db.DataDir() != "" {
		t.Fatal("in-memory DB claims durability")
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close on in-memory DB = %v", err)
	}
}

func TestAutoSaveInterval(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)`)
	db.SetPolicy(Policy{SaveInterval: 20 * time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(snapshotPath(dir, 1)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-saver cut no snapshot within 5s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTempFilesCleanedAtOpen(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "snap-12345.tmp")
	if err := os.WriteFile(stale, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	reopen(t, dir)
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived Open: %v", err)
	}
}

// TestConcurrentMutationsApplyInJournalOrder pins the commit-order
// invariant: mutations must reach memory in the order they reached the
// journal, because replay runs in journal order and applies are
// order-sensitive (runCreate assigns vertex IDs from the current
// count, Restore replaces whole stores). A divergent live order would
// make the recovered state differ from the acknowledged one.
func TestConcurrentMutationsApplyInJournalOrder(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Unique label per goroutine: the label→vertex-ID binding
			// fingerprints the apply order in the dump.
			if _, err := db.Query("g", fmt.Sprintf(`CREATE (a:L%d {k: %d})`, i, i)); err != nil {
				t.Errorf("concurrent CREATE %d: %v", i, err)
			}
			if i%4 == 0 {
				if _, err := db.Query("h", fmt.Sprintf(`CREATE (b:M%d)`, i)); err != nil {
					t.Errorf("concurrent CREATE on h (%d): %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()
	want := dumpAll(t, db)

	db2 := reopen(t, dir)
	sameState(t, want, dumpAll(t, db2))
}

// TestCloseDuringSaveDoesNotInstallJournal covers the auto-saver's
// Save racing Close: the swap must not install the fresh journal into
// a closed durability (leaking its fd and closing a nil handle) — it
// retires the fresh pair and reports ErrClosed instead.
func TestCloseDuringSaveDoesNotInstallJournal(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)`)
	want := dumpAll(t, db)

	// Hold Save at the dirsync — after the snapshot rename, just
	// before the journal swap — while Close runs to completion.
	disarm := fault.Enable(FPSnapshotDirSync, fault.Spec{Delay: 500 * time.Millisecond})
	defer disarm()
	saveErr := make(chan error, 1)
	go func() { saveErr <- db.Save() }()
	deadline := time.Now().Add(5 * time.Second)
	for fault.Hits(FPSnapshotDirSync) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("Save never reached the dirsync failpoint")
		}
		time.Sleep(time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close racing Save: %v", err)
	}
	if err := <-saveErr; !errors.Is(err, ErrClosed) {
		t.Fatalf("Save racing Close = %v, want ErrClosed", err)
	}

	// The fresh pair was retired, not installed ...
	if _, err := os.Stat(snapshotPath(dir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan snapshot installed by closed Save: %v", err)
	}
	if _, err := os.Stat(journalPath(dir, 1)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan journal installed by closed Save: %v", err)
	}
	// ... and recovery still surfaces every acknowledged op (wal-0).
	sameState(t, want, dumpAll(t, reopen(t, dir)))
}

// TestConcurrentDeleteReportsExistedOnce: concurrent deletes of the
// same graph must not all report success — the existence answer comes
// from the serialized apply, and the duplicate journaled 'D' records
// replay idempotently.
func TestConcurrentDeleteReportsExistedOnce(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)`)
	var wg sync.WaitGroup
	var existed atomic.Int32
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := db.Delete("g")
			if err != nil {
				t.Errorf("concurrent Delete: %v", err)
			}
			if ok {
				existed.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := existed.Load(); n != 1 {
		t.Fatalf("%d concurrent deletes reported the graph existed, want exactly 1", n)
	}
	db2 := reopen(t, dir)
	if _, err := db2.Get("g"); err == nil {
		t.Fatal("deleted graph resurrected by replay")
	}
}

func TestJournalRecordRoundTrip(t *testing.T) {
	ops := []journalOp{
		{op: opCypher, name: "g", arg: `CREATE (a:N)`},
		{op: opRestore, name: "with spaces", arg: "order 1\n"},
		{op: opDelete, name: "g"},
	}
	for _, op := range ops {
		enc := op.encode()
		got, err := decodeJournalOp(enc[8:])
		if err != nil {
			t.Fatalf("decode(%q): %v", op.op, err)
		}
		if got != op {
			t.Fatalf("round trip = %+v, want %+v", got, op)
		}
	}
	if _, err := decodeJournalOp([]byte("short")); err == nil {
		t.Fatal("short payload decoded")
	}
	if _, err := decodeJournalOp([]byte{'Z', 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown opcode decoded")
	}
}

func TestSnapshotRoundTripMultipleGraphs(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "one", `CREATE (a:N {k: 1})-[:e]->(b:N)`)
	mustQuery(t, db, "two", `CREATE (a:M {s: 'v'})`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	stores, err := readSnapshotFile(snapshotPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(stores) != 2 || stores["one"] == nil || stores["two"] == nil {
		t.Fatalf("snapshot stores = %v", stores)
	}
	if !stores["one"].Graph().HasEdge(0, "e", 1) {
		t.Fatal("edge lost through snapshot")
	}
}

func TestSnapshotRejectsTrailingGarbage(t *testing.T) {
	dir := t.TempDir()
	db := reopen(t, dir)
	mustQuery(t, db, "g", `CREATE (a:N)`)
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	path := snapshotPath(dir, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, "extra"...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSnapshotFile(path); err == nil || !strings.Contains(err.Error(), "trailing garbage") {
		t.Fatalf("readSnapshotFile = %v, want trailing-garbage error", err)
	}
}
