// Package algebra implements the algebraic expressions the database
// layer translates patterns into (paper Figure 11):
//
//	AlgExpr = AlgExpr + AlgExpr | AlgExpr * AlgExpr |
//	          Transpose(AlgExpr) | Matrix | Ref(ref)
//
// extended with the Kleene operators (Star/Plus/Opt) needed to express
// the CIP path-pattern quantifiers directly in linear algebra.
//
// Label operands stay symbolic (edge or vertex label names) and are
// resolved against an Env at evaluation time, so one expression can be
// evaluated against different graphs or filter contexts. Evaluation of a
// multiplication whose right operand is a reference reports the left
// operand's destination vertices through Env.NoteRefSources — this is
// exactly the paper's Algorithm 8 extension of EvalMul, which feeds the
// multiple-source CFPQ run that resolves named path patterns.
package algebra

import (
	"fmt"

	"mscfpq/internal/exec"
	"mscfpq/internal/matrix"
)

// Governed is an optional Env extension: environments that also
// implement it have their multiplications and closures routed through
// the returned execution governor, giving expression evaluation the
// same cancellation, timeout, and budget behavior as the CFPQ engines.
// A nil governor (or an Env without the method) evaluates ungoverned.
type Governed interface {
	ExecRun() *exec.Run
}

// envRun extracts the optional governor; nil means ungoverned.
func envRun(env Env) *exec.Run {
	if g, ok := env.(Governed); ok {
		return g.ExecRun()
	}
	return nil
}

// Env resolves symbolic operands during evaluation.
type Env interface {
	// Vertices returns the dimension of the evaluation space.
	Vertices() int
	// EdgeMatrix resolves an edge label ("x" or inverse "x_r").
	EdgeMatrix(label string) *matrix.Bool
	// VertexMatrix resolves a vertex label to its diagonal matrix.
	VertexMatrix(label string) *matrix.Bool
	// AnyEdgeMatrix returns the union of all edge label matrices.
	AnyEdgeMatrix() *matrix.Bool
	// RefMatrix returns the current relation matrix of a named path
	// pattern (empty if not yet resolved).
	RefMatrix(name string) (*matrix.Bool, error)
	// NoteRefSources records that the named pattern must be solved for
	// the given source vertices (Algorithm 8, line 4).
	NoteRefSources(name string, src *matrix.Vector)
}

// Expr is an algebraic expression node.
type Expr interface {
	String() string
	// eval computes the expression's matrix under env.
	eval(env Env) (*matrix.Bool, error)
}

// Add is element-wise OR.
type Add struct{ L, R Expr }

// Mul is Boolean matrix multiplication.
type Mul struct{ L, R Expr }

// Transpose reverses the relation.
type Transpose struct{ Sub Expr }

// EdgeLabel is the adjacency matrix operand E^l (or its transpose for
// inverse labels "x_r").
type EdgeLabel struct{ Label string }

// VertexLabel is the diagonal vertex matrix operand V^l.
type VertexLabel struct{ Label string }

// AnyEdge is the union of all adjacency matrices (a bare --> pattern).
type AnyEdge struct{}

// Ref is a reference to a named path pattern.
type Ref struct{ Name string }

// Fixed wraps a concrete matrix (e.g. the record-buffer filter diagonal
// the traverse operations prepend).
type Fixed struct {
	Name string
	M    *matrix.Bool
}

// Ident is the identity matrix (an empty node check, a trivial path).
type Ident struct{}

// Star is the reflexive-transitive closure (e*).
type Star struct{ Sub Expr }

// Plus is the transitive closure (e+).
type Plus struct{ Sub Expr }

// Opt adds the identity (e?).
type Opt struct{ Sub Expr }

func (e Add) String() string         { return "(" + e.L.String() + " + " + e.R.String() + ")" }
func (e Mul) String() string         { return "(" + e.L.String() + " * " + e.R.String() + ")" }
func (e Transpose) String() string   { return "Transpose(" + e.Sub.String() + ")" }
func (e EdgeLabel) String() string   { return "E^" + e.Label }
func (e VertexLabel) String() string { return "V^" + e.Label }
func (e AnyEdge) String() string     { return "E^*" }
func (e Ref) String() string         { return "Ref(" + e.Name + ")" }
func (e Fixed) String() string {
	if e.Name != "" {
		return e.Name
	}
	return "Fixed"
}
func (e Ident) String() string { return "I" }
func (e Star) String() string  { return "Star(" + e.Sub.String() + ")" }
func (e Plus) String() string  { return "Plus(" + e.Sub.String() + ")" }
func (e Opt) String() string   { return "Opt(" + e.Sub.String() + ")" }

// Eval evaluates the expression under env, applying the Algorithm 8
// source-propagation rule at every multiplication.
func Eval(e Expr, env Env) (*matrix.Bool, error) {
	if e == nil {
		return nil, fmt.Errorf("algebra: nil expression")
	}
	return e.eval(env)
}

func (e Add) eval(env Env) (*matrix.Bool, error) {
	l, err := e.L.eval(env)
	if err != nil {
		return nil, err
	}
	r, err := e.R.eval(env)
	if err != nil {
		return nil, err
	}
	return matrix.Add(l, r), nil
}

func (e Mul) eval(env Env) (*matrix.Bool, error) {
	l, err := e.L.eval(env)
	if err != nil {
		return nil, err
	}
	// Algorithm 8: a reference on the right receives the left operand's
	// destinations as new sources before being read.
	if ref, ok := e.R.(Ref); ok {
		env.NoteRefSources(ref.Name, matrix.ReduceCols(l))
	}
	r, err := e.R.eval(env)
	if err != nil {
		return nil, err
	}
	return envRun(env).Mul(l, r)
}

func (e Transpose) eval(env Env) (*matrix.Bool, error) {
	m, err := e.Sub.eval(env)
	if err != nil {
		return nil, err
	}
	return matrix.Transpose(m), nil
}

func (e EdgeLabel) eval(env Env) (*matrix.Bool, error)   { return env.EdgeMatrix(e.Label), nil }
func (e VertexLabel) eval(env Env) (*matrix.Bool, error) { return env.VertexMatrix(e.Label), nil }
func (e AnyEdge) eval(env Env) (*matrix.Bool, error)     { return env.AnyEdgeMatrix(), nil }

func (e Ref) eval(env Env) (*matrix.Bool, error) { return env.RefMatrix(e.Name) }

func (e Fixed) eval(Env) (*matrix.Bool, error) {
	if e.M == nil {
		return nil, fmt.Errorf("algebra: Fixed operand %q has no matrix", e.Name)
	}
	return e.M, nil
}

func (e Ident) eval(env Env) (*matrix.Bool, error) {
	return matrix.Identity(env.Vertices()), nil
}

func (e Star) eval(env Env) (*matrix.Bool, error) {
	m, err := e.Sub.eval(env)
	if err != nil {
		return nil, err
	}
	c, err := envRun(env).Closure(m)
	if err != nil {
		return nil, err
	}
	return matrix.Add(c, matrix.Identity(env.Vertices())), nil
}

func (e Plus) eval(env Env) (*matrix.Bool, error) {
	m, err := e.Sub.eval(env)
	if err != nil {
		return nil, err
	}
	return envRun(env).Closure(m)
}

func (e Opt) eval(env Env) (*matrix.Bool, error) {
	m, err := e.Sub.eval(env)
	if err != nil {
		return nil, err
	}
	return matrix.Add(m, matrix.Identity(env.Vertices())), nil
}

// Refs returns the distinct reference names in the expression, in
// first-occurrence order.
func Refs(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case Add:
			walk(v.L)
			walk(v.R)
		case Mul:
			walk(v.L)
			walk(v.R)
		case Transpose:
			walk(v.Sub)
		case Star:
			walk(v.Sub)
		case Plus:
			walk(v.Sub)
		case Opt:
			walk(v.Sub)
		case Ref:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		}
	}
	walk(e)
	return out
}

// HasRefs reports whether the expression references named path patterns.
func HasRefs(e Expr) bool { return len(Refs(e)) > 0 }
