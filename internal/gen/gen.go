// Package gen provides seeded random generators for the differential
// correctness harness (see TESTING.md): labeled graphs of several
// adversarial shapes, query grammars drawn from a pool plus a random
// WCNF-shaped generator, and source sets. Everything is a pure function
// of the *rand.Rand it is given, so any failure reproduces from its
// seed alone.
package gen

import (
	"math/rand"

	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
)

// DefaultLabels is the edge-label alphabet the generators draw from; it
// matches the terminals of the grammar pool.
var DefaultLabels = []string{"a", "b", "c"}

// GraphKind names one generator shape; Graph dispatches on it and
// RandomGraph picks one at random.
type GraphKind int

const (
	// KindSparse is a uniform sparse random multigraph.
	KindSparse GraphKind = iota
	// KindCyclic overlays random directed cycles, the shape that forces
	// deep fixpoints in same-generation queries.
	KindCyclic
	// KindMultiLabel is a denser graph where every vertex pair may carry
	// several labels, stressing label decomposition.
	KindMultiLabel
	// KindTwoCycles is the classic CFPQ worst case (the paper's
	// an-bn stress shape): a cycle of a-edges and a cycle of b-edges
	// sharing one vertex, whose balanced walks force quadratically many
	// relation entries.
	KindTwoCycles
	// KindChain is a linear a-chain followed by a b-chain — the
	// grammar-shaped input on which a^n b^n matches exactly the balanced
	// windows.
	KindChain
	// KindSingleVertex is one vertex with random self loops.
	KindSingleVertex
	// KindEmpty has vertices but no edges at all.
	KindEmpty
	numKinds
)

func (k GraphKind) String() string {
	switch k {
	case KindSparse:
		return "sparse"
	case KindCyclic:
		return "cyclic"
	case KindMultiLabel:
		return "multilabel"
	case KindTwoCycles:
		return "twocycles"
	case KindChain:
		return "chain"
	case KindSingleVertex:
		return "singlevertex"
	case KindEmpty:
		return "empty"
	default:
		return "unknown"
	}
}

// Graph generates a graph of the given kind with about n vertices,
// labeled from labels. Vertex labels (used by grammars as zero-length
// steps) are sprinkled on a few vertices for every kind.
func Graph(rng *rand.Rand, kind GraphKind, n int, labels []string) *graph.Graph {
	if n < 1 {
		n = 1
	}
	var g *graph.Graph
	switch kind {
	case KindCyclic:
		g = graph.New(n)
		for c := 0; c < 1+rng.Intn(3); c++ {
			cycleLen := 2 + rng.Intn(n)
			l := labels[rng.Intn(len(labels))]
			first := rng.Intn(n)
			prev := first
			for i := 1; i < cycleLen; i++ {
				next := rng.Intn(n)
				g.AddEdge(prev, l, next)
				prev = next
			}
			g.AddEdge(prev, l, first)
		}
	case KindMultiLabel:
		g = graph.New(n)
		for e := 0; e < n*3; e++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			for _, l := range labels {
				if rng.Intn(2) == 0 {
					g.AddEdge(src, l, dst)
				}
			}
		}
	case KindTwoCycles:
		p, q := 1+rng.Intn(4), 1+rng.Intn(4)
		g = graph.New(p + q + 1)
		// a-cycle 0 -> 1 -> ... -> p -> 0, b-cycle 0 -> p+1 -> ... -> 0.
		for i := 0; i < p; i++ {
			g.AddEdge(i, labels[0], i+1)
		}
		g.AddEdge(p, labels[0], 0)
		prev := 0
		for i := 0; i < q; i++ {
			g.AddEdge(prev, labels[1%len(labels)], p+1+i)
			prev = p + 1 + i
		}
		g.AddEdge(prev, labels[1%len(labels)], 0)
	case KindChain:
		g = graph.New(n)
		split := n / 2
		for i := 0; i+1 < n; i++ {
			l := labels[0]
			if i >= split {
				l = labels[1%len(labels)]
			}
			g.AddEdge(i, l, i+1)
		}
	case KindSingleVertex:
		g = graph.New(1)
		for _, l := range labels {
			if rng.Intn(2) == 0 {
				g.AddEdge(0, l, 0)
			}
		}
	case KindEmpty:
		g = graph.New(n)
	default: // KindSparse
		g = graph.New(n)
		for e := 0; e < n+rng.Intn(2*n); e++ {
			g.AddEdge(rng.Intn(n), labels[rng.Intn(len(labels))], rng.Intn(n))
		}
	}
	// Vertex labels: "x" and "y" on a few vertices, mirroring the
	// paper's Figure 1 usage of vertex-labeled terminals.
	nv := g.NumVertices()
	for _, vl := range []string{"x", "y"} {
		for v := 0; v < nv; v++ {
			if rng.Intn(5) == 0 {
				g.AddVertexLabel(v, vl)
			}
		}
	}
	return g
}

// RandomGraph picks a kind at random and generates it. Degenerate kinds
// (single vertex, empty) are kept in rotation deliberately — they are
// the edge cases matrix code tends to get wrong.
func RandomGraph(rng *rand.Rand, n int, labels []string) *graph.Graph {
	return Graph(rng, GraphKind(rng.Intn(int(numKinds))), n, labels)
}

// Sources draws a random source set over n vertices: usually a handful
// of vertices, occasionally empty or the full universe, and with
// duplicates kept so callers exercise deduplication.
func Sources(rng *rand.Rand, n int) []int {
	if n == 0 {
		return nil
	}
	switch rng.Intn(8) {
	case 0:
		return nil // empty source set
	case 1:
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out // every vertex
	default:
		out := make([]int, 1+rng.Intn(4))
		for i := range out {
			out[i] = rng.Intn(n)
		}
		return out
	}
}

// grammarPool holds hand-written query grammars that exercise the
// features the random generator cannot reach by chance: inverse labels,
// vertex-label terminals, nullable start symbols, and the paper's own
// query shapes.
var grammarPool = []func() *grammar.Grammar{
	func() *grammar.Grammar { return grammar.AnBn("a", "b") },
	func() *grammar.Grammar { return grammar.Dyck1("a", "b") },
	func() *grammar.Grammar { return grammar.SameGen("a") },
	func() *grammar.Grammar { return grammar.SameGen("a", "b") },
	func() *grammar.Grammar { return grammar.MustParse("S -> a S | eps") },
	func() *grammar.Grammar { return grammar.MustParse("S -> a S b | eps") },
	func() *grammar.Grammar { return grammar.MustParse("S -> a_r S a | b") },
	func() *grammar.Grammar { return grammar.MustParse("S -> c S c_r | c c_r") },
	func() *grammar.Grammar { return grammar.MustParse("S -> a S b | a x b") },
	func() *grammar.Grammar { return grammar.MustParse("S -> A B\nA -> a A | a\nB -> b B | y | eps") },
	func() *grammar.Grammar { return grammar.MustParse("S -> A S A | b\nA -> a") },
}

// RandomGrammar returns a random query grammar: half the time a pool
// grammar, otherwise a freshly generated one over the given labels. The
// generated language may be empty or trivial — for differential testing
// that is still a meaningful instance.
func RandomGrammar(rng *rand.Rand, labels []string) *grammar.Grammar {
	if rng.Intn(2) == 0 {
		return grammarPool[rng.Intn(len(grammarPool))]()
	}
	return generateGrammar(rng, labels)
}

// generateGrammar builds a random grammar over nonterminals S, A, B.
// Each nonterminal receives one to three alternatives drawn from the
// WCNF-adjacent shapes the engines must handle: a terminal, a pair of
// nonterminals, mixed terminal/nonterminal pairs, a triple, or eps.
func generateGrammar(rng *rand.Rand, labels []string) *grammar.Grammar {
	nts := []string{"S", "A", "B"}
	// A terminal is a plain label or, a quarter of the time, its inverse
	// "l_r" so generated grammars traverse edges backwards too.
	termName := func() string {
		l := labels[rng.Intn(len(labels))]
		if rng.Intn(4) == 0 {
			return l + "_r"
		}
		return l
	}
	ntName := func() string { return nts[rng.Intn(len(nts))] }

	var prods []grammar.Production
	for _, lhs := range nts {
		alts := 1 + rng.Intn(3)
		for k := 0; k < alts; k++ {
			var rhs []grammar.Symbol
			switch rng.Intn(6) {
			case 0:
				rhs = []grammar.Symbol{grammar.T(termName())}
			case 1:
				rhs = []grammar.Symbol{grammar.N(ntName()), grammar.N(ntName())}
			case 2:
				rhs = []grammar.Symbol{grammar.T(termName()), grammar.N(ntName())}
			case 3:
				rhs = []grammar.Symbol{grammar.N(ntName()), grammar.T(termName())}
			case 4:
				rhs = []grammar.Symbol{grammar.T(termName()), grammar.N(ntName()), grammar.T(termName())}
			case 5:
				rhs = nil // eps
			}
			prods = append(prods, grammar.Production{LHS: lhs, RHS: rhs})
		}
	}
	return grammar.MustNew("S", prods)
}

// RandomRegex builds a random path regular expression over the labels,
// in the syntax of internal/rpq: juxtaposition, |, *, +, ?, grouping,
// and "_r" inverse labels. depth bounds the nesting.
func RandomRegex(rng *rand.Rand, labels []string, depth int) string {
	if depth <= 0 || rng.Intn(3) == 0 {
		l := labels[rng.Intn(len(labels))]
		if rng.Intn(4) == 0 {
			l += "_r"
		}
		return l
	}
	switch rng.Intn(6) {
	case 0:
		return RandomRegex(rng, labels, depth-1) + " " + RandomRegex(rng, labels, depth-1)
	case 1:
		return "(" + RandomRegex(rng, labels, depth-1) + " | " + RandomRegex(rng, labels, depth-1) + ")"
	case 2:
		return "(" + RandomRegex(rng, labels, depth-1) + ")*"
	case 3:
		return "(" + RandomRegex(rng, labels, depth-1) + ")+"
	case 4:
		return "(" + RandomRegex(rng, labels, depth-1) + ")?"
	default:
		return "(" + RandomRegex(rng, labels, depth-1) + ")"
	}
}

// Instance bundles one differential-test case: a graph, a normalized
// grammar, and a source set, all derived deterministically from a seed.
type Instance struct {
	Seed    int64
	Kind    GraphKind
	G       *graph.Graph
	Grammar *grammar.Grammar
	W       *grammar.WCNF
	Sources []int
}

// NewInstance derives a full differential-test instance from a seed.
// maxN bounds the graph size.
func NewInstance(seed int64, maxN int) Instance {
	rng := rand.New(rand.NewSource(seed))
	kind := GraphKind(rng.Intn(int(numKinds)))
	n := 2 + rng.Intn(maxN-1)
	g := Graph(rng, kind, n, DefaultLabels)
	gr := RandomGrammar(rng, DefaultLabels)
	w := grammar.MustWCNF(gr)
	return Instance{
		Seed:    seed,
		Kind:    kind,
		G:       g,
		Grammar: gr,
		W:       w,
		Sources: Sources(rng, g.NumVertices()),
	}
}
