package batch

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/store"
)

// testGraph is two cycles (3 a-edges, 2 b-edges) sharing vertex 0 — the
// classic CFPQ worst case, small but with nontrivial answers from every
// vertex.
func testGraph() *graph.Graph {
	g := graph.New(5)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "a", 0)
	g.AddEdge(0, "b", 3)
	g.AddEdge(3, "b", 0)
	return g
}

// abGrammar is S -> a S b | a b.
func abGrammar() *grammar.WCNF {
	return grammar.MustWCNF(grammar.MustNew("S", []grammar.Production{
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("a"), grammar.N("S"), grammar.T("b")}},
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("a"), grammar.T("b")}},
	}))
}

func soloPairs(t *testing.T, g *graph.Graph, w *grammar.WCNF, src *matrix.Vector, alg exec.Algorithm) [][2]int {
	t.Helper()
	res, err := cfpq.Eval(g, w, src, cfpq.WithAlgorithm(alg))
	if err != nil {
		t.Fatalf("solo eval: %v", err)
	}
	return res.Pairs()
}

func req(g *graph.Graph, w *grammar.WCNF, src *matrix.Vector) Request {
	return Request{StoreID: 1, Version: 7, Graph: g, WCNF: w, Sources: src}
}

func vec(n int, idx ...int) *matrix.Vector { return matrix.NewVectorFromIndices(n, idx) }

func TestSoloFastPath(t *testing.T) {
	g, w := testGraph(), abGrammar()
	c := NewCoalescer(nil) // window 0: coalescing disabled
	src := vec(5, 0, 1)
	pairs, stats, err := c.Eval(context.Background(), req(g, w, src))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Batched || stats.Members != 1 {
		t.Fatalf("stats = %+v, want solo", stats)
	}
	if want := soloPairs(t, g, w, src, exec.AlgMultiSource); !reflect.DeepEqual(pairs, want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	if s := c.Stats(); s.Solo != 1 || s.Groups != 0 || s.InFlight != 0 {
		t.Fatalf("coalescer stats = %+v", s)
	}
}

func TestRunBatchMatchesSolo(t *testing.T) {
	g, w := testGraph(), abGrammar()
	// Overlapping, duplicate, and empty member source sets.
	sets := []*matrix.Vector{
		vec(5, 0, 1, 2),
		vec(5, 1, 3),    // overlaps the first
		vec(5, 0, 1, 2), // exact duplicate
		vec(5),          // empty
	}
	for _, alg := range []exec.Algorithm{exec.AlgAuto, exec.AlgMultiSource, exec.AlgMatrix, exec.AlgWorklist} {
		c := NewCoalescer(nil)
		reqs := make([]Request, len(sets))
		for i, s := range sets {
			reqs[i] = req(g, w, s)
			reqs[i].Algorithm = alg
		}
		pairs, stats, err := c.RunBatch(context.Background(), reqs)
		if err != nil {
			t.Fatalf("alg %v: %v", alg, err)
		}
		resolved := resolveAlg(alg)
		for i, s := range sets {
			want := soloPairs(t, g, w, s, resolved)
			if !reflect.DeepEqual(pairs[i], want) {
				t.Fatalf("alg %v member %d: pairs = %v, want %v", alg, i, pairs[i], want)
			}
			if !stats[i].Batched || stats[i].Members != len(sets) {
				t.Fatalf("alg %v member %d: stats = %+v", alg, i, stats[i])
			}
		}
		s := c.Stats()
		if s.Groups != 1 || s.Members != uint64(len(sets)) {
			t.Fatalf("alg %v: coalescer stats = %+v", alg, s)
		}
		// 0,1,2 + 1,3 + 0,1,2 + {} = 8 member sources over a union of 4.
		if s.SourcesDeduped != 4 {
			t.Fatalf("alg %v: deduped = %d, want 4", alg, s.SourcesDeduped)
		}
	}
}

func TestRunBatchRejectsMixedKeys(t *testing.T) {
	g, w := testGraph(), abGrammar()
	a := req(g, w, vec(5, 0))
	b := req(g, w, vec(5, 1))
	b.Version = a.Version + 1 // different snapshot: must not share a fixpoint
	if _, _, err := NewCoalescer(nil).RunBatch(context.Background(), []Request{a, b}); err == nil {
		t.Fatal("mixed-version batch accepted")
	}
}

// openGroup simulates a same-key evaluation in flight, submits members
// from goroutines, and returns once n members were admitted to one open
// group, along with its flush trigger.
func openGroup(t *testing.T, c *Coalescer, reqs []Request, ctxs []context.Context) (results chan []any, flush func()) {
	t.Helper()
	key := keyFor(reqs[0], resolveAlg(reqs[0].Algorithm))
	c.mu.Lock()
	c.inflight[key]++ // simulated running evaluation with the same key
	c.mu.Unlock()
	results = make(chan []any, len(reqs))
	for i := range reqs {
		go func(i int) {
			p, s, err := c.Eval(ctxs[i], reqs[i])
			results <- []any{i, p, s, err}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		g := c.groups[key]
		n := 0
		if g != nil {
			n = len(g.members)
		}
		c.mu.Unlock()
		if n == len(reqs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d members admitted", n, len(reqs))
		}
		time.Sleep(time.Millisecond)
	}
	return results, func() {
		c.mu.Lock()
		g := c.groups[key]
		c.mu.Unlock()
		if g == nil {
			t.Fatal("no open group to flush")
		}
		c.flushAfterWindow(g, key)
		c.mu.Lock()
		c.inflight[key]-- // release the simulated evaluation
		c.mu.Unlock()
	}
}

func TestAdaptiveCoalescing(t *testing.T) {
	g, w := testGraph(), abGrammar()
	c := NewCoalescer(nil)
	c.Configure(time.Hour, 0) // flushed manually: no timing dependence
	sets := []*matrix.Vector{vec(5, 0), vec(5, 1), vec(5, 0, 2)}
	reqs := make([]Request, len(sets))
	ctxs := make([]context.Context, len(sets))
	for i, s := range sets {
		reqs[i] = req(g, w, s)
		ctxs[i] = context.Background()
	}
	results, flush := openGroup(t, c, reqs, ctxs)
	flush()
	for range reqs {
		r := <-results
		i, pairs, stats, err := r[0].(int), r[1].([][2]int), r[2].(Stats), r[3]
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if !stats.Batched || stats.Members != 3 {
			t.Fatalf("member %d: stats = %+v", i, stats)
		}
		if want := soloPairs(t, g, w, sets[i], exec.AlgMultiSource); !reflect.DeepEqual(pairs, want) {
			t.Fatalf("member %d: pairs = %v, want %v", i, pairs, want)
		}
	}
	if s := c.Stats(); s.Groups != 1 || s.Members != 3 || s.OpenGroups != 0 || s.InFlight != 0 {
		t.Fatalf("coalescer stats = %+v", s)
	}
}

func TestWindowTimerFlushes(t *testing.T) {
	g, w := testGraph(), abGrammar()
	c := NewCoalescer(nil)
	c.Configure(30*time.Millisecond, 0)
	key := keyFor(req(g, w, vec(5, 0)), exec.AlgMultiSource)
	c.mu.Lock()
	c.inflight[key]++
	c.mu.Unlock()
	src := vec(5, 0, 1)
	pairs, stats, err := c.Eval(context.Background(), req(g, w, src))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Batched || stats.Members != 1 {
		t.Fatalf("stats = %+v, want batched singleton group", stats)
	}
	if want := soloPairs(t, g, w, src, exec.AlgMultiSource); !reflect.DeepEqual(pairs, want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	c.mu.Lock()
	c.inflight[key]--
	c.mu.Unlock()
}

func TestMaxSourcesFlushesEarly(t *testing.T) {
	g, w := testGraph(), abGrammar()
	c := NewCoalescer(nil)
	c.Configure(time.Hour, 2) // the union cap, not the timer, must flush
	key := keyFor(req(g, w, vec(5, 0)), exec.AlgMultiSource)
	c.mu.Lock()
	c.inflight[key]++
	c.mu.Unlock()
	src := vec(5, 0, 1) // alone reaches the cap of 2
	pairs, stats, err := c.Eval(context.Background(), req(g, w, src))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Batched {
		t.Fatalf("stats = %+v, want batched", stats)
	}
	if want := soloPairs(t, g, w, src, exec.AlgMultiSource); !reflect.DeepEqual(pairs, want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
	c.mu.Lock()
	c.inflight[key]--
	c.mu.Unlock()
}

func TestMemberCancelDoesNotAbortGroup(t *testing.T) {
	g, w := testGraph(), abGrammar()
	c := NewCoalescer(nil)
	c.Configure(time.Hour, 0)
	sets := []*matrix.Vector{vec(5, 0), vec(5, 1)}
	reqs := []Request{req(g, w, sets[0]), req(g, w, sets[1])}
	ctx0, cancel0 := context.WithCancel(context.Background())
	ctxs := []context.Context{ctx0, context.Background()}
	results, flush := openGroup(t, c, reqs, ctxs)
	cancel0() // member 0 leaves during the admission window
	var got [2][]any
	r := <-results // member 0 returns promptly with its own ctx error
	got[r[0].(int)] = r
	flush()
	r = <-results
	got[r[0].(int)] = r
	if err, _ := got[0][3].(error); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled member error = %v, want Canceled", err)
	}
	if err, _ := got[1][3].(error); err != nil {
		t.Fatalf("surviving member error = %v", err)
	}
	pairs := got[1][1].([][2]int)
	if want := soloPairs(t, g, w, sets[1], exec.AlgMultiSource); !reflect.DeepEqual(pairs, want) {
		t.Fatalf("surviving member pairs = %v, want %v", pairs, want)
	}
	if s := c.Stats(); s.Aborted != 0 {
		t.Fatalf("stats = %+v, want no aborted group", s)
	}
}

func TestSoleMemberCancelAbortsGroup(t *testing.T) {
	g, w := testGraph(), abGrammar()
	c := NewCoalescer(nil)
	c.Configure(time.Hour, 0)
	reqs := []Request{req(g, w, vec(5, 0))}
	ctx, cancel := context.WithCancel(context.Background())
	results, flush := openGroup(t, c, reqs, []context.Context{ctx})
	cancel()
	r := <-results
	if err, _ := r[3].(error); !errors.Is(err, context.Canceled) {
		t.Fatalf("member error = %v, want Canceled", err)
	}
	flush() // nobody left: the fixpoint must not run
	if s := c.Stats(); s.Aborted != 1 || s.Groups != 0 {
		t.Fatalf("stats = %+v, want 1 aborted, 0 groups", s)
	}
}

func TestVersionsNeverShareAGroup(t *testing.T) {
	g, w := testGraph(), abGrammar()
	c := NewCoalescer(nil)
	c.Configure(time.Hour, 0)
	r0 := req(g, w, vec(5, 0))
	key0 := keyFor(r0, exec.AlgMultiSource)
	c.mu.Lock()
	c.inflight[key0]++ // concurrency exists for version 7 only
	c.mu.Unlock()
	r1 := req(g, w, vec(5, 1))
	r1.Version = 8
	// The version-8 request must take the solo fast path, not wait in a
	// version-7 window.
	done := make(chan struct{})
	var stats Stats
	go func() {
		_, stats, _ = c.Eval(context.Background(), r1)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cross-version request waited in another version's window")
	}
	if stats.Batched {
		t.Fatalf("stats = %+v, want solo", stats)
	}
	c.mu.Lock()
	c.inflight[key0]--
	c.mu.Unlock()
}

func TestCacheSeeding(t *testing.T) {
	g, w := testGraph(), abGrammar()
	cache := store.NewCache(1<<20, 0)
	c := NewCoalescer(cache)
	sets := []*matrix.Vector{vec(5, 0, 1), vec(5, 1, 2)}
	reqs := []Request{req(g, w, sets[0]), req(g, w, sets[1])}
	pairs, _, err := c.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Member source sets hit.
	for i, s := range sets {
		k := store.EvalKey(1, 7, w, s, exec.AlgMultiSource)
		v, ok := cache.Get(k)
		if !ok {
			t.Fatalf("member %d set not seeded", i)
		}
		if !reflect.DeepEqual(v.([][2]int), pairs[i]) {
			t.Fatalf("member %d cached = %v, want %v", i, v, pairs[i])
		}
	}
	// Individual source vertices hit with their solo answers.
	for _, s := range []int{0, 1, 2} {
		single := vec(5, s)
		k := store.EvalKey(1, 7, w, single, exec.AlgMultiSource)
		v, ok := cache.Get(k)
		if !ok {
			t.Fatalf("singleton %d not seeded", s)
		}
		want := soloPairs(t, g, w, single, exec.AlgMultiSource)
		got := v.([][2]int)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("singleton %d cached = %v, want %v", s, got, want)
		}
	}
}

// TestConcurrentEvalStress hammers one coalescer from many goroutines
// with a real (tiny) window; every result must equal its solo answer no
// matter how the scheduler grouped them. Run with -race.
func TestConcurrentEvalStress(t *testing.T) {
	g, w := testGraph(), abGrammar()
	c := NewCoalescer(store.NewCache(1<<20, 0))
	c.Configure(200*time.Microsecond, 0)
	sets := []*matrix.Vector{vec(5, 0), vec(5, 1), vec(5, 2), vec(5, 0, 3), vec(5, 1, 4), vec(5)}
	want := make([][][2]int, len(sets))
	for i, s := range sets {
		want[i] = soloPairs(t, g, w, s, exec.AlgMultiSource)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for iter := 0; iter < 40; iter++ {
				i := (k + iter) % len(sets)
				pairs, _, err := c.Eval(context.Background(), req(g, w, sets[i]))
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(pairs, want[i]) {
					errs <- errors.New("batched answer diverged from solo answer")
					return
				}
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s := c.Stats(); s.OpenGroups != 0 || s.InFlight != 0 {
		t.Fatalf("leaked state: %+v", s)
	}
}
