// Package durpos holds positives for the durability-scope rule: its
// import path contains internal/gdb, so dropped fsync/close errors are
// diagnostics.
package durpos

import "os"

// syncStatementDrop discards the one signal that bytes reached disk.
func syncStatementDrop(f *os.File) {
	f.Sync() // want `error returned by \(\*os\.File\)\.Sync is dropped in a durability-critical package`
}

// closeDeferDrop loses a write-back failure behind defer.
func closeDeferDrop(f *os.File) {
	defer f.Close() // want `error returned by \(\*os\.File\)\.Close is dropped in a durability-critical package`
}

// closeBlankDrop discards the close error explicitly but without a
// documented reason.
func closeBlankDrop(f *os.File) {
	_ = f.Close() // want `error returned by \(\*os\.File\)\.Close discarded with _ in a durability-critical package`
}

// syncBlankDrop is the blank form of the fsync drop.
func syncBlankDrop(f *os.File) {
	_ = f.Sync() // want `error returned by \(\*os\.File\)\.Sync discarded with _ in a durability-critical package`
}
