package cfpq

import (
	"fmt"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// Stats describes one evaluation for the unified Eval entry point.
type Stats struct {
	// Algorithm is the algorithm that actually ran (AlgAuto resolved).
	Algorithm exec.Algorithm
	// Rounds is the number of fixpoint iterations (0 for the worklist
	// solver, which has no matrix rounds).
	Rounds int
	// Work is the governor charge: relation entries produced (facts
	// propagated, for the worklist).
	Work int64
	// Answers is the number of result pairs.
	Answers int
}

// EvalResult is the common result of the unified Eval entry point:
// answer pairs plus evaluation statistics, independent of which
// algorithm produced them.
type EvalResult interface {
	// Pairs returns the (source, destination) pairs of the start
	// relation, restricted to the queried sources when a source set was
	// given.
	Pairs() [][2]int
	// Stats returns the evaluation statistics.
	Stats() Stats
}

// PathEvalResult is the extension implemented by the single-path
// algorithms (AlgSinglePath, AlgMSSinglePath): one witness path can be
// reconstructed per answer pair.
type PathEvalResult interface {
	EvalResult
	// Path reconstructs one path witnessing (src, dst).
	Path(src, dst int) ([]PathStep, error)
}

// evalResult is the concrete EvalResult; path is non-nil only for the
// single-path algorithms.
type evalResult struct {
	pairs [][2]int
	stats Stats
	path  func(src, dst int) ([]PathStep, error)
}

func (r *evalResult) Pairs() [][2]int { return r.pairs }
func (r *evalResult) Stats() Stats    { return r.stats }

// pathEvalResult wraps evalResult so only single-path evaluations
// satisfy PathEvalResult.
type pathEvalResult struct{ evalResult }

func (r *pathEvalResult) Path(src, dst int) ([]PathStep, error) { return r.path(src, dst) }

// Eval is the unified CFPQ entry point: it evaluates the query defined
// by w over g with the algorithm selected by WithAlgorithm (AlgAuto
// picks by query shape: multiple-source when src is non-nil, all-pairs
// otherwise). A non-nil src restricts the answer pairs to those
// sources for every algorithm, so the algorithm options are
// interchangeable. All exec options (timeout, budget, workers, trace)
// apply.
//
// The legacy per-algorithm constructors (AllPairs, MultiSource, ...)
// remain for callers that need their richer concrete results.
func Eval(g *graph.Graph, w *grammar.WCNF, src *matrix.Vector, opts ...Option) (EvalResult, error) {
	alg := exec.Build(opts).Algorithm
	if alg == exec.AlgAuto {
		if src != nil {
			alg = exec.AlgMultiSource
		} else {
			alg = exec.AlgMatrix
		}
	}
	res, err := evalWith(alg, g, w, src, opts)
	exec.RecordOutcome(err)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func evalWith(alg exec.Algorithm, g *graph.Graph, w *grammar.WCNF, src *matrix.Vector, opts []Option) (EvalResult, error) {
	needSrc := func() error {
		if src == nil {
			return fmt.Errorf("cfpq: algorithm %v requires a source set", alg)
		}
		return nil
	}
	// restrict computes the answer pairs of an all-pairs result,
	// honoring the source restriction.
	restrict := func(r *Result) [][2]int {
		if src != nil {
			return r.PairsFrom(src)
		}
		return r.Pairs()
	}
	mk := func(pairs [][2]int, rounds int, work int64) *evalResult {
		return &evalResult{pairs: pairs, stats: Stats{
			Algorithm: alg, Rounds: rounds, Work: work, Answers: len(pairs)}}
	}
	switch alg {
	case exec.AlgMatrix:
		r, err := AllPairs(g, w, opts...)
		if err != nil {
			return nil, err
		}
		return mk(restrict(r), r.Rounds, r.Work), nil
	case exec.AlgSemiNaive:
		r, err := AllPairsSemiNaive(g, w, opts...)
		if err != nil {
			return nil, err
		}
		return mk(restrict(r), r.Rounds, r.Work), nil
	case exec.AlgWorklist:
		if src == nil {
			r, err := Worklist(g, w, opts...)
			if err != nil {
				return nil, err
			}
			return mk(r.Pairs(), r.Rounds, r.Work), nil
		}
		run, cancel := exec.Build(opts).Start()
		defer cancel()
		m, err := WorklistMultiSource(g, w, src, WithRun(run))
		if err != nil {
			return nil, err
		}
		return mk(m.Pairs(), 0, run.Spent()), nil
	case exec.AlgMultiSource:
		if err := needSrc(); err != nil {
			return nil, err
		}
		r, err := MultiSource(g, w, src, opts...)
		if err != nil {
			return nil, err
		}
		return mk(r.Answer().Pairs(), r.Rounds, r.Work), nil
	case exec.AlgSinglePath:
		r, err := SinglePath(g, w, opts...)
		if err != nil {
			return nil, err
		}
		res := mk(restrict(r.Result), r.Rounds, r.Work)
		return &pathEvalResult{evalResult{pairs: res.pairs, stats: res.stats, path: r.Path}}, nil
	case exec.AlgMSSinglePath:
		if err := needSrc(); err != nil {
			return nil, err
		}
		r, err := MultiSourceSinglePath(g, w, src, opts...)
		if err != nil {
			return nil, err
		}
		res := mk(r.Answer().Pairs(), r.Rounds, r.Work)
		return &pathEvalResult{evalResult{pairs: res.pairs, stats: res.stats, path: r.Path}}, nil
	default:
		return nil, fmt.Errorf("cfpq: unknown algorithm %v", alg)
	}
}
