package gdb

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mscfpq/internal/batch"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
	"mscfpq/internal/store"
)

// EvalCFPQ answers a multiple-source CFPQ query against the named
// graph: reachability pairs (s, v) for s in src under the context-free
// grammar w. It is the direct serving entry for grammar-shaped queries
// (the Cypher PATH PATTERN route goes through QueryContext): it pins
// one snapshot, consults the version-keyed cache, and dispatches
// through the coalescing scheduler — under Policy.BatchWindow,
// concurrent queries agreeing on (snapshot, grammar, algorithm, limits)
// share one fixpoint (DESIGN.md §14). Policy timeout and budget apply;
// alg AlgAuto resolves to the multiple-source algorithm.
func (db *DB) EvalCFPQ(ctx context.Context, name string, w *grammar.WCNF, src *matrix.Vector, alg exec.Algorithm) ([][2]int, error) {
	s, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	if src == nil {
		return nil, fmt.Errorf("gdb: EvalCFPQ requires a source set (use the all-pairs algorithms through cfpq.Eval)")
	}
	pol := db.Policy()
	start := time.Now()

	// Pin ONE snapshot for the cache key, the batch key and the
	// evaluation: a batch never mixes versions, and a cached entry can
	// never serve any other version.
	snap := s.Snapshot()
	req := batch.Request{
		StoreID:     snap.StoreID(),
		Version:     snap.Version(),
		Graph:       snap.Graph(),
		WCNF:        w,
		Sources:     src,
		Algorithm:   alg,
		Timeout:     pol.DefaultTimeout,
		Budget:      pol.MaxWork,
		GrammarHash: store.GrammarHash(w),
	}
	resolved := alg
	if resolved == exec.AlgAuto {
		resolved = exec.AlgMultiSource
	}
	if db.cache.Enabled() {
		key := store.EvalKey(snap.StoreID(), snap.Version(), w, src, resolved)
		if v, ok := db.cache.Get(key); ok {
			obs.GdbQueries.Inc()
			obs.GdbQueryLatencyUS.Observe(time.Since(start).Microseconds())
			return v.([][2]int), nil
		}
	}

	pairs, stats, err := db.batcher.Eval(ctx, req)
	elapsed := time.Since(start)
	obs.GdbQueries.Inc()
	obs.GdbQueryLatencyUS.Observe(elapsed.Microseconds())
	exec.RecordOutcome(err)

	aborted := err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, exec.ErrBudget))
	if aborted || (pol.SlowQuery > 0 && elapsed >= pol.SlowQuery) {
		status := "slow"
		if aborted {
			status = "aborted"
		}
		obs.GdbSlowQueries.Inc()
		entry := obs.SlowLogEntry{
			Time: start, Graph: name,
			Query:    fmt.Sprintf("CFPQ alg=%s sources=%d batched=%t", stats.Algorithm, src.NVals(), stats.Batched),
			Duration: elapsed, Status: status, Work: stats.Work,
		}
		if err != nil {
			entry.Err = err.Error()
		}
		db.slowLog.Add(entry)
		if pol.Log != nil {
			pol.Log.Printf("slow-query status=%s graph=%q duration=%s timeout=%s work=%d budget=%d batched=%t err=%v",
				status, name, elapsed.Round(time.Microsecond), pol.DefaultTimeout, stats.Work, pol.MaxWork, stats.Batched, err)
		}
	}
	if err != nil {
		return nil, err
	}
	return pairs, nil
}

// BatchStats snapshots the query coalescer's counters (the INFO batch
// section reads the process-global batch.* instruments instead).
func (db *DB) BatchStats() batch.CoalescerStats { return db.batcher.Stats() }
