package gdb

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"mscfpq/internal/cypher"
	"mscfpq/internal/exec"
	"mscfpq/internal/obs"
	"mscfpq/internal/store"
)

// Policy is the server-side query governance configuration: limits
// applied to every statement unless the statement overrides them (a
// Cypher TIMEOUT clause tightens or loosens the timeout for one query).
type Policy struct {
	// DefaultTimeout bounds each query's wall-clock execution; 0 means
	// no default (a per-query TIMEOUT clause still applies).
	DefaultTimeout time.Duration
	// MaxWork bounds each query's work budget (relation entries
	// produced across fixpoint iterations); 0 means unlimited.
	MaxWork int64
	// SlowQuery is the duration at or above which a completed query is
	// written to the slow-query log; 0 disables slow logging (aborted
	// queries are still logged).
	SlowQuery time.Duration
	// MaxConcurrent bounds the number of commands the RESP server
	// executes at once; excess commands are shed with a BUSY error
	// instead of queueing unboundedly. 0 means unlimited.
	MaxConcurrent int
	// SaveInterval is the auto-save period of a durable database
	// (Open): a snapshot is cut and the journal rotated this often.
	// 0 disables auto-saving; explicit Save/GRAPH.SAVE still works.
	SaveInterval time.Duration
	// CacheMaxBytes is the byte budget of the version-keyed query
	// result cache (DESIGN.md §11): results are keyed by (store
	// incarnation, graph version, query text), so a write to a graph
	// automatically invalidates its cached results — older-version
	// entries can never serve a newer version. 0 disables caching.
	CacheMaxBytes int64
	// CacheTTL additionally expires cached results by age; 0 keeps
	// entries until evicted or invalidated.
	CacheTTL time.Duration
	// BatchWindow enables multi-source query coalescing (DESIGN.md §14)
	// for EvalCFPQ: when a same-key evaluation (snapshot version +
	// incarnation, grammar, algorithm, limits) is already in flight,
	// later arrivals wait up to this long to be merged into one shared
	// fixpoint. 0 disables coalescing. A lone query never waits.
	BatchWindow time.Duration
	// BatchMaxSources flushes an open batch early once its deduplicated
	// source union reaches this size; 0 leaves the union uncapped.
	BatchMaxSources int
	// Log receives structured slow-query and aborted-query lines; nil
	// disables logging.
	Log *log.Logger
}

// SetPolicy installs the governance policy for subsequent queries.
func (db *DB) SetPolicy(p Policy) {
	db.polMu.Lock()
	db.policy = p
	db.polMu.Unlock()
	db.cache.Configure(p.CacheMaxBytes, p.CacheTTL)
	db.batcher.Configure(p.BatchWindow, p.BatchMaxSources)
	db.kickAutoSaver()
}

// Policy returns the current governance policy.
func (db *DB) Policy() Policy {
	db.polMu.RLock()
	defer db.polMu.RUnlock()
	return db.policy
}

// QueryContext parses and executes a statement against the named graph
// under the caller's context and the database policy. The effective
// timeout is the statement's TIMEOUT clause if present, the policy
// default otherwise; the policy's work budget always applies. Queries
// aborted by the governor return context.Canceled,
// context.DeadlineExceeded, or exec.ErrBudget.
func (db *DB) QueryContext(ctx context.Context, name, src string) (*QueryResult, error) {
	parseStart := time.Now()
	q, err := cypher.Parse(src)
	parseDur := time.Since(parseStart)
	if err != nil {
		return nil, err
	}
	pol := db.Policy()
	if q.Create != nil {
		if q.Profile {
			return nil, fmt.Errorf("gdb: PROFILE requires a MATCH query")
		}
		// Writes are single-pass over the pattern list — no fixpoint to
		// govern; honor an already-cancelled context, journal the
		// statement (durable databases fsync before acknowledging), and
		// run.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var res *QueryResult
		var applyErr error
		err := db.commit(journalOp{op: opCypher, name: name, arg: src}, func() {
			res, applyErr = db.runCreate(name, q)
		})
		if err != nil {
			return nil, err
		}
		obs.GdbWrites.Inc()
		return res, applyErr
	}
	s, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	timeout := pol.DefaultTimeout
	if q.TimeoutMS > 0 {
		timeout = time.Duration(q.TimeoutMS) * time.Millisecond
	}
	var trace *obs.Trace
	if q.Profile {
		trace = obs.NewTrace(obs.SpanQuery)
		trace.AddSpan(obs.SpanParse, parseDur)
	}

	// Pin ONE snapshot for both the cache key and the evaluation: the
	// result is exactly the answer for this version even if writes
	// publish newer versions mid-flight, and a result cached under the
	// key can never be served for any other version.
	snap := s.Snapshot()
	var rkey store.Key
	if db.cache.Enabled() {
		rkey = store.ResultKey(snap.StoreID(), snap.Version(), src)
		lookupStart := time.Now()
		v, hit := db.cache.Get(rkey)
		if trace != nil {
			if hit {
				trace.AddSpan(obs.SpanCacheHit, time.Since(lookupStart))
			} else {
				trace.AddSpan(obs.SpanCacheMiss, time.Since(lookupStart))
			}
		}
		if hit {
			cached := v.(*QueryResult)
			res := &QueryResult{Columns: cached.Columns, Rows: cached.Rows}
			obs.GdbQueries.Inc()
			obs.GdbQueryLatencyUS.Observe(time.Since(parseStart).Microseconds())
			if trace != nil {
				trace.Close()
				res.Profile = trace.Render()
			}
			return res, nil
		}
	}

	run, cancel := exec.Options{Ctx: ctx, Timeout: timeout, Budget: pol.MaxWork, Trace: trace}.Start()
	defer cancel()

	start := time.Now()
	res, err := s.runMatchSnap(snap, q, run)
	elapsed := time.Since(start)
	trace.Close()

	if err == nil && rkey != "" {
		// Cache a trimmed copy (columns and rows only — never the
		// profile) so later hits share immutable data.
		entry := &QueryResult{Columns: res.Columns, Rows: res.Rows}
		db.cache.Put(rkey, entry, resultBytes(entry, rkey), snap.StoreID(), snap.Version())
	}

	obs.GdbQueries.Inc()
	obs.GdbQueryLatencyUS.Observe(elapsed.Microseconds())
	exec.RecordOutcome(err)

	aborted := err != nil && (errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, exec.ErrBudget))
	if aborted || (pol.SlowQuery > 0 && elapsed >= pol.SlowQuery) {
		status := "slow"
		if aborted {
			status = "aborted"
		}
		obs.GdbSlowQueries.Inc()
		entry := obs.SlowLogEntry{
			Time: start, Graph: name, Query: src,
			Duration: elapsed, Status: status, Work: run.Spent(),
		}
		if err != nil {
			entry.Err = err.Error()
		}
		db.slowLog.Add(entry)
		if pol.Log != nil {
			pol.Log.Printf("slow-query status=%s graph=%q duration=%s timeout=%s work=%d budget=%d err=%v query=%q",
				status, name, elapsed.Round(time.Microsecond), timeout, run.Spent(), pol.MaxWork, err, src)
		}
	}
	if err != nil {
		return nil, err
	}
	if trace != nil {
		res.Profile = trace.Render()
	}
	return res, nil
}

// resultBytes estimates a cached result's memory footprint for the
// cache's byte budget.
func resultBytes(r *QueryResult, key store.Key) int64 {
	b := int64(len(key)) + 96
	for _, c := range r.Columns {
		b += int64(len(c)) + 16
	}
	for _, row := range r.Rows {
		b += int64(len(row))*8 + 24
	}
	return b
}
