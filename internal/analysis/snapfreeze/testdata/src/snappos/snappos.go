// Package snappos holds true positives for snapfreeze: mutations of a
// published immutable value.
package snappos

// version is shared lock-free by concurrent readers once published.
//
// immutable after publish
type version struct {
	id    int
	attrs map[string]int
}

func newVersion(id int) *version {
	v := &version{id: id, attrs: map[string]int{}}
	return v
}

// Bump mutates a receiver that may already be published.
func (v *version) Bump() {
	v.id++ // want `mutation of immutable-after-publish type version`
}

// setAttr mutates an element reached through a published value.
func setAttr(v *version, k string) {
	v.attrs[k] = 1 // want `mutation of immutable-after-publish type version`
}

// dropAttr deletes through a published value.
func dropAttr(v *version, k string) {
	delete(v.attrs, k) // want `mutation of immutable-after-publish type version`
}

// escaped keeps writing after the value has been handed out.
func escaped(id int) *version {
	v := &version{id: id}
	publish(v)
	v.id = 2 // want `after the value escapes`
	return v
}

func publish(*version) {}

// captured mutates a snapshot from a goroutine-shaped closure — a
// separate scope, so the construction window does not apply.
func captured(id int) *version {
	v := &version{id: id}
	go func() {
		v.id = 3 // want `mutation of immutable-after-publish type version`
	}()
	return v
}
