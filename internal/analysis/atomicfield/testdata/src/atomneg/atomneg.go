// Package atomneg holds near misses for atomicfield: code that looks
// like mixed access but is disciplined.
package atomneg

import "sync/atomic"

type counter struct {
	// atomic
	hits int64
	name string // plain field next to an atomic one: untouched by the rule
}

// newCounter initializes the fields plainly before the value escapes —
// the sanctioned construction window.
func newCounter(label string) *counter {
	c := &counter{}
	c.hits = 0
	c.name = label
	return c
}

func (c *counter) inc() { atomic.AddInt64(&c.hits, 1) }

func (c *counter) get() int64 { return atomic.LoadInt64(&c.hits) }

func (c *counter) label() string { return c.name }

// typed uses the typed wrapper whose API admits no plain access;
// atomicfield has nothing to check.
type typed struct {
	n atomic.Int64
}

func (t *typed) bump() { t.n.Add(1) }

// other shares the field name with counter.hits but is a different
// field object: plain access is fine.
type other struct {
	hits int64
}

func (o *other) touch() { o.hits++ }

// prose is a comment that merely starts with the word "atomic" — not
// an annotation.
type prose struct {
	// atomic so parallel kernels can charge it... is what a doc
	// comment might say; this one declares nothing.
	sum int64
}

func (p *prose) add(v int64) { p.sum += v }
