package cypher

import (
	"fmt"
	"strings"
)

// Query is a parsed Cypher statement: an optional PROFILE prefix,
// optional PATH PATTERN declarations, then one CREATE or
// MATCH/WHERE/RETURN block, with an optional trailing TIMEOUT clause.
type Query struct {
	PathPatterns []NamedPathPattern
	Create       *CreateClause
	Match        *MatchClause
	Where        Expr // nil when absent
	Return       *ReturnClause
	// TimeoutMS bounds the statement's execution in milliseconds
	// (trailing "TIMEOUT <ms>" clause); 0 means the server default.
	TimeoutMS int
	// Profile marks a "PROFILE MATCH ..." statement: the query runs
	// normally and its result additionally carries the execution span
	// tree with kernel counters.
	Profile bool
}

// NamedPathPattern is PATH PATTERN Name = ()-/ expr /->().
type NamedPathPattern struct {
	Name string
	Expr PathExpr
}

// CreateClause holds the patterns of a CREATE statement.
type CreateClause struct {
	Patterns []Pattern
}

// MatchClause holds the comma-separated linear patterns of MATCH.
type MatchClause struct {
	Patterns []Pattern
}

// ReturnClause lists projection items plus the result modifiers.
type ReturnClause struct {
	Items   []ReturnItem
	OrderBy []OrderKey
	Skip    int // 0 = no offset
	Limit   int // 0 = no limit
}

// ReturnItem projects a variable or a count aggregate, optionally
// renamed with AS. Count with Var == "*" is count(*).
type ReturnItem struct {
	Var   string
	Alias string
	Count bool
}

// OrderKey is one ORDER BY column (a returned variable or alias).
type OrderKey struct {
	Name string
	Desc bool
}

// Pattern is a linear chain: node, (connection, node)*.
type Pattern struct {
	Nodes       []NodePattern
	Connections []Connection // len(Connections) == len(Nodes)-1
}

// NodePattern is (v:Label {prop: value, ...}); all parts optional.
type NodePattern struct {
	Var    string
	Labels []string
	Props  []Property
}

// Property is one key-value pair of a node property map.
type Property struct {
	Key string
	Val Value
}

// Value is a literal: string or integer.
type Value struct {
	Str   string
	Int   int64
	IsInt bool
}

func (v Value) String() string {
	if v.IsInt {
		return fmt.Sprintf("%d", v.Int)
	}
	return fmt.Sprintf("'%s'", v.Str)
}

// Connection joins two consecutive nodes of a pattern: either a
// relationship pattern or a path-pattern application.
type Connection interface{ connString() string }

// RelPattern is -[r:a|b]-> or <-[:a]- ; Types empty means any label.
type RelPattern struct {
	Var     string
	Types   []string
	Inverse bool // true for <-[...]- (right to left)
}

// PathApply is -/ expr /-> or <-/ expr /- .
type PathApply struct {
	Expr    PathExpr
	Inverse bool
}

func (r RelPattern) connString() string {
	arrow := "-[%s]->"
	if r.Inverse {
		arrow = "<-[%s]-"
	}
	inner := r.Var
	if len(r.Types) > 0 {
		inner += ":" + strings.Join(r.Types, "|")
	}
	return fmt.Sprintf(arrow, inner)
}

func (p PathApply) connString() string {
	if p.Inverse {
		return "<-/ " + p.Expr.String() + " /-"
	}
	return "-/ " + p.Expr.String() + " /->"
}

// PathExpr is a path-pattern expression (CIP2017-02-06 subset).
type PathExpr interface{ String() string }

// PESeq is juxtaposition: e1 e2 ... en.
type PESeq struct{ Parts []PathExpr }

// PEAlt is alternation: e1 | e2 | ... | en.
type PEAlt struct{ Alts []PathExpr }

// PERel is a relationship step :a ; Inverse traverses the edge backwards
// (written :a_r or <:a).
type PERel struct {
	Type    string
	Inverse bool
}

// PENode is a node check (:x); empty Labels matches any node.
type PENode struct{ Labels []string }

// PERef references a named path pattern: ~S.
type PERef struct{ Name string }

// PEStar, PEPlus, PEOpt are the regular quantifiers e*, e+, e?.
type PEStar struct{ Sub PathExpr }
type PEPlus struct{ Sub PathExpr }
type PEOpt struct{ Sub PathExpr }

func (e PESeq) String() string {
	parts := make([]string, len(e.Parts))
	for i, p := range e.Parts {
		parts[i] = p.String()
	}
	return strings.Join(parts, " ")
}

func (e PEAlt) String() string {
	parts := make([]string, len(e.Alts))
	for i, p := range e.Alts {
		parts[i] = p.String()
	}
	return "[" + strings.Join(parts, " | ") + "]"
}

func (e PERel) String() string {
	if e.Inverse {
		return "<:" + e.Type
	}
	return ":" + e.Type
}

func (e PENode) String() string {
	if len(e.Labels) == 0 {
		return "()"
	}
	return "(:" + strings.Join(e.Labels, ":") + ")"
}

func (e PERef) String() string  { return "~" + e.Name }
func (e PEStar) String() string { return "[" + e.Sub.String() + "]*" }
func (e PEPlus) String() string { return "[" + e.Sub.String() + "]+" }
func (e PEOpt) String() string  { return "[" + e.Sub.String() + "]?" }

// Expr is a WHERE expression.
type Expr interface{ exprString() string }

// AndExpr is a conjunction.
type AndExpr struct{ Left, Right Expr }

// IDCompare is id(v) = n.
type IDCompare struct {
	Var string
	ID  int64
}

// IDIn is id(v) IN [n1, n2, ...].
type IDIn struct {
	Var string
	IDs []int64
}

// PropCompare is v.key = literal.
type PropCompare struct {
	Var string
	Key string
	Val Value
}

// HasLabel is v:Label.
type HasLabel struct {
	Var   string
	Label string
}

func (e AndExpr) exprString() string { return e.Left.exprString() + " AND " + e.Right.exprString() }
func (e IDCompare) exprString() string {
	return fmt.Sprintf("id(%s) = %d", e.Var, e.ID)
}
func (e IDIn) exprString() string {
	parts := make([]string, len(e.IDs))
	for i, id := range e.IDs {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("id(%s) IN [%s]", e.Var, strings.Join(parts, ", "))
}
func (e PropCompare) exprString() string {
	return fmt.Sprintf("%s.%s = %s", e.Var, e.Key, e.Val)
}
func (e HasLabel) exprString() string { return e.Var + ":" + e.Label }
