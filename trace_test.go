package mscfpq

import (
	"fmt"
	"testing"

	"mscfpq/internal/obs"
)

// TestFacadeEvalCFPQTraceFigure1 runs the paper's running-example query
// (c^n y d^n, Section 2.3) over the Figure 1 graph through the unified
// EvalCFPQ entry point with a trace attached, and checks the span tree:
// one "round N" child per fixpoint iteration, in order, with kernel
// counter totals that exactly match the metrics registry's delta over
// the same evaluation.
func TestFacadeEvalCFPQTraceFigure1(t *testing.T) {
	g, err := LoadGraph("testdata/example_graph.txt")
	if err != nil {
		t.Fatal(err)
	}
	gr, err := LoadGrammar("queries/cnd.txt")
	if err != nil {
		t.Fatal(err)
	}
	w, err := ToWCNF(gr)
	if err != nil {
		t.Fatal(err)
	}

	// Untraced all-pairs reference.
	ref, err := EvalCFPQ(g, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if alg := ref.Stats().Algorithm; alg != AlgMatrix {
		t.Fatalf("auto algorithm without sources = %v, want %v", alg, AlgMatrix)
	}
	if len(ref.Pairs()) == 0 {
		t.Fatal("running-example query has a known nonempty answer")
	}

	// Traced multiple-source run over every vertex: identical answer.
	src := NewVertexSet(g.NumVertices(), 0, 1, 2, 3, 4, 5)
	tr := NewTrace("cfpq")
	before := obs.Default.Snapshot()
	res, err := EvalCFPQ(g, w, src, WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	delta := obs.Default.Snapshot().Sub(before)
	tr.Close()

	if alg := res.Stats().Algorithm; alg != AlgMultiSource {
		t.Fatalf("auto algorithm with sources = %v, want %v", alg, AlgMultiSource)
	}
	got, want := res.Pairs(), ref.Pairs()
	if len(got) != len(want) {
		t.Fatalf("traced answer %v differs from reference %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("traced answer %v differs from reference %v", got, want)
		}
	}

	// Span-tree shape: the root holds one child per fixpoint round, in
	// order, and nothing else.
	root := tr.Root()
	if root.Name != "cfpq" {
		t.Fatalf("root span = %q", root.Name)
	}
	if len(root.Children) == 0 || len(root.Children) != res.Stats().Rounds {
		t.Fatalf("%d round spans for %d rounds", len(root.Children), res.Stats().Rounds)
	}
	for i, c := range root.Children {
		if want := fmt.Sprintf("round %d", i+1); c.Name != want {
			t.Fatalf("child %d = %q, want %q", i, c.Name, want)
		}
	}

	// Counter agreement: the tree's kernel totals are exactly the
	// registry's deltas — the two views of kernel work never drift.
	for _, key := range []string{"kernel.mul.ops", "kernel.mul.nnz", "kernel.add.ops", "kernel.add.nnz"} {
		if tot := root.Total(key); tot != delta[key] {
			t.Errorf("%s: span total %d != registry delta %d", key, tot, delta[key])
		}
	}
	if root.Total("kernel.mul.ops") == 0 {
		t.Fatal("expected mul work in the fixpoint")
	}
}
