package plan

import (
	"strings"
	"testing"

	"mscfpq/internal/cypher"
)

func TestBuildQueryGraphListing7(t *testing.T) {
	q, err := cypher.Parse(`
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v:x)-[:a]->()-/ :b ~S /->(to)
		RETURN v, to`)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := BuildQueryGraph(q.Match)
	if err != nil {
		t.Fatal(err)
	}
	if len(qg.Nodes) != 3 || len(qg.Edges) != 2 {
		t.Fatalf("shape: %d nodes %d edges", len(qg.Nodes), len(qg.Edges))
	}
	if qg.Nodes[0].Name != "v" || qg.Nodes[0].Labels[0] != "x" {
		t.Fatalf("node 0 = %+v", qg.Nodes[0])
	}
	if _, ok := qg.Edges[0].Conn.(cypher.RelPattern); !ok {
		t.Fatalf("edge 0 = %T", qg.Edges[0].Conn)
	}
	if _, ok := qg.Edges[1].Conn.(cypher.PathApply); !ok {
		t.Fatalf("edge 1 = %T", qg.Edges[1].Conn)
	}
	chains := qg.Chains()
	if len(chains) != 1 || len(chains[0]) != 2 {
		t.Fatalf("chains = %v", chains)
	}
	if !strings.Contains(qg.String(), "v:x") {
		t.Fatalf("String = %q", qg.String())
	}
}

func TestQueryGraphMergesSharedVars(t *testing.T) {
	q, err := cypher.Parse(`MATCH (a)-[:x]->(b), (b:L)-[:y]->(c) RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := BuildQueryGraph(q.Match)
	if err != nil {
		t.Fatal(err)
	}
	if len(qg.Nodes) != 3 {
		t.Fatalf("nodes = %d (b should merge)", len(qg.Nodes))
	}
	// The label constraint from the second occurrence of b is merged.
	var b QGNode
	for _, n := range qg.Nodes {
		if n.Name == "b" {
			b = n
		}
	}
	if len(b.Labels) != 1 || b.Labels[0] != "L" {
		t.Fatalf("merged b = %+v", b)
	}
	// Two patterns that continue through b still form one chain here
	// because the second pattern starts where the first ended.
	if chains := qg.Chains(); len(chains) != 1 {
		t.Fatalf("chains = %d", len(chains))
	}
}

func TestQueryGraphDisjointChains(t *testing.T) {
	q, err := cypher.Parse(`MATCH (a)-[:x]->(b), (c)-[:y]->(d) RETURN a`)
	if err != nil {
		t.Fatal(err)
	}
	qg, err := BuildQueryGraph(q.Match)
	if err != nil {
		t.Fatal(err)
	}
	if chains := qg.Chains(); len(chains) != 2 {
		t.Fatalf("chains = %d", len(chains))
	}
}

func TestBuildQueryGraphEmpty(t *testing.T) {
	if _, err := BuildQueryGraph(nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := BuildQueryGraph(&cypher.MatchClause{}); err == nil {
		t.Fatal("expected error")
	}
}
