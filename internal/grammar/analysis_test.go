package grammar

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestAnalyzeProductiveReachable(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{N("A"), T("x")}},
		{LHS: "A", RHS: []Symbol{T("a")}},
		{LHS: "B", RHS: []Symbol{N("B"), T("b")}}, // unproductive (no base case)
		{LHS: "C", RHS: []Symbol{T("c")}},         // productive but unreachable
	})
	a := Analyze(g)
	if !a.Productive["S"] || !a.Productive["A"] || !a.Productive["C"] {
		t.Fatalf("productive = %v", a.Productive)
	}
	if a.Productive["B"] {
		t.Fatal("B must be unproductive")
	}
	if !a.Reachable["S"] || !a.Reachable["A"] || a.Reachable["B"] || a.Reachable["C"] {
		t.Fatalf("reachable = %v", a.Reachable)
	}
	if !a.UsedTerminals["x"] || !a.UsedTerminals["a"] || a.UsedTerminals["c"] {
		t.Fatalf("used terminals = %v", a.UsedTerminals)
	}
}

func TestAnalyzeNullable(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{N("A"), N("B")}},
		{LHS: "A"},
		{LHS: "B", RHS: []Symbol{N("A")}},
		{LHS: "C", RHS: []Symbol{T("c")}},
		{LHS: "S", RHS: []Symbol{N("C")}},
	})
	a := Analyze(g)
	for _, nt := range []string{"S", "A", "B"} {
		if !a.Nullable[nt] {
			t.Fatalf("%s must be nullable: %v", nt, a.Nullable)
		}
	}
	if a.Nullable["C"] {
		t.Fatal("C must not be nullable")
	}
}

func TestPruneRemovesUseless(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("a"), N("S"), T("b")}},
		{LHS: "S", RHS: []Symbol{T("a"), T("b")}},
		{LHS: "S", RHS: []Symbol{N("Dead"), T("x")}}, // Dead is unproductive
		{LHS: "Dead", RHS: []Symbol{N("Dead")}},
		{LHS: "Island", RHS: []Symbol{T("z")}}, // unreachable
	})
	pruned, err := Prune(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := pruned.Nonterminals(); !reflect.DeepEqual(got, []string{"S"}) {
		t.Fatalf("nonterminals after prune = %v", got)
	}
	if len(pruned.Prods) != 2 {
		t.Fatalf("productions after prune:\n%s", pruned)
	}
	// Language preserved on samples.
	w := MustWCNF(pruned)
	if !w.Accepts([]string{"a", "a", "b", "b"}) || w.Accepts([]string{"a", "x"}) {
		t.Fatal("pruning changed the language")
	}
}

func TestPruneEmptyLanguage(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{N("S"), T("a")}},
	})
	if _, err := Prune(g); err == nil {
		t.Fatal("expected error for empty language")
	}
}

// Property: pruning never changes membership for sampled words.
func TestPrunePreservesLanguageProperty(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("a"), N("S"), T("b")}},
		{LHS: "S", RHS: []Symbol{N("M")}},
		{LHS: "M", RHS: []Symbol{T("m")}},
		{LHS: "M", RHS: []Symbol{N("Loop"), T("q")}},
		{LHS: "Loop", RHS: []Symbol{N("Loop"), T("l")}},
		{LHS: "Orphan", RHS: []Symbol{T("o")}},
	})
	pruned, err := Prune(g)
	if err != nil {
		t.Fatal(err)
	}
	w1 := MustWCNF(g)
	w2 := MustWCNF(pruned)
	rng := rand.New(rand.NewSource(9))
	terms := []string{"a", "b", "m", "q", "l", "o"}
	for trial := 0; trial < 300; trial++ {
		word := make([]string, rng.Intn(7))
		for i := range word {
			word[i] = terms[rng.Intn(len(terms))]
		}
		if w1.Accepts(word) != w2.Accepts(word) {
			t.Fatalf("membership differs for %v", word)
		}
	}
}

func TestUnusedTerminals(t *testing.T) {
	g := MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("a")}},
		{LHS: "Dead", RHS: []Symbol{T("z")}},
	})
	got := UnusedTerminals(g)
	if len(got) != 1 || got[0] != "z" {
		t.Fatalf("unused = %v", got)
	}
	if !strings.Contains(g.String(), "Dead") {
		t.Fatal("sanity: Dead should render")
	}
}
