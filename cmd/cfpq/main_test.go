package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixtures materializes a small graph and grammar on disk.
func writeFixtures(t *testing.T) (graphPath, grammarPath string) {
	t.Helper()
	dir := t.TempDir()
	graphPath = filepath.Join(dir, "g.txt")
	grammarPath = filepath.Join(dir, "q.txt")
	// Two cycles sharing vertex 0 (2 a-edges, 3 b-edges).
	graphSrc := "order 4\n0 a 1\n1 a 0\n0 b 2\n2 b 3\n3 b 0\n"
	if err := os.WriteFile(graphPath, []byte(graphSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(grammarPath, []byte("S -> a S b | a b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return graphPath, grammarPath
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(args, &out)
	return out.String(), err
}

func TestCLIAlgorithmsAgree(t *testing.T) {
	g, q := writeFixtures(t)
	var results []string
	for _, algo := range []string{"allpairs", "worklist", "singlepath", "tensor"} {
		out, err := runCLI(t, "-graph", g, "-grammar", q, "-algo", algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		// Normalize away the header lines (the graph summary and the
		// per-algorithm stats line), keep the pair lines.
		var kept []string
		for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
			if strings.HasPrefix(l, "graph:") || strings.HasPrefix(l, "algorithm:") {
				continue
			}
			kept = append(kept, l)
		}
		results = append(results, strings.Join(kept, "\n"))
	}
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Fatalf("algorithm output %d differs:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}
}

func TestCLIMultiSource(t *testing.T) {
	g, q := writeFixtures(t)
	for _, algo := range []string{"ms", "smart", "worklist"} {
		out, err := runCLI(t, "-graph", g, "-grammar", q, "-algo", algo, "-src", "0")
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if !strings.Contains(out, "0 -> 0") {
			t.Fatalf("%s: missing pair (0,0):\n%s", algo, out)
		}
		if strings.Contains(out, "1 -> ") {
			t.Fatalf("%s: leaked non-source rows:\n%s", algo, out)
		}
	}
}

func TestCLISinglePathWitnesses(t *testing.T) {
	g, q := writeFixtures(t)
	out, err := runCLI(t, "-graph", g, "-grammar", q, "-algo", "singlepath", "-paths")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "via a") {
		t.Fatalf("missing witness words:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	g, q := writeFixtures(t)
	cases := [][]string{
		{},            // missing flags
		{"-graph", g}, // missing grammar
		{"-graph", g, "-grammar", q, "-algo", "nope"},
		{"-graph", g, "-grammar", q, "-algo", "ms"},    // ms without src
		{"-graph", g, "-grammar", q, "-src", "99"},     // bad vertex
		{"-graph", "/nonexistent", "-grammar", q},      // missing file
		{"-graph", g, "-grammar", q, "-algo", "smart"}, // smart without src
		{"-graph", g, "-grammar", q, "-src", "x"},      // non-numeric src
	}
	for i, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("case %d (%v): expected error", i, args)
		}
	}
}

func TestCLILimit(t *testing.T) {
	g, q := writeFixtures(t)
	out, err := runCLI(t, "-graph", g, "-grammar", q, "-algo", "allpairs", "-limit", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "more)") {
		t.Fatalf("limit did not truncate:\n%s", out)
	}
}
