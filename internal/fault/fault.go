//go:build !nofault

// Package fault is the repository's failpoint framework: named
// injection points threaded through the persistence and server IO
// paths that tests arm to return errors, tear writes after N bytes,
// inject latency, or panic. Production code calls Inject (or wraps a
// writer with Writer) at each point; with nothing armed the cost is a
// single atomic load, and the `nofault` build tag compiles the calls
// down to constant no-ops for release builds.
//
// Failpoint names are dotted paths, `<package>.<component>.<step>`
// (e.g. "gdb.snapshot.rename", "resp.dispatch"); packages declare
// their points with Declare at init so chaos suites can enumerate
// every point with Names.
//
// Typical test usage:
//
//	defer fault.Enable("gdb.journal.sync", fault.Spec{Err: errDisk})()
//	...
//	if fault.Hits("gdb.journal.sync") == 0 { t.Fatal("never reached") }
package fault

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Spec describes what an armed failpoint does when its injection
// point is hit. Exactly the set fields act; a zero Delay, nil Err and
// nil Panic with TruncateAfter < 0 is a counting-only probe.
type Spec struct {
	// Err is returned from Inject (and from the first write past the
	// truncation point of a torn Writer).
	Err error
	// Panic, when non-nil, makes Inject panic with this value after
	// Delay — the hook for crash-inside-handler tests.
	Panic any
	// Delay is slept before acting — latency injection.
	Delay time.Duration
	// TruncateAfter, when positive, makes Writer pass through this
	// many bytes and then fail every subsequent write (a torn write);
	// zero leaves wrapped writers untouched.
	TruncateAfter int64
	// SkipFirst lets this many hits pass untouched before the spec
	// starts acting.
	SkipFirst int
	// Times bounds how many hits act (after SkipFirst); 0 means every
	// hit acts until the point is disabled.
	Times int
}

// point is one named failpoint. Hit counting and the armed spec are
// atomic so Inject never takes the registry lock.
type point struct {
	name  string
	spec  atomic.Pointer[Spec]
	hits  atomic.Int64 // total Inject/Writer hits while armed or not
	acted atomic.Int64 // hits at which the armed spec acted
}

var (
	// armed counts enabled points; Inject short-circuits on zero so an
	// idle failpoint costs one atomic load.
	armed atomic.Int64

	regMu    sync.Mutex
	registry = map[string]*point{} // guarded by regMu
)

// ErrInjected is the default error returned by an armed failpoint
// whose Spec has no explicit Err.
var ErrInjected = fmt.Errorf("fault: injected failure")

// Declare registers failpoint names so Names can enumerate them.
// Declaring an existing name is a no-op; packages declare their points
// in a var initializer next to the code that injects them.
func Declare(names ...string) struct{} {
	regMu.Lock()
	defer regMu.Unlock()
	for _, n := range names {
		if registry[n] == nil {
			registry[n] = &point{name: n}
		}
	}
	return struct{}{}
}

// Names returns every declared failpoint name, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// lookup returns the named point, declaring it on first use so tests
// may enable points the production code has not declared explicitly.
func lookup(name string) *point {
	regMu.Lock()
	defer regMu.Unlock()
	p := registry[name]
	if p == nil {
		p = &point{name: name}
		registry[name] = p
	}
	return p
}

// Enable arms a failpoint and returns the function that disarms it
// (idiomatically deferred). Re-enabling an armed point replaces its
// spec. Hit counters reset on Enable.
func Enable(name string, s Spec) func() {
	p := lookup(name)
	sp := s
	if p.spec.Swap(&sp) == nil {
		armed.Add(1)
	}
	p.hits.Store(0)
	p.acted.Store(0)
	return func() { Disable(name) }
}

// Disable disarms a failpoint; disarming an idle point is a no-op.
func Disable(name string) {
	p := lookup(name)
	if p.spec.Swap(nil) != nil {
		armed.Add(-1)
	}
}

// Reset disarms every failpoint — test cleanup.
func Reset() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, p := range registry {
		if p.spec.Swap(nil) != nil {
			armed.Add(-1)
		}
	}
}

// Hits reports how many times the named point was reached since it
// was last enabled.
func Hits(name string) int64 { return lookup(name).hits.Load() }

// Active reports whether any failpoint is armed.
func Active() bool { return armed.Load() > 0 }

// Inject is the injection point: it returns nil unless the named
// failpoint is armed, in which case it counts the hit, sleeps the
// spec's Delay, panics if the spec says so, and returns the spec's
// error (ErrInjected when the spec has none and is not purely a
// latency/counting probe with TruncateAfter semantics).
func Inject(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	p := lookup(name)
	s := p.spec.Load()
	if s == nil {
		return nil
	}
	hit := p.hits.Add(1)
	if s.TruncateAfter > 0 {
		// Truncating specs act through Writer at the same name; Inject
		// only counts the hit.
		return nil
	}
	if !s.actsOn(hit, &p.acted) {
		return nil
	}
	if s.Delay > 0 {
		time.Sleep(s.Delay)
	}
	if s.Panic != nil {
		panic(s.Panic)
	}
	if s.Err != nil {
		return s.Err
	}
	if s.Delay > 0 {
		return nil // pure latency probe
	}
	return ErrInjected
}

// actsOn applies the SkipFirst/Times window to the hit ordinal.
func (s *Spec) actsOn(hit int64, acted *atomic.Int64) bool {
	if hit <= int64(s.SkipFirst) {
		return false
	}
	if s.Times > 0 && acted.Add(1) > int64(s.Times) {
		return false
	}
	return true
}

// Writer wraps w with the named failpoint's torn-write behaviour:
// while the point is armed with TruncateAfter >= 0, the wrapper
// passes TruncateAfter bytes through and then fails every write with
// the spec's error (short-writing the straddling chunk), simulating a
// crash that tore the stream mid-record. With the point idle, or
// armed without truncation, w is returned untouched.
func Writer(name string, w io.Writer) io.Writer {
	if armed.Load() == 0 {
		return w
	}
	p := lookup(name)
	s := p.spec.Load()
	if s == nil || s.TruncateAfter <= 0 {
		return w
	}
	hit := p.hits.Add(1)
	if !s.actsOn(hit, &p.acted) {
		return w
	}
	err := s.Err
	if err == nil {
		err = ErrInjected
	}
	return &tornWriter{w: w, left: s.TruncateAfter, err: err}
}

// tornWriter delivers the first `left` bytes and fails afterwards.
type tornWriter struct {
	w    io.Writer
	left int64
	err  error
}

func (t *tornWriter) Write(b []byte) (int, error) {
	if t.left <= 0 {
		return 0, t.err
	}
	if int64(len(b)) <= t.left {
		n, err := t.w.Write(b)
		t.left -= int64(n)
		return n, err
	}
	n, err := t.w.Write(b[:t.left])
	t.left -= int64(n)
	if err != nil {
		return n, err
	}
	return n, t.err
}
