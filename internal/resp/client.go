package resp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"strings"
	"syscall"
	"time"
)

// ServerError is an error reply from the server, code included
// ("ERR ...", "BUSY ...").
type ServerError struct {
	Msg string
}

func (e *ServerError) Error() string { return "resp: server: " + e.Msg }

// Transient reports whether the reply invites a retry — the BUSY
// overload-shedding refusal.
func (e *ServerError) Transient() bool { return strings.HasPrefix(e.Msg, "BUSY") }

// IsTransient reports whether err is a server reply worth retrying
// with backoff (see (*Client).DoRetry).
func IsTransient(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Transient()
}

// IsBrokenConn reports whether err looks like a connection that died
// under the client — EOF mid-reply, a reset or closed socket, a broken
// pipe — rather than a reply the server chose to send. DoRetry treats
// these as transient and redials: a server restart (failover,
// redeploy) otherwise fails every pooled client's next call.
func IsBrokenConn(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return true
	}
	var ne *net.OpError
	return errors.As(err, &ne)
}

// LeaderHint extracts the leader address from a replica's READONLY
// rejection ("READONLY replica of <addr>; ..."), so a client that
// wrote to a follower can re-route.
func LeaderHint(err error) (string, bool) {
	var se *ServerError
	if !errors.As(err, &se) {
		return "", false
	}
	rest, ok := strings.CutPrefix(se.Msg, "READONLY replica of ")
	if !ok {
		return "", false
	}
	addr, _, _ := strings.Cut(rest, ";")
	addr = strings.TrimSpace(addr)
	return addr, addr != ""
}

// Client is a minimal RESP client for the graph server. Not safe for
// concurrent use; open one client per goroutine.
type Client struct {
	addr string
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("resp: dial %s: %w", addr, err)
	}
	return &Client{addr: addr, conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// redial replaces a broken connection with a fresh one to the same
// address.
func (c *Client) redial() error {
	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("resp: redial %s: %w", c.addr, err)
	}
	// Best-effort close of the dead socket; it already failed.
	_ = c.conn.Close()
	c.conn = conn
	c.r = bufio.NewReader(conn)
	c.w = bufio.NewWriter(conn)
	return nil
}

// Do sends a command and returns the raw reply. An error reply becomes
// a Go error.
func (c *Client) Do(args ...string) (Value, error) {
	req := Value{Kind: Array, Array: make([]Value, len(args))}
	for i, a := range args {
		req.Array[i] = Bulk(a)
	}
	if err := Write(c.w, req); err != nil {
		return Value{}, err
	}
	if err := c.w.Flush(); err != nil {
		return Value{}, err
	}
	reply, err := Read(c.r)
	if err != nil {
		return Value{}, err
	}
	if reply.Kind == ErrorString {
		return Value{}, &ServerError{Msg: reply.Str}
	}
	return reply, nil
}

// DoRetry sends a command like Do but retries transient failures with
// jittered exponential backoff, up to attempts sends in total. Two
// failure shapes are transient: the server's BUSY overload refusal,
// and a connection that broke under the call (EOF, reset, closed
// socket — e.g. a server restart), which is retried over a fresh dial.
// Other errors — protocol failures, ordinary ERR replies — return
// immediately. Caveat: a broken-connection retry re-sends the command,
// so a non-idempotent write that died after reaching the server can
// apply twice; route such writes through Do if that matters.
func (c *Client) DoRetry(attempts int, args ...string) (Value, error) {
	backoff := 2 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	for attempt := 1; ; attempt++ {
		v, err := c.Do(args...)
		if err == nil || attempt >= attempts {
			return v, err
		}
		switch {
		case IsTransient(err):
		case IsBrokenConn(err):
			if rerr := c.redial(); rerr != nil {
				// The server may still be coming back up; wait out the
				// backoff and try dialing again on the next attempt.
				if attempt+1 >= attempts {
					return Value{}, rerr
				}
			}
		default:
			return v, err
		}
		// Full jitter: a uniform draw over the window keeps shed
		// clients from re-arriving in lockstep.
		time.Sleep(time.Duration(rand.Int64N(int64(backoff))) + backoff/2)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// Ping round-trips a PING.
func (c *Client) Ping() error {
	v, err := c.Do("PING")
	if err != nil {
		return err
	}
	if v.Str != "PONG" {
		return fmt.Errorf("resp: unexpected PING reply %q", v.Str)
	}
	return nil
}

// QueryReply is a decoded GRAPH.QUERY response.
type QueryReply struct {
	Columns []string
	Rows    [][]int64
	Stats   []string
}

// GraphQuery runs GRAPH.QUERY and decodes the reply.
func (c *Client) GraphQuery(graph, query string) (*QueryReply, error) {
	v, err := c.Do("GRAPH.QUERY", graph, query)
	if err != nil {
		return nil, err
	}
	if v.Kind != Array || len(v.Array) != 3 {
		return nil, fmt.Errorf("resp: malformed GRAPH.QUERY reply")
	}
	out := &QueryReply{}
	for _, h := range v.Array[0].Array {
		out.Columns = append(out.Columns, h.Str)
	}
	for _, row := range v.Array[1].Array {
		var cells []int64
		for _, cell := range row.Array {
			if cell.Kind != Integer {
				return nil, fmt.Errorf("resp: non-integer result cell")
			}
			cells = append(cells, cell.Int)
		}
		out.Rows = append(out.Rows, cells)
	}
	for _, s := range v.Array[2].Array {
		out.Stats = append(out.Stats, s.Str)
	}
	return out, nil
}

// GraphExplain runs GRAPH.EXPLAIN and returns the plan lines.
func (c *Client) GraphExplain(graph, query string) ([]string, error) {
	v, err := c.Do("GRAPH.EXPLAIN", graph, query)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, l := range v.Array {
		out = append(out, l.Str)
	}
	return out, nil
}

// GraphProfile runs GRAPH.PROFILE and returns the instrumented plan
// lines.
func (c *Client) GraphProfile(graph, query string) ([]string, error) {
	v, err := c.Do("GRAPH.PROFILE", graph, query)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, l := range v.Array {
		out = append(out, l.Str)
	}
	return out, nil
}

// GraphDelete runs GRAPH.DELETE.
func (c *Client) GraphDelete(graph string) error {
	_, err := c.Do("GRAPH.DELETE", graph)
	return err
}

// GraphSave runs GRAPH.SAVE, cutting a snapshot on a durable server.
func (c *Client) GraphSave() error {
	_, err := c.Do("GRAPH.SAVE")
	return err
}

// GraphList runs GRAPH.LIST.
func (c *Client) GraphList() ([]string, error) {
	v, err := c.Do("GRAPH.LIST")
	if err != nil {
		return nil, err
	}
	var out []string
	for _, l := range v.Array {
		out = append(out, l.Str)
	}
	return out, nil
}
