// Command datagen materializes the synthetic analogs of the paper's
// evaluation graphs (Table 1) into edge-list files.
//
// Usage:
//
//	datagen -name core -scale 1 -out core.txt
//	datagen -all -scale 0.05 -dir ./data
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mscfpq/internal/dataset"
	"mscfpq/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		name  = fs.String("name", "", "graph name (see -list)")
		scale = fs.Float64("scale", 1, "size multiplier")
		out   = fs.String("out", "", "output file (default <name>.txt)")
		all   = fs.Bool("all", false, "generate every graph")
		dir   = fs.String("dir", ".", "output directory for -all")
		list  = fs.Bool("list", false, "list available graphs and sizes")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "available graphs (published sizes):")
		for _, s := range dataset.Registry() {
			fmt.Fprintf(stdout, "  %-14s %9d vertices  subClassOf=%d type=%d broaderTransitive=%d other=%d\n",
				s.Name, s.Vertices, s.SubClassOf, s.TypeEdges, s.BroaderEdges, s.OtherEdges)
		}
		return nil
	}
	if *all {
		for _, s := range dataset.Registry() {
			if err := generate(stdout, s, *scale, filepath.Join(*dir, s.Name+".txt")); err != nil {
				return err
			}
		}
		return nil
	}
	if *name == "" {
		fs.Usage()
		return fmt.Errorf("need -name, -all or -list")
	}
	s, err := dataset.ByName(*name)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = *name + ".txt"
	}
	return generate(stdout, s, *scale, path)
}

func generate(stdout io.Writer, s dataset.Spec, scale float64, path string) error {
	s = dataset.Scaled(s, scale)
	g := dataset.Generate(s)
	if err := graph.SaveFile(path, g); err != nil {
		return err
	}
	st := g.Stats()
	fmt.Fprintf(stdout, "%s: %d vertices, %d edges -> %s\n", s.Name, st.Vertices, st.Edges, path)
	return nil
}
