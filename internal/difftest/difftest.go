// Package difftest is the differential correctness harness of the
// module (see TESTING.md): it drives every CFPQ evaluator and every RPQ
// engine against the independent reference oracles of internal/oracle
// on instances produced by internal/gen, and checks the metamorphic
// invariants the paper's algorithms promise. The checks are plain
// functions returning errors so the same harness serves the standing
// test suite, the slow-mode sweep (-tags=slow), and ad-hoc repro runs.
package difftest

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"mscfpq/internal/batch"
	"mscfpq/internal/cfpq"
	"mscfpq/internal/exec"
	"mscfpq/internal/gen"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
	"mscfpq/internal/oracle"
	"mscfpq/internal/rpq"
	"mscfpq/internal/store"
)

// srcVector materializes a source id list as a vector over g's vertices.
func srcVector(g *graph.Graph, sources []int) *matrix.Vector {
	v := matrix.NewVector(g.NumVertices())
	for _, s := range sources {
		if s >= 0 && s < g.NumVertices() {
			v.Set(s)
		}
	}
	return v
}

func pairsEqual(got, want [][2]int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func pairsErr(engine string, got, want [][2]int) error {
	return fmt.Errorf("%s: got %v, want %v", engine, got, want)
}

// CheckCFPQ runs all six CFPQ evaluators on the instance and compares
// them against the oracle: the all-pairs engines on every nonterminal
// relation, the multiple-source engines on the source-restricted start
// relation (the paper's central claim).
func CheckCFPQ(inst gen.Instance) error {
	ref := oracle.CFPQ(inst.G, inst.W)
	src := srcVector(inst.G, inst.Sources)
	wantMS := ref.StartPairsFrom(inst.Sources)

	// All-pairs evaluators, checked relation by relation.
	allPairs := []struct {
		name string
		run  func() (*cfpq.Result, error)
	}{
		{"AllPairs", func() (*cfpq.Result, error) { return cfpq.AllPairs(inst.G, inst.W) }},
		{"AllPairsSemiNaive", func() (*cfpq.Result, error) { return cfpq.AllPairsSemiNaive(inst.G, inst.W) }},
		{"Worklist", func() (*cfpq.Result, error) { return cfpq.Worklist(inst.G, inst.W) }},
		{"SinglePath", func() (*cfpq.Result, error) {
			r, err := cfpq.SinglePath(inst.G, inst.W)
			if err != nil {
				return nil, err
			}
			return r.Result, nil
		}},
	}
	for _, e := range allPairs {
		r, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %v", e.name, err)
		}
		for a := 0; a < inst.W.NumNonterms(); a++ {
			if got, want := r.T[a].Pairs(), ref.Pairs(a); !pairsEqual(got, want) {
				return pairsErr(fmt.Sprintf("%s relation %s", e.name, inst.W.Nonterms[a]), got, want)
			}
		}
	}

	// Multiple-source evaluators, checked on the restricted answer.
	multiSource := []struct {
		name string
		run  func() (*matrix.Bool, error)
	}{
		{"MultiSource", func() (*matrix.Bool, error) {
			r, err := cfpq.MultiSource(inst.G, inst.W, src)
			if err != nil {
				return nil, err
			}
			return r.Answer(), nil
		}},
		{"MultiSourceSinglePath", func() (*matrix.Bool, error) {
			r, err := cfpq.MultiSourceSinglePath(inst.G, inst.W, src)
			if err != nil {
				return nil, err
			}
			return r.Answer(), nil
		}},
		{"Index.MultiSourceSmart", func() (*matrix.Bool, error) {
			idx, err := cfpq.NewIndex(inst.G, inst.W)
			if err != nil {
				return nil, err
			}
			r, err := idx.MultiSourceSmart(src)
			if err != nil {
				return nil, err
			}
			return r.Answer(), nil
		}},
		{"WorklistMultiSource", func() (*matrix.Bool, error) {
			return cfpq.WorklistMultiSource(inst.G, inst.W, src)
		}},
	}
	for _, e := range multiSource {
		m, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %v", e.name, err)
		}
		if got := m.Pairs(); !pairsEqual(got, wantMS) {
			return pairsErr(e.name, got, wantMS)
		}
	}
	return nil
}

// evalAlgorithms is every concrete algorithm option of the unified
// Eval entry point.
var evalAlgorithms = []exec.Algorithm{
	exec.AlgMatrix, exec.AlgSemiNaive, exec.AlgWorklist,
	exec.AlgMultiSource, exec.AlgSinglePath, exec.AlgMSSinglePath,
}

// CheckEval drives the unified Eval entry point with every algorithm
// option against the oracle: all six must return the identical
// source-restricted answer, the all-pairs-capable ones must also agree
// on the unrestricted query, AlgAuto must resolve by query shape, and
// observability must be inert — attaching a trace and disabling the
// metrics registry never changes answers.
func CheckEval(inst gen.Instance) error {
	ref := oracle.CFPQ(inst.G, inst.W)
	src := srcVector(inst.G, inst.Sources)
	wantMS := ref.StartPairsFrom(inst.Sources)
	wantAll := ref.Pairs(inst.W.Start)

	for _, alg := range evalAlgorithms {
		res, err := cfpq.Eval(inst.G, inst.W, src, cfpq.WithAlgorithm(alg))
		if err != nil {
			return fmt.Errorf("Eval %v: %v", alg, err)
		}
		if got := res.Pairs(); !pairsEqual(got, wantMS) {
			return pairsErr(fmt.Sprintf("Eval %v", alg), got, wantMS)
		}
		if st := res.Stats(); st.Algorithm != alg || st.Answers != len(res.Pairs()) {
			return fmt.Errorf("Eval %v: inconsistent stats %+v", alg, st)
		}
		// Observability must never change answers: rerun with a trace
		// attached and the metrics registry disabled.
		obs.SetEnabled(false)
		traced, err := cfpq.Eval(inst.G, inst.W, src,
			cfpq.WithAlgorithm(alg), cfpq.WithTrace(obs.NewTrace(obs.SpanDiffTest)))
		obs.SetEnabled(true)
		if err != nil {
			return fmt.Errorf("Eval %v traced: %v", alg, err)
		}
		if got := traced.Pairs(); !pairsEqual(got, wantMS) {
			return pairsErr(fmt.Sprintf("Eval %v traced/metrics-off", alg), got, wantMS)
		}
	}

	// The all-pairs-capable algorithms also answer the unrestricted query.
	for _, alg := range []exec.Algorithm{
		exec.AlgMatrix, exec.AlgSemiNaive, exec.AlgWorklist, exec.AlgSinglePath} {
		res, err := cfpq.Eval(inst.G, inst.W, nil, cfpq.WithAlgorithm(alg))
		if err != nil {
			return fmt.Errorf("Eval %v (all pairs): %v", alg, err)
		}
		if got := res.Pairs(); !pairsEqual(got, wantAll) {
			return pairsErr(fmt.Sprintf("Eval %v (all pairs)", alg), got, wantAll)
		}
	}

	// AlgAuto resolves by query shape: multiple-source with a source
	// set, all-pairs without.
	auto, err := cfpq.Eval(inst.G, inst.W, src)
	if err != nil {
		return fmt.Errorf("Eval auto (src): %v", err)
	}
	if alg := auto.Stats().Algorithm; alg != exec.AlgMultiSource {
		return fmt.Errorf("Eval auto with sources resolved to %v", alg)
	}
	if got := auto.Pairs(); !pairsEqual(got, wantMS) {
		return pairsErr("Eval auto (src)", got, wantMS)
	}
	auto, err = cfpq.Eval(inst.G, inst.W, nil)
	if err != nil {
		return fmt.Errorf("Eval auto (all pairs): %v", err)
	}
	if alg := auto.Stats().Algorithm; alg != exec.AlgMatrix {
		return fmt.Errorf("Eval auto without sources resolved to %v", alg)
	}
	if got := auto.Pairs(); !pairsEqual(got, wantAll) {
		return pairsErr("Eval auto (all pairs)", got, wantAll)
	}

	// The single-path options expose witnesses through the unified
	// interface, and the witnesses replay to real accepted paths.
	sp, err := cfpq.Eval(inst.G, inst.W, src, cfpq.WithAlgorithm(exec.AlgMSSinglePath))
	if err != nil {
		return fmt.Errorf("Eval mssinglepath: %v", err)
	}
	pr, ok := sp.(cfpq.PathEvalResult)
	if !ok {
		return fmt.Errorf("Eval mssinglepath result does not implement PathEvalResult")
	}
	if err := replayPairs(inst, pr.Pairs(), pr.Path); err != nil {
		return fmt.Errorf("Eval mssinglepath: %v", err)
	}
	return nil
}

// CheckEvalCached reruns every algorithm through the version-keyed
// query cache (internal/store) and asserts the cached path is
// answer-transparent: the cold fill (miss), the warm hit, and the
// post-invalidation recompute after a simulated version bump must all
// be byte-identical to the uncached Eval — and a permuted, duplicated
// source list must canonicalize onto the same warm entry.
func CheckEvalCached(inst gen.Instance) error {
	cache := store.NewCache(1<<24, 0)
	const storeID, version = 1, 7
	src := srcVector(inst.G, inst.Sources)

	for _, alg := range evalAlgorithms {
		res, err := cfpq.Eval(inst.G, inst.W, src, cfpq.WithAlgorithm(alg))
		if err != nil {
			return fmt.Errorf("Eval %v: %v", alg, err)
		}
		want := res.Pairs()

		cold, hit, err := store.CachedEval(cache, storeID, version, inst.G, inst.W, src, cfpq.WithAlgorithm(alg))
		if err != nil {
			return fmt.Errorf("CachedEval %v cold: %v", alg, err)
		}
		if hit {
			return fmt.Errorf("CachedEval %v: cold run hit the cache", alg)
		}
		if !pairsEqual(cold, want) {
			return pairsErr(fmt.Sprintf("CachedEval %v cold", alg), cold, want)
		}
		warm, hit, err := store.CachedEval(cache, storeID, version, inst.G, inst.W, src, cfpq.WithAlgorithm(alg))
		if err != nil {
			return fmt.Errorf("CachedEval %v warm: %v", alg, err)
		}
		if !hit {
			return fmt.Errorf("CachedEval %v: warm run missed the cache", alg)
		}
		if !pairsEqual(warm, want) {
			return pairsErr(fmt.Sprintf("CachedEval %v warm", alg), warm, want)
		}

		// A permuted, duplicated source list canonicalizes to the same
		// key and must hit the warm entry.
		ids := src.Ints()
		if len(ids) > 1 {
			scrambled := append([]int{ids[len(ids)-1]}, ids...)
			perm, hit, err := store.CachedEval(cache, storeID, version, inst.G, inst.W,
				matrix.NewVectorFromIndices(inst.G.NumVertices(), scrambled), cfpq.WithAlgorithm(alg))
			if err != nil {
				return fmt.Errorf("CachedEval %v permuted: %v", alg, err)
			}
			if !hit {
				return fmt.Errorf("CachedEval %v: permuted source list missed the warm entry", alg)
			}
			if !pairsEqual(perm, want) {
				return pairsErr(fmt.Sprintf("CachedEval %v permuted", alg), perm, want)
			}
		}
	}

	// Simulate the write path's version bump: grow a COW clone by one
	// edge, re-derive the uncached answer for the NEW graph, and check
	// the bumped version misses the old entries and matches exactly.
	g2 := inst.G.CowClone()
	n := g2.NumVertices()
	if n > 0 {
		// Pick a storable label: inverse terminals ("x_r") cannot be
		// added as edges directly.
		label := "a"
		for _, term := range inst.W.Terms {
			if !strings.HasSuffix(term, "_r") {
				label = term
				break
			}
		}
		g2.AddEdge(0, label, n-1)
	}
	for _, alg := range evalAlgorithms {
		res, err := cfpq.Eval(g2, inst.W, src, cfpq.WithAlgorithm(alg))
		if err != nil {
			return fmt.Errorf("Eval %v post-bump: %v", alg, err)
		}
		want := res.Pairs()
		post, hit, err := store.CachedEval(cache, storeID, version+1, g2, inst.W, src, cfpq.WithAlgorithm(alg))
		if err != nil {
			return fmt.Errorf("CachedEval %v post-bump: %v", alg, err)
		}
		if hit {
			return fmt.Errorf("CachedEval %v: version bump served a stale entry", alg)
		}
		if !pairsEqual(post, want) {
			return pairsErr(fmt.Sprintf("CachedEval %v post-bump", alg), post, want)
		}
	}
	return nil
}

// CheckRPQ runs the four RPQ engines for the query and compares each
// against the BFS-product oracle.
func CheckRPQ(g *graph.Graph, query string, sources []int) error {
	nfa, err := rpq.CompileRegex(query)
	if err != nil {
		return fmt.Errorf("compile %q: %v", query, err)
	}
	want := oracle.RPQ(g, nfa, sources)
	src := srcVector(g, sources)
	for _, engine := range []exec.Engine{exec.EngineNFA, exec.EngineDFA, exec.EngineCFPQ, exec.EngineTensor} {
		m, err := rpq.Eval(g, query, src, exec.WithEngine(engine))
		if err != nil {
			return fmt.Errorf("engine %v on %q: %v", engine, query, err)
		}
		if got := m.Pairs(); !pairsEqual(got, want) {
			return pairsErr(fmt.Sprintf("engine %v on %q", engine, query), got, want)
		}
	}
	return nil
}

// CheckChunkUnion asserts the paper's key invariant: splitting the
// source set into chunks and unioning the per-chunk multiple-source
// answers yields exactly the source-restricted all-pairs relation.
func CheckChunkUnion(inst gen.Instance, chunks int) error {
	if chunks < 1 {
		chunks = 1
	}
	n := inst.G.NumVertices()
	all, err := cfpq.AllPairs(inst.G, inst.W)
	if err != nil {
		return fmt.Errorf("AllPairs: %v", err)
	}
	src := srcVector(inst.G, inst.Sources)
	want := matrix.ExtractRows(all.Start(), src)

	union := matrix.NewBool(n, n)
	ids := src.Ints()
	for c := 0; c < chunks; c++ {
		chunk := matrix.NewVector(n)
		for i, v := range ids {
			if i%chunks == c {
				chunk.Set(v)
			}
		}
		r, err := cfpq.MultiSource(inst.G, inst.W, chunk)
		if err != nil {
			return fmt.Errorf("MultiSource chunk %d: %v", c, err)
		}
		matrix.AddInPlace(union, r.Answer())
	}
	if !union.Equal(want) {
		return pairsErr(fmt.Sprintf("chunk union (%d chunks)", chunks), union.Pairs(), want.Pairs())
	}
	return nil
}

// CheckIndexReuse asserts that the smart index (Algorithm 3) is
// order-independent and idempotent: processing source chunks in any
// order yields the same cache and per-query answers that match the
// oracle, and re-submitting an already-processed chunk changes nothing.
func CheckIndexReuse(inst gen.Instance, chunks int) error {
	if chunks < 1 {
		chunks = 1
	}
	ref := oracle.CFPQ(inst.G, inst.W)
	n := inst.G.NumVertices()
	ids := srcVector(inst.G, inst.Sources).Ints()
	chunkVec := func(c int) *matrix.Vector {
		v := matrix.NewVector(n)
		for i, id := range ids {
			if i%chunks == c {
				v.Set(id)
			}
		}
		return v
	}

	runOrder := func(order []int) (*cfpq.Index, error) {
		idx, err := cfpq.NewIndex(inst.G, inst.W)
		if err != nil {
			return nil, err
		}
		for _, c := range order {
			v := chunkVec(c)
			r, err := idx.MultiSourceSmart(v)
			if err != nil {
				return nil, fmt.Errorf("chunk %d: %v", c, err)
			}
			if got, want := r.Answer().Pairs(), ref.StartPairsFrom(v.Ints()); !pairsEqual(got, want) {
				return nil, pairsErr(fmt.Sprintf("index chunk %d", c), got, want)
			}
		}
		return idx, nil
	}

	fwd := make([]int, chunks)
	rev := make([]int, chunks)
	for c := 0; c < chunks; c++ {
		fwd[c] = c
		rev[c] = chunks - 1 - c
	}
	idx1, err := runOrder(fwd)
	if err != nil {
		return fmt.Errorf("forward order: %v", err)
	}
	idx2, err := runOrder(rev)
	if err != nil {
		return fmt.Errorf("reverse order: %v", err)
	}
	start := inst.W.Start
	if !idx1.ProcessedSources(start).Equal(idx2.ProcessedSources(start)) {
		return fmt.Errorf("processed sources differ across orders: %v vs %v",
			idx1.ProcessedSources(start).Ints(), idx2.ProcessedSources(start).Ints())
	}
	src := srcVector(inst.G, inst.Sources)
	r1 := matrix.ExtractRows(idx1.Relation(start), src)
	r2 := matrix.ExtractRows(idx2.Relation(start), src)
	if !r1.Equal(r2) {
		return pairsErr("index cache across orders", r1.Pairs(), r2.Pairs())
	}

	// Idempotence: replaying the full source set changes nothing.
	before := idx1.Relation(start).Clone()
	r, err := idx1.MultiSourceSmart(src)
	if err != nil {
		return fmt.Errorf("replay: %v", err)
	}
	if got, want := r.Answer().Pairs(), ref.StartPairsFrom(inst.Sources); !pairsEqual(got, want) {
		return pairsErr("index replay answer", got, want)
	}
	if !idx1.Relation(start).Equal(before) {
		return errors.New("replaying processed sources mutated the cached relation")
	}
	return nil
}

// maxReplayPairs caps how many witness paths one instance replays.
const maxReplayPairs = 64

// CheckPathReplay asserts single-path semantics: every answer pair of
// the single-path evaluators expands into a step sequence that is a
// real path of the graph (each step an existing edge or vertex label,
// steps contiguous from source to destination) whose label word is
// accepted by the query grammar — i.e. extracted paths replay to valid
// derivations.
func CheckPathReplay(inst gen.Instance) error {
	sp, err := cfpq.SinglePath(inst.G, inst.W)
	if err != nil {
		return fmt.Errorf("SinglePath: %v", err)
	}
	if err := replayPairs(inst, sp.Pairs(), sp.Path); err != nil {
		return fmt.Errorf("SinglePath: %v", err)
	}
	src := srcVector(inst.G, inst.Sources)
	msp, err := cfpq.MultiSourceSinglePath(inst.G, inst.W, src)
	if err != nil {
		return fmt.Errorf("MultiSourceSinglePath: %v", err)
	}
	if err := replayPairs(inst, msp.Answer().Pairs(), msp.Path); err != nil {
		return fmt.Errorf("MultiSourceSinglePath: %v", err)
	}
	return nil
}

func replayPairs(inst gen.Instance, pairs [][2]int, path func(src, dst int) ([]cfpq.PathStep, error)) error {
	for i, p := range pairs {
		if i >= maxReplayPairs {
			break
		}
		steps, err := path(p[0], p[1])
		if err != nil {
			return fmt.Errorf("pair %v: %v", p, err)
		}
		if err := replay(inst.G, p[0], p[1], steps); err != nil {
			return fmt.Errorf("pair %v: %v", p, err)
		}
		if word := cfpq.Word(steps); !inst.W.Accepts(word) {
			return fmt.Errorf("pair %v: extracted word %v not accepted by the grammar", p, word)
		}
	}
	return nil
}

// replay checks that steps form a contiguous src..dst walk over edges
// and vertex labels that actually exist in g.
func replay(g *graph.Graph, src, dst int, steps []cfpq.PathStep) error {
	at := src
	for _, s := range steps {
		if s.Src != at {
			return fmt.Errorf("step %+v starts at %d, expected %d", s, s.Src, at)
		}
		if s.VertexLabel {
			if s.Src != s.Dst {
				return fmt.Errorf("vertex-label step %+v moves", s)
			}
			if !g.HasVertexLabel(s.Src, s.Label) {
				return fmt.Errorf("step %+v: vertex %d lacks label %q", s, s.Src, s.Label)
			}
		} else if !g.HasEdge(s.Src, s.Label, s.Dst) {
			return fmt.Errorf("step %+v: edge missing from graph", s)
		}
		at = s.Dst
	}
	if at != dst {
		return fmt.Errorf("path ends at %d, expected %d", at, dst)
	}
	return nil
}

// CheckGoverned asserts abort soundness: a budgeted or cancelled query
// either fails with the governance error or returns the exact answer —
// never a silently wrong partial result. It also verifies that an
// aborted index query rolls back, leaving the cache able to answer
// correctly afterwards.
func CheckGoverned(inst gen.Instance, budget int64) error {
	ref := oracle.CFPQ(inst.G, inst.W)
	src := srcVector(inst.G, inst.Sources)
	wantMS := ref.StartPairsFrom(inst.Sources)

	allowed := func(err error) bool {
		return errors.Is(err, exec.ErrBudget) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded)
	}

	runs := []struct {
		name string
		run  func(opts ...cfpq.Option) (*matrix.Bool, error)
	}{
		{"MultiSource", func(opts ...cfpq.Option) (*matrix.Bool, error) {
			r, err := cfpq.MultiSource(inst.G, inst.W, src, opts...)
			if err != nil {
				return nil, err
			}
			return r.Answer(), nil
		}},
		{"MultiSourceSinglePath", func(opts ...cfpq.Option) (*matrix.Bool, error) {
			r, err := cfpq.MultiSourceSinglePath(inst.G, inst.W, src, opts...)
			if err != nil {
				return nil, err
			}
			return r.Answer(), nil
		}},
		{"AllPairs", func(opts ...cfpq.Option) (*matrix.Bool, error) {
			r, err := cfpq.AllPairs(inst.G, inst.W, opts...)
			if err != nil {
				return nil, err
			}
			return matrix.ExtractRows(r.Start(), src), nil
		}},
	}
	for _, e := range runs {
		m, err := e.run(cfpq.WithBudget(budget))
		switch {
		case err != nil && !allowed(err):
			return fmt.Errorf("%s with budget %d: unexpected error %v", e.name, budget, err)
		case err == nil:
			if got := m.Pairs(); !pairsEqual(got, wantMS) {
				return pairsErr(fmt.Sprintf("%s within budget %d", e.name, budget), got, wantMS)
			}
		}
		// A pre-cancelled context must abort or still answer exactly.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		m, err = e.run(cfpq.WithContext(ctx))
		switch {
		case err != nil && !allowed(err):
			return fmt.Errorf("%s with cancelled context: unexpected error %v", e.name, err)
		case err == nil:
			if got := m.Pairs(); !pairsEqual(got, wantMS) {
				return pairsErr(e.name+" with cancelled context", got, wantMS)
			}
		}
	}

	// Index rollback: an aborted smart query must leave the cache sound.
	idx, err := cfpq.NewIndex(inst.G, inst.W)
	if err != nil {
		return err
	}
	if _, err := idx.MultiSourceSmart(src, cfpq.WithBudget(budget)); err != nil && !allowed(err) {
		return fmt.Errorf("index with budget %d: unexpected error %v", budget, err)
	}
	r, err := idx.MultiSourceSmart(src)
	if err != nil {
		return fmt.Errorf("index after abort: %v", err)
	}
	if got := r.Answer().Pairs(); !pairsEqual(got, wantMS) {
		return pairsErr("index after aborted query", got, wantMS)
	}
	return nil
}

// batchMembers derives the member source sets a batch check coalesces:
// the instance's own set, a strict subset, an exact duplicate, an
// overlapping shifted set, and an empty set — the shapes the scatter
// step must keep byte-identical to solo runs.
func batchMembers(inst gen.Instance) []*matrix.Vector {
	n := inst.G.NumVertices()
	full := srcVector(inst.G, inst.Sources)
	ids := full.Ints()
	sub := matrix.NewVector(n)
	shift := matrix.NewVector(n)
	for i, v := range ids {
		if i%2 == 0 {
			sub.Set(v)
		}
		if n > 0 {
			shift.Set((v + 1) % n)
		}
	}
	if len(ids) > 0 {
		shift.Set(ids[0]) // guarantee overlap with the full set
	}
	dup := matrix.NewVectorFromIndices(n, ids)
	return []*matrix.Vector{full, sub, dup, shift, matrix.NewVector(n)}
}

// CheckBatch runs every algorithm through the batch coalescer's forced
// group and compares each member's scattered answer against its own
// solo cfpq.Eval: byte equality, for overlapping, duplicate and empty
// member source sets alike. It also asserts the shared fixpoint seeded
// the version-keyed cache with exactly the per-member and per-source
// answers it scattered.
func CheckBatch(inst gen.Instance) error {
	members := batchMembers(inst)
	cache := store.NewCache(1<<24, 0)
	c := batch.NewCoalescer(cache)
	const storeID, version = 3, 11

	for _, alg := range evalAlgorithms {
		reqs := make([]batch.Request, len(members))
		want := make([][][2]int, len(members))
		for i, m := range members {
			res, err := cfpq.Eval(inst.G, inst.W, m, cfpq.WithAlgorithm(alg))
			if err != nil {
				return fmt.Errorf("solo Eval %v member %d: %v", alg, i, err)
			}
			want[i] = res.Pairs()
			reqs[i] = batch.Request{
				StoreID: storeID, Version: version,
				Graph: inst.G, WCNF: inst.W, Sources: m, Algorithm: alg,
			}
		}
		got, stats, err := c.RunBatch(context.Background(), reqs)
		if err != nil {
			return fmt.Errorf("RunBatch %v: %v", alg, err)
		}
		for i := range members {
			if !pairsEqual(got[i], want[i]) {
				return pairsErr(fmt.Sprintf("RunBatch %v member %d", alg, i), got[i], want[i])
			}
			if !stats[i].Batched || stats[i].Members != len(members) {
				return fmt.Errorf("RunBatch %v member %d: stats %+v, want batched group of %d",
					alg, i, stats[i], len(members))
			}
		}
		// The flush seeds the cache under each member's own eval key …
		for i, m := range members {
			k := store.EvalKey(storeID, version, inst.W, m, alg)
			v, ok := cache.Get(k)
			if !ok {
				return fmt.Errorf("RunBatch %v member %d: cache not seeded", alg, i)
			}
			if !pairsEqual(v.([][2]int), want[i]) {
				return pairsErr(fmt.Sprintf("RunBatch %v member %d cache seed", alg, i), v.([][2]int), want[i])
			}
		}
		// … and under per-source singleton keys: each must hold exactly
		// that source's row slice of the full member's answer.
		for _, s := range members[0].Ints() {
			var row [][2]int
			for _, p := range want[0] {
				if p[0] == s {
					row = append(row, p)
				}
			}
			k := store.EvalKey(storeID, version, inst.W,
				matrix.NewVectorFromIndices(inst.G.NumVertices(), []int{s}), alg)
			v, ok := cache.Get(k)
			if !ok {
				return fmt.Errorf("RunBatch %v: singleton source %d not seeded", alg, s)
			}
			if !pairsEqual(v.([][2]int), row) {
				return pairsErr(fmt.Sprintf("RunBatch %v singleton source %d", alg, s), v.([][2]int), row)
			}
		}
	}
	return nil
}

// CheckBatchVersioned stresses the coalescer's version pinning: readers
// pin MVCC snapshots and submit adaptively-coalesced evaluations while
// a writer keeps publishing new versions. Because the caller pins the
// snapshot, every answer must be byte-identical to a solo evaluation of
// that exact pinned graph — any cross-version mixing inside a batch
// (the writer only adds edges, so mixing strictly grows answers) breaks
// the equality.
func CheckBatchVersioned(inst gen.Instance) error {
	st := store.New(inst.G)
	c := batch.NewCoalescer(nil)
	c.Configure(200*time.Microsecond, 0)

	// Pick a storable label the grammar consumes, so writes change
	// answers (inverse "x_r" terminals cannot be added as edges).
	label := "a"
	for _, term := range inst.W.Terms {
		if !strings.HasSuffix(term, "_r") {
			label = term
			break
		}
	}
	n := inst.G.NumVertices()
	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = st.Update(func(tx *store.Tx) error {
				tx.Graph().AddEdge(i%n, label, (i*7+1)%n)
				return nil
			})
			time.Sleep(200 * time.Microsecond)
		}
	}()
	defer func() { close(stop); writerWG.Wait() }()

	var readerWG sync.WaitGroup
	errs := make(chan error, 16)
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			for iter := 0; iter < 8; iter++ {
				src := matrix.NewVectorFromIndices(n, []int{(r + iter) % n, r % n})
				snap := st.Pin()
				req := batch.Request{
					StoreID: snap.StoreID(), Version: snap.Version(),
					Graph: snap.Graph(), WCNF: inst.W, Sources: src,
					Algorithm: exec.AlgMultiSource,
				}
				got, _, err := c.Eval(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d: %v", r, iter, err)
					return
				}
				res, err := cfpq.Eval(snap.Graph(), inst.W, src, cfpq.WithAlgorithm(exec.AlgMultiSource))
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d solo: %v", r, iter, err)
					return
				}
				if want := res.Pairs(); !pairsEqual(got, want) {
					errs <- pairsErr(fmt.Sprintf("reader %d iter %d version %d", r, iter, snap.Version()), got, want)
					return
				}
			}
		}(r)
	}
	readerWG.Wait()
	close(errs)
	return <-errs
}

// WriteRepro dumps the instance to a fresh temp directory (graph,
// grammar, sources, seed) so a failure can be replayed outside the
// harness; it returns the directory path.
func WriteRepro(inst gen.Instance) (string, error) {
	dir, err := os.MkdirTemp("", "mscfpq-difftest-")
	if err != nil {
		return "", err
	}
	if err := graph.SaveFile(filepath.Join(dir, "graph.txt"), inst.G); err != nil {
		return dir, err
	}
	if err := os.WriteFile(filepath.Join(dir, "grammar.txt"), []byte(inst.Grammar.String()+"\n"), 0o644); err != nil {
		return dir, err
	}
	srcLine := strings.Trim(strings.Join(strings.Fields(fmt.Sprint(inst.Sources)), " "), "[]")
	meta := fmt.Sprintf("seed %d\nkind %v\nsources %s\n", inst.Seed, inst.Kind, srcLine)
	if err := os.WriteFile(filepath.Join(dir, "instance.txt"), []byte(meta), 0o644); err != nil {
		return dir, err
	}
	return dir, nil
}

// Minimize greedily shrinks a failing instance while the fails
// predicate keeps reporting failure: it tries dropping edges, vertex
// labels, and sources one at a time until a fixpoint. The grammar is
// left untouched. Intended for failure reporting only — it reruns the
// predicate many times.
func Minimize(inst gen.Instance, fails func(gen.Instance) bool) gen.Instance {
	type edge struct {
		src, dst int
		label    string
	}
	type vlabel struct {
		v     int
		label string
	}
	edges := []edge{}
	inst.G.Edges(func(src int, label string, dst int) bool {
		edges = append(edges, edge{src, dst, label})
		return true
	})
	var vlabels []vlabel
	for _, l := range inst.G.VertexLabels() {
		for _, v := range inst.G.VertexSet(l).Ints() {
			vlabels = append(vlabels, vlabel{v, l})
		}
	}
	sources := append([]int(nil), inst.Sources...)
	n := inst.G.NumVertices()

	build := func(es []edge, vls []vlabel, srcs []int) gen.Instance {
		g := graph.New(n)
		for _, e := range es {
			g.AddEdge(e.src, e.label, e.dst)
		}
		for _, vl := range vls {
			g.AddVertexLabel(vl.v, vl.label)
		}
		out := inst
		out.G = g
		out.Sources = srcs
		return out
	}

	for again := true; again; {
		again = false
		for i := 0; i < len(edges); i++ {
			trial := append(append([]edge{}, edges[:i]...), edges[i+1:]...)
			if fails(build(trial, vlabels, sources)) {
				edges, again = trial, true
				i--
			}
		}
		for i := 0; i < len(vlabels); i++ {
			trial := append(append([]vlabel{}, vlabels[:i]...), vlabels[i+1:]...)
			if fails(build(edges, trial, sources)) {
				vlabels, again = trial, true
				i--
			}
		}
		for i := 0; i < len(sources); i++ {
			trial := append(append([]int{}, sources[:i]...), sources[i+1:]...)
			if fails(build(edges, vlabels, trial)) {
				sources, again = trial, true
				i--
			}
		}
	}
	return build(edges, vlabels, sources)
}
