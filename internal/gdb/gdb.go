// Package gdb is the in-memory graph database engine — the slice of
// RedisGraph the paper extends: matrix-backed graph storage, the Cypher
// front end (internal/cypher), execution-plan building and evaluation
// (internal/plan) with full path-pattern support, and graph management.
// The RESP server in internal/resp exposes it over the wire.
package gdb

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mscfpq/internal/batch"
	"mscfpq/internal/cypher"
	"mscfpq/internal/exec"
	"mscfpq/internal/graph"
	"mscfpq/internal/obs"
	"mscfpq/internal/plan"
	"mscfpq/internal/store"
)

// DB is a named collection of graphs, safe for concurrent use. Queries
// evaluate lock-free against pinned snapshots (internal/store); writes
// are serialized per graph and by the durability commit path.
type DB struct {
	mu     sync.RWMutex
	graphs map[string]*GraphStore // guarded by mu

	polMu  sync.RWMutex
	policy Policy // guarded by polMu

	// cache is the version-keyed query-result cache, shared by all
	// graphs of the database; set once by newDB, immutable afterwards
	// (the cache is internally synchronized). Disabled until a policy
	// sets CacheMaxBytes.
	cache *store.Cache

	// slowLog records slow and aborted queries for the SLOWLOG command;
	// set once by New, immutable afterwards (the ring is internally
	// synchronized).
	slowLog *obs.SlowLog

	// batcher coalesces concurrent same-key EvalCFPQ queries into shared
	// fixpoints (DESIGN.md §14); set once by New, immutable afterwards
	// (internally synchronized). Disabled until a policy sets
	// BatchWindow.
	batcher *batch.Coalescer

	// dur is the crash-safety layer, nil for in-memory databases (New);
	// set once by Open before the DB is shared, immutable afterwards.
	dur *durability

	// replicaSrc is the leader address when this database is a read-only
	// replica ("" / nil = leader). Atomic so the hot commit path reads it
	// without a lock; only the replication loop stores it.
	replicaSrc atomic.Pointer[string]
}

// slowLogCapacity bounds the slow-query ring (matches the Redis
// slowlog-max-len default).
const slowLogCapacity = 128

// New returns an empty database.
func New() *DB {
	db := &DB{
		graphs:  map[string]*GraphStore{},
		cache:   store.NewCache(0, 0),
		slowLog: obs.NewSlowLog(slowLogCapacity),
	}
	db.batcher = batch.NewCoalescer(db.cache)
	return db
}

// SlowLog exposes the slow-query ring (never nil).
func (db *DB) SlowLog() *obs.SlowLog { return db.slowLog }

// Cache exposes the query-result cache (never nil; disabled by
// default — SetPolicy with a CacheMaxBytes enables it).
func (db *DB) Cache() *store.Cache { return db.cache }

// GraphStore couples an epoch-versioned graph store (immutable
// snapshots + node properties) with a cache of path-pattern contexts,
// so repeated queries with the same PATH PATTERN declarations share one
// Algorithm 3 index (the paper's motivating scenario for the optimized
// multiple-source algorithm). Queries pin a snapshot and evaluate
// against it without holding any lock; writes publish new versions
// without waiting for readers.
type GraphStore struct {
	st *store.Store

	ctxMu    sync.Mutex
	ctxCache map[string]*cachedCtx // guarded by ctxMu
	ctxHits  int                   // guarded by ctxMu
}

// cachedCtx pairs a prepared path context with the snapshot version
// it was built against.
//
// immutable after publish (enforced by the snapfreeze analyzer): an
// entry placed in ctxCache is read outside ctxMu-free fast paths of
// future refactors; a version bump allocates a fresh entry instead of
// rewriting this one.
type cachedCtx struct {
	ctx     *plan.PathCtx
	version uint64
}

// NewGraphStore wraps an existing graph (no properties) as version 0.
// The graph is adopted by the store: seed it fully before the first
// versioned write, or mutate through queries.
func NewGraphStore(g *graph.Graph) *GraphStore {
	return &GraphStore{
		st:       store.New(g),
		ctxCache: map[string]*cachedCtx{},
	}
}

// Snapshot pins the current version for lock-free evaluation.
func (s *GraphStore) Snapshot() *store.Snapshot { return s.st.Pin() }

// Version returns the current graph version (0 = initial state, +1 per
// committed write).
func (s *GraphStore) Version() uint64 { return s.st.Version() }

// StoreID returns the process-unique identity of the backing store
// (part of every cache key).
func (s *GraphStore) StoreID() uint64 { return s.st.ID() }

// pathCtxFor returns a path-pattern context for the query's
// declarations, evaluated against the pinned snapshot. The cache keeps
// one context per declaration set at the newest version seen: an exact
// version match is reused outright; a context from an OLDER version is
// warm-started into the snapshot's version (the write path only adds
// edges and vertices, so the accumulated index facts stay sound — see
// cfpq.NewIndexWarm); a reader pinned BEHIND the cached version builds
// a private context without disturbing the cache. Queries without
// declarations always get a fresh empty context (cheap).
func (s *GraphStore) pathCtxFor(snap *store.Snapshot, q *cypher.Query) (*plan.PathCtx, error) {
	if len(q.PathPatterns) == 0 {
		return plan.NewPathCtx(snap.Graph(), nil)
	}
	key := plan.CtxKey(q.PathPatterns)
	v := snap.Version()
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	if c, ok := s.ctxCache[key]; ok {
		if c.version == v {
			s.ctxHits++
			return c.ctx, nil
		}
		if c.version < v {
			if ctx, err := c.ctx.WarmSuccessor(snap.Graph()); err == nil {
				s.ctxCache[key] = &cachedCtx{ctx: ctx, version: v}
				return ctx, nil
			}
			// Warm start failed (shouldn't happen along a version
			// lineage); fall through to a cold build.
		} else {
			// The cache moved past this reader's pinned version; serve
			// it a private context and leave the cache at the newer one.
			return plan.NewPathCtx(snap.Graph(), q.PathPatterns)
		}
	}
	ctx, err := plan.NewPathCtx(snap.Graph(), q.PathPatterns)
	if err != nil {
		return nil, err
	}
	s.ctxCache[key] = &cachedCtx{ctx: ctx, version: v}
	return ctx, nil
}

// CtxCacheHits reports how many queries reused a cached path-pattern
// context (and its warmed multiple-source index) at the exact same
// version. Warm starts across versions are not counted.
func (s *GraphStore) CtxCacheHits() int {
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	return s.ctxHits
}

// Graph exposes the current version's graph. Read-only once the store
// is serving queries: direct mutation bypasses versioning (copy-on-write
// keeps older snapshots intact, but cached contexts and query results
// keyed by version would go stale). Mutating it is safe only while
// seeding a store that nothing has queried yet.
func (s *GraphStore) Graph() *graph.Graph { return s.st.Pin().Graph() }

// PropEquals implements plan.PropStore against the current version.
func (s *GraphStore) PropEquals(v int, key string, val cypher.Value) bool {
	return s.st.Pin().PropEquals(v, key, val)
}

// SetProp sets a node property, publishing a new version.
func (s *GraphStore) SetProp(v int, key string, val cypher.Value) {
	_, _ = s.st.Update(func(tx *store.Tx) error {
		tx.SetProp(v, key, val)
		return nil
	})
}

// QueryResult is the outcome of one statement.
type QueryResult struct {
	Columns []string
	Rows    [][]int64
	// Write statistics (CREATE).
	NodesCreated int
	EdgesCreated int
	// Profile holds the rendered execution span tree of a
	// "PROFILE MATCH ..." statement (nil otherwise).
	Profile []string
}

// AddGraph registers a pre-built graph under a name, replacing any
// existing graph with that name.
func (db *DB) AddGraph(name string, g *graph.Graph) *GraphStore {
	db.mu.Lock()
	old := db.graphs[name]
	s := NewGraphStore(g)
	db.graphs[name] = s
	db.mu.Unlock()
	if old != nil {
		db.cache.DropStore(old.StoreID())
	}
	return s
}

// Get returns the named graph store.
func (db *DB) Get(name string) (*GraphStore, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.graphs[name]
	if !ok {
		return nil, fmt.Errorf("gdb: graph %q does not exist", name)
	}
	return s, nil
}

// Delete removes a graph; it reports whether it existed. On a durable
// database the deletion is journaled before it is applied; a non-nil
// error means the journal append failed and the graph was NOT removed.
func (db *DB) Delete(name string) (bool, error) {
	// Fast path: skip journaling deletes of graphs that don't exist.
	// The check is advisory — the authoritative answer comes from the
	// re-check inside the serialized apply below, so two concurrent
	// deletes of the same graph cannot both report success. A delete
	// journaled for a graph that raced away is harmless: replay of the
	// 'D' record is idempotent.
	db.mu.RLock()
	_, ok := db.graphs[name]
	db.mu.RUnlock()
	if !ok {
		return false, nil
	}
	var old *GraphStore
	err := db.commit(journalOp{op: opDelete, name: name}, func() {
		db.mu.Lock()
		old = db.graphs[name]
		delete(db.graphs, name)
		db.mu.Unlock()
	})
	if err != nil {
		return false, err
	}
	if old != nil {
		db.cache.DropStore(old.StoreID())
	}
	return old != nil, nil
}

// List returns the sorted graph names.
func (db *DB) List() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.graphs))
	for n := range db.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query parses and executes a statement against the named graph.
// CREATE statements create the graph on first use; MATCH statements
// require it to exist. The database policy (timeouts, budget) applies;
// use QueryContext to additionally bound the query by a caller context.
func (db *DB) Query(name, src string) (*QueryResult, error) {
	return db.QueryContext(context.Background(), name, src)
}

// Explain parses and plans a MATCH statement, returning the plan text.
func (db *DB) Explain(name, src string) (string, error) {
	q, err := cypher.Parse(src)
	if err != nil {
		return "", err
	}
	if q.Match == nil {
		return "", fmt.Errorf("gdb: EXPLAIN requires a MATCH query")
	}
	s, err := db.Get(name)
	if err != nil {
		return "", err
	}
	snap := s.Snapshot()
	env := plan.NewEnv(snap.Graph(), nil, snap)
	p, err := plan.Build(q, env)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Stats summarizes the named graph: vertices, edges, and per-label
// counts (the GRAPH.STATS command).
func (db *DB) Stats(name string) ([]string, error) {
	s, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	g := s.Snapshot().Graph()
	st := g.Stats()
	out := []string{
		fmt.Sprintf("Vertices: %d", st.Vertices),
		fmt.Sprintf("Edges: %d", st.Edges),
	}
	labels := make([]string, 0, len(st.ByLabel))
	for l := range st.ByLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		out = append(out, fmt.Sprintf("Label %s: %d", l, st.ByLabel[l]))
	}
	for _, l := range g.VertexLabels() {
		out = append(out, fmt.Sprintf("Vertex label %s: %d", l, g.VertexSet(l).NVals()))
	}
	return out, nil
}

// Profile parses, plans and executes a MATCH statement with
// per-operation instrumentation, returning the profile lines.
func (db *DB) Profile(name, src string) ([]string, error) {
	q, err := cypher.Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Match == nil {
		return nil, fmt.Errorf("gdb: PROFILE requires a MATCH query")
	}
	s, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	snap := s.Snapshot()
	env := plan.NewEnv(snap.Graph(), nil, snap)
	p, err := plan.Build(q, env)
	if err != nil {
		return nil, err
	}
	_, entries, err := p.ExecuteProfiled()
	if err != nil {
		return nil, err
	}
	return plan.RenderProfile(entries), nil
}

// runMatch pins the current version and evaluates against it.
func (s *GraphStore) runMatch(q *cypher.Query, run *exec.Run) (*QueryResult, error) {
	return s.runMatchSnap(s.st.Pin(), q, run)
}

// runMatchSnap evaluates a MATCH query against a pinned snapshot. No
// lock is held: concurrent writes publish newer versions without
// affecting this evaluation, and the result is exactly the answer for
// the snapshot's version.
func (s *GraphStore) runMatchSnap(snap *store.Snapshot, q *cypher.Query, run *exec.Run) (*QueryResult, error) {
	planSpan := run.StartSpan(obs.SpanPlan)
	ctx, err := s.pathCtxFor(snap, q)
	if err != nil {
		planSpan.End()
		return nil, err
	}
	env := plan.NewEnv(snap.Graph(), nil, snap)
	p, err := plan.BuildWithCtx(q, env, ctx)
	planSpan.End()
	if err != nil {
		return nil, err
	}
	execSpan := run.StartSpan(obs.SpanExecute)
	rs, err := p.ExecuteWith(exec.WithRun(run))
	execSpan.End()
	if err != nil {
		return nil, err
	}
	return &QueryResult{Columns: rs.Columns, Rows: rs.Rows}, nil
}

func (db *DB) runCreate(name string, q *cypher.Query) (*QueryResult, error) {
	db.mu.Lock()
	s, ok := db.graphs[name]
	if !ok {
		s = NewGraphStore(graph.New(0))
		db.graphs[name] = s
	}
	db.mu.Unlock()

	res := &QueryResult{}
	_, err := s.st.Update(func(tx *store.Tx) error {
		g := tx.Graph()
		bound := map[string]int{}
		newNode := func(n cypher.NodePattern) int {
			if n.Var != "" {
				if v, ok := bound[n.Var]; ok {
					return v
				}
			}
			v := g.NumVertices()
			// Materialize the vertex even when it has no labels.
			if len(n.Labels) == 0 {
				g.AddVertexLabel(v, "_node")
			}
			for _, l := range n.Labels {
				g.AddVertexLabel(v, l)
			}
			for _, p := range n.Props {
				tx.SetProp(v, p.Key, p.Val)
			}
			if n.Var != "" {
				bound[n.Var] = v
			}
			res.NodesCreated++
			return v
		}
		for _, pat := range q.Create.Patterns {
			ids := make([]int, len(pat.Nodes))
			for i, n := range pat.Nodes {
				ids[i] = newNode(n)
			}
			for i, conn := range pat.Connections {
				rel, ok := conn.(cypher.RelPattern)
				if !ok {
					return fmt.Errorf("gdb: CREATE supports only relationship patterns")
				}
				if len(rel.Types) != 1 {
					return fmt.Errorf("gdb: CREATE relationships need exactly one type")
				}
				src, dst := ids[i], ids[i+1]
				if rel.Inverse {
					src, dst = dst, src
				}
				g.AddEdge(src, rel.Types[0], dst)
				res.EdgesCreated++
			}
		}
		return nil
	})
	// The version is published even on error (journal-replay partial
	// state); the statement itself still fails.
	if err != nil {
		return nil, err
	}
	return res, nil
}
