package graph

import (
	"testing"
	"testing/quick"

	"mscfpq/internal/matrix"
)

// Property (testing/quick): HasEdge agrees with the Boolean
// decomposition for arbitrary edge batches, and the inverse matrix is
// always the exact transpose.
func TestEdgeDecompositionQuick(t *testing.T) {
	type edge struct {
		Src, Dst uint8
		Label    bool // two labels: p / q
	}
	f := func(edges []edge) bool {
		g := New(256)
		for _, e := range edges {
			label := "p"
			if e.Label {
				label = "q"
			}
			g.AddEdge(int(e.Src), label, int(e.Dst))
		}
		for _, e := range edges {
			label := "p"
			if e.Label {
				label = "q"
			}
			if !g.HasEdge(int(e.Src), label, int(e.Dst)) {
				return false
			}
			if !g.EdgeMatrix(label).Get(int(e.Src), int(e.Dst)) {
				return false
			}
		}
		for _, label := range []string{"p", "q"} {
			if !g.EdgeMatrix(label + "_r").Equal(matrix.Transpose(g.EdgeMatrix(label))) {
				return false
			}
		}
		// Total entries across labels equals NumEdges.
		total := g.EdgeCount("p") + g.EdgeCount("q")
		return total == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): reachability is monotone — growing the
// source set never shrinks the reachable set.
func TestReachableMonotoneQuick(t *testing.T) {
	type edge struct{ Src, Dst uint8 }
	f := func(edges []edge, seeds []uint8) bool {
		const n = 64
		g := New(n)
		for _, e := range edges {
			g.AddEdge(int(e.Src)%n, "a", int(e.Dst)%n)
		}
		small := matrix.NewVector(n)
		big := matrix.NewVector(n)
		for i, s := range seeds {
			big.Set(int(s) % n)
			if i%2 == 0 {
				small.Set(int(s) % n)
			}
		}
		rSmall := g.Reachable(small, false)
		rBig := g.Reachable(big, false)
		for _, v := range rSmall.Ints() {
			if !rBig.Get(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
