package store

import (
	"fmt"
	"sync"
	"testing"

	"mscfpq/internal/cypher"
	"mscfpq/internal/graph"
)

func seedGraph() *graph.Graph {
	g := graph.New(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 0)
	return g
}

func TestStoreVersionsAndIsolation(t *testing.T) {
	st := New(seedGraph())
	v0 := st.Pin()
	if v0.Version() != 0 {
		t.Fatalf("initial version = %d", v0.Version())
	}

	v1, err := st.Update(func(tx *Tx) error {
		tx.Graph().AddEdge(2, "a", 3)
		tx.SetProp(3, "name", cypher.Value{Str: "three"})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version() != 1 || st.Version() != 1 {
		t.Fatalf("version after update = %d / %d", v1.Version(), st.Version())
	}

	// The pinned old snapshot is untouched: no new edge, no grown
	// vertex set, no property.
	if v0.Graph().HasEdge(2, "a", 3) || v0.Graph().NumVertices() != 3 {
		t.Fatalf("update leaked into pinned snapshot")
	}
	if v0.PropEquals(3, "name", cypher.Value{Str: "three"}) {
		t.Fatalf("property leaked into pinned snapshot")
	}
	if !v1.Graph().HasEdge(2, "a", 3) || !v1.PropEquals(3, "name", cypher.Value{Str: "three"}) {
		t.Fatalf("update missing from new snapshot")
	}

	// Property overwrite COWs the inner map.
	if _, err := st.Update(func(tx *Tx) error {
		tx.SetProp(3, "name", cypher.Value{Str: "iii"})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !v1.PropEquals(3, "name", cypher.Value{Str: "three"}) {
		t.Fatalf("property overwrite leaked into prior snapshot")
	}
	if !st.Pin().PropEquals(3, "name", cypher.Value{Str: "iii"}) {
		t.Fatalf("property overwrite missing from new snapshot")
	}
}

func TestStoreUpdatePublishesPartialStateOnError(t *testing.T) {
	st := New(seedGraph())
	boom := fmt.Errorf("boom")
	snap, err := st.Update(func(tx *Tx) error {
		tx.Graph().AddEdge(0, "c", 1)
		return boom
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	// Journal-replay semantics: the acknowledged partial state is the
	// published state.
	if snap.Version() != 1 || !st.Pin().Graph().HasEdge(0, "c", 1) {
		t.Fatalf("partial state not published")
	}
}

func TestStoreIDsUniqueAcrossIncarnations(t *testing.T) {
	a, b := New(seedGraph()), New(seedGraph())
	if a.ID() == b.ID() {
		t.Fatalf("two store incarnations share id %d", a.ID())
	}
	if a.Pin().StoreID() != a.ID() {
		t.Fatalf("snapshot store id mismatch")
	}
}

// TestStoreConcurrentPinUpdate hammers Pin/Update from many
// goroutines: versions must be monotonic per reader and every pinned
// snapshot internally consistent (edge count == base + version, since
// each update adds exactly one edge). Run under -race this also proves
// the lock-free read path is data-race clean.
func TestStoreConcurrentPinUpdate(t *testing.T) {
	st := New(seedGraph())
	base := st.Pin().Graph().NumEdges()

	const writers, writesPer, readers = 4, 50, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < writesPer; i++ {
				if _, err := st.Update(func(tx *Tx) error {
					v := tx.Graph().NumVertices()
					tx.Graph().AddEdge(v-1, "a", v)
					return nil
				}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var last uint64
			for i := 0; i < 200; i++ {
				snap := st.Pin()
				v := snap.Version()
				if v < last {
					t.Errorf("reader %d: version went backwards %d -> %d", r, last, v)
					return
				}
				last = v
				if got, want := snap.Graph().NumEdges(), base+int(v); got != want {
					t.Errorf("reader %d: version %d has %d edges, want %d (torn read)", r, v, got, want)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if got, want := st.Version(), uint64(writers*writesPer); got != want {
		t.Fatalf("final version = %d, want %d", got, want)
	}
}
