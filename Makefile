# Convenience targets; everything is plain `go` underneath.

GO ?= go

# Packages with internal concurrency (query governor, index locking,
# server drain); `race-quick` covers just these, `race` the whole
# module.
RACE_PKGS = ./internal/gdb ./internal/resp ./internal/cfpq ./internal/exec ./internal/store ./internal/analysis/... ./cmd/mscfpq-lint

.PHONY: check all build vet test race race-quick cover bench bench-quick bench-batch bench-smoke experiments fuzz fuzz-smoke diff-test diff-test-slow chaos chaos-repl lint lint-tools clean

# Default: what CI runs on every change.
check: build vet lint test race diff-test chaos chaos-repl bench-smoke

all: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-quick:
	$(GO) test -race $(RACE_PKGS)

# Differential suite: every CFPQ/RPQ evaluator against the independent
# oracle plus the metamorphic invariants (see TESTING.md). The short
# pass runs under -race; diff-test-slow is the deep seeded sweep.
diff-test:
	$(GO) test -race -count=1 ./internal/difftest ./internal/oracle ./internal/gen

diff-test-slow:
	$(GO) test -tags=slow -count=1 ./internal/difftest

# Chaos suite: fault-injected crash/recovery over every durability
# failpoint, the hostile-client server tests, and the snapshot/cache
# concurrency stress suite (TestStress*: pinned-version reads vs
# concurrent writes checked against the oracle), race-enabled (see
# TESTING.md). The nofault build proves the failpoint framework
# compiles down to no-ops for release builds.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestHostile|TestDispatchPanic|TestBusyShedding|TestShutdownRaces|TestMaxConns|TestIdleTimeout|TestReadBoundedLine|TestStress|TestStoreConcurrentPinUpdate' ./internal/gdb ./internal/resp ./internal/fault ./internal/store
	$(GO) build -tags=nofault ./...
	$(GO) test -tags=nofault -count=1 ./internal/fault

# Replication chaos suite (see TESTING.md and DESIGN.md §13): the
# whole internal/repl package race-enabled — leader/follower pairs
# over real sockets, every repl.* failpoint struck with
# error/torn/panic specs on both sides, kill-restart of either node —
# plus the gdb replication primitives (read-only mode, record
# scanning, mirrored apply/rotate/install, pin-vs-prune) and the
# client-side failover surface (redial, leader hints, routing). The
# nofault build proves the replication failpoints also compile to
# no-ops for release builds.
chaos-repl:
	$(GO) test -race -count=1 ./internal/repl
	$(GO) test -race -count=1 -run 'TestReadOnlyReplica|TestPinSegment|TestScanRecords|TestDecodeFramed|TestReplApply|TestReplRotate|TestReplInstall|TestWatchJournal' ./internal/gdb
	$(GO) test -race -count=1 -run 'TestIsBrokenConn|TestLeaderHint|TestDoRetry|TestRoutingClient|TestServerReadOnly' ./internal/resp
	$(GO) build -tags=nofault ./internal/repl

cover:
	$(GO) test -cover ./...

# One testing.B benchmark per paper table/figure plus kernel benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every evaluation artifact (tables, CSV series, SVG figures).
experiments:
	$(GO) run ./cmd/benchrunner -exp all -csv figures_sweep.csv -svg figures

bench-quick:
	$(GO) run ./cmd/benchrunner -exp all -quick

# Observability overhead smoke (see TESTING.md): the governed-kernel
# and multiple-source workloads with the metrics registry on vs off,
# recorded to BENCH_obs.json. The acceptance gate for the obs layer is
# governed-kernel overhead <= 3%. The cache smoke measures cold-vs-warm
# latency and concurrent-reader throughput into BENCH_cache.json; its
# acceptance gate (warm hit >= 10x faster than cold) fails the run.
# The batch smoke measures query coalescing into BENCH_batch.json; its
# acceptance gates (>= 2x aggregate qps with 8 concurrent same-grammar
# clients, <= 1ms added lone-client p50) fail the run.
bench-smoke:
	$(GO) run ./cmd/benchrunner -exp obs -quick -json BENCH_obs.json
	$(GO) run ./cmd/benchrunner -exp cache -quick -json BENCH_cache.json
	$(GO) run ./cmd/benchrunner -exp batch -quick -json BENCH_batch.json

# The coalescing experiment alone, at quick scale (DESIGN.md Â§14).
bench-batch:
	$(GO) run ./cmd/benchrunner -exp batch -quick -json BENCH_batch.json

# Short fuzzing sessions over every parser.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/cypher/
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=30s ./internal/grammar/
	$(GO) test -run=NONE -fuzz=FuzzRegex -fuzztime=30s ./internal/rpq/
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=30s ./internal/resp/
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=30s ./internal/graph/
	$(GO) test -run=NONE -fuzz=FuzzRecoverJournal -fuzztime=30s ./internal/gdb/
	$(GO) test -run=NONE -fuzz=FuzzRecoverSnapshot -fuzztime=30s ./internal/gdb/
	$(GO) test -run=NONE -fuzz=FuzzCacheKey -fuzztime=30s ./internal/store/

# Ten-second fuzz pass per target: enough to catch shallow regressions
# on every CI run without holding the pipeline hostage.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=10s ./internal/cypher/
	$(GO) test -run=NONE -fuzz=FuzzParse -fuzztime=10s ./internal/grammar/
	$(GO) test -run=NONE -fuzz=FuzzRegex -fuzztime=10s ./internal/rpq/
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=10s ./internal/resp/
	$(GO) test -run=NONE -fuzz=FuzzRead -fuzztime=10s ./internal/graph/
	$(GO) test -run=NONE -fuzz=FuzzRecoverJournal -fuzztime=10s ./internal/gdb/
	$(GO) test -run=NONE -fuzz=FuzzRecoverSnapshot -fuzztime=10s ./internal/gdb/
	$(GO) test -run=NONE -fuzz=FuzzCacheKey -fuzztime=10s ./internal/store/

# Static analysis gate: formatting, the repository's own analyzers
# (cmd/mscfpq-lint — see DESIGN.md §12) under both tag configurations
# (default and the nofault release build, whose file set differs) with
# stale-suppression detection on the default pass, and, when the
# pinned tool is installed (`make lint-tools`), a vulnerability scan.
# govulncheck needs network access to fetch the vuln DB, so it
# participates only where available rather than failing hermetic
# builds.
lint:
	@unformatted="$$(gofmt -l . | grep -v testdata || true)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) run ./cmd/mscfpq-lint -unused-suppressions
	$(GO) run ./cmd/mscfpq-lint -tags nofault
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... ; \
	else \
		echo "lint: govulncheck not installed; skipping (run 'make lint-tools')"; \
	fi

# Install the optional lint tooling at pinned versions. Requires
# network access; the core `make lint` gate works without it.
lint-tools:
	$(GO) install golang.org/x/vuln/cmd/govulncheck@v1.1.4

clean:
	rm -f test_output.txt bench_output.txt BENCH_obs.json BENCH_cache.json BENCH_batch.json
