// Package rsm implements recursive state machines and the
// tensor-based (Kronecker product) CFPQ algorithm of Orachev et al.
// (ADBIS 2020), which the paper's future-work section identifies as the
// candidate for a unified RPQ/CFPQ engine. The algorithm evaluates a
// context-free query without grammar normalization: the grammar becomes
// an RSM whose boxes are finite automata over terminals and
// nonterminals, and reachability is computed by iterating
//
//	M = Σ_label RSM^label ⊗ Graph^label
//	C = TransitiveClosure(M)
//
// harvesting (box start, box final) closure pairs as new
// nonterminal-labeled graph edges until a fixpoint.
package rsm

import (
	"fmt"
	"sort"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// RSM is a recursive state machine: one automaton box per nonterminal,
// with globally numbered states and Boolean transition matrices per
// symbol (terminal or nonterminal name).
type RSM struct {
	NumStates int
	Start     string // start nonterminal

	// BoxStart and BoxFinals give each nonterminal's entry state and
	// accepting states.
	BoxStart  map[string]int
	BoxFinals map[string][]int

	// Trans maps each symbol name to its state-transition matrix.
	// Nonterminal names appear here for recursive calls.
	Trans map[string]*matrix.Bool

	// Nonterms records which symbol names are nonterminals.
	Nonterms map[string]bool
}

// FromGrammar builds an RSM from a context-free grammar: each
// production A -> X1..Xk becomes a linear chain from A's box start to a
// fresh final state, sharing the start state across alternatives.
func FromGrammar(g *grammar.Grammar) (*RSM, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	r := &RSM{
		Start:     g.Start,
		BoxStart:  map[string]int{},
		BoxFinals: map[string][]int{},
		Trans:     map[string]*matrix.Bool{},
		Nonterms:  map[string]bool{},
	}
	for _, nt := range g.Nonterminals() {
		r.Nonterms[nt] = true
		r.BoxStart[nt] = r.NumStates
		r.NumStates++
	}
	type edge struct {
		from, to int
		sym      string
	}
	var edges []edge
	for _, p := range g.Prods {
		cur := r.BoxStart[p.LHS]
		if len(p.RHS) == 0 {
			// eps production: the box start is itself final.
			r.addFinal(p.LHS, cur)
			continue
		}
		for i, s := range p.RHS {
			var next int
			if i == len(p.RHS)-1 {
				next = r.NumStates
				r.NumStates++
				r.addFinal(p.LHS, next)
			} else {
				next = r.NumStates
				r.NumStates++
			}
			edges = append(edges, edge{from: cur, to: next, sym: s.Name})
			cur = next
		}
	}
	for _, e := range edges {
		m := r.Trans[e.sym]
		if m == nil {
			m = matrix.NewBool(r.NumStates, r.NumStates)
			r.Trans[e.sym] = m
		}
		m.Set(e.from, e.to)
	}
	return r, nil
}

func (r *RSM) addFinal(nt string, state int) {
	for _, f := range r.BoxFinals[nt] {
		if f == state {
			return
		}
	}
	r.BoxFinals[nt] = append(r.BoxFinals[nt], state)
	sort.Ints(r.BoxFinals[nt])
}

// Symbols returns the sorted set of transition symbols.
func (r *RSM) Symbols() []string {
	out := make([]string, 0, len(r.Trans))
	for s := range r.Trans {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TensorAllPairs evaluates the context-free query over g with the
// Kronecker-product algorithm and returns one relation matrix per
// nonterminal. The result matches cfpq.AllPairs on the same inputs.
//
// The Kronecker matrix has (states x vertices)² entries, so this
// algorithm suits small-to-medium graphs; it exists as the unified
// RPQ/CFPQ engine called for by the paper's conclusion, and as an
// independent oracle for the matrix algorithms.
func (r *RSM) TensorAllPairs(g *graph.Graph, opts ...exec.Option) (map[string]*matrix.Bool, error) {
	if g == nil {
		return nil, fmt.Errorf("rsm: nil graph")
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	n := g.NumVertices()
	rel := map[string]*matrix.Bool{}
	// Seeding allocates an n×n matrix (and possibly an identity) per
	// nonterminal; poll the governor so huge graphs abort promptly.
	for nt := range r.Nonterms {
		if err := run.Err(); err != nil {
			return nil, err
		}
		rel[nt] = matrix.NewBool(n, n)
		// A box whose start state is final accepts eps.
		for _, f := range r.BoxFinals[nt] {
			if f == r.BoxStart[nt] {
				matrix.AddInPlace(rel[nt], matrix.Identity(n))
				break
			}
		}
	}

	for {
		// M = Σ_label RSM^label ⊗ G^label, where nonterminal labels use
		// the relations derived so far.
		m := matrix.NewBool(r.NumStates*n, r.NumStates*n)
		for sym, tm := range r.Trans {
			var gm *matrix.Bool
			if r.Nonterms[sym] {
				gm = rel[sym]
			} else {
				gm = g.EdgeMatrix(sym)
				if vs := g.VertexSet(sym); vs.NVals() > 0 {
					gm = matrix.Add(gm, vs.Diag())
				}
			}
			if gm.NVals() == 0 || tm.NVals() == 0 {
				continue
			}
			matrix.AddInPlace(m, matrix.Kron(tm, gm))
		}
		closure, err := run.Closure(m)
		if err != nil {
			return nil, err
		}

		changed := false
		for nt := range r.Nonterms {
			s := r.BoxStart[nt]
			for _, f := range r.BoxFinals[nt] {
				if f == s {
					continue // eps case already seeded
				}
				// Closure entries (s*n+i, f*n+j) add (i, j) to rel[nt].
				for i := 0; i < n; i++ {
					row := closure.Row(s*n + i)
					lo := uint32(f * n)
					hi := lo + uint32(n)
					for _, c := range row {
						if c >= lo && c < hi {
							if !rel[nt].Get(i, int(c-lo)) {
								rel[nt].Set(i, int(c-lo))
								changed = true
							}
						}
					}
				}
			}
		}
		if !changed {
			return rel, nil
		}
	}
}

// Eval evaluates the query and returns the start-nonterminal relation.
func (r *RSM) Eval(g *graph.Graph, opts ...exec.Option) (*matrix.Bool, error) {
	rel, err := r.TensorAllPairs(g, opts...)
	if err != nil {
		return nil, err
	}
	return rel[r.Start], nil
}
