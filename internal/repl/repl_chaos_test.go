package repl

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mscfpq/internal/fault"
	"mscfpq/internal/gdb"
)

// The replication chaos suite: for every repl.* failpoint, fail (or
// tear, or crash at) that step while a follower streams from a live
// leader, and assert both sides converge back to the leader's acked
// state — the follower reconnects, renegotiates (CONTINUE or a fresh
// full sync), and ends byte-identical.

// chaosReplFailpoints enumerates the replication failpoints on both
// sides (the repl package's stream steps and gdb's apply/install
// steps); the suite refuses a shrunken list so a renamed point cannot
// silently drop its coverage.
func chaosReplFailpoints(t *testing.T) []string {
	t.Helper()
	var pts []string
	for _, n := range fault.Names() {
		if strings.HasPrefix(n, "repl.") {
			pts = append(pts, n)
		}
	}
	if len(pts) < 13 {
		t.Fatalf("chaos suite found only %v — replication failpoints are missing", pts)
	}
	return pts
}

// tearableReplFailpoint reports whether the point streams bytes
// through fault.Writer, making torn-write specs meaningful.
func tearableReplFailpoint(fp string) bool {
	switch fp {
	case FPSend, FPStateWrite, gdb.FPReplApplyAppend, gdb.FPReplInstallWrite:
		return true
	}
	return false
}

// chaosFollower runs a follower with crash-restart semantics: a panic
// escaping the stream loop (an armed Panic spec) is treated as the
// process dying — the database is abandoned mid-operation, reopened
// from disk, and a fresh Replica reattaches, exactly like a restarted
// follower process. The currently live database is published for the
// convergence checker.
type chaosFollower struct {
	dir    string
	cur    atomic.Pointer[gdb.DB]
	cancel context.CancelFunc
	done   chan struct{}
}

func startChaosFollower(t *testing.T, dir, leaderAddr string) *chaosFollower {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cf := &chaosFollower{dir: dir, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(cf.done)
		for ctx.Err() == nil {
			db, err := gdb.Open(dir)
			if err != nil {
				// A half-installed directory cannot happen (install ordering),
				// but an fd hiccup deserves a beat before the retry.
				time.Sleep(5 * time.Millisecond)
				continue
			}
			db.SetReplicaSource(leaderAddr)
			cf.cur.Store(db)
			rep := New(db, leaderAddr, WithBackoff(5*time.Millisecond, 100*time.Millisecond))
			func() {
				// The "kill -9": the armed Panic unwinds the stream loop; the
				// database is abandoned (no Close) like a dead process's.
				defer func() { _ = recover() }()
				_ = rep.Run(ctx) // the loop body retries; errors surface as reconnects
			}()
		}
	}()
	t.Cleanup(cf.stop)
	return cf
}

func (cf *chaosFollower) stop() {
	cf.cancel()
	<-cf.done
}

// waitChaosConverged is waitConverged against the crash-restart
// follower's currently live database.
func waitChaosConverged(t *testing.T, leader *gdb.DB, cf *chaosFollower, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		db := cf.cur.Load()
		if db != nil {
			ls, lo := leader.ReplPosition()
			fs, fo := db.ReplPosition()
			if ls == fs && lo == fo && equalState(dumpAll(t, leader), dumpAll(t, db)) {
				return
			}
		}
		if time.Now().After(deadline) {
			var got string
			if db != nil {
				s, o := db.ReplPosition()
				got = fmt.Sprintf("%d:%d", s, o)
			}
			ls, lo := leader.ReplPosition()
			t.Fatalf("chaos follower never converged: leader %d:%d, follower %s", ls, lo, got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// chaosReplScenario drives one failpoint through a full replication
// life cycle: bootstrap (snapshot transfer), incremental records, a
// rotation, more records — with the failpoint striking once somewhere
// in the middle — then asserts exact convergence.
func chaosReplScenario(t *testing.T, fp string, spec fault.Spec) {
	defer fault.Reset()
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N {name: 'seed'})-[:e]->(b:N)`)
	mustExec(t, leader.db, "g", `CREATE (c:M)`)

	// One strike: the first pass through the step fails; every retry
	// after the reconnect runs clean.
	disarm := fault.Enable(fp, spec)
	defer disarm()

	cf := startChaosFollower(t, t.TempDir(), leader.addr)

	// Keep the stream busy across every frame kind — records, periodic
	// rotations, more records — until the failpoint fires. A fixed
	// burst is not enough: a follower that attaches late finds the
	// whole history baked into its bootstrap snapshot and would never
	// see a REC or ROTATE frame at all.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; fault.Hits(fp) == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("failpoint %s was never reached by the replication flow", fp)
		}
		mustExec(t, leader.db, "g", fmt.Sprintf(`CREATE (w%d:W)`, i))
		if i%5 == 4 {
			if err := leader.db.Save(); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitChaosConverged(t, leader.db, cf, 15*time.Second)

	// The converged follower still converges after more traffic — the
	// fault left no latent damage behind.
	mustExec(t, leader.db, "g", `CREATE (tail:T)`)
	waitChaosConverged(t, leader.db, cf, 15*time.Second)
}

func TestChaosReplEveryFailpoint(t *testing.T) {
	specs := []struct {
		name string
		spec fault.Spec
	}{
		{"error", fault.Spec{Err: errors.New("chaos: injected stream failure"), Times: 1}},
		{"torn-after-7", fault.Spec{TruncateAfter: 7, Times: 1}},
		{"panic", fault.Spec{Panic: "chaos: crash here", Times: 1}},
	}
	for _, fp := range chaosReplFailpoints(t) {
		for _, sc := range specs {
			if sc.spec.TruncateAfter > 0 && !tearableReplFailpoint(fp) {
				continue
			}
			t.Run(fp+"/"+sc.name, func(t *testing.T) {
				chaosReplScenario(t, fp, sc.spec)
			})
		}
	}
}

// TestChaosFollowerKillRestartMidStream kills the follower process
// (hard cancel, database abandoned) while writes are landing, restarts
// it over the same directory, and expects an incremental CONTINUE —
// bounded by at most one full sync if the kill interrupted bootstrap.
func TestChaosFollowerKillRestartMidStream(t *testing.T) {
	leader := startLeader(t)
	mustExec(t, leader.db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	fdir := t.TempDir()
	follower := startFollowerAt(t, fdir, leader.addr)
	waitConverged(t, leader.db, follower.db, 10*time.Second)

	// Kill mid-traffic: half the writes land before, half after.
	for i := 0; i < 5; i++ {
		mustExec(t, leader.db, "g", fmt.Sprintf(`CREATE (w%d:W)`, i))
	}
	follower.stop()
	follower.srv.Close() // abandon follower.db without Close: a dead process
	for i := 5; i < 10; i++ {
		mustExec(t, leader.db, "g", fmt.Sprintf(`CREATE (w%d:W)`, i))
	}

	f2 := startFollowerAt(t, fdir, leader.addr)
	waitConverged(t, leader.db, f2.db, 10*time.Second)
	if info := infoMap(f2.rep.InfoLines()); info["sync_full"] != "0" {
		t.Fatalf("restart over intact history full-synced (sync_full=%s)", info["sync_full"])
	}
}

// TestChaosLeaderRestartMidStream crashes the leader (listener torn
// down, database abandoned mid-flight), restarts it on the same
// address and directory, and expects the follower to reconnect, resume
// incrementally (same replid, valid position), and drain the writes
// issued after the restart.
func TestChaosLeaderRestartMidStream(t *testing.T) {
	ldir := t.TempDir()
	leader := startLeaderAt(t, ldir, "127.0.0.1:0")
	addr := leader.addr
	mustExec(t, leader.db, "g", `CREATE (a:N)-[:e]->(b:N)`)
	follower := startFollower(t, addr)
	waitConverged(t, leader.db, follower.db, 10*time.Second)
	// The fresh follower bootstrapped once (the counter lands moments
	// after the install); the restart below must not cost another
	// snapshot transfer.
	waitUntil(t, 5*time.Second, "the initial bootstrap to be recorded", func() bool {
		return infoMap(follower.rep.InfoLines())["sync_full"] == "1"
	})

	// Crash: the listener dies and the database is abandoned without
	// Close — exactly a killed process (every acked write was fsynced).
	leader.srv.Close()

	leader2 := startLeaderAt(t, ldir, addr)
	if leader2.hub.ReplID() != leader.hub.ReplID() {
		t.Fatalf("restarted leader minted a new replid: %s vs %s", leader2.hub.ReplID(), leader.hub.ReplID())
	}
	for i := 0; i < 5; i++ {
		mustExec(t, leader2.db, "g", fmt.Sprintf(`CREATE (p%d:P)`, i))
	}
	waitConverged(t, leader2.db, follower.db, 15*time.Second)
	if got := infoMap(follower.rep.InfoLines())["sync_full"]; got != "1" {
		t.Fatalf("leader restart forced a full sync (sync_full 1 -> %s), want CONTINUE", got)
	}
}

// TestChaosTornStreamMatchesAckedState: a torn send mid-stream must
// never surface a half record on the follower — after the reconnect
// the follower holds exactly the leader's acked writes, verified all
// the way down to the journal bytes by the convergence check.
func TestChaosTornStreamMatchesAckedState(t *testing.T) {
	defer fault.Reset()
	leader := startLeader(t)
	mustExec(t, leader.db, "anbn", `CREATE (v0)-[:a]->(v1), (v1)-[:a]->(v0), (v0)-[:b]->(v2), (v2)-[:b]->(v3), (v3)-[:b]->(v0)`)
	follower := startFollower(t, leader.addr)
	waitConverged(t, leader.db, follower.db, 10*time.Second)

	// Tear the socket mid-frame on the next records.
	disarm := fault.Enable(FPSend, fault.Spec{TruncateAfter: 11, Times: 1})
	defer disarm()
	mustExec(t, leader.db, "anbn", `CREATE (v1b)-[:b]->(v1c)`)
	mustExec(t, leader.db, "anbn", `CREATE (w)-[:a]->(w2)`)
	deadline := time.Now().Add(5 * time.Second)
	for fault.Hits(FPSend) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("torn send never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	waitConverged(t, leader.db, follower.db, 15*time.Second)

	res, err := follower.db.Query("anbn", `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)
	if err != nil {
		t.Fatal(err)
	}
	lres, err := leader.db.Query("anbn", `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(lres.Rows) || len(res.Rows) == 0 {
		t.Fatalf("follower CFPQ answered %d pairs, leader %d", len(res.Rows), len(lres.Rows))
	}
}
