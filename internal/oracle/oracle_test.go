package oracle

import (
	"reflect"
	"testing"

	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/rpq"
)

// figure1 builds the paper's Figure 1 example graph (the same graph as
// testdata/example_graph.txt, duplicated here so the oracle's own tests
// depend on nothing but hand-checked literals).
func figure1() *graph.Graph {
	g := graph.New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(1, "b", 2)
	g.AddEdge(1, "b", 5)
	g.AddEdge(2, "d", 4)
	g.AddEdge(3, "c", 2)
	g.AddEdge(4, "c", 3)
	g.AddEdge(4, "d", 5)
	g.AddEdge(5, "d", 4)
	g.AddVertexLabel(0, "x")
	g.AddVertexLabel(2, "x")
	g.AddVertexLabel(2, "y")
	g.AddVertexLabel(5, "y")
	return g
}

// The paper's running example (Section 2.3): S -> c S d | c y d over
// Figure 1. Hand derivation: the only c edge into a y vertex is 3-c->2,
// followed by 2-d->4, giving (3, 4); wrapping once more with 4-c->3 and
// 4-d->5 gives (4, 5); no c edge reaches 4, so the relation closes.
func TestCFPQRunningExample(t *testing.T) {
	g := figure1()
	w := grammar.MustWCNF(grammar.MustParse("S -> c S d | c y d"))
	r := CFPQ(g, w)
	want := [][2]int{{3, 4}, {4, 5}}
	if got := r.StartPairs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StartPairs = %v, want %v", got, want)
	}
	if got := r.StartPairsFrom([]int{4, 4, -1, 99}); !reflect.DeepEqual(got, [][2]int{{4, 5}}) {
		t.Fatalf("StartPairsFrom(4) = %v, want [[4 5]]", got)
	}
	if got := r.StartPairsFrom(nil); len(got) != 0 {
		t.Fatalf("StartPairsFrom(nil) = %v, want empty", got)
	}
}

// a^n b^n over a plain chain: exactly the balanced windows.
func TestCFPQAnBnChain(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "b", 3)
	g.AddEdge(3, "b", 4)
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	want := [][2]int{{0, 4}, {1, 3}}
	if got := CFPQ(g, w).StartPairs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StartPairs = %v, want %v", got, want)
	}
}

// Inverse labels: S -> a_r over 0-a->1 relates 1 to 0.
func TestCFPQInverseLabel(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, "a", 1)
	w := grammar.MustWCNF(grammar.MustParse("S -> a_r"))
	want := [][2]int{{1, 0}}
	if got := CFPQ(g, w).StartPairs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StartPairs = %v, want %v", got, want)
	}
}

// A nullable start symbol relates every vertex to itself.
func TestCFPQNullable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, "a", 1)
	w := grammar.MustWCNF(grammar.MustParse("S -> a S | eps"))
	want := [][2]int{{0, 0}, {0, 1}, {1, 1}, {2, 2}}
	if got := CFPQ(g, w).StartPairs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("StartPairs = %v, want %v", got, want)
	}
}

func TestRPQHandChecked(t *testing.T) {
	g := figure1()
	cases := []struct {
		regex   string
		sources []int
		want    [][2]int
	}{
		// 0-a->1-b->{2,5}.
		{"a b", []int{0}, [][2]int{{0, 2}, {0, 5}}},
		// d cycles: from 2 the d-reachable set is {4, 5}.
		{"d+", []int{2}, [][2]int{{2, 4}, {2, 5}}},
		// Vertex label x matches as a zero-length step.
		{"x", []int{0, 1}, [][2]int{{0, 0}}},
		// Inverse label: a_r from 2 walks a edges backwards.
		{"a_r+", []int{2}, [][2]int{{2, 0}, {2, 1}}},
		// Optional step keeps the source itself.
		{"a?", []int{0}, [][2]int{{0, 0}, {0, 1}}},
		// Duplicate and out-of-range sources are ignored.
		{"a", []int{1, 1, -3, 42}, [][2]int{{1, 2}}},
	}
	for _, c := range cases {
		nfa, err := rpq.CompileRegex(c.regex)
		if err != nil {
			t.Fatalf("compile %q: %v", c.regex, err)
		}
		if got := RPQ(g, nfa, c.sources); !reflect.DeepEqual(got, c.want) {
			t.Errorf("RPQ(%q, %v) = %v, want %v", c.regex, c.sources, got, c.want)
		}
	}
}
