package algebra

import (
	"fmt"
	"reflect"
	"testing"

	"mscfpq/internal/matrix"
)

// stubEnv is a minimal Env over fixed matrices.
type stubEnv struct {
	n     int
	edges map[string]*matrix.Bool
	verts map[string]*matrix.Bool
	refs  map[string]*matrix.Bool
	noted map[string][]int
}

func newStubEnv(n int) *stubEnv {
	return &stubEnv{
		n:     n,
		edges: map[string]*matrix.Bool{},
		verts: map[string]*matrix.Bool{},
		refs:  map[string]*matrix.Bool{},
		noted: map[string][]int{},
	}
}

func (e *stubEnv) Vertices() int { return e.n }
func (e *stubEnv) EdgeMatrix(l string) *matrix.Bool {
	if m := e.edges[l]; m != nil {
		return m
	}
	return matrix.NewBool(e.n, e.n)
}
func (e *stubEnv) VertexMatrix(l string) *matrix.Bool {
	if m := e.verts[l]; m != nil {
		return m
	}
	return matrix.NewBool(e.n, e.n)
}
func (e *stubEnv) AnyEdgeMatrix() *matrix.Bool {
	u := matrix.NewBool(e.n, e.n)
	for _, m := range e.edges {
		matrix.AddInPlace(u, m)
	}
	return u
}
func (e *stubEnv) RefMatrix(name string) (*matrix.Bool, error) {
	if m := e.refs[name]; m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("no ref %q", name)
}
func (e *stubEnv) NoteRefSources(name string, src *matrix.Vector) {
	e.noted[name] = append(e.noted[name], src.Ints()...)
}

func env3() *stubEnv {
	e := newStubEnv(3)
	e.edges["a"] = matrix.NewBoolFromPairs(3, 3, [][2]int{{0, 1}, {1, 2}})
	e.edges["b"] = matrix.NewBoolFromPairs(3, 3, [][2]int{{2, 0}})
	e.verts["x"] = matrix.NewBoolFromPairs(3, 3, [][2]int{{1, 1}})
	e.refs["S"] = matrix.NewBoolFromPairs(3, 3, [][2]int{{1, 1}, {2, 2}})
	return e
}

func TestEvalBasicOperands(t *testing.T) {
	e := env3()
	cases := []struct {
		expr Expr
		want *matrix.Bool
	}{
		{EdgeLabel{Label: "a"}, e.edges["a"]},
		{VertexLabel{Label: "x"}, e.verts["x"]},
		{EdgeLabel{Label: "nope"}, matrix.NewBool(3, 3)},
		{Ident{}, matrix.Identity(3)},
		{AnyEdge{}, matrix.NewBoolFromPairs(3, 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})},
	}
	for i, c := range cases {
		got, err := Eval(c.expr, e)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !got.Equal(c.want) {
			t.Fatalf("case %d (%s):\n%v\nwant\n%v", i, c.expr, got, c.want)
		}
	}
}

func TestEvalCompound(t *testing.T) {
	e := env3()
	// a * a = {(0,2)}.
	got, err := Eval(Mul{L: EdgeLabel{Label: "a"}, R: EdgeLabel{Label: "a"}}, e)
	if err != nil || !got.Equal(matrix.NewBoolFromPairs(3, 3, [][2]int{{0, 2}})) {
		t.Fatalf("a*a = %v, %v", got, err)
	}
	// a + b.
	got, _ = Eval(Add{L: EdgeLabel{Label: "a"}, R: EdgeLabel{Label: "b"}}, e)
	if got.NVals() != 3 {
		t.Fatalf("a+b nvals = %d", got.NVals())
	}
	// Transpose(a).
	got, _ = Eval(Transpose{Sub: EdgeLabel{Label: "a"}}, e)
	if !got.Get(1, 0) || !got.Get(2, 1) || got.NVals() != 2 {
		t.Fatalf("a^T = %v", got)
	}
	// Star(a) includes identity and closure.
	got, _ = Eval(Star{Sub: EdgeLabel{Label: "a"}}, e)
	for _, p := range [][2]int{{0, 0}, {1, 1}, {2, 2}, {0, 1}, {1, 2}, {0, 2}} {
		if !got.Get(p[0], p[1]) {
			t.Fatalf("Star(a) missing %v", p)
		}
	}
	// Plus(a) excludes identity.
	got, _ = Eval(Plus{Sub: EdgeLabel{Label: "a"}}, e)
	if got.Get(0, 0) || !got.Get(0, 2) {
		t.Fatalf("Plus(a) = %v", got)
	}
	// Opt(a) = a + I.
	got, _ = Eval(Opt{Sub: EdgeLabel{Label: "a"}}, e)
	if !got.Get(0, 0) || !got.Get(0, 1) || got.Get(0, 2) {
		t.Fatalf("Opt(a) = %v", got)
	}
}

func TestAlgorithm8NotesSources(t *testing.T) {
	e := env3()
	// a * Ref(S): the destinations of a (vertices 1, 2) become sources of S.
	_, err := Eval(Mul{L: EdgeLabel{Label: "a"}, R: Ref{Name: "S"}}, e)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.noted["S"], []int{1, 2}) {
		t.Fatalf("noted = %v", e.noted["S"])
	}
}

func TestEvalErrors(t *testing.T) {
	e := env3()
	if _, err := Eval(nil, e); err == nil {
		t.Fatal("expected error for nil expr")
	}
	if _, err := Eval(Ref{Name: "missing"}, e); err == nil {
		t.Fatal("expected error for unknown ref")
	}
	if _, err := Eval(Fixed{Name: "f"}, e); err == nil {
		t.Fatal("expected error for Fixed without matrix")
	}
}

func TestRefsCollection(t *testing.T) {
	expr := Add{
		L: Mul{L: EdgeLabel{Label: "a"}, R: Ref{Name: "S"}},
		R: Transpose{Sub: Mul{L: Ref{Name: "T"}, R: Ref{Name: "S"}}},
	}
	if got := Refs(expr); !reflect.DeepEqual(got, []string{"S", "T"}) {
		t.Fatalf("Refs = %v", got)
	}
	if !HasRefs(expr) || HasRefs(EdgeLabel{Label: "a"}) {
		t.Fatal("HasRefs wrong")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[Expr]string{
		Mul{L: Fixed{Name: "Filter"}, R: Add{L: EdgeLabel{Label: "a"}, R: Ref{Name: "S"}}}: "(Filter * (E^a + Ref(S)))",
		Transpose{Sub: EdgeLabel{Label: "a"}}:                                              "Transpose(E^a)",
		VertexLabel{Label: "x"}:                                                            "V^x",
		AnyEdge{}:                                                                          "E^*",
		Ident{}:                                                                            "I",
		Star{Sub: EdgeLabel{Label: "a"}}:                                                   "Star(E^a)",
		Plus{Sub: EdgeLabel{Label: "a"}}:                                                   "Plus(E^a)",
		Opt{Sub: EdgeLabel{Label: "a"}}:                                                    "Opt(E^a)",
		Fixed{M: nil}:                                                                      "Fixed",
	}
	for expr, want := range cases {
		if got := expr.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}

// Errors inside operands must propagate through every compound node.
func TestEvalErrorPropagation(t *testing.T) {
	e := env3()
	bad := Ref{Name: "missing"}
	exprs := []Expr{
		Add{L: bad, R: Ident{}},
		Add{L: Ident{}, R: bad},
		Mul{L: bad, R: Ident{}},
		Mul{L: EdgeLabel{Label: "a"}, R: Transpose{Sub: bad}},
		Transpose{Sub: bad},
		Star{Sub: bad},
		Plus{Sub: bad},
		Opt{Sub: bad},
	}
	for i, expr := range exprs {
		if _, err := Eval(expr, e); err == nil {
			t.Errorf("case %d (%s): expected error", i, expr)
		}
	}
}
