// Package gdb is the in-memory graph database engine — the slice of
// RedisGraph the paper extends: matrix-backed graph storage, the Cypher
// front end (internal/cypher), execution-plan building and evaluation
// (internal/plan) with full path-pattern support, and graph management.
// The RESP server in internal/resp exposes it over the wire.
package gdb

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mscfpq/internal/cypher"
	"mscfpq/internal/exec"
	"mscfpq/internal/graph"
	"mscfpq/internal/obs"
	"mscfpq/internal/plan"
)

// DB is a named collection of graphs, safe for concurrent use: writes
// (CREATE, DELETE) take exclusive locks, queries share read locks.
type DB struct {
	mu     sync.RWMutex
	graphs map[string]*GraphStore // guarded by mu

	polMu  sync.RWMutex
	policy Policy // guarded by polMu

	// slowLog records slow and aborted queries for the SLOWLOG command;
	// set once by New, immutable afterwards (the ring is internally
	// synchronized).
	slowLog *obs.SlowLog

	// dur is the crash-safety layer, nil for in-memory databases (New);
	// set once by Open before the DB is shared, immutable afterwards.
	dur *durability
}

// slowLogCapacity bounds the slow-query ring (matches the Redis
// slowlog-max-len default).
const slowLogCapacity = 128

// New returns an empty database.
func New() *DB {
	return &DB{graphs: map[string]*GraphStore{}, slowLog: obs.NewSlowLog(slowLogCapacity)}
}

// SlowLog exposes the slow-query ring (never nil).
func (db *DB) SlowLog() *obs.SlowLog { return db.slowLog }

// GraphStore couples a labeled graph with node properties and a cache
// of path-pattern contexts so repeated queries with the same PATH
// PATTERN declarations share one Algorithm 3 index (the paper's
// motivating scenario for the optimized multiple-source algorithm).
type GraphStore struct {
	mu      sync.RWMutex
	g       *graph.Graph
	props   map[int]map[string]cypher.Value // guarded by mu
	version int                             // guarded by mu: bumped on every write; invalidates cached contexts

	ctxMu    sync.Mutex
	ctxCache map[string]*cachedCtx // guarded by ctxMu
	ctxHits  int                   // guarded by ctxMu
}

type cachedCtx struct {
	ctx     *plan.PathCtx
	version int
}

// NewGraphStore wraps an existing graph (no properties).
func NewGraphStore(g *graph.Graph) *GraphStore {
	return &GraphStore{
		g:        g,
		props:    map[int]map[string]cypher.Value{},
		ctxCache: map[string]*cachedCtx{},
	}
}

// pathCtxForLocked returns a shared path-pattern context for the
// query's declarations, rebuilding it when the graph version changed.
// Queries without declarations always get a fresh empty context
// (cheap). Callers must hold s.mu (read or write): version is guarded
// by mu, and the context build reads the graph.
func (s *GraphStore) pathCtxForLocked(q *cypher.Query) (*plan.PathCtx, error) {
	if len(q.PathPatterns) == 0 {
		return plan.NewPathCtx(s.g, nil)
	}
	key := plan.CtxKey(q.PathPatterns)
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	if c, ok := s.ctxCache[key]; ok && c.version == s.version {
		s.ctxHits++
		return c.ctx, nil
	}
	ctx, err := plan.NewPathCtx(s.g, q.PathPatterns)
	if err != nil {
		return nil, err
	}
	s.ctxCache[key] = &cachedCtx{ctx: ctx, version: s.version}
	return ctx, nil
}

// CtxCacheHits reports how many queries reused a cached path-pattern
// context (and its warmed multiple-source index).
func (s *GraphStore) CtxCacheHits() int {
	s.ctxMu.Lock()
	defer s.ctxMu.Unlock()
	return s.ctxHits
}

// Graph exposes the underlying labeled graph.
func (s *GraphStore) Graph() *graph.Graph { return s.g }

// PropEquals implements plan.PropStore.
func (s *GraphStore) PropEquals(v int, key string, val cypher.Value) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p, ok := s.props[v]
	if !ok {
		return false
	}
	have, ok := p[key]
	if !ok {
		return false
	}
	return have == val
}

// SetProp sets a node property.
func (s *GraphStore) SetProp(v int, key string, val cypher.Value) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.props[v]
	if p == nil {
		p = map[string]cypher.Value{}
		s.props[v] = p
	}
	p[key] = val
}

// QueryResult is the outcome of one statement.
type QueryResult struct {
	Columns []string
	Rows    [][]int64
	// Write statistics (CREATE).
	NodesCreated int
	EdgesCreated int
	// Profile holds the rendered execution span tree of a
	// "PROFILE MATCH ..." statement (nil otherwise).
	Profile []string
}

// AddGraph registers a pre-built graph under a name, replacing any
// existing graph with that name.
func (db *DB) AddGraph(name string, g *graph.Graph) *GraphStore {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := NewGraphStore(g)
	db.graphs[name] = s
	return s
}

// Get returns the named graph store.
func (db *DB) Get(name string) (*GraphStore, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.graphs[name]
	if !ok {
		return nil, fmt.Errorf("gdb: graph %q does not exist", name)
	}
	return s, nil
}

// Delete removes a graph; it reports whether it existed. On a durable
// database the deletion is journaled before it is applied; a non-nil
// error means the journal append failed and the graph was NOT removed.
func (db *DB) Delete(name string) (bool, error) {
	// Fast path: skip journaling deletes of graphs that don't exist.
	// The check is advisory — the authoritative answer comes from the
	// re-check inside the serialized apply below, so two concurrent
	// deletes of the same graph cannot both report success. A delete
	// journaled for a graph that raced away is harmless: replay of the
	// 'D' record is idempotent.
	db.mu.RLock()
	_, ok := db.graphs[name]
	db.mu.RUnlock()
	if !ok {
		return false, nil
	}
	var existed bool
	err := db.commit(journalOp{op: opDelete, name: name}, func() {
		db.mu.Lock()
		_, existed = db.graphs[name]
		delete(db.graphs, name)
		db.mu.Unlock()
	})
	if err != nil {
		return false, err
	}
	return existed, nil
}

// List returns the sorted graph names.
func (db *DB) List() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.graphs))
	for n := range db.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query parses and executes a statement against the named graph.
// CREATE statements create the graph on first use; MATCH statements
// require it to exist. The database policy (timeouts, budget) applies;
// use QueryContext to additionally bound the query by a caller context.
func (db *DB) Query(name, src string) (*QueryResult, error) {
	return db.QueryContext(context.Background(), name, src)
}

// Explain parses and plans a MATCH statement, returning the plan text.
func (db *DB) Explain(name, src string) (string, error) {
	q, err := cypher.Parse(src)
	if err != nil {
		return "", err
	}
	if q.Match == nil {
		return "", fmt.Errorf("gdb: EXPLAIN requires a MATCH query")
	}
	s, err := db.Get(name)
	if err != nil {
		return "", err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	env := plan.NewEnv(s.g, nil, s)
	p, err := plan.Build(q, env)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Stats summarizes the named graph: vertices, edges, and per-label
// counts (the GRAPH.STATS command).
func (db *DB) Stats(name string) ([]string, error) {
	s, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.g.Stats()
	out := []string{
		fmt.Sprintf("Vertices: %d", st.Vertices),
		fmt.Sprintf("Edges: %d", st.Edges),
	}
	labels := make([]string, 0, len(st.ByLabel))
	for l := range st.ByLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		out = append(out, fmt.Sprintf("Label %s: %d", l, st.ByLabel[l]))
	}
	for _, l := range s.g.VertexLabels() {
		out = append(out, fmt.Sprintf("Vertex label %s: %d", l, s.g.VertexSet(l).NVals()))
	}
	return out, nil
}

// Profile parses, plans and executes a MATCH statement with
// per-operation instrumentation, returning the profile lines.
func (db *DB) Profile(name, src string) ([]string, error) {
	q, err := cypher.Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Match == nil {
		return nil, fmt.Errorf("gdb: PROFILE requires a MATCH query")
	}
	s, err := db.Get(name)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	env := plan.NewEnv(s.g, nil, s)
	p, err := plan.Build(q, env)
	if err != nil {
		return nil, err
	}
	_, entries, err := p.ExecuteProfiled()
	if err != nil {
		return nil, err
	}
	return plan.RenderProfile(entries), nil
}

func (s *GraphStore) runMatch(q *cypher.Query, run *exec.Run) (*QueryResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	planSpan := run.StartSpan("plan")
	ctx, err := s.pathCtxForLocked(q)
	if err != nil {
		planSpan.End()
		return nil, err
	}
	env := plan.NewEnv(s.g, nil, s)
	p, err := plan.BuildWithCtx(q, env, ctx)
	planSpan.End()
	if err != nil {
		return nil, err
	}
	execSpan := run.StartSpan("execute")
	rs, err := p.ExecuteWith(exec.WithRun(run))
	execSpan.End()
	if err != nil {
		return nil, err
	}
	return &QueryResult{Columns: rs.Columns, Rows: rs.Rows}, nil
}

func (db *DB) runCreate(name string, q *cypher.Query) (*QueryResult, error) {
	db.mu.Lock()
	s, ok := db.graphs[name]
	if !ok {
		s = NewGraphStore(graph.New(0))
		db.graphs[name] = s
	}
	db.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++ // writes invalidate cached path-pattern contexts
	res := &QueryResult{}
	bound := map[string]int{}
	newNode := func(n cypher.NodePattern) (int, error) {
		if n.Var != "" {
			if v, ok := bound[n.Var]; ok {
				return v, nil
			}
		}
		v := s.g.NumVertices()
		// Materialize the vertex even when it has no labels.
		if len(n.Labels) == 0 {
			s.g.AddVertexLabel(v, "_node")
		}
		for _, l := range n.Labels {
			s.g.AddVertexLabel(v, l)
		}
		for _, p := range n.Props {
			//lint:ignore lockguard newNode only runs synchronously below, under the s.mu.Lock taken by runCreate
			pm := s.props[v]
			if pm == nil {
				pm = map[string]cypher.Value{}
				//lint:ignore lockguard same critical section as the read above
				s.props[v] = pm
			}
			pm[p.Key] = p.Val
		}
		if n.Var != "" {
			bound[n.Var] = v
		}
		res.NodesCreated++
		return v, nil
	}
	for _, pat := range q.Create.Patterns {
		ids := make([]int, len(pat.Nodes))
		for i, n := range pat.Nodes {
			v, err := newNode(n)
			if err != nil {
				return nil, err
			}
			ids[i] = v
		}
		for i, conn := range pat.Connections {
			rel, ok := conn.(cypher.RelPattern)
			if !ok {
				return nil, fmt.Errorf("gdb: CREATE supports only relationship patterns")
			}
			if len(rel.Types) != 1 {
				return nil, fmt.Errorf("gdb: CREATE relationships need exactly one type")
			}
			src, dst := ids[i], ids[i+1]
			if rel.Inverse {
				src, dst = dst, src
			}
			s.g.AddEdge(src, rel.Types[0], dst)
			res.EdgesCreated++
		}
	}
	return res, nil
}
