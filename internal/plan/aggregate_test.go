package plan

import (
	"reflect"
	"testing"
)

func TestCountStar(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:d]->(u) RETURN count(*)`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != 3 {
		t.Fatalf("count(*) = %v", rs.Rows)
	}
	if rs.Columns[0] != "count(*)" {
		t.Fatalf("column = %q", rs.Columns[0])
	}
}

func TestCountGrouped(t *testing.T) {
	// Out-degree over label b per source vertex: vertex 1 has two b-edges.
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:b]->(u) RETURN v, count(u)`)
	if len(rs.Rows) != 1 || rs.Rows[0][0] != 1 || rs.Rows[0][1] != 2 {
		t.Fatalf("grouped count = %v", rs.Rows)
	}
	// Degree per vertex over any edge.
	rs = runQuery(t, paperGraph(), `MATCH (v)-->(u) RETURN v, count(u) AS deg ORDER BY deg DESC, v`)
	if rs.Columns[1] != "deg" {
		t.Fatalf("columns = %v", rs.Columns)
	}
	// Vertex 1 has out-pairs {2,5} (a+b collapse on (1,2)), vertex 4 has
	// {3,5}, vertices 0,2,3,5 have one each.
	if rs.Rows[0][1] != 2 {
		t.Fatalf("top degree = %v", rs.Rows)
	}
	// Descending by degree, ties ascending by v.
	var degs []int64
	for _, r := range rs.Rows {
		degs = append(degs, r[1])
	}
	for i := 1; i < len(degs); i++ {
		if degs[i] > degs[i-1] {
			t.Fatalf("not sorted desc: %v", degs)
		}
	}
}

func TestCountEmptyInput(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:nosuch]->(u) RETURN count(*)`)
	// With no grouping keys and no rows, the aggregate yields no groups
	// (a defensible choice; SQL would return one row with 0).
	if len(rs.Rows) != 0 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestOrderByAscDesc(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:d]->(u) RETURN v, u ORDER BY v`)
	want := [][]int64{{2, 4}, {4, 5}, {5, 4}}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows = %v", rs.Rows)
	}
	rs = runQuery(t, paperGraph(), `MATCH (v)-[:d]->(u) RETURN v, u ORDER BY v DESC`)
	if rs.Rows[0][0] != 5 || rs.Rows[2][0] != 2 {
		t.Fatalf("desc rows = %v", rs.Rows)
	}
}

func TestSkipAndLimitAfterSort(t *testing.T) {
	rs := runQuery(t, paperGraph(), `MATCH (v)-[:d]->(u) RETURN v, u ORDER BY v SKIP 1 LIMIT 1`)
	want := [][]int64{{4, 5}}
	if !reflect.DeepEqual(rs.Rows, want) {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// Skip past the end.
	rs = runQuery(t, paperGraph(), `MATCH (v)-[:d]->(u) RETURN v SKIP 10`)
	if len(rs.Rows) != 0 {
		t.Fatalf("rows = %v", rs.Rows)
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	q := mustParseQuery(t, `MATCH (v)-[:d]->(u) RETURN v ORDER BY nosuch`)
	if _, err := Build(q, NewEnv(paperGraph(), nil, nil)); err == nil {
		t.Fatal("expected error for unknown ORDER BY column")
	}
}

func TestCountUnknownVariable(t *testing.T) {
	q := mustParseQuery(t, `MATCH (v)-[:d]->(u) RETURN count(zz)`)
	if _, err := Build(q, NewEnv(paperGraph(), nil, nil)); err == nil {
		t.Fatal("expected error for unknown count variable")
	}
}

func TestProfiledAggregate(t *testing.T) {
	q := mustParseQuery(t, `MATCH (v)-->(u) RETURN v, count(u) ORDER BY v LIMIT 2`)
	p, err := Build(q, NewEnv(paperGraph(), nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	rs, entries, err := p.ExecuteProfiled()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	// Paginate, Sort, Aggregate must all appear in the profile.
	joined := ""
	for _, e := range entries {
		joined += e.Op + "\n"
	}
	for _, want := range []string{"Paginate", "Sort", "Aggregate"} {
		if !contains(joined, want) {
			t.Fatalf("profile missing %q:\n%s", want, joined)
		}
	}
}
