package grammar

import "testing"

// FuzzParse asserts parsing never panics and that parsed grammars
// normalize and render/re-parse cleanly.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"S -> a S b | a b",
		"S -> eps\nS -> a",
		"S -> A B\nA -> a | eps\nB -> b B | b",
		"S -> subClassOf_r S subClassOf | type_r type",
		"# comment\nS->a",
		"S -> | a",
		"-> a",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		g, err := ParseString(src)
		if err != nil {
			return
		}
		// A grammar the parser accepts must render and re-parse.
		back, err := ParseString(g.String())
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, g.String())
		}
		if back.Start != g.Start {
			t.Fatalf("round trip changed start: %q vs %q", back.Start, g.Start)
		}
		// Normalization must not panic; errors are acceptable.
		if w, err := ToWCNF(g); err == nil {
			// The normalized grammar answers membership without panics.
			w.Accepts([]string{"a", "b"})
		}
	})
}
