// RPQ engines: regular queries as a partial case of CFPQ.
//
// The paper's conclusion demonstrates that the CFPQ machinery evaluates
// regular path queries too, and asks how the approaches compare. This
// example answers the same regular query four ways — Thompson NFA
// product, minimized DFA product, CFPQ over the regex-derived grammar,
// and the tensor (Kronecker) RSM engine — verifying they agree and
// printing their timings.
//
// Run with: go run ./examples/rpqengines
package main

import (
	"fmt"
	"log"
	"time"

	"mscfpq"
)

func main() {
	g, err := mscfpq.GenerateDataset("core", 1.0)
	if err != nil {
		log.Fatal(err)
	}
	const regex = "subClassOf+ type_r?"
	fmt.Printf("query %q over the core analog (%d vertices)\n", regex, g.NumVertices())

	nfa, err := mscfpq.CompileRegex(regex)
	if err != nil {
		log.Fatal(err)
	}
	src := mscfpq.NewVertexSet(g.NumVertices(), 10, 20, 30, 40, 50)

	start := time.Now()
	viaNFA, err := mscfpq.EvalRegex(g, nfa, src)
	if err != nil {
		log.Fatal(err)
	}
	tNFA := time.Since(start)

	dfa := mscfpq.Determinize(nfa)
	start = time.Now()
	viaDFA, err := mscfpq.EvalRegexDFA(g, dfa, src)
	if err != nil {
		log.Fatal(err)
	}
	tDFA := time.Since(start)

	gr := mscfpq.RegexToGrammar(nfa)
	w, err := mscfpq.ToWCNF(gr)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	viaCFPQ, err := mscfpq.MultiSource(g, w, src)
	if err != nil {
		log.Fatal(err)
	}
	tCFPQ := time.Since(start)

	machine, err := mscfpq.NewRSM(gr)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	viaTensor, err := machine.Eval(g) // all pairs
	if err != nil {
		log.Fatal(err)
	}
	tTensor := time.Since(start)

	if !viaNFA.Equal(viaDFA) || !viaNFA.Equal(viaCFPQ.Answer()) {
		log.Fatal("engines disagree")
	}
	fmt.Printf("  NFA product:      %6d pairs in %v\n", viaNFA.NVals(), tNFA.Round(time.Microsecond))
	fmt.Printf("  minimized DFA:    %6d pairs in %v\n", viaDFA.NVals(), tDFA.Round(time.Microsecond))
	fmt.Printf("  CFPQ (Alg. 2):    %6d pairs in %v\n", viaCFPQ.Answer().NVals(), tCFPQ.Round(time.Microsecond))
	fmt.Printf("  tensor RSM:       %6d pairs in %v (all pairs, superset)\n", viaTensor.NVals(), tTensor.Round(time.Microsecond))
	fmt.Println("multiple-source answers verified identical across the three MS engines")
}
