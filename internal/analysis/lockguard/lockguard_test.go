package lockguard_test

import (
	"testing"

	"mscfpq/internal/analysis/analysistest"
	"mscfpq/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	analysistest.Run(t, lockguard.Analyzer, "lockpos", "lockneg")
}
