package matrix

import "fmt"

// Key packs a matrix coordinate into a map key.
func Key(i, j int) uint64 { return uint64(uint32(i))<<32 | uint64(uint32(j)) }

// UnKey unpacks a coordinate produced by Key.
func UnKey(k uint64) (i, j int) { return int(k >> 32), int(uint32(k)) }

// MulWitness returns the Boolean product a * b together with, for every
// true entry (i, j) of the product, one witness index k such that
// a[i,k] and b[k,j] are both true. Single-path CFPQ uses the witness to
// reconstruct a concrete path for each derived reachability fact.
func MulWitness(a, b *Bool) (*Bool, map[uint64]uint32) {
	if a.ncols != b.nrows {
		panic(fmt.Sprintf("matrix: MulWitness dimension mismatch %dx%d * %dx%d", a.nrows, a.ncols, b.nrows, b.ncols))
	}
	out := NewBool(a.nrows, b.ncols)
	wit := make(map[uint64]uint32)
	if a.nvals == 0 || b.nvals == 0 {
		return out, wit
	}
	acc := getAccumulator(b.ncols)
	defer putAccumulator(acc)
	for i := 0; i < a.nrows; i++ {
		ra := a.rows[i]
		if len(ra) == 0 {
			continue
		}
		acc.reset()
		for _, k := range ra {
			for _, j := range b.rows[k] {
				if !acc.contains(j) {
					wit[Key(i, int(j))] = k
				}
			}
			acc.orRow(b.rows[k])
		}
		row := acc.extract(make([]uint32, 0, acc.count()))
		out.rows[i] = row
		out.nvals += len(row)
	}
	return out, wit
}
