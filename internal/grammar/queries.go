package grammar

// This file defines the query grammars used throughout the paper's
// evaluation (Section 3.2, equations 1-3) plus classic grammars used in
// tests and examples.

// G1 is the same-generation query of eq. 1:
//
//	S -> subClassOf_r S subClassOf | type_r S type
//	   | subClassOf_r subClassOf   | type_r type
func G1() *Grammar {
	return MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("subClassOf_r"), N("S"), T("subClassOf")}},
		{LHS: "S", RHS: []Symbol{T("type_r"), N("S"), T("type")}},
		{LHS: "S", RHS: []Symbol{T("subClassOf_r"), T("subClassOf")}},
		{LHS: "S", RHS: []Symbol{T("type_r"), T("type")}},
	})
}

// G2 is the restricted same-generation query of eq. 2:
//
//	S -> subClassOf_r S subClassOf | subClassOf
func G2() *Grammar {
	return MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("subClassOf_r"), N("S"), T("subClassOf")}},
		{LHS: "S", RHS: []Symbol{T("subClassOf")}},
	})
}

// Geo is the geospecies query of eq. 3 (Kuijpers et al.):
//
//	S -> broaderTransitive S broaderTransitive_r
//	   | broaderTransitive broaderTransitive_r
func Geo() *Grammar {
	return MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T("broaderTransitive"), N("S"), T("broaderTransitive_r")}},
		{LHS: "S", RHS: []Symbol{T("broaderTransitive"), T("broaderTransitive_r")}},
	})
}

// AnBn is the bracket-matching grammar S -> a S b | a b, generating
// {a^n b^n | n >= 1}. Used by the paper's running example (listing 5).
func AnBn(a, b string) *Grammar {
	return MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T(a), N("S"), T(b)}},
		{LHS: "S", RHS: []Symbol{T(a), T(b)}},
	})
}

// Dyck1 is the Dyck language of balanced brackets over one bracket pair,
// including the empty string: S -> a S b S | eps.
func Dyck1(a, b string) *Grammar {
	return MustNew("S", []Production{
		{LHS: "S", RHS: []Symbol{T(a), N("S"), T(b), N("S")}},
		{LHS: "S"},
	})
}

// SameGen builds a same-generation grammar over arbitrary relation
// pairs: for every relation x in rels it adds
//
//	S -> x_r S x | x_r x
//
// G1 is SameGen("subClassOf", "type").
func SameGen(rels ...string) *Grammar {
	var prods []Production
	for _, x := range rels {
		prods = append(prods,
			Production{LHS: "S", RHS: []Symbol{T(x + "_r"), N("S"), T(x)}},
			Production{LHS: "S", RHS: []Symbol{T(x + "_r"), T(x)}},
		)
	}
	return MustNew("S", prods)
}
