// Package matrix implements the sparse Boolean linear algebra the
// multiple-source CFPQ algorithms are expressed in.
//
// It is a small, dependency-free stand-in for the slice of the GraphBLAS
// API (SuiteSparse:GraphBLAS) used by the paper: Boolean matrix
// multiplication, element-wise addition (logical OR), set difference,
// transposition, Kronecker product, and the column reduction that backs
// the paper's getDst function (reduce_vector in pygraphblas).
//
// # Representation
//
// Bool stores a sparse Boolean matrix in CSR-like form: one sorted,
// duplicate-free slice of column indices per row. This favours the access
// patterns of the CFPQ algorithms, which are row-driven: multiplication
// unions rows of the right operand selected by the left operand's rows.
//
// Vector stores a sparse Boolean vector as a sorted index slice and
// doubles as the representation of vertex sets (query source sets,
// getDst results, diagonal matrices).
//
// # Errors
//
// Dimension mismatches are programming errors, not runtime conditions, so
// operations panic with a descriptive message instead of returning an
// error, mirroring the behaviour of GraphBLAS bindings and gonum.
//
// Matrices are not safe for concurrent mutation. Read-only sharing is
// safe; MulPar exploits this to multiply row blocks in parallel.
package matrix
