package resp

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mscfpq/internal/fault"
	"mscfpq/internal/gdb"
	"mscfpq/internal/obs"
)

// FPDispatch is the failpoint at the head of command dispatch; tests
// arm it with a panic spec to prove a crashing handler costs one error
// reply, not the process.
const FPDispatch = "resp.dispatch"

var _ = fault.Declare(FPDispatch)

// maxInlineLen bounds one inline command line (64 KiB, Redis's
// PROTO_INLINE_MAX_SIZE): a client streaming bytes without a newline
// is refused instead of growing the server's buffer without bound.
const maxInlineLen = 64 << 10

// Server serves the graph database over RESP.
type Server struct {
	DB     *gdb.DB
	Logger *log.Logger // nil = silent

	// MaxConns caps simultaneous connections; excess dials get an
	// error reply and an immediate close. 0 means unlimited. Set
	// before Serve.
	MaxConns int
	// IdleTimeout closes a connection that sends no command for this
	// long. 0 means no deadline. Set before Serve.
	IdleTimeout time.Duration

	// SyncHandler, when set, takes over a connection that issues the
	// SYNC command (the replication handshake): the handler owns the
	// socket until it returns and streams journal frames over it,
	// outside the request/reply loop. ctx is the server's base context,
	// cancelled on Close/drain-timeout so streams unwind with the
	// server. Set before Serve (typically by repl.Hub).
	SyncHandler func(ctx context.Context, args []string, conn net.Conn, r *bufio.Reader, w *bufio.Writer)

	// ReplInfo, when set, supplies the leading key:value lines of the
	// INFO replication section (role, offsets, per-replica rows). Nil
	// servers report role:leader with no replicas.
	ReplInfo func() []string

	// running counts commands currently executing, for overload
	// shedding against gdb.Policy.MaxConcurrent.
	running atomic.Int64

	mu       sync.Mutex
	ln       net.Listener          // guarded by mu
	conns    map[net.Conn]struct{} // guarded by mu
	draining bool                  // guarded by mu
	shutdown bool                  // guarded by mu

	// inflight counts commands between dispatch and reply flush; Shutdown
	// drains it before closing connections.
	inflight sync.WaitGroup
	// baseCtx parents every query's context; cancelled when a drain
	// times out (or on hard Close) to abort in-flight fixpoints.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// start anchors INFO's uptime_seconds line.
	start time.Time
}

// NewServer wraps a database.
func NewServer(db *gdb.DB) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{DB: db, conns: map[net.Conn]struct{}{}, baseCtx: ctx, baseCancel: cancel, start: time.Now()}
}

// Listen binds the address and returns the bound address (useful with
// ":0" for tests).
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("resp: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr(), nil
}

// Serve accepts connections until Close. Call after Listen.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("resp: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			down := s.shutdown || s.draining
			s.mu.Unlock()
			if down {
				return nil
			}
			return err
		}
		s.mu.Lock()
		over := s.MaxConns > 0 && len(s.conns) >= s.MaxConns
		if !over {
			s.conns[conn] = struct{}{}
		}
		s.mu.Unlock()
		if over {
			obs.RespConnsRefused.Inc()
			go s.refuse(conn)
			continue
		}
		obs.RespConnsTotal.Inc()
		obs.RespConnsOpen.Add(1)
		go s.handle(conn)
	}
}

// refuse turns away a connection beyond MaxConns with an explicit
// error reply, like Redis's maxclients behaviour.
func (s *Server) refuse(conn net.Conn) {
	defer conn.Close()
	w := bufio.NewWriter(conn)
	//lint:ignore errdrop best-effort courtesy reply on a connection we refuse either way
	_ = Write(w, Errorf("max number of clients reached"))
	_ = w.Flush()
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if _, err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Close stops the server immediately: in-flight queries are cancelled,
// the listener and every open connection are closed. Use Shutdown for a
// graceful stop that drains in-flight queries first.
func (s *Server) Close() {
	s.baseCancel()
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Shutdown stops the server gracefully: it stops accepting connections,
// waits for in-flight commands to finish and their replies to be
// flushed, then closes the remaining (idle) connections. If ctx expires
// before the drain completes, in-flight queries are cancelled through
// the execution governor, connections are force-closed, and the drain
// error is returned — the only case in which Shutdown is non-nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.shutdown || s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		// Drain timed out: abort the governed queries so their
		// goroutines unwind promptly, then force-close below.
		s.baseCancel()
		drainErr = fmt.Errorf("resp: shutdown drain: %w", ctx.Err())
	}

	s.mu.Lock()
	s.shutdown = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.baseCancel()
	return drainErr
}

func (s *Server) logf(format string, args ...any) {
	if s.Logger != nil {
		s.Logger.Printf(format, args...)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		// A panic on this connection's goroutine must cost only this
		// connection: log it and fall through to the close below.
		if r := recover(); r != nil {
			s.logf("resp: panic on %v: %v\n%s", conn.RemoteAddr(), r, debug.Stack())
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		obs.RespConnsOpen.Add(-1)
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if s.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.IdleTimeout)); err != nil {
				return
			}
		}
		args, err := s.readCommand(r)
		if err != nil {
			var ne net.Error
			switch {
			case err == io.EOF, errors.Is(err, net.ErrClosed):
			case errors.As(err, &ne) && ne.Timeout():
				s.logf("resp: closing idle connection %v", conn.RemoteAddr())
			default:
				// Malformed input: tell the client why before closing,
				// like Redis's protocol errors.
				s.logf("resp: read: %v", err)
				//lint:ignore errdrop best-effort error reply on a connection we are about to close
				_ = Write(w, Errorf("protocol error: %v", err))
				_ = w.Flush()
			}
			return
		}
		if len(args) == 0 {
			//lint:ignore errdrop best-effort error reply on a connection we are about to close
			_ = Write(w, Errorf("protocol error"))
			_ = w.Flush()
			return
		}
		// SYNC hands the whole connection to the replication hub: the
		// stream is long-lived and push-only, so it lives outside the
		// inflight drain group (Shutdown would otherwise wait on it
		// forever) and is torn down through the base context instead.
		if strings.EqualFold(args[0], "SYNC") && s.SyncHandler != nil {
			// The stream writes on its own cadence; the idle read
			// deadline no longer applies. A deadline-clear failure
			// surfaces as a stream error inside the handler.
			_ = conn.SetReadDeadline(time.Time{})
			s.SyncHandler(s.baseCtx, args, conn, r, w)
			return
		}
		// Register the command with the drain group before dispatching;
		// commands arriving after a drain started are refused.
		s.mu.Lock()
		if s.draining || s.shutdown {
			s.mu.Unlock()
			//lint:ignore errdrop best-effort refusal on a draining server; the connection closes either way
			_ = Write(w, Errorf("server is shutting down"))
			_ = w.Flush()
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		reply, quit := s.dispatch(args)
		werr := Write(w, reply)
		if werr == nil {
			werr = w.Flush()
		}
		s.inflight.Done()
		if werr != nil || quit {
			return
		}
	}
}

// readCommand reads either a RESP array command or, like Redis, an
// inline command: a plain text line of space-separated words (handy for
// testing with netcat / telnet). Inline lines are bounded by
// maxInlineLen so a newline-less byte stream cannot grow server memory
// without bound.
func (s *Server) readCommand(r *bufio.Reader) ([]string, error) {
	b, err := r.Peek(1)
	if err != nil {
		return nil, err
	}
	if b[0] == byte(Array) {
		req, err := Read(r)
		if err != nil {
			return nil, err
		}
		return Strings(req)
	}
	for {
		line, err := readBoundedLine(r, maxInlineLen)
		if err != nil {
			return nil, err
		}
		if fields := strings.Fields(line); len(fields) > 0 {
			return fields, nil
		}
		// Like Redis, empty inline lines are ignored.
	}
}

// readBoundedLine reads up to and including '\n', failing once the
// line exceeds limit bytes; at most limit+1 bytes are ever buffered.
func readBoundedLine(r *bufio.Reader, limit int) (string, error) {
	var buf []byte
	for {
		chunk, err := r.ReadSlice('\n')
		if len(buf)+len(chunk) > limit {
			return "", fmt.Errorf("inline request too large (> %d bytes)", limit)
		}
		buf = append(buf, chunk...)
		switch err {
		case nil:
			return string(buf), nil
		case bufio.ErrBufferFull:
			// Line continues past the reader's buffer; keep going.
		default:
			return "", err
		}
	}
}

// dispatch executes one command behind the server's failure bulkhead:
// a panic in any handler is recovered, logged, and turned into an
// error reply on just this command, and commands that execute real
// work are shed with a BUSY error once gdb.Policy.MaxConcurrent of
// them are already running — bounded degradation instead of unbounded
// queueing.
func (s *Server) dispatch(args []string) (reply Value, quit bool) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("resp: panic in %s handler: %v\n%s", strings.ToUpper(args[0]), r, debug.Stack())
			reply, quit = Errorf("internal error: command %s failed: %v", strings.ToUpper(args[0]), r), false
		}
	}()
	if err := fault.Inject(FPDispatch); err != nil {
		return Errorf("%v", err), false
	}
	obs.RespCommands.Inc()
	cmdStart := time.Now()
	defer func() {
		obs.RespCmdLatency(cmdMetricName(args[0])).Observe(time.Since(cmdStart).Microseconds())
	}()
	if !lightCommand(args[0]) {
		if limit := s.DB.Policy().MaxConcurrent; limit > 0 {
			if s.running.Add(1) > int64(limit) {
				s.running.Add(-1)
				obs.RespBusyShed.Inc()
				return Busyf("server is overloaded (%d commands running), try again later", limit), false
			}
			defer s.running.Add(-1)
		}
	}
	return s.execute(args)
}

// cmdMetricName normalizes a client-supplied command word into the
// fixed label set of the per-command latency histograms; anything
// outside the command table collapses to "other" so unknown commands
// cannot grow the metrics registry without bound.
func cmdMetricName(cmd string) string {
	c := strings.ToLower(cmd)
	switch c {
	case "ping", "echo", "quit", "command", "info", "slowlog",
		"replconf", "sync",
		"graph.query", "graph.explain", "graph.stats", "graph.dump",
		"graph.restore", "graph.profile", "graph.save", "graph.delete",
		"graph.list":
		return c
	}
	return "other"
}

// lightCommand reports commands cheap enough to bypass overload
// shedding, so health checks and diagnostics (INFO, SLOWLOG) keep
// answering under load — exactly when they are most needed.
func lightCommand(cmd string) bool {
	switch strings.ToUpper(cmd) {
	case "PING", "ECHO", "QUIT", "COMMAND", "INFO", "SLOWLOG", "REPLCONF":
		return true
	}
	return false
}

// execute runs one command.
func (s *Server) execute(args []string) (reply Value, quit bool) {
	cmd := strings.ToUpper(args[0])
	switch cmd {
	case "PING":
		if len(args) > 1 {
			return Bulk(args[1]), false
		}
		return Simple("PONG"), false
	case "ECHO":
		if len(args) != 2 {
			return Errorf("wrong number of arguments for ECHO"), false
		}
		return Bulk(args[1]), false
	case "QUIT":
		return OK(), true
	case "COMMAND":
		return Arr(), false
	case "REPLCONF":
		// Accepted for wire compatibility with Redis replicas; the
		// stream state this server needs travels in SYNC itself.
		return OK(), false
	case "SYNC":
		// Reached only when no SyncHandler is installed (handle routes
		// the command to the hub before dispatch otherwise).
		return Errorf("replication is not enabled on this server"), false
	case "INFO":
		if len(args) > 2 {
			return Errorf("usage: INFO [section]"), false
		}
		section := ""
		if len(args) == 2 {
			section = strings.ToLower(args[1])
		}
		return s.info(section), false
	case "SLOWLOG":
		return s.slowlog(args), false
	case "GRAPH.QUERY":
		if len(args) != 3 {
			return Errorf("usage: GRAPH.QUERY <graph> <query>"), false
		}
		res, err := s.DB.QueryContext(s.baseCtx, args[1], args[2])
		if err != nil {
			return Errorf("%v", err), false
		}
		return encodeResult(res), false
	case "GRAPH.EXPLAIN":
		if len(args) != 3 {
			return Errorf("usage: GRAPH.EXPLAIN <graph> <query>"), false
		}
		text, err := s.DB.Explain(args[1], args[2])
		if err != nil {
			return Errorf("%v", err), false
		}
		var lines []Value
		for _, l := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
			lines = append(lines, Bulk(l))
		}
		return Arr(lines...), false
	case "GRAPH.STATS":
		if len(args) != 2 {
			return Errorf("usage: GRAPH.STATS <graph>"), false
		}
		lines, err := s.DB.Stats(args[1])
		if err != nil {
			return Errorf("%v", err), false
		}
		var vals []Value
		for _, l := range lines {
			vals = append(vals, Bulk(l))
		}
		return Arr(vals...), false
	case "GRAPH.DUMP":
		if len(args) != 2 {
			return Errorf("usage: GRAPH.DUMP <graph>"), false
		}
		dump, err := s.DB.Dump(args[1])
		if err != nil {
			return Errorf("%v", err), false
		}
		return Bulk(dump), false
	case "GRAPH.RESTORE":
		if len(args) != 3 {
			return Errorf("usage: GRAPH.RESTORE <graph> <dump>"), false
		}
		if err := s.DB.Restore(args[1], args[2]); err != nil {
			return Errorf("%v", err), false
		}
		return OK(), false
	case "GRAPH.PROFILE":
		if len(args) != 3 {
			return Errorf("usage: GRAPH.PROFILE <graph> <query>"), false
		}
		lines, err := s.DB.Profile(args[1], args[2])
		if err != nil {
			return Errorf("%v", err), false
		}
		var vals []Value
		for _, l := range lines {
			vals = append(vals, Bulk(l))
		}
		return Arr(vals...), false
	case "GRAPH.SAVE":
		if len(args) != 1 {
			return Errorf("usage: GRAPH.SAVE"), false
		}
		if err := s.DB.Save(); err != nil {
			return Errorf("%v", err), false
		}
		return OK(), false
	case "GRAPH.DELETE":
		if len(args) != 2 {
			return Errorf("usage: GRAPH.DELETE <graph>"), false
		}
		ok, err := s.DB.Delete(args[1])
		if err != nil {
			return Errorf("%v", err), false
		}
		if !ok {
			return Errorf("graph %q does not exist", args[1]), false
		}
		return OK(), false
	case "GRAPH.LIST":
		var names []Value
		for _, n := range s.DB.List() {
			names = append(names, Bulk(n))
		}
		return Arr(names...), false
	default:
		return Errorf("unknown command '%s'", args[0]), false
	}
}

// infoSectionNames lists the INFO sections in reply order.
var infoSectionNames = []string{"server", "gdb", "batch", "cache", "kernels", "durability", "replication"}

// infoSection maps an instrument name to its INFO section by the first
// dotted component. Anything outside the known layers (resp.*,
// governor.*, future additions) lands in the server section.
func infoSection(key string) string {
	prefix, _, _ := strings.Cut(key, ".")
	switch prefix {
	case obs.LayerKernel:
		return "kernels"
	case obs.LayerGdb:
		return "gdb"
	case obs.LayerBatch:
		return "batch"
	case obs.LayerCache:
		return "cache"
	case obs.LayerDur:
		return "durability"
	case obs.LayerRepl:
		return "replication"
	}
	return "server"
}

// info renders the INFO reply: Redis-style "# section" headers over
// sorted key:value lines built from a metrics snapshot, plus a few
// static server facts. An empty section argument selects every
// section; an unknown one yields an empty bulk string, like Redis.
func (s *Server) info(section string) Value {
	snap := obs.Default.Snapshot()
	repl := []string{"role:leader"}
	if s.ReplInfo != nil {
		repl = s.ReplInfo()
	}
	lines := map[string][]string{
		"server": {
			fmt.Sprintf("uptime_seconds:%d", int64(time.Since(s.start).Seconds())),
			fmt.Sprintf("graphs:%d", len(s.DB.List())),
		},
		"replication": repl,
	}
	// Snapshot.Keys is sorted, so each section's metric lines come out
	// in one deterministic order.
	for _, k := range snap.Keys() {
		sec := infoSection(k)
		lines[sec] = append(lines[sec], fmt.Sprintf("%s:%d", k, snap[k]))
	}
	var b strings.Builder
	for _, name := range infoSectionNames {
		if section != "" && section != name {
			continue
		}
		b.WriteString("# " + name + "\n")
		for _, l := range lines[name] {
			b.WriteString(l + "\n")
		}
		b.WriteString("\n")
	}
	return Bulk(b.String())
}

// slowlog implements SLOWLOG GET [n] | RESET | LEN against the
// database's slow-query ring. GET entries are newest-first, each a
// fixed seven-element array: id, unix timestamp, duration in
// microseconds, the command args (GRAPH.QUERY form), status, error
// text (empty bulk when none), and governed work spent.
func (s *Server) slowlog(args []string) Value {
	if len(args) < 2 {
		return Errorf("usage: SLOWLOG GET [count] | RESET | LEN")
	}
	sl := s.DB.SlowLog()
	switch strings.ToUpper(args[1]) {
	case "GET":
		n := 0
		if len(args) == 3 {
			v, err := strconv.Atoi(args[2])
			if err != nil || v < 0 {
				return Errorf("SLOWLOG GET count must be a non-negative integer")
			}
			n = v
		} else if len(args) > 3 {
			return Errorf("usage: SLOWLOG GET [count]")
		}
		entries := sl.Entries(n)
		out := make([]Value, len(entries))
		for i, e := range entries {
			out[i] = Arr(
				Int(e.ID),
				Int(e.Time.Unix()),
				Int(e.Duration.Microseconds()),
				Arr(Bulk("GRAPH.QUERY"), Bulk(e.Graph), Bulk(e.Query)),
				Bulk(e.Status),
				Bulk(e.Err),
				Int(e.Work),
			)
		}
		return Arr(out...)
	case "RESET":
		sl.Reset()
		return OK()
	case "LEN":
		return Int(int64(sl.Len()))
	}
	return Errorf("unknown SLOWLOG subcommand '%s'", args[1])
}

// encodeResult renders a query result the way RedisGraph does: a
// three-element array of header, rows, and statistics.
func encodeResult(res *gdb.QueryResult) Value {
	header := make([]Value, len(res.Columns))
	for i, c := range res.Columns {
		header[i] = Bulk(c)
	}
	rows := make([]Value, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]Value, len(row))
		for j, v := range row {
			cells[j] = Int(v)
		}
		rows[i] = Arr(cells...)
	}
	stats := []Value{
		Bulk(fmt.Sprintf("Nodes created: %d", res.NodesCreated)),
		Bulk(fmt.Sprintf("Relationships created: %d", res.EdgesCreated)),
		Bulk(fmt.Sprintf("Rows returned: %d", len(res.Rows))),
	}
	// A PROFILE'd query carries its span tree; it rides in the stats
	// section so the reply keeps the three-element RedisGraph shape.
	for _, l := range res.Profile {
		stats = append(stats, Bulk(l))
	}
	return Arr(Arr(header...), Arr(rows...), Arr(stats...))
}
