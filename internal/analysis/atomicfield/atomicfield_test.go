package atomicfield_test

import (
	"testing"

	"mscfpq/internal/analysis/analysistest"
	"mscfpq/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, atomicfield.Analyzer, "atompos", "atomneg")
}
