// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary used by this
// repository's lint suite (cmd/mscfpq-lint).
//
// The repository builds with the standard library only, so instead of
// depending on x/tools the package provides the same three concepts —
// an Analyzer (a named check with a Run function), a Pass (one
// type-checked package handed to an analyzer), and Diagnostics — plus
// the //lint:ignore suppression convention. Packages are loaded and
// type-checked from source by the loader in load.go.
//
// Suppression policy: a diagnostic may be silenced by a comment of the
// form
//
//	//lint:ignore <analyzer> <reason>
//
// placed either at the end of the flagged line or on its own line
// directly above it. The reason is mandatory: an ignore comment without
// one is itself reported and cannot be suppressed. The policy is
// documented in TESTING.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore comments. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by
	// `mscfpq-lint -help`.
	Doc string

	// DefaultScope lists module-relative package-path prefixes the
	// driver applies the analyzer to (e.g. "internal/matrix"). Empty
	// means every package in the module. Scoping is a driver concern:
	// tests run analyzers on fixture packages regardless of scope.
	DefaultScope []string

	// IgnoreTestFiles drops diagnostics reported in _test.go files.
	IgnoreTestFiles bool

	// Run implements a per-unit check. It reports findings through
	// pass.Reportf and returns an error only for internal failures
	// (never for findings). Exactly one of Run and RunModule is set.
	Run func(*Pass) error

	// RunModule implements a whole-program check that needs every
	// loaded unit at once (cross-package contracts like atomicfield's
	// "atomic somewhere means atomic everywhere"). Diagnostics are
	// mapped back to the unit owning their position for test-file
	// filtering and suppression.
	RunModule func(*ModulePass) error
}

// A Pass is one type-checked package presented to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// A ModulePass is one whole-program analyzer invocation: every loaded
// unit at once, sharing the module's file set and loader.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module
	Units    []*Unit

	// Complete reports whether Units span the whole module. Checks
	// that assert global absence (obscatalog's "this catalog entry is
	// referenced nowhere") must be skipped when the driver loaded only
	// an explicit subset of directories.
	Complete bool

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// AddUnit registers a unit the analyzer loaded on demand (e.g. the obs
// catalog package when it was not among the requested directories), so
// diagnostics inside it still get test-file filtering and suppression.
func (p *ModulePass) AddUnit(u *Unit) { p.Units = append(p.Units, u) }

// Run applies one analyzer to one loaded unit and returns the
// diagnostics that survive test-file filtering and //lint:ignore
// suppression processing, sorted by position.
func Run(a *Analyzer, u *Unit) ([]Diagnostic, error) {
	return RunTracked(a, u, nil)
}

// RunTracked is Run with a suppression-usage tracker: every
// //lint:ignore comment that actually silenced a finding is marked
// used, which is what the driver's -unused-suppressions mode reports
// against.
func RunTracked(a *Analyzer, u *Unit, tr *Tracker) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags := filterTestFiles(a, u.Fset, pass.diags)
	diags = applySuppressions(u, a.Name, diags, tr)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// RunModule applies one whole-program analyzer to a set of units.
// Diagnostics are attributed to the unit whose files contain their
// position (suppressions in that unit apply); positions outside every
// unit pass through unfiltered.
func RunModule(a *Analyzer, m *Module, units []*Unit, complete bool, tr *Tracker) ([]Diagnostic, error) {
	pass := &ModulePass{Analyzer: a, Module: m, Units: units, Complete: complete}
	if err := a.RunModule(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	diags := filterTestFiles(a, m.Fset(), pass.diags)
	byUnit := map[*Unit][]Diagnostic{}
	var orphans []Diagnostic
	for _, d := range diags {
		if u := ownerUnit(pass.Units, m.Fset(), d.Pos); u != nil {
			byUnit[u] = append(byUnit[u], d)
		} else {
			orphans = append(orphans, d)
		}
	}
	out := orphans
	for _, u := range pass.Units {
		if ds, ok := byUnit[u]; ok {
			out = append(out, applySuppressions(u, a.Name, ds, tr)...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// ownerUnit finds the unit one of whose files contains pos.
func ownerUnit(units []*Unit, fset *token.FileSet, pos token.Pos) *Unit {
	tf := fset.File(pos)
	if tf == nil {
		return nil
	}
	for _, u := range units {
		for _, f := range u.Files {
			if fset.File(f.Pos()) == tf {
				return u
			}
		}
	}
	return nil
}

// filterTestFiles drops diagnostics in _test.go files when the
// analyzer asks for it.
func filterTestFiles(a *Analyzer, fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	if !a.IgnoreTestFiles {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !strings.HasSuffix(fset.Position(d.Pos).Filename, "_test.go") {
			kept = append(kept, d)
		}
	}
	return kept
}

// A Suppression is one parsed //lint:ignore comment.
type Suppression struct {
	// Analyzer is the name the comment targets.
	Analyzer string
	// Reason is the mandatory justification (empty = malformed).
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
}

// A Tracker records which //lint:ignore comments actually silenced a
// finding across a lint run, keyed by comment position.
type Tracker struct {
	used map[token.Pos]bool
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{used: map[token.Pos]bool{}} }

// Used reports whether the suppression at pos silenced any finding.
func (t *Tracker) Used(pos token.Pos) bool { return t != nil && t.used[pos] }

func (t *Tracker) mark(pos token.Pos) {
	if t != nil {
		t.used[pos] = true
	}
}

// UnitSuppressions returns every //lint:ignore comment in the unit, in
// file order.
func UnitSuppressions(u *Unit) []Suppression {
	var out []Suppression
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if s, ok := parseSuppression(c); ok {
					out = append(out, s)
				}
			}
		}
	}
	return out
}

// parseSuppression parses one comment as a //lint:ignore directive.
func parseSuppression(c *ast.Comment) (Suppression, bool) {
	text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
	if !ok {
		return Suppression{}, false
	}
	fields := strings.Fields(text)
	s := Suppression{Pos: c.Pos()}
	if len(fields) > 0 {
		s.Analyzer = fields[0]
	}
	if len(fields) > 1 {
		s.Reason = strings.TrimSpace(strings.Join(fields[1:], " "))
	}
	return s, true
}

// suppressionsByLine maps "filename:line" of the code a comment covers
// to the suppressions in force there. A trailing comment covers its own
// line; a standalone comment covers the line below its last line.
func suppressionsByLine(u *Unit) map[string][]Suppression {
	out := map[string][]Suppression{}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s, ok := parseSuppression(c)
				if !ok {
					continue
				}
				p := u.Fset.Position(c.Pos())
				end := u.Fset.Position(c.End())
				// The comment covers its own starting line (trailing
				// form) and the first line after it (standalone form).
				for _, line := range []int{p.Line, end.Line + 1} {
					key := fmt.Sprintf("%s:%d", p.Filename, line)
					out[key] = append(out[key], s)
				}
			}
		}
	}
	return out
}

// applySuppressions removes diagnostics covered by a well-formed
// //lint:ignore comment for this analyzer and reports malformed
// (reason-less) ignore comments that tried to cover a finding.
func applySuppressions(u *Unit, name string, diags []Diagnostic, tr *Tracker) []Diagnostic {
	sup := suppressionsByLine(u)
	if len(sup) == 0 {
		return diags
	}
	var out []Diagnostic
	badReported := map[token.Pos]bool{}
	for _, d := range diags {
		p := u.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, s := range sup[key] {
			if s.Analyzer != name {
				continue
			}
			if s.Reason == "" {
				if !badReported[s.Pos] {
					badReported[s.Pos] = true
					out = append(out, Diagnostic{
						Pos:      s.Pos,
						Analyzer: name,
						Message:  "//lint:ignore requires a reason: //lint:ignore " + name + " <why this is safe>",
					})
				}
				continue
			}
			matched = true
			tr.mark(s.Pos)
		}
		if !matched {
			out = append(out, d)
		}
	}
	return out
}
