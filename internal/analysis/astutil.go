package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// IsGovernorType reports whether t is one of the execution-governance
// types every kernel loop is expected to poll: context.Context or
// *exec.Run (matched by package-path suffix so fixture modules work).
func IsGovernorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if IsContextType(t) {
		return true
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/exec") && obj.Name() == "Run"
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex (rw tells
// which).
func IsMutexType(t types.Type) (ok, rw bool) {
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false, false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// HasWriteMethod reports whether t (or *t) has a Write([]byte) (int,
// error) method — the structural io.Writer check, which also matches
// strings.Builder and bytes.Buffer whose output order is visible.
func HasWriteMethod(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			f, ok := ms.At(i).Obj().(*types.Func)
			if !ok || f.Name() != "Write" {
				continue
			}
			sig, ok := f.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
				continue
			}
			slice, ok := sig.Params().At(0).Type().(*types.Slice)
			if !ok {
				continue
			}
			if b, ok := slice.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// ExprString renders an expression as source text — used to compare
// receiver paths like "idx" or "s.inner" syntactically.
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return ""
	}
	return buf.String()
}

// WalkStack walks the subtree rooted at n, calling fn with each node
// and the stack of its ancestors (outermost first, not including n).
// If fn returns false the node's children are skipped.
func WalkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// CalleeFunc resolves the *types.Func a call invokes (function, method,
// or qualified identifier); nil for builtins, conversions, and calls of
// function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// ConstructedLocals returns local variables initialized from a
// composite literal or new(T) in this scope — values under
// construction that cannot be shared yet. FuncLit bodies are separate
// scopes and are not descended into.
func ConstructedLocals(info *types.Info, scope ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(scope, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			if IsConstruction(assign.Rhs[i]) {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// IsConstruction reports whether e is a fresh allocation: a composite
// literal, &literal, or new(T).
func IsConstruction(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new"
		}
	}
	return false
}

// FirstEscape returns the position where obj first escapes the scope —
// passed to a call, aliased, returned, stored in a composite literal,
// sent on a channel, or address-taken — or token.NoPos if it never
// does. Conservative: any use whose effect on sharing is unclear
// counts as an escape.
func FirstEscape(info *types.Info, scope ast.Node, obj types.Object) token.Pos {
	first := token.NoPos
	WalkStack(scope, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		if escapeContext(info, id, stack) {
			if !first.IsValid() || id.Pos() < first {
				first = id.Pos()
			}
		}
		return true
	})
	return first
}

// escapeContext classifies one use of an identifier by climbing its
// ancestor stack: true when the value (or something aliasing it) can
// become visible outside the current scope at this point.
func escapeContext(info *types.Info, id *ast.Ident, stack []ast.Node) bool {
	var child ast.Node = id
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr, *ast.KeyValueExpr:
			child = p
		case *ast.SelectorExpr:
			if p.X != child {
				return false
			}
			child = p
		case *ast.IndexExpr:
			if p.X != child {
				return false // used as an index: a read
			}
			child = p
		case *ast.StarExpr:
			child = p
		case *ast.UnaryExpr:
			// Taking the address creates an alias that may flow anywhere.
			return p.Op == token.AND
		case *ast.CallExpr:
			if p.Fun == child {
				// Calling a method on the value: the receiver may be
				// retained — conservative escape. (Climbing reached here
				// through the p.Fun selector only for method values.)
				return true
			}
			// An argument. Pure builtins neither retain nor publish.
			switch builtinName(info, p) {
			case "len", "cap", "delete", "append", "copy":
				return false
			}
			return true
		case *ast.AssignStmt:
			for _, l := range p.Lhs {
				if l == child {
					return false // the lvalue being written, not an escape
				}
			}
			for _, r := range p.Rhs {
				if r == child {
					return aliasingType(info, child)
				}
			}
			return false
		case *ast.ValueSpec:
			for _, v := range p.Values {
				if v == child {
					return aliasingType(info, child)
				}
			}
			return false
		case *ast.ReturnStmt, *ast.CompositeLit:
			return true
		case *ast.SendStmt:
			return p.Value == child
		case *ast.IncDecStmt:
			return false
		default:
			if _, isExpr := p.(ast.Expr); isExpr {
				// Arithmetic, comparison, conversion operands: the value
				// itself does not leak through these, keep climbing only
				// for wrappers handled above.
				return false
			}
			return false
		}
	}
	return false
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := info.Uses[id].(*types.Builtin); ok {
		return id.Name
	}
	return ""
}

// aliasingType reports whether copying e's value still shares memory
// with the original (pointers, maps, slices, chans, funcs, interfaces).
func aliasingType(info *types.Info, child ast.Node) bool {
	e, ok := child.(ast.Expr)
	if !ok {
		return true
	}
	t := info.TypeOf(e)
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// ReferencesObject reports whether the subtree mentions the object.
func ReferencesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
