// Command gsql-server runs the graph database over the RESP protocol —
// the reproduction of the paper's CFPQ-extended RedisGraph.
//
// Usage:
//
//	gsql-server -addr :6380
//	gsql-server -addr :6380 -load social=social.txt -seed core@0.5
//
// Clients speak RESP: GRAPH.QUERY <name> <cypher>, GRAPH.EXPLAIN,
// GRAPH.DELETE, GRAPH.LIST, PING. See cmd/gsql-cli for an interactive
// client.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mscfpq/internal/dataset"
	"mscfpq/internal/gdb"
	"mscfpq/internal/graph"
	"mscfpq/internal/obs"
	"mscfpq/internal/repl"
	"mscfpq/internal/resp"
)

type listFlag []string

func (l *listFlag) String() string     { return strings.Join(*l, ",") }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gsql-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr          = flag.String("addr", ":6380", "listen address")
		queryTimeout  = flag.Duration("query-timeout", 0, "default per-query timeout (0 = none; per-query TIMEOUT clause overrides)")
		maxWork       = flag.Int64("max-work", 0, "per-query work budget in relation entries produced (0 = unlimited)")
		slowQuery     = flag.Duration("slow-query", 0, "log queries at or above this duration (0 = only aborted queries)")
		drainTimeout  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain deadline")
		dataDir       = flag.String("data-dir", "", "directory for snapshots and the op journal (empty = in-memory only)")
		saveInterval  = flag.Duration("save-interval", 0, "auto-snapshot interval for -data-dir stores (0 = only GRAPH.SAVE)")
		maxConcurrent = flag.Int("max-concurrent", 0, "commands allowed to execute at once before BUSY shedding (0 = unlimited)")
		cacheBytes    = flag.Int64("cache-bytes", 64<<20, "byte budget of the versioned query-result cache (0 = disabled)")
		cacheTTL      = flag.Duration("cache-ttl", 0, "expire cached query results after this age (0 = until evicted/invalidated)")
		batchWindow   = flag.Duration("batch-window", 0, "admission window for coalescing concurrent same-grammar CFPQ queries into one shared fixpoint (0 = disabled; a lone query never waits)")
		batchMaxSrc   = flag.Int("batch-max-sources", 0, "flush a coalesced batch early once its deduplicated source union reaches this size (0 = uncapped)")
		maxConns      = flag.Int("max-conns", 0, "simultaneous client connections (0 = unlimited)")
		idleTimeout   = flag.Duration("idle-timeout", 0, "close connections idle for this long (0 = never)")
		metricsAddr   = flag.String("metrics-addr", "", "HTTP address serving the metrics snapshot as JSON (empty = disabled)")
		metricsDump   = flag.Duration("metrics-dump", 0, "log a metrics snapshot this often (0 = never)")
		replicaOf     = flag.String("replica-of", "", "host:port of a leader to replicate; this server becomes a read-only follower")
		loads         listFlag
		seeds         listFlag
	)
	flag.Var(&loads, "load", "name=path of a graph file to load (repeatable)")
	flag.Var(&seeds, "seed", "dataset graph to generate, name[@scale] (repeatable)")
	flag.Parse()

	if *replicaOf != "" {
		if len(loads) > 0 || len(seeds) > 0 {
			return fmt.Errorf("-replica-of is incompatible with -load/-seed: a follower's graphs come from the leader")
		}
		// A follower's snapshot rotation is driven by the leader's
		// stream; an out-of-band auto-save would desynchronize the
		// mirrored file sequence.
		*saveInterval = 0
	}
	db, err := buildDB(*dataDir, loads, seeds, log.Default())
	if err != nil {
		return err
	}
	if *replicaOf != "" {
		db.SetReplicaSource(*replicaOf)
	}
	db.SetPolicy(gdb.Policy{
		DefaultTimeout:  *queryTimeout,
		MaxWork:         *maxWork,
		SlowQuery:       *slowQuery,
		MaxConcurrent:   *maxConcurrent,
		SaveInterval:    *saveInterval,
		CacheMaxBytes:   *cacheBytes,
		CacheTTL:        *cacheTTL,
		BatchWindow:     *batchWindow,
		BatchMaxSources: *batchMaxSrc,
		Log:             log.Default(),
	})
	srv := resp.NewServer(db)
	srv.Logger = log.Default()
	srv.MaxConns = *maxConns
	srv.IdleTimeout = *idleTimeout

	// Replication roles: a follower runs a stream loop pulling from its
	// leader and serves reads only; a durable leader answers SYNC so
	// followers can attach. An in-memory leader has no journal to ship
	// and stays standalone.
	var replica *repl.Replica
	replCtx, replStop := context.WithCancel(context.Background())
	defer replStop()
	if *replicaOf != "" {
		replica = repl.New(db, *replicaOf)
		srv.ReplInfo = replica.InfoLines
	} else if db.Durable() {
		hub, err := repl.NewHub(db)
		if err != nil {
			return err
		}
		srv.SyncHandler = hub.HandleSync
		srv.ReplInfo = hub.InfoLines
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	log.Printf("gsql-server listening on %s", bound)
	if replica != nil {
		go func() {
			// Run retries internally and returns only the shutdown cancellation.
			_ = replica.Run(replCtx)
		}()
		log.Printf("gsql-server replicating from %s", *replicaOf)
	}

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listen %s: %w", *metricsAddr, err)
		}
		log.Printf("gsql-server metrics on http://%s/", mln.Addr())
		go func() {
			// The metrics endpoint is best-effort: its failure must not
			// take down the query server.
			if err := http.Serve(mln, obs.Handler(obs.Default)); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}
	if *metricsDump > 0 {
		go func() {
			for range time.Tick(*metricsDump) {
				out, err := obs.MarshalSnapshot(obs.Default.Snapshot())
				if err != nil {
					log.Printf("metrics dump: %v", err)
					continue
				}
				log.Printf("metrics\n%s", out)
			}
		}()
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight queries. The
	// process exits non-zero only if the drain misses its deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		log.Printf("gsql-server shutting down (drain timeout %s)", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := srv.Shutdown(drainCtx)
		<-serveErr // Serve returns nil once the listener closed for drain
		if err != nil {
			return err
		}
		// A durable store cuts a final snapshot and detaches cleanly, so
		// the next boot recovers from the snapshot instead of a long
		// journal replay. A follower skips the snapshot — its rotation
		// is lockstep with the leader's — and just detaches.
		replStop()
		if db.Durable() {
			if db.ReplicaSource() == "" {
				if err := db.Save(); err != nil {
					return fmt.Errorf("final snapshot: %w", err)
				}
			}
			if err := db.Close(); err != nil {
				return err
			}
		}
		log.Printf("gsql-server stopped cleanly")
		return nil
	}
}

// buildDB assembles the database: durable (recovered from dataDir's
// snapshots and journal) when dataDir is set, in-memory otherwise.
// -load and -seed graphs are provisioned in memory on every boot and
// are not journaled, but a snapshot (GRAPH.SAVE, -save-interval, or
// the final one at graceful shutdown) captures the full image, so they
// persist from the first snapshot on.
func buildDB(dataDir string, loads, seeds []string, logger *log.Logger) (*gdb.DB, error) {
	var db *gdb.DB
	if dataDir != "" {
		var err error
		db, err = gdb.Open(dataDir)
		if err != nil {
			return nil, err
		}
		logger.Printf("recovered %d graph(s) from %s", len(db.List()), dataDir)
	} else {
		db = gdb.New()
	}
	for _, spec := range loads {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return nil, fmt.Errorf("bad -load %q (want name=path)", spec)
		}
		g, err := graph.LoadFile(path)
		if err != nil {
			return nil, err
		}
		db.AddGraph(name, g)
		logger.Printf("loaded %s: %d vertices, %d edges", name, g.NumVertices(), g.NumEdges())
	}
	for _, spec := range seeds {
		name, scaleStr, hasScale := strings.Cut(spec, "@")
		scale := 1.0
		if hasScale {
			var err error
			scale, err = strconv.ParseFloat(scaleStr, 64)
			if err != nil || scale <= 0 {
				return nil, fmt.Errorf("bad -seed scale %q", scaleStr)
			}
		}
		s, err := dataset.ByName(name)
		if err != nil {
			return nil, err
		}
		g := dataset.Generate(dataset.Scaled(s, scale))
		db.AddGraph(name, g)
		logger.Printf("seeded %s: %d vertices, %d edges", name, g.NumVertices(), g.NumEdges())
	}
	return db, nil
}
