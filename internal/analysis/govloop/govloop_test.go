package govloop_test

import (
	"testing"

	"mscfpq/internal/analysis/analysistest"
	"mscfpq/internal/analysis/govloop"
)

func TestGovloop(t *testing.T) {
	analysistest.Run(t, govloop.Analyzer, "govpos", "govneg")
}
