// Package analysistest runs an analyzer over fixture packages and
// compares its diagnostics against `// want` comments, mirroring the
// conventions of golang.org/x/tools/go/analysis/analysistest (which the
// repository cannot depend on — see internal/analysis).
//
// Fixture packages live under the analyzer's testdata/src/<pkg>
// directory. A line expecting diagnostics carries a trailing comment
//
//	x.Bad() // want `regexp` `another regexp`
//
// with one quoted (double-quoted or backquoted) regular expression per
// expected diagnostic on that line. The test fails on any diagnostic
// with no matching want, and on any want with no matching diagnostic.
// Fixtures are loaded with the module-aware loader, so they may import
// the repository's own packages (e.g. mscfpq/internal/exec) alongside
// the standard library.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mscfpq/internal/analysis"
)

// Run applies the analyzer to each fixture package testdata/src/<pkg>
// (relative to the calling test's directory) and checks the resulting
// diagnostics against the fixtures' want comments. Every listed
// package is registered as importable before loading, so fixtures may
// import each other by their package argument (e.g. a stand-in
// "internal/fault" package). A per-unit analyzer runs once per fixture
// package; a module analyzer (RunModule set) runs once over all of
// them, with wants checked across the whole set.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	m, err := analysis.LoadModule(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	m.Extra = map[string]string{}
	dirs := make([]string, len(pkgs))
	for i, pkg := range pkgs {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		dirs[i] = dir
		m.Extra[pkg] = dir
	}
	var units []*analysis.Unit
	for i, pkg := range pkgs {
		u, err := m.LoadFixture(pkg, dirs[i])
		if err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", pkg, err)
		}
		units = append(units, u)
	}
	if a.RunModule != nil {
		diags, err := analysis.RunModule(a, m, units, true, nil)
		if err != nil {
			t.Fatalf("analysistest: running %s: %v", a.Name, err)
		}
		check(t, units, diags)
		return
	}
	for i, u := range units {
		diags, err := analysis.Run(a, u)
		if err != nil {
			t.Errorf("analysistest: running %s on %s: %v", a.Name, pkgs[i], err)
			continue
		}
		check(t, []*analysis.Unit{u}, diags)
	}
}

// want is one expected diagnostic: a regexp at a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func check(t *testing.T, units []*analysis.Unit, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, u := range units {
		ws, err := collectWants(u)
		if err != nil {
			t.Error(err)
			return
		}
		wants = append(wants, ws...)
	}
	fset := units[0].Fset
	for _, d := range diags {
		p := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.used || w.file != p.Filename || w.line != p.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", p.Filename, p.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// collectWants parses `// want` comments out of the unit's files. The
// expectation is attached to the line the comment starts on.
func collectWants(u *analysis.Unit) ([]*want, error) {
	var wants []*want
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				loc := wantRE.FindStringIndex(c.Text)
				if loc == nil {
					continue
				}
				text := c.Text[loc[1]:]
				p := u.Fset.Position(c.Pos())
				patterns, err := splitPatterns(text)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", p.Filename, p.Line, err)
				}
				if len(patterns) == 0 {
					return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", p.Filename, p.Line)
				}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", p.Filename, p.Line, err)
					}
					wants = append(wants, &want{file: p.Filename, line: p.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// wantRE locates the expectation marker; it may sit mid-comment so a
// line can carry both an analyzer annotation and a want (e.g. a
// `guarded by` comment that is itself expected to be diagnosed).
var wantRE = regexp.MustCompile(`\bwant\s`)

var patternRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// splitPatterns extracts the quoted regexps of one want comment.
func splitPatterns(text string) ([]string, error) {
	var out []string
	for _, raw := range patternRE.FindAllString(text, -1) {
		if strings.HasPrefix(raw, "`") {
			out = append(out, strings.Trim(raw, "`"))
			continue
		}
		s, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("unquoting %s: %v", raw, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
