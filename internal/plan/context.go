package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mscfpq/internal/algebra"
	"mscfpq/internal/cfpq"
	"mscfpq/internal/cypher"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// PathCtx is the paper's path pattern context (Section 4.3.1): the
// global per-query storage mapping every named path pattern to its
// algebraic expression and its relation/source matrices. Resolution is
// backed by a cfpq.Index, so the optimized multiple-source algorithm
// (Algorithm 3) caches work across the CFPQTraverse operations of one
// plan — and across plans if the context is reused.
type PathCtx struct {
	g     *graph.Graph
	exprs map[string]algebra.Expr // translated named patterns (for EXPLAIN)
	wcnf  *grammar.WCNF
	idx   *cfpq.Index

	// mu serializes resolution: contexts are shared across the queries
	// of one graph (the index cache), and cfpq.Index is not safe for
	// concurrent mutation.
	mu sync.Mutex
	// pending accumulates sources noted by Algorithm 8 during expression
	// evaluation until the next resolution round.
	pending map[string]*matrix.Vector
}

// NewPathCtx compiles the PATH PATTERN declarations against a graph.
// pats may be empty: queries without references then evaluate with a
// nil-resolution context.
func NewPathCtx(g *graph.Graph, pats []cypher.NamedPathPattern) (*PathCtx, error) {
	ctx := &PathCtx{g: g, exprs: map[string]algebra.Expr{}, pending: map[string]*matrix.Vector{}}
	if len(pats) == 0 {
		return ctx, nil
	}
	for _, p := range pats {
		e, err := TranslatePathExpr(p.Expr)
		if err != nil {
			return nil, err
		}
		if _, dup := ctx.exprs[p.Name]; dup {
			return nil, fmt.Errorf("plan: duplicate path pattern %q", p.Name)
		}
		ctx.exprs[p.Name] = e
	}
	cf, err := PatternsToGrammar(pats)
	if err != nil {
		return nil, err
	}
	w, err := grammar.ToWCNF(cf)
	if err != nil {
		return nil, err
	}
	ctx.wcnf = w
	idx, err := cfpq.NewIndex(g, w)
	if err != nil {
		return nil, err
	}
	ctx.idx = idx
	return ctx, nil
}

// WarmSuccessor builds the context for a NEWER snapshot of the same
// logical graph, reusing this context's compiled expressions and
// grammar and seeding the new multiple-source index from the
// accumulated relations (cfpq.NewIndexWarm). Sound only when g grew
// out of ctx's graph by edge/vertex additions — exactly the write
// path's guarantee, which the version-keyed context cache in gdb
// enforces by only warm-starting along a store's version lineage.
// Contexts without an index (no declarations) warm to a fresh empty
// context.
func (ctx *PathCtx) WarmSuccessor(g *graph.Graph) (*PathCtx, error) {
	next := &PathCtx{g: g, exprs: ctx.exprs, wcnf: ctx.wcnf, pending: map[string]*matrix.Vector{}}
	if ctx.idx == nil {
		return next, nil
	}
	idx, err := cfpq.NewIndexWarm(g, ctx.wcnf, ctx.idx)
	if err != nil {
		return nil, err
	}
	next.idx = idx
	return next, nil
}

// CtxKey returns the canonical identity of a PATH PATTERN declaration
// set: reuse a PathCtx (and its warmed index) only for queries whose
// key matches and whose graph is unchanged.
func CtxKey(pats []cypher.NamedPathPattern) string {
	parts := make([]string, len(pats))
	for i, p := range pats {
		parts[i] = p.Name + "=" + p.Expr.String()
	}
	return strings.Join(parts, ";")
}

// Names returns the declared pattern names, sorted.
func (ctx *PathCtx) Names() []string {
	out := make([]string, 0, len(ctx.exprs))
	for n := range ctx.exprs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Expr returns the algebraic expression of a named pattern.
func (ctx *PathCtx) Expr(name string) (algebra.Expr, bool) {
	e, ok := ctx.exprs[name]
	return e, ok
}

// refMatrix returns the current relation matrix of a named pattern.
func (ctx *PathCtx) refMatrix(name string) (*matrix.Bool, error) {
	if ctx.idx == nil {
		return nil, fmt.Errorf("plan: reference ~%s outside any PATH PATTERN context", name)
	}
	id := ctx.wcnf.NontermID(name)
	if id < 0 {
		return nil, fmt.Errorf("plan: unknown path pattern ~%s", name)
	}
	return ctx.idx.Relation(id), nil
}

// noteRefSources buffers newly requested sources for a named pattern.
func (ctx *PathCtx) noteRefSources(name string, src *matrix.Vector) {
	if src.Empty() {
		return
	}
	cur := ctx.pending[name]
	if cur == nil {
		ctx.pending[name] = src.Clone()
		return
	}
	cur.UnionInPlace(src)
}

// resolvePending runs the multiple-source engine for all buffered
// sources under the given governor (nil = ungoverned); reports whether
// anything new was computed.
func (ctx *PathCtx) resolvePending(run *exec.Run) (bool, error) {
	if len(ctx.pending) == 0 {
		return false, nil
	}
	byNT := map[int]*matrix.Vector{}
	for name, src := range ctx.pending {
		id := ctx.wcnf.NontermID(name)
		if id < 0 {
			return false, fmt.Errorf("plan: unknown path pattern ~%s", name)
		}
		// Skip sources the index already processed.
		fresh := src.Clone()
		fresh.DiffInPlace(ctx.idx.ProcessedSources(id))
		if !fresh.Empty() {
			byNT[id] = fresh
		}
	}
	ctx.pending = map[string]*matrix.Vector{}
	if len(byNT) == 0 {
		return false, nil
	}
	if _, err := ctx.idx.MultiSourceSmartFrom(byNT, exec.WithRun(run)); err != nil {
		return false, err
	}
	return true, nil
}

// EvalResolved evaluates an algebraic expression, alternating evaluation
// (which notes reference sources via Algorithm 8) with multiple-source
// resolution until the noted source sets stop growing. Expressions
// without references evaluate in a single pass.
func (ctx *PathCtx) EvalResolved(expr algebra.Expr, env algebra.Env) (*matrix.Bool, error) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	// The environment's governor (if any) also drives the nested
	// multiple-source resolutions, so one per-query context and budget
	// covers expression evaluation and index growth alike.
	var run *exec.Run
	if g, ok := env.(algebra.Governed); ok {
		run = g.ExecRun()
	}
	for {
		m, err := algebra.Eval(expr, env)
		if err != nil {
			return nil, err
		}
		progressed, err := ctx.resolvePending(run)
		if err != nil {
			return nil, err
		}
		if !progressed {
			return m, nil
		}
	}
}

// Env adapts a graph plus a PathCtx to algebra.Env and adds the
// property access plan filters need.
type Env struct {
	G     *graph.Graph
	Ctx   *PathCtx
	Props PropStore // may be nil: property predicates then fail

	// Run is the per-query execution governor; nil evaluates
	// ungoverned. Plan.ExecuteWith installs it for the duration of one
	// execution.
	Run *exec.Run

	anyEdge *matrix.Bool // cached union adjacency
}

// PropStore gives filters access to node properties and is implemented
// by the database storage layer.
type PropStore interface {
	// PropEquals reports whether node v has property key equal to val.
	PropEquals(v int, key string, val cypher.Value) bool
}

// NewEnv builds an evaluation environment.
func NewEnv(g *graph.Graph, ctx *PathCtx, props PropStore) *Env {
	return &Env{G: g, Ctx: ctx, Props: props}
}

// ExecRun implements algebra.Governed.
func (e *Env) ExecRun() *exec.Run { return e.Run }

// Vertices implements algebra.Env.
func (e *Env) Vertices() int { return e.G.NumVertices() }

// EdgeMatrix implements algebra.Env.
func (e *Env) EdgeMatrix(label string) *matrix.Bool { return e.G.EdgeMatrix(label) }

// VertexMatrix implements algebra.Env.
func (e *Env) VertexMatrix(label string) *matrix.Bool { return e.G.VertexMatrix(label) }

// AnyEdgeMatrix implements algebra.Env.
func (e *Env) AnyEdgeMatrix() *matrix.Bool {
	if e.anyEdge == nil {
		e.anyEdge = e.G.AdjacencyUnion(false)
	}
	return e.anyEdge
}

// RefMatrix implements algebra.Env.
func (e *Env) RefMatrix(name string) (*matrix.Bool, error) {
	if e.Ctx == nil {
		return nil, fmt.Errorf("plan: reference ~%s without path pattern context", name)
	}
	return e.Ctx.refMatrix(name)
}

// NoteRefSources implements algebra.Env.
func (e *Env) NoteRefSources(name string, src *matrix.Vector) {
	if e.Ctx != nil {
		e.Ctx.noteRefSources(name, src)
	}
}
