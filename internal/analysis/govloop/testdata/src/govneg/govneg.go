// Package govneg holds govloop negatives: loops the analyzer must
// accept.
package govneg

import (
	"context"

	"mscfpq/internal/exec"
)

// polled drains a worklist but checks the context every round.
func polled(ctx context.Context, work []int) error {
	for len(work) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		work = work[1:]
	}
	return nil
}

// charged polls the run's budget inside the fixpoint.
func charged(run *exec.Run, n int) error {
	for changed := true; changed; {
		changed = false
		if err := run.Charge(n); err != nil {
			return err
		}
	}
	return nil
}

// delegated passes the governor to the callee each round, which is the
// repository's governed-kernel idiom.
func delegated(ctx context.Context, work []int) {
	for len(work) > 0 {
		step(ctx, work[0])
		work = work[1:]
	}
}

func step(ctx context.Context, n int) {
	_ = ctx
	_ = n
}

// flat is a single-level index sweep: linear loops are accepted even
// without a poll.
func flat(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	_ = ctx
	return total
}

// ungoverned has no governor in scope at all, so there is nothing to
// poll; the serial kernels are out of the analyzer's scope by design.
func ungoverned(work []int) int {
	sum := 0
	for len(work) > 0 {
		sum += work[0]
		work = work[1:]
	}
	return sum
}
