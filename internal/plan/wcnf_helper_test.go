package plan

import "mscfpq/internal/grammar"

// wcnfFor normalizes a grammar for test assertions.
func wcnfFor(g *grammar.Grammar) (*grammar.WCNF, error) {
	return grammar.ToWCNF(g)
}
