package store

import (
	"testing"
	"time"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/oracle"
)

func testGrammar(t testing.TB) *grammar.WCNF {
	t.Helper()
	g, err := grammar.ParseString("S -> a S b | a b")
	if err != nil {
		t.Fatal(err)
	}
	w, err := grammar.ToWCNF(g)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// cycleChain is the paper's figure-1 shape: an a-cycle feeding a
// b-chain, giving a non-trivial a^n b^n answer set.
func cycleChain() *graph.Graph {
	g := graph.New(0)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "a", 0)
	g.AddEdge(0, "b", 3)
	g.AddEdge(3, "b", 0)
	return g
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(300, 0)
	put := func(k string, bytes int64) { c.Put(Key(k), k, bytes, 1, 1) }
	put("a", 100)
	put("b", 100)
	put("c", 100)
	if _, ok := c.Get(Key("a")); !ok {
		t.Fatalf("a evicted too early")
	}
	// a is now most recent; adding d must evict b (LRU).
	put("d", 100)
	if _, ok := c.Get(Key("b")); ok {
		t.Fatalf("b survived past the byte budget")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(Key(k)); !ok {
			t.Fatalf("%s missing", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 300 || st.Entries != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Oversized values are refused outright.
	put("huge", 1000)
	if _, ok := c.Get(Key("huge")); ok {
		t.Fatalf("oversized value cached")
	}
}

func TestCacheVersionBumpInvalidates(t *testing.T) {
	c := NewCache(1<<20, 0)
	c.Put(Key("v1-a"), 1, 10, 7, 1)
	c.Put(Key("v1-b"), 2, 10, 7, 1)
	c.Put(Key("other-store"), 3, 10, 8, 1)
	// Version bump on store 7: its older entries are swept, store 8
	// untouched.
	c.Put(Key("v2-a"), 4, 10, 7, 2)
	if _, ok := c.Get(Key("v1-a")); ok {
		t.Fatalf("stale version survived the bump")
	}
	if _, ok := c.Get(Key("v1-b")); ok {
		t.Fatalf("stale version survived the bump")
	}
	if _, ok := c.Get(Key("other-store")); !ok {
		t.Fatalf("unrelated store invalidated")
	}
	if _, ok := c.Get(Key("v2-a")); !ok {
		t.Fatalf("current version missing")
	}
	if st := c.Stats(); st.Invalidations != 2 {
		t.Fatalf("invalidations = %d, want 2", st.Invalidations)
	}

	c.DropStore(8)
	if _, ok := c.Get(Key("other-store")); ok {
		t.Fatalf("DropStore left the entry")
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(1<<20, time.Millisecond)
	c.Put(Key("k"), 1, 10, 1, 1)
	time.Sleep(5 * time.Millisecond)
	if _, ok := c.Get(Key("k")); ok {
		t.Fatalf("entry outlived its TTL")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0, 0)
	if c.Enabled() {
		t.Fatalf("zero-budget cache reports enabled")
	}
	c.Put(Key("k"), 1, 10, 1, 1)
	if _, ok := c.Get(Key("k")); ok {
		t.Fatalf("disabled cache stored a value")
	}
	// Shrinking the budget purges.
	c.Configure(100, 0)
	c.Put(Key("k"), 1, 10, 1, 1)
	c.Configure(0, 0)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("disable did not purge: %+v", st)
	}
}

// TestCachedEvalColdWarmInvalidate: the cached evaluation path must be
// byte-identical to the uncached oracle answer cold (miss + compute),
// warm (hit), and after a version bump (miss + recompute on the new
// graph).
func TestCachedEvalColdWarmInvalidate(t *testing.T) {
	w := testGrammar(t)
	g := cycleChain()
	src := matrix.NewVectorFromIndices(g.NumVertices(), []int{0, 1})
	want := oracle.CFPQ(g, w).StartPairsFrom(src.Ints())

	c := NewCache(1<<20, 0)
	st := New(g)
	snap := st.Pin()

	cold, hit, err := CachedEval(c, st.ID(), snap.Version(), snap.Graph(), w, src)
	if err != nil || hit {
		t.Fatalf("cold: hit=%v err=%v", hit, err)
	}
	warm, hit, err := CachedEval(c, st.ID(), snap.Version(), snap.Graph(), w, src)
	if err != nil || !hit {
		t.Fatalf("warm: hit=%v err=%v", hit, err)
	}
	assertPairs(t, "cold", cold, want)
	assertPairs(t, "warm", warm, want)

	// Bump the version with an edge to a fresh vertex, changing the
	// answer; the old key must not serve.
	snap2, err := st.Update(func(tx *Tx) error {
		tx.Graph().AddEdge(1, "b", 4)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	n2 := snap2.Graph().NumVertices()
	src2 := matrix.NewVectorFromIndices(n2, []int{0, 1})
	want2 := oracle.CFPQ(snap2.Graph(), w).StartPairsFrom(src2.Ints())
	post, hit, err := CachedEval(c, st.ID(), snap2.Version(), snap2.Graph(), w, src2)
	if err != nil || hit {
		t.Fatalf("post-invalidation: hit=%v err=%v", hit, err)
	}
	assertPairs(t, "post-invalidation", post, want2)
	if len(want2) == len(want) {
		t.Fatalf("test graph mutation did not change the answer; invalidation untested")
	}

	// Permuted, duplicated source list: same canonical key, warm hit.
	srcPerm := matrix.NewVectorFromIndices(n2, []int{1, 0, 1, 0, 0})
	perm, hit, err := CachedEval(c, st.ID(), snap2.Version(), snap2.Graph(), w, srcPerm)
	if err != nil || !hit {
		t.Fatalf("permuted sources: hit=%v err=%v", hit, err)
	}
	assertPairs(t, "permuted sources", perm, want2)

	// A different algorithm is a different key but the same answer.
	alg, hit, err := CachedEval(c, st.ID(), snap2.Version(), snap2.Graph(), w, src2,
		exec.WithAlgorithm(exec.AlgWorklist))
	if err != nil || hit {
		t.Fatalf("algorithm variant: hit=%v err=%v", hit, err)
	}
	assertPairs(t, "algorithm variant", alg, want2)
}

func assertPairs(t *testing.T, label string, got, want [][2]int) {
	t.Helper()
	// Cached pair sets are shared and read-only; sort a copy.
	got = append([][2]int(nil), got...)
	oracle.SortPairs(got)
	oracle.SortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d\n got %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", label, i, got[i], want[i])
		}
	}
}
