// Package detpos holds detrange true positives: map iteration order
// leaking into output.
package detpos

import (
	"fmt"
	"io"
	"strings"
)

// dump emits one line per entry in map order.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf call inside range over a map`
	}
}

// render writes keys into a builder in map order.
func render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString on strings.Builder inside range over a map`
	}
	return b.String()
}

// keys collects into an outer slice that is never sorted.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" inside range over a map without sorting`
	}
	return out
}
