package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchrunnerTable1Quick(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-exp", "table1", "-quick", "-graphs", "core,pathways"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table1", "core", "pathways", "#subClassOf"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in:\n%s", want, out.String())
		}
	}
}

func TestBenchrunnerFiguresWithCSV(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "sweep.csv")
	var out strings.Builder
	err := run([]string{"-exp", "figures", "-quick", "-graphs", "core",
		"-chunks", "1,5", "-csv", csvPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "chunk_size") || !strings.Contains(string(data), "core") {
		t.Fatalf("csv content wrong:\n%s", data)
	}
	if !strings.Contains(out.String(), "Smart mean ms") {
		t.Fatalf("table output wrong:\n%s", out.String())
	}
}

func TestBenchrunnerErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nosuch"}, &out); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	if err := run([]string{"-chunks", "0"}, &out); err == nil {
		t.Fatal("expected error for bad chunk size")
	}
	if err := run([]string{"-exp", "table1", "-graphs", "unknown-graph"}, &out); err == nil {
		t.Fatal("expected error for unknown graph")
	}
}
