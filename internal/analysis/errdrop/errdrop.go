// Package errdrop flags silently discarded errors from the parse and
// IO layers.
//
// The graph text format, the grammar and Cypher parsers, the RESP
// protocol, and the gdb persistence layer all report malformed input
// and IO failures through error returns. Dropping one of those errors
// does not crash — it silently truncates a dump, accepts a half-parsed
// query, or loses a protocol failure, which is exactly the class of bug
// the differential harness (PR 2) cannot see because the in-memory
// state still looks healthy.
//
// The analyzer flags, for callees in the graph/grammar/cypher/resp/gdb
// and obs packages (and the root facade) whose results include an
// error:
//
//   - calls used as statements (also under go/defer) — the error is
//     dropped implicitly;
//   - assignments that put the error result in the blank identifier
//     (`_ = graph.Write(...)`, `g, _ := graph.Read(...)`) — explicit
//     discards must instead carry a //lint:ignore errdrop <reason>.
//
// It also flags (*encoding/csv.Writer).Flush as a statement in a
// function that never consults the writer's Error method: csv.Flush
// reports write failures only through Error, so skipping the check
// silently truncates experiment artifacts.
//
// In the durability-critical packages (internal/gdb, internal/fault)
// the analyzer additionally flags dropped errors from (*os.File).Sync
// and (*os.File).Close — including behind defer: an fsync error is the
// only signal that an acknowledged write never reached disk, so
// discarding one silently voids the crash-recovery guarantee.
package errdrop

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mscfpq/internal/analysis"
)

// Analyzer is the errdrop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flags discarded errors from the graph/grammar/cypher/resp/gdb/obs " +
		"parse and IO layers, and csv.Writer.Flush without an Error check",
	IgnoreTestFiles: true,
	Run:             run,
}

// scopeSuffixes are the package-path suffixes whose errors must not be
// dropped. Matched by suffix so analysistest fixture modules qualify.
var scopeSuffixes = []string{
	"internal/graph",
	"internal/grammar",
	"internal/cypher",
	"internal/resp",
	"internal/gdb",
	"internal/fault",
	// The metrics endpoint: a dropped MarshalSnapshot error silently
	// serves an empty or truncated body to whoever is scraping it.
	"internal/obs",
}

// durableScopes are the package-path fragments where (*os.File).Sync
// and (*os.File).Close errors are load-bearing: in the persistence and
// failpoint layers a dropped fsync/close error hides an acknowledged
// write that never reached disk — precisely the failure the chaos
// suite exists to catch. Matched by substring so analysistest fixtures
// under testdata/src/internal/gdb/... qualify.
var durableScopes = []string{
	"internal/gdb",
	"internal/fault",
}

// inDurableScope reports whether the linted package is one whose file
// lifecycle errors must be handled.
func inDurableScope(pass *analysis.Pass) bool {
	if pass.Pkg == nil {
		return false
	}
	for _, frag := range durableScopes {
		if strings.Contains(pass.Pkg.Path(), frag) {
			return true
		}
	}
	return false
}

// fileLifecycle resolves call to (*os.File).Sync or (*os.File).Close,
// returning the method name.
func fileLifecycle(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return "", false
	}
	if fn.Name() != "Sync" && fn.Name() != "Close" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Name() != "File" {
		return "", false
	}
	return fn.Name(), true
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				checkStmtCall(pass, stmt.X)
			case *ast.GoStmt:
				checkStmtCall(pass, stmt.Call)
			case *ast.DeferStmt:
				checkStmtCall(pass, stmt.Call)
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// errResults resolves the called function; when it belongs to a
// protected package (including methods on its types) and returns at
// least one error, the error result positions are returned.
func errResults(pass *analysis.Pass, call *ast.CallExpr) (fn *types.Func, positions []int) {
	fn = analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return nil, nil
	}
	path := fn.Pkg().Path()
	ok := false
	for _, suf := range scopeSuffixes {
		if strings.HasSuffix(path, suf) {
			ok = true
			break
		}
	}
	// The module root facade re-exports the same layers: a callee whose
	// package path equals the linted module's root is in scope too.
	if !ok && pass.Pkg != nil && path == rootOf(pass.Pkg.Path()) {
		ok = true
	}
	if !ok {
		return nil, nil
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig {
		return nil, nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			positions = append(positions, i)
		}
	}
	if len(positions) == 0 {
		return nil, nil
	}
	return fn, positions
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func rootOf(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i]
	}
	return path
}

// checkStmtCall handles a call whose results are all dropped.
func checkStmtCall(pass *analysis.Pass, e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if fn, positions := errResults(pass, call); fn != nil && len(positions) > 0 {
		pass.Reportf(call.Pos(), "error returned by %s.%s is dropped — handle it or suppress with //lint:ignore errdrop <reason>", fn.Pkg().Name(), fn.Name())
		return
	}
	if name, ok := fileLifecycle(pass, call); ok && inDurableScope(pass) {
		pass.Reportf(call.Pos(), "error returned by (*os.File).%s is dropped in a durability-critical package — a lost fsync/close error hides data that never reached disk; handle it or suppress with //lint:ignore errdrop <reason>", name)
		return
	}
	checkCSVFlush(pass, call)
}

// checkAssign flags blank identifiers occupying error result positions
// of in-scope calls.
func checkAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	// Multi-value form: v, _ := pkg.Call().
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, positions := errResults(pass, call)
		if fn == nil {
			return
		}
		for _, i := range positions {
			if i < len(assign.Lhs) && isBlank(assign.Lhs[i]) {
				pass.Reportf(assign.Lhs[i].Pos(), "error result of %s.%s assigned to _ — handle it or suppress with //lint:ignore errdrop <reason>", fn.Pkg().Name(), fn.Name())
			}
		}
		return
	}
	// Parallel form: _ = pkg.Call() (single or multiple pairs).
	for i, lhs := range assign.Lhs {
		if !isBlank(lhs) || i >= len(assign.Rhs) {
			continue
		}
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn, positions := errResults(pass, call); fn != nil && len(positions) > 0 {
			pass.Reportf(lhs.Pos(), "error returned by %s.%s discarded with _ — handle it or suppress with //lint:ignore errdrop <reason>", fn.Pkg().Name(), fn.Name())
			continue
		}
		if name, ok := fileLifecycle(pass, call); ok && inDurableScope(pass) {
			pass.Reportf(lhs.Pos(), "error returned by (*os.File).%s discarded with _ in a durability-critical package — a lost fsync/close error hides data that never reached disk; handle it or suppress with //lint:ignore errdrop <reason>", name)
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// checkCSVFlush flags cw.Flush() statements when the enclosing
// function never calls cw.Error().
func checkCSVFlush(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Flush" {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isCSVWriter(tv.Type) {
		return
	}
	recv := analysis.ExprString(pass.Fset, sel.X)
	fn := enclosingFunc(pass, call.Pos())
	if fn == nil {
		return
	}
	checked := false
	ast.Inspect(fn, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if s, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && s.Sel.Name == "Error" &&
			analysis.ExprString(pass.Fset, s.X) == recv {
			checked = true
			return false
		}
		return !checked
	})
	if !checked {
		pass.Reportf(call.Pos(), "csv.Writer.Flush without checking %s.Error(): write failures are silently dropped", recv)
	}
}

func isCSVWriter(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "encoding/csv" && obj.Name() == "Writer"
}

// enclosingFunc finds the innermost function body containing pos.
func enclosingFunc(pass *analysis.Pass, pos token.Pos) ast.Node {
	var best ast.Node
	for _, file := range pass.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				if n.Pos() <= pos && pos <= n.End() {
					best = n
				}
			}
			return true
		})
	}
	return best
}
