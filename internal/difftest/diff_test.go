package difftest

import (
	"flag"
	"math/rand"
	"testing"

	"mscfpq/internal/gen"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/oracle"
)

// seedFlag shifts the whole generated corpus: go test ./internal/difftest
// -seed=N. Every failure report prints the single instance seed that
// reproduces it regardless of the base seed used.
var seedFlag = flag.Int64("seed", 1, "base seed for generated differential-test instances")

// reportCFPQFailure minimizes the failing instance, dumps a repro, and
// fails the test with everything needed to replay it.
func reportCFPQFailure(t *testing.T, inst gen.Instance, err error, check func(gen.Instance) error) {
	t.Helper()
	min := Minimize(inst, func(i gen.Instance) bool { return check(i) != nil })
	minErr := check(min)
	dir, werr := WriteRepro(min)
	if werr != nil {
		t.Logf("writing repro: %v", werr)
	}
	t.Errorf("seed %d (rerun: go test ./internal/difftest -seed=%d): %v\n"+
		"minimized to %d edges, %d sources (%v); repro dumped to %s\ngrammar:\n%s",
		inst.Seed, inst.Seed, err,
		min.G.NumEdges(), len(min.Sources), minErr, dir, min.Grammar)
}

// TestDifferentialCFPQ drives all six CFPQ evaluators — AllPairs,
// AllPairsSemiNaive, Worklist, SinglePath, MultiSource,
// MultiSourceSinglePath, the smart Index, and WorklistMultiSource —
// against the independent edge-list oracle on seeded random instances.
func TestDifferentialCFPQ(t *testing.T) {
	failures := 0
	for i := 0; i < cfpqInstances; i++ {
		inst := gen.NewInstance(*seedFlag+int64(i), maxGraphVertices)
		if err := CheckCFPQ(inst); err != nil {
			reportCFPQFailure(t, inst, err, CheckCFPQ)
			if failures++; failures >= 3 {
				t.Fatalf("stopping after %d failing instances", failures)
			}
		}
	}
}

// TestDifferentialEval drives the unified Eval entry point with every
// WithAlgorithm option against the oracle, and asserts tracing and
// metrics never change answers. A quarter of the CFPQ corpus: each
// instance runs all six algorithms twice (plain and traced) plus the
// auto-resolution and all-pairs variants.
func TestDifferentialEval(t *testing.T) {
	failures := 0
	for i := 0; i < cfpqInstances/4; i++ {
		inst := gen.NewInstance(*seedFlag+int64(3_000_000+i), maxGraphVertices)
		if err := CheckEval(inst); err != nil {
			reportCFPQFailure(t, inst, err, CheckEval)
			if failures++; failures >= 3 {
				t.Fatalf("stopping after %d failing instances", failures)
			}
		}
	}
}

// TestDifferentialEvalCached reruns every algorithm through the
// version-keyed query cache: cold fill, warm hit, and the recompute
// after a version bump must be byte-identical to the uncached Eval,
// and permuted source lists must canonicalize onto the warm entry.
func TestDifferentialEvalCached(t *testing.T) {
	failures := 0
	for i := 0; i < cfpqInstances/4; i++ {
		inst := gen.NewInstance(*seedFlag+int64(4_000_000+i), maxGraphVertices)
		if err := CheckEvalCached(inst); err != nil {
			reportCFPQFailure(t, inst, err, CheckEvalCached)
			if failures++; failures >= 3 {
				t.Fatalf("stopping after %d failing instances", failures)
			}
		}
	}
}

// TestDifferentialRPQ drives the four RPQ engines (NFA, minimized DFA,
// CFPQ reduction, Kronecker tensor) against the BFS-product oracle on
// seeded random (graph, regex, source-set) cases.
func TestDifferentialRPQ(t *testing.T) {
	failures := 0
	for i := 0; i < rpqInstances; i++ {
		seed := *seedFlag + int64(1_000_000+i)
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomGraph(rng, 2+rng.Intn(maxGraphVertices-1), gen.DefaultLabels)
		query := gen.RandomRegex(rng, gen.DefaultLabels, 3)
		sources := gen.Sources(rng, g.NumVertices())
		if err := CheckRPQ(g, query, sources); err != nil {
			t.Errorf("seed %d (rerun: go test ./internal/difftest -seed=%d): %v", seed, *seedFlag, err)
			if failures++; failures >= 3 {
				t.Fatalf("stopping after %d failing instances", failures)
			}
		}
	}
}

// TestOracleAgreesWithMembership cross-validates the harness's own
// foundation: for a word sampled from a random grammar's language, a
// chain graph spelling that word must contain the (0, len(word)) start
// pair in the oracle's relation, and the word must pass the independent
// CYK membership checker.
func TestOracleAgreesWithMembership(t *testing.T) {
	checked := 0
	for i := 0; checked < 25 && i < 400; i++ {
		seed := *seedFlag + int64(2_000_000+i)
		rng := rand.New(rand.NewSource(seed))
		gr := gen.RandomGrammar(rng, gen.DefaultLabels)
		word, ok := grammar.Sample(gr, rng, 60)
		if !ok || len(word) == 0 || len(word) > 12 {
			continue
		}
		checked++
		w := grammar.MustWCNF(gr)
		if !w.Accepts(word) {
			t.Fatalf("seed %d: sampled word %v rejected by WCNF of\n%s", seed, word, gr)
		}
		g := chainFor(word)
		if ref := oracle.CFPQ(g, w); !ref.Has(w.Start, 0, len(word)) {
			t.Fatalf("seed %d: oracle misses pair (0,%d) on chain for word %v of\n%s",
				seed, len(word), word, gr)
		}
	}
	if checked == 0 {
		t.Fatal("no sampled words; generator or sampler is broken")
	}
}

// TestMinimizeShrinks exercises the failure minimizer on a synthetic
// predicate: a "failure" that only needs one a-labeled edge must shrink
// to exactly that — one edge, no vertex labels, no sources.
func TestMinimizeShrinks(t *testing.T) {
	inst := gen.NewInstance(*seedFlag+7_000_000, maxGraphVertices)
	hasA := func(i gen.Instance) bool {
		found := false
		i.G.Edges(func(src int, label string, dst int) bool {
			if label == "a" {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if !hasA(inst) {
		inst.G.AddEdge(0, "a", 1%inst.G.NumVertices())
	}
	min := Minimize(inst, hasA)
	if min.G.NumEdges() != 1 {
		t.Fatalf("minimized to %d edges, want 1", min.G.NumEdges())
	}
	if len(min.Sources) != 0 {
		t.Fatalf("minimized sources %v, want none", min.Sources)
	}
	if !hasA(min) {
		t.Fatal("minimized instance no longer fails the predicate")
	}
}

// chainFor builds the chain graph whose single 0..len(word) walk spells
// the word: forward edges for plain labels, reversed stored edges for
// inverse "x_r" labels.
func chainFor(word []string) *graph.Graph {
	g := graph.New(len(word) + 1)
	for i, l := range word {
		if grammar.IsInverseLabel(l) {
			g.AddEdge(i+1, grammar.InverseLabel(l), i)
		} else {
			g.AddEdge(i, l, i+1)
		}
	}
	return g
}
