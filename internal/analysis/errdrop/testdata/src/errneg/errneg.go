// Package errneg holds errdrop negatives: handled errors and
// out-of-scope callees.
package errneg

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"

	"mscfpq/internal/grammar"
)

// handled propagates the parse error.
func handled(r io.Reader) (*grammar.Grammar, error) {
	g, err := grammar.Parse(r)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// suppressed documents why the discard is safe.
func suppressed(r io.Reader) {
	//lint:ignore errdrop probing whether the input parses at all; the result is irrelevant
	grammar.Parse(r)
}

// outOfScope drops an error from a package the analyzer does not
// protect; errdrop is deliberately narrower than errcheck.
func outOfScope(w io.Writer) {
	fmt.Fprintln(w, "hello")
}

// fileCloseOutOfScope drops a close error in a package whose path is
// not durability-critical; the Sync/Close rule applies only under
// internal/gdb and internal/fault.
func fileCloseOutOfScope(f *os.File) {
	defer f.Close()
	f.Sync()
}

// flushChecked consults the csv writer's Error method after Flush.
func flushChecked(rows [][]string) (string, error) {
	var b strings.Builder
	w := csv.NewWriter(&b)
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return "", err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return "", err
	}
	return b.String(), nil
}
