// Command cfpq evaluates a context-free path query over a graph file.
//
// Usage:
//
//	cfpq -graph g.txt -grammar q.txt [-algo ms] [-src 0,5,7] [-limit 20]
//
// Algorithms: allpairs (Algorithm 1), seminaive (delta iteration), ms
// (Algorithm 2, default), smart (Algorithm 3), worklist
// (CFL-reachability baseline), singlepath / mspath (witness
// extraction), tensor (Kronecker RSM). All but smart and tensor go
// through the unified cfpq.Eval entry point.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/rsm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cfpq:", err)
		os.Exit(1)
	}
}

// algorithms maps the -algo flag to Eval's algorithm options; smart
// and tensor stay on their own entry points (the index and the RSM
// machine have no Eval equivalent).
var algorithms = map[string]exec.Algorithm{
	"allpairs":   exec.AlgMatrix,
	"seminaive":  exec.AlgSemiNaive,
	"ms":         exec.AlgMultiSource,
	"worklist":   exec.AlgWorklist,
	"singlepath": exec.AlgSinglePath,
	"mspath":     exec.AlgMSSinglePath,
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("cfpq", flag.ContinueOnError)
	var (
		graphPath   = fs.String("graph", "", "graph file (edge-list format)")
		grammarPath = fs.String("grammar", "", "grammar file")
		algo        = fs.String("algo", "ms", "allpairs | seminaive | ms | smart | worklist | singlepath | mspath | tensor")
		srcSpec     = fs.String("src", "", "comma-separated source vertices (ms/smart/worklist)")
		limit       = fs.Int("limit", 50, "maximum pairs to print (0 = all)")
		showPaths   = fs.Bool("paths", false, "print a witness path per pair (singlepath/mspath)")
		timeout     = fs.Duration("timeout", 0, "abort the query after this duration (0 = none)")
		budget      = fs.Int64("budget", 0, "abort after producing this many relation entries (0 = unlimited)")
		workers     = fs.Int("workers", 0, "parallel multiplication workers (0 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *grammarPath == "" {
		fs.Usage()
		return fmt.Errorf("need -graph and -grammar")
	}
	g, err := graph.LoadFile(*graphPath)
	if err != nil {
		return err
	}
	cf, err := grammar.LoadFile(*grammarPath)
	if err != nil {
		return err
	}
	w, err := grammar.ToWCNF(cf)
	if err != nil {
		return err
	}
	src, err := parseSources(*srcSpec, g.NumVertices())
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "graph: %d vertices, %d edges; grammar: %d nonterminals, %d rules\n",
		g.NumVertices(), g.NumEdges(), w.NumNonterms(), len(w.BinRules)+len(w.TermRules))

	var opts []exec.Option
	if *timeout > 0 {
		opts = append(opts, exec.WithTimeout(*timeout))
	}
	if *budget > 0 {
		opts = append(opts, exec.WithBudget(*budget))
	}
	if *workers > 0 {
		opts = append(opts, exec.WithWorkers(*workers))
	}

	if alg, ok := algorithms[*algo]; ok {
		res, err := cfpq.Eval(g, w, src, append(opts, exec.WithAlgorithm(alg))...)
		if err != nil {
			return err
		}
		st := res.Stats()
		fmt.Fprintf(stdout, "algorithm: %v; rounds: %d; work: %d\n", st.Algorithm, st.Rounds, st.Work)
		if *showPaths {
			pr, ok := res.(cfpq.PathEvalResult)
			if !ok {
				return fmt.Errorf("-paths needs -algo singlepath or mspath")
			}
			return printWithPaths(stdout, pr, *limit)
		}
		return printPairs(stdout, res.Pairs(), *limit)
	}

	var answer *matrix.Bool
	switch *algo {
	case "smart":
		if src == nil {
			return fmt.Errorf("-algo smart needs -src")
		}
		idx, err := cfpq.NewIndex(g, w, opts...)
		if err != nil {
			return err
		}
		r, err := idx.MultiSourceSmart(src)
		if err != nil {
			return err
		}
		answer = r.Answer()
	case "tensor":
		machine, err := rsm.FromGrammar(cf)
		if err != nil {
			return err
		}
		rel, err := machine.Eval(g, opts...)
		if err != nil {
			return err
		}
		answer = rel
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return printPairs(stdout, matrixPairs(answer), *limit)
}

func parseSources(spec string, n int) (*matrix.Vector, error) {
	if spec == "" {
		return nil, nil
	}
	v := matrix.NewVector(n)
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || id < 0 || id >= n {
			return nil, fmt.Errorf("bad source vertex %q (graph has %d vertices)", part, n)
		}
		v.Set(id)
	}
	return v, nil
}

func matrixPairs(m *matrix.Bool) [][2]int {
	var pairs [][2]int
	m.Iterate(func(i, j int) bool {
		pairs = append(pairs, [2]int{i, j})
		return true
	})
	return pairs
}

func printPairs(stdout io.Writer, pairs [][2]int, limit int) error {
	fmt.Fprintf(stdout, "%d result pairs\n", len(pairs))
	shown := pairs
	if limit > 0 && len(shown) > limit {
		shown = shown[:limit]
	}
	for _, p := range shown {
		fmt.Fprintf(stdout, "%d -> %d\n", p[0], p[1])
	}
	if limit > 0 && len(pairs) > limit {
		fmt.Fprintf(stdout, "... (%d more)\n", len(pairs)-limit)
	}
	return nil
}

func printWithPaths(stdout io.Writer, sp cfpq.PathEvalResult, limit int) error {
	pairs := sp.Pairs()
	fmt.Fprintf(stdout, "%d result pairs\n", len(pairs))
	if limit > 0 && len(pairs) > limit {
		pairs = pairs[:limit]
	}
	for _, p := range pairs {
		steps, err := sp.Path(p[0], p[1])
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%d -> %d via %s\n", p[0], p[1], strings.Join(cfpq.Word(steps), " "))
	}
	return nil
}
