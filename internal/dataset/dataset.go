// Package dataset generates deterministic synthetic analogs of the
// CFPQ_Data graphs the paper evaluates on (Table 1). The original
// dataset is an online artifact; each analog reproduces the structural
// role of its namesake — ontology-style subClassOf hierarchies with
// typed instances, the geospecies broaderTransitive taxonomy, the dense
// deep go-hierarchy — with vertex/edge budgets matching the published
// counts, optionally scaled down for laptop-class machines. DESIGN.md §4
// documents the substitution.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"mscfpq/internal/graph"
)

// Spec describes one synthetic graph.
type Spec struct {
	Name     string
	Vertices int
	// Classes is the size of the subClassOf hierarchy (the first ids).
	Classes int
	// SubClassOf, TypeEdges, BroaderEdges, OtherEdges are edge budgets
	// per label; OtherEdges are labeled "relatedTo".
	SubClassOf   int
	TypeEdges    int
	BroaderEdges int
	OtherEdges   int
	// TargetDepth is the intended height of the subClassOf /
	// broaderTransitive hierarchy (real-world ontologies are 10-40
	// levels deep). The generator picks each vertex's parent within a
	// window of preceding ids sized so the expected depth matches,
	// independent of scaling.
	TargetDepth int
	// Seed makes generation deterministic per graph.
	Seed int64
}

// levels partitions n hierarchy vertices into targetDepth contiguous
// id blocks. Every hierarchy edge points from a vertex to a strictly
// lower block, so the longest parent chain is exactly the number of
// levels — matching how real ontologies are broad but shallow.
type levels struct {
	size int // vertices per level
}

func newLevels(n, targetDepth int) levels {
	if targetDepth < 1 {
		targetDepth = 16
	}
	size := n / targetDepth
	if size < 1 {
		size = 1
	}
	return levels{size: size}
}

// start returns the first id of vertex i's level.
func (l levels) start(i int) int { return (i / l.size) * l.size }

// Registry returns the specs of the paper's eight evaluation graphs at
// their published sizes (vertex/edge counts from the CFPQ_Data dataset
// the paper cites; Table 1 in the draft is empty, see DESIGN.md).
func Registry() []Spec {
	return []Spec{
		{Name: "core", Vertices: 1323, Classes: 200, SubClassOf: 178, TypeEdges: 706, OtherEdges: 1868, TargetDepth: 10, Seed: 101},
		{Name: "pathways", Vertices: 6238, Classes: 3200, SubClassOf: 3117, TypeEdges: 3118, OtherEdges: 6128, TargetDepth: 12, Seed: 102},
		{Name: "go-hierarchy", Vertices: 45007, Classes: 45007, SubClassOf: 490109, TypeEdges: 0, OtherEdges: 0, TargetDepth: 16, Seed: 103},
		{Name: "enzyme", Vertices: 48815, Classes: 8400, SubClassOf: 8163, TypeEdges: 14989, OtherEdges: 63391, TargetDepth: 10, Seed: 104},
		{Name: "eclass_514en", Vertices: 239111, Classes: 92000, SubClassOf: 90962, TypeEdges: 72517, OtherEdges: 360248, TargetDepth: 12, Seed: 105},
		{Name: "geospecies", Vertices: 450609, Classes: 0, SubClassOf: 0, TypeEdges: 89065, BroaderEdges: 20867, OtherEdges: 2091600, TargetDepth: 30, Seed: 106},
		{Name: "go", Vertices: 272770, Classes: 92000, SubClassOf: 90512, TypeEdges: 58483, OtherEdges: 385316, TargetDepth: 16, Seed: 107},
		{Name: "taxonomy", Vertices: 5728398, Classes: 2200000, SubClassOf: 2112637, TypeEdges: 2508635, OtherEdges: 10300853, TargetDepth: 40, Seed: 108},
	}
}

// ByName returns the registry spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Registry() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown graph %q", name)
}

// Names returns the sorted registry graph names.
func Names() []string {
	specs := Registry()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}

// Scaled returns the spec with every size multiplied by f (>0, typically
// <= 1), keeping at least minimal structure. Scaling preserves the
// edge/vertex ratios, which drive the algorithms' relative behaviour.
func Scaled(s Spec, f float64) Spec {
	if f <= 0 {
		panic(fmt.Sprintf("dataset: non-positive scale %v", f))
	}
	if f == 1 {
		return s
	}
	scale := func(n int) int {
		if n == 0 {
			return 0
		}
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	out := s
	out.Name = fmt.Sprintf("%s@%.3g", s.Name, f)
	out.Vertices = scale(s.Vertices)
	out.Classes = scale(s.Classes)
	if out.Classes > out.Vertices {
		out.Classes = out.Vertices
	}
	out.SubClassOf = scale(s.SubClassOf)
	out.TypeEdges = scale(s.TypeEdges)
	out.BroaderEdges = scale(s.BroaderEdges)
	out.OtherEdges = scale(s.OtherEdges)
	return out
}

// Generate materializes the spec into a graph. The same spec always
// yields the same graph.
func Generate(s Spec) *graph.Graph {
	if s.Vertices <= 0 {
		panic(fmt.Sprintf("dataset: spec %q has no vertices", s.Name))
	}
	rng := rand.New(rand.NewSource(s.Seed))
	g := graph.New(s.Vertices)

	// subClassOf hierarchy over the first Classes ids: a spanning forest
	// biased to parents within the depth window, then extra DAG edges up
	// to the budget (dense multi-parent hierarchies like go-hierarchy).
	if s.Classes > 1 && s.SubClassOf > 0 {
		addHierarchy(g, rng, "subClassOf", s.Classes, s.SubClassOf, s.TargetDepth)
	}

	// type edges: instances (ids >= Classes) point at classes; if there
	// are no instances (go-hierarchy style) the budget is zero anyway.
	if s.TypeEdges > 0 {
		classes := s.Classes
		if classes == 0 {
			classes = s.Vertices // geospecies: types point into the taxonomy
		}
		instances := s.Vertices - s.Classes
		added := 0
		for guard := 0; added < s.TypeEdges && guard < 20*s.TypeEdges; guard++ {
			var inst int
			if instances > 0 {
				inst = s.Classes + rng.Intn(instances)
			} else {
				inst = rng.Intn(s.Vertices)
			}
			class := rng.Intn(classes)
			if !g.HasEdge(inst, "type", class) {
				g.AddEdge(inst, "type", class)
				added++
			}
		}
	}

	// broaderTransitive taxonomy (geospecies): a deep forest over a
	// dedicated prefix of vertices plus a few cross links.
	if s.BroaderEdges > 0 {
		taxa := s.BroaderEdges + 1
		if taxa > s.Vertices {
			taxa = s.Vertices
		}
		addHierarchy(g, rng, "broaderTransitive", taxa, s.BroaderEdges, s.TargetDepth)
	}

	// relatedTo filler edges reproduce the graphs' total edge counts.
	if s.OtherEdges > 0 {
		added := 0
		for guard := 0; added < s.OtherEdges && guard < 20*s.OtherEdges; guard++ {
			u, v := rng.Intn(s.Vertices), rng.Intn(s.Vertices)
			if u != v && !g.HasEdge(u, "relatedTo", v) {
				g.AddEdge(u, "relatedTo", v)
				added++
			}
		}
	}
	return g
}

// addHierarchy wires a leveled DAG over the first n vertex ids: a
// spanning forest linking each vertex to a parent in the previous level
// block, then extra multi-parent edges into arbitrary lower levels up
// to the edge budget. Edges always cross into a strictly lower level,
// bounding the hierarchy depth by targetDepth regardless of density.
func addHierarchy(g *graph.Graph, rng *rand.Rand, label string, n, budget, targetDepth int) {
	if n < 2 || budget < 1 {
		return
	}
	lv := newLevels(n, targetDepth)
	added := 0
	for i := lv.size; i < n && added < budget; i++ {
		prevStart := lv.start(i) - lv.size
		g.AddEdge(i, label, prevStart+rng.Intn(lv.size))
		added++
	}
	for guard := 0; added < budget && guard < 20*budget; guard++ {
		i := lv.size + rng.Intn(n-lv.size)
		parent := rng.Intn(lv.start(i))
		if !g.HasEdge(i, label, parent) {
			g.AddEdge(i, label, parent)
			added++
		}
	}
}

// TwoCycles builds the classic CFPQ stress input: a cycle of p a-edges
// and a cycle of q b-edges sharing vertex 0. Worst case for a^n b^n
// queries; used by ablation benches and tests.
func TwoCycles(p, q int) *graph.Graph {
	if p < 1 || q < 1 {
		panic("dataset: cycle lengths must be positive")
	}
	g := graph.New(p + q - 1)
	for i := 0; i < p-1; i++ {
		g.AddEdge(i, "a", i+1)
	}
	g.AddEdge(p-1, "a", 0)
	prev := 0
	for i := 0; i < q-1; i++ {
		g.AddEdge(prev, "b", p+i)
		prev = p + i
	}
	g.AddEdge(prev, "b", 0)
	return g
}

// LinearChain builds a chain of n a-edges followed by n b-edges, the
// benign counterpart of TwoCycles.
func LinearChain(n int) *graph.Graph {
	g := graph.New(2*n + 1)
	for i := 0; i < n; i++ {
		g.AddEdge(i, "a", i+1)
		g.AddEdge(n+i, "b", n+i+1)
	}
	return g
}
