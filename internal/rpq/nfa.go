package rpq

import (
	"fmt"
	"sort"
)

// NFA is a Thompson-constructed nondeterministic finite automaton with a
// single start and a single accept state. Epsilon transitions are kept
// explicit; evaluation and grammar conversion handle them directly.
type NFA struct {
	NumStates int
	Start     int
	Accept    int
	// Trans[label] lists (from, to) transitions for that label.
	Trans map[string][][2]int
	// Eps lists epsilon transitions.
	Eps [][2]int
}

// CompileRegex parses src and builds its NFA.
func CompileRegex(src string) (*NFA, error) {
	node, err := ParseRegex(src)
	if err != nil {
		return nil, err
	}
	return BuildNFA(node), nil
}

// BuildNFA constructs a Thompson NFA for the AST. Every state lies on a
// path from Start to Accept, a property the grammar reduction relies on.
func BuildNFA(root Node) *NFA {
	n := &NFA{Trans: map[string][][2]int{}}
	newState := func() int {
		s := n.NumStates
		n.NumStates++
		return s
	}
	var build func(node Node) (int, int)
	build = func(node Node) (start, accept int) {
		switch v := node.(type) {
		case Label:
			s, a := newState(), newState()
			n.Trans[v.Name] = append(n.Trans[v.Name], [2]int{s, a})
			return s, a
		case Concat:
			ls, la := build(v.Left)
			rs, ra := build(v.Right)
			n.Eps = append(n.Eps, [2]int{la, rs})
			return ls, ra
		case Alt:
			s, a := newState(), newState()
			ls, la := build(v.Left)
			rs, ra := build(v.Right)
			n.Eps = append(n.Eps, [2]int{s, ls}, [2]int{s, rs}, [2]int{la, a}, [2]int{ra, a})
			return s, a
		case Star:
			s, a := newState(), newState()
			is, ia := build(v.Sub)
			n.Eps = append(n.Eps, [2]int{s, is}, [2]int{ia, a}, [2]int{s, a}, [2]int{ia, is})
			return s, a
		case Plus:
			s, a := newState(), newState()
			is, ia := build(v.Sub)
			n.Eps = append(n.Eps, [2]int{s, is}, [2]int{ia, a}, [2]int{ia, is})
			return s, a
		case Opt:
			s, a := newState(), newState()
			is, ia := build(v.Sub)
			n.Eps = append(n.Eps, [2]int{s, is}, [2]int{ia, a}, [2]int{s, a})
			return s, a
		default:
			panic(fmt.Sprintf("rpq: unknown AST node %T", node))
		}
	}
	n.Start, n.Accept = build(root)
	return n
}

// Labels returns the sorted set of labels the NFA reads.
func (n *NFA) Labels() []string {
	out := make([]string, 0, len(n.Trans))
	for l := range n.Trans {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// AcceptsWord reports whether the NFA accepts the given label word;
// used as a test oracle.
func (n *NFA) AcceptsWord(word []string) bool {
	cur := map[int]bool{n.Start: true}
	cur = n.epsClosure(cur)
	for _, l := range word {
		next := map[int]bool{}
		for _, tr := range n.Trans[l] {
			if cur[tr[0]] {
				next[tr[1]] = true
			}
		}
		cur = n.epsClosure(next)
		if len(cur) == 0 {
			return false
		}
	}
	return cur[n.Accept]
}

func (n *NFA) epsClosure(set map[int]bool) map[int]bool {
	for changed := true; changed; {
		changed = false
		for _, e := range n.Eps {
			if set[e[0]] && !set[e[1]] {
				set[e[1]] = true
				changed = true
			}
		}
	}
	return set
}
