package mscfpq

import (
	"testing"
)

// Regression tests for the degenerate inputs the differential harness
// generators produce: empty source sets, duplicate and out-of-range
// vertex ids, single-vertex and zero-vertex graphs. All of these must
// yield well-defined answers without relying on caller discipline.

func TestNewVertexSetSanitizes(t *testing.T) {
	src := NewVertexSet(4, 2, 2, 2, -1, 4, 99, 0)
	if got := src.Ints(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("NewVertexSet kept %v, want [0 2]", got)
	}
	if src.Size() != 4 {
		t.Fatalf("Size = %d, want 4", src.Size())
	}
	// All ids invalid: a usable empty set, not a panic.
	if got := NewVertexSet(3, -5, 7).NVals(); got != 0 {
		t.Fatalf("invalid-only ids: NVals = %d, want 0", got)
	}
	// Zero-size universe.
	if got := NewVertexSet(0, 0, 1).NVals(); got != 0 {
		t.Fatalf("empty universe: NVals = %d, want 0", got)
	}
}

func TestMultiSourceEmptySourceSet(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "b", 2)
	w, err := ToWCNF(AnBnGrammar())
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiSource(g, w, NewVertexSet(3))
	if err != nil {
		t.Fatalf("empty source set: %v", err)
	}
	if res.Answer().NVals() != 0 {
		t.Fatalf("empty source set answered %v", res.Answer().Pairs())
	}
	// The index variant must accept it too, repeatedly.
	idx, err := NewIndex(g, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		r, err := idx.MultiSourceSmart(NewVertexSet(3))
		if err != nil {
			t.Fatalf("index query %d: %v", i, err)
		}
		if r.Answer().NVals() != 0 {
			t.Fatalf("index query %d answered %v", i, r.Answer().Pairs())
		}
	}
}

func TestMultiSourceSingleVertexGraph(t *testing.T) {
	g := NewGraph(1)
	g.AddEdge(0, "a", 0)
	g.AddEdge(0, "b", 0)
	w, err := ToWCNF(AnBnGrammar())
	if err != nil {
		t.Fatal(err)
	}
	res, err := MultiSource(g, w, NewVertexSet(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// a^n b^n over self loops on a single vertex: (0, 0) is derivable.
	if !res.Answer().Get(0, 0) {
		t.Fatal("single-vertex self-loop answer missing (0,0)")
	}
	ap, err := AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer().Equal(ap.Start()) {
		t.Fatalf("single-vertex: multi-source %v != all-pairs %v",
			res.Answer().Pairs(), ap.Start().Pairs())
	}
	sp, err := MultiSourceSinglePath(g, w, NewVertexSet(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sp.Path(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("single-vertex witness path is empty")
	}
}

func TestQueriesOnZeroVertexGraph(t *testing.T) {
	g := NewGraph(0)
	w, err := ToWCNF(AnBnGrammar())
	if err != nil {
		t.Fatal(err)
	}
	if ap, err := AllPairs(g, w); err != nil || ap.Start().NVals() != 0 {
		t.Fatalf("AllPairs on empty graph: %v, %v", ap, err)
	}
	res, err := MultiSource(g, w, NewVertexSet(0))
	if err != nil {
		t.Fatalf("MultiSource on empty graph: %v", err)
	}
	if res.Answer().NVals() != 0 {
		t.Fatalf("MultiSource on empty graph answered %v", res.Answer().Pairs())
	}
	reach, err := EvalRPQ(g, "a+", NewVertexSet(0))
	if err != nil {
		t.Fatalf("EvalRPQ on empty graph: %v", err)
	}
	if reach.NVals() != 0 {
		t.Fatalf("EvalRPQ on empty graph answered %v", reach.Pairs())
	}
}

func TestMultiSourceSizeMismatchStillErrors(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, "a", 1)
	w, err := ToWCNF(AnBnGrammar())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MultiSource(g, w, NewVertexSet(2, 0)); err == nil {
		t.Fatal("size-mismatched source vector must error")
	}
	if _, err := MultiSource(g, w, nil); err == nil {
		t.Fatal("nil source vector must error")
	}
}
