package grammar

import (
	"fmt"
	"sort"
)

// TermRule is a WCNF production A -> a with interned ids.
type TermRule struct {
	A    int // nonterminal id
	Term int // terminal id
}

// BinRule is a WCNF production A -> B C with interned ids.
type BinRule struct {
	A, B, C int
}

// WCNF is a grammar in weak Chomsky normal form (paper Definition 2.13):
// every production is A -> B C, A -> a, or A -> eps, with the start
// symbol allowed on right-hand sides. Nonterminals and terminals are
// interned to dense ids so algorithms can index matrices by them.
type WCNF struct {
	Start    int      // start nonterminal id
	Nonterms []string // id -> name
	Terms    []string // id -> name

	TermRules []TermRule
	BinRules  []BinRule
	Nullable  []bool // per nonterminal: has an explicit A -> eps rule

	ntID   map[string]int
	termID map[string]int
	// byTerm[t] lists nonterminals A with A -> t, for O(1) matrix init.
	byTerm map[int][]int
}

// NontermID returns the id of a nonterminal name, or -1.
func (w *WCNF) NontermID(name string) int {
	if id, ok := w.ntID[name]; ok {
		return id
	}
	return -1
}

// TermID returns the id of a terminal name, or -1.
func (w *WCNF) TermID(name string) int {
	if id, ok := w.termID[name]; ok {
		return id
	}
	return -1
}

// NontermsForTerm returns the nonterminals A with a rule A -> term.
func (w *WCNF) NontermsForTerm(term int) []int { return w.byTerm[term] }

// NumNonterms returns the number of nonterminals.
func (w *WCNF) NumNonterms() int { return len(w.Nonterms) }

// NumTerms returns the number of terminals.
func (w *WCNF) NumTerms() int { return len(w.Terms) }

// String renders the normalized grammar in Parse-compatible text.
func (w *WCNF) String() string {
	g := &Grammar{Start: w.Nonterms[w.Start]}
	for a, null := range w.Nullable {
		if null {
			g.Prods = append(g.Prods, Production{LHS: w.Nonterms[a]})
		}
	}
	for _, r := range w.TermRules {
		g.Prods = append(g.Prods, Production{LHS: w.Nonterms[r.A], RHS: []Symbol{T(w.Terms[r.Term])}})
	}
	for _, r := range w.BinRules {
		g.Prods = append(g.Prods, Production{
			LHS: w.Nonterms[r.A],
			RHS: []Symbol{N(w.Nonterms[r.B]), N(w.Nonterms[r.C])},
		})
	}
	return g.String()
}

// ToWCNF normalizes g into weak Chomsky normal form. The transformation
// (standard, see Definition 2.13 and the remark below it in the paper):
//
//  1. terminals inside right-hand sides of length >= 2 are lifted to
//     fresh nonterminals T#a -> a;
//  2. long rules are binarized with fresh nonterminals;
//  3. unit rules A -> B are eliminated by copying B's unit-closure
//     productions onto A;
//  4. explicit eps rules are kept (weak form) and the base nullable set
//     is recorded; derived nullability emerges in the algorithms'
//     fixpoint, exactly as in Algorithm 1 lines 5-6.
//
// The language is preserved; property tests verify membership agreement
// with the original grammar on sampled words.
func ToWCNF(g *Grammar) (*WCNF, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	w := &WCNF{ntID: map[string]int{}, termID: map[string]int{}, byTerm: map[int][]int{}}

	nt := func(name string) int {
		if id, ok := w.ntID[name]; ok {
			return id
		}
		id := len(w.Nonterms)
		w.ntID[name] = id
		w.Nonterms = append(w.Nonterms, name)
		return id
	}
	term := func(name string) int {
		if id, ok := w.termID[name]; ok {
			return id
		}
		id := len(w.Terms)
		w.termID[name] = id
		w.Terms = append(w.Terms, name)
		return id
	}
	// Intern declared nonterminals first so ids are stable and readable.
	for _, p := range g.Prods {
		nt(p.LHS)
	}
	w.Start = nt(g.Start)

	fresh := 0
	freshNT := func(prefix string) int {
		for {
			name := fmt.Sprintf("%s#%d", prefix, fresh)
			fresh++
			if _, taken := w.ntID[name]; !taken {
				return nt(name)
			}
		}
	}

	// Working productions over interned symbols. kind: term/bin/eps/unit.
	type sym struct {
		id   int
		term bool
	}
	type work struct {
		lhs int
		rhs []sym
	}
	var rules []work
	for _, p := range g.Prods {
		rw := work{lhs: w.ntID[p.LHS]}
		for _, s := range p.RHS {
			if s.Term {
				rw.rhs = append(rw.rhs, sym{id: term(s.Name), term: true})
			} else {
				rw.rhs = append(rw.rhs, sym{id: w.ntID[s.Name], term: false})
			}
		}
		rules = append(rules, rw)
	}

	// Step 1: lift terminals out of long right-hand sides.
	termNT := map[int]int{} // terminal id -> lifting nonterminal id
	liftTerm := func(t int) int {
		if id, ok := termNT[t]; ok {
			return id
		}
		id := nt(uniqueName(w.ntID, "T#"+w.Terms[t]))
		termNT[t] = id
		return id
	}
	for i := range rules {
		if len(rules[i].rhs) < 2 {
			continue
		}
		for j, s := range rules[i].rhs {
			if s.term {
				rules[i].rhs[j] = sym{id: liftTerm(s.id)}
			}
		}
	}

	// Step 2: binarize long rules.
	var short []work
	for _, r := range rules {
		for len(r.rhs) > 2 {
			mid := freshNT(w.Nonterms[r.lhs])
			short = append(short, work{lhs: r.lhs, rhs: []sym{r.rhs[0], {id: mid}}})
			r = work{lhs: mid, rhs: r.rhs[1:]}
		}
		short = append(short, r)
	}

	// Collect direct rule sets per nonterminal.
	n := len(w.Nonterms)
	termSet := make([]map[int]bool, n) // A -> a
	binSet := make([]map[[2]int]bool, n)
	epsSet := make([]bool, n)
	unitSet := make([]map[int]bool, n) // A -> B
	for i := 0; i < n; i++ {
		termSet[i] = map[int]bool{}
		binSet[i] = map[[2]int]bool{}
		unitSet[i] = map[int]bool{}
	}
	for t, a := range termNT {
		termSet[a][t] = true
	}
	for _, r := range short {
		switch len(r.rhs) {
		case 0:
			epsSet[r.lhs] = true
		case 1:
			s := r.rhs[0]
			if s.term {
				termSet[r.lhs][s.id] = true
			} else {
				unitSet[r.lhs][s.id] = true
			}
		case 2:
			binSet[r.lhs][[2]int{r.rhs[0].id, r.rhs[1].id}] = true
		default:
			return nil, fmt.Errorf("grammar: internal: rule of length %d after binarization", len(r.rhs))
		}
	}

	// Step 3: eliminate unit rules via unit closure.
	closure := make([]map[int]bool, n)
	for a := 0; a < n; a++ {
		closure[a] = map[int]bool{a: true}
		stack := []int{a}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for c := range unitSet[b] {
				if !closure[a][c] {
					closure[a][c] = true
					//lint:ignore detrange stack is a DFS worklist; the closure it computes is a set, and rule lists are sorted at emission below
					stack = append(stack, c)
				}
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := range closure[a] {
			if b == a {
				continue
			}
			for t := range termSet[b] {
				termSet[a][t] = true
			}
			for bc := range binSet[b] {
				binSet[a][bc] = true
			}
			if epsSet[b] {
				epsSet[a] = true
			}
		}
	}

	// Emit deterministically ordered rule lists.
	w.Nullable = epsSet
	for a := 0; a < n; a++ {
		terms := make([]int, 0, len(termSet[a]))
		for t := range termSet[a] {
			terms = append(terms, t)
		}
		sort.Ints(terms)
		for _, t := range terms {
			w.TermRules = append(w.TermRules, TermRule{A: a, Term: t})
			w.byTerm[t] = append(w.byTerm[t], a)
		}
		bins := make([][2]int, 0, len(binSet[a]))
		for bc := range binSet[a] {
			bins = append(bins, bc)
		}
		sort.Slice(bins, func(i, j int) bool {
			if bins[i][0] != bins[j][0] {
				return bins[i][0] < bins[j][0]
			}
			return bins[i][1] < bins[j][1]
		})
		for _, bc := range bins {
			w.BinRules = append(w.BinRules, BinRule{A: a, B: bc[0], C: bc[1]})
		}
	}
	return w, nil
}

// MustWCNF is ToWCNF, panicking on error; for known-good query grammars.
func MustWCNF(g *Grammar) *WCNF {
	w, err := ToWCNF(g)
	if err != nil {
		panic(err)
	}
	return w
}

func uniqueName(taken map[string]int, base string) string {
	if _, ok := taken[base]; !ok {
		return base
	}
	for i := 1; ; i++ {
		name := fmt.Sprintf("%s#%d", base, i)
		if _, ok := taken[name]; !ok {
			return name
		}
	}
}
