// Package snapfreeze enforces publish-time immutability: a type
// annotated `// immutable after publish` (store.Snapshot, the cached
// plan contexts) may only be mutated while the value is still private
// to its constructor — a local freshly allocated in the current scope,
// before it escapes. Once such a value is published (returned, stored,
// passed along), concurrent readers share it with no synchronization,
// so any later field write, element write, or delete through it is a
// data race by construction.
//
// Mutating a by-value copy of an annotated struct is fine (the copy is
// private); mutating through a pointer, map, or slice reached from one
// is not.
package snapfreeze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"mscfpq/internal/analysis"
)

// Analyzer is the snapfreeze check.
var Analyzer = &analysis.Analyzer{
	Name:            "snapfreeze",
	Doc:             "types annotated `// immutable after publish` may only be mutated in their constructors/clone methods before the value escapes",
	IgnoreTestFiles: true,
	RunModule:       run,
}

const marker = "immutable after publish"

func run(pass *analysis.ModulePass) error {
	frozen := map[*types.TypeName]bool{}
	for _, u := range pass.Units {
		collectAnnotated(u, frozen)
	}
	if len(frozen) == 0 {
		return nil
	}
	for _, u := range pass.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkScope(pass, u, fd.Body, frozen)
			}
		}
	}
	return nil
}

// collectAnnotated gathers type declarations whose doc comment contains
// the `immutable after publish` marker.
func collectAnnotated(u *analysis.Unit, frozen map[*types.TypeName]bool) {
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasMarker(doc) && !hasMarker(ts.Comment) {
					continue
				}
				if tn, ok := u.Info.Defs[ts.Name].(*types.TypeName); ok {
					frozen[tn] = true
				}
			}
		}
	}
}

func hasMarker(cg *ast.CommentGroup) bool {
	return cg != nil && strings.Contains(cg.Text(), marker)
}

// mutation is one write whose lvalue passes through an annotated type.
type mutation struct {
	pos      token.Pos
	typeName string
	field    string
}

// checkScope analyzes one function scope; FuncLits recurse as fresh
// scopes (a goroutine body mutating a captured snapshot is exactly the
// bug class this analyzer exists for).
func checkScope(pass *analysis.ModulePass, u *analysis.Unit, scope *ast.BlockStmt, frozen map[*types.TypeName]bool) {
	constructed := analysis.ConstructedLocals(u.Info, scope)
	escapes := map[types.Object]token.Pos{}
	ast.Inspect(scope, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != scope {
			checkScope(pass, u, lit.Body, frozen)
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkLValue(pass, u, lhs, frozen, constructed, escapes, scope)
			}
		case *ast.IncDecStmt:
			checkLValue(pass, u, st.X, frozen, constructed, escapes, scope)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := u.Info.Uses[id].(*types.Builtin); isBuiltin && len(st.Args) > 0 {
					checkLValue(pass, u, st.Args[0], frozen, constructed, escapes, scope)
				}
			}
		}
		return true
	})
}

// checkLValue walks an lvalue chain outward-in (c.attrs[k], *p.field,
// ...), recording writes that pass through an annotated type and
// deciding whether the root makes them safe.
func checkLValue(pass *analysis.ModulePass, u *analysis.Unit, lhs ast.Expr, frozen map[*types.TypeName]bool,
	constructed map[types.Object]bool, escapes map[types.Object]token.Pos, scope *ast.BlockStmt) {

	var mut *mutation
	viaRef := false // an indexing/deref step, or a pointer-typed base, on the path
	e := ast.Unparen(lhs)
walk:
	for {
		switch v := e.(type) {
		case *ast.IndexExpr:
			viaRef = true
			e = ast.Unparen(v.X)
		case *ast.StarExpr:
			viaRef = true
			if mut == nil {
				if tn := frozenBase(u.Info, v.X, frozen); tn != nil {
					mut = &mutation{pos: v.Pos(), typeName: tn.Name()}
				}
			}
			e = ast.Unparen(v.X)
		case *ast.SelectorExpr:
			if sel := u.Info.Selections[v]; sel != nil && sel.Kind() == types.FieldVal {
				if mut == nil {
					if tn := frozenBase(u.Info, v.X, frozen); tn != nil {
						mut = &mutation{pos: v.Pos(), typeName: tn.Name(), field: v.Sel.Name}
					}
				}
				if t := u.Info.TypeOf(v.X); t != nil {
					if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
						viaRef = true
					}
				}
			}
			e = ast.Unparen(v.X)
		case *ast.Ident:
			if mut == nil {
				return
			}
			report(pass, u, v, mut, viaRef, constructed, escapes, scope)
			return
		default:
			break walk
		}
	}
	if mut != nil {
		// No identifiable root (call result, etc.): conservatively flag.
		pass.Reportf(mut.pos, "mutation of immutable-after-publish type %s%s", mut.typeName, fieldSuffix(mut))
	}
}

// frozenBase resolves the annotated named type of x (through one level
// of pointer), or nil.
func frozenBase(info *types.Info, x ast.Expr, frozen map[*types.TypeName]bool) *types.TypeName {
	t := info.TypeOf(x)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if tn != nil && frozen[tn] {
		return tn
	}
	return nil
}

// report decides whether the rooted mutation is inside a sanctioned
// construction window and reports it otherwise.
func report(pass *analysis.ModulePass, u *analysis.Unit, root *ast.Ident, mut *mutation, viaRef bool,
	constructed map[types.Object]bool, escapes map[types.Object]token.Pos, scope *ast.BlockStmt) {

	obj := u.Info.Uses[root]
	if obj == nil {
		obj = u.Info.Defs[root]
	}
	if obj != nil {
		if constructed[obj] {
			esc, seen := escapes[obj]
			if !seen {
				esc = analysis.FirstEscape(u.Info, scope, obj)
				escapes[obj] = esc
			}
			if !esc.IsValid() || mut.pos < esc {
				return // constructor/clone building a private value
			}
			pass.Reportf(mut.pos, "mutation of immutable-after-publish type %s%s after the value escapes (published at %s)",
				mut.typeName, fieldSuffix(mut), pass.Module.Fset().Position(esc))
			return
		}
		if !viaRef && isLocalValue(u, obj) {
			return // writing a field of a by-value copy: private memory
		}
	}
	pass.Reportf(mut.pos, "mutation of immutable-after-publish type %s%s outside its construction window",
		mut.typeName, fieldSuffix(mut))
}

func fieldSuffix(mut *mutation) string {
	if mut.field == "" {
		return ""
	}
	return " (field " + mut.field + ")"
}

// isLocalValue reports whether obj is a non-pointer local variable or
// parameter — a struct copy whose mutation cannot reach shared memory.
func isLocalValue(u *analysis.Unit, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if v.Parent() == nil || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false // package-level: shared
	}
	if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
		return false
	}
	return true
}
