package cfpq

import (
	"fmt"

	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
)

// provKind tags how a relation entry was first derived.
type provKind uint8

const (
	provEdge   provKind = iota // A -> t matched a graph edge
	provVertex                 // A -> t matched a vertex label (self pair)
	provEps                    // A -> eps (trivial path)
	provBin                    // A -> B C split at a mid vertex
)

// provEntry records the first-discovered derivation of a relation entry.
// First-discovery order makes the provenance graph acyclic, so path
// extraction terminates.
type provEntry struct {
	kind provKind
	mid  uint32 // provBin: split vertex
	rule int32  // provBin: BinRules index; provEdge/provVertex: terminal id
}

// PathStep is one edge of an extracted path; for vertex-label terminals
// Src == Dst and Label is the vertex label.
type PathStep struct {
	Src, Dst int
	Label    string
	// VertexLabel marks a zero-length step contributed by a vertex label
	// (Definition 2.14 interleaves vertex labels into path words).
	VertexLabel bool
}

// SinglePathResult is an all-pairs result that can additionally
// reconstruct one witness path per reachability fact, following the
// single-path semantics of Terekhov et al. (GRADES-NDA'20) that the
// paper's Figure 2 experiment measures.
type SinglePathResult struct {
	*Result
	prov []map[uint64]provEntry // per nonterminal
}

// SinglePath runs the all-pairs algorithm while recording, for every
// entry of every relation matrix, the first derivation that produced it
// (a witness mid vertex and rule for binary steps). The extra bookkeeping
// is the measured cost of single-path semantics over plain reachability.
func SinglePath(g *graph.Graph, w *grammar.WCNF, opts ...Option) (*SinglePathResult, error) {
	if err := checkInputs(g, w); err != nil {
		return nil, err
	}
	run, cancel := exec.Build(opts).Start()
	defer cancel()
	n := g.NumVertices()
	r := &SinglePathResult{Result: newResult(w, n), prov: make([]map[uint64]provEntry, w.NumNonterms())}
	for a := range r.prov {
		r.prov[a] = map[uint64]provEntry{}
	}

	// Simple rules, recording terminal provenance. Edge beats vertex
	// label if both somehow apply; entries record their first deriver.
	// Seeding is O(edges) per rule, so it polls the governor like the
	// fixpoint below: a terminal-only grammar must still abort.
	for _, rule := range w.TermRules {
		if err := run.Err(); err != nil {
			return nil, err
		}
		name := w.Terms[rule.Term]
		em := g.EdgeMatrix(name)
		em.Iterate(func(i, j int) bool {
			key := matrix.Key(i, j)
			if _, seen := r.prov[rule.A][key]; !seen && !r.T[rule.A].Get(i, j) {
				r.prov[rule.A][key] = provEntry{kind: provEdge, rule: int32(rule.Term)}
				r.T[rule.A].Set(i, j)
			}
			return true
		})
		for _, v := range g.VertexSet(name).Ints() {
			key := matrix.Key(v, v)
			if !r.T[rule.A].Get(v, v) {
				r.prov[rule.A][key] = provEntry{kind: provVertex, rule: int32(rule.Term)}
				r.T[rule.A].Set(v, v)
			}
		}
	}
	for a, nullable := range w.Nullable {
		if !nullable {
			continue
		}
		if err := run.Err(); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			if !r.T[a].Get(i, i) {
				r.prov[a][matrix.Key(i, i)] = provEntry{kind: provEps}
				r.T[a].Set(i, i)
			}
		}
	}

	for changed := true; changed; {
		changed = false
		r.Rounds++
		span := run.StartSpan(obs.SpanRound(r.Rounds))
		for ri, rule := range w.BinRules {
			// MulWitness has no row-block cancellation; checking between
			// rule applications still bounds the latency of a cancel to
			// one multiplication.
			if err := run.Err(); err != nil {
				span.End()
				return nil, err
			}
			prod, wit := matrix.MulWitness(r.T[rule.B], r.T[rule.C])
			if err := run.Charge(prod.NVals()); err != nil {
				span.End()
				return nil, err
			}
			fresh := matrix.Sub(prod, r.T[rule.A])
			if fresh.NVals() == 0 {
				continue
			}
			fresh.Iterate(func(i, j int) bool {
				key := matrix.Key(i, j)
				r.prov[rule.A][key] = provEntry{kind: provBin, mid: wit[key], rule: int32(ri)}
				return true
			})
			run.Add(r.T[rule.A], fresh)
			changed = true
		}
		span.End()
	}
	obs.CFPQRounds.Observe(int64(r.Rounds))
	r.Work = run.Spent()
	return r, nil
}

// Path reconstructs one path witnessing (src, dst) in the start
// relation. It returns an error if the pair is not in the relation.
// Trivial (eps) derivations yield an empty step list.
func (r *SinglePathResult) Path(src, dst int) ([]PathStep, error) {
	return r.PathFor(r.W.Nonterms[r.W.Start], src, dst)
}

// PathFor reconstructs one path witnessing (src, dst) in the relation of
// the named nonterminal.
func (r *SinglePathResult) PathFor(nonterm string, src, dst int) ([]PathStep, error) {
	a := r.W.NontermID(nonterm)
	if a < 0 {
		return nil, fmt.Errorf("cfpq: unknown nonterminal %q", nonterm)
	}
	if !r.T[a].Get(src, dst) {
		return nil, fmt.Errorf("cfpq: pair (%d,%d) not in relation of %s", src, dst, nonterm)
	}
	var steps []PathStep
	if err := r.extract(a, src, dst, &steps, 0); err != nil {
		return nil, err
	}
	return steps, nil
}

// Word returns the label word of a step sequence.
func Word(steps []PathStep) []string {
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = s.Label
	}
	return out
}

const maxExtractDepth = 1 << 22 // guards against provenance corruption

func (r *SinglePathResult) extract(a, src, dst int, steps *[]PathStep, depth int) error {
	if depth > maxExtractDepth {
		return fmt.Errorf("cfpq: path extraction exceeded depth bound (corrupt provenance?)")
	}
	p, ok := r.prov[a][matrix.Key(src, dst)]
	if !ok {
		return fmt.Errorf("cfpq: missing provenance for (%s,%d,%d)", r.W.Nonterms[a], src, dst)
	}
	switch p.kind {
	case provEps:
		return nil
	case provEdge:
		*steps = append(*steps, PathStep{Src: src, Dst: dst, Label: r.W.Terms[p.rule]})
		return nil
	case provVertex:
		*steps = append(*steps, PathStep{Src: src, Dst: dst, Label: r.W.Terms[p.rule], VertexLabel: true})
		return nil
	case provBin:
		rule := r.W.BinRules[p.rule]
		if err := r.extract(rule.B, src, int(p.mid), steps, depth+1); err != nil {
			return err
		}
		return r.extract(rule.C, int(p.mid), dst, steps, depth+1)
	default:
		return fmt.Errorf("cfpq: unknown provenance kind %d", p.kind)
	}
}
