// Command mscfpq-lint is the repository's multichecker: it loads and
// type-checks every package of the module from source (standard
// library only — no x/tools dependency) and runs the custom analyzers
// that turn this codebase's kernel, locking, and determinism
// conventions into build failures:
//
//	govloop   kernel loops must poll the execution governor they have
//	lockguard `// guarded by <mu>` fields only touched under the lock
//	detrange  no map-iteration-ordered output or unsorted collection
//	errdrop   no silently dropped parse/IO errors
//
// Findings may be suppressed with `//lint:ignore <analyzer> <reason>`
// on (or directly above) the flagged line; the reason is mandatory.
//
// Usage:
//
//	mscfpq-lint [-root dir] [-run list] [-tests=false] [packages...]
//
// With no package arguments every package in the module is checked,
// each analyzer restricted to its default scope; explicit
// module-relative package arguments (e.g. internal/cfpq) override the
// scopes. Exit status is 1 when any diagnostic is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mscfpq/internal/analysis"
	"mscfpq/internal/analysis/detrange"
	"mscfpq/internal/analysis/errdrop"
	"mscfpq/internal/analysis/govloop"
	"mscfpq/internal/analysis/lockguard"
)

// analyzers is the full suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	govloop.Analyzer,
	lockguard.Analyzer,
	detrange.Analyzer,
	errdrop.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mscfpq-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", "", "module root (default: nearest go.mod above the working directory)")
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	tests := fs.Bool("tests", true, "also analyze _test.go files (per-analyzer filters still apply)")
	verbose := fs.Bool("v", false, "log each package as it is analyzed")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mscfpq-lint [flags] [module-relative packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(stderr, "mscfpq-lint:", err)
		return 2
	}

	if *root == "" {
		*root, err = findRoot()
		if err != nil {
			fmt.Fprintln(stderr, "mscfpq-lint:", err)
			return 2
		}
	}
	mod, err := analysis.LoadModule(*root)
	if err != nil {
		fmt.Fprintln(stderr, "mscfpq-lint:", err)
		return 2
	}

	dirs := fs.Args()
	explicit := len(dirs) > 0
	if !explicit {
		dirs, err = mod.Dirs()
		if err != nil {
			fmt.Fprintln(stderr, "mscfpq-lint:", err)
			return 2
		}
	}

	var diags []analysis.Diagnostic
	for _, rel := range dirs {
		todo := applicable(selected, rel, explicit)
		if len(todo) == 0 {
			continue
		}
		if *verbose {
			fmt.Fprintf(stderr, "mscfpq-lint: %s\n", mod.ImportPath(rel))
		}
		units, err := mod.LoadUnits(rel, *tests)
		if err != nil {
			fmt.Fprintln(stderr, "mscfpq-lint:", err)
			return 2
		}
		for _, u := range units {
			for _, a := range todo {
				ds, err := analysis.Run(a, u)
				if err != nil {
					fmt.Fprintln(stderr, "mscfpq-lint:", err)
					return 2
				}
				diags = append(diags, ds...)
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := mod.Fset().Position(diags[i].Pos), mod.Fset().Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	for _, d := range diags {
		pos := mod.Fset().Position(d.Pos)
		rel, err := filepath.Rel(*root, pos.Filename)
		if err != nil {
			rel = pos.Filename
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mscfpq-lint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves -run.
func selectAnalyzers(list string) ([]*analysis.Analyzer, error) {
	if list == "" {
		return analyzers, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// applicable returns the analyzers whose scope covers a
// module-relative package directory. Explicitly listed packages
// bypass DefaultScope.
func applicable(selected []*analysis.Analyzer, rel string, explicit bool) []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, a := range selected {
		if explicit || inScope(a, rel) {
			out = append(out, a)
		}
	}
	return out
}

func inScope(a *analysis.Analyzer, rel string) bool {
	if len(a.DefaultScope) == 0 {
		return true
	}
	for _, prefix := range a.DefaultScope {
		if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			return true
		}
	}
	return false
}

// findRoot walks up from the working directory to the nearest go.mod.
func findRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
