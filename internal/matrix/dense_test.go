package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		m, _ := randomMatrix(rng, 1+rng.Intn(20), 1+rng.Intn(90), 0.2)
		d := FromBool(m)
		if d.NVals() != m.NVals() {
			t.Fatalf("nvals: dense %d sparse %d", d.NVals(), m.NVals())
		}
		back := d.ToBool()
		mustValidate(t, back)
		if !back.Equal(m) {
			t.Fatal("round trip changed matrix")
		}
	}
}

func TestDenseSetGet(t *testing.T) {
	d := NewDense(3, 130) // multiple words per row
	d.Set(1, 0)
	d.Set(1, 63)
	d.Set(1, 64)
	d.Set(2, 129)
	if !d.Get(1, 0) || !d.Get(1, 63) || !d.Get(1, 64) || !d.Get(2, 129) {
		t.Fatal("set bits not readable")
	}
	if d.Get(0, 0) || d.Get(1, 65) {
		t.Fatal("phantom bits")
	}
	if d.NVals() != 4 {
		t.Fatalf("NVals = %d", d.NVals())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Get(3, 0)
}

func TestDenseCloneEqualOr(t *testing.T) {
	a := NewDense(2, 70)
	a.Set(0, 5)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Set(1, 69)
	if a.Equal(b) || a.Get(1, 69) {
		t.Fatal("clone shares storage")
	}
	if !a.OrInPlace(b) {
		t.Fatal("OR adding a bit must report change")
	}
	if !a.Get(1, 69) {
		t.Fatal("OR lost bit")
	}
	if a.OrInPlace(b) {
		t.Fatal("OR of subset must report no change")
	}
}

func TestMulBoolDenseMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 30; trial++ {
		a, _ := randomMatrix(rng, 1+rng.Intn(15), 1+rng.Intn(15), 0.25)
		b, _ := randomMatrix(rng, a.NCols(), 1+rng.Intn(80), 0.25)
		want := Mul(a, b)
		got := MulBoolDense(a, FromBool(b)).ToBool()
		if !got.Equal(want) {
			t.Fatalf("trial %d: dense kernel differs", trial)
		}
	}
}

func TestMulDenseMatchesSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 30; trial++ {
		a, _ := randomMatrix(rng, 1+rng.Intn(15), 1+rng.Intn(70), 0.3)
		b, _ := randomMatrix(rng, a.NCols(), 1+rng.Intn(70), 0.3)
		want := FromBool(Mul(a, b))
		got := MulDense(FromBool(a), FromBool(b))
		if !got.Equal(want) {
			t.Fatalf("trial %d: MulDense differs", trial)
		}
	}
}

// Property (testing/quick): MulHybrid always agrees with Mul, whichever
// kernel the density heuristic picks.
func TestMulHybridAgreesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	f := func(dense bool) bool {
		density := 0.02
		if dense {
			density = 0.3
		}
		a, _ := randomMatrix(rng, 12, 18, 0.2)
		b, _ := randomMatrix(rng, 18, 25, density)
		return MulHybrid(a, b).Equal(Mul(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDensity(t *testing.T) {
	m := NewBool(4, 5)
	if m.Density() != 0 {
		t.Fatal("empty density")
	}
	m.Set(0, 0)
	m.Set(1, 1)
	if got := m.Density(); got != 0.1 {
		t.Fatalf("density = %v", got)
	}
	if NewBool(0, 0).Density() != 0 {
		t.Fatal("degenerate density")
	}
}

func TestDenseShapePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewDense(-1, 2) },
		func() { MulBoolDense(NewBool(2, 3), NewDense(4, 2)) },
		func() { MulDense(NewDense(2, 3), NewDense(4, 2)) },
		func() { NewDense(2, 2).OrInPlace(NewDense(3, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// ---------------------------------------------------------------------
// Kernel benchmarks: the CSR-vs-bitset format ablation.

func benchPair(density float64) (*Bool, *Bool) {
	rng := rand.New(rand.NewSource(99))
	a, _ := randomMatrix(rng, 400, 400, 0.01)
	b, _ := randomMatrix(rng, 400, 400, density)
	return a, b
}

func BenchmarkMulSparseRHS(b *testing.B) {
	x, y := benchPair(0.005)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulDenseRHSSparseKernel(b *testing.B) {
	x, y := benchPair(0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulDenseRHSBitsetKernel(b *testing.B) {
	x, y := benchPair(0.2)
	d := FromBool(y)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulBoolDense(x, d)
	}
}

func BenchmarkMulHybrid(b *testing.B) {
	x, y := benchPair(0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulHybrid(x, y)
	}
}

func BenchmarkTranspose(b *testing.B) {
	x, _ := benchPair(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transpose(x)
	}
}

func BenchmarkAddInPlace(b *testing.B) {
	x, y := benchPair(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AddInPlace(x.Clone(), y)
	}
}
