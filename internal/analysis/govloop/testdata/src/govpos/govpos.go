// Package govpos holds govloop true positives: kernel-sized loops in
// functions that have a governor in scope but never poll it.
package govpos

import (
	"context"

	"mscfpq/internal/exec"
)

// drain is a worklist loop whose trip count scales with the queue, with
// a context in scope it never consults.
func drain(ctx context.Context, work []int) int {
	sum := 0
	for len(work) > 0 { // want `kernel-sized loop without a governor checkpoint`
		sum += work[0]
		work = work[1:]
	}
	select {
	case <-ctx.Done():
	default:
	}
	return sum
}

// fixpoint iterates until convergence with an exec.Run in scope; the
// nested sweep makes it at least quadratic.
func fixpoint(run *exec.Run, n int) int {
	total := 0
	for changed := true; changed; { // want `kernel-sized loop without a governor checkpoint`
		changed = false
		for i := 0; i < n; i++ {
			if total < n*n {
				total += i
				changed = true
			}
		}
	}
	_ = run
	return total
}

// nested is a flat-looking double loop (quadratic) that ignores its
// governor entirely.
func nested(ctx context.Context, m [][]bool) int {
	count := 0
	for i := range m { // want `kernel-sized loop without a governor checkpoint`
		for j := range m[i] {
			if m[i][j] {
				count++
			}
		}
	}
	_ = ctx.Err
	return count
}
