package obs

import "strconv"

// The instrument catalog (DESIGN.md §10). Naming convention:
// <layer>.<subject>.<unit-ish suffix>; the INFO command groups by the
// first dotted component (kernel → kernels section, gdb → gdb,
// dur → durability, cache → cache, resp/governor → server).
//
// Trace span counters reuse these names verbatim, so a PROFILE span
// tree's counter totals are directly comparable against a registry
// snapshot delta.
var (
	// Matrix kernels (charged by the execution governor, exec.Run).
	KernelMulOps       = Default.Counter("kernel.mul.ops")
	KernelMulNNZ       = Default.Counter("kernel.mul.nnz")
	KernelAddOps       = Default.Counter("kernel.add.ops")
	KernelAddNNZ       = Default.Counter("kernel.add.nnz")
	KernelTransposeOps = Default.Counter("kernel.transpose.ops")
	KernelFrontierNNZ  = Default.Histogram("kernel.frontier.nnz", SizeBuckets)

	// Fixpoint shape: rounds until convergence, per algorithm family.
	CFPQRounds = Default.Histogram("kernel.cfpq.rounds", RoundBuckets)
	RPQRounds  = Default.Histogram("kernel.rpq.rounds", RoundBuckets)

	// Execution governor outcomes (one per top-level query).
	GovCompleted = Default.Counter("governor.completed")
	GovCancelled = Default.Counter("governor.cancelled")
	GovBudget    = Default.Counter("governor.budget_exceeded")
	GovFailed    = Default.Counter("governor.failed")

	// Graph database command path.
	GdbQueries        = Default.Counter("gdb.queries")
	GdbWrites         = Default.Counter("gdb.writes")
	GdbSlowQueries    = Default.Counter("gdb.slow_queries")
	GdbQueryLatencyUS = Default.Histogram("gdb.query.latency_us", LatencyBuckets)

	// Durability (snapshots + op journal).
	DurSnapshotBytes  = Default.Counter("dur.snapshot.bytes")
	DurSnapshots      = Default.Counter("dur.snapshot.count")
	DurJournalBytes   = Default.Counter("dur.journal.bytes")
	DurJournalAppends = Default.Counter("dur.journal.appends")
	DurRotations      = Default.Counter("dur.rotations")
	DurFsyncLatencyUS = Default.Histogram("dur.fsync.latency_us", LatencyBuckets)

	// Version-keyed query cache (internal/store).
	CacheHits          = Default.Counter("cache.hits")
	CacheMisses        = Default.Counter("cache.misses")
	CacheEvictions     = Default.Counter("cache.evictions")
	CacheInvalidations = Default.Counter("cache.invalidations")
	CacheBytes         = Default.Gauge("cache.bytes")
	CacheEntries       = Default.Gauge("cache.entries")

	// RESP serving surface.
	RespConnsTotal   = Default.Counter("resp.conns.total")
	RespConnsOpen    = Default.Gauge("resp.conns.open")
	RespConnsRefused = Default.Counter("resp.conns.refused")
	RespBusyShed     = Default.Counter("resp.busy_shed")
	RespCommands     = Default.Counter("resp.commands")

	// Multi-source query coalescing (internal/batch, DESIGN.md §14):
	// concurrent CFPQ queries over the same (snapshot, grammar,
	// algorithm, limits) key merged into one shared fixpoint.
	BatchGroups          = Default.Counter("batch.groups")
	BatchMembers         = Default.Counter("batch.members")
	BatchMembersPerGroup = Default.Histogram("batch.members.per_group", SizeBuckets)
	BatchSolo            = Default.Counter("batch.solo")
	BatchSourcesDeduped  = Default.Counter("batch.sources.deduped")
	BatchWorkShared      = Default.Counter("batch.work.shared")
	BatchWorkAmortized   = Default.Counter("batch.work.amortized")
	BatchAborted         = Default.Counter("batch.aborted")

	// Replication (internal/repl): the leader side counts what it ships,
	// the follower side counts what it applies and how often the stream
	// had to be rebuilt.
	ReplBytesShipped       = Default.Counter("repl.shipped.bytes")
	ReplRecordsShipped     = Default.Counter("repl.shipped.records")
	ReplSnapshotBootstraps = Default.Counter("repl.snapshot.bootstraps")
	ReplReconnects         = Default.Counter("repl.reconnects")
	ReplRecordsApplied     = Default.Counter("repl.applied.records")
	ReplReplicasConnected  = Default.Gauge("repl.replicas.connected")
	ReplLagSeconds         = Default.Gauge("repl.lag_seconds")
)

// RespCmdLatency returns the latency histogram for one RESP command.
// Callers must pass a normalized name drawn from the fixed command
// set (unknown commands collapse to "other") so hostile clients
// cannot grow the registry without bound.
func RespCmdLatency(name string) *Histogram {
	return Default.Histogram("resp.cmd."+name+".latency_us", LatencyBuckets)
}

// Trace counter keys for the kernel instruments (shared between
// Run hooks and tests asserting span-tree/registry agreement).
const (
	KeyMulOps       = "kernel.mul.ops"
	KeyMulNNZ       = "kernel.mul.nnz"
	KeyAddOps       = "kernel.add.ops"
	KeyAddNNZ       = "kernel.add.nnz"
	KeyTransposeOps = "kernel.transpose.ops"
)

// Layer prefixes: the first dotted component of every instrument name
// must be one of these, which is what the INFO command sections by.
// The obscatalog analyzer enforces both directions.
const (
	LayerKernel   = "kernel"
	LayerGovernor = "governor"
	LayerGdb      = "gdb"
	LayerDur      = "dur"
	LayerCache    = "cache"
	LayerResp     = "resp"
	LayerRepl     = "repl"
	LayerBatch    = "batch"
)

// Span names of the query trace tree (DESIGN.md §10). Free-string span
// names drift away from what PROFILE consumers grep for; every span a
// trace opens must use one of these or an obs helper like SpanRound.
const (
	SpanQuery     = "query"     // root span of one GRAPH.QUERY
	SpanParse     = "parse"     // Cypher parse + plan build
	SpanPlan      = "plan"      // plan-context resolution (grammar, index warmup)
	SpanExecute   = "execute"   // fixpoint evaluation
	SpanCacheHit  = "cache.hit" // result served from the version-keyed cache
	SpanCacheMiss = "cache.miss"
	SpanDiffTest  = "difftest"   // root span of a differential-harness run
	SpanBatchWait = "batch.wait" // time a member spent waiting for its group
	SpanBatchRun  = "batch.run"  // the shared fixpoint a member's answer came from
)

// SpanRound names the n-th fixpoint round's span; evaluators must use
// it instead of hand-rolled fmt.Sprintf so the name family stays
// greppable and catalog-checked.
func SpanRound(n int) string { return "round " + strconv.Itoa(n) }
