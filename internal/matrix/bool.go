package matrix

import (
	"fmt"
	"sort"
	"strings"
)

// Bool is a sparse Boolean matrix stored row-wise: rows[i] is the sorted,
// duplicate-free slice of column indices whose entries are true.
//
// The zero value is not usable; construct with NewBool.
type Bool struct {
	nrows, ncols int
	rows         [][]uint32
	nvals        int

	// shared marks rows whose backing arrays may be aliased by a
	// copy-on-write sibling (CloneCOW). A shared row must be copied
	// before any in-place mutation; rows replaced wholesale (SetRow,
	// AddInPlace, ...) shed the mark with the old pointer. nil when the
	// matrix never took part in a COW clone.
	shared []bool
}

// NewBool returns an empty nrows x ncols Boolean matrix.
func NewBool(nrows, ncols int) *Bool {
	if nrows < 0 || ncols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %dx%d", nrows, ncols))
	}
	return &Bool{nrows: nrows, ncols: ncols, rows: make([][]uint32, nrows)}
}

// NewBoolFromPairs builds a matrix from (row, col) coordinate pairs.
// Pairs may be unordered and may repeat.
func NewBoolFromPairs(nrows, ncols int, pairs [][2]int) *Bool {
	m := NewBool(nrows, ncols)
	for _, p := range pairs {
		m.Set(p[0], p[1])
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Bool {
	m := NewBool(n, n)
	for i := 0; i < n; i++ {
		m.rows[i] = []uint32{uint32(i)}
	}
	m.nvals = n
	return m
}

// NRows returns the number of rows.
func (m *Bool) NRows() int { return m.nrows }

// NCols returns the number of columns.
func (m *Bool) NCols() int { return m.ncols }

// NVals returns the number of stored (true) entries.
func (m *Bool) NVals() int { return m.nvals }

// Empty reports whether the matrix has no true entries.
func (m *Bool) Empty() bool { return m.nvals == 0 }

func (m *Bool) checkIndex(i, j int) {
	if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %dx%d", i, j, m.nrows, m.ncols))
	}
}

// ensureOwned copies row i when its backing array may be shared with a
// COW sibling, so in-place mutation cannot corrupt the other matrix.
func (m *Bool) ensureOwned(i int) {
	if m.shared != nil && m.shared[i] {
		m.rows[i] = append([]uint32(nil), m.rows[i]...)
		m.shared[i] = false
	}
}

// markOwned records that row i was replaced with a freshly allocated
// slice and no longer aliases a COW sibling.
func (m *Bool) markOwned(i int) {
	if m.shared != nil {
		m.shared[i] = false
	}
}

// CloneCOW returns a copy-on-write clone: the clone shares every row's
// backing array with m until either side mutates that row. Both
// matrices mark the rows shared, so in-place mutation on either side
// copies first and the other side observes no change.
func (m *Bool) CloneCOW() *Bool {
	c := &Bool{nrows: m.nrows, ncols: m.ncols, nvals: m.nvals,
		rows: make([][]uint32, m.nrows), shared: make([]bool, m.nrows)}
	copy(c.rows, m.rows)
	if m.shared == nil {
		m.shared = make([]bool, m.nrows)
	}
	for i, row := range m.rows {
		if len(row) > 0 {
			c.shared[i] = true
			m.shared[i] = true
		}
	}
	return c
}

// CloneFrozen returns a copy-on-write clone of a matrix that will
// never be mutated again. Only the clone's rows are marked shared —
// m itself is not written at all, so a published snapshot stays
// bit-for-bit immutable while the clone copies rows lazily on its
// first write. The caller owns the freeze promise: mutating m after
// CloneFrozen corrupts the clone through the aliased rows (use
// CloneCOW when both sides stay mutable).
func (m *Bool) CloneFrozen() *Bool {
	c := &Bool{nrows: m.nrows, ncols: m.ncols, nvals: m.nvals,
		rows: make([][]uint32, m.nrows), shared: make([]bool, m.nrows)}
	copy(c.rows, m.rows)
	for i, row := range m.rows {
		if len(row) > 0 {
			c.shared[i] = true
		}
	}
	return c
}

// Set makes entry (i, j) true.
func (m *Bool) Set(i, j int) {
	m.checkIndex(i, j)
	m.ensureOwned(i)
	row := m.rows[i]
	c := uint32(j)
	k := sort.Search(len(row), func(x int) bool { return row[x] >= c })
	if k < len(row) && row[k] == c {
		return
	}
	row = append(row, 0)
	copy(row[k+1:], row[k:])
	row[k] = c
	m.rows[i] = row
	m.nvals++
}

// Unset makes entry (i, j) false.
func (m *Bool) Unset(i, j int) {
	m.checkIndex(i, j)
	m.ensureOwned(i)
	row := m.rows[i]
	c := uint32(j)
	k := sort.Search(len(row), func(x int) bool { return row[x] >= c })
	if k >= len(row) || row[k] != c {
		return
	}
	m.rows[i] = append(row[:k], row[k+1:]...)
	m.nvals--
}

// Get reports whether entry (i, j) is true.
func (m *Bool) Get(i, j int) bool {
	m.checkIndex(i, j)
	row := m.rows[i]
	c := uint32(j)
	k := sort.Search(len(row), func(x int) bool { return row[x] >= c })
	return k < len(row) && row[k] == c
}

// Row returns the sorted column indices of row i. The returned slice is
// owned by the matrix and must not be modified.
func (m *Bool) Row(i int) []uint32 {
	if i < 0 || i >= m.nrows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.nrows))
	}
	return m.rows[i]
}

// SetRow replaces row i with the given sorted, duplicate-free column
// indices. The slice is taken over by the matrix.
func (m *Bool) SetRow(i int, cols []uint32) {
	if i < 0 || i >= m.nrows {
		panic(fmt.Sprintf("matrix: row %d out of range %d", i, m.nrows))
	}
	for k := 0; k < len(cols); k++ {
		if int(cols[k]) >= m.ncols {
			panic(fmt.Sprintf("matrix: column %d out of range %d", cols[k], m.ncols))
		}
		if k > 0 && cols[k-1] >= cols[k] {
			panic("matrix: SetRow requires sorted duplicate-free columns")
		}
	}
	m.nvals += len(cols) - len(m.rows[i])
	m.rows[i] = cols
	m.markOwned(i)
}

// Clone returns a deep copy of the matrix.
func (m *Bool) Clone() *Bool {
	c := NewBool(m.nrows, m.ncols)
	c.nvals = m.nvals
	for i, row := range m.rows {
		if len(row) == 0 {
			continue
		}
		c.rows[i] = append([]uint32(nil), row...)
	}
	return c
}

// Equal reports whether the two matrices have the same shape and entries.
func (m *Bool) Equal(o *Bool) bool {
	if m.nrows != o.nrows || m.ncols != o.ncols || m.nvals != o.nvals {
		return false
	}
	for i := range m.rows {
		a, b := m.rows[i], o.rows[i]
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if a[k] != b[k] {
				return false
			}
		}
	}
	return true
}

// Pairs returns all true entries as (row, col) pairs in row-major order.
func (m *Bool) Pairs() [][2]int {
	out := make([][2]int, 0, m.nvals)
	for i, row := range m.rows {
		for _, c := range row {
			out = append(out, [2]int{i, int(c)})
		}
	}
	return out
}

// Iterate calls fn for every true entry in row-major order. Iteration
// stops early when fn returns false.
func (m *Bool) Iterate(fn func(i, j int) bool) {
	for i, row := range m.rows {
		for _, c := range row {
			if !fn(i, int(c)) {
				return
			}
		}
	}
}

// Clear removes all entries, keeping the shape.
func (m *Bool) Clear() {
	for i := range m.rows {
		m.rows[i] = nil
		m.markOwned(i)
	}
	m.nvals = 0
}

// Resize grows the matrix to at least nrows x ncols, keeping entries.
// Shrinking is not supported and panics.
func (m *Bool) Resize(nrows, ncols int) {
	if nrows < m.nrows || ncols < m.ncols {
		panic("matrix: Resize cannot shrink")
	}
	if nrows > m.nrows {
		grown := make([][]uint32, nrows)
		copy(grown, m.rows)
		m.rows = grown
		if m.shared != nil {
			gs := make([]bool, nrows)
			copy(gs, m.shared)
			m.shared = gs
		}
		m.nrows = nrows
	}
	m.ncols = ncols
}

// String renders small matrices as a 0/1 grid; large matrices are
// summarized. Intended for debugging and test failure messages.
func (m *Bool) String() string {
	if m.nrows > 16 || m.ncols > 32 {
		return fmt.Sprintf("Bool{%dx%d, %d vals}", m.nrows, m.ncols, m.nvals)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Bool %dx%d:\n", m.nrows, m.ncols)
	for i := 0; i < m.nrows; i++ {
		row := m.rows[i]
		k := 0
		for j := 0; j < m.ncols; j++ {
			if k < len(row) && int(row[k]) == j {
				b.WriteByte('1')
				k++
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// validate checks internal invariants; used by tests.
func (m *Bool) validate() error {
	if m.shared != nil && len(m.shared) != m.nrows {
		return fmt.Errorf("shared bitmap length %d does not match %d rows", len(m.shared), m.nrows)
	}
	n := 0
	for i, row := range m.rows {
		for k, c := range row {
			if int(c) >= m.ncols {
				return fmt.Errorf("row %d: column %d out of range %d", i, c, m.ncols)
			}
			if k > 0 && row[k-1] >= c {
				return fmt.Errorf("row %d: columns not strictly sorted at %d", i, k)
			}
		}
		n += len(row)
	}
	if n != m.nvals {
		return fmt.Errorf("nvals %d does not match stored entries %d", m.nvals, n)
	}
	return nil
}
