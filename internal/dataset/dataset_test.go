package dataset

import (
	"testing"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/grammar"
	"mscfpq/internal/matrix"
)

func TestRegistryComplete(t *testing.T) {
	specs := Registry()
	if len(specs) != 8 {
		t.Fatalf("registry has %d specs, want 8 (Table 1)", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.Name] {
			t.Fatalf("duplicate spec %q", s.Name)
		}
		seen[s.Name] = true
		if s.Vertices <= 0 {
			t.Fatalf("%s: no vertices", s.Name)
		}
	}
	for _, want := range []string{"core", "eclass_514en", "enzyme", "geospecies", "go", "go-hierarchy", "pathways", "taxonomy"} {
		if !seen[want] {
			t.Fatalf("missing Table 1 graph %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("core")
	if err != nil || s.Name != "core" {
		t.Fatalf("ByName(core) = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
	if len(Names()) != 8 {
		t.Fatal("Names() incomplete")
	}
}

func TestGenerateMatchesBudgets(t *testing.T) {
	s, _ := ByName("core")
	g := Generate(s)
	if g.NumVertices() != s.Vertices {
		t.Fatalf("vertices = %d, want %d", g.NumVertices(), s.Vertices)
	}
	if got := g.EdgeCount("subClassOf"); got != s.SubClassOf {
		t.Fatalf("subClassOf = %d, want %d", got, s.SubClassOf)
	}
	if got := g.EdgeCount("type"); got != s.TypeEdges {
		t.Fatalf("type = %d, want %d", got, s.TypeEdges)
	}
	if got := g.EdgeCount("relatedTo"); got != s.OtherEdges {
		t.Fatalf("relatedTo = %d, want %d", got, s.OtherEdges)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s, _ := ByName("pathways")
	s = Scaled(s, 0.1)
	a, b := Generate(s), Generate(s)
	for _, l := range a.EdgeLabels() {
		if !a.EdgeMatrix(l).Equal(b.EdgeMatrix(l)) {
			t.Fatalf("label %q differs between identical generations", l)
		}
	}
}

func TestScaledPreservesRatios(t *testing.T) {
	s, _ := ByName("enzyme")
	half := Scaled(s, 0.5)
	if half.Vertices != s.Vertices/2 {
		t.Fatalf("vertices = %d", half.Vertices)
	}
	ratioFull := float64(s.SubClassOf) / float64(s.Vertices)
	ratioHalf := float64(half.SubClassOf) / float64(half.Vertices)
	if ratioHalf < ratioFull*0.9 || ratioHalf > ratioFull*1.1 {
		t.Fatalf("subClassOf ratio drifted: %v vs %v", ratioHalf, ratioFull)
	}
	if Scaled(s, 1) != s {
		t.Fatal("identity scale must be a no-op")
	}
}

func TestScaledRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Scaled(Spec{Vertices: 10}, 0)
}

func TestGeospeciesAnalogHasBroader(t *testing.T) {
	s, _ := ByName("geospecies")
	g := Generate(Scaled(s, 0.01))
	if g.EdgeCount("broaderTransitive") == 0 {
		t.Fatal("geospecies analog must have broaderTransitive edges")
	}
	if g.EdgeCount("subClassOf") != 0 {
		t.Fatal("geospecies analog must not have subClassOf edges")
	}
}

func TestGoHierarchyAnalogIsDenseDAG(t *testing.T) {
	s, _ := ByName("go-hierarchy")
	g := Generate(Scaled(s, 0.02))
	// All edges are subClassOf and average out-degree is far above 1.
	if g.EdgeCount("subClassOf") != g.NumEdges() {
		t.Fatal("go-hierarchy analog must be pure subClassOf")
	}
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if avg < 3 {
		t.Fatalf("go-hierarchy analog too sparse: avg degree %.2f", avg)
	}
}

// The generated ontologies must actually exercise the paper's queries:
// G2 over a scaled analog yields a non-empty same-generation relation.
func TestGeneratedGraphAnswersG2(t *testing.T) {
	s, _ := ByName("core")
	g := Generate(s)
	w := grammar.MustWCNF(grammar.G2())
	src := matrix.NewVector(g.NumVertices())
	for v := 0; v < 50; v++ {
		src.Set(v)
	}
	ms, err := cfpq.MultiSource(g, w, src)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Answer().NVals() == 0 {
		t.Fatal("G2 over core analog returned nothing; hierarchy too flat")
	}
}

func TestGeoQueryOnGeospeciesAnalog(t *testing.T) {
	s, _ := ByName("geospecies")
	g := Generate(Scaled(s, 0.02))
	w := grammar.MustWCNF(grammar.Geo())
	src := matrix.NewVector(g.NumVertices())
	for v := 0; v < 100; v++ {
		src.Set(v)
	}
	ms, err := cfpq.MultiSource(g, w, src)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Answer().NVals() == 0 {
		t.Fatal("Geo query over geospecies analog returned nothing")
	}
}

// hierarchyDepth measures the longest parent chain over a label by
// dynamic programming (the graph is a DAG by construction: every edge
// goes from a higher id to a lower id).
func hierarchyDepth(t *testing.T, s Spec, label string) int {
	t.Helper()
	g := Generate(s)
	depth := make([]int, g.NumVertices())
	maxD := 0
	m := g.EdgeMatrix(label)
	for i := 0; i < g.NumVertices(); i++ {
		for _, p := range m.Row(i) {
			if int(p) >= i {
				t.Fatalf("%s: hierarchy edge %d->%d is not id-decreasing", s.Name, i, p)
			}
			if d := depth[p] + 1; d > depth[i] {
				depth[i] = d
			}
		}
		if depth[i] > maxD {
			maxD = depth[i]
		}
	}
	return maxD
}

// Real ontologies are 10-40 levels deep; the generator must stay in
// that regime at every scale, or the matrix fixpoint iteration counts
// (∝ derivation depth) become unrealistic.
func TestHierarchyDepthRealistic(t *testing.T) {
	for _, name := range []string{"core", "enzyme", "go-hierarchy"} {
		s, _ := ByName(name)
		for _, f := range []float64{1, 0.1} {
			sc := Scaled(s, f)
			if sc.Classes < 100 {
				continue
			}
			d := hierarchyDepth(t, sc, "subClassOf")
			if d < sc.TargetDepth/3 || d > sc.TargetDepth*4 {
				t.Errorf("%s depth = %d, target %d", sc.Name, d, sc.TargetDepth)
			}
		}
	}
	geo, _ := ByName("geospecies")
	geo = Scaled(geo, 0.05)
	if d := hierarchyDepth(t, geo, "broaderTransitive"); d < 8 || d > 120 {
		t.Errorf("geospecies broader depth = %d", d)
	}
}

func TestTwoCycles(t *testing.T) {
	g := TwoCycles(2, 3)
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d, want 4", g.NumVertices())
	}
	if g.EdgeCount("a") != 2 || g.EdgeCount("b") != 3 {
		t.Fatalf("cycle sizes wrong: a=%d b=%d", g.EdgeCount("a"), g.EdgeCount("b"))
	}
	// a^n b^n relates 0 to 0 when n is a multiple of lcm(2,3)=6.
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	r, err := cfpq.AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Start().Get(0, 0) {
		t.Fatal("two-cycle relation missing (0,0)")
	}
}

func TestLinearChain(t *testing.T) {
	g := LinearChain(5)
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	r, err := cfpq.AllPairs(g, w)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Start().Get(0, 10) {
		t.Fatalf("chain relation missing (0,10): %v", r.Pairs())
	}
}
