// Package lockneg holds lockguard negatives: accesses the analyzer
// must accept.
package lockneg

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// deferred is the canonical lock/defer-unlock critical section.
func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// window locks and unlocks around the access explicitly.
func (c *counter) window() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// earlyReturn unlocks inside a branch that returns; the critical
// section continues after the branch.
func (c *counter) earlyReturn(skip bool) {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// bumpLocked documents the caller-holds-the-lock convention with its
// name suffix.
func (c *counter) bumpLocked() {
	c.n++
}

// construct initializes a value that cannot be shared yet.
func construct(n int) *counter {
	c := &counter{}
	c.n = n
	return c
}

type table struct {
	mu sync.RWMutex
	m  map[string]int // guarded by mu
}

// readShared reads under the read lock, which is enough.
func (t *table) readShared(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

// writeExclusive writes under the write lock.
func (t *table) writeExclusive(k string, v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m[k] = v
}
