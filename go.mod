module mscfpq

go 1.22
