// Package durneg holds negatives for the durability-scope rule:
// handled lifecycle errors, documented suppressions, and methods the
// rule does not cover.
package durneg

import "os"

// handled propagates both lifecycle errors.
func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		//lint:ignore errdrop the sync error is the one worth reporting; close cannot add to it
		_ = f.Close()
		return err
	}
	return f.Close()
}

// suppressed documents why the discard is safe.
func suppressed(f *os.File) {
	//lint:ignore errdrop read-only file; close failures cannot lose data
	_ = f.Close()
}

// otherMethod drops an error from a method the rule does not single
// out; os.File.Chdir is outside the durability contract.
func otherMethod(f *os.File) {
	f.Chdir()
}

// valueDiscarded keeps the error.
func valueDiscarded(f *os.File) error {
	err := f.Sync()
	return err
}
