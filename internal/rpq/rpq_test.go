package rpq

import (
	"math/rand"
	"testing"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

func TestParseRegex(t *testing.T) {
	cases := map[string]string{
		"a":        "a",
		"a b":      "a b",
		"a | b":    "(a | b)",
		"a*":       "(a)*",
		"a+ b?":    "(a)+ (b)?",
		"(a b)* c": "(a b)* c",
		"a | b c":  "(a | b c)",
		"type_r a": "type_r a",
		"((a))":    "a",
	}
	for src, want := range cases {
		node, err := ParseRegex(src)
		if err != nil {
			t.Errorf("ParseRegex(%q): %v", src, err)
			continue
		}
		if got := node.String(); got != want {
			t.Errorf("ParseRegex(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestParseRegexErrors(t *testing.T) {
	for _, src := range []string{"", "(", "a)", "|a", "a |", "*", "a $ b", "( )"} {
		if _, err := ParseRegex(src); err == nil {
			t.Errorf("ParseRegex(%q): expected error", src)
		}
	}
}

func TestNFAAcceptsWord(t *testing.T) {
	n, err := CompileRegex("a (b | c)* d?")
	if err != nil {
		t.Fatal(err)
	}
	accept := [][]string{
		{"a"}, {"a", "d"}, {"a", "b", "c", "b"}, {"a", "b", "d"},
	}
	reject := [][]string{
		{}, {"d"}, {"a", "d", "d"}, {"b"}, {"a", "a"},
	}
	for _, w := range accept {
		if !n.AcceptsWord(w) {
			t.Errorf("rejected %v", w)
		}
	}
	for _, w := range reject {
		if n.AcceptsWord(w) {
			t.Errorf("accepted %v", w)
		}
	}
}

func chainGraph(labels ...string) *graph.Graph {
	g := graph.New(len(labels) + 1)
	for i, l := range labels {
		g.AddEdge(i, l, i+1)
	}
	return g
}

func TestEvalPairsChain(t *testing.T) {
	g := chainGraph("a", "b", "b", "c")
	n, err := CompileRegex("a b* c?")
	if err != nil {
		t.Fatal(err)
	}
	src := matrix.NewVectorFromIndices(5, []int{0})
	got, err := EvalPairs(g, n, src)
	if err != nil {
		t.Fatal(err)
	}
	// From 0: a -> 1; a b -> 2; a b b -> 3; a b b c -> 4.
	want := matrix.NewBoolFromPairs(5, 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if !got.Equal(want) {
		t.Fatalf("pairs = %v, want %v", got.Pairs(), want.Pairs())
	}
	reach, err := EvalReachable(g, n, src)
	if err != nil {
		t.Fatal(err)
	}
	if !reach.Equal(matrix.NewVectorFromIndices(5, []int{1, 2, 3, 4})) {
		t.Fatalf("reachable = %v", reach)
	}
}

func TestEvalPairsInverseLabels(t *testing.T) {
	g := chainGraph("a", "a")
	n, err := CompileRegex("a_r")
	if err != nil {
		t.Fatal(err)
	}
	src := matrix.NewVectorFromIndices(3, []int{1, 2})
	got, err := EvalPairs(g, n, src)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.NewBoolFromPairs(3, 3, [][2]int{{1, 0}, {2, 1}})
	if !got.Equal(want) {
		t.Fatalf("pairs = %v", got.Pairs())
	}
}

func TestEvalErrors(t *testing.T) {
	n, _ := CompileRegex("a")
	if _, err := EvalPairs(nil, n, nil); err == nil {
		t.Fatal("expected nil graph error")
	}
	g := chainGraph("a")
	if _, err := EvalPairs(g, n, matrix.NewVector(99)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

// randomWordAccept compares NFA acceptance against grammar membership of
// the reduced CFG: the languages must be identical.
func TestToGrammarLanguageEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	regexes := []string{"a", "a b", "a | b", "a*", "(a b)+", "a (b | c)* d?", "a? b?"}
	alphabet := []string{"a", "b", "c", "d"}
	for _, src := range regexes {
		n, err := CompileRegex(src)
		if err != nil {
			t.Fatal(err)
		}
		w := grammar.MustWCNF(ToGrammar(n))
		for trial := 0; trial < 120; trial++ {
			word := make([]string, rng.Intn(5))
			for i := range word {
				word[i] = alphabet[rng.Intn(len(alphabet))]
			}
			if got, want := w.Accepts(word), n.AcceptsWord(word); got != want {
				t.Fatalf("regex %q word %v: grammar=%v nfa=%v", src, word, got, want)
			}
		}
	}
}

// Property (experiment E11's correctness leg): direct RPQ evaluation
// equals CFPQ over the regex-derived grammar on random graphs.
func TestRPQViaCFPQProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	regexes := []string{"a b", "a+ b", "(a | b)*", "a_r* b"}
	for _, srcRe := range regexes {
		n, err := CompileRegex(srcRe)
		if err != nil {
			t.Fatal(err)
		}
		w := grammar.MustWCNF(ToGrammar(n))
		for trial := 0; trial < 8; trial++ {
			nv := 3 + rng.Intn(10)
			g := graph.New(nv)
			for e := 0; e < 2+rng.Intn(3*nv); e++ {
				label := "a"
				if rng.Intn(2) == 0 {
					label = "b"
				}
				g.AddEdge(rng.Intn(nv), label, rng.Intn(nv))
			}
			src := matrix.NewVector(nv)
			for v := 0; v < nv; v++ {
				if rng.Intn(3) == 0 {
					src.Set(v)
				}
			}
			direct, err := EvalPairs(g, n, src)
			if err != nil {
				t.Fatal(err)
			}
			ms, err := cfpq.MultiSource(g, w, src)
			if err != nil {
				t.Fatal(err)
			}
			if !direct.Equal(ms.Answer()) {
				t.Fatalf("regex %q trial %d: direct=%v cfpq=%v",
					srcRe, trial, direct.Pairs(), ms.Answer().Pairs())
			}
		}
	}
}

// TestToGrammarDeterministic pins the order of the reduction's
// productions: nonterminal ids downstream are assigned in production
// order, so iterating the NFA's transition map directly would make the
// reduced grammar (and anything keyed on its ids) vary across runs.
func TestToGrammarDeterministic(t *testing.T) {
	n, err := CompileRegex("a b | c d* | e")
	if err != nil {
		t.Fatal(err)
	}
	want := ToGrammar(n).String()
	for i := 0; i < 50; i++ {
		if got := ToGrammar(n).String(); got != want {
			t.Fatalf("ToGrammar varies across calls:\n--- first\n%s\n--- later\n%s", want, got)
		}
	}
}
