package mscfpq

// Every example is built and executed as part of the test suite, so the
// documented entry points cannot rot. Skipped under -short.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, name string, wantOutput ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), name)
	build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin)
	cmd.Dir = build.Dir
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		_ = cmd.Process.Kill()
		t.Fatal("example timed out")
	}
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	for _, want := range wantOutput {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestExampleQuickstart(t *testing.T) {
	runExample(t, "quickstart", "pairs reachable from vertex 0", "witness for (0,0)")
}

func TestExampleOntology(t *testing.T) {
	runExample(t, "ontology", "core analog", "same-generation pairs", "warm batch")
}

func TestExampleProvenance(t *testing.T) {
	runExample(t, "provenance", "A/clean     ~ B/clean", "library agrees: true")
}

func TestExampleFullstack(t *testing.T) {
	runExample(t, "fullstack", "execution plan", "a^n b^n pairs", "Records produced", "Vertices: 4")
}

func TestExampleRPQEngines(t *testing.T) {
	runExample(t, "rpqengines", "verified identical")
}
