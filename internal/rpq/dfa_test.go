package rpq

import (
	"math/rand"
	"testing"

	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// Property: determinization and minimization preserve the language.
func TestDFALanguageEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	regexes := []string{"a", "a b", "a | b", "a*", "(a b)+", "a (b | c)* d?", "a? b?", "a_r* b"}
	alphabet := []string{"a", "b", "c", "d", "a_r"}
	for _, src := range regexes {
		n, err := CompileRegex(src)
		if err != nil {
			t.Fatal(err)
		}
		d := Determinize(n)
		m := d.Minimize()
		if m.NumStates > d.NumStates {
			t.Fatalf("regex %q: minimization grew the DFA (%d -> %d)", src, d.NumStates, m.NumStates)
		}
		for trial := 0; trial < 200; trial++ {
			word := make([]string, rng.Intn(6))
			for i := range word {
				word[i] = alphabet[rng.Intn(len(alphabet))]
			}
			want := n.AcceptsWord(word)
			if got := d.AcceptsWord(word); got != want {
				t.Fatalf("regex %q word %v: DFA=%v NFA=%v", src, word, got, want)
			}
			if got := m.AcceptsWord(word); got != want {
				t.Fatalf("regex %q word %v: minimized DFA=%v NFA=%v", src, word, got, want)
			}
		}
	}
}

func TestMinimizeMergesStates(t *testing.T) {
	// (a a)* | (a a)* has redundant structure the minimizer must fold;
	// the minimal DFA for "even number of a's" has 2 live states.
	n, err := CompileRegex("(a a)* | (a a)*")
	if err != nil {
		t.Fatal(err)
	}
	m := Determinize(n).Minimize()
	if m.NumStates > 2 {
		t.Fatalf("minimized DFA has %d states, want <= 2", m.NumStates)
	}
}

// Property: DFA evaluation equals NFA evaluation on random graphs.
func TestEvalPairsDFAMatchesNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, srcRe := range []string{"a+ b", "(a | b)*", "a_r* b", "a b? a"} {
		n, err := CompileRegex(srcRe)
		if err != nil {
			t.Fatal(err)
		}
		d := Determinize(n).Minimize()
		for trial := 0; trial < 8; trial++ {
			nv := 3 + rng.Intn(10)
			g := graph.New(nv)
			for e := 0; e < 2+rng.Intn(3*nv); e++ {
				label := "a"
				if rng.Intn(2) == 0 {
					label = "b"
				}
				g.AddEdge(rng.Intn(nv), label, rng.Intn(nv))
			}
			src := matrix.NewVector(nv)
			for v := 0; v < nv; v++ {
				if rng.Intn(3) == 0 {
					src.Set(v)
				}
			}
			viaNFA, err := EvalPairs(g, n, src)
			if err != nil {
				t.Fatal(err)
			}
			viaDFA, err := EvalPairsDFA(g, d, src)
			if err != nil {
				t.Fatal(err)
			}
			if !viaDFA.Equal(viaNFA) {
				t.Fatalf("regex %q trial %d: DFA=%v NFA=%v",
					srcRe, trial, viaDFA.Pairs(), viaNFA.Pairs())
			}
		}
	}
}

func TestEvalPairsDFAErrors(t *testing.T) {
	n, _ := CompileRegex("a")
	d := Determinize(n)
	if _, err := EvalPairsDFA(nil, d, nil); err == nil {
		t.Fatal("expected nil graph error")
	}
	g := chainGraph("a")
	if _, err := EvalPairsDFA(g, d, matrix.NewVector(5)); err == nil {
		t.Fatal("expected size mismatch error")
	}
}
