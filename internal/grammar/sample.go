package grammar

import (
	"math/rand"
	"sort"
	"strings"
)

// Sample returns a random word of L(G) obtained by expanding a random
// derivation, or ok=false if the derivation did not terminate within the
// step budget. It exists for property tests: every sampled word must be
// accepted by the WCNF form of g.
func Sample(g *Grammar, rng *rand.Rand, maxSteps int) (word []string, ok bool) {
	byLHS := map[string][]Production{}
	for _, p := range g.Prods {
		byLHS[p.LHS] = append(byLHS[p.LHS], p)
	}
	sentential := []Symbol{N(g.Start)}
	for steps := 0; steps < maxSteps; steps++ {
		idx := -1
		for i, s := range sentential {
			if !s.Term {
				idx = i
				break
			}
		}
		if idx < 0 {
			out := make([]string, len(sentential))
			for i, s := range sentential {
				out[i] = s.Name
			}
			return out, true
		}
		alts := byLHS[sentential[idx].Name]
		p := alts[rng.Intn(len(alts))]
		next := make([]Symbol, 0, len(sentential)-1+len(p.RHS))
		next = append(next, sentential[:idx]...)
		next = append(next, p.RHS...)
		next = append(next, sentential[idx+1:]...)
		sentential = next
		if len(sentential) > maxSteps { // runaway expansion
			return nil, false
		}
	}
	return nil, false
}

// Enumerate returns every word of L(G) with length at most maxLen, as
// space-joined strings (the empty word is ""). It performs a BFS over
// sentential forms, pruning forms whose terminal content already exceeds
// maxLen. Exponential; only for small test grammars.
func Enumerate(g *Grammar, maxLen int) map[string]bool {
	byLHS := map[string][]Production{}
	for _, p := range g.Prods {
		byLHS[p.LHS] = append(byLHS[p.LHS], p)
	}
	key := func(form []Symbol) string {
		parts := make([]string, len(form))
		for i, s := range form {
			if s.Term {
				parts[i] = s.Name
			} else {
				parts[i] = "<" + s.Name + ">"
			}
		}
		return strings.Join(parts, " ")
	}
	terminalCount := func(form []Symbol) int {
		n := 0
		for _, s := range form {
			if s.Term {
				n++
			}
		}
		return n
	}

	out := map[string]bool{}
	seen := map[string]bool{}
	queue := [][]Symbol{{N(g.Start)}}
	seen[key(queue[0])] = true
	for len(queue) > 0 {
		form := queue[0]
		queue = queue[1:]
		idx := -1
		for i, s := range form {
			if !s.Term {
				idx = i
				break
			}
		}
		if idx < 0 {
			parts := make([]string, len(form))
			for i, s := range form {
				parts[i] = s.Name
			}
			out[strings.Join(parts, " ")] = true
			continue
		}
		for _, p := range byLHS[form[idx].Name] {
			next := make([]Symbol, 0, len(form)-1+len(p.RHS))
			next = append(next, form[:idx]...)
			next = append(next, p.RHS...)
			next = append(next, form[idx+1:]...)
			// Forms can carry nullable nonterminals beyond the terminal
			// budget (e.g. Dyck interleaves one S per bracket), so the
			// length prune leaves generous slack.
			if terminalCount(next) > maxLen || len(next) > 2*maxLen+8 {
				continue
			}
			k := key(next)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	return out
}

// Words returns the enumerated words of Enumerate as a sorted slice;
// convenient in test failure messages.
func Words(lang map[string]bool) []string {
	out := make([]string, 0, len(lang))
	for w := range lang {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
