package mscfpq

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mscfpq/internal/dataset"
	"mscfpq/internal/oracle"
)

// Golden tests: checked-in expected reachable-pair sets for the paper's
// query grammars over the Figure 1 example graph and two small
// deterministic samples shaped like the evaluation datasets (an
// ontology with subClassOf/type for G1/G2, a geospecies-like graph with
// broaderTransitive for Geo). Every CFPQ evaluator must reproduce them
// exactly.
//
// Regenerate with: go test -run TestGolden -update
// (goldens are computed by the independent oracle, never by the
// engines under test).
var updateGolden = flag.Bool("update", false, "rewrite golden files (and sample graphs) from the oracle")

type goldenCase struct {
	name      string // golden file stem
	graphFile string
	grammar   func() (*Grammar, error)
}

func namedGrammar(g *Grammar) func() (*Grammar, error) {
	return func() (*Grammar, error) { return g, nil }
}

func goldenCases() []goldenCase {
	cnd := func() (*Grammar, error) { return LoadGrammar("queries/cnd.txt") }
	return []goldenCase{
		// The Figure 1 example graph: the running-example query has a
		// known nonempty answer; the paper's dataset queries use labels
		// the graph lacks, so their expected sets are exactly empty.
		{"example_cnd", "testdata/example_graph.txt", cnd},
		{"example_g1", "testdata/example_graph.txt", namedGrammar(G1())},
		{"example_g2", "testdata/example_graph.txt", namedGrammar(G2())},
		{"example_geo", "testdata/example_graph.txt", namedGrammar(Geo())},
		{"ontology_g1", "testdata/ontology_sample.txt", namedGrammar(G1())},
		{"ontology_g2", "testdata/ontology_sample.txt", namedGrammar(G2())},
		{"geospecies_geo", "testdata/geospecies_sample.txt", namedGrammar(Geo())},
	}
}

// sampleSpecs are the deterministic generators behind the checked-in
// sample graphs (small analogs of the paper's Table 1 datasets).
var sampleSpecs = map[string]dataset.Spec{
	"testdata/ontology_sample.txt": {
		Name: "ontology-sample", Vertices: 40, Classes: 12, SubClassOf: 22,
		TypeEdges: 26, OtherEdges: 10, TargetDepth: 5, Seed: 101,
	},
	"testdata/geospecies_sample.txt": {
		Name: "geospecies-sample", Vertices: 36, TypeEdges: 12,
		BroaderEdges: 48, TargetDepth: 6, Seed: 106,
	},
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".txt")
}

func readGolden(t *testing.T, name string) [][2]int {
	t.Helper()
	f, err := os.Open(goldenPath(name))
	if err != nil {
		t.Fatalf("missing golden (rerun with -update): %v", err)
	}
	defer f.Close()
	var pairs [][2]int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var i, j int
		if _, err := fmt.Sscanf(line, "%d %d", &i, &j); err != nil {
			t.Fatalf("golden %s: bad line %q", name, line)
		}
		pairs = append(pairs, [2]int{i, j})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return pairs
}

func writeGolden(t *testing.T, name string, pairs [][2]int) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(goldenPath(name)), 0o755); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# Expected start-relation pairs for %s; regenerate with go test -run TestGolden -update\n", name)
	for _, p := range pairs {
		fmt.Fprintf(&b, "%d %d\n", p[0], p[1])
	}
	if err := os.WriteFile(goldenPath(name), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenReachablePairs(t *testing.T) {
	if *updateGolden {
		for path, spec := range sampleSpecs {
			if err := SaveGraph(path, dataset.Generate(spec)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			g, err := LoadGraph(c.graphFile)
			if err != nil {
				t.Fatal(err)
			}
			gr, err := c.grammar()
			if err != nil {
				t.Fatal(err)
			}
			w, err := ToWCNF(gr)
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				writeGolden(t, c.name, oracle.CFPQ(g, w).StartPairs())
			}
			want := readGolden(t, c.name)
			// Guard against a vacuous golden: the sample cases must have
			// nonempty expected sets.
			if strings.HasPrefix(c.name, "ontology_") || strings.HasPrefix(c.name, "geospecies_") || c.name == "example_cnd" {
				if len(want) == 0 {
					t.Fatalf("golden %s is empty; sample lost its answer", c.name)
				}
			}

			all := NewVertexSet(g.NumVertices())
			for v := 0; v < g.NumVertices(); v++ {
				all.Set(v)
			}
			engines := []struct {
				name string
				run  func() ([][2]int, error)
			}{
				{"AllPairs", func() ([][2]int, error) {
					r, err := AllPairs(g, w)
					if err != nil {
						return nil, err
					}
					return r.Pairs(), nil
				}},
				{"AllPairsSemiNaive", func() ([][2]int, error) {
					r, err := AllPairsSemiNaive(g, w)
					if err != nil {
						return nil, err
					}
					return r.Pairs(), nil
				}},
				{"Worklist", func() ([][2]int, error) {
					r, err := Worklist(g, w)
					if err != nil {
						return nil, err
					}
					return r.Pairs(), nil
				}},
				{"SinglePath", func() ([][2]int, error) {
					r, err := SinglePath(g, w)
					if err != nil {
						return nil, err
					}
					return r.Pairs(), nil
				}},
				{"MultiSource(all)", func() ([][2]int, error) {
					r, err := MultiSource(g, w, all)
					if err != nil {
						return nil, err
					}
					return r.Answer().Pairs(), nil
				}},
				{"Index(all)", func() ([][2]int, error) {
					idx, err := NewIndex(g, w)
					if err != nil {
						return nil, err
					}
					r, err := idx.MultiSourceSmart(all)
					if err != nil {
						return nil, err
					}
					return r.Answer().Pairs(), nil
				}},
			}
			for _, e := range engines {
				got, err := e.run()
				if err != nil {
					t.Fatalf("%s: %v", e.name, err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s: %d pairs, golden has %d\ngot %v\nwant %v",
						e.name, len(got), len(want), got, want)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s: pair %d is %v, golden has %v", e.name, i, got[i], want[i])
					}
				}
			}
		})
	}
}
