// Package exec holds the execution-governance layer shared by every
// query engine in the repository: a functional-options type configuring
// how a query runs (context, timeout, work budget, kernel selection)
// and a Run governor the algorithms consult between units of work.
//
// The paper's algorithms are batch fixpoints; embedded in a database
// serving concurrent traffic they must instead be bounded and
// interruptible. All long-running loops — CFPQ fixpoint rounds, RPQ
// automaton products, Kronecker closures, plan operator pulls, and the
// row blocks of large matrix multiplications — check the governor and
// abort with context.Canceled, context.DeadlineExceeded or ErrBudget.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mscfpq/internal/matrix"
	"mscfpq/internal/obs"
)

// ErrBudget is returned when a query exceeds its work budget (the
// cumulative number of relation entries produced across fixpoint
// iterations).
var ErrBudget = errors.New("query work budget exceeded")

// Engine selects the evaluation engine for regular path queries (the
// four engines of the RPQ unification experiment).
type Engine int

const (
	// EngineAuto picks the default engine (the minimized-DFA product,
	// the fastest RPQ evaluator in the library).
	EngineAuto Engine = iota
	// EngineNFA evaluates through the Thompson NFA product.
	EngineNFA
	// EngineDFA evaluates through the minimized-DFA product.
	EngineDFA
	// EngineCFPQ reduces the regex to a context-free grammar and runs
	// the multiple-source CFPQ algorithm (Algorithm 2).
	EngineCFPQ
	// EngineTensor evaluates through the Kronecker-product RSM engine.
	EngineTensor
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineNFA:
		return "nfa"
	case EngineDFA:
		return "dfa"
	case EngineCFPQ:
		return "cfpq"
	case EngineTensor:
		return "tensor"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// Algorithm selects the CFPQ evaluation algorithm for the unified
// EvalCFPQ entry point, mirroring Engine for RPQ.
type Algorithm int

const (
	// AlgAuto picks by query shape: the multiple-source algorithm when
	// a source set is given, all-pairs otherwise.
	AlgAuto Algorithm = iota
	// AlgMatrix is the all-pairs matrix algorithm (paper Algorithm 1).
	AlgMatrix
	// AlgSemiNaive is the delta-driven all-pairs variant.
	AlgSemiNaive
	// AlgWorklist is the scalar worklist baseline.
	AlgWorklist
	// AlgMultiSource is the multiple-source algorithm (paper
	// Algorithm 2).
	AlgMultiSource
	// AlgSinglePath is all-pairs with single-path witness extraction.
	AlgSinglePath
	// AlgMSSinglePath is multiple-source with single-path witness
	// extraction.
	AlgMSSinglePath
)

func (a Algorithm) String() string {
	switch a {
	case AlgAuto:
		return "auto"
	case AlgMatrix:
		return "matrix"
	case AlgSemiNaive:
		return "seminaive"
	case AlgWorklist:
		return "worklist"
	case AlgMultiSource:
		return "multisource"
	case AlgSinglePath:
		return "singlepath"
	case AlgMSSinglePath:
		return "ms-singlepath"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Options tunes query execution. The zero value means: background
// context, no timeout, unlimited budget, serial CSR kernels.
type Options struct {
	// Ctx cancels the query when done; nil means context.Background().
	Ctx context.Context
	// Timeout bounds wall-clock execution; 0 means no timeout. Applied
	// on top of Ctx when a Run starts.
	Timeout time.Duration
	// Budget bounds the total work a query may perform, measured in
	// relation entries produced across fixpoint iterations
	// (iterations × nnz); 0 means unlimited.
	Budget int64
	// Workers is the number of goroutines used for large matrix
	// multiplications; 0 or 1 means serial.
	Workers int
	// Hybrid switches multiplication kernels by operand density
	// (matrix.MulHybrid), which pays off when relations densify during
	// the fixpoint (deep hierarchies like go-hierarchy).
	Hybrid bool
	// Engine selects the RPQ evaluation engine (rpq.Eval).
	Engine Engine
	// Algorithm selects the CFPQ evaluation algorithm (cfpq.Eval).
	Algorithm Algorithm
	// Trace, when non-nil, receives the query's span tree and kernel
	// counter deltas (see obs.Trace). Nil means no tracing.
	Trace *obs.Trace

	// run, when set by WithRun, shares an existing governor (and its
	// context and budget accounting) instead of starting a fresh one —
	// how the plan layer threads one per-query budget through nested
	// CFPQ resolutions.
	run *Run
}

// Option mutates Options.
type Option func(*Options)

// WithContext attaches a cancellation context to the query.
func WithContext(ctx context.Context) Option { return func(o *Options) { o.Ctx = ctx } }

// WithTimeout bounds the query's wall-clock execution time.
func WithTimeout(d time.Duration) Option { return func(o *Options) { o.Timeout = d } }

// WithBudget bounds the query's total work (relation entries produced
// across fixpoint iterations). Exceeding it aborts with ErrBudget.
func WithBudget(n int64) Option { return func(o *Options) { o.Budget = n } }

// WithWorkers sets the multiplication parallelism.
func WithWorkers(n int) Option { return func(o *Options) { o.Workers = n } }

// WithHybridKernels enables density-based kernel switching.
func WithHybridKernels() Option { return func(o *Options) { o.Hybrid = true } }

// WithEngine selects the RPQ evaluation engine.
func WithEngine(e Engine) Option { return func(o *Options) { o.Engine = e } }

// WithAlgorithm selects the CFPQ evaluation algorithm.
func WithAlgorithm(a Algorithm) Option { return func(o *Options) { o.Algorithm = a } }

// WithTrace attaches a per-query trace: the governor records kernel
// counter deltas into the innermost open span, and the execution
// layers open stage spans through Run.StartSpan.
func WithTrace(t *obs.Trace) Option { return func(o *Options) { o.Trace = t } }

// WithRun shares an existing governor: the query joins r's context and
// budget accounting instead of starting its own. Kernel settings
// (workers, hybrid) are inherited from r as well.
func WithRun(r *Run) Option { return func(o *Options) { o.run = r } }

// Build folds a list of options into an Options value.
func Build(opts []Option) Options {
	var o Options
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// Apply folds additional options on top of an existing Options value —
// how per-query overrides layer over per-index or per-server defaults.
func (o Options) Apply(opts []Option) Options {
	for _, fn := range opts {
		if fn != nil {
			fn(&o)
		}
	}
	return o
}

// Start materializes the options into a Run governor. The returned
// cancel function must be called when the query finishes (it releases
// the timeout timer); it is a no-op for shared runs.
func (o Options) Start() (*Run, context.CancelFunc) {
	if o.run != nil {
		return o.run, func() {}
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if o.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
	}
	r := &Run{ctx: ctx, workers: o.Workers, hybrid: o.Hybrid, budget: o.Budget, trace: o.Trace}
	return r, cancel
}

// Run is the per-query governor: it carries the cancellation context,
// tracks the work spent against the budget, and selects multiplication
// kernels. A Run may be shared across the layers of one query (plan
// operators, CFPQ resolution, matrix kernels); the spent counter is
// atomic so parallel kernels can charge it.
type Run struct {
	ctx     context.Context
	workers int
	hybrid  bool
	budget  int64 // 0 = unlimited
	spent   atomic.Int64
	trace   *obs.Trace // nil = untraced
}

// NewRun builds a governor directly from a context (no timeout, no
// budget) — a convenience for call sites that only need cancellation.
func NewRun(ctx context.Context) *Run {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Run{ctx: ctx}
}

// Ctx returns the run's cancellation context (never nil).
func (r *Run) Ctx() context.Context {
	if r == nil || r.ctx == nil {
		return context.Background()
	}
	return r.ctx
}

// Spent returns the work charged so far.
func (r *Run) Spent() int64 {
	if r == nil {
		return 0
	}
	return r.spent.Load()
}

// Err reports why the query must stop: the context's error if it is
// done, ErrBudget if the budget is exhausted, nil otherwise. Nil
// receivers (ungoverned runs) always return nil, so call sites can
// thread an optional governor without guards.
func (r *Run) Err() error {
	if r == nil {
		return nil
	}
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			return err
		}
	}
	if r.budget > 0 && r.spent.Load() > r.budget {
		return ErrBudget
	}
	return nil
}

// Charge adds n units of work (relation entries produced) and reports
// ErrBudget once the cumulative total exceeds the budget.
func (r *Run) Charge(n int) error {
	if r == nil {
		return nil
	}
	if n > 0 {
		r.spent.Add(int64(n))
	}
	return r.Err()
}

// Trace returns the trace attached to this run (nil for untraced or
// nil runs).
func (r *Run) Trace() *obs.Trace {
	if r == nil {
		return nil
	}
	return r.trace
}

// StartSpan opens a named stage span on the run's trace. End the
// returned span when the stage finishes. A no-op (returning nil, which
// is safe to End) for untraced or nil runs.
func (r *Run) StartSpan(name string) *obs.Span {
	if r == nil {
		return nil
	}
	return r.trace.Start(name)
}

// RecordOutcome classifies how a top-level query ended and bumps the
// matching governor outcome counter. Call it exactly once per query
// boundary (the gdb command path and the EvalCFPQ/EvalRPQ facade) —
// not per algorithm invocation, which may share a Run.
func RecordOutcome(err error) {
	switch {
	case err == nil:
		obs.GovCompleted.Inc()
	case errors.Is(err, ErrBudget):
		obs.GovBudget.Inc()
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		obs.GovCancelled.Inc()
	default:
		obs.GovFailed.Inc()
	}
}

// Closure is the governed transitive closure: cancellation is checked
// between the row blocks of every squaring round, and the closure's
// entry count is charged against the budget.
func (r *Run) Closure(a *matrix.Bool) (*matrix.Bool, error) {
	if r == nil {
		return matrix.TransitiveClosure(a), nil
	}
	m, err := matrix.TransitiveClosureCtx(r.Ctx(), a)
	if err != nil {
		return nil, err
	}
	obs.KernelMulOps.Inc()
	obs.KernelMulNNZ.Add(int64(m.NVals()))
	r.trace.Add(obs.KeyMulOps, 1)
	r.trace.Add(obs.KeyMulNNZ, int64(m.NVals()))
	if err := r.Charge(m.NVals()); err != nil {
		return nil, err
	}
	return m, nil
}

// Mul is the governed Boolean matrix multiplication: it selects the
// kernel from the run's settings, checks cancellation between row
// blocks, and charges the product's entry count against the budget.
func (r *Run) Mul(a, b *matrix.Bool) (*matrix.Bool, error) {
	if r == nil {
		return matrix.Mul(a, b), nil
	}
	var (
		m   *matrix.Bool
		err error
	)
	switch {
	case r.hybrid:
		m, err = matrix.MulHybridCtx(r.ctx, a, b)
	case r.workers > 1:
		m, err = matrix.MulParCtx(r.ctx, a, b, r.workers)
	default:
		m, err = matrix.MulCtx(r.ctx, a, b)
	}
	if err != nil {
		return nil, err
	}
	obs.KernelMulOps.Inc()
	obs.KernelMulNNZ.Add(int64(m.NVals()))
	r.trace.Add(obs.KeyMulOps, 1)
	r.trace.Add(obs.KeyMulNNZ, int64(m.NVals()))
	if err := r.Charge(m.NVals()); err != nil {
		return nil, err
	}
	return m, nil
}

// Add is the governed element-wise OR: it folds b into a in place,
// reports whether a changed, and records the op and the entries added
// into the metrics registry and the run's trace. Safe on nil runs
// (plain matrix.AddInPlace, uncounted).
func (r *Run) Add(a, b *matrix.Bool) bool {
	if r == nil {
		return matrix.AddInPlace(a, b)
	}
	before := a.NVals()
	changed := matrix.AddInPlace(a, b)
	delta := int64(a.NVals() - before)
	obs.KernelAddOps.Inc()
	obs.KernelAddNNZ.Add(delta)
	r.trace.Add(obs.KeyAddOps, 1)
	r.trace.Add(obs.KeyAddNNZ, delta)
	return changed
}

// Transpose is the governed transpose (counted, not budget-charged —
// it produces no new relation entries).
func (r *Run) Transpose(a *matrix.Bool) *matrix.Bool {
	m := matrix.Transpose(a)
	if r != nil {
		obs.KernelTransposeOps.Inc()
		r.trace.Add(obs.KeyTransposeOps, 1)
	}
	return m
}

// ObserveFrontier records a multiple-source frontier size (the nnz of
// the src extraction the algorithm is about to multiply).
func (r *Run) ObserveFrontier(nnz int) {
	if r != nil {
		obs.KernelFrontierNNZ.Observe(int64(nnz))
	}
}
