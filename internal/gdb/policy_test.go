package gdb

import (
	"bytes"
	"context"
	"errors"
	"log"
	"strings"
	"testing"
	"time"

	"mscfpq/internal/exec"
	"mscfpq/internal/graph"
)

// heavyStore returns a DB with a two-cycle graph whose a^n b^n query
// keeps the CFPQ fixpoint busy long enough for governance to bite.
func heavyDB(t *testing.T, p int) *DB {
	t.Helper()
	g := graph.New(2 * p)
	for i := 0; i < p; i++ {
		g.AddEdge(i, "a", (i+1)%p)
	}
	prev := 0
	for i := 0; i < p-2; i++ {
		g.AddEdge(prev, "b", p+i)
		prev = p + i
	}
	g.AddEdge(prev, "b", 0)
	db := New()
	db.AddGraph("g", g)
	return db
}

const anbnQuery = `
	PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
	MATCH (v)-/ ~S /->(to) RETURN v, to`

func TestQueryContextCancelled(t *testing.T) {
	db := heavyDB(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryContext(ctx, "g", anbnQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// CREATE honors the context too.
	if _, err := db.QueryContext(ctx, "g", "CREATE (:L)"); !errors.Is(err, context.Canceled) {
		t.Fatalf("create err = %v, want context.Canceled", err)
	}
	// The same statements succeed with a live context.
	if _, err := db.QueryContext(context.Background(), "g", anbnQuery); err != nil {
		t.Fatalf("live query: %v", err)
	}
}

func TestPolicyDefaultTimeout(t *testing.T) {
	db := heavyDB(t, 700)
	db.SetPolicy(Policy{DefaultTimeout: time.Millisecond})
	start := time.Now()
	_, err := db.Query("g", anbnQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("aborted query took %v", elapsed)
	}
}

func TestTimeoutClauseOverridesPolicy(t *testing.T) {
	db := heavyDB(t, 12)
	// A policy timeout too small to finish, loosened per query by the
	// TIMEOUT clause.
	db.SetPolicy(Policy{DefaultTimeout: time.Nanosecond})
	if _, err := db.Query("g", anbnQuery); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("policy timeout did not fire: %v", err)
	}
	res, err := db.Query("g", anbnQuery+" TIMEOUT 60000")
	if err != nil {
		t.Fatalf("loosened query failed: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("loosened query returned no rows")
	}
}

func TestPolicyMaxWork(t *testing.T) {
	db := heavyDB(t, 60)
	db.SetPolicy(Policy{MaxWork: 3})
	if _, err := db.Query("g", anbnQuery); !errors.Is(err, exec.ErrBudget) {
		t.Fatalf("err = %v, want exec.ErrBudget", err)
	}
	// Lifting the budget restores service.
	db.SetPolicy(Policy{})
	if _, err := db.Query("g", anbnQuery); err != nil {
		t.Fatalf("ungoverned query failed: %v", err)
	}
}

func TestSlowQueryLog(t *testing.T) {
	db := heavyDB(t, 60)
	var buf bytes.Buffer
	db.SetPolicy(Policy{MaxWork: 3, Log: log.New(&buf, "", 0)})
	if _, err := db.Query("g", anbnQuery); err == nil {
		t.Fatal("expected budget abort")
	}
	line := buf.String()
	for _, want := range []string{"status=aborted", `graph="g"`, "budget=3", "work="} {
		if !strings.Contains(line, want) {
			t.Fatalf("log line %q missing %q", line, want)
		}
	}

	// A completed query at or above the SlowQuery threshold is logged as
	// slow; fast queries are not logged at all.
	buf.Reset()
	db.SetPolicy(Policy{SlowQuery: time.Nanosecond, Log: log.New(&buf, "", 0)})
	if _, err := db.Query("g", anbnQuery); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "status=slow") {
		t.Fatalf("slow log missing: %q", buf.String())
	}
	buf.Reset()
	db.SetPolicy(Policy{Log: log.New(&buf, "", 0)})
	if _, err := db.Query("g", anbnQuery); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("unexpected log output: %q", buf.String())
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	db := New()
	p := Policy{DefaultTimeout: time.Second, MaxWork: 99, SlowQuery: time.Minute}
	db.SetPolicy(p)
	if got := db.Policy(); got != p {
		t.Fatalf("Policy() = %+v, want %+v", got, p)
	}
}
