package gdb

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"mscfpq/internal/cfpq"
	"mscfpq/internal/exec"
	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
	"mscfpq/internal/store"
)

func cfpqTestGraph() *graph.Graph {
	g := graph.New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(2, "a", 0)
	g.AddEdge(0, "b", 3)
	g.AddEdge(3, "b", 4)
	g.AddEdge(4, "b", 0)
	return g
}

func cfpqTestGrammar() *grammar.WCNF {
	return grammar.MustWCNF(grammar.MustNew("S", []grammar.Production{
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("a"), grammar.N("S"), grammar.T("b")}},
		{LHS: "S", RHS: []grammar.Symbol{grammar.T("a"), grammar.T("b")}},
	}))
}

func TestEvalCFPQMatchesDirect(t *testing.T) {
	db := New()
	g := cfpqTestGraph()
	db.AddGraph("g", g)
	w := cfpqTestGrammar()
	src := matrix.NewVectorFromIndices(6, []int{0, 1})
	got, err := db.EvalCFPQ(context.Background(), "g", w, src, exec.AlgAuto)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cfpq.Eval(g, w, src)
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Pairs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("EvalCFPQ = %v, want %v", got, want)
	}
	if _, err := db.EvalCFPQ(context.Background(), "missing", w, src, exec.AlgAuto); err == nil {
		t.Fatal("EvalCFPQ on missing graph succeeded")
	}
	if _, err := db.EvalCFPQ(context.Background(), "g", w, nil, exec.AlgAuto); err == nil {
		t.Fatal("EvalCFPQ without sources succeeded")
	}
}

func TestEvalCFPQCacheHit(t *testing.T) {
	db := New()
	db.AddGraph("g", cfpqTestGraph())
	db.SetPolicy(Policy{CacheMaxBytes: 1 << 20})
	w := cfpqTestGrammar()
	src := matrix.NewVectorFromIndices(6, []int{0})
	first, err := db.EvalCFPQ(context.Background(), "g", w, src, exec.AlgAuto)
	if err != nil {
		t.Fatal(err)
	}
	before := db.cache.Stats().Hits
	second, err := db.EvalCFPQ(context.Background(), "g", w, src, exec.AlgAuto)
	if err != nil {
		t.Fatal(err)
	}
	if db.cache.Stats().Hits != before+1 {
		t.Fatal("second EvalCFPQ missed the cache")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached answer %v != computed %v", second, first)
	}
	// AlgAuto and its resolved algorithm share one entry.
	s, err := db.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	k := store.EvalKey(s.StoreID(), 0, w, src, exec.AlgMultiSource)
	if _, ok := db.cache.Get(k); !ok {
		t.Fatal("cache entry not under the resolved-algorithm key")
	}
}

// pairSet folds answer pairs into a set for inclusion checks.
func pairSet(pairs [][2]int) map[[2]int]bool {
	m := make(map[[2]int]bool, len(pairs))
	for _, p := range pairs {
		m[p] = true
	}
	return m
}

// TestEvalCFPQBatchedUnderWrites serves coalesced queries while a
// writer publishes new versions. Batches are version-pinned, and the
// writer only adds edges, so every answer must be sandwiched between
// the solo answers of the versions pinned just before and just after
// the call: solo(before) ⊆ batched ⊆ solo(after). Run with -race.
func TestEvalCFPQBatchedUnderWrites(t *testing.T) {
	db := New()
	s := db.AddGraph("g", cfpqTestGraph())
	db.SetPolicy(Policy{BatchWindow: 200 * time.Microsecond})
	w := cfpqTestGrammar()

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = s.st.Update(func(tx *store.Tx) error {
				tx.Graph().AddEdge(i%6, "a", (i+2)%6)
				return nil
			})
			time.Sleep(500 * time.Microsecond)
		}
	}()

	var readerWG sync.WaitGroup
	errs := make(chan error, 64)
	for k := 0; k < 6; k++ {
		readerWG.Add(1)
		go func(k int) {
			defer readerWG.Done()
			for iter := 0; iter < 25; iter++ {
				src := matrix.NewVectorFromIndices(6, []int{k % 6, (k + iter) % 6})
				before := s.Snapshot()
				pairs, err := db.EvalCFPQ(context.Background(), "g", w, src, exec.AlgMultiSource)
				after := s.Snapshot()
				if err != nil {
					errs <- err
					return
				}
				lo, err := cfpq.Eval(before.Graph(), w, src, cfpq.WithAlgorithm(exec.AlgMultiSource))
				if err != nil {
					errs <- err
					return
				}
				hi, err := cfpq.Eval(after.Graph(), w, src, cfpq.WithAlgorithm(exec.AlgMultiSource))
				if err != nil {
					errs <- err
					return
				}
				got := pairSet(pairs)
				hiSet := pairSet(hi.Pairs())
				for _, p := range lo.Pairs() {
					if !got[p] {
						errs <- fmt.Errorf("batched answer lost pair %v present at the pre-call version", p)
						return
					}
				}
				for p := range got {
					if !hiSet[p] {
						errs <- fmt.Errorf("batched answer invented pair %v absent at the post-call version", p)
						return
					}
					if !src.Get(p[0]) {
						errs <- fmt.Errorf("batched answer row %v outside the member's source set", p)
						return
					}
				}
			}
		}(k)
	}
	done := make(chan struct{})
	go func() { readerWG.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run wedged")
	}
	close(stop)
	writerWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
