// Package obs is the observability layer of the module: a lock-cheap
// metrics registry (counters, gauges, fixed-bucket histograms with a
// snapshot/reset API and deterministic rendering), per-query traces
// (span trees annotated with kernel counter deltas), and the slow-query
// ring buffer behind the server's SLOWLOG command.
//
// The package sits below every other layer — it imports only the
// standard library — so matrix kernels, the execution governor, the
// database engine, and the RESP server can all report into one place
// without import cycles.
//
// Hot-path cost: every instrument update is a single atomic add behind
// one atomic flag load, and tracing hooks are a nil check unless a
// Trace was attached to the query. SetEnabled(false) turns the
// instrument updates into a load-and-return, which is how the
// obs-overhead benchmark (make bench-smoke, BENCH_obs.json) measures
// the instrumentation cost.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates every instrument update. Default on: the INFO command
// and the metrics endpoint should have data without opt-in.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns instrument updates on or off globally (tracing is
// unaffected — it is opt-in per query). Returns the previous state.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether instrument updates are currently recorded.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the registered metric name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 && enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (open connections,
// resident graphs).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the registered metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) {
	if enabled.Load() {
		g.v.Store(n)
	}
}

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) {
	if enabled.Load() {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations
// (latencies in microseconds, sizes in entries). The bucket layout is
// fixed at registration so snapshots from different processes line up.
type Histogram struct {
	name    string
	bounds  []int64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Name returns the registered metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	// Bucket counts are cumulative-free (per-bucket): find the first
	// bound >= v; linear scan beats binary search at these sizes.
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(h.bounds)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Standard bucket layouts.
var (
	// LatencyBuckets is for durations in microseconds: 50µs .. 10s.
	LatencyBuckets = []int64{50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000,
		25_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_500_000, 10_000_000}
	// SizeBuckets is for entry counts (nnz, frontier sizes): powers of 4.
	SizeBuckets = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
	// RoundBuckets is for fixpoint iteration counts.
	RoundBuckets = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}
)

// Registry holds named instruments. Registration takes a lock;
// instrument updates afterwards are lock-free. The zero Registry is
// not ready to use — call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter   // guarded by mu
	gauges     map[string]*Gauge     // guarded by mu
	histograms map[string]*Histogram // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry every built-in instrument
// registers into; INFO and the metrics endpoint render it.
var Default = NewRegistry()

// Counter registers (or returns the existing) counter with the name.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge registers (or returns the existing) gauge with the name.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram registers (or returns the existing) histogram with the
// name and bucket upper bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := &Histogram{name: name, bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	r.histograms[name] = h
	return h
}

// Snapshot is a flat, point-in-time view of a registry: counter and
// gauge values under their own names, histograms flattened into
// <name>.count, <name>.sum, and one <name>.le.<bound> entry per
// non-empty bucket (le.inf for the overflow bucket).
type Snapshot map[string]int64

// Snapshot captures the current values. Concurrent updates during the
// capture land in either this snapshot or the next — each instrument
// is read atomically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	for name, c := range r.counters {
		s[name] = c.Value()
	}
	for name, g := range r.gauges {
		s[name] = g.Value()
	}
	for name, h := range r.histograms {
		s[name+".count"] = h.count.Load()
		s[name+".sum"] = h.sum.Load()
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			if i < len(h.bounds) {
				s[fmt.Sprintf("%s.le.%d", name, h.bounds[i])] = n
			} else {
				s[name+".le.inf"] = n
			}
		}
	}
	return s
}

// Sub returns the per-key difference s - prev (keys missing from prev
// count as zero; zero deltas are omitted).
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{}
	for k, v := range s {
		if d := v - prev[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// Keys returns the snapshot's keys in sorted order — the deterministic
// iteration order for rendering.
func (s Snapshot) Keys() []string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Render formats the snapshot as sorted "name:value" lines (the INFO
// body format).
func (s Snapshot) Render() []string {
	out := make([]string, 0, len(s))
	for _, k := range s.Keys() {
		out = append(out, fmt.Sprintf("%s:%d", k, s[k]))
	}
	return out
}

// Reset zeroes every registered instrument (counts, sums, buckets).
// Registration survives; pointers held by call sites stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		h.count.Store(0)
		h.sum.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}
