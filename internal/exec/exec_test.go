package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"mscfpq/internal/matrix"
)

func smallMatrix() *matrix.Bool {
	m := matrix.NewBool(4, 4)
	m.Set(0, 1)
	m.Set(1, 2)
	m.Set(2, 3)
	return m
}

func TestNilRunIsUngoverned(t *testing.T) {
	var r *Run
	if err := r.Err(); err != nil {
		t.Fatalf("nil run Err = %v", err)
	}
	if err := r.Charge(1 << 40); err != nil {
		t.Fatalf("nil run Charge = %v", err)
	}
	if got := r.Spent(); got != 0 {
		t.Fatalf("nil run Spent = %d", got)
	}
	m := smallMatrix()
	prod, err := r.Mul(m, m)
	if err != nil {
		t.Fatal(err)
	}
	if want := matrix.Mul(m, m); !prod.Equal(want) {
		t.Fatal("nil run Mul differs from matrix.Mul")
	}
}

func TestBuildApplyOptions(t *testing.T) {
	o := Build([]Option{WithWorkers(3), WithBudget(42), WithHybridKernels(), WithEngine(EngineTensor)})
	if o.Workers != 3 || o.Budget != 42 || !o.Hybrid || o.Engine != EngineTensor {
		t.Fatalf("Build = %+v", o)
	}
	// Apply layers per-query options over stored defaults.
	o2 := o.Apply([]Option{WithBudget(7)})
	if o2.Budget != 7 || o2.Workers != 3 {
		t.Fatalf("Apply = %+v", o2)
	}
	if o.Budget != 42 {
		t.Fatalf("Apply mutated the receiver: %+v", o)
	}
}

func TestBudgetExceeded(t *testing.T) {
	run, cancel := Options{Budget: 10}.Start()
	defer cancel()
	if err := run.Charge(6); err != nil {
		t.Fatalf("first charge: %v", err)
	}
	err := run.Charge(6)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// Once over budget, the run stays failed.
	if err := run.Err(); !errors.Is(err, ErrBudget) {
		t.Fatalf("Err after exhaustion = %v", err)
	}
	if run.Spent() < 10 {
		t.Fatalf("Spent = %d", run.Spent())
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run, stop := Options{Ctx: ctx}.Start()
	defer stop()
	if err := run.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	m := smallMatrix()
	if _, err := run.Mul(m, m); !errors.Is(err, context.Canceled) {
		t.Fatalf("Mul = %v, want context.Canceled", err)
	}
}

func TestTimeoutOption(t *testing.T) {
	run, cancel := Options{Timeout: time.Nanosecond}.Start()
	defer cancel()
	deadline, ok := run.Ctx().Deadline()
	if !ok {
		t.Fatal("no deadline on governed context")
	}
	if time.Until(deadline) > time.Second {
		t.Fatalf("deadline too far: %v", deadline)
	}
	// The nanosecond deadline has long expired.
	time.Sleep(time.Millisecond)
	if err := run.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", err)
	}
}

func TestWithRunShares(t *testing.T) {
	run, cancel := Options{Budget: 100}.Start()
	defer cancel()
	shared, noop := Build([]Option{WithRun(run), WithBudget(5)}).Start()
	noop()
	if shared != run {
		t.Fatal("WithRun did not reuse the governor")
	}
	// Charges through the shared handle hit the original budget.
	if err := shared.Charge(60); err != nil {
		t.Fatal(err)
	}
	if run.Spent() != 60 {
		t.Fatalf("Spent = %d, want 60", run.Spent())
	}
}

func TestEngineString(t *testing.T) {
	cases := map[Engine]string{
		EngineAuto: "auto", EngineNFA: "nfa", EngineDFA: "dfa",
		EngineCFPQ: "cfpq", EngineTensor: "tensor",
	}
	for e, want := range cases {
		if e.String() != want {
			t.Fatalf("%d.String() = %q, want %q", e, e.String(), want)
		}
	}
}

func TestMulMatchesUngoverned(t *testing.T) {
	a := matrix.NewBool(8, 8)
	b := matrix.NewBool(8, 8)
	for i := 0; i < 8; i++ {
		a.Set(i, (i*3)%8)
		b.Set((i*3)%8, (i*5)%8)
	}
	want := matrix.Mul(a, b)
	for _, opts := range []Options{
		{},
		{Workers: 4},
		{Hybrid: true},
		{Workers: 2, Hybrid: true},
	} {
		run, cancel := opts.Start()
		got, err := run.Mul(a, b)
		cancel()
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !got.Equal(want) {
			t.Fatalf("%+v: product differs", opts)
		}
	}
}
