package cfpq

import (
	"math/rand"
	"testing"

	"mscfpq/internal/grammar"
	"mscfpq/internal/graph"
)

func TestSinglePathRelationMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"a", "b", "subClassOf"}
	for name, w := range testGrammars() {
		w := w
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				n := 3 + rng.Intn(14)
				g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
				ap, err := AllPairs(g, w)
				if err != nil {
					t.Fatal(err)
				}
				sp, err := SinglePath(g, w)
				if err != nil {
					t.Fatal(err)
				}
				for a := 0; a < w.NumNonterms(); a++ {
					if !ap.T[a].Equal(sp.T[a]) {
						t.Fatalf("trial %d: %s relation differs", trial, w.Nonterms[a])
					}
				}
			}
		})
	}
}

// verifyPath checks an extracted path end to end: every step is a real
// edge (or vertex label), steps chain, and the word is in the language.
func verifyPath(t *testing.T, g *graph.Graph, w *grammar.WCNF, nonterm string, src, dst int, steps []PathStep) {
	t.Helper()
	cur := src
	for _, s := range steps {
		if s.Src != cur {
			t.Fatalf("path step %+v does not chain from %d", s, cur)
		}
		if s.VertexLabel {
			if s.Src != s.Dst || !g.HasVertexLabel(s.Src, s.Label) {
				t.Fatalf("invalid vertex-label step %+v", s)
			}
		} else if !g.HasEdge(s.Src, s.Label, s.Dst) {
			t.Fatalf("path step %+v is not an edge", s)
		}
		cur = s.Dst
	}
	if cur != dst {
		t.Fatalf("path ends at %d, want %d", cur, dst)
	}
	a := w.NontermID(nonterm)
	if !w.Derives(a, Word(steps)) {
		t.Fatalf("word %v not derivable from %s", Word(steps), nonterm)
	}
}

func TestSinglePathExtractionPaperExample(t *testing.T) {
	g := paperGraph()
	w := cndGrammar()
	sp, err := SinglePath(g, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range sp.Pairs() {
		steps, err := sp.Path(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		verifyPath(t, g, w, "S", pair[0], pair[1], steps)
	}
	// (3,4) must be witnessed by the word c y d.
	steps, err := sp.Path(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	word := Word(steps)
	if len(word) != 3 || word[0] != "c" || word[1] != "y" || word[2] != "d" {
		t.Fatalf("witness word = %v, want [c y d]", word)
	}
	if !steps[1].VertexLabel {
		t.Fatal("middle step must be a vertex label")
	}
}

func TestSinglePathExtractionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	labels := []string{"a", "b"}
	for name, w := range testGrammars() {
		if name == "g2" || name == "samegen" {
			continue // their terminals aren't in the label set
		}
		w := w
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				n := 3 + rng.Intn(12)
				g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
				sp, err := SinglePath(g, w)
				if err != nil {
					t.Fatal(err)
				}
				for _, pair := range sp.Pairs() {
					steps, err := sp.Path(pair[0], pair[1])
					if err != nil {
						t.Fatalf("trial %d pair %v: %v", trial, pair, err)
					}
					verifyPath(t, g, w, "S", pair[0], pair[1], steps)
				}
			}
		})
	}
}

func TestSinglePathEpsilonPair(t *testing.T) {
	w := grammar.MustWCNF(grammar.Dyck1("a", "b"))
	g := graph.New(2)
	g.AddEdge(0, "a", 1) // no matching b: only trivial pairs exist
	sp, err := SinglePath(g, w)
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sp.Path(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Fatalf("eps pair should yield empty path, got %v", steps)
	}
}

func TestSinglePathErrors(t *testing.T) {
	sp, err := SinglePath(paperGraph(), cndGrammar())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Path(0, 5); err == nil {
		t.Fatal("expected error for pair outside relation")
	}
	if _, err := sp.PathFor("NoSuch", 0, 1); err == nil {
		t.Fatal("expected error for unknown nonterminal")
	}
	if _, err := SinglePath(nil, nil); err == nil {
		t.Fatal("expected error for nil inputs")
	}
}

func TestSinglePathLongChain(t *testing.T) {
	// a^n b^n over a straight chain: a-edges 0..k, then b-edges back up.
	const k = 40
	g := graph.New(2*k + 1)
	for i := 0; i < k; i++ {
		g.AddEdge(i, "a", i+1)
	}
	for i := 0; i < k; i++ {
		g.AddEdge(k+i, "b", k+i+1)
	}
	w := grammar.MustWCNF(grammar.AnBn("a", "b"))
	sp, err := SinglePath(g, w)
	if err != nil {
		t.Fatal(err)
	}
	// The only a^n b^n path from 0 ends at 2k with n = k.
	steps, err := sp.Path(0, 2*k)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2*k {
		t.Fatalf("path length = %d, want %d", len(steps), 2*k)
	}
	verifyPath(t, g, w, "S", 0, 2*k, steps)
}
