// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md §3 for the
// experiment index E1-E11). It is shared by the benchrunner binary and
// the root testing.B benchmarks.
//
// Absolute times will differ from the paper's (different hardware and
// substrate); the harness exists to reproduce the *shapes*: who wins,
// by what factor, and how behaviour changes with the source-set size.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"

	"mscfpq/internal/dataset"
	"mscfpq/internal/graph"
	"mscfpq/internal/matrix"
)

// Config tunes experiment size so the suite fits interactive runs.
type Config struct {
	// Scale multiplies the published dataset sizes (per-graph overrides
	// in Scales win). Typical CI value: 0.05.
	Scale float64
	// Scales overrides Scale per graph name.
	Scales map[string]float64
	// ChunkSizes are the source-set sizes of the multiple-source sweep.
	ChunkSizes []int
	// MaxChunks bounds how many chunks of each size are measured.
	MaxChunks int
	// Graphs selects dataset graphs; nil = the default evaluation set.
	Graphs []string
	// Seed drives chunk sampling.
	Seed int64
}

// DefaultConfig returns a configuration that completes in minutes on a
// laptop while preserving the published edge/vertex ratios.
func DefaultConfig() Config {
	return Config{
		Scale: 1,
		Scales: map[string]float64{
			// The published sizes range from 1.3k to 5.7M vertices; the
			// largest graphs are scaled down (documented in DESIGN.md §4).
			"core":         1,
			"pathways":     1,
			"go-hierarchy": 0.10,
			"enzyme":       0.25,
			"eclass_514en": 0.05,
			"go":           0.05,
			"geospecies":   0.02,
			"taxonomy":     0.004,
		},
		ChunkSizes: []int{1, 10, 100, 1000},
		MaxChunks:  8,
		Seed:       2021,
	}
}

// QuickConfig shrinks everything further for unit-test-speed smoke runs
// and the testing.B entry points.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Scales = map[string]float64{
		"core": 0.5, "pathways": 0.25, "go-hierarchy": 0.01, "enzyme": 0.04,
		"eclass_514en": 0.008, "go": 0.008, "geospecies": 0.005, "taxonomy": 0.0006,
	}
	cfg.ChunkSizes = []int{1, 10, 100}
	cfg.MaxChunks = 3
	return cfg
}

// graphNames returns the selected dataset graphs.
func (c Config) graphNames() []string {
	if len(c.Graphs) > 0 {
		return c.Graphs
	}
	return []string{"core", "pathways", "go-hierarchy", "enzyme", "eclass_514en", "go", "geospecies", "taxonomy"}
}

// scaleFor resolves the effective scale of one graph.
func (c Config) scaleFor(name string) float64 {
	if s, ok := c.Scales[name]; ok {
		return s
	}
	if c.Scale > 0 {
		return c.Scale
	}
	return 1
}

// Generate materializes one dataset graph under the config.
func (c Config) Generate(name string) (*graph.Graph, dataset.Spec, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, spec, err
	}
	spec = dataset.Scaled(spec, c.scaleFor(name))
	return dataset.Generate(spec), spec, nil
}

// chunks partitions a shuffled vertex permutation into source sets of
// the given size, keeping at most MaxChunks of them.
func (c Config) chunks(n, size int) []*matrix.Vector {
	if size > n {
		size = n
	}
	rng := rand.New(rand.NewSource(c.Seed))
	perm := rng.Perm(n)
	var out []*matrix.Vector
	for lo := 0; lo < n && len(out) < c.MaxChunks; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, matrix.NewVectorFromIndices(n, perm[lo:hi]))
	}
	return out
}

// timeIt measures fn.
func timeIt(fn func() error) (time.Duration, error) {
	start := time.Now()
	err := fn()
	return time.Since(start), err
}

// Report is a rendered experiment: a title, column headers, and rows.
type Report struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the report as an aligned text table.
func (r *Report) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	fmt.Fprintln(w, line(r.Columns))
	fmt.Fprintln(w, strings.Repeat("-", sum(widths)+2*(len(widths)-1)))
	for _, row := range r.Rows {
		fmt.Fprintln(w, line(row))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

// sortedKeys returns map keys sorted.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
