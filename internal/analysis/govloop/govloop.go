// Package govloop flags kernel loops that ignore the execution
// governor they have in scope.
//
// PR 1 made every long-running algorithm loop — CFPQ fixpoint rounds,
// RPQ automaton products, Kronecker closures, the row blocks of big
// matrix multiplications — poll an exec.Run (or a context) so queries
// stay cancellable and budget-bounded. That discipline is easy to lose:
// a new kernel that receives a governor but never consults it compiles
// and passes tests, yet runs unbounded. govloop turns the convention
// into a build failure.
//
// A function is *governed* when a context.Context or *exec.Run is
// reachable in it (parameter, receiver field, captured or local
// variable). Inside governed functions the analyzer inspects each
// outermost loop and flags it when both hold:
//
//   - the loop is kernel-sized: a fixpoint loop (no condition, or a
//     condition that is a bare bool/negation/function call, e.g.
//     `for changed`, `for !frontier.Empty()`, `for len(work) > 0`), or
//     any loop containing a nested loop (≥ quadratic in the operand);
//     flat constant-trip or single-level index loops are accepted;
//   - no governor checkpoint is reachable in its body: no method call
//     on a context or run value (run.Err, run.Charge, governed run.Mul
//     / run.Closure, ctx.Err, <-ctx.Done()), and no call that passes
//     the governor along to a governed callee.
//
// Ungoverned helpers (e.g. the deliberately plain matrix.Mul serial
// kernel) are out of scope: with no governor in sight there is nothing
// to poll — callers that need interruption use the governed variants.
package govloop

import (
	"go/ast"

	"mscfpq/internal/analysis"
)

// Analyzer is the govloop analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "govloop",
	Doc: "flags kernel-sized loops in governed functions that never poll " +
		"the execution governor (exec.Run / context) available to them",
	DefaultScope: []string{
		"internal/matrix",
		"internal/cfpq",
		"internal/rpq",
		"internal/plan",
		"internal/rsm",
	},
	IgnoreTestFiles: true,
	Run:             run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !hasGovernor(pass, fn) {
				continue
			}
			checkLoops(pass, fn.Body)
		}
	}
	return nil
}

// hasGovernor reports whether a governor value (context.Context or
// *exec.Run) is reachable anywhere in the function: as a parameter,
// receiver, local, or captured identifier.
func hasGovernor(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil && analysis.IsGovernorType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// checkLoops walks a body, stopping at each outermost loop.
func checkLoops(pass *analysis.Pass, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if kernelSized(pass, n) && !hasCheckpoint(pass, n) {
				pass.Reportf(n.Pos(), "kernel-sized loop without a governor checkpoint: poll run.Err()/run.Charge (or the context) inside the loop, use a governed kernel (run.Mul, run.Closure), or pass the governor to the callee")
			}
			// The discipline is one poll per outermost kernel loop;
			// inner row/column loops are deliberately unchecked.
			return false
		}
		return true
	})
}

// kernelSized reports whether the loop's trip count can scale with the
// graph/matrix operand: fixpoint-style conditions or nested loops.
func kernelSized(pass *analysis.Pass, loop ast.Node) bool {
	if forStmt, ok := loop.(*ast.ForStmt); ok {
		switch cond := ast.Unparen(forStmt.Cond).(type) {
		case nil:
			return true // for {} — fixpoint until break
		case *ast.Ident, *ast.UnaryExpr, *ast.CallExpr, *ast.SelectorExpr:
			return true // for changed / for !v.Empty() / for x.More()
		case *ast.BinaryExpr:
			// for len(work) > 0 — worklist loops. Plain index
			// comparisons (i < n) are flat sweeps, accepted.
			if isCallish(cond.X) || isCallish(cond.Y) {
				return true
			}
		}
	}
	// A loop containing another loop multiplies trip counts.
	nested := false
	walkLoopBody(loop, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			nested = true
		}
		return !nested
	})
	return nested
}

func isCallish(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok
}

// walkLoopBody visits the nodes of a loop's body (and range/cond
// expressions are skipped — only the body repeats).
func walkLoopBody(loop ast.Node, fn func(ast.Node) bool) {
	var body *ast.BlockStmt
	switch l := loop.(type) {
	case *ast.ForStmt:
		body = l.Body
	case *ast.RangeStmt:
		body = l.Body
	}
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		return fn(n)
	})
}

// hasCheckpoint reports whether the loop body contains a governor
// checkpoint: a method call on a governor value, or any call that
// receives a governor argument (delegation to a governed callee).
func hasCheckpoint(pass *analysis.Pass, loop ast.Node) bool {
	found := false
	walkLoopBody(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if tv, ok := pass.TypesInfo.Types[sel.X]; ok && analysis.IsGovernorType(tv.Type) {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if tv, ok := pass.TypesInfo.Types[arg]; ok && analysis.IsGovernorType(tv.Type) {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}
