// Package fcneg holds near misses for failcover: durability operations
// a chaos test can reach, and writes that are not durability at all.
package fcneg

import (
	"bytes"
	"os"

	"internal/fault"
)

const (
	fpWrite  = "fc.write"
	fpSync   = "fc.sync"
	fpRename = "fc.rename"
)

// saveCovered precedes every op with its failpoint.
func saveCovered(f *os.File, tmp, final string) error {
	if err := fault.Inject(fpWrite); err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	if err := fault.Inject(fpSync); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := fault.Inject(fpRename); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// writerOnly is covered by the torn-write wrapper alone.
func writerOnly(f *os.File, rec []byte) error {
	_, err := fault.Writer(fpWrite, f).Write(rec)
	return err
}

// helperSync inherits coverage: its every call site follows an Inject.
func helperSync(f *os.File) error {
	return f.Sync()
}

func callHelper(f *os.File) error {
	if err := fault.Inject(fpSync); err != nil {
		return err
	}
	return helperSync(f)
}

// grandparent coverage: two hops up the call chain.
func deepHelper(f *os.File) error {
	return helperTruncate(f)
}

func helperTruncate(f *os.File) error {
	return f.Truncate(0)
}

func callDeep(f *os.File) error {
	if err := fault.Inject(fpSync); err != nil {
		return err
	}
	return deepHelper(f)
}

// bufWrite writes to memory — not a durability operation.
func bufWrite(b *bytes.Buffer) {
	b.Write([]byte("x"))
}
