package matrix

import (
	"fmt"
	"sort"
)

// Vector is a sparse Boolean vector: a sorted, duplicate-free set of
// indices drawn from [0, n). It represents vertex sets throughout the
// CFPQ algorithms (source sets, getDst results, matrix diagonals).
type Vector struct {
	n   int
	idx []uint32
}

// NewVector returns an empty vector of size n.
func NewVector(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("matrix: negative vector size %d", n))
	}
	return &Vector{n: n}
}

// NewVectorFromIndices builds a vector of size n from the given indices,
// which may be unsorted and may repeat.
func NewVectorFromIndices(n int, indices []int) *Vector {
	v := NewVector(n)
	for _, i := range indices {
		v.Set(i)
	}
	return v
}

// Size returns the dimension of the vector.
func (v *Vector) Size() int { return v.n }

// NVals returns the number of set indices.
func (v *Vector) NVals() int { return len(v.idx) }

// Empty reports whether no index is set.
func (v *Vector) Empty() bool { return len(v.idx) == 0 }

// Set marks index i.
func (v *Vector) Set(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("matrix: vector index %d out of range %d", i, v.n))
	}
	c := uint32(i)
	k := sort.Search(len(v.idx), func(x int) bool { return v.idx[x] >= c })
	if k < len(v.idx) && v.idx[k] == c {
		return
	}
	v.idx = append(v.idx, 0)
	copy(v.idx[k+1:], v.idx[k:])
	v.idx[k] = c
}

// Get reports whether index i is set.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("matrix: vector index %d out of range %d", i, v.n))
	}
	c := uint32(i)
	k := sort.Search(len(v.idx), func(x int) bool { return v.idx[x] >= c })
	return k < len(v.idx) && v.idx[k] == c
}

// Indices returns the sorted set indices. The slice is owned by the
// vector and must not be modified.
func (v *Vector) Indices() []uint32 { return v.idx }

// Ints returns the set indices as a fresh []int.
func (v *Vector) Ints() []int {
	out := make([]int, len(v.idx))
	for k, c := range v.idx {
		out[k] = int(c)
	}
	return out
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return &Vector{n: v.n, idx: append([]uint32(nil), v.idx...)}
}

// Equal reports whether the vectors have identical size and indices.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n || len(v.idx) != len(o.idx) {
		return false
	}
	for k := range v.idx {
		if v.idx[k] != o.idx[k] {
			return false
		}
	}
	return true
}

// UnionInPlace ORs o into v and reports whether v changed.
func (v *Vector) UnionInPlace(o *Vector) bool {
	if v.n != o.n {
		panic(fmt.Sprintf("matrix: vector union size mismatch %d vs %d", v.n, o.n))
	}
	if len(o.idx) == 0 {
		return false
	}
	if containsAll(v.idx, o.idx) {
		return false
	}
	v.idx = unionRows(v.idx, o.idx)
	return true
}

// DiffInPlace removes o's indices from v and reports whether v changed.
func (v *Vector) DiffInPlace(o *Vector) bool {
	if v.n != o.n {
		panic(fmt.Sprintf("matrix: vector diff size mismatch %d vs %d", v.n, o.n))
	}
	before := len(v.idx)
	v.idx = diffRows(v.idx, o.idx)
	return len(v.idx) != before
}

// Diag returns the n x n matrix with v's indices on the diagonal; this is
// the matrix form of a source-vertex set used by the CFPQ algorithms.
func (v *Vector) Diag() *Bool {
	m := NewBool(v.n, v.n)
	for _, c := range v.idx {
		m.rows[c] = []uint32{c}
	}
	m.nvals = len(v.idx)
	return m
}

// DiagVector extracts the diagonal of a square matrix as a vector.
func DiagVector(m *Bool) *Vector {
	if m.nrows != m.ncols {
		panic(fmt.Sprintf("matrix: DiagVector of non-square %dx%d", m.nrows, m.ncols))
	}
	v := NewVector(m.nrows)
	for i, row := range m.rows {
		c := uint32(i)
		k := sort.Search(len(row), func(x int) bool { return row[x] >= c })
		if k < len(row) && row[k] == c {
			v.idx = append(v.idx, c)
		}
	}
	return v
}

// ReduceCols collapses m to the vector of columns that contain at least
// one true entry. This is the linear-algebra form of the paper's getDst:
// the destination vertices of all pairs represented by m (implemented via
// reduce_vector in the paper's pygraphblas version).
func ReduceCols(m *Bool) *Vector {
	v := NewVector(m.ncols)
	if m.nvals == 0 {
		return v
	}
	acc := getAccumulator(m.ncols)
	acc.reset()
	for _, row := range m.rows {
		acc.orRow(row)
	}
	v.idx = acc.extract(make([]uint32, 0, acc.count()))
	putAccumulator(acc)
	return v
}

// ReduceRows collapses m to the vector of rows that contain at least one
// true entry.
func ReduceRows(m *Bool) *Vector {
	v := NewVector(m.nrows)
	for i, row := range m.rows {
		if len(row) > 0 {
			v.idx = append(v.idx, uint32(i))
		}
	}
	return v
}

// GetDst returns getDst(m) from the paper (Algorithm 2, lines 17-21): the
// diagonal matrix marking every destination vertex of m.
func GetDst(m *Bool) *Bool {
	if m.nrows != m.ncols {
		panic(fmt.Sprintf("matrix: GetDst of non-square %dx%d", m.nrows, m.ncols))
	}
	return ReduceCols(m).Diag()
}

// VecMul returns the vector-matrix product v * m: the set of columns of m
// reachable from rows in v.
func VecMul(v *Vector, m *Bool) *Vector {
	if v.n != m.nrows {
		panic(fmt.Sprintf("matrix: VecMul size mismatch %d vs %dx%d", v.n, m.nrows, m.ncols))
	}
	out := NewVector(m.ncols)
	if len(v.idx) == 0 || m.nvals == 0 {
		return out
	}
	acc := getAccumulator(m.ncols)
	acc.reset()
	for _, i := range v.idx {
		acc.orRow(m.rows[i])
	}
	out.idx = acc.extract(make([]uint32, 0, acc.count()))
	putAccumulator(acc)
	return out
}

func (v *Vector) String() string {
	return fmt.Sprintf("Vector{n=%d, set=%v}", v.n, v.Ints())
}
