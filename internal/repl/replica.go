package repl

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"mscfpq/internal/fault"
	"mscfpq/internal/gdb"
	"mscfpq/internal/obs"
	"mscfpq/internal/resp"
)

// Replica is the follower side: it maintains one stream from the
// leader, mirroring journal records (and rotations) into its local
// database strictly in stream order, bootstrapping from a snapshot
// when it has no resumable history. The database should be in replica
// mode (db.SetReplicaSource) so client writes are refused; queries
// keep serving from pinned MVCC snapshots throughout.
type Replica struct {
	db     *gdb.DB
	leader string

	// Reconnect backoff window (jittered exponential).
	minBackoff time.Duration
	maxBackoff time.Duration

	mu         sync.Mutex
	connected  bool      // guarded by mu
	pos        position  // guarded by mu: last applied local position
	leaderPos  position  // guarded by mu: leader's committed position, from stream frames
	caughtUp   bool      // guarded by mu: pos has reached leaderPos
	caughtUpAt time.Time // guarded by mu: last instant caughtUp held (lag anchors here)
	fullsyncs  int64     // guarded by mu
	reconnects int64     // guarded by mu
}

// Option tunes a Replica.
type Option func(*Replica)

// WithBackoff sets the reconnect backoff window.
func WithBackoff(min, max time.Duration) Option {
	return func(r *Replica) { r.minBackoff, r.maxBackoff = min, max }
}

// New builds a replica of the leader at addr. Call Run to start
// streaming.
func New(db *gdb.DB, leaderAddr string, opts ...Option) *Replica {
	r := &Replica{
		db:         db,
		leader:     leaderAddr,
		minBackoff: 50 * time.Millisecond,
		maxBackoff: 2 * time.Second,
		caughtUpAt: time.Now(),
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Run streams from the leader until ctx is cancelled, reconnecting
// with jittered exponential backoff on any stream failure. It returns
// ctx.Err().
func (r *Replica) Run(ctx context.Context) error {
	backoff := r.minBackoff
	for first := true; ; first = false {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !first {
			obs.ReplReconnects.Inc()
			r.mu.Lock()
			r.reconnects++
			r.mu.Unlock()
			// Full jitter over the window so a restarted leader is not
			// hit by every replica in lockstep.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff/2 + time.Duration(rand.Int64N(int64(backoff)))):
			}
			if backoff < r.maxBackoff {
				backoff *= 2
			}
		}
		prevSeq, prevOff := r.Position()
		// Stream failures are retried here; reconnects surface in INFO and obs.
		_ = r.once(ctx)
		// A session that made progress earns a fresh backoff window; a
		// leader that keeps dying instantly keeps the long one.
		if seq, off := r.Position(); seq != prevSeq || off != prevOff {
			backoff = r.minBackoff
		}
	}
}

// once runs one connect-handshake-stream session; any error tears the
// session down for a reconnect.
func (r *Replica) once(ctx context.Context) error {
	if err := fault.Inject(FPHandshake); err != nil {
		return fmt.Errorf("repl: handshake: %w", err)
	}
	conn, err := net.DialTimeout("tcp", r.leader, 5*time.Second)
	if err != nil {
		return fmt.Errorf("repl: dial leader %s: %w", r.leader, err)
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { _ = conn.SetDeadline(time.Now()) })
	defer stop()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	pos, err := r.handshake(br, bw)
	if err != nil {
		return err
	}
	r.setConnected(true, pos)
	defer r.setConnected(false, position{})

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		frame, err := resp.Read(br)
		if err != nil {
			return fmt.Errorf("repl: stream read: %w", err)
		}
		tag, err := frameTag(frame)
		if err != nil {
			return err
		}
		switch tag {
		case frameRec:
			pos, err = r.applyRecord(frame, pos)
		case frameRotate:
			pos, err = r.rotate(frame, pos)
		case framePing:
			err = r.notePing(frame, pos)
		default:
			err = fmt.Errorf("repl: unexpected frame %q mid-stream", tag)
		}
		if err != nil {
			return err
		}
	}
}

// handshake sends SYNC with the persisted history identity and
// recovered journal position, then follows the leader's CONTINUE or
// FULLSYNC decision. It returns the stream's starting position.
func (r *Replica) handshake(br *bufio.Reader, bw *bufio.Writer) (position, error) {
	replid := loadSource(r.db.DataDir())
	seq, off := r.db.ReplPosition()
	if replid == noHistory {
		// Without an identity the offsets are meaningless; present none.
		seq, off = 0, 0
	}
	cmd := resp.Arr(resp.Bulk("SYNC"), resp.Bulk(replid),
		resp.Bulk(fmt.Sprintf("%d", seq)), resp.Bulk(fmt.Sprintf("%d", off)))
	if err := resp.Write(bw, cmd); err != nil {
		return position{}, fmt.Errorf("repl: handshake send: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return position{}, fmt.Errorf("repl: handshake send: %w", err)
	}
	reply, err := resp.Read(br)
	if err != nil {
		return position{}, fmt.Errorf("repl: handshake read: %w", err)
	}
	if reply.Kind == resp.ErrorString {
		return position{}, fmt.Errorf("repl: leader rejected SYNC: %s", reply.Str)
	}
	tag, err := frameTag(reply)
	if err != nil {
		return position{}, err
	}
	switch tag {
	case frameContinue:
		cseq, err := frameInt(reply, 1)
		if err != nil {
			return position{}, err
		}
		coff, err := frameInt(reply, 2)
		if err != nil {
			return position{}, err
		}
		got := position{seq: uint64(cseq), off: coff}
		if got != (position{seq: seq, off: off}) {
			return position{}, fmt.Errorf("repl: leader continued at %v, asked for %d:%d", got, seq, off)
		}
		return got, nil
	case frameFullsync:
		return r.bootstrap(reply, br)
	default:
		return position{}, fmt.Errorf("repl: unexpected handshake reply %q", tag)
	}
}

// bootstrap receives and installs a full snapshot transfer. The
// recorded history identity is cleared before the install and written
// after it, so a crash at any point leaves a directory that requests a
// clean full sync instead of resuming into a half-installed history.
func (r *Replica) bootstrap(reply resp.Value, br *bufio.Reader) (position, error) {
	if len(reply.Array) < 3 {
		return position{}, fmt.Errorf("repl: malformed FULLSYNC frame")
	}
	leaderID := reply.Array[1].Str
	seq, err := frameInt(reply, 2)
	if err != nil {
		return position{}, err
	}
	if err := clearSource(r.db.DataDir()); err != nil {
		return position{}, err
	}
	if err := r.db.ReplInstallSnapshot(uint64(seq), &snapStream{br: br}); err != nil {
		return position{}, err
	}
	if err := saveSource(r.db.DataDir(), leaderID); err != nil {
		return position{}, err
	}
	obs.ReplSnapshotBootstraps.Inc()
	r.mu.Lock()
	r.fullsyncs++
	r.mu.Unlock()
	return position{seq: uint64(seq)}, nil
}

// snapStream adapts the SNAP/SNAPEND frame sequence into the io.Reader
// gdb.ReplInstallSnapshot spools from, verifying the byte count the
// leader declares.
type snapStream struct {
	br    *bufio.Reader
	buf   []byte
	total int64
	done  bool
}

func (s *snapStream) Read(p []byte) (int, error) {
	for len(s.buf) == 0 {
		if s.done {
			return 0, io.EOF
		}
		frame, err := resp.Read(s.br)
		if err != nil {
			return 0, fmt.Errorf("repl: snapshot stream: %w", err)
		}
		tag, err := frameTag(frame)
		if err != nil {
			return 0, err
		}
		switch tag {
		case frameSnap:
			if len(frame.Array) < 2 {
				return 0, fmt.Errorf("repl: malformed SNAP frame")
			}
			s.buf = []byte(frame.Array[1].Str)
			s.total += int64(len(s.buf))
		case frameSnapEnd:
			want, err := frameInt(frame, 1)
			if err != nil {
				return 0, err
			}
			if want != s.total {
				return 0, fmt.Errorf("repl: snapshot transfer short: got %d bytes, leader sent %d", s.total, want)
			}
			s.done = true
		default:
			return 0, fmt.Errorf("repl: unexpected frame %q during snapshot transfer", tag)
		}
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// applyRecord mirrors one REC frame: append the raw record to the
// local journal (fsynced) and apply it, exactly as the leader did.
func (r *Replica) applyRecord(frame resp.Value, pos position) (position, error) {
	if len(frame.Array) < 3 {
		return pos, fmt.Errorf("repl: malformed REC frame")
	}
	seq, err := frameInt(frame, 1)
	if err != nil {
		return pos, err
	}
	if uint64(seq) != pos.seq {
		return pos, fmt.Errorf("repl: REC for journal %d while mirroring %d", seq, pos.seq)
	}
	raw := []byte(frame.Array[2].Str)
	if err := fault.Inject(FPApply); err != nil {
		return pos, fmt.Errorf("repl: apply: %w", err)
	}
	if err := r.db.ReplApply(raw); err != nil {
		return pos, err
	}
	pos.off += int64(len(raw))
	r.advance(pos)
	return pos, nil
}

// rotate mirrors a ROTATE frame: the local database cuts its own
// snapshot under the new sequence, staying in file-level lockstep.
func (r *Replica) rotate(frame resp.Value, pos position) (position, error) {
	seq, err := frameInt(frame, 1)
	if err != nil {
		return pos, err
	}
	if err := fault.Inject(FPRotate); err != nil {
		return pos, fmt.Errorf("repl: rotate: %w", err)
	}
	if err := r.db.ReplRotate(uint64(seq)); err != nil {
		return pos, err
	}
	pos = position{seq: uint64(seq)}
	r.advance(pos)
	return pos, nil
}

// notePing records the leader's committed position for lag tracking.
func (r *Replica) notePing(frame resp.Value, pos position) error {
	seq, err := frameInt(frame, 1)
	if err != nil {
		return err
	}
	off, err := frameInt(frame, 2)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.leaderPos = position{seq: uint64(seq), off: off}
	r.refreshLagLocked()
	r.mu.Unlock()
	return nil
}

// advance publishes a new local position.
func (r *Replica) advance(pos position) {
	r.mu.Lock()
	r.pos = pos
	// Every record the leader ships was committed there first, so the
	// leader is known to be at least at our position.
	if r.leaderPos.before(pos) {
		r.leaderPos = pos
	}
	r.refreshLagLocked()
	r.mu.Unlock()
}

// refreshLagLocked recomputes caught-up state and the lag gauge.
// Caller holds mu.
func (r *Replica) refreshLagLocked() {
	r.caughtUp = !r.pos.before(r.leaderPos)
	if r.caughtUp {
		r.caughtUpAt = time.Now()
		obs.ReplLagSeconds.Set(0)
	} else {
		obs.ReplLagSeconds.Set(int64(time.Since(r.caughtUpAt).Seconds()))
	}
}

// setConnected publishes stream liveness (and the negotiated position
// on connect).
func (r *Replica) setConnected(up bool, pos position) {
	r.mu.Lock()
	r.connected = up
	if up {
		r.pos = pos
		if r.leaderPos.before(pos) {
			r.leaderPos = pos
		}
		r.refreshLagLocked()
	}
	r.mu.Unlock()
}

// Position returns the last applied local stream position.
func (r *Replica) Position() (seq uint64, off int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pos.seq, r.pos.off
}

// Lag returns the current replication lag: zero when caught up with
// the last reported leader position, otherwise the time since the
// replica was last caught up.
func (r *Replica) Lag() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.caughtUp {
		return 0
	}
	return time.Since(r.caughtUpAt)
}

// InfoLines renders the follower's INFO replication section. Offset
// fields are monotonic in (journal_seq, journal_offset) order while a
// single Run loop owns the database.
func (r *Replica) InfoLines() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	state := "connecting"
	if r.connected {
		state = "connected"
	}
	lag := time.Duration(0)
	if !r.caughtUp {
		lag = time.Since(r.caughtUpAt)
	}
	return []string{
		"role:replica",
		"leader:" + r.leader,
		"state:" + state,
		fmt.Sprintf("journal_seq:%d", r.pos.seq),
		fmt.Sprintf("journal_offset:%d", r.pos.off),
		fmt.Sprintf("leader_seq:%d", r.leaderPos.seq),
		fmt.Sprintf("leader_offset:%d", r.leaderPos.off),
		fmt.Sprintf("lag_seconds:%d", int64(lag.Seconds())),
		fmt.Sprintf("sync_full:%d", r.fullsyncs),
		fmt.Sprintf("reconnects:%d", r.reconnects),
	}
}
