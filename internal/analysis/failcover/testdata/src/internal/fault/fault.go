// Package fault is the fixture stand-in for the repository's
// failpoint framework: failcover resolves Inject and Writer by
// package-path suffix, so the fixture only needs matching signatures.
package fault

import "io"

func Inject(name string) error { return nil }

func Writer(name string, w io.Writer) io.Writer { return w }
