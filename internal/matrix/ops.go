package matrix

import "fmt"

// Mul returns the Boolean product a * b over the (OR, AND) semiring.
func Mul(a, b *Bool) *Bool {
	if a.ncols != b.nrows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %dx%d * %dx%d", a.nrows, a.ncols, b.nrows, b.ncols))
	}
	out := NewBool(a.nrows, b.ncols)
	if a.nvals == 0 || b.nvals == 0 {
		return out
	}
	acc := getAccumulator(b.ncols)
	mulRowsInto(a, b, out, 0, a.nrows, acc)
	putAccumulator(acc)
	return out
}

// mulRowsInto computes rows [lo, hi) of a*b into out using acc.
func mulRowsInto(a, b, out *Bool, lo, hi int, acc *accumulator) {
	for i := lo; i < hi; i++ {
		ra := a.rows[i]
		if len(ra) == 0 {
			continue
		}
		acc.reset()
		nonEmpty := false
		for _, k := range ra {
			rb := b.rows[k]
			if len(rb) == 0 {
				continue
			}
			acc.orRow(rb)
			nonEmpty = true
		}
		if !nonEmpty {
			continue
		}
		row := acc.extract(make([]uint32, 0, acc.count()))
		out.rows[i] = row
		out.nvals += len(row)
	}
}

// MulPar returns a * b, splitting row blocks across workers goroutines.
// workers <= 1 falls back to the serial Mul.
func MulPar(a, b *Bool, workers int) *Bool {
	if a.ncols != b.nrows {
		panic(fmt.Sprintf("matrix: MulPar dimension mismatch %dx%d * %dx%d", a.nrows, a.ncols, b.nrows, b.ncols))
	}
	if workers <= 1 || a.nrows < 2*workers {
		return Mul(a, b)
	}
	out := NewBool(a.nrows, b.ncols)
	if a.nvals == 0 || b.nvals == 0 {
		return out
	}
	type block struct{ lo, hi int }
	done := make(chan int, workers)
	step := (a.nrows + workers - 1) / workers
	nblocks := 0
	for lo := 0; lo < a.nrows; lo += step {
		hi := lo + step
		if hi > a.nrows {
			hi = a.nrows
		}
		nblocks++
		go func(blk block) {
			acc := getAccumulator(b.ncols)
			n := 0
			for i := blk.lo; i < blk.hi; i++ {
				ra := a.rows[i]
				if len(ra) == 0 {
					continue
				}
				acc.reset()
				for _, k := range ra {
					acc.orRow(b.rows[k])
				}
				row := acc.extract(make([]uint32, 0, acc.count()))
				if len(row) > 0 {
					out.rows[i] = row // disjoint row ranges: no locking needed
					n += len(row)
				}
			}
			putAccumulator(acc)
			done <- n
		}(block{lo, hi})
	}
	total := 0
	for i := 0; i < nblocks; i++ {
		total += <-done
	}
	out.nvals = total
	return out
}

// Add returns the element-wise OR a + b.
func Add(a, b *Bool) *Bool {
	checkSameShape("Add", a, b)
	out := NewBool(a.nrows, a.ncols)
	for i := range a.rows {
		row := unionRows(a.rows[i], b.rows[i])
		out.rows[i] = row
		out.nvals += len(row)
	}
	return out
}

// AddInPlace ORs b into a and reports whether a changed.
func AddInPlace(a, b *Bool) bool {
	checkSameShape("AddInPlace", a, b)
	changed := false
	for i := range a.rows {
		rb := b.rows[i]
		if len(rb) == 0 {
			continue
		}
		ra := a.rows[i]
		if len(ra) == 0 {
			a.rows[i] = append([]uint32(nil), rb...)
			a.markOwned(i)
			a.nvals += len(rb)
			changed = true
			continue
		}
		if containsAll(ra, rb) {
			continue
		}
		row := unionRows(ra, rb)
		a.nvals += len(row) - len(ra)
		a.rows[i] = row
		a.markOwned(i)
		changed = true
	}
	return changed
}

// Sub returns the set difference a \ b: entries of a not present in b.
func Sub(a, b *Bool) *Bool {
	checkSameShape("Sub", a, b)
	out := NewBool(a.nrows, a.ncols)
	for i := range a.rows {
		row := diffRows(a.rows[i], b.rows[i])
		out.rows[i] = row
		out.nvals += len(row)
	}
	return out
}

// SubInPlace removes the entries of b from a and reports whether a changed.
func SubInPlace(a, b *Bool) bool {
	checkSameShape("SubInPlace", a, b)
	changed := false
	for i := range a.rows {
		ra, rb := a.rows[i], b.rows[i]
		if len(ra) == 0 || len(rb) == 0 {
			continue
		}
		row := diffRows(ra, rb)
		if len(row) != len(ra) {
			a.nvals += len(row) - len(ra)
			a.rows[i] = row
			a.markOwned(i)
			changed = true
		}
	}
	return changed
}

// Intersect returns the element-wise AND of a and b.
func Intersect(a, b *Bool) *Bool {
	checkSameShape("Intersect", a, b)
	out := NewBool(a.nrows, a.ncols)
	for i := range a.rows {
		row := intersectRows(a.rows[i], b.rows[i])
		out.rows[i] = row
		out.nvals += len(row)
	}
	return out
}

// Transpose returns the transposed matrix.
func Transpose(a *Bool) *Bool {
	out := NewBool(a.ncols, a.nrows)
	counts := make([]int, a.ncols)
	for _, row := range a.rows {
		for _, c := range row {
			counts[c]++
		}
	}
	for j, n := range counts {
		if n > 0 {
			out.rows[j] = make([]uint32, 0, n)
		}
	}
	for i, row := range a.rows {
		for _, c := range row {
			out.rows[c] = append(out.rows[c], uint32(i))
		}
	}
	out.nvals = a.nvals
	return out
}

// Kron returns the Kronecker product a ⊗ b: a (ra x ca), b (rb x cb)
// yield an (ra*rb) x (ca*cb) matrix with blocks b wherever a is true.
func Kron(a, b *Bool) *Bool {
	ra, ca := a.nrows, a.ncols
	rb, cb := b.nrows, b.ncols
	out := NewBool(ra*rb, ca*cb)
	if a.nvals == 0 || b.nvals == 0 {
		return out
	}
	for i1, rowA := range a.rows {
		if len(rowA) == 0 {
			continue
		}
		for i2 := 0; i2 < rb; i2++ {
			rowB := b.rows[i2]
			if len(rowB) == 0 {
				continue
			}
			dst := make([]uint32, 0, len(rowA)*len(rowB))
			for _, j1 := range rowA {
				base := j1 * uint32(cb)
				for _, j2 := range rowB {
					dst = append(dst, base+j2)
				}
			}
			out.rows[i1*rb+i2] = dst
			out.nvals += len(dst)
		}
	}
	return out
}

// TransitiveClosure returns the transitive closure of a square matrix
// (without the reflexive diagonal unless already present), iterating
// M += M*M until fixpoint.
func TransitiveClosure(a *Bool) *Bool {
	if a.nrows != a.ncols {
		panic(fmt.Sprintf("matrix: TransitiveClosure of non-square %dx%d", a.nrows, a.ncols))
	}
	m := a.Clone()
	for {
		if !AddInPlace(m, Mul(m, m)) {
			return m
		}
	}
}

// ExtractRows returns a copy of a containing only the rows listed in set;
// all other rows are empty.
func ExtractRows(a *Bool, set *Vector) *Bool {
	if set.n != a.nrows {
		panic(fmt.Sprintf("matrix: ExtractRows vector size %d does not match rows %d", set.n, a.nrows))
	}
	out := NewBool(a.nrows, a.ncols)
	for _, i := range set.idx {
		row := a.rows[i]
		if len(row) == 0 {
			continue
		}
		out.rows[i] = append([]uint32(nil), row...)
		out.nvals += len(row)
	}
	return out
}

func checkSameShape(op string, a, b *Bool) {
	if a.nrows != b.nrows || a.ncols != b.ncols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.nrows, a.ncols, b.nrows, b.ncols))
	}
}

// unionRows merges two sorted duplicate-free slices into a new slice.
func unionRows(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return append([]uint32(nil), b...)
	}
	if len(b) == 0 {
		return append([]uint32(nil), a...)
	}
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// diffRows returns a \ b for sorted duplicate-free slices.
func diffRows(a, b []uint32) []uint32 {
	if len(a) == 0 {
		return nil
	}
	if len(b) == 0 {
		return append([]uint32(nil), a...)
	}
	out := make([]uint32, 0, len(a))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	if len(out) == 0 {
		return nil
	}
	return out
}

// intersectRows returns a ∩ b for sorted duplicate-free slices.
func intersectRows(a, b []uint32) []uint32 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]uint32, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// containsAll reports whether sorted slice a contains every element of b.
func containsAll(a, b []uint32) bool {
	if len(b) > len(a) {
		return false
	}
	i := 0
	for _, v := range b {
		for i < len(a) && a[i] < v {
			i++
		}
		if i >= len(a) || a[i] != v {
			return false
		}
		i++
	}
	return true
}
