package repl

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mscfpq/internal/fault"
)

// Replication identity files, both living in the database's data
// directory next to the snapshots and journals they describe:
//
//   - "replid" (leader): a random 32-hex token minted once per history.
//     Offsets are only meaningful within one history, so the handshake
//     carries it and a mismatch forces a full sync instead of silently
//     splicing two unrelated journals together.
//   - "replsrc" (follower): the leader replid this directory mirrors.
//     The follower deletes it BEFORE installing a streamed snapshot and
//     rewrites it after, so a crash mid-install leaves a directory that
//     claims no history and bootstraps cleanly.

const (
	replidFile  = "replid"
	replsrcFile = "replsrc"
)

// loadOrCreateReplID returns the directory's history identity, minting
// and persisting a fresh one on first use.
func loadOrCreateReplID(dir string) (string, error) {
	path := filepath.Join(dir, replidFile)
	if b, err := os.ReadFile(path); err == nil {
		id := strings.TrimSpace(string(b))
		if id != "" {
			return id, nil
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return "", fmt.Errorf("repl: reading %s: %w", path, err)
	}
	raw := make([]byte, 16)
	if _, err := rand.Read(raw); err != nil {
		return "", fmt.Errorf("repl: minting replid: %w", err)
	}
	id := hex.EncodeToString(raw)
	if err := writeStateFile(dir, replidFile, id); err != nil {
		return "", err
	}
	return id, nil
}

// loadSource returns the leader replid this follower directory mirrors,
// or noHistory when none is recorded (fresh directory, cleared by a
// bootstrap in progress, or no directory at all).
func loadSource(dir string) string {
	if dir == "" {
		return noHistory
	}
	b, err := os.ReadFile(filepath.Join(dir, replsrcFile))
	if err != nil {
		return noHistory
	}
	id := strings.TrimSpace(string(b))
	if id == "" {
		return noHistory
	}
	return id
}

// clearSource removes the follower's recorded history identity; called
// before a snapshot install so a crash mid-install degrades to another
// full sync, never to a directory claiming a history it only half
// holds.
func clearSource(dir string) error {
	if dir == "" {
		return nil
	}
	err := os.Remove(filepath.Join(dir, replsrcFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("repl: clearing %s: %w", replsrcFile, err)
	}
	return nil
}

// saveSource records the leader replid after a completed install or
// before tailing an adopted history.
func saveSource(dir, replid string) error {
	if dir == "" {
		return nil
	}
	return writeStateFile(dir, replsrcFile, replid)
}

// writeStateFile atomically replaces dir/name with content: temp file,
// fsync, rename. State files are tiny and rewritten rarely; a torn
// write must still never be readable as a valid identity.
func writeStateFile(dir, name, content string) error {
	if err := fault.Inject(FPStateWrite); err != nil {
		return fmt.Errorf("repl: state write: %w", err)
	}
	f, err := os.CreateTemp(dir, name+"-*.tmp")
	if err != nil {
		return fmt.Errorf("repl: state write: %w", err)
	}
	tmp := f.Name()
	fail := func(step string, err error) error {
		// Best-effort cleanup after the state write already failed.
		_ = f.Close()
		// Ditto; a stale temp file is inert.
		_ = os.Remove(tmp)
		return fmt.Errorf("repl: state %s: %w", step, err)
	}
	if _, err := fault.Writer(FPStateWrite, f).Write([]byte(content + "\n")); err != nil {
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	if err := fault.Inject(FPStateRename); err != nil {
		// The temp file is inert; recovery ignores it.
		_ = os.Remove(tmp)
		return fmt.Errorf("repl: state rename: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		// Ditto.
		_ = os.Remove(tmp)
		return fmt.Errorf("repl: state rename: %w", err)
	}
	return nil
}
