package gdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"mscfpq/internal/fault"
	"mscfpq/internal/obs"
)

// Replication support (internal/repl builds on these primitives; see
// DESIGN.md §13). A follower's data directory is a byte-for-byte
// mirror of the leader's: the leader streams raw journal records and
// whole snapshot files, and the follower appends/installs them under
// the SAME sequence numbers. Because the on-disk layout is identical,
// follower crash recovery is ordinary Open — the recovered (seq,
// offset) pair is exactly the stream position to resume from, and the
// follower's state is a prefix of the leader's by construction.

// Failpoints in the replication apply/install paths, mirrored from the
// durability convention: the follower journal append is tearable (a
// crash mid-record must truncate cleanly on recovery), and the
// snapshot install is torn/failed at each syscall step.
const (
	FPReplApplyAppend   = "repl.apply.append"
	FPReplApplySync     = "repl.apply.sync"
	FPReplInstallWrite  = "repl.install.write"
	FPReplInstallSync   = "repl.install.sync"
	FPReplInstallRename = "repl.install.rename"
)

var _ = fault.Declare(FPReplApplyAppend, FPReplApplySync,
	FPReplInstallWrite, FPReplInstallSync, FPReplInstallRename)

// ReadOnlyError rejects a write on a replica. Its message starts with
// the READONLY code (Redis convention) so RESP clients can parse the
// leader address out of the error and re-route.
type ReadOnlyError struct{ Leader string }

func (e *ReadOnlyError) Error() string {
	return fmt.Sprintf("READONLY replica of %s; write commands must go to the leader", e.Leader)
}

// SetReplicaSource marks the database as a read-only replica of the
// leader at addr ("" reverts to leader mode). While set, every
// mutation and out-of-band Save fails with *ReadOnlyError; state only
// changes through ReplApply/ReplRotate/ReplInstallSnapshot.
func (db *DB) SetReplicaSource(addr string) {
	if addr == "" {
		db.replicaSrc.Store(nil)
		return
	}
	db.replicaSrc.Store(&addr)
}

// ReplicaSource returns the leader address, or "" on a leader.
func (db *DB) ReplicaSource() string {
	if p := db.replicaSrc.Load(); p != nil {
		return *p
	}
	return ""
}

// readOnlyErr returns the rejection for client-originated writes on a
// replica, nil on a leader.
func (db *DB) readOnlyErr() error {
	if p := db.replicaSrc.Load(); p != nil {
		return &ReadOnlyError{Leader: *p}
	}
	return nil
}

// ReplPosition returns the live journal position: the sequence of the
// current snapshot/journal pair and the byte length of the journal's
// intact record prefix. After Open this is the recovered position a
// replication handshake resumes from. (0, 0) when not durable.
func (db *DB) ReplPosition() (seq uint64, off int64) {
	if db.dur == nil {
		return 0, 0
	}
	db.dur.mu.Lock()
	defer db.dur.mu.Unlock()
	return db.dur.seq, db.dur.off
}

// WatchJournal returns a channel closed on the next journal append,
// rotation, or snapshot install. Callers re-fetch a fresh channel
// BEFORE scanning for new data, so a write landing between the scan
// and the wait cannot be missed. Nil when not durable.
func (db *DB) WatchJournal() <-chan struct{} {
	if db.dur == nil {
		return nil
	}
	db.dur.mu.Lock()
	defer db.dur.mu.Unlock()
	return db.dur.watch
}

// PinSegment protects sequence seq's snapshot and journal files from
// rotation pruning while a replication tail reads them. The returned
// release is idempotent. A no-op when not durable.
func (db *DB) PinSegment(seq uint64) (release func()) {
	if db.dur == nil {
		return func() {}
	}
	dur := db.dur
	dur.mu.Lock()
	dur.pins[seq]++
	dur.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			dur.mu.Lock()
			if dur.pins[seq]--; dur.pins[seq] <= 0 {
				delete(dur.pins, seq)
			}
			dur.mu.Unlock()
		})
	}
}

// JournalFile returns the path of sequence seq's journal ("" when not
// durable). The file is only guaranteed to outlive rotation while
// pinned.
func (db *DB) JournalFile(seq uint64) string {
	if db.dur == nil {
		return ""
	}
	return journalPath(db.dur.dir, seq)
}

// SnapshotFile returns the path of sequence seq's snapshot ("" when
// not durable).
func (db *DB) SnapshotFile(seq uint64) string {
	if db.dur == nil {
		return ""
	}
	return snapshotPath(db.dur.dir, seq)
}

// ScanRecords reads raw framed journal records from path starting at
// byte offset off, stopping after maxBytes of records have been
// collected (at least one record is returned if one is intact) or at
// the first torn/garbage tail — a torn tail is not an error, the scan
// simply ends at the last record boundary, matching recovery. It
// returns the records and the offset where the scan ended.
func ScanRecords(path string, off int64, maxBytes int64) ([][]byte, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, off, err
	}
	//lint:ignore errdrop read-only file; close failures cannot lose data
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, off, err
	}
	var recs [][]byte
	var total int64
	header := make([]byte, 8)
	for total < maxBytes {
		if _, err := io.ReadFull(f, header); err != nil {
			break // clean EOF or torn tail: stop at the last boundary
		}
		payloadLen := binary.BigEndian.Uint32(header)
		if payloadLen > maxJournalRecord {
			break // garbage length: treat as a torn tail
		}
		raw := make([]byte, 8+payloadLen)
		copy(raw, header)
		if _, err := io.ReadFull(f, raw[8:]); err != nil {
			break
		}
		if crc32.ChecksumIEEE(raw[8:]) != binary.BigEndian.Uint32(header[4:]) {
			break
		}
		recs = append(recs, raw)
		off += int64(len(raw))
		total += int64(len(raw))
	}
	return recs, off, nil
}

// decodeFramedRecord validates one length-prefixed, checksummed
// journal record exactly as it sits in the file and decodes its op.
func decodeFramedRecord(raw []byte) (journalOp, error) {
	if len(raw) < 8 {
		return journalOp{}, fmt.Errorf("gdb: framed record too short (%d bytes)", len(raw))
	}
	payloadLen := binary.BigEndian.Uint32(raw)
	if uint64(payloadLen) != uint64(len(raw)-8) {
		return journalOp{}, fmt.Errorf("gdb: framed record length %d does not match %d payload bytes", payloadLen, len(raw)-8)
	}
	if crc32.ChecksumIEEE(raw[8:]) != binary.BigEndian.Uint32(raw[4:]) {
		return journalOp{}, errors.New("gdb: framed record CRC mismatch")
	}
	return decodeJournalOp(raw[8:])
}

// ReplApply appends one raw journal record shipped by the leader to
// the local journal (fsynced, exactly the bytes the leader wrote, so
// the mirror stays byte-identical) and applies it in memory, in
// stream order. On a non-durable replica the record is validated and
// applied in memory only.
func (db *DB) ReplApply(raw []byte) error {
	op, err := decodeFramedRecord(raw)
	if err != nil {
		return fmt.Errorf("gdb: repl apply: %w", err)
	}
	if db.dur == nil {
		if err := db.applyOp(op); err != nil {
			return err
		}
		obs.ReplRecordsApplied.Inc()
		return nil
	}
	dur := db.dur
	dur.commitMu.RLock()
	defer dur.commitMu.RUnlock()
	dur.mu.Lock()
	defer dur.mu.Unlock()
	if dur.closed {
		return ErrClosed
	}
	if dur.broken != nil {
		return fmt.Errorf("gdb: repl apply: journal unusable: %w", dur.broken)
	}
	st, err := dur.jf.Stat()
	if err != nil {
		return fmt.Errorf("gdb: repl apply: %w", err)
	}
	if err := replAppend(dur.jf, raw); err != nil {
		// Roll the partial record back so the journal stays on a record
		// boundary (see commit); a failed rollback poisons the journal.
		if terr := truncateJournal(dur.jf, st.Size()); terr != nil {
			dur.broken = terr
		}
		return err
	}
	dur.off += int64(len(raw))
	dur.notifyLocked()
	if err := db.applyOp(op); err != nil {
		return err
	}
	obs.ReplRecordsApplied.Inc()
	return nil
}

// replAppend writes one pre-framed record to the open journal and
// fsyncs it. The caller holds dur.mu and passes the journal handle it
// owns under that lock.
func replAppend(jf *os.File, raw []byte) error {
	if err := fault.Inject(FPReplApplyAppend); err != nil {
		return fmt.Errorf("gdb: repl append: %w", err)
	}
	if _, err := fault.Writer(FPReplApplyAppend, jf).Write(raw); err != nil {
		return fmt.Errorf("gdb: repl append: %w", err)
	}
	if err := fault.Inject(FPReplApplySync); err != nil {
		return fmt.Errorf("gdb: repl sync: %w", err)
	}
	if err := jf.Sync(); err != nil {
		return fmt.Errorf("gdb: repl sync: %w", err)
	}
	obs.DurJournalAppends.Inc()
	obs.DurJournalBytes.Add(int64(len(raw)))
	return nil
}

// ReplRotate mirrors a leader rotation: it cuts a local snapshot under
// newSeq and swaps in a fresh journal, keeping the follower's file
// sequence in lockstep with the leader's. The stream guarantees every
// record of the retiring journal was applied first, so the snapshot
// cut here captures the same state the leader's did.
func (db *DB) ReplRotate(newSeq uint64) error {
	if db.dur == nil {
		return nil // nothing on disk to rotate
	}
	db.dur.mu.Lock()
	cur := db.dur.seq
	db.dur.mu.Unlock()
	if newSeq != cur+1 {
		return fmt.Errorf("gdb: repl rotate: stream announced seq %d but the local journal is at %d", newSeq, cur)
	}
	return db.save()
}

// ReplInstallSnapshot replaces the entire database with a snapshot
// streamed from the leader: the bytes are spooled to a temp file,
// validated (magic, version, every section CRC), and — on a durable
// replica — installed under the leader's sequence with a fresh empty
// journal, deleting all prior local history. The caller clears its
// persisted stream position BEFORE installing, so a crash anywhere in
// here degrades to another full sync, never to a mixed history.
func (db *DB) ReplInstallSnapshot(seq uint64, r io.Reader) (err error) {
	dir := os.TempDir()
	if db.dur != nil {
		dir = db.dur.dir
	}
	tmp, stores, err := replRecvSnapshot(dir, r)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			// Best-effort cleanup; a stale temp file is inert and swept on Open.
			_ = os.Remove(tmp)
		}
	}()

	if db.dur == nil {
		db.replaceStores(stores)
		return nil
	}

	dur := db.dur
	dur.commitMu.Lock()
	defer dur.commitMu.Unlock()
	dur.mu.Lock()
	defer dur.mu.Unlock()
	if dur.closed {
		return ErrClosed
	}

	// Retire the live journal. Close errors cannot lose data here: the
	// whole file is about to be deleted and replaced by leader history.
	if dur.jf != nil {
		//lint:ignore errdrop the journal file is deleted on the next line; its buffered state is irrelevant
		_ = dur.jf.Close()
		dur.jf = nil
	}

	// Delete ALL local history. This must actually succeed — a survivor
	// snapshot newer than the installed one would win the next recovery
	// scan and resurrect the abandoned history.
	entries, err := os.ReadDir(dur.dir)
	if err != nil {
		dur.broken = err
		return fmt.Errorf("gdb: repl install: %w", err)
	}
	for _, e := range entries {
		_, isSnap := parseSeq(e.Name(), "snap-", ".snap")
		_, isWal := parseSeq(e.Name(), "wal-", ".log")
		if !isSnap && !isWal {
			continue
		}
		if rerr := os.Remove(filepath.Join(dur.dir, e.Name())); rerr != nil {
			dur.broken = rerr
			return fmt.Errorf("gdb: repl install: clearing old history: %w", rerr)
		}
	}

	if err := fault.Inject(FPReplInstallRename); err != nil {
		dur.broken = err
		return fmt.Errorf("gdb: repl install: %w", err)
	}
	if err := os.Rename(tmp, snapshotPath(dur.dir, seq)); err != nil {
		dur.broken = err
		return fmt.Errorf("gdb: repl install: %w", err)
	}
	jf, err := os.OpenFile(journalPath(dur.dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		dur.broken = err
		return fmt.Errorf("gdb: repl install: %w", err)
	}
	if err := syncDir(dur.dir); err != nil {
		dur.broken = err
		//lint:ignore errdrop the dirsync failure is the error to surface
		_ = jf.Close()
		return fmt.Errorf("gdb: repl install: %w", err)
	}

	db.replaceStores(stores)
	dur.seq = seq
	dur.off = 0
	dur.jf = jf
	dur.broken = nil
	dur.notifyLocked()
	return nil
}

// replaceStores swaps the whole graph map, dropping cached results of
// every store being replaced.
func (db *DB) replaceStores(stores map[string]*GraphStore) {
	db.mu.Lock()
	old := db.graphs
	db.graphs = stores
	db.mu.Unlock()
	for _, s := range old {
		db.cache.DropStore(s.StoreID())
	}
}

// replRecvSnapshot spools the streamed snapshot into a temp file in
// dir, fsyncs it, and validates it with the same reader recovery
// uses. On success the temp file's contents are exactly the leader's
// snapshot file.
func replRecvSnapshot(dir string, r io.Reader) (string, map[string]*GraphStore, error) {
	if err := fault.Inject(FPReplInstallWrite); err != nil {
		return "", nil, fmt.Errorf("gdb: repl install write: %w", err)
	}
	f, err := os.CreateTemp(dir, "snap-*.tmp")
	if err != nil {
		return "", nil, fmt.Errorf("gdb: repl install write: %w", err)
	}
	path := f.Name()
	fail := func(step string, err error) (string, map[string]*GraphStore, error) {
		//lint:ignore errdrop best-effort cleanup after the install already failed
		_ = f.Close()
		// Ditto; a stale temp file is inert and swept on Open.
		_ = os.Remove(path)
		return "", nil, fmt.Errorf("gdb: repl install %s: %w", step, err)
	}
	if _, err := io.Copy(fault.Writer(FPReplInstallWrite, f), r); err != nil {
		return fail("write", err)
	}
	if err := fault.Inject(FPReplInstallSync); err != nil {
		return fail("sync", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		return fail("close", err)
	}
	stores, err := readSnapshotFile(path)
	if err != nil {
		// The temp file holds a damaged stream; discard it.
		_ = os.Remove(path)
		return "", nil, fmt.Errorf("gdb: repl install: streamed snapshot invalid: %w", err)
	}
	return path, stores, nil
}
