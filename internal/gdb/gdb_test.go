package gdb

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"mscfpq/internal/graph"
)

// seedPaperGraph loads the Figure 1 example via the API.
func seedPaperGraph(db *DB, name string) {
	g := graph.New(6)
	g.AddEdge(0, "a", 1)
	g.AddEdge(1, "a", 2)
	g.AddEdge(1, "b", 2)
	g.AddEdge(1, "b", 5)
	g.AddEdge(2, "d", 4)
	g.AddEdge(3, "c", 2)
	g.AddEdge(4, "c", 3)
	g.AddEdge(4, "d", 5)
	g.AddEdge(5, "d", 4)
	g.AddVertexLabel(0, "x")
	g.AddVertexLabel(2, "x")
	g.AddVertexLabel(2, "y")
	g.AddVertexLabel(5, "y")
	db.AddGraph(name, g)
}

func rows(t *testing.T, db *DB, name, q string) [][]int64 {
	t.Helper()
	res, err := db.Query(name, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	out := append([][]int64(nil), res.Rows...)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

func TestQueryOnSeededGraph(t *testing.T) {
	db := New()
	seedPaperGraph(db, "D")
	got := rows(t, db, "D", `
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)
	want := [][]int64{{3, 4}, {4, 5}}
	if len(got) != 2 || got[0][0] != want[0][0] || got[1][1] != want[1][1] {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestCreateThenMatch(t *testing.T) {
	db := New()
	res, err := db.Query("social", `CREATE (a:Person {name: 'Ann'})-[:knows]->(b:Person {name: 'Bob'}), (b)-[:knows]->(c:Person {name: 'Cat'})`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesCreated != 3 || res.EdgesCreated != 2 {
		t.Fatalf("create stats = %+v", res)
	}
	got := rows(t, db, "social", `MATCH (a:Person)-[:knows]->(b) RETURN a, b`)
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	// Property filter narrows to Ann.
	got = rows(t, db, "social", `MATCH (a:Person)-[:knows]->(b) WHERE a.name = 'Ann' RETURN a, b`)
	if len(got) != 1 || got[0][0] != 0 || got[0][1] != 1 {
		t.Fatalf("rows = %v", got)
	}
}

func TestCreateReusesBoundVars(t *testing.T) {
	db := New()
	res, err := db.Query("g", `CREATE (a:N)-[:e]->(b:N), (b)-[:e]->(a)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.NodesCreated != 2 || res.EdgesCreated != 2 {
		t.Fatalf("stats = %+v", res)
	}
	s, err := db.Get("g")
	if err != nil {
		t.Fatal(err)
	}
	if s.Graph().NumVertices() != 2 {
		t.Fatalf("vertices = %d", s.Graph().NumVertices())
	}
}

func TestCreateInverseEdgeDirection(t *testing.T) {
	db := New()
	if _, err := db.Query("g", `CREATE (a:N)<-[:e]-(b:N)`); err != nil {
		t.Fatal(err)
	}
	s, _ := db.Get("g")
	if !s.Graph().HasEdge(1, "e", 0) {
		t.Fatal("inverse CREATE must add edge b->a")
	}
}

func TestQueryErrors(t *testing.T) {
	db := New()
	if _, err := db.Query("missing", `MATCH (v) RETURN v`); err == nil {
		t.Fatal("expected error for missing graph")
	}
	if _, err := db.Query("missing", `MATCH (v RETURN`); err == nil {
		t.Fatal("expected parse error")
	}
	seedPaperGraph(db, "D")
	if _, err := db.Query("D", `CREATE (a)-/ :p /->(b)`); err == nil {
		t.Fatal("expected error for path pattern in CREATE")
	}
	if _, err := db.Query("D", `CREATE (a)-[:x|y]->(b)`); err == nil {
		t.Fatal("expected error for multi-type CREATE edge")
	}
}

func TestDeleteAndList(t *testing.T) {
	db := New()
	seedPaperGraph(db, "A")
	seedPaperGraph(db, "B")
	if got := db.List(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("list = %v", got)
	}
	if ok, err := db.Delete("A"); !ok || err != nil {
		t.Fatalf("first delete = (%v, %v)", ok, err)
	}
	if ok, err := db.Delete("A"); ok || err != nil {
		t.Fatalf("second delete = (%v, %v)", ok, err)
	}
	if got := db.List(); len(got) != 1 || got[0] != "B" {
		t.Fatalf("list after delete = %v", got)
	}
}

func TestExplain(t *testing.T) {
	db := New()
	seedPaperGraph(db, "D")
	text, err := db.Explain("D", `
		PATH PATTERN S = ()-/ [:a ~S :b] | [:a :b] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CFPQTraverse", "Project", "Path pattern context"} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain missing %q:\n%s", want, text)
		}
	}
	if _, err := db.Explain("D", `CREATE (a:N)`); err == nil {
		t.Fatal("EXPLAIN of CREATE should fail")
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := New()
	seedPaperGraph(db, "D")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := db.Query("D", `
				PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
				MATCH (v)-/ ~S /->(to)
				RETURN v, to`)
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPathCtxCacheReuse(t *testing.T) {
	db := New()
	seedPaperGraph(db, "D")
	s, _ := db.Get("D")
	query := `
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`
	first := rows(t, db, "D", query)
	if s.CtxCacheHits() != 0 {
		t.Fatal("first query must miss the cache")
	}
	second := rows(t, db, "D", query)
	if s.CtxCacheHits() != 1 {
		t.Fatalf("second query must hit the cache (hits=%d)", s.CtxCacheHits())
	}
	if len(first) != len(second) {
		t.Fatalf("cached answer differs: %v vs %v", first, second)
	}
	// A write invalidates the cache and results stay correct.
	if _, err := db.Query("D", `CREATE (a:freshnode)`); err != nil {
		t.Fatal(err)
	}
	third := rows(t, db, "D", query)
	if s.CtxCacheHits() != 1 {
		t.Fatalf("post-write query must rebuild the context (hits=%d)", s.CtxCacheHits())
	}
	if len(third) != len(first) {
		t.Fatalf("answer changed after unrelated write: %v vs %v", third, first)
	}
	// A different pattern set gets its own context.
	rows(t, db, "D", `
		PATH PATTERN P = ()-/ [:a :b] /->()
		MATCH (v)-/ ~P /->(to)
		RETURN v, to`)
	if s.CtxCacheHits() != 1 {
		t.Fatal("different declarations must not hit the cache")
	}
}

func TestConcurrentPathPatternQueriesShareCache(t *testing.T) {
	db := New()
	seedPaperGraph(db, "D")
	query := `
		PATH PATTERN S = ()-/ [:c ~S :d] | [:c (:y) :d] /->()
		MATCH (v)-/ ~S /->(to)
		RETURN v, to`
	// Warm the cache, then hammer it concurrently.
	if _, err := db.Query("D", query); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := db.Query("D", query)
			if err != nil {
				errs <- err
				return
			}
			if len(res.Rows) != 2 {
				errs <- fmt.Errorf("rows = %v", res.Rows)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPropEquals(t *testing.T) {
	s := NewGraphStore(graph.New(2))
	if s.PropEquals(0, "k", propVal("v")) {
		t.Fatal("empty store matched")
	}
	s.SetProp(0, "k", propVal("v"))
	if !s.PropEquals(0, "k", propVal("v")) || s.PropEquals(0, "k", propVal("w")) || s.PropEquals(1, "k", propVal("v")) {
		t.Fatal("PropEquals wrong")
	}
}
