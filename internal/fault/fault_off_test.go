//go:build nofault

package fault_test

import (
	"strings"
	"testing"

	"mscfpq/internal/fault"
)

// TestReleaseStubsAreInert pins the nofault contract `make chaos`
// relies on: arming is accepted but does nothing, injection never
// fires, and writers pass through untouched.
func TestReleaseStubsAreInert(t *testing.T) {
	defer fault.Enable("gdb.journal.append", fault.Spec{Err: fault.ErrInjected, Panic: "boom"})()
	if err := fault.Inject("gdb.journal.append"); err != nil {
		t.Fatalf("Inject in a nofault build returned %v", err)
	}
	var sb strings.Builder
	if w := fault.Writer("gdb.journal.append", &sb); w != &sb {
		t.Fatalf("Writer in a nofault build wrapped the writer: %T", w)
	}
	if fault.Active() || fault.Names() != nil || fault.Hits("gdb.journal.append") != 0 {
		t.Fatal("nofault build reports armed failpoint state")
	}
	fault.Disable("gdb.journal.append")
	fault.Reset()
}
