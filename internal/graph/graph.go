// Package graph implements the paper's data model (Definitions 2.1-2.8):
// finite directed graphs whose edges and vertices carry label sets,
// represented as the Boolean decomposition of the adjacency and
// vertex-label matrices — one sparse Boolean matrix per label.
//
// Following the paper's x̄ notation, asking for the edge matrix of label
// "x_r" yields the transpose of the matrix of "x" (cached), so query
// grammars can traverse relations backwards without materializing
// inverse edges in the data.
package graph

import (
	"fmt"
	"sort"
	"sync"

	"mscfpq/internal/grammar"
	"mscfpq/internal/matrix"
)

// Graph is an edge- and vertex-labeled directed graph over vertices
// 0..N-1 stored as Boolean label matrices.
//
// Graphs grow on demand: adding an edge or label mentioning vertex v
// extends the vertex set to include v. Mutation must not overlap with
// any other use, but concurrent readers are safe: the only state a read
// path touches is the inverse-label transpose cache, which has its own
// lock.
type Graph struct {
	n       int
	edges   map[string]*matrix.Bool   // label -> adjacency matrix E^l
	vlabels map[string]*matrix.Vector // label -> diagonal vertex set V^l
	nedges  int

	tmu        sync.Mutex
	transposed map[string]*matrix.Bool // guarded by tmu: cache for inverse-label matrices
}

// New returns an empty graph with capacity for n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative size %d", n))
	}
	return &Graph{
		n:          n,
		edges:      map[string]*matrix.Bool{},
		vlabels:    map[string]*matrix.Vector{},
		transposed: map[string]*matrix.Bool{},
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of (edge, label) pairs, i.e. the total
// number of true entries across the Boolean decomposition.
func (g *Graph) NumEdges() int { return g.nedges }

// grow extends the vertex set so that vertex v exists.
func (g *Graph) grow(v int) {
	if v < g.n {
		return
	}
	g.n = v + 1
	for _, m := range g.edges {
		m.Resize(g.n, g.n)
	}
	// Vectors cannot grow; rebuild. Vertex-label vectors are tiny
	// relative to edge matrices, so this stays cheap.
	for l, vec := range g.vlabels {
		if vec.Size() < g.n {
			g.vlabels[l] = matrix.NewVectorFromIndices(g.n, vec.Ints())
		}
	}
	g.tmu.Lock()
	g.transposed = map[string]*matrix.Bool{}
	g.tmu.Unlock()
}

// CowClone returns a copy-on-write clone for epoch-versioned
// snapshotting (internal/store): edge matrices share rows with the
// original until either side mutates them, vertex-label vectors (tiny)
// are deep-copied, and the transpose cache starts empty. Mutating the
// clone — including growing it — never changes the original, and vice
// versa; cloning an immutable snapshot therefore yields a mutable next
// version at O(labels + vertices) cost instead of O(edges).
func (g *Graph) CowClone() *Graph {
	c := &Graph{
		n:          g.n,
		edges:      make(map[string]*matrix.Bool, len(g.edges)),
		vlabels:    make(map[string]*matrix.Vector, len(g.vlabels)),
		nedges:     g.nedges,
		transposed: map[string]*matrix.Bool{},
	}
	for l, m := range g.edges {
		c.edges[l] = m.CloneCOW()
	}
	for l, vec := range g.vlabels {
		c.vlabels[l] = vec.Clone()
	}
	return c
}

// CloneFrozen is CowClone for a graph that will never be mutated
// again — the next-version transaction over a published store
// snapshot. Edge matrices are cloned with matrix.CloneFrozen, which
// leaves the source untouched (no shared-bitmap writes), so the
// snapshot stays immutable after publish while the clone still copies
// rows lazily. The caller owns the freeze promise; use CowClone when
// both sides remain mutable.
func (g *Graph) CloneFrozen() *Graph {
	c := &Graph{
		n:          g.n,
		edges:      make(map[string]*matrix.Bool, len(g.edges)),
		vlabels:    make(map[string]*matrix.Vector, len(g.vlabels)),
		nedges:     g.nedges,
		transposed: map[string]*matrix.Bool{},
	}
	for l, m := range g.edges {
		c.edges[l] = m.CloneFrozen()
	}
	for l, vec := range g.vlabels {
		c.vlabels[l] = vec.Clone()
	}
	return c
}

// AddEdge adds a directed edge src -> dst with the given label. Adding
// an edge with an inverse label ("x_r") is rejected: inverse matrices
// are derived, not stored.
func (g *Graph) AddEdge(src int, label string, dst int) {
	if src < 0 || dst < 0 {
		panic(fmt.Sprintf("graph: negative vertex (%d,%d)", src, dst))
	}
	if label == "" {
		panic("graph: empty edge label")
	}
	if grammar.IsInverseLabel(label) {
		panic(fmt.Sprintf("graph: cannot store inverse label %q; add the base edge instead", label))
	}
	if src >= g.n || dst >= g.n {
		g.grow(max(src, dst))
	}
	m := g.edges[label]
	if m == nil {
		m = matrix.NewBool(g.n, g.n)
		g.edges[label] = m
	}
	if !m.Get(src, dst) {
		m.Set(src, dst)
		g.nedges++
		g.tmu.Lock()
		delete(g.transposed, grammar.InverseLabel(label))
		g.tmu.Unlock()
	}
}

// HasEdge reports whether edge src -[label]-> dst exists. Inverse labels
// are resolved through the transpose.
func (g *Graph) HasEdge(src int, label string, dst int) bool {
	if src < 0 || src >= g.n || dst < 0 || dst >= g.n {
		return false
	}
	if grammar.IsInverseLabel(label) {
		return g.HasEdge(dst, grammar.InverseLabel(label), src)
	}
	m := g.edges[label]
	return m != nil && m.Get(src, dst)
}

// AddVertexLabel attaches a label to vertex v.
func (g *Graph) AddVertexLabel(v int, label string) {
	if v < 0 {
		panic(fmt.Sprintf("graph: negative vertex %d", v))
	}
	if label == "" {
		panic("graph: empty vertex label")
	}
	if v >= g.n {
		g.grow(v)
	}
	vec := g.vlabels[label]
	if vec == nil {
		vec = matrix.NewVector(g.n)
		g.vlabels[label] = vec
	}
	vec.Set(v)
}

// HasVertexLabel reports whether vertex v carries the label.
func (g *Graph) HasVertexLabel(v int, label string) bool {
	vec := g.vlabels[label]
	return vec != nil && v >= 0 && v < g.n && vec.Get(v)
}

// EdgeMatrix returns the adjacency matrix of the label (E^l in the
// paper). For an inverse label "x_r" it returns the cached transpose of
// x's matrix. The result is shared; callers must not mutate it. Unknown
// labels yield an empty matrix of the right shape.
func (g *Graph) EdgeMatrix(label string) *matrix.Bool {
	if grammar.IsInverseLabel(label) {
		g.tmu.Lock()
		if t := g.transposed[label]; t != nil {
			g.tmu.Unlock()
			return t
		}
		g.tmu.Unlock()
		t := matrix.Transpose(g.EdgeMatrix(grammar.InverseLabel(label)))
		g.tmu.Lock()
		g.transposed[label] = t
		g.tmu.Unlock()
		return t
	}
	if m := g.edges[label]; m != nil {
		return m
	}
	return matrix.NewBool(g.n, g.n)
}

// VertexSet returns the set of vertices carrying the label (V^l as a
// vector). Unknown labels yield the empty set. Shared; do not mutate.
func (g *Graph) VertexSet(label string) *matrix.Vector {
	if vec := g.vlabels[label]; vec != nil {
		return vec
	}
	return matrix.NewVector(g.n)
}

// VertexMatrix returns the diagonal vertex matrix of the label (V^l as
// a matrix, Definition 2.7).
func (g *Graph) VertexMatrix(label string) *matrix.Bool {
	return g.VertexSet(label).Diag()
}

// EdgeLabels returns the sorted set of stored (non-inverse) edge labels.
func (g *Graph) EdgeLabels() []string {
	out := make([]string, 0, len(g.edges))
	for l := range g.edges {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// VertexLabels returns the sorted set of vertex labels.
func (g *Graph) VertexLabels() []string {
	out := make([]string, 0, len(g.vlabels))
	for l := range g.vlabels {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EdgeCount returns the number of edges with the given (base) label.
func (g *Graph) EdgeCount(label string) int {
	if m := g.edges[label]; m != nil {
		return m.NVals()
	}
	return 0
}

// Edges calls fn for every labeled edge, grouped by label in sorted
// order. Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(src int, label string, dst int) bool) {
	for _, l := range g.EdgeLabels() {
		stop := false
		g.edges[l].Iterate(func(i, j int) bool {
			if !fn(i, l, j) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

// AdjacencyUnion returns the union of all label matrices, optionally
// including inverse edges. Used for reachability pruning by the
// non-linear-algebra baseline.
func (g *Graph) AdjacencyUnion(includeInverse bool) *matrix.Bool {
	u := matrix.NewBool(g.n, g.n)
	for _, m := range g.edges {
		matrix.AddInPlace(u, m)
	}
	if includeInverse {
		matrix.AddInPlace(u, matrix.Transpose(u))
	}
	return u
}

// Reachable returns every vertex reachable from src by a path over the
// union adjacency (optionally treating edges as undirected), including
// the sources themselves.
func (g *Graph) Reachable(src *matrix.Vector, includeInverse bool) *matrix.Vector {
	u := g.AdjacencyUnion(includeInverse)
	seen := src.Clone()
	frontier := src.Clone()
	for !frontier.Empty() {
		next := matrix.VecMul(frontier, u)
		next.DiffInPlace(seen)
		if next.Empty() {
			break
		}
		seen.UnionInPlace(next)
		frontier = next
	}
	return seen
}

// Stats summarizes a graph for the paper's Table 1.
type Stats struct {
	Vertices int
	Edges    int
	ByLabel  map[string]int
}

// Stats computes vertex, edge and per-label counts.
func (g *Graph) Stats() Stats {
	s := Stats{Vertices: g.n, Edges: g.nedges, ByLabel: map[string]int{}}
	for l, m := range g.edges {
		s.ByLabel[l] = m.NVals()
	}
	return s
}
