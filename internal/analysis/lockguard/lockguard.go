// Package lockguard enforces `// guarded by <mu>` field annotations.
//
// Shared mutable state in this repository — the cfpq.Index chunk-commit
// cache, the graph transpose cache, the RESP server's connection table,
// the gdb stores — is protected by per-struct mutexes. The convention
// is documented but nothing checks it; a single unlocked access
// compiles fine and turns into a data race only under the right
// interleaving. lockguard makes the convention machine-checked:
//
//	type Index struct {
//		mu sync.Mutex
//		T  []*matrix.Bool // guarded by mu
//	}
//
// Every read or write of an annotated field must then satisfy one of:
//
//   - the same receiver's mutex is held at the access: a
//     `<recv>.<mu>.Lock()` (or RLock for reads, when the mutex is an
//     RWMutex) appears earlier in the enclosing function with no
//     intervening unlock — deferred unlocks do not end the critical
//     section;
//   - the enclosing function's name ends in "Locked", the documented
//     caller-holds-the-lock convention;
//   - the receiver is a struct the function itself just constructed
//     (local variable initialized from a composite literal or new),
//     which cannot yet be shared.
//
// The analysis is intra-procedural and approximates control flow by
// source order, which matches the repository's lock style (lock/defer
// unlock, or short lock/unlock windows). Function literals are
// separate scopes: a closure that touches guarded state must lock (or
// be suppressed) itself, since it may run on another goroutine.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"mscfpq/internal/analysis"
)

// Analyzer is the lockguard analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "checks that struct fields annotated `// guarded by <mu>` are only " +
		"accessed while the annotated mutex of the same receiver is held",
	IgnoreTestFiles: true,
	Run:             run,
}

var guardedRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardInfo describes one annotated field.
type guardInfo struct {
	mutex string // sibling mutex field name
	rw    bool   // mutex is an RWMutex
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkScope(pass, guards, fn.Name.Name, fn.Body, fn.Body)
		}
	}
	return nil
}

// collectGuards finds annotated fields, validating that the named
// mutex exists as a sibling field of a sync.Mutex/RWMutex type.
func collectGuards(pass *analysis.Pass) map[types.Object]guardInfo {
	guards := map[types.Object]guardInfo{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotation(field)
				if mu == "" {
					continue
				}
				ok, rw := findMutex(pass, st, mu)
				if !ok {
					pass.Reportf(field.Pos(), "field is annotated `guarded by %s` but the struct has no sync.Mutex/RWMutex field named %q", mu, mu)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guardInfo{mutex: mu, rw: rw}
					}
				}
			}
			return true
		})
	}
	return guards
}

func annotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func findMutex(pass *analysis.Pass, st *ast.StructType, name string) (ok, rw bool) {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			if obj := pass.TypesInfo.Defs[n]; obj != nil {
				return analysis.IsMutexType(obj.Type())
			}
		}
	}
	return false, false
}

// lockEvent is one mutex operation at a source position.
type lockEvent struct {
	pos  token.Pos
	kind string // "Lock", "Unlock", "RLock", "RUnlock"
}

// checkScope analyzes one function scope (a FuncDecl body or a FuncLit
// body). Nested function literals are recursed into as fresh scopes —
// their lock state is independent of the enclosing function's.
func checkScope(pass *analysis.Pass, guards map[types.Object]guardInfo, name string, scope *ast.BlockStmt, body ast.Node) {
	callerHolds := strings.HasSuffix(name, "Locked")
	constructed := analysis.ConstructedLocals(pass.TypesInfo, scope)

	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			checkScope(pass, guards, name+" (func literal)", lit.Body, lit.Body)
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		info, guarded := guards[selection.Obj()]
		if !guarded {
			return true
		}
		if callerHolds {
			return true
		}
		base := analysis.ExprString(pass.Fset, sel.X)
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && constructed[obj] {
				return true // construction phase: value not shared yet
			}
		}
		write := isWriteAccess(sel, stack)
		held := heldState(pass, scope, base+"."+info.mutex, sel.Pos())
		switch {
		case held == "Lock":
			// exclusive: fine for both reads and writes
		case held == "RLock" && !write:
			// shared: fine for reads
		case held == "RLock" && write:
			pass.Reportf(sel.Pos(), "write to %s.%s (guarded by %s) while holding only the read lock", base, selection.Obj().Name(), info.mutex)
		default:
			verb := "read of"
			if write {
				verb = "write to"
			}
			pass.Reportf(sel.Pos(), "%s %s.%s without holding %s.%s (field is `guarded by %s`)", verb, base, selection.Obj().Name(), base, info.mutex, info.mutex)
		}
		return true
	})
}

// isWriteAccess reports whether the selector is the target of an
// assignment, an inc/dec statement, a delete() call, or an element
// write through it (m[k] = v on a guarded map field).
func isWriteAccess(sel *ast.SelectorExpr, stack []ast.Node) bool {
	var child ast.Node = sel
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == child {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return parent.X == child
		case *ast.IndexExpr:
			if parent.X != child {
				return false
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(parent.Fun).(*ast.Ident); ok && id.Name == "delete" {
				return len(parent.Args) > 0 && parent.Args[0] == child
			}
			return false
		case *ast.SelectorExpr, *ast.ParenExpr, *ast.StarExpr:
			// keep climbing through the access path
		default:
			return false
		}
		child = stack[i]
	}
	return false
}

// heldState returns the lock state of muPath ("s.mu") at pos in the
// scope, approximating control flow by source order: the last
// non-deferred Lock/RLock/Unlock/RUnlock call on muPath before pos
// wins. Deferred unlocks are ignored (they end the section at return).
// Lock events inside a branch that terminates (its block ends in
// return, break, continue, goto, or panic) are ignored when pos lies
// after the branch — control cannot flow from such an event to pos, so
// the common `mu.Lock(); if done { mu.Unlock(); return }; ...` pattern
// keeps its critical section.
func heldState(pass *analysis.Pass, scope *ast.BlockStmt, muPath string, pos token.Pos) string {
	state := ""
	analysis.WalkStack(scope, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // separate scope
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind := sel.Sel.Name
		switch kind {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return true
		}
		if analysis.ExprString(pass.Fset, sel.X) != muPath {
			return true
		}
		for _, anc := range stack {
			if _, ok := anc.(*ast.DeferStmt); ok {
				return true // defer mu.Unlock() releases at return, not here
			}
		}
		if inDeadBranch(stack, pos) {
			return true // the branch returns before control reaches pos
		}
		switch kind {
		case "Lock", "RLock":
			state = kind
		case "Unlock", "RUnlock":
			state = ""
		}
		return true
	})
	return state
}

// inDeadBranch reports whether the node whose ancestor stack is given
// sits inside a conditional block that both excludes pos and ends in a
// terminating statement: events there cannot affect the state at pos.
func inDeadBranch(stack []ast.Node, pos token.Pos) bool {
	for i, anc := range stack {
		var body []ast.Stmt
		var span ast.Node
		switch n := anc.(type) {
		case *ast.BlockStmt:
			if i == 0 {
				continue
			}
			if _, ok := stack[i-1].(*ast.IfStmt); !ok {
				continue
			}
			body, span = n.List, n
		case *ast.CaseClause:
			body, span = n.Body, n
		case *ast.CommClause:
			body, span = n.Body, n
		default:
			continue
		}
		if pos >= span.Pos() && pos < span.End() {
			continue
		}
		if len(body) > 0 && terminates(body[len(body)-1]) {
			return true
		}
	}
	return false
}

// terminates reports whether a statement unconditionally leaves the
// enclosing block: return, break/continue/goto, or a panic call.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				return id.Name == "panic"
			}
		}
	}
	return false
}
