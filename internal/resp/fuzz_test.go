package resp

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the protocol reader never panics and that whatever
// it successfully reads re-encodes and re-reads identically.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"+OK\r\n",
		"-ERR boom\r\n",
		":42\r\n",
		"$5\r\nhello\r\n",
		"$-1\r\n",
		"*2\r\n$4\r\nPING\r\n$1\r\nx\r\n",
		"*-1\r\n",
		"*1000000\r\n",
		"$99999999999\r\n",
		"garbage",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Read(bufio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := Write(w, v); err != nil {
			// Error kinds re-encode with an ERR prefix; everything the
			// reader produces must be writable.
			t.Fatalf("cannot re-encode %+v: %v", v, err)
		}
		w.Flush()
		back, err := Read(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("cannot re-read %q: %v", buf.String(), err)
		}
		if back.Kind != v.Kind && !(v.Kind == ErrorString && back.Kind == ErrorString) {
			t.Fatalf("kind changed: %q -> %q", v.Kind, back.Kind)
		}
		if v.Kind == ErrorString {
			if !strings.Contains(back.Str, v.Str) {
				t.Fatalf("error text lost: %q -> %q", v.Str, back.Str)
			}
		}
	})
}
