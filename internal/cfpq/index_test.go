package cfpq

import (
	"math/rand"
	"testing"

	"mscfpq/internal/matrix"
)

func TestSmartMatchesMultiSourceSingleQuery(t *testing.T) {
	g := paperGraph()
	w := cndGrammar()
	for _, srcIdx := range [][]int{{3}, {4}, {0, 5}, {0, 1, 2, 3, 4, 5}} {
		src := matrix.NewVectorFromIndices(6, srcIdx)
		idx, err := NewIndex(g, w)
		if err != nil {
			t.Fatal(err)
		}
		smart, err := idx.MultiSourceSmart(src)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := MultiSource(g, w, src)
		if err != nil {
			t.Fatal(err)
		}
		if !smart.Answer().Equal(ms.Answer()) {
			t.Fatalf("src=%v: smart=%v ms=%v", srcIdx, smart.Answer().Pairs(), ms.Answer().Pairs())
		}
	}
}

// Property: evaluating any chunked partition of a source set through a
// shared index yields, chunk by chunk, the same answers as fresh
// MultiSource runs — and the cache grows monotonically.
func TestSmartChunkedEqualsFreshProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	labels := []string{"a", "b", "subClassOf"}
	for name, w := range testGrammars() {
		w := w
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				n := 5 + rng.Intn(15)
				g := randomGraph(rng, n, 2+rng.Intn(3*n), labels)
				idx, err := NewIndex(g, w)
				if err != nil {
					t.Fatal(err)
				}
				perm := rng.Perm(n)
				chunk := 1 + rng.Intn(4)
				prevCached := 0
				for lo := 0; lo < n; lo += chunk {
					hi := min(lo+chunk, n)
					src := matrix.NewVectorFromIndices(n, perm[lo:hi])
					smart, err := idx.MultiSourceSmart(src)
					if err != nil {
						t.Fatal(err)
					}
					fresh, err := MultiSource(g, w, src)
					if err != nil {
						t.Fatal(err)
					}
					if !smart.Answer().Equal(fresh.Answer()) {
						t.Fatalf("trial %d chunk %d-%d: smart differs from fresh\nsmart: %v\nfresh: %v",
							trial, lo, hi, smart.Answer().Pairs(), fresh.Answer().Pairs())
					}
					cached := idx.CachedSources().NVals()
					if cached < prevCached {
						t.Fatalf("cache shrank: %d -> %d", prevCached, cached)
					}
					prevCached = cached
				}
				if idx.Queries() == 0 {
					t.Fatal("query counter not advanced")
				}
			}
		})
	}
}

func TestSmartRepeatedQueryIsCached(t *testing.T) {
	g := paperGraph()
	w := cndGrammar()
	idx, err := NewIndex(g, w)
	if err != nil {
		t.Fatal(err)
	}
	src := matrix.NewVectorFromIndices(6, []int{3, 4})
	first, err := idx.MultiSourceSmart(src)
	if err != nil {
		t.Fatal(err)
	}
	// All requested sources must now be cached (propagation may cache
	// more: sub-derivations make their mid vertices S-sources too).
	cached := idx.CachedSources()
	for _, v := range src.Ints() {
		if !cached.Get(v) {
			t.Fatalf("source %d not cached; cached = %v", v, cached)
		}
	}
	// Re-asking must give the same answer without growing the cache.
	second, err := idx.MultiSourceSmart(src)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Answer().Equal(first.Answer()) {
		t.Fatal("repeated query answer differs")
	}
	if idx.CachedSources().NVals() != cached.NVals() {
		t.Fatal("cache grew on repeated query")
	}
}

func TestSmartSubsetQueryAfterSuperset(t *testing.T) {
	g := paperGraph()
	w := cndGrammar()
	idx, err := NewIndex(g, w)
	if err != nil {
		t.Fatal(err)
	}
	all := matrix.NewVectorFromIndices(6, []int{0, 1, 2, 3, 4, 5})
	if _, err := idx.MultiSourceSmart(all); err != nil {
		t.Fatal(err)
	}
	sub := matrix.NewVectorFromIndices(6, []int{4})
	smart, err := idx.MultiSourceSmart(sub)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := MultiSource(g, w, sub)
	if err != nil {
		t.Fatal(err)
	}
	if !smart.Answer().Equal(fresh.Answer()) {
		t.Fatalf("subset after superset differs: %v vs %v", smart.Answer().Pairs(), fresh.Answer().Pairs())
	}
}

func TestIndexErrors(t *testing.T) {
	if _, err := NewIndex(nil, nil); err == nil {
		t.Fatal("expected error for nil inputs")
	}
	idx, err := NewIndex(paperGraph(), cndGrammar())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.MultiSourceSmart(matrix.NewVector(3)); err == nil {
		t.Fatal("expected size mismatch error")
	}
	if _, err := idx.MultiSourceSmart(nil); err == nil {
		t.Fatal("expected nil source error")
	}
}
