package plan

import (
	"fmt"
	"strings"
	"time"

	"mscfpq/internal/exec"
)

// ProfileEntry is one operation's measured contribution to a query.
type ProfileEntry struct {
	Op        string
	Records   int
	Inclusive time.Duration // time spent in this op and its subtree
	Exclusive time.Duration // Inclusive minus the child's Inclusive
	Depth     int
}

// profileOp wraps an operation, counting produced records and the time
// spent inside its subtree.
type profileOp struct {
	inner   Operation
	records int
	elapsed time.Duration
}

func (p *profileOp) Open() error { return p.inner.Open() }

func (p *profileOp) Next() (Record, error) {
	start := time.Now()
	rec, err := p.inner.Next()
	p.elapsed += time.Since(start)
	if rec != nil {
		p.records++
	}
	return rec, err
}

func (p *profileOp) Explain() string  { return p.inner.Explain() }
func (p *profileOp) Child() Operation { return p.inner.Child() }

// childSetter lets the profiler re-link the operation chain.
type childSetter interface{ setChild(Operation) }

func (s *NodeScan) setChild(op Operation) { s.child = op }
func (t *Traverse) setChild(op Operation) { t.child = op }
func (f *Filter) setChild(op Operation)   { f.child = op }
func (p *Project) setChild(op Operation)  { p.child = op }

// ExecuteProfiled runs the plan with per-operation instrumentation and
// returns the rows plus one profile entry per operation, root first
// (the database exposes this as GRAPH.PROFILE). The plan is mutated by
// the instrumentation and remains instrumented afterwards.
func (p *Plan) ExecuteProfiled(opts ...exec.Option) (*ResultSet, []ProfileEntry, error) {
	// Collect the (linear) chain root -> leaf.
	var chain []Operation
	for op := p.root; op != nil; op = op.Child() {
		chain = append(chain, op)
	}
	// Wrap every operation and re-link parents to the wrappers.
	wrapped := make([]*profileOp, len(chain))
	for i, op := range chain {
		wrapped[i] = &profileOp{inner: op}
	}
	for i := 0; i < len(chain)-1; i++ {
		setter, ok := chain[i].(childSetter)
		if !ok {
			return nil, nil, fmt.Errorf("plan: operation %T cannot be profiled", chain[i])
		}
		setter.setChild(wrapped[i+1])
	}
	p.root = wrapped[0]

	rs, err := p.ExecuteWith(opts...)
	if err != nil {
		return nil, nil, err
	}
	entries := make([]ProfileEntry, len(wrapped))
	for i, w := range wrapped {
		entries[i] = ProfileEntry{
			Op:        w.Explain(),
			Records:   w.records,
			Inclusive: w.elapsed,
			Depth:     i,
		}
	}
	for i := range entries {
		entries[i].Exclusive = entries[i].Inclusive
		if i+1 < len(entries) {
			entries[i].Exclusive -= entries[i+1].Inclusive
			if entries[i].Exclusive < 0 {
				entries[i].Exclusive = 0
			}
		}
	}
	return rs, entries, nil
}

// RenderProfile formats profile entries as the text lines GRAPH.PROFILE
// returns.
func RenderProfile(entries []ProfileEntry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = fmt.Sprintf("%s%s | Records produced: %d, Execution time: %.6f ms",
			strings.Repeat("    ", e.Depth), e.Op, e.Records,
			float64(e.Exclusive.Nanoseconds())/1e6)
	}
	return out
}
